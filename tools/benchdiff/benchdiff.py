#!/usr/bin/env python3
"""Compare a fresh bench JSON export against a checked-in baseline.

Both files follow the bench/*.cpp --json shape:

    {"benchmarks": [{"name": "BM_NetScale/100/threads:1",
                     "tags_per_second": 747160.8, ...}, ...]}

Entries are matched by "name"; for each match the chosen metric (default
tags_per_second, higher is better) is compared and a regression beyond
--threshold-pct fails the run. A second, lower-is-better metric (e.g.
build_ms) can be gated with --time-metric/--time-threshold-pct: it fails
when the fresh value rises more than the threshold above baseline. Names
present on only one side are reported but never fail: the baseline is a
floor for shared points, not a schema.

Digest fields, when present on both sides, are compared too. They drift
legitimately whenever a PR extends NetworkStats (the digest covers every
field), so a mismatch is a warning by default; pass --require-digest to turn
it into a failure when comparing two runs of the *same* build, where any
drift is a determinism break.

Exit codes: 0 ok, 1 regression (or digest mismatch with --require-digest),
2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"benchdiff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    marks = doc.get("benchmarks")
    if not isinstance(marks, list):
        print(f"benchdiff: {path} has no 'benchmarks' list", file=sys.stderr)
        sys.exit(2)
    return {b["name"]: b for b in marks if "name" in b}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("fresh", help="freshly measured JSON")
    ap.add_argument("--metric", default="tags_per_second",
                    help="per-entry metric to compare (default: "
                         "tags_per_second, higher is better)")
    ap.add_argument("--threshold-pct", type=float, default=25.0,
                    help="fail when the metric drops more than this percent "
                         "below baseline (default: 25)")
    ap.add_argument("--time-metric", default=None,
                    help="optional lower-is-better metric to gate as well "
                         "(e.g. build_ms); fails when the fresh value rises "
                         "more than --time-threshold-pct above baseline")
    ap.add_argument("--time-threshold-pct", type=float, default=50.0,
                    help="allowed rise for --time-metric, percent above "
                         "baseline (default: 50)")
    ap.add_argument("--require-digest", action="store_true",
                    help="treat digest mismatches as failures (same-build "
                         "comparisons only; across code versions digests "
                         "drift whenever the stats schema grows)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    shared = sorted(set(base) & set(fresh))
    if not shared:
        print("benchdiff: no benchmark names in common", file=sys.stderr)
        sys.exit(2)

    failed = False
    print(f"{'benchmark':<32} {'baseline':>14} {'fresh':>14} {'delta%':>8}")
    for name in shared:
        b, f = base[name], fresh[name]
        if args.metric not in b or args.metric not in f:
            print(f"{name:<32} {'-':>14} {'-':>14} {'n/a':>8}  "
                  f"(missing {args.metric})")
            continue
        bv, fv = float(b[args.metric]), float(f[args.metric])
        delta = (fv - bv) / bv * 100.0 if bv != 0.0 else 0.0
        verdict = ""
        if delta < -args.threshold_pct:
            verdict = f"  REGRESSION (>{args.threshold_pct:g}% below baseline)"
            failed = True
        if args.time_metric and args.time_metric in b and args.time_metric in f:
            tb, tf = float(b[args.time_metric]), float(f[args.time_metric])
            rise = (tf - tb) / tb * 100.0 if tb != 0.0 else 0.0
            if rise > args.time_threshold_pct:
                verdict += (f"  {args.time_metric} {tb:.3f} -> {tf:.3f} "
                            f"SLOWDOWN (>{args.time_threshold_pct:g}% above "
                            f"baseline)")
                failed = True
        if "digest" in b and "digest" in f and b["digest"] != f["digest"]:
            verdict += f"  digest {b['digest']} -> {f['digest']}"
            if args.require_digest:
                verdict += " (determinism break)"
                failed = True
        print(f"{name:<32} {bv:>14.1f} {fv:>14.1f} {delta:>+7.1f}%{verdict}")

    for name in sorted(set(base) - set(fresh)):
        print(f"{name:<32} (baseline only, skipped)")
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<32} (fresh only, no baseline)")

    if failed:
        print("benchdiff: FAIL", file=sys.stderr)
        sys.exit(1)
    print("benchdiff: ok")


if __name__ == "__main__":
    main()
