// detlint implementation: a hand-rolled C++ lexer (comments, string/char
// literals, raw strings, identifiers, maximal-munch punctuation) followed by
// six token-stream rules. Deliberately dependency-free and conservative:
// every heuristic is tuned so that `detlint src/` runs clean on a compliant
// tree and each rule fires on the minimal bad fixture in tests/detlint/.
#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace detlint {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Kind { kIdent, kNumber, kPunct };

struct Token {
  std::string text;
  Kind kind = Kind::kPunct;
  int line = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  // line -> rules allowed on that line via `detlint: allow(...)` comments.
  std::map<int, std::set<std::string>> allow;
};

// Multi-character operators we must not split (the rules key on `::`, `==`,
// compound assignments, and `++`/`--`).
const char* const kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",
};

void parse_allow_comment(const std::string& comment, int line,
                         bool standalone, LexResult* out) {
  std::size_t pos = comment.find("detlint:");
  while (pos != std::string::npos) {
    std::size_t open = comment.find("allow(", pos);
    if (open == std::string::npos) break;
    std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(open + 6, close - open - 6);
    std::string rule;
    std::istringstream ss(inside);
    while (std::getline(ss, rule, ',')) {
      // Trim whitespace.
      std::size_t b = rule.find_first_not_of(" \t");
      std::size_t e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      rule = rule.substr(b, e - b + 1);
      out->allow[line].insert(rule);
      // A comment on its own line covers the following line of code.
      if (standalone) out->allow[line + 1].insert(rule);
    }
    pos = comment.find("detlint:", close);
  }
}

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_token = false;  // any token seen on the current line yet?

  auto advance_line = [&](char c) {
    if (c == '\n') {
      ++line;
      line_has_token = false;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      advance_line(c);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_allow_comment(src.substr(i, end - i), line, !line_has_token,
                          &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = src.substr(i, std::min(end + 2, n) - i);
      parse_allow_comment(body, line, !line_has_token, &out);
      for (std::size_t k = i; k < std::min(end + 2, n); ++k)
        advance_line(src[k]);
      i = (end == n) ? n : end + 2;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t open = src.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string delim = ")" + src.substr(i + 2, open - i - 2) + "\"";
        std::size_t end = src.find(delim, open + 1);
        if (end == std::string::npos) end = n;
        for (std::size_t k = i; k < std::min(end + delim.size(), n); ++k)
          advance_line(src[k]);
        i = std::min(end + delim.size(), n);
        line_has_token = true;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t k = i + 1;
      while (k < n && src[k] != quote) {
        if (src[k] == '\\' && k + 1 < n) ++k;
        advance_line(src[k]);
        ++k;
      }
      i = std::min(k + 1, n);
      line_has_token = true;
      continue;
    }
    // Identifier.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t k = i;
      while (k < n && (std::isalnum(static_cast<unsigned char>(src[k])) ||
                       src[k] == '_'))
        ++k;
      out.tokens.push_back({src.substr(i, k - i), Kind::kIdent, line});
      i = k;
      line_has_token = true;
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t k = i;
      while (k < n && (std::isalnum(static_cast<unsigned char>(src[k])) ||
                       src[k] == '.' || src[k] == '\''))
        ++k;
      out.tokens.push_back({src.substr(i, k - i), Kind::kNumber, line});
      i = k;
      line_has_token = true;
      continue;
    }
    // Punctuation, maximal munch.
    std::string punct(1, c);
    for (const char* mp : kMultiPunct) {
      const std::size_t len = std::char_traits<char>::length(mp);
      if (src.compare(i, len, mp) == 0) {
        punct = mp;
        break;
      }
    }
    out.tokens.push_back({punct, Kind::kPunct, line});
    i += punct.size();
    line_has_token = true;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

using Tokens = std::vector<Token>;

bool is(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

bool is_ident(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == Kind::kIdent;
}

/// Index of the punct matching t[i] (one of ( [ { <), or t.size() if
/// unbalanced. For '<' the scan aborts on tokens that cannot appear in a
/// template argument list, so `a < b` comparisons do not derail it.
std::size_t match(const Tokens& t, std::size_t i) {
  const std::string& open = t[i].text;
  std::string close;
  if (open == "(") close = ")";
  else if (open == "[") close = "]";
  else if (open == "{") close = "}";
  else if (open == "<") close = ">";
  else return t.size();
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    const std::string& x = t[k].text;
    if (open == "<" && (x == ";" || x == "{" || x == "}")) return t.size();
    if (x == open) ++depth;
    if (x == close) {
      --depth;
      if (depth == 0) return k;
    }
    if (open == "<" && x == ">>") {
      depth -= 2;  // merged template close: `set<Tag*, less<Tag*>>`
      if (depth <= 0) return k;
    }
  }
  return t.size();
}

bool range_contains_ident(const Tokens& t, std::size_t b, std::size_t e,
                          const std::set<std::string>& names) {
  for (std::size_t k = b; k < e && k < t.size(); ++k)
    if (t[k].kind == Kind::kIdent && names.count(t[k].text)) return true;
  return false;
}

struct Ctx {
  const std::string* path;
  const Tokens* tokens;
  const std::map<int, std::set<std::string>>* allow;
  std::vector<Finding>* findings;
  bool in_bench = false;
  bool in_obs = false;
  bool in_simd = false;

  void report(std::size_t tok_index, const std::string& rule,
              const std::string& message) {
    const int line = (*tokens)[tok_index].line;
    auto it = allow->find(line);
    if (it != allow->end() && it->second.count(rule)) return;
    findings->push_back({*path, line, rule, message});
  }
};

// ---------------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------------

void rule_wall_clock(Ctx& ctx) {
  if (ctx.in_bench) return;  // timing benches legitimately read clocks
  // src/obs/ is the sanctioned wall-clock site in the library: ProfZone
  // timings live strictly in the wall-clock domain (never feed results or
  // digests), and concentrating the carve-out in one directory keeps the
  // rest of src/ under the rule.
  if (ctx.in_obs) return;
  const Tokens& t = *ctx.tokens;
  static const std::set<std::string> kClockTypes = {
      "steady_clock", "system_clock", "high_resolution_clock", "utc_clock",
      "file_clock", "tai_clock", "gps_clock"};
  static const std::set<std::string> kBannedCalls = {
      "rand", "srand", "time", "clock", "gettimeofday", "clock_gettime",
      "getentropy", "rand_r", "drand48", "lrand48", "srand48"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const std::string& s = t[i].text;
    if (s == "random_device") {
      ctx.report(i, "wall-clock",
                 "std::random_device is an entropy source; derive seeds from "
                 "core::trial_seed / the run config instead");
      continue;
    }
    if (kClockTypes.count(s)) {
      ctx.report(i, "wall-clock",
                 "wall-clock source `" + s +
                     "` outside bench/ or src/obs/; simulated time must "
                     "come from the event queue");
      continue;
    }
    if (kBannedCalls.count(s) && is(t, i + 1, "(")) {
      // Skip member accesses (obj.time(...)) — different function entirely.
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      // Skip declarator positions (`CVec time(begin, end)` declares a local
      // named `time`): preceded by a type-ish token. A qualified call
      // (`std::time(`) keeps `::` as the previous token, and a keyword
      // before the name (`return rand();`) is not a declarator.
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_yield", "case", "else", "do", "while",
          "if", "for", "switch", "throw"};
      if (i > 0 &&
          ((t[i - 1].kind == Kind::kIdent &&
            !kStmtKeywords.count(t[i - 1].text)) ||
           t[i - 1].text == ">" || t[i - 1].text == "&" ||
           t[i - 1].text == "*"))
        continue;
      ctx.report(i, "wall-clock",
                 "call to `" + s +
                     "` outside bench/ or src/obs/ (wall-clock / libc "
                     "entropy source)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: rng-seed
// ---------------------------------------------------------------------------

void rule_rng_seed(Ctx& ctx) {
  const Tokens& t = *ctx.tokens;
  static const std::set<std::string> kStdEngines = {
      "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
      "ranlux48_base", "knuth_b"};
  static const std::set<std::string> kStdDists = {
      "uniform_int_distribution", "uniform_real_distribution",
      "normal_distribution", "bernoulli_distribution", "poisson_distribution",
      "exponential_distribution", "discrete_distribution"};
  // A seed expression is compliant when it flows through the substream
  // scheme (DESIGN.md): counter-mixed via one of these.
  static const std::set<std::string> kApproved = {
      "trial_seed", "entity_stream", "impairment_substream", "splitmix64"};
  // Type keywords inside the parens mean we are looking at a constructor
  // *declaration*, not a construction.
  static const std::set<std::string> kTypeWords = {
      "uint64_t", "uint32_t", "size_t", "int", "long", "unsigned", "short",
      "char", "auto", "uint_fast64_t"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const std::string& s = t[i].text;
    if (kStdEngines.count(s)) {
      ctx.report(i, "rng-seed",
                 "std::" + s +
                     " is not stream-portable across platforms; use "
                     "dsp::Xoshiro256 seeded via the substream scheme");
      continue;
    }
    if (kStdDists.count(s)) {
      ctx.report(i, "rng-seed",
                 "std::" + s +
                     " has implementation-defined output; use the "
                     "dsp::Xoshiro256 draw helpers");
      continue;
    }
    if (s != "Xoshiro256") continue;
    if (i > 0 && (t[i - 1].text == "explicit" || t[i - 1].text == "~" ||
                  t[i - 1].text == "class" || t[i - 1].text == "struct"))
      continue;  // the engine's own definition
    // Find the argument list: `Xoshiro256(expr)` or `Xoshiro256 name(expr)`
    // / `Xoshiro256 name{expr}`.
    std::size_t open = t.size();
    if (is(t, i + 1, "(") || is(t, i + 1, "{")) {
      open = i + 1;
    } else if (is_ident(t, i + 1) && (is(t, i + 2, "(") || is(t, i + 2, "{"))) {
      open = i + 2;
    } else {
      continue;  // reference/parameter declaration, member without init, ...
    }
    const std::size_t close = match(t, open);
    if (close == t.size()) continue;
    if (close == open + 1) continue;  // empty parens: declaration-ish
    bool approved = false;
    bool declaration = false;
    bool has_ident = false;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (t[k].kind != Kind::kIdent) continue;
      has_ident = true;
      if (kApproved.count(t[k].text)) approved = true;
      if (kTypeWords.count(t[k].text)) declaration = true;
    }
    // A pure literal seed (`Xoshiro256 rng(42)`) pins a deterministic root
    // stream explicitly — the test/demo idiom — and is allowed; only
    // runtime-derived ad-hoc seeds can collide across modules.
    if (declaration || approved || !has_ident) continue;
    ctx.report(i, "rng-seed",
               "Xoshiro256 seeded outside the substream scheme; derive the "
               "seed via core::trial_seed / sim::entity_stream / "
               "channel::impairment_substream / dsp::splitmix64 domain mix");
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

void rule_unordered_iter(Ctx& ctx) {
  const Tokens& t = *ctx.tokens;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass 1: collect names of variables (and type aliases) with unordered
  // type in this file.
  std::set<std::string> unordered_types = kUnordered;
  std::set<std::string> vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent || !unordered_types.count(t[i].text))
      continue;
    std::size_t after = i + 1;
    if (is(t, after, "<")) {
      const std::size_t close = match(t, after);
      if (close == t.size()) continue;
      after = close + 1;
    }
    // `const std::unordered_map<...>& stats` — skip cv/ref/ptr tokens
    // between the type and the declared name.
    while (after < t.size() &&
           (t[after].text == "&" || t[after].text == "*" ||
            t[after].text == "&&" || t[after].text == "const"))
      ++after;
    // `using Alias = std::unordered_map<...>;` — walk back for the alias.
    if (i >= 2 && kUnordered.count(t[i].text)) {
      for (std::size_t back = i; back-- > 0 && t[back].text != ";" &&
                                 t[back].text != "}" && t[back].text != "{";) {
        if (t[back].text == "=" && back >= 2 && t[back - 2].text == "using" &&
            is_ident(t, back - 1)) {
          unordered_types.insert(t[back - 1].text);
          break;
        }
      }
    }
    if (is_ident(t, after)) vars.insert(t[after].text);
  }
  if (vars.empty()) return;

  // Pass 2: flag range-for over those variables and explicit .begin() walks.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "for" && is(t, i + 1, "(")) {
      const std::size_t close = match(t, i + 1);
      // Find the range-for ':' at depth 1.
      int depth = 0;
      std::size_t colon = t.size();
      for (std::size_t k = i + 1; k < close; ++k) {
        if (t[k].text == "(" || t[k].text == "[" || t[k].text == "{") ++depth;
        if (t[k].text == ")" || t[k].text == "]" || t[k].text == "}") --depth;
        if (t[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      if (colon != t.size() &&
          range_contains_ident(t, colon + 1, close, vars)) {
        ctx.report(i, "unordered-iter",
                   "iteration over an unordered container: traversal order "
                   "is unspecified and leaks into stats/digests; use a "
                   "sorted copy or an ordered container");
      }
    }
    if (t[i].kind == Kind::kIdent && vars.count(t[i].text) &&
        (is(t, i + 1, ".") || is(t, i + 1, "->")) &&
        (is(t, i + 2, "begin") || is(t, i + 2, "cbegin"))) {
      ctx.report(i, "unordered-iter",
                 "explicit iterator walk over an unordered container: "
                 "traversal order is unspecified and leaks into "
                 "stats/digests");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ptr-order
// ---------------------------------------------------------------------------

void rule_ptr_order(Ctx& ctx) {
  const Tokens& t = *ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const std::string& s = t[i].text;
    if ((s == "hash" || s == "less" || s == "greater") && is(t, i + 1, "<")) {
      const std::size_t close = match(t, i + 1);
      if (close == t.size()) continue;
      int depth = 0;
      bool ptr_arg = false;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (t[k].text == "<") ++depth;
        if (t[k].text == ">") --depth;
        if (t[k].text == ">>") depth -= 2;
        if (t[k].text == "*" && depth == 1 && k + 1 <= close &&
            (t[k + 1].text == ">" || t[k + 1].text == ">>" ||
             t[k + 1].text == ","))
          ptr_arg = true;
      }
      if (ptr_arg) {
        ctx.report(i, "ptr-order",
                   "std::" + s +
                       " over a pointer type orders/hashes by address, "
                       "which varies run to run; key on a stable id");
      }
    }
    if (s == "reinterpret_cast" && is(t, i + 1, "<")) {
      const std::size_t close = match(t, i + 1);
      if (range_contains_ident(t, i + 2, close,
                               {"uintptr_t", "intptr_t"})) {
        ctx.report(i, "ptr-order",
                   "pointer-to-integer cast: address values are "
                   "allocation-dependent and must not reach results, "
                   "hashes, or orderings");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: parallel-capture
// ---------------------------------------------------------------------------

/// Collects identifiers declared inside [b, e): declarator positions, lambda
/// params handled by the caller, range-for bindings, structured bindings.
std::set<std::string> collect_locals(const Tokens& t, std::size_t b,
                                     std::size_t e) {
  std::set<std::string> locals;
  static const std::set<std::string> kNotTypes = {
      "return", "delete", "new",    "else",   "case",  "goto",
      "break",  "continue", "throw", "sizeof", "co_return"};
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    // `auto [a, b] = ...` structured bindings.
    if (t[i].text == "auto" && is(t, i + 1, "[")) {
      const std::size_t close = match(t, i + 1);
      for (std::size_t k = i + 2; k < close; ++k)
        if (t[k].kind == Kind::kIdent) locals.insert(t[k].text);
      continue;
    }
    if (i == b) continue;
    const Token& prev = t[i - 1];
    const bool declarator_prev =
        (prev.kind == Kind::kIdent && !kNotTypes.count(prev.text)) ||
        prev.text == "&" || prev.text == "*" || prev.text == ">" ||
        prev.text == "&&";
    if (!declarator_prev) continue;
    // `&` / `*` / `>` must themselves follow a type-ish token, otherwise
    // `a & b` would register b as declared.
    if (prev.kind == Kind::kPunct && i >= 2) {
      const Token& pp = t[i - 2];
      if (!(pp.kind == Kind::kIdent || pp.text == ">" || pp.text == "&" ||
            pp.text == "*"))
        continue;
    }
    const std::string& next = i + 1 < e ? t[i + 1].text : "";
    if (next == "=" || next == ";" || next == "{" || next == "(" ||
        next == ":" || next == ",") {
      // Heed the `a == b` case: `=` token is distinct from `==` already.
      locals.insert(t[i].text);
    }
  }
  return locals;
}

/// Walks left from `i` (exclusive) over a postfix chain (`a.b[c]->d`) and
/// returns the base identifier index, or size() when unresolvable. Appends
/// the token range of every [..] index expression to `index_ranges`.
std::size_t chain_base(const Tokens& t, std::size_t i, std::size_t lo,
                       std::vector<std::pair<std::size_t, std::size_t>>*
                           index_ranges) {
  std::size_t k = i;
  std::size_t base = t.size();
  while (k > lo) {
    const std::string& x = t[k - 1].text;
    if (x == "]") {
      // Find the matching '['.
      int depth = 0;
      std::size_t open = k - 1;
      while (open > lo) {
        if (t[open].text == "]") ++depth;
        if (t[open].text == "[") {
          --depth;
          if (depth == 0) break;
        }
        --open;
      }
      index_ranges->push_back({open + 1, k - 1});
      k = open;
      continue;
    }
    if (x == ")" ) {
      int depth = 0;
      std::size_t open = k - 1;
      while (open > lo) {
        if (t[open].text == ")") ++depth;
        if (t[open].text == "(") {
          --depth;
          if (depth == 0) break;
        }
        --open;
      }
      k = open;
      continue;
    }
    if (t[k - 1].kind == Kind::kIdent) {
      base = k - 1;
      // Keep walking only across member access.
      if (k - 1 > lo && (t[k - 2].text == "." || t[k - 2].text == "->" ||
                         t[k - 2].text == "::")) {
        k -= 2;
        continue;
      }
      return base;
    }
    return t.size();
  }
  return base;
}

void rule_parallel_capture(Ctx& ctx) {
  const Tokens& t = *ctx.tokens;
  static const std::set<std::string> kAssign = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
      "++", "--"};
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "insert", "erase", "clear",
      "resize", "assign", "emplace", "reserve"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "parallel_for" || !is(t, i + 1, "(")) continue;
    const std::size_t call_end = match(t, i + 1);
    if (call_end == t.size()) continue;
    // Locate the lambda: first '[' inside the argument list.
    std::size_t lb = t.size();
    for (std::size_t k = i + 2; k < call_end; ++k) {
      if (t[k].text == "[") {
        lb = k;
        break;
      }
    }
    if (lb == t.size()) continue;
    const std::size_t lb_end = match(t, lb);
    if (lb_end == t.size()) continue;
    bool by_ref = false;
    for (std::size_t k = lb + 1; k < lb_end; ++k)
      if (t[k].text == "&" || t[k].text == "&&") by_ref = true;
    if (!by_ref) continue;  // by-value captures cannot race

    std::set<std::string> locals;
    std::size_t body_open = lb_end + 1;
    if (is(t, body_open, "(")) {
      const std::size_t pe = match(t, body_open);
      // Parameter names: identifier right before each ',' or the ')'.
      for (std::size_t k = body_open + 1; k <= pe && k < t.size(); ++k) {
        if ((t[k].text == "," || k == pe) && is_ident(t, k - 1))
          locals.insert(t[k - 1].text);
      }
      body_open = pe + 1;
    }
    while (body_open < t.size() && t[body_open].text != "{") ++body_open;
    const std::size_t body_end = match(t, body_open);
    if (body_end == t.size()) continue;

    // Mutex discipline anywhere in the body: assume the author knows what
    // they are doing (the runtime digest tests still guard the result).
    if (range_contains_ident(t, body_open, body_end,
                             {"lock_guard", "scoped_lock", "unique_lock"}))
      continue;

    auto body_locals = collect_locals(t, body_open + 1, body_end);
    locals.insert(body_locals.begin(), body_locals.end());

    auto is_safe_target = [&](std::size_t op) -> bool {
      std::vector<std::pair<std::size_t, std::size_t>> idx;
      const std::size_t base = chain_base(t, op, body_open, &idx);
      if (base == t.size()) return true;  // unresolvable: stay quiet
      if (locals.count(t[base].text)) return true;
      // Per-slot pattern: any index expression mentions a lambda-local
      // (e.g. results[i] = ..., shard_stats[si].n += 1).
      for (const auto& r : idx)
        if (range_contains_ident(t, r.first, r.second + 1, locals))
          return true;
      return false;
    };

    for (std::size_t k = body_open + 1; k < body_end; ++k) {
      if (t[k].kind == Kind::kPunct && kAssign.count(t[k].text)) {
        const bool incdec = t[k].text == "++" || t[k].text == "--";
        // Prefix ++/--: an identifier directly after the operator can only
        // be its operand (`x++ y` does not parse), so `if (c) ++x;` is
        // prefix even though `)` precedes the operator.
        if (incdec && is_ident(t, k + 1)) {
          std::size_t base = k + 1;
          bool safe = locals.count(t[base].text) > 0;
          // `++arr[i]` / `++slots[si].n`: per-slot indices make it safe.
          std::size_t m = base + 1;
          while (!safe && m < body_end) {
            if (t[m].text == "[") {
              const std::size_t ce = match(t, m);
              if (range_contains_ident(t, m + 1, ce, locals)) safe = true;
              m = ce + 1;
            } else if (t[m].text == "." || t[m].text == "->") {
              m += 2;
            } else {
              break;
            }
          }
          if (!safe) {
            ctx.report(k, "parallel-capture",
                       "`" + t[base].text +
                           "` is mutated through a by-reference capture "
                           "inside a parallel_for body without a per-slot "
                           "index, atomic, or lock");
          }
          continue;
        }
        // Assignment / postfix ++/--: target chain ends before the operator.
        if (k == body_open + 1) continue;
        if (incdec && !(is_ident(t, k - 1) || t[k - 1].text == "]" ||
                        t[k - 1].text == ")"))
          continue;  // ++ with no resolvable target on either side
        if (!is_safe_target(k)) {
          std::vector<std::pair<std::size_t, std::size_t>> idx;
          const std::size_t base = chain_base(t, k, body_open, &idx);
          const std::string name =
              base != t.size() ? t[base].text : std::string("<expr>");
          ctx.report(k, "parallel-capture",
                     "`" + name +
                         "` is mutated through a by-reference capture inside "
                         "a parallel_for body without a per-slot index, "
                         "atomic, or lock");
        }
        continue;
      }
      // Mutating container calls: chain . mutator (
      if (t[k].kind == Kind::kIdent && kMutators.count(t[k].text) &&
          is(t, k + 1, "(") && k > body_open + 1 &&
          (t[k - 1].text == "." || t[k - 1].text == "->")) {
        if (!is_safe_target(k - 1)) {
          std::vector<std::pair<std::size_t, std::size_t>> idx;
          const std::size_t base = chain_base(t, k - 1, body_open, &idx);
          const std::string name =
              base != t.size() ? t[base].text : std::string("<expr>");
          ctx.report(k, "parallel-capture",
                     "`" + name + "." + t[k].text +
                         "` mutates a by-reference capture inside a "
                         "parallel_for body without a per-slot index, "
                         "atomic, or lock");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: simd-intrinsics
// ---------------------------------------------------------------------------

/// Raw vector intrinsics are confined to src/dsp/simd/: every kernel there
/// is paired with a scalar reference and a bit-exactness parity test, which
/// is what keeps SIMD results dispatch-invariant. An intrinsic anywhere else
/// bypasses that discipline (and the forced-scalar CI leg cannot disable it).
void rule_simd_intrinsics(Ctx& ctx) {
  if (ctx.in_simd) return;  // the sanctioned kernel directory
  const Tokens& t = *ctx.tokens;
  static const std::set<std::string> kIntrinHeaders = {
      "immintrin", "emmintrin", "xmmintrin", "pmmintrin", "tmmintrin",
      "smmintrin", "nmmintrin", "wmmintrin", "avxintrin", "avx2intrin",
      "x86intrin", "arm_neon", "arm_sve"};
  // NEON intrinsics end in an element-type suffix (vaddq_f64, vld1q_u32...).
  static const std::set<std::string> kNeonSuffixes = {
      "_f16", "_f32", "_f64", "_s8",  "_s16", "_s32", "_s64",
      "_u8",  "_u16", "_u32", "_u64", "_p8",  "_p16", "_p64"};
  auto has_neon_suffix = [&](const std::string& s) {
    for (const std::string& suf : kNeonSuffixes) {
      if (s.size() > suf.size() &&
          s.compare(s.size() - suf.size(), suf.size(), suf) == 0)
        return true;
    }
    return false;
  };
  auto is_neon_vector_type = [](const std::string& s) {
    // float64x2_t / int32x4_t / uint8x16_t / poly64x2_t shapes.
    static const char* const kPrefixes[] = {"float", "int",  "uint",
                                            "poly"};
    for (const char* p : kPrefixes) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (s.compare(0, len, p) == 0 && s.size() > len + 3 &&
          s.find('x', len) != std::string::npos &&
          s.compare(s.size() - 2, 2, "_t") == 0 &&
          std::isdigit(static_cast<unsigned char>(s[len])))
        return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const std::string& s = t[i].text;
    if (kIntrinHeaders.count(s)) {
      ctx.report(i, "simd-intrinsics",
                 "vector-intrinsics header <" + s +
                     ".h> outside src/dsp/simd/; raw SIMD lives behind the "
                     "kernel table so the scalar reference and parity tests "
                     "stay authoritative");
      continue;
    }
    // x86: _mm_/_mm256_/_mm512_ calls and __m128/__m256/__m512 types.
    if (s.rfind("_mm", 0) == 0 || s.rfind("__m128", 0) == 0 ||
        s.rfind("__m256", 0) == 0 || s.rfind("__m512", 0) == 0) {
      ctx.report(i, "simd-intrinsics",
                 "x86 intrinsic `" + s +
                     "` outside src/dsp/simd/; add a kernel-table entry with "
                     "a scalar reference instead");
      continue;
    }
    // NEON: v...q_<elem>( calls and <base><bits>x<lanes>_t vector types.
    if (is_neon_vector_type(s) ||
        (s.size() > 2 && s[0] == 'v' && has_neon_suffix(s) &&
         is(t, i + 1, "("))) {
      ctx.report(i, "simd-intrinsics",
                 "NEON intrinsic `" + s +
                     "` outside src/dsp/simd/; add a kernel-table entry with "
                     "a scalar reference instead");
    }
  }
}

bool path_in_bench(const std::string& path) {
  return path.find("/bench/") != std::string::npos ||
         path.rfind("bench/", 0) == 0;
}

bool path_in_obs(const std::string& path) {
  return path.find("src/obs/") != std::string::npos;
}

bool path_in_simd(const std::string& path) {
  return path.find("src/dsp/simd/") != std::string::npos;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "wall-clock", "rng-seed", "unordered-iter", "ptr-order",
      "parallel-capture", "simd-intrinsics"};
  return kIds;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  LexResult lexed = lex(content);
  std::vector<Finding> findings;
  Ctx ctx;
  ctx.path = &path;
  ctx.tokens = &lexed.tokens;
  ctx.allow = &lexed.allow;
  ctx.findings = &findings;
  ctx.in_bench = path_in_bench(path);
  ctx.in_obs = path_in_obs(path);
  ctx.in_simd = path_in_simd(path);
  rule_wall_clock(ctx);
  rule_rng_seed(ctx);
  rule_unordered_iter(ctx);
  rule_ptr_order(ctx);
  rule_parallel_capture(ctx);
  rule_simd_intrinsics(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, bool* io_error) {
  if (io_error) *io_error = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (io_error) *io_error = true;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str());
}

bool is_cpp_source(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".cxx", ".h", ".hpp"}) {
    const std::size_t len = std::char_traits<char>::length(ext);
    if (path.size() >= len &&
        path.compare(path.size() - len, len, ext) == 0)
      return true;
  }
  return false;
}

}  // namespace detlint
