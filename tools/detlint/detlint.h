// detlint — repo-specific static checker for the DESIGN.md determinism
// contract. Token-level (no libclang): lexes C++ source, strips comments and
// string literals, and pattern-matches the token stream against a fixed set
// of named rules. Diagnostics carry file:line and a rule id; a finding on a
// line whose source carries `// detlint: allow(<rule>)` (same line, or a
// standalone comment on the previous line) is suppressed.
//
// Rules (see DESIGN.md "Statically enforced determinism rules"):
//   wall-clock       entropy / wall-clock sources outside bench/
//   rng-seed         RNG engines not seeded through the substream scheme
//   unordered-iter   iteration over unordered containers (ordering leak)
//   ptr-order        pointer values used for hashing or ordering
//   parallel-capture unsynchronized by-reference mutation inside
//                    core::parallel_for lambda bodies
//   simd-intrinsics  raw vector intrinsics (x86 _mm*/__m*, NEON v*q_*)
//                    outside src/dsp/simd/ — kernels must ship behind the
//                    dispatch table with a scalar reference and parity test
#pragma once

#include <string>
#include <vector>

namespace detlint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Lints one translation unit given its contents. `path` is used for
/// diagnostics and for path-scoped rules (files under a `bench/` directory
/// are exempt from wall-clock).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// Reads `path` from disk and lints it. Returns empty (no findings) and sets
/// `*io_error` if the file cannot be read.
std::vector<Finding> lint_file(const std::string& path, bool* io_error);

/// True for extensions detlint scans (.h .hpp .cpp .cc .cxx).
bool is_cpp_source(const std::string& path);

/// All rule ids, for CLI help and the fixture tests.
const std::vector<std::string>& rule_ids();

}  // namespace detlint
