// detlint CLI: lints the given files/directories (recursing into dirs,
// .cpp/.cc/.cxx/.h/.hpp only) and prints one `path:line: [rule] message`
// diagnostic per finding. Exit code 1 when anything fires, 2 on usage / IO
// errors — so `ctest` and CI can gate on it directly.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "detlint.h"

namespace fs = std::filesystem;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: detlint [--exclude SUBSTR]... PATH...\n"
               "Static determinism/concurrency checks for this repo.\n"
               "Rules:");
  for (const auto& r : detlint::rule_ids()) std::fprintf(stderr, " %s", r.c_str());
  std::fprintf(stderr,
               "\nSuppress a finding with `// detlint: allow(<rule>)` on the "
               "same line\nor a standalone comment on the line above.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--exclude") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      excludes.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) &&
            detlint::is_cpp_source(it->path().string()))
          files.push_back(it->path().generic_string());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(fs::path(root).generic_string());
    } else {
      std::fprintf(stderr, "detlint: cannot read %s\n", root.c_str());
      return 2;
    }
  }
  const auto excluded = [&](const std::string& f) {
    for (const std::string& x : excludes)
      if (f.find(x) != std::string::npos) return true;
    return false;
  };
  files.erase(std::remove_if(files.begin(), files.end(), excluded),
              files.end());
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  bool io_failed = false;
  for (const std::string& f : files) {
    bool io_error = false;
    const auto findings = detlint::lint_file(f, &io_error);
    if (io_error) {
      std::fprintf(stderr, "detlint: cannot read %s\n", f.c_str());
      io_failed = true;
      continue;
    }
    for (const auto& d : findings) {
      std::printf("%s:%d: [%s] %s\n", d.path.c_str(), d.line, d.rule.c_str(),
                  d.message.c_str());
    }
    total += findings.size();
  }
  std::fprintf(stderr, "detlint: %zu file(s) scanned, %zu finding(s)\n",
               files.size(), total);
  if (io_failed) return 2;
  return total == 0 ? 0 : 1;
}
