// ZigBee sensor bridge (paper §4.5).
//
// A backscatter sensor node reuses a phone's Bluetooth advertisements to
// emit real 802.15.4 frames on ZigBee channel 14, which an off-the-shelf
// ZigBee hub (TI CC2531 class) receives — no ZigBee radio on the sensor.
#include <cstdio>

#include "backscatter/zigbee_synth.h"
#include "channel/awgn.h"
#include "channel/link.h"
#include "zigbee/frame.h"

int main() {
  using namespace itb;

  std::printf("=== battery-free ZigBee sensor via BLE backscatter ===\n\n");

  // Sensor report: temperature + humidity + node id.
  const phy::Bytes report = {0x10,        // node id
                             0x01, 0x2C,  // temperature x100 (30.0 C)
                             0x00, 0x37,  // humidity x1 (55 %)
                             0xAB, 0xCD}; // sequence/check

  backscatter::ZigbeeSynthConfig cfg;  // BLE 38 -> ZigBee ch 14 (-6 MHz)
  const auto synth = backscatter::synthesize_zigbee(report, cfg);
  std::printf("synthesized 802.15.4 frame: %zu-byte PPDU, %.0f us on air, "
              "%zu switch transitions\n",
              synth.ppdu.size(), synth.duration_us, synth.state_transitions);

  // Hub-side decode after downconversion (as in the backscatter tests).
  dsp::CVec shifted =
      channel::apply_cfo(synth.waveform, -cfg.shift_hz, cfg.sample_rate_hz);
  dsp::CVec rx_samples(shifted.size() / 12);
  for (std::size_t i = 0; i < rx_samples.size(); ++i) {
    dsp::Complex acc{0, 0};
    for (std::size_t k = 0; k < 12; ++k) acc += shifted[i * 12 + k];
    rx_samples[i] = acc / 12.0;
  }
  const auto decoded = zigbee::zigbee_receive(rx_samples);
  if (decoded && decoded->fcs_ok) {
    const auto& p = decoded->payload;
    std::printf("hub decoded: node %u, temperature %.1f C, humidity %u %%\n",
                p[0], (p[1] << 8 | p[2]) / 10.0, p[3] << 8 | p[4]);
  } else {
    std::printf("hub failed to decode the frame\n");
    return 1;
  }

  // Link budget at the paper's Fig. 14 geometry.
  channel::BackscatterLinkConfig link;
  link.ble_tx_power_dbm = 0.0;  // CC2650 default
  link.ble_tag_distance_m = 2.0 * 0.3048;
  link.rx_bandwidth_hz = 2e6;
  link.rx_noise_figure_db = 8.0;
  std::printf("\nRSSI at the hub (CC2650 at 2 ft from the sensor):\n");
  for (const double d_ft : {3.0, 9.0, 15.0}) {
    const auto s = channel::backscatter_rssi(link, d_ft * 0.3048);
    std::printf("  hub at %4.0f ft: %6.1f dBm (ZigBee sensitivity ~ -97 dBm)\n",
                d_ft, s.rssi_dbm);
  }
  std::printf("\na ZigBee radio would draw tens of mW to send this report; "
              "the tag spends tens of uW.\n");
  return 0;
}
