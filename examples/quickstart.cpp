// Quickstart: the whole interscatter pipeline in one page.
//
//   1. Craft a BLE advertising payload that turns the advertiser into a
//      single-tone RF source (paper §2.2).
//   2. Let the tag detect the packet and backscatter a standards-compliant
//      2 Mbps 802.11b frame shifted onto Wi-Fi channel 11 (§2.3).
//   3. Decode the frame with the commodity Wi-Fi receiver model and verify
//      the payload survived the trip.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "backscatter/wifi_synth.h"
#include "ble/single_tone.h"
#include "channel/awgn.h"
#include "core/interscatter.h"
#include "wifi/dsss_rx.h"

int main() {
  using namespace itb;

  // --- 1. Single-tone BLE advertisement -----------------------------------
  ble::SingleToneSpec spec;
  spec.channel_index = 38;           // 2426 MHz, the paper's configuration
  spec.sign = ble::ToneSign::kHigh;  // whitened air bits all ones
  const ble::SingleToneResult tone = ble::make_single_tone_packet(spec);

  std::printf("BLE single tone: channel %u, payload %zu bytes, tone window %.0f us\n",
              spec.channel_index, tone.payload.size(), tone.tone_duration_us());
  std::printf("  payload bytes an app would pass to the advertising API:\n  ");
  for (const auto b : tone.payload) std::printf("%02X ", b);
  std::printf("\n\n");

  // --- 2. Backscatter a Wi-Fi frame ----------------------------------------
  const std::string message = "hello from an implant";
  phy::Bytes psdu(message.begin(), message.end());

  backscatter::WifiSynthConfig synth_cfg;
  synth_cfg.rate = wifi::DsssRate::k2Mbps;
  synth_cfg.shift_hz = 36e6;  // BLE 38 (2426) -> Wi-Fi channel 11 (2462)
  const backscatter::WifiSynthResult synth =
      backscatter::synthesize_wifi(psdu, synth_cfg);

  std::printf("Tag synthesized %s 802.11b frame: %.0f us on air, %zu switch "
              "transitions\n",
              std::string(wifi::rate_name(synth_cfg.rate)).c_str(),
              synth.duration_us, synth.state_transitions);

  // --- 3. Receive on a commodity Wi-Fi card --------------------------------
  // Down-convert from the tag's shift and matched-filter to chip rate.
  dsp::CVec shifted = channel::apply_cfo(synth.waveform, -synth_cfg.shift_hz,
                                         synth_cfg.sample_rate_hz);
  dsp::CVec chips(shifted.size() / 13);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    dsp::Complex acc{0, 0};
    for (std::size_t k = 0; k < 13; ++k) acc += shifted[i * 13 + k];
    chips[i] = acc / 13.0;
  }

  const wifi::DsssReceiver rx;
  const auto result = rx.receive(chips);
  if (!result || !result->header_ok) {
    std::printf("no frame decoded\n");
    return 1;
  }
  const std::string decoded(result->psdu.begin(), result->psdu.end());
  std::printf("Wi-Fi receiver decoded %zu bytes at %s: \"%s\"\n",
              result->psdu.size(),
              std::string(wifi::rate_name(result->header.rate)).c_str(),
              decoded.c_str());
  std::printf("round trip %s\n", decoded == message ? "OK" : "CORRUPTED");

  // --- Bonus: what the link budget says about range -------------------------
  core::UplinkScenario s;
  s.ble_tx_power_dbm = 10.0;  // phone-class Bluetooth
  for (const double d_ft : {5.0, 15.0, 30.0}) {
    s.tag_rx_distance_m = d_ft * channel::kFeetToMeters;
    const auto b = core::InterscatterSystem(s).budget(psdu.size());
    std::printf("  at %4.0f ft: RSSI %6.1f dBm, PER %.3f\n", d_ft, b.rssi_dbm,
                b.per);
  }
  return decoded == message ? 0 : 1;
}
