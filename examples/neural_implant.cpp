// Implanted neural recording interface (paper §5.2 / Fig. 2b).
//
// An 8-channel ECoG front-end samples local field potentials; the implant
// streams frames at 11 Mbps through 1.6 mm of tissue to a phone, while the
// phone sends configuration commands back over the OFDM-AM downlink
// (query-reply protocol, §2.5).
#include <cstdio>
#include <vector>

#include "channel/tissue.h"
#include "core/downlink.h"
#include "core/interscatter.h"
#include "dsp/rng.h"
#include "mac/query_reply.h"
#include "wifi/rates.h"

namespace {

/// One ECoG frame: 8 channels x 25 samples of 10-bit data packed to bytes.
itb::phy::Bytes make_ecog_frame(itb::dsp::Xoshiro256& rng, std::uint16_t seq) {
  itb::phy::Bytes out;
  out.push_back(static_cast<std::uint8_t>(seq & 0xFF));
  out.push_back(static_cast<std::uint8_t>(seq >> 8));
  // 8 ch x 25 samples x 10 bits = 2000 bits = 250 bytes... trimmed to fit
  // the 11 Mbps budget of 209 bytes per BLE advertisement (paper §2.3.3):
  // 8 ch x 20 samples = 1600 bits = 200 bytes.
  for (int i = 0; i < 200; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.uniform_int(256)));
  }
  return out;
}

}  // namespace

int main() {
  using namespace itb;
  using channel::kInchesToMeters;

  std::printf("=== implanted ECoG interface -> phone ===\n\n");

  // Uplink at 11 Mbps through muscle tissue.
  const auto muscle = channel::muscle_2g4();
  const double tissue_db = channel::tissue_loss_db(muscle, 2.45e9, 1.6e-3) +
                           channel::interface_loss_db(muscle, 2.45e9) + 11.0;

  core::UplinkScenario s;
  s.ble_tx_power_dbm = 10.0;
  s.ble_tag_distance_m = 3.0 * kInchesToMeters;
  s.rate = wifi::DsssRate::k11Mbps;
  s.tag_antenna = channel::neural_implant_loop();
  s.tag_medium_loss_db = tissue_db;
  s.pathloss_exponent = 1.8;

  dsp::Xoshiro256 rng(42);
  std::printf("streaming 8-channel ECoG frames (202 B at 11 Mbps):\n");
  for (const double d_in : {6.0, 18.0, 36.0}) {
    s.tag_rx_distance_m = d_in * kInchesToMeters;
    const core::InterscatterSystem sys(s);
    const auto frame = make_ecog_frame(rng, 1);
    const auto b = sys.budget(frame.size());
    // Each BLE advertising event (20 ms) carries one frame: effective
    // application goodput.
    const double goodput_kbps = frame.size() * 8.0 / 20.0;
    std::printf("  phone at %4.0f in: RSSI %6.1f dBm PER %.3f -> %.0f kbps "
                "sustained ECoG stream\n",
                d_in, b.rssi_dbm, b.per, goodput_kbps * (1.0 - b.per));
  }

  // Downlink: phone reconfigures the implant (gain, channel mask) over
  // OFDM-AM. The implant's peak detector needs > -32 dBm.
  std::printf("\ndownlink commands over 802.11g AM (125 kbps):\n");
  core::DownlinkScenario dl;
  dl.wifi_tx_power_dbm = 22.0;
  dl.chipset = wifi::ar9580();
  for (const double d_ft : {4.0, 10.0, 16.0}) {
    dl.distance_m = d_ft * 0.3048;
    mac::QueryFrame q;
    q.tag_address = 0x21;
    q.opcode = 0x05;  // "set gain" command
    const auto r = core::simulate_downlink(dl, q.to_bits());
    const auto parsed = mac::QueryFrame::from_bits(r.received);
    std::printf("  phone at %4.0f ft: rx %6.1f dBm, BER %.3f, command %s\n",
                d_ft, r.rx_power_dbm, r.ber,
                parsed.has_value() ? "ACCEPTED" : "rejected (checksum)");
  }

  // Multi-implant polling (paper §2.5): one phone, three implants.
  std::printf("\nround-robin polling of 3 implants:\n");
  std::vector<mac::PolledTag> tags = {{0x21, make_ecog_frame(rng, 2)},
                                      {0x22, make_ecog_frame(rng, 3)},
                                      {0x23, make_ecog_frame(rng, 4)}};
  const auto stats = mac::simulate_polling(tags, {}, 50, 7);
  std::printf("  %zu queries, %zu replies, aggregate goodput %.1f kbps\n",
              stats.queries_sent, stats.replies_received,
              stats.aggregate_goodput_kbps);
  return 0;
}
