// Card-to-card communication (paper §5.3 / Fig. 2c).
//
// Two credit-card form-factor devices exchange a payment handshake by
// backscattering the single tone produced by a nearby smartphone's
// Bluetooth radio — ambient-backscatter style, but with a commodity phone
// instead of a TV tower.
#include <cmath>
#include <cstdio>

#include "backscatter/detector.h"
#include "ble/single_tone.h"
#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/units.h"

namespace {

using namespace itb;

/// 18-bit payment message (paper's payload size): 10-bit amount + 8-bit id.
phy::Bits payment_message(unsigned amount_cents, std::uint8_t payee) {
  phy::Bits out = phy::uint_to_bits_lsb_first(amount_cents & 0x3FF, 10);
  const phy::Bits id = phy::uint_to_bits_lsb_first(payee, 8);
  out.insert(out.end(), id.begin(), id.end());
  return out;
}

}  // namespace

int main() {
  std::printf("=== card-to-card payment over phone Bluetooth ===\n\n");

  // The phone advertises single-tone packets; card A modulates (OOK at
  // 100 kbps), card B's envelope detector decodes.
  ble::SingleToneSpec spec;
  spec.channel_index = 38;
  const auto tone = ble::make_single_tone_packet(spec);
  std::printf("phone provides a %.0f us tone per advertisement (every 20 ms)\n",
              tone.tone_duration_us());

  channel::BackscatterLinkConfig link;
  link.ble_tx_power_dbm = 10.0;  // phone-class
  link.ble_tag_distance_m = 3.0 * channel::kInchesToMeters;
  link.tag_antenna = channel::card_antenna();
  link.rx_antenna = channel::card_antenna();
  link.rx_bandwidth_hz = 2e6;

  const double fs = 20e6;
  const std::size_t bit_samples = static_cast<std::size_t>(fs / 100e3);
  const phy::Bits msg = payment_message(/*$4.20*/ 420, /*payee*/ 0x5C);
  // 18 bits at 100 kbps = 180 us: fits inside one 248 us tone window.
  std::printf("18-bit message occupies %.0f us of the %.0f us window\n\n",
              msg.size() * 10.0, tone.tone_duration_us());

  dsp::Xoshiro256 rng(99);
  for (const double d_in : {6.0, 15.0, 24.0, 30.0}) {
    const auto s =
        channel::backscatter_rssi(link, d_in * channel::kInchesToMeters);
    const double amp = std::sqrt(dsp::dbm_to_watts(s.rssi_dbm));

    dsp::CVec wave;
    for (const auto b : msg) {
      for (std::size_t i = 0; i < bit_samples; ++i) {
        wave.push_back(b ? dsp::Complex{amp, 0.0}
                         : dsp::Complex{amp * 0.1, 0.0});
      }
    }
    const double noise_w = dsp::dbm_to_watts(
        channel::thermal_noise_dbm(link.rx_bandwidth_hz, 10.0));
    const auto noisy = channel::add_noise_variance(wave, noise_w, rng);

    backscatter::PeakDetectorConfig pdc;
    pdc.sample_rate_hz = fs;
    pdc.sensitivity_dbm = -54.0;
    const backscatter::PeakDetector det(pdc);
    const auto out = det.decode_ook(noisy, bit_samples);

    std::size_t errors = msg.size();
    if (out.size() >= msg.size()) {
      errors = 0;
      for (std::size_t i = 0; i < msg.size(); ++i) errors += out[i] != msg[i];
    }
    std::printf("  cards %4.0f in apart: rx %6.1f dBm -> %s (%zu bit errors)\n",
                d_in, s.rssi_dbm,
                errors == 0 ? "payment verified" : "handshake failed", errors);
  }
  return 0;
}
