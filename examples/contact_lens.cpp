// Smart contact lens scenario (paper §5.1 / Fig. 2a).
//
// A glucose-sensing lens wakes on each advertisement from the user's watch,
// backscatters one 2 Mbps Wi-Fi packet with the latest readings to the
// phone, and sleeps. This example reports the end-to-end link at the
// paper's in-vitro geometry plus the battery-life arithmetic that motivates
// backscatter in the first place.
#include <cstdio>
#include <cstring>

#include "backscatter/ic_power.h"
#include "backscatter/tag.h"
#include "channel/tissue.h"
#include "core/interscatter.h"

namespace {

/// A glucose reading as the lens firmware would pack it.
struct GlucoseReading {
  std::uint32_t timestamp_s;
  std::uint16_t glucose_mg_dl_x10;
  std::uint16_t battery_mv;
};

itb::phy::Bytes pack(const GlucoseReading& r) {
  itb::phy::Bytes out(sizeof(r));
  std::memcpy(out.data(), &r, sizeof(r));
  return out;
}

}  // namespace

int main() {
  using namespace itb;
  using channel::kInchesToMeters;

  std::printf("=== smart contact lens -> watch(BLE) -> phone(Wi-Fi) ===\n\n");

  // The lens link: watch 12 in away, saline immersion, 1 cm loop antenna.
  const double saline_db =
      channel::tissue_loss_db(channel::saline_2g4(), 2.45e9, 0.002) +
      channel::interface_loss_db(channel::saline_2g4(), 2.45e9);

  core::UplinkScenario s;
  s.ble_tx_power_dbm = 10.0;  // Note 5 / iPhone 6 class (paper §4.2)
  s.ble_tag_distance_m = 12.0 * kInchesToMeters;
  s.tag_antenna = channel::contact_lens_loop();
  s.tag_medium_loss_db = saline_db;
  s.pathloss_exponent = 1.8;

  // Fresh reading every advertising interval (20 ms); report a burst.
  const GlucoseReading reading{.timestamp_s = 1700000000,
                               .glucose_mg_dl_x10 = 1042,  // 104.2 mg/dL
                               .battery_mv = 3012};
  const phy::Bytes psdu = pack(reading);

  std::printf("reading: %u.%u mg/dL at t=%u, packed to %zu bytes\n",
              reading.glucose_mg_dl_x10 / 10, reading.glucose_mg_dl_x10 % 10,
              reading.timestamp_s, psdu.size());

  for (const double d_in : {6.0, 12.0, 24.0, 36.0}) {
    s.tag_rx_distance_m = d_in * kInchesToMeters;
    const core::InterscatterSystem sys(s);
    const auto b = sys.budget(psdu.size());
    const auto r = sys.simulate_frame(psdu);
    std::printf("  phone at %4.0f in: RSSI %6.1f dBm, budget PER %.3f, "
                "waveform decode %s\n",
                d_in, b.rssi_dbm, b.per,
                r.payload_ok ? "OK" : (r.detected ? "corrupt" : "miss"));
  }

  // Power story: the paper's whole point.
  const backscatter::IcPowerModel power;
  const double airtime_us = 224.0;  // short preamble + ~8 B at 2 Mbps
  const double duty = airtime_us / 20000.0;  // one packet per 20 ms event
  std::printf("\npower: %.1f uW while backscattering, %.2f uW averaged at a "
              "20 ms reporting interval\n",
              power.active_power(wifi::DsssRate::k2Mbps, 35.75e6).total_uw(),
              power.average_power_uw(wifi::DsssRate::k2Mbps, 35.75e6, duty));
  std::printf("a BLE radio TX at ~18 mW would be ~%0.f00x the power budget of "
              "this lens\n",
              18000.0 / power.active_power(wifi::DsssRate::k2Mbps, 35.75e6)
                            .total_uw() / 100.0);
  return 0;
}
