// Hospital-ward fleet scenario: implanted tags in beds along a corridor,
// one BLE helper per room, APs down the corridor, three Wi-Fi channels in
// FDMA with TDMA polling inside each channel (the paper's §2.5 network
// picture scaled from "a few tags" to a whole ward and beyond).
//
// Sweeps the fleet from 10 to 5000 tags and prints the scaling table:
// aggregate and per-tag goodput, query-latency percentiles, collision and
// airtime accounting, and the energy-harvest duty cycle per implant.
#include <chrono>
#include <cstdio>

#include "sim/network.h"

int main() {
  using namespace itb;

  std::printf(
      "# hospital ward: FDMA x TDMA interscatter fleet "
      "(3 Wi-Fi channels, DataAsRts reservation)\n");
  std::printf(
      "%7s %9s %12s %12s %10s %10s %10s %9s %9s %9s\n", "tags", "channels",
      "agg_kbps", "tag_bps", "p50_ms", "p99_ms", "collide%", "harvest%",
      "tag_uW", "wall_ms");

  for (const std::size_t tags : {10, 100, 1000, 5000}) {
    sim::NetworkConfig cfg;
    cfg.topology.kind = sim::TopologyKind::kHospitalWard;
    cfg.topology.num_tags = tags;
    cfg.topology.num_helpers = 0;  // one helper per room
    // The ward grows with the fleet; keep one corridor AP per ~4 rooms so
    // the downlink stays in range of every bed.
    const std::size_t rooms = (tags + 3) / 4;
    cfg.topology.num_aps = rooms < 24 ? 6 : rooms / 4;
    // Research-grade envelope detector (-49 dBm, vs the paper's -32 dBm
    // off-the-shelf part): gives the corridor APs ~13 m of downlink range.
    cfg.detector_sensitivity_dbm = -49.0;
    cfg.wifi_channels = {1, 6, 11};
    cfg.rounds = 8;
    cfg.reservation = mac::ReservationScheme::kDataAsRts;
    cfg.seed = 2026;
    cfg.num_threads = 1;  // single-threaded by design: prove the base speed
    cfg.keep_per_tag = false;

    const auto t0 = std::chrono::steady_clock::now();
    const sim::NetworkCoordinator net(cfg);
    const sim::NetworkStats s = net.run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    const double attempts = static_cast<double>(
        s.replies_received + s.collisions + s.decode_failures);
    const double collide_pct =
        attempts > 0.0
            ? 100.0 * static_cast<double>(s.collisions) / attempts
            : 0.0;
    std::printf(
        "%7zu %9zu %12.2f %12.1f %10.1f %10.1f %10.2f %9.3f %9.3f %9.1f\n",
        s.num_tags, s.num_channels, s.aggregate_goodput_kbps,
        s.mean_tag_goodput_kbps * 1e3, s.query_latency.quantile_us(0.5) / 1e3,
        s.query_latency.quantile_us(0.99) / 1e3, collide_pct,
        100.0 * s.mean_harvest_duty, s.mean_tag_power_uw, wall_ms);
  }

  std::printf("# determinism: digests at 1/2/8 threads must match\n");
  sim::NetworkConfig cfg;
  cfg.topology.kind = sim::TopologyKind::kHospitalWard;
  cfg.topology.num_tags = 1000;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = 6;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 4;
  cfg.seed = 2026;
  for (const std::size_t threads : {1, 2, 8}) {
    cfg.num_threads = threads;
    std::printf("#   threads=%zu digest=%016llx\n", threads,
                static_cast<unsigned long long>(
                    sim::NetworkCoordinator(cfg).run().digest()));
  }
  return 0;
}
