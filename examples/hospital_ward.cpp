// Hospital-ward fleet scenario: implanted tags in beds along a corridor,
// one BLE helper per room, APs down the corridor, three Wi-Fi channels in
// FDMA with TDMA polling inside each channel (the paper's §2.5 network
// picture scaled from "a few tags" to a whole ward and beyond).
//
// Sweeps the fleet from 10 to 5000 tags and prints the scaling table:
// aggregate and per-tag goodput, query-latency percentiles, collision and
// airtime accounting, and the energy-harvest duty cycle per implant.
//
// Observability flags (ISSUE 8):
//   --trace-out <file.json>   write the fault-night run's sim-time trace as
//                             Chrome/Perfetto trace-event JSON (open in
//                             ui.perfetto.dev: AP reboot + microwave burst
//                             appear as fault spans above the poll tracks)
//   --metrics-out <file>      write the fault-night metrics snapshot
//                             (Prometheus text if the name ends in .prom,
//                             JSON otherwise)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/capture.h"
#include "obs/prof.h"
#include "sim/network.h"

int main(int argc, char** argv) {
  using namespace itb;

  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }
  // Wall-clock profiling of the demo itself (the ONE sanctioned wall-clock
  // domain); sim results and exports never see these readings.
  obs::prof_enable(true);

  std::printf(
      "# hospital ward: FDMA x TDMA interscatter fleet "
      "(3 Wi-Fi channels, DataAsRts reservation)\n");
  std::printf(
      "%7s %9s %12s %12s %10s %10s %10s %9s %9s %9s\n", "tags", "channels",
      "agg_kbps", "tag_bps", "p50_ms", "p99_ms", "collide%", "harvest%",
      "tag_uW", "wall_ms");

  for (const std::size_t tags : {10, 100, 1000, 5000, 50000}) {
    sim::NetworkConfig cfg;
    cfg.topology.kind = sim::TopologyKind::kHospitalWard;
    cfg.topology.num_tags = tags;
    cfg.topology.num_helpers = 0;  // one helper per room
    // The ward grows with the fleet; keep one corridor AP per ~4 rooms so
    // the downlink stays in range of every bed.
    const std::size_t rooms = (tags + 3) / 4;
    cfg.topology.num_aps = rooms < 24 ? 6 : rooms / 4;
    // Research-grade envelope detector (-49 dBm, vs the paper's -32 dBm
    // off-the-shelf part): gives the corridor APs ~13 m of downlink range.
    cfg.detector_sensitivity_dbm = -49.0;
    cfg.wifi_channels = {1, 6, 11};
    cfg.rounds = 8;
    cfg.reservation = mac::ReservationScheme::kDataAsRts;
    cfg.seed = 2026;
    // Single-threaded up to 5k proves the base speed; the 50k "hospital
    // campus" row fans out across all hardware threads (results identical
    // either way — the digest is thread-count invariant).
    cfg.num_threads = tags >= 50000 ? 0 : 1;
    cfg.keep_per_tag = false;

    // Wall-clock here only times the demo run.
    // detlint: allow(wall-clock)
    const auto t0 = std::chrono::steady_clock::now();
    const sim::NetworkCoordinator net(cfg);
    const sim::NetworkStats s = net.run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)  // detlint: allow(wall-clock)
            .count();

    const double attempts = static_cast<double>(
        s.replies_received + s.collisions + s.decode_failures);
    const double collide_pct =
        attempts > 0.0
            ? 100.0 * static_cast<double>(s.collisions) / attempts
            : 0.0;
    std::printf(
        "%7zu %9zu %12.2f %12.1f %10.1f %10.1f %10.2f %9.3f %9.3f %9.1f\n",
        s.num_tags, s.num_channels, s.aggregate_goodput_kbps,
        s.mean_tag_goodput_kbps * 1e3, s.query_latency.quantile_us(0.5) / 1e3,
        s.query_latency.quantile_us(0.99) / 1e3, collide_pct,
        100.0 * s.mean_harvest_duty, s.mean_tag_power_uw, wall_ms);
  }

  std::printf("# determinism: digests at 1/2/8 threads must match\n");
  sim::NetworkConfig cfg;
  cfg.topology.kind = sim::TopologyKind::kHospitalWard;
  cfg.topology.num_tags = 1000;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = 6;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 4;
  cfg.seed = 2026;
  for (const std::size_t threads : {1, 2, 8}) {
    cfg.num_threads = threads;
    std::printf("#   threads=%zu digest=%016llx\n", threads,
                static_cast<unsigned long long>(
                    sim::NetworkCoordinator(cfg).run().digest()));
  }

  // --- a bad night on the ward ----------------------------------------
  // Two hand-scheduled faults against a 240-implant ward: the corridor AP
  // nearest the nurses' station reboots for firmware at "midnight" (4 s,
  // two TDMA rounds), and the break-room microwave runs for 3 s on
  // channel 6 (+18 dB noise rise, CCA busy most of the burst). Bare TDMA
  // drops the affected polls; ARQ + AP failover + rate fallback rides
  // them out.
  std::printf(
      "\n# fault night: AP 0 reboot @ [2s, 6s), microwave oven on ch 6 "
      "@ [7s, 10s) +18 dB\n");
  sim::NetworkConfig ward;
  ward.topology.kind = sim::TopologyKind::kHospitalWard;
  ward.topology.num_tags = 240;
  ward.topology.num_helpers = 0;
  ward.topology.num_aps = 15;
  ward.detector_sensitivity_dbm = -49.0;
  ward.wifi_channels = {1, 6, 11};
  ward.rounds = 8;  // 80 slots/channel -> ~1.6 s per round, ~13 s of night
  ward.reservation = mac::ReservationScheme::kDataAsRts;
  ward.seed = 2026;
  ward.faults.ap_outage(0, 2e6, 4e6);
  ward.faults.interference(6, 7e6, 3e6, 18.0);

  sim::NetworkConfig resilient = ward;
  resilient.enable_arq = true;
  resilient.arq.max_attempts = 8;
  resilient.arq.retry_budget = 16;
  resilient.arq.backoff_base_slots = 1;
  resilient.arq.backoff_cap_slots = 8;
  resilient.fallback.enable_rate_fallback = true;
  resilient.fallback.enable_zigbee_fallback = true;
  resilient.fallback.down_after_failures = 2;
  resilient.ap_failover = true;

  const sim::NetworkStats bare = sim::NetworkCoordinator(ward).run();
  obs::RunCapture capture;
  const sim::NetworkStats safe =
      sim::NetworkCoordinator(resilient).run(&capture);

  std::printf("%-28s %14s %14s\n", "metric", "bare_tdma", "arq+fallback");
  const auto row = [](const char* name, double b, double s,
                      const char* fmt = "%-28s %14.3f %14.3f\n") {
    std::printf(fmt, name, b, s);
  };
  row("delivery ratio", bare.delivery_ratio, safe.delivery_ratio);
  row("messages delivered", static_cast<double>(bare.messages_delivered),
      static_cast<double>(safe.messages_delivered), "%-28s %14.0f %14.0f\n");
  row("messages dropped", static_cast<double>(bare.messages_dropped),
      static_cast<double>(safe.messages_dropped), "%-28s %14.0f %14.0f\n");
  row("retransmissions", static_cast<double>(bare.retransmissions),
      static_cast<double>(safe.retransmissions), "%-28s %14.0f %14.0f\n");
  row("outage skips / failovers", static_cast<double>(bare.outage_skips),
      static_cast<double>(safe.failover_polls), "%-28s %14.0f %14.0f\n");
  row("fallback-rate polls", static_cast<double>(bare.fallback_polls),
      static_cast<double>(safe.fallback_polls), "%-28s %14.0f %14.0f\n");
  row("mean attempts/delivery", bare.retry_histogram.mean_attempts(),
      safe.retry_histogram.mean_attempts());
  row("recovery p50 (ms)", bare.recovery_time.quantile_us(0.5) / 1e3,
      safe.recovery_time.quantile_us(0.5) / 1e3);
  row("recovery max (ms)", bare.recovery_time.max_us / 1e3,
      safe.recovery_time.max_us / 1e3);
  row("energy (nJ/delivered byte)", bare.energy_per_delivered_byte_nj,
      safe.energy_per_delivered_byte_nj);

  // --- observability exports (fault-night resilient run) ----------------
  std::printf("\n# obs: %zu trace events (%llu dropped), metrics digest %016llx\n",
              capture.trace.size(),
              static_cast<unsigned long long>(capture.trace.dropped()),
              static_cast<unsigned long long>(capture.metrics.digest()));
  if (trace_out != nullptr) {
    std::ofstream f(trace_out);
    capture.trace.write_perfetto_json(f);
    std::printf("# obs: wrote Perfetto trace to %s (open in ui.perfetto.dev)\n",
                trace_out);
  }
  if (metrics_out != nullptr) {
    std::ofstream f(metrics_out);
    const std::string name = metrics_out;
    if (name.size() >= 5 && name.rfind(".prom") == name.size() - 5) {
      capture.metrics.write_prometheus(f);
    } else {
      capture.metrics.write_json(f);
    }
    std::printf("# obs: wrote metrics snapshot to %s\n", metrics_out);
  }

  // Wall-clock attribution of the demo: how much of sim.run's time the
  // named child zones account for.
  std::ostringstream prof;
  obs::prof_write_table(prof, "sim.run");
  std::fputs(prof.str().c_str(), stdout);
  return 0;
}
