#include "ble/channel_map.h"

#include <cassert>

namespace itb::ble {

itb::dsp::Real ChannelMap::frequency_hz(unsigned channel_index) {
  assert(channel_index < kNumChannels);
  // Core spec Vol 6 Part B 1.4.1: advertising channels sit at the band edges
  // and middle; data channels are numbered 0..36 across the remaining slots.
  switch (channel_index) {
    case 37:
      return 2.402e9;
    case 38:
      return 2.426e9;
    case 39:
      return 2.480e9;
    default:
      break;
  }
  // Data channels: 0..10 -> 2404..2424 MHz, 11..36 -> 2428..2478 MHz.
  if (channel_index <= 10) {
    return 2.404e9 + 2e6 * static_cast<itb::dsp::Real>(channel_index);
  }
  return 2.428e9 + 2e6 * static_cast<itb::dsp::Real>(channel_index - 11);
}

}  // namespace itb::ble
