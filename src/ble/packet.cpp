#include "ble/packet.h"

#include <cassert>

#include "phycommon/crc.h"
#include "phycommon/lfsr.h"

namespace itb::ble {

using itb::phy::BleWhitener;
using itb::phy::bytes_to_bits_lsb_first;
using itb::phy::uint_to_bits_lsb_first;

namespace {

Bits header_and_payload_bits(AdvPduType type,
                             std::span<const std::uint8_t> adv_address,
                             std::span<const std::uint8_t> payload) {
  // PDU header: 4-bit type, 2 reserved bits, TxAdd, RxAdd, then 8-bit length.
  Bytes pdu;
  pdu.push_back(static_cast<std::uint8_t>(type));
  pdu.push_back(static_cast<std::uint8_t>(adv_address.size() + payload.size()));
  pdu.insert(pdu.end(), adv_address.begin(), adv_address.end());
  pdu.insert(pdu.end(), payload.begin(), payload.end());
  return bytes_to_bits_lsb_first(pdu);
}

}  // namespace

AdvPacket build_adv_packet(const AdvPacketConfig& cfg, unsigned channel_index) {
  assert(cfg.payload.size() <= kMaxAdvDataBytes);
  assert(channel_index < 40);

  const Bits pdu_bits = header_and_payload_bits(
      cfg.pdu_type, cfg.advertiser_address, cfg.payload);
  const Bits crc_bits = itb::phy::ble_crc24_bits(pdu_bits);

  Bits unwhitened = pdu_bits;
  unwhitened.insert(unwhitened.end(), crc_bits.begin(), crc_bits.end());

  BleWhitener whitener(channel_index);
  const Bits whitened = whitener.process(unwhitened);

  AdvPacket out;
  out.channel_index = channel_index;
  out.air_bits = bytes_to_bits_lsb_first(std::array<std::uint8_t, 1>{kPreambleByte});
  const Bits aa_bits = uint_to_bits_lsb_first(kAdvAccessAddress, 32);
  out.air_bits.insert(out.air_bits.end(), aa_bits.begin(), aa_bits.end());

  const std::size_t pdu_air_start = out.air_bits.size();
  out.air_bits.insert(out.air_bits.end(), whitened.begin(), whitened.end());

  // Offsets: preamble(8) + AA(32) + header(16) + AdvA(48) = 104 bits before
  // AdvData; CRC is the trailing 24 bits.
  out.payload_start_bit = pdu_air_start + 16 + 48;
  out.payload_end_bit = out.payload_start_bit + cfg.payload.size() * 8;
  out.crc_start_bit = out.air_bits.size() - 24;
  assert(out.payload_end_bit == out.crc_start_bit);
  return out;
}

std::optional<ParsedAdv> parse_adv_packet(const Bits& air_bits,
                                          unsigned channel_index) {
  constexpr std::size_t kHeaderAir = 8 + 32;  // preamble + AA
  if (air_bits.size() < kHeaderAir + 16 + 24) return std::nullopt;

  const std::uint64_t aa = itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(air_bits).subspan(8, 32));
  if (aa != kAdvAccessAddress) return std::nullopt;

  // De-whiten everything after the access address.
  BleWhitener whitener(channel_index);
  Bits whitened(air_bits.begin() + kHeaderAir, air_bits.end());
  const Bits pdu_and_crc = whitener.process(whitened);

  const auto hdr_type = static_cast<std::uint8_t>(
      itb::phy::bits_to_uint_lsb_first(
          std::span<const std::uint8_t>(pdu_and_crc).subspan(0, 4)));
  const auto length = static_cast<std::size_t>(itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(pdu_and_crc).subspan(8, 8)));

  const std::size_t pdu_bits_len = 16 + length * 8;
  if (pdu_and_crc.size() < pdu_bits_len + 24) return std::nullopt;
  if (length < 6) return std::nullopt;  // must at least hold AdvA

  ParsedAdv out;
  out.pdu_type = static_cast<AdvPduType>(hdr_type);

  const Bytes body = itb::phy::bits_to_bytes_lsb_first(
      std::span<const std::uint8_t>(pdu_and_crc).subspan(16, length * 8));
  for (int i = 0; i < 6; ++i) out.advertiser_address[i] = body[i];
  out.payload.assign(body.begin() + 6, body.end());

  const Bits pdu_bits(pdu_and_crc.begin(),
                      pdu_and_crc.begin() + static_cast<std::ptrdiff_t>(pdu_bits_len));
  const Bits expect_crc = itb::phy::ble_crc24_bits(pdu_bits);
  const std::span<const std::uint8_t> got_crc =
      std::span<const std::uint8_t>(pdu_and_crc).subspan(pdu_bits_len, 24);
  out.crc_ok = std::equal(expect_crc.begin(), expect_crc.end(), got_crc.begin());
  return out;
}

AdvPacket build_data_packet(const DataPacketConfig& cfg) {
  assert(cfg.payload.size() <= 255);
  assert(cfg.channel_index < 37);

  Bytes pdu;
  pdu.push_back(0x02);  // LLID = start of L2CAP message, NESN/SN/MD = 0
  pdu.push_back(static_cast<std::uint8_t>(cfg.payload.size()));
  pdu.insert(pdu.end(), cfg.payload.begin(), cfg.payload.end());
  const Bits pdu_bits = bytes_to_bits_lsb_first(pdu);
  const Bits crc_bits = itb::phy::ble_crc24_bits(pdu_bits);

  Bits unwhitened = pdu_bits;
  unwhitened.insert(unwhitened.end(), crc_bits.begin(), crc_bits.end());
  BleWhitener whitener(cfg.channel_index);
  const Bits whitened = whitener.process(unwhitened);

  AdvPacket out;
  out.channel_index = cfg.channel_index;
  out.air_bits = bytes_to_bits_lsb_first(std::array<std::uint8_t, 1>{kPreambleByte});
  const Bits aa_bits = uint_to_bits_lsb_first(cfg.access_address, 32);
  out.air_bits.insert(out.air_bits.end(), aa_bits.begin(), aa_bits.end());
  const std::size_t pdu_air_start = out.air_bits.size();
  out.air_bits.insert(out.air_bits.end(), whitened.begin(), whitened.end());

  out.payload_start_bit = pdu_air_start + 16;
  out.payload_end_bit = out.payload_start_bit + cfg.payload.size() * 8;
  out.crc_start_bit = out.air_bits.size() - 24;
  return out;
}

}  // namespace itb::ble
