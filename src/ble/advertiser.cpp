#include "ble/advertiser.h"

namespace itb::ble {

std::vector<AdvSlot> advertising_schedule(const AdvertiserTiming& timing,
                                          double packet_duration_us,
                                          std::size_t num_events) {
  std::vector<AdvSlot> out;
  out.reserve(num_events * timing.channels.size());
  for (std::size_t ev = 0; ev < num_events; ++ev) {
    const double event_start = static_cast<double>(ev) * timing.interval_ms * 1e3;
    double t = event_start;
    for (unsigned ch : timing.channels) {
      out.push_back({ch, t, packet_duration_us});
      t += packet_duration_us + timing.channel_gap_us;
    }
  }
  return out;
}

double reservation_window_us(const AdvertiserTiming& timing,
                             double packet_duration_us) {
  return 2.0 * timing.channel_gap_us + packet_duration_us;
}

}  // namespace itb::ble
