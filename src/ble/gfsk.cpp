#include "ble/gfsk.h"

#include <cassert>
#include <cmath>

#include "dsp/fir.h"

namespace itb::ble {

GfskModulator::GfskModulator(const GfskConfig& cfg) : cfg_(cfg) {
  const Real ratio = cfg_.sample_rate_hz / cfg_.symbol_rate_hz;
  sps_ = static_cast<std::size_t>(ratio);
  assert(std::abs(ratio - static_cast<Real>(sps_)) < 1e-9 &&
         "sample rate must be an integer multiple of symbol rate");
  gaussian_taps_ =
      itb::dsp::design_gaussian(cfg_.bt, sps_, cfg_.filter_span_symbols);
}

CVec GfskModulator::modulate(const Bits& bits) const {
  if (bits.empty()) return {};
  // NRZ mapping at sample rate: 1 -> +1, 0 -> -1.
  itb::dsp::RVec nrz(bits.size() * sps_);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const Real v = bits[i] ? 1.0 : -1.0;
    for (std::size_t k = 0; k < sps_; ++k) nrz[i * sps_ + k] = v;
  }
  // Gaussian pulse shaping of the frequency waveform.
  const itb::dsp::RVec freq = itb::dsp::filter_same(nrz, gaussian_taps_);

  // Frequency deviation: h = 2 * fd / symbol_rate  =>  fd = h * Rs / 2.
  const Real fd = cfg_.modulation_index * cfg_.symbol_rate_hz / 2.0;
  const Real phase_step = itb::dsp::kTwoPi * fd / cfg_.sample_rate_hz;

  CVec out(freq.size());
  Real phase = 0.0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    phase += phase_step * freq[i];
    out[i] = Complex{std::cos(phase), std::sin(phase)};
  }
  return out;
}

GfskDemodulator::GfskDemodulator(const GfskConfig& cfg) : cfg_(cfg) {
  sps_ = static_cast<std::size_t>(cfg_.sample_rate_hz / cfg_.symbol_rate_hz);
}

itb::dsp::RVec GfskDemodulator::instantaneous_frequency_hz(const CVec& samples) const {
  itb::dsp::RVec freq(samples.size(), 0.0);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const Complex d = samples[i] * std::conj(samples[i - 1]);
    freq[i] = std::arg(d) * cfg_.sample_rate_hz / itb::dsp::kTwoPi;
  }
  if (!freq.empty() && freq.size() > 1) freq[0] = freq[1];
  return freq;
}

Bits GfskDemodulator::demodulate(const CVec& samples,
                                 std::size_t bit_offset_samples) const {
  const itb::dsp::RVec freq = instantaneous_frequency_hz(samples);
  Bits bits;
  // Average frequency over the middle half of each symbol to reject ISI at
  // the Gaussian-filtered edges.
  const std::size_t lo = sps_ / 4;
  const std::size_t hi = sps_ - sps_ / 4;
  for (std::size_t start = bit_offset_samples; start + sps_ <= freq.size();
       start += sps_) {
    Real acc = 0.0;
    for (std::size_t k = lo; k < hi; ++k) acc += freq[start + k];
    bits.push_back(acc > 0.0 ? 1 : 0);
  }
  return bits;
}

}  // namespace itb::ble
