#include "ble/single_tone.h"

#include <cassert>

#include "phycommon/lfsr.h"

namespace itb::ble {

using itb::phy::BleWhitener;
using itb::phy::Bits;

Bytes single_tone_payload(unsigned channel_index, ToneSign sign,
                          std::size_t payload_bytes,
                          const AdvPacketConfig& base) {
  assert(payload_bytes <= kMaxAdvDataBytes);
  // Whitening starts at the PDU header. AdvData begins after header (16 bits)
  // + AdvA (48 bits) = 64 whitened bits.
  const std::size_t payload_offset_bits = 16 + base.advertiser_address.size() * 8;
  const Bits wseq = BleWhitener::sequence(
      channel_index, payload_offset_bits + payload_bytes * 8);

  Bits payload_bits(payload_bytes * 8);
  for (std::size_t i = 0; i < payload_bits.size(); ++i) {
    const std::uint8_t w = wseq[payload_offset_bits + i];
    // air = data XOR w. For all-zero air bits, data = w; for all-one,
    // data = NOT w.
    payload_bits[i] = sign == ToneSign::kLow ? w : (w ^ 1u);
  }
  return itb::phy::bits_to_bytes_lsb_first(payload_bits);
}

SingleToneResult make_single_tone_packet(const SingleToneSpec& spec) {
  SingleToneResult out;
  out.payload = single_tone_payload(spec.channel_index, spec.sign,
                                    spec.payload_bytes, spec.base);

  if (spec.android_api_constraint &&
      out.payload.size() > kAndroidAdvDataBytes) {
    // Bytes beyond the app-controllable region revert to stack defaults
    // (zeros here); the constant tone ends where control ends.
    for (std::size_t i = kAndroidAdvDataBytes; i < out.payload.size(); ++i) {
      out.payload[i] = 0x00;
    }
  }

  AdvPacketConfig cfg = spec.base;
  cfg.payload = out.payload;
  out.packet = build_adv_packet(cfg, spec.channel_index);

  // Locate the constant run the payload actually produced (the API contract
  // is the *measured* window, not the theoretical one).
  const std::size_t begin = out.packet.payload_start_bit;
  const std::size_t end = out.packet.payload_end_bit;
  const std::uint8_t want = spec.sign == ToneSign::kHigh ? 1 : 0;
  std::size_t run_begin = begin;
  while (run_begin < end && out.packet.air_bits[run_begin] != want) ++run_begin;
  std::size_t run_end = run_begin;
  while (run_end < end && out.packet.air_bits[run_end] == want) ++run_end;
  out.tone_start_bit = run_begin;
  out.tone_end_bit = run_end;
  return out;
}

std::size_t longest_constant_run(const Bits& air_bits, std::size_t begin,
                                 std::size_t end) {
  assert(end <= air_bits.size() && begin <= end);
  std::size_t best = 0;
  std::size_t cur = 1;
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (air_bits[i] == air_bits[i - 1]) {
      ++cur;
    } else {
      best = std::max(best, cur);
      cur = 1;
    }
  }
  if (end > begin) best = std::max(best, cur);
  return best;
}

}  // namespace itb::ble
