// BLE channel plan: index <-> RF frequency, advertising channel set, and the
// relationship to the Wi-Fi channel grid the paper exploits (Fig. 3).
#pragma once

#include <array>

#include "dsp/types.h"

namespace itb::ble {

/// BLE LE channels 0..39. Advertising channels are 37 (2402 MHz),
/// 38 (2426 MHz) and 39 (2480 MHz); data channels fill the gaps.
struct ChannelMap {
  static constexpr unsigned kNumChannels = 40;
  static constexpr std::array<unsigned, 3> kAdvertisingChannels = {37, 38, 39};

  /// Center frequency in Hz for a channel index (0..39).
  static itb::dsp::Real frequency_hz(unsigned channel_index);

  static bool is_advertising(unsigned channel_index) {
    return channel_index == 37 || channel_index == 38 || channel_index == 39;
  }
};

/// 2.4 GHz ISM band edges (Hz) — the constraint that rules out
/// double-sideband backscatter on channels 37/39 (paper §2.3.1).
inline constexpr itb::dsp::Real kIsmLowHz = 2.400e9;
inline constexpr itb::dsp::Real kIsmHighHz = 2.4835e9;

/// Wi-Fi 2.4 GHz channel center (1..13): 2407 + 5*n MHz.
inline itb::dsp::Real wifi_channel_hz(unsigned ch) {
  return 2.407e9 + 5e6 * static_cast<itb::dsp::Real>(ch);
}

/// ZigBee (802.15.4) 2.4 GHz channel center (11..26): 2405 + 5*(k-11) MHz.
inline itb::dsp::Real zigbee_channel_hz(unsigned ch) {
  return 2.405e9 + 5e6 * static_cast<itb::dsp::Real>(ch - 11);
}

}  // namespace itb::ble
