// BLE advertising-channel packet construction and parsing (link layer).
//
// Air format (paper Fig. 5): preamble 0xAA | access address 0x8E89BED6 |
// PDU header (type, length) | AdvA (6 B) | AdvData (0..31 B) | CRC-24.
// Whitening covers PDU + CRC and is seeded by the channel index.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "phycommon/bits.h"

namespace itb::ble {

using itb::phy::Bits;
using itb::phy::Bytes;

inline constexpr std::uint8_t kPreambleByte = 0xAA;
inline constexpr std::uint32_t kAdvAccessAddress = 0x8E89BED6;
inline constexpr std::size_t kMaxAdvDataBytes = 31;
/// The Android advertising API exposes only 24 of the 31 AdvData bytes to
/// applications (paper §2.2 footnote 3).
inline constexpr std::size_t kAndroidAdvDataBytes = 24;

/// Advertising PDU types (subset used here).
enum class AdvPduType : std::uint8_t {
  kAdvInd = 0x0,
  kAdvNonconnInd = 0x2,
  kAdvScanInd = 0x6,
};

/// Descriptor for an advertising packet before serialization.
struct AdvPacketConfig {
  AdvPduType pdu_type = AdvPduType::kAdvNonconnInd;
  std::array<std::uint8_t, 6> advertiser_address{0xC1, 0xA7, 0x3E, 0x55, 0xAA, 0x01};
  Bytes payload;  ///< AdvData, up to kMaxAdvDataBytes.
};

/// Fully serialized advertising packet plus bookkeeping offsets (in bits,
/// relative to the start of the preamble) that the backscatter tag's timing
/// logic relies on.
struct AdvPacket {
  Bits air_bits;  ///< whitened, in transmit order, incl. preamble + AA
  std::size_t payload_start_bit = 0;  ///< first AdvData bit on air
  std::size_t payload_end_bit = 0;    ///< one past last AdvData bit
  std::size_t crc_start_bit = 0;      ///< first CRC bit on air
  unsigned channel_index = 37;

  /// Air duration at 1 Mbps (LE 1M): 1 bit == 1 us.
  double duration_us() const { return static_cast<double>(air_bits.size()); }
  double payload_start_us() const { return static_cast<double>(payload_start_bit); }
  double payload_window_us() const {
    return static_cast<double>(payload_end_bit - payload_start_bit);
  }
};

/// Builds the whitened air bits for an advertising packet on the given
/// channel. Asserts payload fits.
AdvPacket build_adv_packet(const AdvPacketConfig& cfg, unsigned channel_index);

/// Result of parsing a received advertising packet.
struct ParsedAdv {
  AdvPduType pdu_type;
  std::array<std::uint8_t, 6> advertiser_address;
  Bytes payload;
  bool crc_ok = false;
};

/// Parses whitened air bits back into a PDU (inverse of build_adv_packet).
/// `air_bits` must start at the preamble. Returns nullopt if the access
/// address does not match or lengths are inconsistent.
std::optional<ParsedAdv> parse_adv_packet(const Bits& air_bits,
                                          unsigned channel_index);

/// BLE data-channel packet (future-work extension, paper §7): up to 255 B
/// payload at LE 1M, giving the tag a ~2 ms backscatter window.
struct DataPacketConfig {
  std::uint32_t access_address = 0x50655D5B;
  Bytes payload;  ///< up to 255 bytes (BT 4.2+ extended length)
  unsigned channel_index = 0;
};

AdvPacket build_data_packet(const DataPacketConfig& cfg);

}  // namespace itb::ble
