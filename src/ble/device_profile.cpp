#include "ble/device_profile.h"

#include <cmath>

namespace itb::ble {

DeviceProfile ti_cc2650() {
  return {.name = "TI CC2650",
          .tx_power_dbm = 0.0,
          .cfo_hz = 2e3,
          .deviation_scale = 1.00,
          .phase_noise_rad_rms = 0.002,
          .max_tx_power_dbm = 5.0};
}

DeviceProfile galaxy_s5() {
  return {.name = "Galaxy S5",
          .tx_power_dbm = 0.0,
          .cfo_hz = 18e3,
          .deviation_scale = 1.04,
          .phase_noise_rad_rms = 0.006,
          .max_tx_power_dbm = 4.0};
}

DeviceProfile moto360() {
  return {.name = "Moto360 (2nd gen)",
          .tx_power_dbm = 0.0,
          .cfo_hz = -31e3,
          .deviation_scale = 0.97,
          .phase_noise_rad_rms = 0.010,
          .max_tx_power_dbm = 0.0};
}

CVec apply_impairments(const CVec& samples, const DeviceProfile& profile,
                       Real sample_rate_hz, itb::dsp::Xoshiro256& rng) {
  CVec out(samples.size());
  const Real cfo_step = itb::dsp::kTwoPi * profile.cfo_hz / sample_rate_hz;
  Real phase = 0.0;
  Real pn = 0.0;
  const Real amp = std::pow(10.0, profile.tx_power_dbm / 20.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    phase += cfo_step;
    pn += profile.phase_noise_rad_rms * rng.gaussian();
    // Deviation scaling approximated by scaling the sample's own phase
    // increment is equivalent to scaling the modulating frequency; for the
    // tone signals used in Fig. 9 a simple remodulation suffices:
    const Real total = phase + pn;
    out[i] = amp * samples[i] * itb::dsp::Complex{std::cos(total), std::sin(total)};
  }
  if (profile.deviation_scale != 1.0 && !out.empty()) {
    // Rescale instantaneous frequency by deviation_scale via phase warping.
    CVec warped(out.size());
    warped[0] = out[0] / std::abs(out[0]);
    Real acc_phase = std::arg(out[0]);
    for (std::size_t i = 1; i < out.size(); ++i) {
      const Real dphi = std::arg(out[i] * std::conj(out[i - 1]));
      acc_phase += dphi * profile.deviation_scale;
      const Real mag = std::abs(out[i]);
      warped[i] = mag * itb::dsp::Complex{std::cos(acc_phase), std::sin(acc_phase)};
    }
    return warped;
  }
  return out;
}

}  // namespace itb::ble
