// GFSK modulation and demodulation for BLE LE 1M.
//
// LE 1M: 1 Msym/s, modulation index h = 0.5 (±250 kHz nominal deviation),
// Gaussian BT = 0.5. A run of identical bits therefore produces a constant
// frequency offset — the property the paper's single-tone trick exploits.
#pragma once

#include "dsp/types.h"
#include "phycommon/bits.h"

namespace itb::ble {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;

struct GfskConfig {
  Real symbol_rate_hz = 1e6;   ///< LE 1M
  Real sample_rate_hz = 8e6;   ///< must be an integer multiple of symbol rate
  Real modulation_index = 0.5; ///< h; deviation = h * symbol_rate / 2
  Real bt = 0.5;               ///< Gaussian bandwidth-time product
  std::size_t filter_span_symbols = 3;
};

/// GFSK modulator producing unit-amplitude complex baseband centered on the
/// nominal carrier (0 Hz). A '1' bit shifts frequency up, '0' down.
class GfskModulator {
 public:
  explicit GfskModulator(const GfskConfig& cfg = {});

  /// Modulates air bits into complex baseband samples.
  CVec modulate(const Bits& bits) const;

  std::size_t samples_per_symbol() const { return sps_; }
  const GfskConfig& config() const { return cfg_; }

 private:
  GfskConfig cfg_;
  std::size_t sps_;
  itb::dsp::RVec gaussian_taps_;
};

/// Non-coherent FSK discriminator demodulator: differentiates phase and
/// slices at mid-symbol. Adequate for the loopback tests and for verifying
/// that synthesized packets are decodable by a conventional BLE receiver.
class GfskDemodulator {
 public:
  explicit GfskDemodulator(const GfskConfig& cfg = {});

  /// Demodulates samples into bits. `bit_offset_samples` selects where the
  /// first symbol starts (0 if the stream begins exactly at a bit edge).
  Bits demodulate(const CVec& samples, std::size_t bit_offset_samples = 0) const;

  /// Instantaneous frequency estimate (Hz) per sample — useful for tests
  /// verifying the single-tone property.
  itb::dsp::RVec instantaneous_frequency_hz(const CVec& samples) const;

 private:
  GfskConfig cfg_;
  std::size_t sps_;
};

}  // namespace itb::ble
