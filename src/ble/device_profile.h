// Impairment profiles for the commodity Bluetooth transmitters the paper
// evaluates (Fig. 9: TI CC2650, Samsung Galaxy S5, Moto 360 2nd gen).
//
// The single-tone trick is bit-exact, but real radios differ in carrier
// frequency offset, deviation accuracy, phase noise and TX power — these
// profiles reproduce the qualitative differences between the three spectra.
#pragma once

#include <string>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace itb::ble {

using itb::dsp::CVec;
using itb::dsp::Real;

struct DeviceProfile {
  std::string name;
  Real tx_power_dbm = 0.0;
  Real cfo_hz = 0.0;              ///< carrier frequency offset
  Real deviation_scale = 1.0;     ///< actual/nominal frequency deviation
  Real phase_noise_rad_rms = 0.0; ///< per-sample random-walk phase step RMS
  Real max_tx_power_dbm = 0.0;    ///< capability ceiling (paper §4.2 list)
};

/// TI CC2650 dev kit: clean reference source with an antenna connector.
DeviceProfile ti_cc2650();

/// Samsung Galaxy S5: small CFO, slight over-deviation, more phase noise.
DeviceProfile galaxy_s5();

/// Moto 360 (2nd gen) smartwatch: larger CFO and phase noise (small antenna,
/// cheaper crystal).
DeviceProfile moto360();

/// Applies a profile's analog impairments to ideal baseband samples.
CVec apply_impairments(const CVec& samples, const DeviceProfile& profile,
                       Real sample_rate_hz, itb::dsp::Xoshiro256& rng);

}  // namespace itb::ble
