// Advertising-event timing model (paper §2.3.3 optimization 2).
//
// A BLE advertiser sends the same PDU on channels 37, 38, 39 back-to-back,
// separated by a chip-specific gap (ΔT ≈ 400 µs on TI chipsets), repeating
// every advertising interval (20 ms minimum for non-connectable in 4.x).
// The tag's RTS/CTS imitation hinges on this deterministic schedule.
#pragma once

#include <vector>

#include "ble/packet.h"

namespace itb::ble {

struct AdvertiserTiming {
  double interval_ms = 20.0;     ///< advertising interval
  double channel_gap_us = 400.0; ///< ΔT between channel transmissions
  std::vector<unsigned> channels = {37, 38, 39};
};

/// One on-air transmission within an advertising event.
struct AdvSlot {
  unsigned channel_index;
  double start_us;     ///< relative to the event start
  double duration_us;
};

/// Expands the timing model into per-channel slots for `num_events` events.
/// Slot times are relative to t = 0 at the first event.
std::vector<AdvSlot> advertising_schedule(const AdvertiserTiming& timing,
                                          double packet_duration_us,
                                          std::size_t num_events);

/// Time window (µs, relative to the channel-37 packet start) that a tag can
/// reserve with an RTS on channel 37's packet: 2ΔT + T_bluetooth, covering
/// the channel 38 and 39 transmissions (paper §2.3.3).
double reservation_window_us(const AdvertiserTiming& timing,
                             double packet_duration_us);

}  // namespace itb::ble
