// The paper's first contribution (§2.2): payload bits that turn a commodity
// BLE advertiser into a single-tone RF source.
//
// BLE whitens the PDU with a channel-seeded LFSR. If the application payload
// equals the whitening sequence at the payload's air position, the whitened
// air bits are all zeros (constant -250 kHz tone); the complement gives all
// ones (+250 kHz). Preamble/AA/header/AdvA/CRC cannot be chosen, so the tone
// only exists during the AdvData window — exactly the window the tag
// backscatters in.
#pragma once

#include "ble/packet.h"

namespace itb::ble {

enum class ToneSign {
  kLow,   ///< air bits all 0 -> tone at -deviation (-250 kHz)
  kHigh,  ///< air bits all 1 -> tone at +deviation (+250 kHz)
};

struct SingleToneSpec {
  unsigned channel_index = 38;
  ToneSign sign = ToneSign::kHigh;
  std::size_t payload_bytes = kMaxAdvDataBytes;  ///< AdvData length to fill
  /// Restrict to the 24 application-controllable bytes Android exposes; the
  /// remaining AdvData bytes keep whatever the stack puts there (modeled as
  /// zeros), shortening the clean tone window.
  bool android_api_constraint = false;
  AdvPacketConfig base;  ///< PDU type / AdvA used for the packet skeleton
};

struct SingleToneResult {
  AdvPacket packet;        ///< ready-to-modulate air packet
  Bytes payload;           ///< the AdvData bytes that produce the tone
  std::size_t tone_start_bit = 0;  ///< air-bit index where the tone begins
  std::size_t tone_end_bit = 0;    ///< one past the last constant air bit

  double tone_duration_us() const {
    return static_cast<double>(tone_end_bit - tone_start_bit);
  }
};

/// Computes the AdvData payload whose whitened air bits are constant, builds
/// the packet, and reports the constant-tone window.
SingleToneResult make_single_tone_packet(const SingleToneSpec& spec);

/// Convenience: returns just the payload bytes an application would hand to
/// the advertising API (e.g. over the Android AdvertiseData interface).
Bytes single_tone_payload(unsigned channel_index, ToneSign sign,
                          std::size_t payload_bytes,
                          const AdvPacketConfig& base = {});

/// Verifies the single-tone property on arbitrary air bits: returns the
/// length of the longest constant run inside [begin, end).
std::size_t longest_constant_run(const Bits& air_bits, std::size_t begin,
                                 std::size_t end);

}  // namespace itb::ble
