// ProfZone implementation. This file is the single sanctioned wall-clock
// site in src/ — detlint carves src/obs/ out of the wall-clock rule, and
// the explicit allow() below documents the intent at the call site itself.
//
// Accumulators live in a fixed-capacity static array so zone entry/exit is
// lock-free: registration (mutex-guarded) never moves an accumulator, and
// ids index immutable storage. kMaxZones overflow falls back to one shared
// "<overflow>" bucket rather than failing.
#include "obs/prof.h"

#include <algorithm>
#include <array>
#include <atomic>
// detlint: allow(wall-clock)
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>

namespace itb::obs {

namespace {

constexpr std::size_t kMaxZones = 256;

struct ZoneAccum {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> child_ns{0};
};

std::atomic<bool> g_enabled{false};

ZoneAccum& zone_accum(std::size_t id) {
  static std::array<ZoneAccum, kMaxZones> accum;
  return accum[id];
}

struct ZoneNames {
  std::mutex mu;
  std::map<std::string, std::size_t> ids;
  std::array<std::string, kMaxZones> names;
  std::size_t count = 0;
};

ZoneNames& names() {
  static ZoneNames n;
  return n;
}

/// Per-thread stack of open zones: each frame accumulates the time spent in
/// nested (child) zones so the parent can report self time.
thread_local std::vector<std::uint64_t> t_child_ns_stack;

std::int64_t now_ns() {
  // The sanctioned wall-clock read (see file comment).
  // detlint: allow(wall-clock)
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void prof_enable(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool prof_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void prof_reset() {
  ZoneNames& n = names();
  const std::lock_guard<std::mutex> lock(n.mu);
  for (std::size_t i = 0; i < n.count; ++i) {
    ZoneAccum& z = zone_accum(i);
    z.calls.store(0, std::memory_order_relaxed);
    z.total_ns.store(0, std::memory_order_relaxed);
    z.child_ns.store(0, std::memory_order_relaxed);
  }
}

std::size_t prof_zone(const char* name) {
  ZoneNames& n = names();
  const std::lock_guard<std::mutex> lock(n.mu);
  const auto it = n.ids.find(name);
  if (it != n.ids.end()) return it->second;
  if (n.count + 1 >= kMaxZones) {
    // Everything past the capacity shares the overflow bucket.
    n.names[kMaxZones - 1] = "<overflow>";
    n.count = kMaxZones;
    return kMaxZones - 1;
  }
  const std::size_t id = n.count++;
  n.ids.emplace(name, id);
  n.names[id] = name;
  return id;
}

ProfZone::ProfZone(std::size_t zone_id) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  id_ = zone_id;
  t_child_ns_stack.push_back(0);
  start_ns_ = now_ns();
}

ProfZone::ProfZone(const char* name) : ProfZone(prof_zone(name)) {}

ProfZone::~ProfZone() {
  if (id_ == kInactive) return;
  const auto dur = static_cast<std::uint64_t>(
      std::max<std::int64_t>(now_ns() - start_ns_, 0));
  const std::uint64_t child = t_child_ns_stack.back();
  t_child_ns_stack.pop_back();
  ZoneAccum& z = zone_accum(id_);
  z.calls.fetch_add(1, std::memory_order_relaxed);
  z.total_ns.fetch_add(dur, std::memory_order_relaxed);
  z.child_ns.fetch_add(child, std::memory_order_relaxed);
  if (!t_child_ns_stack.empty()) t_child_ns_stack.back() += dur;
}

std::vector<ProfZoneStat> prof_report() {
  ZoneNames& n = names();
  std::vector<ProfZoneStat> out;
  {
    const std::lock_guard<std::mutex> lock(n.mu);
    out.reserve(n.count);
    for (std::size_t i = 0; i < n.count; ++i) {
      const ZoneAccum& z = zone_accum(i);
      ProfZoneStat s;
      s.name = n.names[i];
      s.calls = z.calls.load(std::memory_order_relaxed);
      const auto total = z.total_ns.load(std::memory_order_relaxed);
      const auto child = z.child_ns.load(std::memory_order_relaxed);
      s.total_ms = static_cast<double>(total) * 1e-6;
      s.self_ms = static_cast<double>(total - std::min(child, total)) * 1e-6;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ProfZoneStat& a, const ProfZoneStat& b) {
              if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
              return a.name < b.name;
            });
  return out;
}

void prof_write_table(std::ostream& os, const char* root) {
  const auto stats = prof_report();
  if (root != nullptr) {
    for (const ProfZoneStat& s : stats) {
      if (s.name != root || s.total_ms <= 0.0) continue;
      const double attributed = (s.total_ms - s.self_ms) / s.total_ms;
      os << "# prof: " << root << " attribution "
         << static_cast<int>(attributed * 100.0 + 0.5)
         << "% of wall time in named child zones\n";
    }
  }
  os << "# prof: zone                          calls    total_ms     self_ms\n";
  for (const ProfZoneStat& s : stats) {
    if (s.calls == 0) continue;
    char line[160];
    std::snprintf(line, sizeof(line), "# prof: %-28s %8llu %11.3f %11.3f\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.calls),
                  s.total_ms, s.self_ms);
    os << line;
  }
}

}  // namespace itb::obs
