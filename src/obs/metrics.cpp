#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace itb::obs {

namespace {

/// Shortest round-trip decimal form, fixed across platforms for identical
/// doubles — the property the byte-identical snapshot contract needs.
void write_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001B3ULL;
    }
    mix(static_cast<std::uint64_t>(s.size()));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

}  // namespace

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricId MetricsRegistry::add(std::string name, MetricKind kind,
                              std::vector<double> edges) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name != name) continue;
    if (specs_[i].kind != kind) {
      throw std::invalid_argument("MetricsRegistry: `" + name +
                                  "` re-registered with a different kind");
    }
    return i;
  }
  if (kind == MetricKind::kHistogram) {
    if (edges.empty()) {
      throw std::invalid_argument("MetricsRegistry: `" + name +
                                  "` histogram needs at least one edge");
    }
    if (!std::is_sorted(edges.begin(), edges.end()) ||
        std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
      throw std::invalid_argument("MetricsRegistry: `" + name +
                                  "` edges must be strictly increasing");
    }
  }
  specs_.push_back({std::move(name), kind, std::move(edges)});
  return specs_.size() - 1;
}

MetricId MetricsRegistry::counter(std::string name) {
  return add(std::move(name), MetricKind::kCounter, {});
}

MetricId MetricsRegistry::gauge(std::string name) {
  return add(std::move(name), MetricKind::kGauge, {});
}

MetricId MetricsRegistry::histogram(std::string name,
                                    std::vector<double> upper_edges) {
  return add(std::move(name), MetricKind::kHistogram, std::move(upper_edges));
}

MetricCells MetricsRegistry::make_cells() const {
  MetricCells cells;
  cells.cells_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].kind != MetricKind::kHistogram) continue;
    cells.cells_[i].buckets.assign(specs_[i].edges.size() + 1, 0);
    cells.cells_[i].edges = &specs_[i].edges;
  }
  return cells;
}

void MetricCells::observe(MetricId id, double value) {
  Cell& c = cells_[id];
  ++c.count;
  c.value += value;
  const std::vector<double>& edges = *c.edges;
  // Linear scan: sim histograms have ~a dozen buckets, and the upper-edge
  // comparison (<=) matches the Prometheus `le` convention exactly.
  std::size_t b = edges.size();  // overflow (+Inf) by default
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (value <= edges[i]) {
      b = i;
      break;
    }
  }
  ++c.buckets[b];
}

MetricsSnapshot MetricsRegistry::merge(
    const std::vector<MetricCells>& shards) const {
  MetricsSnapshot snap;
  snap.metrics_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    MetricValue mv;
    mv.name = specs_[i].name;
    mv.kind = specs_[i].kind;
    mv.edges = specs_[i].edges;
    if (mv.kind == MetricKind::kHistogram) {
      mv.buckets.assign(mv.edges.size() + 1, 0);
    }
    // Shard order is the reduction order: deterministic because the shard
    // list is a fixed partition, never a function of thread scheduling.
    for (const MetricCells& shard : shards) {
      const MetricCells::Cell& c = shard.cells_[i];
      switch (mv.kind) {
        case MetricKind::kCounter:
          mv.count += c.count;
          break;
        case MetricKind::kGauge:
          if (c.value_set) mv.value = c.value;
          break;
        case MetricKind::kHistogram:
          mv.count += c.count;
          mv.value += c.value;
          for (std::size_t b = 0; b < mv.buckets.size(); ++b) {
            mv.buckets[b] += c.buckets[b];
          }
          break;
      }
    }
    snap.metrics_.push_back(std::move(mv));
  }
  return snap;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const MetricValue* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kCounter) ? m->count : 0;
}

double MetricsSnapshot::gauge_value(std::string_view name) const {
  const MetricValue* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kGauge) ? m->value : 0.0;
}

void MetricsSnapshot::append_counter(std::string name, std::uint64_t value) {
  MetricValue mv;
  mv.name = std::move(name);
  mv.kind = MetricKind::kCounter;
  mv.count = value;
  metrics_.push_back(std::move(mv));
}

void MetricsSnapshot::append_gauge(std::string name, double value) {
  MetricValue mv;
  mv.name = std::move(name);
  mv.kind = MetricKind::kGauge;
  mv.value = value;
  metrics_.push_back(std::move(mv));
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const MetricValue& m = metrics_[i];
    os << "    {\"name\": \"" << m.name << "\", \"kind\": \""
       << metric_kind_name(m.kind) << "\", ";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "\"value\": " << m.count;
        break;
      case MetricKind::kGauge:
        os << "\"value\": ";
        write_double(os, m.value);
        break;
      case MetricKind::kHistogram: {
        os << "\"count\": " << m.count << ", \"sum\": ";
        write_double(os, m.value);
        os << ", \"buckets\": [";
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          os << "{\"le\": ";
          if (b < m.edges.size()) {
            write_double(os, m.edges[b]);
          } else {
            os << "\"+Inf\"";
          }
          os << ", \"count\": " << m.buckets[b] << "}";
          if (b + 1 < m.buckets.size()) os << ", ";
        }
        os << "]";
        break;
      }
    }
    os << "}" << (i + 1 < metrics_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void MetricsSnapshot::write_prometheus(std::ostream& os) const {
  for (const MetricValue& m : metrics_) {
    const std::string name = prometheus_name(m.name);
    os << "# TYPE " << name << " " << metric_kind_name(m.kind) << "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << name << " " << m.count << "\n";
        break;
      case MetricKind::kGauge:
        os << name << " ";
        write_double(os, m.value);
        os << "\n";
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          cumulative += m.buckets[b];
          os << name << "_bucket{le=\"";
          if (b < m.edges.size()) {
            write_double(os, m.edges[b]);
          } else {
            os << "+Inf";
          }
          os << "\"} " << cumulative << "\n";
        }
        os << name << "_sum ";
        write_double(os, m.value);
        os << "\n" << name << "_count " << m.count << "\n";
        break;
      }
    }
  }
}

std::uint64_t MetricsSnapshot::digest() const {
  Fnv1a h;
  for (const MetricValue& m : metrics_) {
    h.mix(m.name);
    h.mix(static_cast<std::uint64_t>(m.kind));
    h.mix(m.count);
    h.mix(m.value);
    for (const double e : m.edges) h.mix(e);
    for (const std::uint64_t b : m.buckets) h.mix(b);
  }
  return h.value();
}

}  // namespace itb::obs
