// Sim-time event tracing in Chrome/Perfetto `trace_event` JSON.
//
// Events carry *simulation* timestamps (µs), never wall clock, so a trace
// is a pure function of the run's inputs: bit-identical at any thread
// count and byte-identical across repeat exports (DESIGN.md "Observability
// and the determinism contract").
//
// Collection mirrors the simulator's reduction discipline:
//   TraceBuffer — one shard's bounded ring of events (oldest-drop), written
//                 by exactly one thread, no synchronization.
//   TraceLog    — absorbs the shard buffers in shard-index order at join,
//                 stable-sorts by (ts, pid, tid), and serializes. Also
//                 accepts direct emission from single-threaded phases
//                 (e.g. fault windows emitted before the fan-out).
//
// The pid/tid mapping is logical, not OS-level: one "process" per AP /
// channel group (plus a dedicated faults process), one "thread" per shard —
// both are functions of the topology, not of scheduling, so the same run
// always produces the same track layout in ui.perfetto.dev.
//
// Event names / categories / argument names are `const char*` and must
// point at storage that outlives the log (string literals at every call
// site in practice) — emission stays allocation-free.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace itb::obs {

enum class TracePhase : std::uint8_t { kSpan = 0, kInstant = 1 };

struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  TracePhase phase = TracePhase::kInstant;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;          ///< spans only
  const char* arg_name = nullptr;   ///< optional numeric argument
  std::uint64_t arg = 0;
  const char* sarg_name = nullptr;  ///< optional string argument
  const char* sarg = nullptr;
};

/// One shard's event ring. Bounded: when full, the oldest event is dropped
/// and counted, so a long fault night degrades to "most recent window"
/// instead of unbounded memory.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity_);
  }

  void span(const char* name, const char* cat, std::uint32_t pid,
            std::uint32_t tid, std::int64_t ts_us, std::int64_t dur_us) {
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = TracePhase::kSpan;
    e.pid = pid;
    e.tid = tid;
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    push(e);
  }

  void instant(const char* name, const char* cat, std::uint32_t pid,
               std::uint32_t tid, std::int64_t ts_us) {
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = TracePhase::kInstant;
    e.pid = pid;
    e.tid = tid;
    e.ts_us = ts_us;
    push(e);
  }

  void push(const TraceEvent& e) {
    if (capacity_ == 0) {
      ++dropped_;
      return;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
      return;
    }
    ring_[head_] = e;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  std::size_t size() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Events in emission order (oldest surviving first).
  std::vector<TraceEvent> drain() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest event once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;
};

/// The merged, ordered trace plus its track metadata.
class TraceLog {
 public:
  /// Track naming (emitted as `ph:"M"` metadata events, before any data).
  void set_process_name(std::uint32_t pid, std::string name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid, std::string name);

  /// Direct emission for single-threaded phases.
  void span(const char* name, const char* cat, std::uint32_t pid,
            std::uint32_t tid, std::int64_t ts_us, std::int64_t dur_us);
  void instant(const char* name, const char* cat, std::uint32_t pid,
               std::uint32_t tid, std::int64_t ts_us);
  void push(const TraceEvent& e) { events_.push_back(e); }

  /// Appends one shard's surviving events; call in shard-index order so the
  /// pre-sort layout is scheduling-independent.
  void absorb(const TraceBuffer& shard);

  /// Stable sort by (ts_us, pid, tid): equal keys keep absorb order, which
  /// shard-index-ordered absorption already made deterministic.
  void finalize();

  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Chrome trace-event JSON (`{"traceEvents": [...]}`), loadable in
  /// ui.perfetto.dev or chrome://tracing. Field order and formatting are
  /// fixed: equal logs serialize to equal bytes.
  void write_perfetto_json(std::ostream& os) const;

  /// FNV-1a over every event's fields in order (names included).
  std::uint64_t digest() const;

 private:
  struct TrackName {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;  ///< unused for process names
    bool is_process = true;
    std::string name;
  };
  std::vector<TrackName> tracks_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace itb::obs
