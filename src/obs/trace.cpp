#include "obs/trace.h"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace itb::obs {

namespace {

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void mix(const char* s) {
    std::size_t len = 0;
    for (; s[len] != '\0'; ++len) {
      hash_ ^= static_cast<unsigned char>(s[len]);
      hash_ *= 0x100000001B3ULL;
    }
    mix(static_cast<std::uint64_t>(len));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::vector<TraceEvent> TraceBuffer::drain() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceLog::set_process_name(std::uint32_t pid, std::string name) {
  tracks_.push_back({pid, 0, true, std::move(name)});
}

void TraceLog::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                               std::string name) {
  tracks_.push_back({pid, tid, false, std::move(name)});
}

void TraceLog::span(const char* name, const char* cat, std::uint32_t pid,
                    std::uint32_t tid, std::int64_t ts_us,
                    std::int64_t dur_us) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = TracePhase::kSpan;
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  events_.push_back(e);
}

void TraceLog::instant(const char* name, const char* cat, std::uint32_t pid,
                       std::uint32_t tid, std::int64_t ts_us) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = TracePhase::kInstant;
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  events_.push_back(e);
}

void TraceLog::absorb(const TraceBuffer& shard) {
  const std::vector<TraceEvent> events = shard.drain();
  events_.insert(events_.end(), events.begin(), events.end());
  dropped_ += shard.dropped();
}

void TraceLog::finalize() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tie(a.ts_us, a.pid, a.tid) <
                            std::tie(b.ts_us, b.pid, b.tid);
                   });
}

void TraceLog::write_perfetto_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const TrackName& t : tracks_) {
    sep();
    if (t.is_process) {
      os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << t.pid
         << ", \"args\": {\"name\": ";
    } else {
      os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << t.pid
         << ", \"tid\": " << t.tid << ", \"args\": {\"name\": ";
    }
    write_json_string(os, t.name);
    os << "}}";
  }
  for (const TraceEvent& e : events_) {
    sep();
    os << "{\"ph\": \"" << (e.phase == TracePhase::kSpan ? "X" : "i")
       << "\", \"name\": \"" << e.name << "\", \"cat\": \"" << e.cat
       << "\", \"pid\": " << e.pid << ", \"tid\": " << e.tid
       << ", \"ts\": " << e.ts_us;
    if (e.phase == TracePhase::kSpan) {
      os << ", \"dur\": " << e.dur_us;
    } else {
      os << ", \"s\": \"t\"";  // instant scoped to its thread track
    }
    if (e.arg_name != nullptr || e.sarg_name != nullptr) {
      os << ", \"args\": {";
      if (e.arg_name != nullptr) {
        os << "\"" << e.arg_name << "\": " << e.arg;
      }
      if (e.sarg_name != nullptr) {
        if (e.arg_name != nullptr) os << ", ";
        os << "\"" << e.sarg_name << "\": \"" << e.sarg << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

std::uint64_t TraceLog::digest() const {
  Fnv1a h;
  for (const TraceEvent& e : events_) {
    h.mix(e.name);
    h.mix(e.cat);
    h.mix(static_cast<std::uint64_t>(e.phase));
    h.mix(e.pid);
    h.mix(e.tid);
    h.mix(static_cast<std::uint64_t>(e.ts_us));
    h.mix(static_cast<std::uint64_t>(e.dur_us));
    if (e.arg_name != nullptr) {
      h.mix(e.arg_name);
      h.mix(e.arg);
    }
    if (e.sarg_name != nullptr) {
      h.mix(e.sarg_name);
      h.mix(e.sarg);
    }
  }
  h.mix(static_cast<std::uint64_t>(events_.size()));
  return h.value();
}

}  // namespace itb::obs
