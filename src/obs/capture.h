// RunCapture: the opt-in observation bundle a caller hands to
// Network::run(). Null pointer (the default) means zero observation work
// beyond a branch per hook — the path every existing caller and benchmark
// takes. Non-null turns on sim-time tracing and the metrics registry; both
// outputs are deterministic (bit-identical at any thread count) because
// they are collected per shard and merged in shard-index order.
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace itb::obs {

struct RunCapture {
  /// Collect sim-time trace events (poll slots, ARQ attempts, fault
  /// windows, rate-fallback decisions). Metrics are always collected when a
  /// RunCapture is attached; tracing is the heavier half and gets its own
  /// switch.
  bool collect_trace = true;

  /// Per-shard trace ring capacity (oldest-drop beyond this; drops are
  /// counted in `trace.dropped()` and surfaced as `itb.trace.dropped`).
  std::size_t trace_events_per_shard = 1 << 16;

  /// Outputs, filled by run(): trace is finalized (merged + sorted), the
  /// metrics snapshot is merged across shards.
  TraceLog trace;
  MetricsSnapshot metrics;
};

}  // namespace itb::obs
