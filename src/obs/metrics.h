// Deterministic metrics registry: typed counters / gauges / fixed-bucket
// histograms registered by name, accumulated in per-shard cell blocks with
// no atomics, and merged in shard-index order at join — so a metrics
// snapshot is bit-identical at any thread count (DESIGN.md "Observability
// and the determinism contract").
//
// Three pieces:
//   MetricsRegistry  — the schema: names, kinds, histogram bucket edges.
//                      Built once (single-threaded) before the fan-out;
//                      registration order fixes metric ids.
//   MetricCells      — one shard's plain-value accumulation block, laid out
//                      by the schema. Cheap to create per shard, written by
//                      exactly one thread, no synchronization.
//   MetricsSnapshot  — the ordered merge of all shards' cells: JSON and
//                      Prometheus-text writers, name lookup, FNV digest.
//
// Histogram bucket semantics match Prometheus: bucket i counts samples with
// value <= upper_edges[i] (non-cumulative storage; the text writer emits
// the cumulative `le` form), plus an implicit +Inf overflow bucket.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace itb::obs {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
const char* metric_kind_name(MetricKind k);

using MetricId = std::size_t;

class MetricCells;
class MetricsSnapshot;

class MetricsRegistry {
 public:
  /// Registers (or re-finds, idempotently by name) a metric. Histogram
  /// edges must be strictly increasing; an implicit +Inf bucket is added.
  /// Registering an existing name with a different kind throws
  /// std::invalid_argument.
  MetricId counter(std::string name);
  MetricId gauge(std::string name);
  MetricId histogram(std::string name, std::vector<double> upper_edges);

  std::size_t size() const { return specs_.size(); }

  /// A zeroed accumulation block laid out for this schema.
  MetricCells make_cells() const;

  /// Sequential, index-ordered reduction over shard cell blocks: counters
  /// and histograms sum, gauges keep the last set() in shard order. The
  /// result is independent of how the shards were scheduled onto threads.
  MetricsSnapshot merge(const std::vector<MetricCells>& shards) const;

 private:
  struct Spec {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> edges;  ///< histogram upper edges (ascending)
  };
  MetricId add(std::string name, MetricKind kind, std::vector<double> edges);

  std::vector<Spec> specs_;
};

/// One shard's metric values. Write-only during the parallel phase; the
/// registry turns a vector of these into a MetricsSnapshot at join.
class MetricCells {
 public:
  /// Counter increment.
  void add(MetricId id, std::uint64_t delta = 1) { cells_[id].count += delta; }
  /// Gauge set (last set wins within a shard; shard order decides at merge).
  void set(MetricId id, double value) {
    cells_[id].value = value;
    cells_[id].value_set = true;
  }
  /// Histogram observation.
  void observe(MetricId id, double value);

 private:
  friend class MetricsRegistry;
  struct Cell {
    std::uint64_t count = 0;  ///< counter value / histogram sample count
    double value = 0.0;       ///< gauge value / histogram sample sum
    bool value_set = false;
    std::vector<std::uint64_t> buckets;  ///< per-bucket counts + overflow
    const std::vector<double>* edges = nullptr;  ///< borrowed from the schema
  };
  std::vector<Cell> cells_;
};

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter value / histogram sample count
  double value = 0.0;       ///< gauge value / histogram sample sum
  std::vector<double> edges;
  std::vector<std::uint64_t> buckets;  ///< size edges.size() + 1 (overflow)
};

class MetricsSnapshot {
 public:
  const std::vector<MetricValue>& metrics() const { return metrics_; }
  const MetricValue* find(std::string_view name) const;
  /// 0 / 0.0 when the metric is missing or of another kind.
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// Post-merge extras (e.g. ProfZone call counts promoted to counters).
  void append_counter(std::string name, std::uint64_t value);
  void append_gauge(std::string name, double value);

  /// `{"metrics": [{"name": ..., "kind": ..., ...}]}`; field order and
  /// float formatting are fixed, so equal snapshots serialize to equal
  /// bytes.
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition format; metric names are sanitized
  /// (`.`/`-` -> `_`).
  void write_prometheus(std::ostream& os) const;

  /// FNV-1a over every name, kind, and value bit pattern, in metric order.
  std::uint64_t digest() const;

 private:
  friend class MetricsRegistry;
  std::vector<MetricValue> metrics_;
};

}  // namespace itb::obs
