// Wall-clock profiling zones — the ONE sanctioned wall-clock site in the
// library (DESIGN.md "Observability and the determinism contract").
//
// A ProfZone is a scoped RAII timer keyed by an interned zone name. Zones
// nest: each zone accumulates total time (entry to exit) and child time
// (time spent inside nested zones on the same thread), so reports can
// attribute *self* time per zone. Accumulation is process-wide and
// thread-safe (relaxed atomics per zone); nesting is tracked per thread.
//
// Determinism: wall-clock readings NEVER reach simulation results, stats,
// digests, or the metrics/trace exports — only the prof report, which is
// explicitly wall-clock-domain. Everything here is gated on a single
// atomic flag; when profiling is disabled (the default) a ProfZone
// construct/destruct pair costs one relaxed load and two branches, so the
// PHY hot paths can stay instrumented unconditionally.
//
// Hot-path idiom (intern once per call site, then O(1) per entry):
//   static const std::size_t kZone = obs::prof_zone("phy.fft");
//   obs::ProfZone prof(kZone);
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace itb::obs {

/// Globally enables/disables zone timing. Off by default. Toggling does not
/// clear accumulated times (see prof_reset()).
void prof_enable(bool on);
bool prof_enabled();

/// Zeroes every zone's accumulators (registered names survive).
void prof_reset();

/// Interns `name` and returns its stable zone id (process lifetime).
/// Thread-safe; returns the same id for the same name.
std::size_t prof_zone(const char* name);

class ProfZone {
 public:
  /// O(1): starts timing zone `zone_id` if profiling is enabled.
  explicit ProfZone(std::size_t zone_id);
  /// Convenience for cold paths: interns `name` on every construction.
  explicit ProfZone(const char* name);
  ~ProfZone();

  ProfZone(const ProfZone&) = delete;
  ProfZone& operator=(const ProfZone&) = delete;

 private:
  static constexpr std::size_t kInactive = ~std::size_t{0};
  std::size_t id_ = kInactive;
  std::int64_t start_ns_ = 0;
};

struct ProfZoneStat {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0.0;  ///< entry-to-exit, summed over calls and threads
  double self_ms = 0.0;   ///< total minus time inside nested zones
};

/// Snapshot of every registered zone, sorted by self_ms descending.
/// total_ms sums across threads, so it can exceed wall time under
/// parallel_for fan-outs.
std::vector<ProfZoneStat> prof_report();

/// Human-readable self/total table (one `# prof ...` line per zone), plus a
/// header line with the attribution ratio of the named `root` zone: the
/// fraction of its total time spent inside named child zones. Pass nullptr
/// to skip the ratio line.
void prof_write_table(std::ostream& os, const char* root = nullptr);

}  // namespace itb::obs
