#include "sim/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace itb::sim {

std::size_t LatencyHistogram::bin_for(double us) {
  if (!(us > kFloorUs)) return 0;
  const double b = std::log(us / kFloorUs) / std::log(kGrowth);
  const auto idx = static_cast<std::size_t>(b);
  return std::min(idx, kBins - 1);
}

double LatencyHistogram::bin_upper_us(std::size_t b) {
  return kFloorUs * std::pow(kGrowth, static_cast<double>(b) + 1.0);
}

void LatencyHistogram::record(double us) {
  ++counts[bin_for(us)];
  ++total;
  sum_us += us;
  max_us = std::max(max_us, us);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBins; ++b) counts[b] += other.counts[b];
  total += other.total;
  sum_us += other.sum_us;
  max_us = std::max(max_us, other.max_us);
}

double LatencyHistogram::mean_us() const {
  return total == 0 ? 0.0 : sum_us / static_cast<double>(total);
}

double LatencyHistogram::quantile_us(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBins; ++b) {
    seen += counts[b];
    if (seen >= target) return bin_upper_us(b);
  }
  return bin_upper_us(kBins - 1);
}

void RetryHistogram::record(std::size_t attempts) {
  if (attempts == 0) attempts = 1;
  ++counts[std::min(attempts - 1, kBins - 1)];
  ++total;
  sum_attempts += attempts;
}

void RetryHistogram::merge(const RetryHistogram& other) {
  for (std::size_t b = 0; b < kBins; ++b) counts[b] += other.counts[b];
  total += other.total;
  sum_attempts += other.sum_attempts;
}

double RetryHistogram::mean_attempts() const {
  return total == 0 ? 0.0
                    : static_cast<double>(sum_attempts) /
                          static_cast<double>(total);
}

const char* poll_outcome_name(PollOutcome o) {
  switch (o) {
    case PollOutcome::kDelivered: return "delivered";
    case PollOutcome::kDownlinkMiss: return "downlink_miss";
    case PollOutcome::kReservationDenied: return "reservation_denied";
    case PollOutcome::kCollision: return "collision";
    case PollOutcome::kDecodeFailure: return "decode_failure";
    case PollOutcome::kBackoff: return "backoff";
    case PollOutcome::kBrownout: return "brownout";
    case PollOutcome::kApOutage: return "ap_outage";
    case PollOutcome::kLinkDown: return "link_down";
  }
  return "?";
}

namespace {

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

void mix_histogram(Fnv1a& h, const LatencyHistogram& lat) {
  for (const auto c : lat.counts) h.mix(c);
  h.mix(lat.total);
  h.mix(lat.sum_us);
  h.mix(lat.max_us);
}

void mix_retry_histogram(Fnv1a& h, const RetryHistogram& r) {
  for (const auto c : r.counts) h.mix(c);
  h.mix(r.total);
  h.mix(r.sum_attempts);
}

}  // namespace

std::uint64_t NetworkStats::digest() const {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(num_tags));
  h.mix(static_cast<std::uint64_t>(num_channels));
  h.mix(elapsed_us);
  h.mix(queries_sent);
  h.mix(replies_received);
  h.mix(downlink_misses);
  h.mix(reservation_denied);
  h.mix(collisions);
  h.mix(decode_failures);
  h.mix(aggregate_goodput_kbps);
  h.mix(mean_tag_goodput_kbps);
  mix_histogram(h, query_latency);
  h.mix(mean_airtime_duty);
  h.mix(mean_harvest_duty);
  h.mix(mean_tag_power_uw);
  h.mix(messages_offered);
  h.mix(messages_delivered);
  h.mix(messages_dropped);
  h.mix(retransmissions);
  h.mix(backoff_skips);
  h.mix(brownout_skips);
  h.mix(outage_skips);
  h.mix(link_down_polls);
  h.mix(failover_polls);
  h.mix(fallback_polls);
  h.mix(delivery_ratio);
  mix_retry_histogram(h, retry_histogram);
  mix_histogram(h, recovery_time);
  h.mix(energy_per_delivered_byte_nj);
  for (const ChannelStats& c : channels) {
    h.mix(static_cast<std::uint64_t>(c.wifi_channel));
    h.mix(static_cast<std::uint64_t>(c.tags));
    h.mix(c.occupancy);
    h.mix(c.leakage_noise_rise_db);
    h.mix(c.busy_probability);
    h.mix(c.replies);
    h.mix(c.collisions);
    h.mix(c.elapsed_us);
  }
  for (const TagStats& t : per_tag) {
    h.mix(static_cast<std::uint64_t>(t.tag_id));
    h.mix(static_cast<std::uint64_t>(t.wifi_channel));
    h.mix(static_cast<std::uint64_t>(t.helper));
    h.mix(static_cast<std::uint64_t>(t.ap));
    h.mix(t.queries);
    h.mix(t.replies);
    h.mix(t.downlink_misses);
    h.mix(t.reservation_denied);
    h.mix(t.collisions);
    h.mix(t.decode_failures);
    h.mix(t.payload_bits);
    h.mix(t.airtime_us);
    h.mix(t.harvest_us);
    h.mix(t.snr_db);
    h.mix(t.reply_per);
    h.mix(t.messages_offered);
    h.mix(t.messages_delivered);
    h.mix(t.messages_dropped);
    h.mix(t.retransmissions);
    h.mix(t.backoff_skips);
    h.mix(t.brownout_skips);
    h.mix(t.outage_skips);
    h.mix(t.link_down_polls);
    h.mix(t.failover_polls);
    h.mix(t.fallback_polls);
    h.mix(t.rate_downshifts);
    h.mix(t.rate_upshifts);
    h.mix(t.tx_energy_nj);
  }
  return h.value();
}

}  // namespace itb::sim
