// Aggregate statistics emitted by the network simulator.
//
// Everything here is designed for order-independent accumulation: shards
// accumulate into disjoint per-tag slots during the parallel phase, and the
// final reduction walks tags in index order on one thread, so the merged
// NetworkStats is bit-identical at any thread count. digest() condenses the
// full result (including every per-tag counter and double bit pattern) into
// one FNV-1a hash, which the determinism tests compare across thread
// counts.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace itb::sim {

using itb::dsp::Real;

/// Fixed-bin log-spaced latency histogram (50 us .. ~5000 s). Fixed edges
/// make quantiles a pure function of the counts, so they are deterministic
/// under any accumulation order.
struct LatencyHistogram {
  static constexpr std::size_t kBins = 64;
  /// Bin b spans [kFloorUs * kGrowth^b, kFloorUs * kGrowth^(b+1)).
  static constexpr double kFloorUs = 50.0;
  static constexpr double kGrowth = 1.333521432163324;  // 8 bins per decade

  std::array<std::uint64_t, kBins> counts{};
  std::uint64_t total = 0;
  double sum_us = 0.0;
  double max_us = 0.0;

  static std::size_t bin_for(double us);
  /// Upper edge of bin b (us).
  static double bin_upper_us(std::size_t b);

  void record(double us);
  void merge(const LatencyHistogram& other);
  double mean_us() const;
  /// Upper edge of the bin holding the q-quantile sample (q in [0, 1]);
  /// 0 when empty.
  double quantile_us(double q) const;
};

/// Attempts-per-delivered-message histogram. Bin b counts messages that
/// needed b+1 transmission attempts; the last bin absorbs the tail.
struct RetryHistogram {
  static constexpr std::size_t kBins = 9;  ///< 1..8 attempts, 9+ in the tail

  std::array<std::uint64_t, kBins> counts{};
  std::uint64_t total = 0;
  std::uint64_t sum_attempts = 0;

  void record(std::size_t attempts);
  void merge(const RetryHistogram& other);
  double mean_attempts() const;
};

/// How one TDMA poll slot resolved (per-poll trace + outcome taxonomy).
enum class PollOutcome : std::uint8_t {
  kDelivered = 0,         ///< fragment decoded at the AP
  kDownlinkMiss = 1,      ///< tag never heard the query
  kReservationDenied = 2, ///< tag stayed silent (reservation not granted)
  kCollision = 3,
  kDecodeFailure = 4,
  kBackoff = 5,           ///< tag idled the slot (ARQ exponential backoff)
  kBrownout = 6,          ///< harvest brownout: tag unpowered
  kApOutage = 7,          ///< AP down and no live failover target
  kLinkDown = 8,          ///< budget declared the link dead (channel::link)
};
const char* poll_outcome_name(PollOutcome o);

/// One polling-slot record, collected only when NetworkConfig::keep_trace
/// is set (golden fault-timeline tests, demos). Not part of digest().
struct PollRecord {
  double time_us = 0.0;
  std::uint32_t tag = 0;
  std::uint32_t round = 0;
  PollOutcome outcome = PollOutcome::kDelivered;
  std::uint8_t waveform = 0;  ///< mac::LinkWaveform in effect for the poll
  std::uint32_t ap = 0;       ///< AP that served (or would have served) it
  bool retransmission = false;
};

/// Per-tag accounting, written by exactly one shard (disjoint slots).
struct TagStats {
  std::uint32_t tag_id = 0;
  unsigned wifi_channel = 0;      ///< FDMA group the tag replies on
  std::uint32_t helper = 0;       ///< nearest BLE helper index
  std::uint32_t ap = 0;           ///< nearest same-channel AP index
  std::uint64_t queries = 0;      ///< polls addressed to this tag
  std::uint64_t replies = 0;      ///< successfully decoded replies
  std::uint64_t downlink_misses = 0;
  std::uint64_t reservation_denied = 0;  ///< stayed silent (RTS not granted)
  std::uint64_t collisions = 0;
  std::uint64_t decode_failures = 0;
  double payload_bits = 0.0;
  double airtime_us = 0.0;   ///< tag transmit airtime (data + control)
  double harvest_us = 0.0;   ///< time illuminated by helper/AP carriers
  double snr_db = 0.0;       ///< budget-level reply SNR (after leakage rise)
  double reply_per = 0.0;    ///< closed-form PER at that SNR
  // --- resilience (ARQ / faults / fallback) ---------------------------
  std::uint64_t messages_offered = 0;    ///< delivered + dropped + in flight
  std::uint64_t messages_delivered = 0;  ///< all fragments decoded
  std::uint64_t messages_dropped = 0;    ///< retry budget / attempts exhausted
  std::uint64_t retransmissions = 0;
  std::uint64_t backoff_skips = 0;   ///< slots idled by ARQ backoff
  std::uint64_t brownout_skips = 0;  ///< slots lost to harvest brownouts
  std::uint64_t outage_skips = 0;    ///< slots lost to AP outage (no failover)
  std::uint64_t link_down_polls = 0; ///< polls refused: budget declared link dead
  std::uint64_t failover_polls = 0;  ///< polls served by the backup AP
  std::uint64_t fallback_polls = 0;  ///< attempts below the configured rate
  std::uint64_t rate_downshifts = 0;
  std::uint64_t rate_upshifts = 0;
  double tx_energy_nj = 0.0;  ///< transmit energy over all attempts (IC model)
};

/// Per-Wi-Fi-channel (FDMA group) accounting.
struct ChannelStats {
  unsigned wifi_channel = 0;
  std::size_t tags = 0;
  double occupancy = 0.0;  ///< fraction of sim time replies occupy the air
  /// Noise-floor rise (dB) from other groups' SSB mirror leakage.
  double leakage_noise_rise_db = 0.0;
  double busy_probability = 0.0;  ///< ambient + leakage, used by reservation
  std::uint64_t replies = 0;
  std::uint64_t collisions = 0;
  double elapsed_us = 0.0;  ///< this group's TDMA timeline length
};

struct NetworkStats {
  std::size_t num_tags = 0;
  std::size_t num_channels = 0;
  double elapsed_us = 0.0;  ///< max over channel timelines
  std::uint64_t queries_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t downlink_misses = 0;
  std::uint64_t reservation_denied = 0;
  std::uint64_t collisions = 0;
  std::uint64_t decode_failures = 0;
  double aggregate_goodput_kbps = 0.0;
  double mean_tag_goodput_kbps = 0.0;
  LatencyHistogram query_latency;
  /// Mean fraction of time a tag spends backscattering.
  double mean_airtime_duty = 0.0;
  /// Mean fraction of time a tag is illuminated by a carrier it can harvest.
  double mean_harvest_duty = 0.0;
  /// Mean tag power draw at its duty cycle (uW), via IcPowerModel.
  double mean_tag_power_uw = 0.0;
  // --- resilience -----------------------------------------------------
  std::uint64_t messages_offered = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t backoff_skips = 0;
  std::uint64_t brownout_skips = 0;
  std::uint64_t outage_skips = 0;
  std::uint64_t link_down_polls = 0;
  std::uint64_t failover_polls = 0;
  std::uint64_t fallback_polls = 0;
  /// delivered / (delivered + dropped): messages still in flight when the
  /// run ends are censored, not counted against the link layer. 1.0 when
  /// nothing completed.
  double delivery_ratio = 1.0;
  RetryHistogram retry_histogram;
  /// Time from a tag's first failed/skipped poll to its next successful
  /// delivery — how long disruptions (faults, deep fades) take to heal.
  LatencyHistogram recovery_time;
  /// Transmit energy per delivered payload byte, nJ (0 when nothing was
  /// delivered). Retries and fallback rungs pay real energy here.
  double energy_per_delivered_byte_nj = 0.0;
  std::vector<ChannelStats> channels;
  std::vector<TagStats> per_tag;  ///< empty when NetworkConfig::keep_per_tag off
  std::vector<PollRecord> trace;  ///< only when NetworkConfig::keep_trace
  /// PollRecords dropped (oldest-first) to honor NetworkConfig::
  /// trace_capacity. Like the trace itself, excluded from digest(): the
  /// trace knobs must never change the result identity.
  std::uint64_t trace_dropped = 0;

  /// FNV-1a hash over every field except the trace (doubles by bit
  /// pattern, vectors in index order). Two runs are bit-identical iff
  /// their digests match.
  std::uint64_t digest() const;
};

}  // namespace itb::sim
