// Aggregate statistics emitted by the network simulator.
//
// Everything here is designed for order-independent accumulation: shards
// accumulate into disjoint per-tag slots during the parallel phase, and the
// final reduction walks tags in index order on one thread, so the merged
// NetworkStats is bit-identical at any thread count. digest() condenses the
// full result (including every per-tag counter and double bit pattern) into
// one FNV-1a hash, which the determinism tests compare across thread
// counts.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace itb::sim {

using itb::dsp::Real;

/// Fixed-bin log-spaced latency histogram (50 us .. ~5000 s). Fixed edges
/// make quantiles a pure function of the counts, so they are deterministic
/// under any accumulation order.
struct LatencyHistogram {
  static constexpr std::size_t kBins = 64;
  /// Bin b spans [kFloorUs * kGrowth^b, kFloorUs * kGrowth^(b+1)).
  static constexpr double kFloorUs = 50.0;
  static constexpr double kGrowth = 1.333521432163324;  // 8 bins per decade

  std::array<std::uint64_t, kBins> counts{};
  std::uint64_t total = 0;
  double sum_us = 0.0;
  double max_us = 0.0;

  static std::size_t bin_for(double us);
  /// Upper edge of bin b (us).
  static double bin_upper_us(std::size_t b);

  void record(double us);
  void merge(const LatencyHistogram& other);
  double mean_us() const;
  /// Upper edge of the bin holding the q-quantile sample (q in [0, 1]);
  /// 0 when empty.
  double quantile_us(double q) const;
};

/// Per-tag accounting, written by exactly one shard (disjoint slots).
struct TagStats {
  std::uint32_t tag_id = 0;
  unsigned wifi_channel = 0;      ///< FDMA group the tag replies on
  std::uint32_t helper = 0;       ///< nearest BLE helper index
  std::uint32_t ap = 0;           ///< nearest same-channel AP index
  std::uint64_t queries = 0;      ///< polls addressed to this tag
  std::uint64_t replies = 0;      ///< successfully decoded replies
  std::uint64_t downlink_misses = 0;
  std::uint64_t reservation_denied = 0;  ///< stayed silent (RTS not granted)
  std::uint64_t collisions = 0;
  std::uint64_t decode_failures = 0;
  double payload_bits = 0.0;
  double airtime_us = 0.0;   ///< tag transmit airtime (data + control)
  double harvest_us = 0.0;   ///< time illuminated by helper/AP carriers
  double snr_db = 0.0;       ///< budget-level reply SNR (after leakage rise)
  double reply_per = 0.0;    ///< closed-form PER at that SNR
};

/// Per-Wi-Fi-channel (FDMA group) accounting.
struct ChannelStats {
  unsigned wifi_channel = 0;
  std::size_t tags = 0;
  double occupancy = 0.0;  ///< fraction of sim time replies occupy the air
  /// Noise-floor rise (dB) from other groups' SSB mirror leakage.
  double leakage_noise_rise_db = 0.0;
  double busy_probability = 0.0;  ///< ambient + leakage, used by reservation
  std::uint64_t replies = 0;
  std::uint64_t collisions = 0;
  double elapsed_us = 0.0;  ///< this group's TDMA timeline length
};

struct NetworkStats {
  std::size_t num_tags = 0;
  std::size_t num_channels = 0;
  double elapsed_us = 0.0;  ///< max over channel timelines
  std::uint64_t queries_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t downlink_misses = 0;
  std::uint64_t reservation_denied = 0;
  std::uint64_t collisions = 0;
  std::uint64_t decode_failures = 0;
  double aggregate_goodput_kbps = 0.0;
  double mean_tag_goodput_kbps = 0.0;
  LatencyHistogram query_latency;
  /// Mean fraction of time a tag spends backscattering.
  double mean_airtime_duty = 0.0;
  /// Mean fraction of time a tag is illuminated by a carrier it can harvest.
  double mean_harvest_duty = 0.0;
  /// Mean tag power draw at its duty cycle (uW), via IcPowerModel.
  double mean_tag_power_uw = 0.0;
  std::vector<ChannelStats> channels;
  std::vector<TagStats> per_tag;  ///< empty when NetworkConfig::keep_per_tag off

  /// FNV-1a hash over every field (doubles by bit pattern, vectors in index
  /// order). Two runs are bit-identical iff their digests match.
  std::uint64_t digest() const;
};

}  // namespace itb::sim
