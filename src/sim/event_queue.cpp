#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace itb::sim {

bool event_before(const Event& a, const Event& b) {
  if (a.time_us != b.time_us) return a.time_us < b.time_us;
  if (a.type != b.type) return a.type < b.type;
  if (a.entity != b.entity) return a.entity < b.entity;
  return a.seq < b.seq;
}

namespace {

// std::push_heap/pop_heap build a max-heap, so invert the order.
bool heap_after(const Event& a, const Event& b) { return event_before(b, a); }

}  // namespace

void EventQueue::schedule(double time_us, EventType type, std::uint32_t entity,
                          std::uint64_t data) {
  if (time_us < now_us_) {
    throw std::logic_error("EventQueue::schedule: event lies in the past");
  }
  heap_.push_back(Event{time_us, type, entity, data, next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

Event EventQueue::pop() {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop: queue is empty");
  }
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  const Event out = heap_.back();
  heap_.pop_back();
  now_us_ = out.time_us;
  return out;
}

}  // namespace itb::sim
