#include "sim/topology.h"

#include <cmath>
#include <stdexcept>

#include "dsp/rng.h"

namespace itb::sim {

Real distance_m(const Vec2& a, const Vec2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

std::size_t nearest_index(const std::vector<Vec2>& nodes, const Vec2& p) {
  if (nodes.empty()) {
    throw std::invalid_argument("nearest_index: empty node set");
  }
  std::size_t best = 0;
  Real best_d = distance_m(nodes[0], p);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const Real d = distance_m(nodes[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

namespace {

/// n points on a ceil(sqrt(n))-wide lattice filling [0, extent]^2, row-major.
std::vector<Vec2> lattice(std::size_t n, Real extent) {
  std::vector<Vec2> out;
  out.reserve(n);
  if (n == 0) return out;
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const Real pitch = extent / static_cast<Real>(side);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = i / side;
    const std::size_t col = i % side;
    out.push_back({(static_cast<Real>(col) + 0.5) * pitch,
                   (static_cast<Real>(row) + 0.5) * pitch});
  }
  return out;
}

/// n points evenly spaced along the horizontal mid-line of [0, extent]^2.
std::vector<Vec2> midline(std::size_t n, Real extent, Real y) {
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({(static_cast<Real>(i) + 0.5) * extent /
                       static_cast<Real>(n == 0 ? 1 : n),
                   y});
  }
  return out;
}

std::vector<Vec2> uniform_disk(std::size_t n, Real radius,
                               itb::dsp::Xoshiro256& rng) {
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // sqrt(u) radial density makes the area density uniform.
    const Real r = radius * std::sqrt(rng.uniform());
    const Real theta = rng.uniform(0.0, itb::dsp::kTwoPi);
    out.push_back({radius + r * std::cos(theta),
                   radius + r * std::sin(theta)});
  }
  return out;
}

Placement hospital_ward(const TopologyConfig& cfg,
                        itb::dsp::Xoshiro256& rng) {
  Placement out;
  const std::size_t beds = cfg.beds_per_room == 0 ? 1 : cfg.beds_per_room;
  const std::size_t rooms = (cfg.num_tags + beds - 1) / beds;
  const Real corridor_y = cfg.room_depth_m;  // corridor axis

  // Every room uses the same bed lattice; compute it once, not per room.
  const auto bed_grid = lattice(beds, cfg.room_pitch_m * 0.8);
  // Rooms alternate sides of the corridor: room r sits at x = pitch*(r/2),
  // y = 0 (south) or 2*room_depth (north).
  for (std::size_t r = 0; r < rooms && out.tags.size() < cfg.num_tags; ++r) {
    const Real cx = cfg.room_pitch_m * (static_cast<Real>(r / 2) + 0.5);
    const Real cy = (r % 2 == 0) ? corridor_y - cfg.room_depth_m * 0.6
                                 : corridor_y + cfg.room_depth_m * 0.6;
    // One BLE helper per room, wall-mounted at the room centre.
    out.helpers.push_back({cx, cy});
    // Beds on the shared lattice; one tag per bed, scattered.
    for (std::size_t b = 0; b < beds && out.tags.size() < cfg.num_tags; ++b) {
      const Real jx = rng.uniform(-cfg.bed_scatter_m, cfg.bed_scatter_m);
      const Real jy = rng.uniform(-cfg.bed_scatter_m, cfg.bed_scatter_m);
      out.tags.push_back({cx - cfg.room_pitch_m * 0.4 + bed_grid[b].x + jx,
                          cy - cfg.room_pitch_m * 0.4 + bed_grid[b].y + jy});
    }
  }

  // APs down the corridor covering the occupied span.
  const Real span = cfg.room_pitch_m *
                    (static_cast<Real>((rooms + 1) / 2) + 0.5);
  out.aps = midline(cfg.num_aps, span, corridor_y);
  // num_helpers is advisory for the ward: the ward places one per room, but
  // honours an explicit smaller count by trimming (keeps coverage sparse).
  if (cfg.num_helpers != 0 && out.helpers.size() > cfg.num_helpers) {
    // Centered strided selection: helper i covers the middle of the i-th of
    // num_helpers equal room spans. (The old `i * total / num_helpers`
    // always kept room 0 and biased coverage toward the corridor start.)
    std::vector<Vec2> kept;
    kept.reserve(cfg.num_helpers);
    const std::size_t total = out.helpers.size();
    for (std::size_t i = 0; i < cfg.num_helpers; ++i) {
      kept.push_back(out.helpers[(2 * i + 1) * total / (2 * cfg.num_helpers)]);
    }
    out.helpers = std::move(kept);
  }
  return out;
}

}  // namespace

Placement generate_topology(const TopologyConfig& cfg) {
  // Domain-separated substream ("topo"): placement draws must not alias the
  // per-entity entity_stream() substreams that reuse the same sim seed.
  itb::dsp::Xoshiro256 rng(itb::dsp::splitmix64(cfg.seed ^ 0x746F706FULL));
  Placement out;
  switch (cfg.kind) {
    case TopologyKind::kGrid:
      out.tags = lattice(cfg.num_tags, cfg.extent_m);
      out.helpers = lattice(cfg.num_helpers, cfg.extent_m);
      out.aps = midline(cfg.num_aps, cfg.extent_m, cfg.extent_m * 0.5);
      break;
    case TopologyKind::kUniformDisk:
      out.tags = uniform_disk(cfg.num_tags, cfg.extent_m, rng);
      out.helpers = lattice(cfg.num_helpers, 2.0 * cfg.extent_m);
      out.aps = midline(cfg.num_aps, 2.0 * cfg.extent_m, cfg.extent_m);
      break;
    case TopologyKind::kHospitalWard:
      out = hospital_ward(cfg, rng);
      break;
  }
  return out;
}

}  // namespace itb::sim
