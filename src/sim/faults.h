// Deterministic fault injection for the multi-tag network simulator.
//
// A FaultSchedule is a plain list of typed, time-windowed fault events —
// AP outage/restart, per-channel interference bursts, tag harvest
// brownouts, and fleet-wide SNR slumps. Schedules are either hand-built
// (golden tests, demo scenarios: "midnight AP reboot", "microwave oven")
// or generated from a FaultProfile, where every event is drawn from a
// per-entity counter-based RNG substream (entity_stream, the same
// trial_seed mix as the Monte-Carlo engine) so a schedule is a pure
// function of (profile, fleet shape, seed) — never of thread count or
// iteration order.
//
// The simulator consumes a compiled FaultTimeline: immutable per-entity
// interval lists built once before the parallel shard fan-out. Every
// query the run loop makes (`ap_down(ap, t)`, `channel_noise_rise_db(g,
// t)`, ...) is a pure function of entity and simulated time, which is what
// keeps the sharded bit-identical digest contract of DESIGN.md intact:
// faults change *which* outcome a poll resolves to, never the order or
// identity of the RNG draws behind it.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace itb::sim {

using itb::dsp::Real;

enum class FaultKind : std::uint8_t {
  /// AP powered off for the window; its tags are orphaned until restart.
  /// entity = AP index.
  kApOutage = 0,
  /// In-band interferer (e.g. microwave oven) on one Wi-Fi channel:
  /// raises the noise floor by magnitude_db and occupies the channel
  /// (CCA busy) for a duty cycle derived from the same magnitude.
  /// entity = Wi-Fi channel *number* (1..14, as in NetworkConfig).
  kInterference = 1,
  /// Tag harvest brownout: the IC's storage cap sags below the logic
  /// retention voltage (backscatter::IcPowerConfig territory), so the tag
  /// neither decodes queries nor replies. entity = tag id.
  kBrownout = 2,
  /// Transient fleet-wide SNR slump of magnitude_db (e.g. body movement
  /// re-orienting every implant antenna at once). entity ignored.
  kSnrSlump = 3,
};

inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kApOutage: return "ap_outage";
    case FaultKind::kInterference: return "interference";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kSnrSlump: return "snr_slump";
  }
  return "?";
}

struct FaultEvent {
  FaultKind kind = FaultKind::kSnrSlump;
  std::uint32_t entity = 0;
  double start_us = 0.0;
  double duration_us = 0.0;
  Real magnitude_db = 0.0;  ///< noise rise / slump depth; unused for outages
  double end_us() const { return start_us + duration_us; }
};

/// Builder-style container so scenarios read declaratively.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  FaultSchedule& ap_outage(std::uint32_t ap, double start_us,
                           double duration_us);
  FaultSchedule& interference(unsigned wifi_channel, double start_us,
                              double duration_us, Real noise_rise_db);
  FaultSchedule& brownout(std::uint32_t tag, double start_us,
                          double duration_us);
  FaultSchedule& snr_slump(double start_us, double duration_us, Real depth_db);

  bool empty() const { return events.empty(); }
};

/// Stochastic fault mix over a horizon. Rates are expected event counts
/// per entity over the whole horizon (not per second), so a profile reads
/// as "each AP fails about once, each channel sees ~2 bursts".
struct FaultProfile {
  double horizon_us = 0.0;  ///< events are drawn in [0, horizon_us)

  double outages_per_ap = 0.0;
  double outage_mean_us = 2e6;

  double bursts_per_channel = 0.0;
  double burst_mean_us = 5e5;
  Real burst_rise_db = 20.0;

  double brownouts_per_tag = 0.0;
  double brownout_mean_us = 1e5;

  double snr_slumps = 0.0;
  double slump_mean_us = 2e5;
  Real slump_depth_db = 6.0;
};

/// Draws a schedule from the profile. Each entity's events come from its
/// own counter-based substream; durations are exponential with the
/// configured mean. Deterministic: same (profile, shape, seed) -> same
/// schedule, independent of anything else the caller has drawn.
FaultSchedule generate_fault_schedule(const FaultProfile& profile,
                                      std::size_t num_aps,
                                      const std::vector<unsigned>& wifi_channels,
                                      std::size_t num_tags, std::uint64_t seed);

/// Immutable compiled form: per-entity interval lists with O(active
/// events) point queries. Built once before the parallel phase.
class FaultTimeline {
 public:
  FaultTimeline() = default;
  FaultTimeline(const FaultSchedule& schedule, std::size_t num_aps,
                const std::vector<unsigned>& wifi_channels,
                std::size_t num_tags);

  bool any() const { return any_; }

  bool ap_down(std::uint32_t ap, double t_us) const;
  bool tag_browned_out(std::uint32_t tag, double t_us) const;

  /// Noise-floor rise (dB) on FDMA group `group` at time t: active
  /// interference bursts on its channel plus fleet-wide SNR slumps. The
  /// magnitudes of simultaneously-active events add in dB (conservative;
  /// overlapping bursts are rare and the golden tests pin the
  /// single-burst case).
  Real channel_noise_rise_db(std::size_t group, double t_us) const;

  /// Extra CCA busy probability the interferer contributes on `group` at
  /// time t: 1 - exp(-rise_db / 10), a saturating duty-cycle map (20 dB
  /// burst -> ~0.86 busy, 6 dB -> ~0.45, 0 -> 0). Only interference
  /// bursts occupy the channel; SNR slumps degrade links without keeping
  /// CCA busy.
  Real channel_busy_boost(std::size_t group, double t_us) const;

 private:
  struct Interval {
    double start_us;
    double end_us;
    Real magnitude_db;
  };
  static bool active(const std::vector<Interval>& v, double t_us);
  static Real active_db(const std::vector<Interval>& v, double t_us);

  bool any_ = false;
  std::vector<std::vector<Interval>> ap_;       ///< per AP index
  std::vector<std::vector<Interval>> channel_;  ///< per FDMA group index
  std::vector<std::vector<Interval>> tag_;      ///< per tag id
  std::vector<Interval> slumps_;                ///< fleet-wide SNR slumps
};

}  // namespace itb::sim
