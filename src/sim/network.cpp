#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "ble/channel_map.h"
#include "channel/awgn.h"
#include "core/interscatter.h"
#include "core/parallel.h"
#include "dsp/units.h"
#include "obs/capture.h"
#include "obs/prof.h"
#include "sim/event_queue.h"
#include "sim/spatial_hash.h"

namespace itb::sim {

namespace {

/// 47-byte BLE advertising packet at 1 Mbps; the helper repeats it on the
/// three advertising channels every interval, illuminating (and powering)
/// the tags in range.
constexpr Real kAdvPacketUs = 376.0;

/// CCA energy-detect threshold: leakage below this never makes the victim
/// channel look busy, it only raises the noise floor.
constexpr Real kCcaThresholdDbm = -62.0;

/// RNG phase salts: every (tag, round) poll uses two independent substreams
/// so the reply draws never depend on how many draws the query phase made.
constexpr std::uint64_t kQueryPhase = 0;
constexpr std::uint64_t kReplyPhase = 1;

std::uint64_t phase_counter(std::uint64_t round, std::uint64_t phase) {
  return round * 2 + phase;
}

/// Event payload packing: (failover << 63) | (slot << 32) | round. The
/// failover decision is made at query time and must survive to the reply
/// handler, so it rides in the event data.
constexpr std::uint64_t kFailoverBit = 1ULL << 63;

struct Shard {
  std::size_t group = 0;
  std::size_t begin = 0;  ///< slot range within the group's tag list
  std::size_t end = 0;
};

/// Streaming stats block: everything the final reduction needs from one
/// shard when per-tag records are not kept. Each shard folds its local
/// TagStats into one of these as it finishes, so memory stays
/// O(shards + threads * shard_tags) instead of O(tags) — the difference
/// between 1M-tag runs fitting in cache-adjacent memory and a ~250 MB
/// TagStats array. Blocks merge sequentially in shard-index order (==
/// group-major slot order, the same order the per-tag reduction walks),
/// so the merged result is thread-count invariant.
struct ShardAgg {
  std::uint64_t queries = 0;
  std::uint64_t replies = 0;
  std::uint64_t downlink_misses = 0;
  std::uint64_t reservation_denied = 0;
  std::uint64_t collisions = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t messages_offered = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t backoff_skips = 0;
  std::uint64_t brownout_skips = 0;
  std::uint64_t outage_skips = 0;
  std::uint64_t link_down_polls = 0;
  std::uint64_t failover_polls = 0;
  std::uint64_t fallback_polls = 0;
  double payload_bits = 0.0;
  double tx_energy_nj = 0.0;
  double sum_tag_goodput = 0.0;
  double sum_airtime_duty = 0.0;
  double sum_harvest_duty = 0.0;
  double sum_power_uw = 0.0;
};

/// Per-tag ARQ + fallback progress (lives in the owning shard only; a pure
/// fold over that tag's own attempt outcomes, so thread-count invariant).
struct ArqProgress {
  bool in_flight = false;         ///< a message is being delivered
  std::size_t frag = 0;           ///< next fragment index to deliver
  std::size_t frag_attempts = 0;  ///< attempts spent on the current fragment
  std::size_t msg_attempts = 0;   ///< attempts spent on the whole message
  std::size_t retx_used = 0;      ///< retransmissions charged to the budget
  std::size_t fail_streak = 0;    ///< consecutive failed attempts (backoff)
  std::size_t backoff_remaining = 0;  ///< slots left to idle before retrying
  mac::RateFallbackController fallback;
  bool disrupted = false;         ///< inside a not-yet-recovered outage/fade
  double disrupted_since_us = 0.0;
};

Real waveform_per_at(mac::LinkWaveform w, Real snr_db,
                     std::size_t wire_bytes) {
  if (mac::is_wifi(w)) {
    return itb::channel::per_80211b(mac::waveform_rate(w), snr_db, wire_bytes);
  }
  return itb::channel::per_802154(snr_db, wire_bytes);
}

/// One shard's bounded PollRecord buffer: beyond trace_capacity the oldest
/// record is overwritten. Per-shard rings plus a global oldest-trim after
/// the merge keep the kept window identical at any thread count.
struct PollRing {
  std::vector<PollRecord> ring;
  std::size_t head = 0;        ///< oldest record once the ring is full
  std::uint64_t emitted = 0;

  void push(const PollRecord& r, std::size_t capacity) {
    ++emitted;
    if (capacity == 0 || ring.size() < capacity) {
      ring.push_back(r);
      return;
    }
    ring[head] = r;
    head = (head + 1) % capacity;
  }
};

/// Metric ids for the sim-domain registry (registered once per run()).
struct SimMetricIds {
  obs::MetricId polls = 0;
  obs::MetricId replies = 0;
  obs::MetricId downlink_misses = 0;
  obs::MetricId reservation_denied = 0;
  obs::MetricId collisions = 0;
  obs::MetricId decode_failures = 0;
  obs::MetricId retries = 0;
  obs::MetricId backoff = 0;
  obs::MetricId delivered = 0;
  obs::MetricId dropped = 0;
  obs::MetricId downshifts = 0;
  obs::MetricId upshifts = 0;
  obs::MetricId brownouts = 0;
  obs::MetricId outages = 0;
  obs::MetricId failovers = 0;
  obs::MetricId link_down = 0;
  obs::MetricId latency = 0;
};

}  // namespace

NetworkCoordinator::NetworkCoordinator(const NetworkConfig& cfg) : cfg_(cfg) {
  static const std::size_t kZoneBuild = obs::prof_zone("sim.topology_build");
  const obs::ProfZone prof_build(kZoneBuild);
  if (cfg_.wifi_channels.empty()) {
    throw std::invalid_argument("NetworkConfig: no Wi-Fi channels");
  }
  if (cfg_.shard_tags == 0) cfg_.shard_tags = 256;
  cfg_.polling = cfg_.polling.validated();
  cfg_.arq = cfg_.arq.validated();
  cfg_.fallback = cfg_.fallback.validated();
  placement_ = generate_topology(cfg_.topology);
  const std::size_t n = placement_.tags.size();
  if (n > 0 && (placement_.helpers.empty() || placement_.aps.empty())) {
    throw std::invalid_argument(
        "NetworkConfig: tags present but no helpers or no APs");
  }

  // Effective wire size of one attempt: with ARQ every fragment carries the
  // mac/arq framing (header + CRC) on top of its payload share.
  fragments_ = cfg_.enable_arq
                   ? mac::fragment_count(cfg_.payload_bytes,
                                         cfg_.arq.fragment_bytes)
                   : 1;
  const std::size_t frag_payload =
      cfg_.enable_arq && cfg_.arq.fragment_bytes > 0
          ? std::min(cfg_.arq.fragment_bytes, std::max<std::size_t>(
                                                  cfg_.payload_bytes, 1))
          : cfg_.payload_bytes;
  wire_bytes_ = cfg_.enable_arq ? frag_payload + mac::kFragmentOverheadBytes
                                : cfg_.payload_bytes;

  timeline_ = FaultTimeline(cfg_.faults, placement_.aps.size(),
                            cfg_.wifi_channels, n);

  const std::size_t num_groups = cfg_.wifi_channels.size();
  links_.resize(n);
  channels_.assign(num_groups, {});

  // FDMA: balance groups round-robin by tag id. Deterministic and keeps
  // every channel's TDMA round the same length to within one tag. Group g
  // is the arithmetic sequence g, g+G, g+2G, ... — filled directly, no
  // per-tag push_back.
  group_tags_.assign(num_groups, {});
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::size_t count = n > g ? (n - g - 1) / num_groups + 1 : 0;
    group_tags_[g].resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      group_tags_[g][j] = static_cast<std::uint32_t>(g + j * num_groups);
    }
  }

  const Real ble_hz = itb::ble::ChannelMap::frequency_hz(cfg_.ble_channel);

  // --- per-tag link budgets (pure geometry + closed forms) -----------------
  // Nearest helper/AP come from spatial-hash grids (bit-identical to the
  // brute-force scans, including index-order tie-breaks), and the
  // impairment preset — a function of the group's carrier only — is
  // resolved once per Wi-Fi channel instead of once per tag. The loop body
  // is a pure function of (cfg, placement) writing disjoint links_[t]
  // slots, so it fans out over fixed-size blocks: thread count changes
  // wall time, never results.
  itb::channel::LogDistanceModel pl;
  pl.exponent = cfg_.pathloss_exponent;
  const SpatialHashGrid helper_grid(placement_.helpers);
  const SpatialHashGrid ap_grid(placement_.aps);
  std::vector<std::optional<itb::channel::ImpairmentConfig>> group_preset(
      num_groups);
  if (cfg_.impairment_preset != itb::channel::ImpairmentPreset::kNone) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      group_preset[g] = itb::channel::make_impairment_preset(
          cfg_.impairment_preset, 11e6,
          itb::ble::wifi_channel_hz(cfg_.wifi_channels[g]));
    }
  }
  // Radio impairments degrade every reply before the PER mapping. The
  // preset is resolved at the group's carrier; 1 us DSSS symbols set the
  // timescale for CFO/phase-noise/delay-spread error accumulation.
  const auto impair = [&](Real snr_db, std::size_t g) {
    if (!group_preset[g]) return snr_db;
    return itb::channel::impaired_snr_db(*group_preset[g], snr_db, 1e6);
  };
  const auto downlink_miss = [&](Real ap_distance_m) {
    const Real rssi = itb::channel::direct_rssi_dbm(cfg_.ap_tx_power_dbm, 2.0,
                                                    2.0, pl, ap_distance_m) -
                      cfg_.tag_medium_loss_db;
    return rssi < cfg_.detector_sensitivity_dbm
               ? Real{1.0}
               : cfg_.polling.downlink_error_rate;
  };
  const auto build_link = [&](std::size_t t) {
    TagLink& link = links_[t];
    const std::size_t g = t % num_groups;
    link.wifi_channel = cfg_.wifi_channels[g];

    link.helper =
        static_cast<std::uint32_t>(helper_grid.nearest(placement_.tags[t]));
    link.ap = static_cast<std::uint32_t>(ap_grid.nearest(placement_.tags[t]));
    link.helper_distance_m =
        distance_m(placement_.helpers[link.helper], placement_.tags[t]);
    link.ap_distance_m =
        distance_m(placement_.aps[link.ap], placement_.tags[t]);
    // The pathloss model diverges as d -> 0; a tag is never closer than a
    // few cm to either radio.
    link.helper_distance_m = std::max(link.helper_distance_m, Real{0.05});
    link.ap_distance_m = std::max(link.ap_distance_m, Real{0.05});

    itb::channel::BackscatterLinkConfig budget;
    budget.ble_tx_power_dbm = cfg_.ble_tx_power_dbm;
    budget.ble_tag_distance_m = link.helper_distance_m;
    budget.tag_medium_loss_db = cfg_.tag_medium_loss_db;
    budget.rx_noise_figure_db = cfg_.rx_noise_figure_db;
    budget.pathloss.exponent = cfg_.pathloss_exponent;
    const itb::channel::LinkSample s =
        itb::channel::backscatter_rssi(budget, link.ap_distance_m);
    link.reply_rssi_dbm = s.rssi_dbm;
    link.link_down = s.link_down;
    link.snr_db = link.link_down ? s.snr_db : impair(s.snr_db, g);

    // Downlink: the AP's OFDM-AM query must clear the tag's peak detector
    // after the tissue loss; below sensitivity the tag never hears it.
    link.downlink_rssi_dbm =
        itb::channel::direct_rssi_dbm(cfg_.ap_tx_power_dbm, 2.0, 2.0, pl,
                                      link.ap_distance_m) -
        cfg_.tag_medium_loss_db;
    link.downlink_miss_prob = downlink_miss(link.ap_distance_m);

    // Failover target: next-nearest AP, with its own precomputed budget.
    // Reassigning to a different Wi-Fi channel would rewrite the TDMA
    // schedule mid-run, so failover keeps the tag's FDMA group and only
    // swaps which AP transmits/receives.
    if (cfg_.ap_failover && placement_.aps.size() > 1) {
      const std::size_t fo = ap_grid.nearest(placement_.tags[t], link.ap);
      Real best = std::max(distance_m(placement_.aps[fo], placement_.tags[t]),
                           Real{0.05});
      link.has_failover = true;
      link.failover_ap = static_cast<std::uint32_t>(fo);
      // The historical scan compared *clamped* distances, which ties every
      // AP inside the 5 cm floor and resolves to the lowest index. The
      // grid compares raw distances, so replay the reference scan in that
      // (vanishingly rare) regime to stay bit-identical.
      if (best <= Real{0.05}) {
        link.has_failover = false;
        for (std::size_t a = 0; a < placement_.aps.size(); ++a) {
          if (a == link.ap) continue;
          const Real d = std::max(
              distance_m(placement_.aps[a], placement_.tags[t]), Real{0.05});
          if (!link.has_failover || d < best) {
            link.has_failover = true;
            link.failover_ap = static_cast<std::uint32_t>(a);
            best = d;
          }
        }
      }
      if (link.has_failover) {
        const itb::channel::LinkSample fs =
            itb::channel::backscatter_rssi(budget, best);
        if (fs.link_down) {
          link.has_failover = false;
        } else {
          link.failover_snr_db = impair(fs.snr_db, g);
          link.failover_downlink_miss_prob = downlink_miss(best);
        }
      }
    }
  };
  constexpr std::size_t kBuildBlock = 4096;
  const std::size_t num_blocks = (n + kBuildBlock - 1) / kBuildBlock;
  itb::core::parallel_for(num_blocks, cfg_.num_threads, [&](std::size_t bi) {
    const std::size_t hi = std::min(n, (bi + 1) * kBuildBlock);
    for (std::size_t t = bi * kBuildBlock; t < hi; ++t) build_link(t);
  });

  // --- per-group airtime occupancy and mean reply power --------------------
  const double slot_us = mac::poll_slot_us(cfg_.polling);
  const double frame_us =
      itb::wifi::frame_airtime_us(cfg_.rate, cfg_.payload_bytes);
  std::vector<Real> mean_reply_watts(num_groups, 0.0);
  std::vector<Real> occupancy(num_groups, 0.0);
  {
    mac::ReservationConfig rc;
    rc.scheme = cfg_.reservation;
    rc.channel_busy_probability = cfg_.ambient_busy_probability;
    rc.cts_detection_probability = cfg_.cts_detection_probability;
    const mac::ReservationOutcome base = mac::reservation_outcome(rc);
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (group_tags_[g].empty()) continue;
      Real watts = 0.0;
      Real transmit_prob = 0.0;
      for (const std::uint32_t t : group_tags_[g]) {
        watts += itb::dsp::dbm_to_watts(links_[t].reply_rssi_dbm);
        transmit_prob += (1.0 - links_[t].downlink_miss_prob) *
                         (base.p_clean + base.p_collision);
      }
      const auto sz = static_cast<Real>(group_tags_[g].size());
      mean_reply_watts[g] = watts / sz;
      // TDMA serializes the group: at most one reply is on the air, for
      // frame_us of every slot_us, whenever the polled tag transmits.
      occupancy[g] = frame_us / slot_us * (transmit_prob / sz);
    }
  }

  // --- cross-channel SSB mirror leakage ------------------------------------
  // Group a's replies sit at f_a = ble + shift_a; the imperfect single
  // sideband leaves a mirror at ble - shift_a = 2*ble - f_a, suppressed by
  // ssb_sideband_suppression_db. Where the mirror overlaps victim group v's
  // 22 MHz channel, the victim's noise floor rises in proportion to the
  // aggressor's airtime occupancy.
  const Real noise_watts = itb::dsp::dbm_to_watts(
      itb::channel::thermal_noise_dbm(22e6, cfg_.rx_noise_figure_db));
  for (std::size_t v = 0; v < num_groups; ++v) {
    ChannelStats& ch = channels_[v];
    ch.wifi_channel = cfg_.wifi_channels[v];
    ch.tags = group_tags_[v].size();
    ch.occupancy = occupancy[v];
    ch.elapsed_us = static_cast<double>(cfg_.rounds) *
                    static_cast<double>(group_tags_[v].size()) * slot_us;

    const Real f_v = itb::ble::wifi_channel_hz(cfg_.wifi_channels[v]);
    Real interference_watts = 0.0;
    Real busy = cfg_.ambient_busy_probability;
    for (std::size_t a = 0; a < num_groups; ++a) {
      if (a == v || group_tags_[a].empty()) continue;
      const Real f_a = itb::ble::wifi_channel_hz(cfg_.wifi_channels[a]);
      const Real mirror_hz = 2.0 * ble_hz - f_a;
      const Real overlap =
          std::max(Real{0.0}, 1.0 - std::abs(mirror_hz - f_v) / 22e6);
      if (overlap <= 0.0) continue;
      const Real leak_watts =
          mean_reply_watts[a] *
          itb::dsp::db_to_ratio(-cfg_.ssb_sideband_suppression_db) * overlap;
      interference_watts += occupancy[a] * leak_watts;
      // Strong leakage can additionally trip the victim's CCA.
      if (itb::dsp::watts_to_dbm(leak_watts) > kCcaThresholdDbm) {
        busy += occupancy[a] * overlap;
      }
    }
    ch.leakage_noise_rise_db =
        itb::dsp::ratio_to_db(1.0 + interference_watts / noise_watts);
    ch.busy_probability = std::min(busy, Real{0.99});
  }

  // --- leakage-degraded reply PER per tag ----------------------------------
  // Same fan-out discipline as the budget loop: disjoint links_[t] writes,
  // pure closed forms, fixed blocks.
  itb::core::parallel_for(num_blocks, cfg_.num_threads, [&](std::size_t bi) {
    const std::size_t hi = std::min(n, (bi + 1) * kBuildBlock);
    for (std::size_t t = bi * kBuildBlock; t < hi; ++t) {
      const std::size_t g = t % num_groups;
      TagLink& link = links_[t];
      const Real snr = link.snr_db - channels_[g].leakage_noise_rise_db;
      link.reply_per =
          itb::channel::per_80211b(cfg_.rate, snr, cfg_.payload_bytes);
      const Real fo_snr =
          link.failover_snr_db - channels_[g].leakage_noise_rise_db;
      for (std::size_t w = 0; w < mac::kNumLinkWaveforms; ++w) {
        const auto wf = static_cast<mac::LinkWaveform>(w);
        link.waveform_per[w] = waveform_per_at(wf, snr, wire_bytes_);
        link.failover_waveform_per[w] =
            link.has_failover ? waveform_per_at(wf, fo_snr, wire_bytes_)
                              : Real{1.0};
      }
    }
  });
}

NetworkStats NetworkCoordinator::run(obs::RunCapture* capture) const {
  static const std::size_t kZoneRun = obs::prof_zone("sim.run");
  const obs::ProfZone prof_run(kZoneRun);
  const std::size_t n = placement_.tags.size();
  const std::size_t num_groups = group_tags_.size();
  const double slot_us = mac::poll_slot_us(cfg_.polling);
  const double query_us = static_cast<double>(mac::QueryFrame::kBits) /
                          cfg_.polling.downlink_kbps * 1e3;
  const double payload_bits = static_cast<double>(cfg_.payload_bytes) * 8.0;
  /// Application bits one delivered fragment is worth (the framing bytes
  /// are overhead, not goodput).
  const double frag_bits = payload_bits / static_cast<double>(fragments_);
  const mac::LinkWaveform initial_waveform = mac::waveform_for_rate(cfg_.rate);

  // Per-group reservation outcome (closed form, O(1) per reply).
  std::vector<mac::ReservationOutcome> outcome(num_groups);
  std::vector<double> round_us(num_groups, 0.0);
  for (std::size_t g = 0; g < num_groups; ++g) {
    mac::ReservationConfig rc;
    rc.scheme = cfg_.reservation;
    rc.channel_busy_probability = channels_[g].busy_probability;
    rc.cts_detection_probability = cfg_.cts_detection_probability;
    outcome[g] = mac::reservation_outcome(rc);
    round_us[g] =
        static_cast<double>(group_tags_[g].size()) * slot_us;
  }

  // Per-rung attempt airtime and IC transmit energy (per group: the SSB
  // shift sets the synthesizer power). uW * us = pJ, stored as nJ.
  const itb::backscatter::IcPowerModel power(cfg_.ic_power);
  const Real ble_hz = itb::ble::ChannelMap::frequency_hz(cfg_.ble_channel);
  std::array<double, mac::kNumLinkWaveforms> attempt_airtime_us{};
  std::vector<std::array<double, mac::kNumLinkWaveforms>> attempt_energy_nj(
      num_groups);
  for (std::size_t w = 0; w < mac::kNumLinkWaveforms; ++w) {
    const auto wf = static_cast<mac::LinkWaveform>(w);
    attempt_airtime_us[w] = mac::waveform_airtime_us(wf, wire_bytes_);
    for (std::size_t g = 0; g < num_groups; ++g) {
      const Real shift_hz = std::abs(
          itb::ble::wifi_channel_hz(cfg_.wifi_channels[g]) - ble_hz);
      attempt_energy_nj[g][w] =
          power.active_power(mac::waveform_rate(wf), shift_hz).total_uw() *
          attempt_airtime_us[w] * 1e-3;
    }
  }

  // Fixed shard partition: contiguous slot ranges within each group,
  // independent of num_threads (part of the result's identity).
  std::vector<Shard> shards;
  for (std::size_t g = 0; g < num_groups; ++g) {
    for (std::size_t b = 0; b < group_tags_[g].size(); b += cfg_.shard_tags) {
      shards.push_back(
          {g, b, std::min(b + cfg_.shard_tags, group_tags_[g].size())});
    }
  }

  // Per-tag records are only materialized globally when the caller asked to
  // keep them; otherwise each shard streams its TagStats into a ShardAgg
  // block and the O(tags) array is never allocated.
  std::vector<TagStats> tag_stats(cfg_.keep_per_tag ? n : 0);
  std::vector<ShardAgg> shard_agg(cfg_.keep_per_tag ? 0 : shards.size());
  std::vector<LatencyHistogram> shard_latency(shards.size());
  std::vector<LatencyHistogram> shard_recovery(shards.size());
  std::vector<RetryHistogram> shard_retries(shards.size());
  std::vector<PollRing> shard_trace(shards.size());

  // Observation state: the registry is the schema (built single-threaded,
  // before the fan-out), each shard gets its own cell block and trace ring,
  // and everything merges in shard-index order after the join — the same
  // reduction discipline the stats follow, so the snapshot/trace inherit
  // the digest contract. Null capture skips all of it.
  obs::MetricsRegistry registry;
  SimMetricIds mid{};
  std::vector<obs::MetricCells> shard_cells;
  std::vector<obs::TraceBuffer> shard_tbuf;
  if (capture != nullptr) {
    mid.polls = registry.counter("itb.sim.polls_total");
    mid.replies = registry.counter("itb.sim.replies_total");
    mid.downlink_misses = registry.counter("itb.sim.downlink_misses");
    mid.reservation_denied = registry.counter("itb.sim.reservation_denied");
    mid.collisions = registry.counter("itb.sim.collisions");
    mid.decode_failures = registry.counter("itb.sim.decode_failures");
    mid.retries = registry.counter("itb.arq.retries");
    mid.backoff = registry.counter("itb.arq.backoff_slots");
    mid.delivered = registry.counter("itb.arq.messages_delivered");
    mid.dropped = registry.counter("itb.arq.messages_dropped");
    mid.downshifts = registry.counter("itb.rate.downshifts");
    mid.upshifts = registry.counter("itb.rate.upshifts");
    mid.brownouts = registry.counter("itb.faults.brownout_skips");
    mid.outages = registry.counter("itb.faults.outage_skips");
    mid.failovers = registry.counter("itb.faults.failover_polls");
    mid.link_down = registry.counter("itb.faults.link_down_polls");
    mid.latency = registry.histogram("itb.sim.poll_latency_us",
                                     {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8});
    shard_cells.reserve(shards.size());
    for (std::size_t si = 0; si < shards.size(); ++si) {
      shard_cells.push_back(registry.make_cells());
    }
    if (capture->collect_trace) {
      shard_tbuf.reserve(shards.size());
      for (std::size_t si = 0; si < shards.size(); ++si) {
        shard_tbuf.emplace_back(capture->trace_events_per_shard);
      }
    }
  }

  itb::core::parallel_for(
      shards.size(), cfg_.num_threads, [&](std::size_t si) {
        static const std::size_t kZoneLoop = obs::prof_zone("sim.event_loop");
        const obs::ProfZone prof_loop(kZoneLoop);
        const Shard& sh = shards[si];
        const std::size_t g = sh.group;
        const mac::ReservationOutcome& oc = outcome[g];
        const double control_amortized_us =
            oc.data_slots_per_event > 0.0
                ? oc.control_overhead_us / oc.data_slots_per_event
                : 0.0;
        LatencyHistogram& latency = shard_latency[si];
        LatencyHistogram& recovery = shard_recovery[si];
        RetryHistogram& retries = shard_retries[si];
        PollRing& ring = shard_trace[si];
        obs::MetricCells* const cells =
            capture != nullptr ? &shard_cells[si] : nullptr;
        obs::TraceBuffer* const tbuf =
            capture != nullptr && capture->collect_trace ? &shard_tbuf[si]
                                                         : nullptr;
        // Logical Perfetto tracks: one "process" per FDMA group, one
        // "thread" per shard — functions of the topology, never of how
        // shards were scheduled onto OS threads.
        const auto pid = static_cast<std::uint32_t>(g + 1);
        const auto tid = static_cast<std::uint32_t>(si + 1);

        EventQueue queue;
        // Schedule every poll this shard owns: tag at TDMA slot s, round r
        // is queried at r*round + s*slot on its group's timeline. The event
        // payload packs (slot << 32 | round) so handlers recover both.
        for (std::size_t s = sh.begin; s < sh.end; ++s) {
          const std::uint32_t tag = group_tags_[g][s];
          for (std::size_t r = 0; r < cfg_.rounds; ++r) {
            queue.schedule(
                static_cast<double>(r) * round_us[g] +
                    static_cast<double>(s) * slot_us,
                EventType::kQuery, tag,
                (static_cast<std::uint64_t>(s) << 32) | r);
          }
        }

        // Shard-local per-tag accounting: written here, then either copied
        // into the global per-tag array (keep_per_tag) or folded into this
        // shard's ShardAgg block (streaming). Local slots also keep the hot
        // loop's writes dense instead of group-strided across the fleet.
        std::vector<TagStats> local(sh.end - sh.begin);
        // Payload generation time of each tag's currently-pending payload
        // (latency is measured from here to successful delivery; a failed
        // poll retries the same payload next round).
        std::vector<double> pending_since(sh.end - sh.begin, 0.0);
        std::vector<ArqProgress> progress(sh.end - sh.begin);
        for (ArqProgress& p : progress) {
          p.fallback =
              mac::RateFallbackController(cfg_.fallback, initial_waveform);
        }

        const auto record_trace = [&](double t_us, std::uint32_t tag,
                                      std::uint64_t round, PollOutcome out,
                                      mac::LinkWaveform wf, std::uint32_t ap,
                                      bool retx) {
          if (cfg_.keep_trace) {
            ring.push({t_us, tag, static_cast<std::uint32_t>(round), out,
                       static_cast<std::uint8_t>(wf), ap, retx},
                      cfg_.trace_capacity);
          }
          if (tbuf != nullptr) {
            // Outcomes that put energy on the air are spans (dur = attempt
            // airtime on the active rung); skipped/silent slots are
            // instants.
            obs::TraceEvent e;
            e.name = poll_outcome_name(out);
            e.cat = "poll";
            e.pid = pid;
            e.tid = tid;
            e.ts_us = static_cast<std::int64_t>(t_us);
            const bool on_air = out == PollOutcome::kDelivered ||
                                out == PollOutcome::kCollision ||
                                out == PollOutcome::kDecodeFailure;
            if (on_air) {
              e.phase = obs::TracePhase::kSpan;
              e.dur_us = static_cast<std::int64_t>(
                  attempt_airtime_us[static_cast<std::size_t>(wf)]);
            }
            e.arg_name = "round";
            e.arg = round;
            e.sarg_name = "waveform";
            e.sarg = mac::waveform_name(wf);
            tbuf->push(e);
            if (retx) tbuf->instant("arq.retx", "arq", pid, tid, e.ts_us);
          }
        };
        // A skipped or failed poll opens a disruption window; the next
        // delivered attempt closes it and records the recovery time.
        const auto mark_disrupted = [](ArqProgress& st, double t_us) {
          if (!st.disrupted) {
            st.disrupted = true;
            st.disrupted_since_us = t_us;
          }
        };
        // Advances ARQ + fallback state for one resolved attempt. Pure
        // per-tag fold: no RNG, no cross-tag state.
        const auto resolve_attempt = [&](TagStats& ts, ArqProgress& st,
                                         PollOutcome out, double t_us) {
          const bool delivered = out == PollOutcome::kDelivered;
          const mac::LinkWaveform prev_wf = st.fallback.current();
          // Only SNR-driven outcomes move the fallback ladder: a busy
          // channel (reservation denied) or an unheard query says nothing
          // about the reply waveform, and dropping the rate would only
          // lengthen the airtime it has to reserve.
          if (delivered) {
            st.fallback.on_success();
          } else if (out == PollOutcome::kCollision ||
                     out == PollOutcome::kDecodeFailure) {
            st.fallback.on_failure();
          }
          if (tbuf != nullptr && st.fallback.current() != prev_wf) {
            obs::TraceEvent e;
            e.name = delivered ? "rate.upshift" : "rate.downshift";
            e.cat = "rate";
            e.pid = pid;
            e.tid = tid;
            e.ts_us = static_cast<std::int64_t>(t_us);
            e.sarg_name = "waveform";
            e.sarg = mac::waveform_name(st.fallback.current());
            tbuf->push(e);
          }
          if (delivered) {
            st.fail_streak = 0;
            if (st.disrupted) {
              recovery.record(t_us - st.disrupted_since_us);
              st.disrupted = false;
            }
            if (!cfg_.enable_arq) {
              ++ts.messages_delivered;
              retries.record(1);
              st.in_flight = false;
              return;
            }
            ++st.frag;
            st.frag_attempts = 0;
            if (st.frag >= fragments_) {
              ++ts.messages_delivered;
              retries.record(st.msg_attempts);
              st.in_flight = false;
            }
            return;
          }
          mark_disrupted(st, t_us);
          if (!cfg_.enable_arq) {
            ++ts.messages_dropped;
            st.in_flight = false;
            return;
          }
          ++st.fail_streak;
          if (st.frag_attempts >= cfg_.arq.max_attempts ||
              st.retx_used >= cfg_.arq.retry_budget) {
            ++ts.messages_dropped;
            st.in_flight = false;
            return;
          }
          st.backoff_remaining = mac::backoff_slots(cfg_.arq, st.fail_streak);
        };

        while (!queue.empty()) {
          const Event ev = queue.pop();
          const std::uint32_t tag = ev.entity;
          const std::uint64_t round = ev.data & 0xFFFFFFFFULL;
          const auto slot =
              static_cast<std::size_t>((ev.data >> 32) & 0x7FFFFFFFULL);
          const std::size_t shard_slot = slot - sh.begin;
          TagStats& ts = local[shard_slot];
          ArqProgress& st = progress[shard_slot];
          const TagLink& link = links_[tag];

          if (ev.type == EventType::kQuery) {
            ++ts.queries;
            const mac::LinkWaveform wf = st.fallback.current();

            // Fault + policy gates, cheapest first. Skipped polls make no
            // RNG draws; every (tag, round, phase) substream stays
            // independent of the gates, so the digest contract holds.
            if (link.link_down) {
              ++ts.link_down_polls;
              mark_disrupted(st, ev.time_us);
              record_trace(ev.time_us, tag, round, PollOutcome::kLinkDown, wf,
                           link.ap, false);
              continue;
            }
            bool failover = false;
            std::uint32_t serving_ap = link.ap;
            if (timeline_.ap_down(link.ap, ev.time_us)) {
              if (link.has_failover &&
                  !timeline_.ap_down(link.failover_ap, ev.time_us)) {
                failover = true;
                serving_ap = link.failover_ap;
              } else {
                ++ts.outage_skips;
                mark_disrupted(st, ev.time_us);
                record_trace(ev.time_us, tag, round, PollOutcome::kApOutage,
                             wf, link.ap, false);
                continue;
              }
            }
            if (timeline_.tag_browned_out(tag, ev.time_us)) {
              ++ts.brownout_skips;
              mark_disrupted(st, ev.time_us);
              record_trace(ev.time_us, tag, round, PollOutcome::kBrownout, wf,
                           serving_ap, false);
              continue;
            }
            if (st.backoff_remaining > 0) {
              --st.backoff_remaining;
              ++ts.backoff_skips;
              record_trace(ev.time_us, tag, round, PollOutcome::kBackoff, wf,
                           serving_ap, false);
              continue;
            }

            // This poll is a real delivery attempt.
            if (!st.in_flight) {
              st.in_flight = true;
              st.frag = 0;
              st.frag_attempts = 0;
              st.msg_attempts = 0;
              st.retx_used = 0;
              ++ts.messages_offered;
            }
            const bool retx = cfg_.enable_arq && st.frag_attempts > 0;
            if (retx) {
              ++ts.retransmissions;
              ++st.retx_used;
            }
            ++st.frag_attempts;
            ++st.msg_attempts;
            if (failover) ++ts.failover_polls;
            if (st.fallback.degraded()) ++ts.fallback_polls;

            auto rng = entity_stream(cfg_.seed, tag,
                                     phase_counter(round, kQueryPhase));
            const Real miss = failover ? link.failover_downlink_miss_prob
                                       : link.downlink_miss_prob;
            if (rng.uniform() < miss) {
              ++ts.downlink_misses;
              record_trace(ev.time_us, tag, round, PollOutcome::kDownlinkMiss,
                           wf, serving_ap, retx);
              resolve_attempt(ts, st, PollOutcome::kDownlinkMiss, ev.time_us);
              continue;
            }
            // The addressed tag replies mid-way through the advertising
            // window that follows the query.
            queue.schedule(ev.time_us + query_us +
                               0.5 * cfg_.polling.advertising_interval_ms * 1e3,
                           EventType::kReply, tag,
                           ev.data | (failover ? kFailoverBit : 0));
            continue;
          }

          // kReply: reservation outcome, then budget-level decode.
          const bool failover = (ev.data & kFailoverBit) != 0;
          const std::uint32_t serving_ap =
              failover ? link.failover_ap : link.ap;
          const mac::LinkWaveform wf = st.fallback.current();
          const auto wi = static_cast<std::size_t>(wf);
          const bool retx = cfg_.enable_arq && st.frag_attempts > 1;
          auto rng =
              entity_stream(cfg_.seed, tag, phase_counter(round, kReplyPhase));
          ts.airtime_us += control_amortized_us;

          // Interference bursts raise the CCA busy probability; the
          // reservation closed form is cheap enough to re-solve live for
          // the affected slots only.
          const mac::ReservationOutcome* ocp = &oc;
          mac::ReservationOutcome fault_oc;
          const Real busy_boost =
              timeline_.any() ? timeline_.channel_busy_boost(g, ev.time_us)
                              : Real{0.0};
          if (busy_boost > 0.0) {
            mac::ReservationConfig rc;
            rc.scheme = cfg_.reservation;
            rc.channel_busy_probability = std::min(
                channels_[g].busy_probability + busy_boost, Real{0.99});
            rc.cts_detection_probability = cfg_.cts_detection_probability;
            fault_oc = mac::reservation_outcome(rc);
            ocp = &fault_oc;
          }

          const double u = rng.uniform();
          if (u >= ocp->p_clean + ocp->p_collision) {
            ++ts.reservation_denied;  // silent: reservation not granted
            record_trace(ev.time_us, tag, round,
                         PollOutcome::kReservationDenied, wf, serving_ap,
                         retx);
            resolve_attempt(ts, st, PollOutcome::kReservationDenied,
                            ev.time_us);
            continue;
          }
          ts.airtime_us += attempt_airtime_us[wi];
          ts.tx_energy_nj += attempt_energy_nj[g][wi];
          if (u >= ocp->p_clean) {
            ++ts.collisions;
            record_trace(ev.time_us, tag, round, PollOutcome::kCollision, wf,
                         serving_ap, retx);
            resolve_attempt(ts, st, PollOutcome::kCollision, ev.time_us);
            continue;
          }
          // Active noise-floor faults (bursts, slumps) force the PER back
          // through the closed form at the degraded SNR; clean slots use
          // the precomputed per-rung table.
          Real per = failover ? link.failover_waveform_per[wi]
                              : link.waveform_per[wi];
          const Real rise =
              timeline_.any()
                  ? timeline_.channel_noise_rise_db(g, ev.time_us)
                  : Real{0.0};
          if (rise > 0.0) {
            const Real snr = (failover ? link.failover_snr_db : link.snr_db) -
                             channels_[g].leakage_noise_rise_db - rise;
            per = waveform_per_at(wf, snr, wire_bytes_);
          }
          if (rng.uniform() < per) {
            ++ts.decode_failures;
            record_trace(ev.time_us, tag, round, PollOutcome::kDecodeFailure,
                         wf, serving_ap, retx);
            resolve_attempt(ts, st, PollOutcome::kDecodeFailure, ev.time_us);
            continue;
          }
          ++ts.replies;
          ts.payload_bits += cfg_.enable_arq ? frag_bits : payload_bits;
          record_trace(ev.time_us, tag, round, PollOutcome::kDelivered, wf,
                       serving_ap, retx);
          const double done_us = ev.time_us + attempt_airtime_us[wi];
          latency.record(done_us - pending_since[shard_slot]);
          if (cells != nullptr) {
            cells->observe(mid.latency, done_us - pending_since[shard_slot]);
          }
          pending_since[shard_slot] =
              static_cast<double>(round + 1) * round_us[g];
          resolve_attempt(ts, st, PollOutcome::kDelivered, done_us);
        }

        // Static per-tag link annotations + deterministic harvest model.
        for (std::size_t s = sh.begin; s < sh.end; ++s) {
          const std::uint32_t tag = group_tags_[g][s];
          TagStats& ts = local[s - sh.begin];
          const ArqProgress& st = progress[s - sh.begin];
          ts.tag_id = tag;
          ts.wifi_channel = links_[tag].wifi_channel;
          ts.helper = links_[tag].helper;
          ts.ap = links_[tag].ap;
          ts.snr_db =
              links_[tag].snr_db - channels_[g].leakage_noise_rise_db;
          ts.reply_per = links_[tag].reply_per;
          ts.rate_downshifts = st.fallback.downshifts();
          ts.rate_upshifts = st.fallback.upshifts();
          // The helper advertises every interval for the whole timeline and
          // illuminates all its tags — not just the one being polled — so
          // harvest time is independent of fleet size; the AP's queries add
          // the tag's own downlink illumination on top.
          const double adv_events =
              channels_[g].elapsed_us /
              (cfg_.polling.advertising_interval_ms * 1e3);
          ts.harvest_us = adv_events * 3.0 * kAdvPacketUs +
                          static_cast<double>(ts.queries) * query_us;
          // Metrics flush: counters derive from the TagStats this shard
          // just finished writing, so the hot loop pays nothing for them.
          if (cells != nullptr) {
            cells->add(mid.polls, ts.queries);
            cells->add(mid.replies, ts.replies);
            cells->add(mid.downlink_misses, ts.downlink_misses);
            cells->add(mid.reservation_denied, ts.reservation_denied);
            cells->add(mid.collisions, ts.collisions);
            cells->add(mid.decode_failures, ts.decode_failures);
            cells->add(mid.retries, ts.retransmissions);
            cells->add(mid.backoff, ts.backoff_skips);
            cells->add(mid.delivered, ts.messages_delivered);
            cells->add(mid.dropped, ts.messages_dropped);
            cells->add(mid.downshifts, ts.rate_downshifts);
            cells->add(mid.upshifts, ts.rate_upshifts);
            cells->add(mid.brownouts, ts.brownout_skips);
            cells->add(mid.outages, ts.outage_skips);
            cells->add(mid.failovers, ts.failover_polls);
            cells->add(mid.link_down, ts.link_down_polls);
          }
        }

        if (cfg_.keep_per_tag) {
          // Copy into the tag-indexed global array: the reduction below and
          // out.per_tag read the exact values the old global-array path
          // produced, so digests are bit-identical.
          for (std::size_t s = sh.begin; s < sh.end; ++s) {
            tag_stats[group_tags_[g][s]] = local[s - sh.begin];
          }
        } else {
          // Streaming: fold this shard's tags into its aggregate block in
          // slot order. elapsed/shift are per-group constants, so the fold
          // computes the same per-tag terms the reduction loop would.
          ShardAgg& agg = shard_agg[si];
          const double elapsed = channels_[g].elapsed_us;
          const Real shift_hz =
              itb::ble::wifi_channel_hz(cfg_.wifi_channels[g]) - ble_hz;
          for (const TagStats& ts : local) {
            agg.queries += ts.queries;
            agg.replies += ts.replies;
            agg.downlink_misses += ts.downlink_misses;
            agg.reservation_denied += ts.reservation_denied;
            agg.collisions += ts.collisions;
            agg.decode_failures += ts.decode_failures;
            agg.messages_offered += ts.messages_offered;
            agg.messages_delivered += ts.messages_delivered;
            agg.messages_dropped += ts.messages_dropped;
            agg.retransmissions += ts.retransmissions;
            agg.backoff_skips += ts.backoff_skips;
            agg.brownout_skips += ts.brownout_skips;
            agg.outage_skips += ts.outage_skips;
            agg.link_down_polls += ts.link_down_polls;
            agg.failover_polls += ts.failover_polls;
            agg.fallback_polls += ts.fallback_polls;
            agg.payload_bits += ts.payload_bits;
            agg.tx_energy_nj += ts.tx_energy_nj;
            agg.sum_tag_goodput +=
                mac::safe_goodput_kbps(ts.payload_bits, elapsed);
            const double airtime_duty =
                elapsed > 0.0 ? ts.airtime_us / elapsed : 0.0;
            const double harvest_duty =
                elapsed > 0.0 ? ts.harvest_us / elapsed : 0.0;
            agg.sum_airtime_duty += airtime_duty;
            agg.sum_harvest_duty += harvest_duty;
            agg.sum_power_uw += power.average_power_uw(
                cfg_.rate, std::abs(shift_hz), std::min(airtime_duty, 1.0));
          }
        }
      });

  // --- sequential, index-ordered reduction (thread-count invariant) --------
  static const std::size_t kZoneMerge = obs::prof_zone("sim.merge");
  const obs::ProfZone prof_merge(kZoneMerge);
  NetworkStats out;
  out.num_tags = n;
  out.num_channels = num_groups;
  out.channels = channels_;
  for (ChannelStats& ch : out.channels) {
    ch.replies = 0;
    ch.collisions = 0;
  }
  for (const LatencyHistogram& h : shard_latency) out.query_latency.merge(h);
  for (const LatencyHistogram& h : shard_recovery) out.recovery_time.merge(h);
  for (const RetryHistogram& h : shard_retries) out.retry_histogram.merge(h);
  if (cfg_.keep_trace) {
    std::uint64_t emitted = 0;
    for (const PollRing& r : shard_trace) {
      emitted += r.emitted;
      for (std::size_t i = 0; i < r.ring.size(); ++i) {
        out.trace.push_back(r.ring[(r.head + i) % r.ring.size()]);
      }
    }
    // Shard order is per-group slot order; re-sort into one global
    // timeline. (time, tag, round) is a total order over poll records.
    std::sort(out.trace.begin(), out.trace.end(),
              [](const PollRecord& a, const PollRecord& b) {
                if (a.time_us != b.time_us) return a.time_us < b.time_us;
                if (a.tag != b.tag) return a.tag < b.tag;
                return a.round < b.round;
              });
    // Per-shard rings bound memory during the run; this global trim makes
    // the kept window a pure function of the config (the same newest
    // trace_capacity records at any thread count).
    if (cfg_.trace_capacity > 0 && out.trace.size() > cfg_.trace_capacity) {
      out.trace.erase(out.trace.begin(),
                      out.trace.begin() +
                          static_cast<std::ptrdiff_t>(out.trace.size() -
                                                      cfg_.trace_capacity));
    }
    out.trace_dropped = emitted - out.trace.size();
  }

  double total_bits = 0.0;
  double sum_tag_goodput = 0.0;
  double sum_airtime_duty = 0.0;
  double sum_harvest_duty = 0.0;
  double sum_power_uw = 0.0;
  double total_energy_nj = 0.0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    out.elapsed_us = std::max(out.elapsed_us, channels_[g].elapsed_us);
  }
  if (cfg_.keep_per_tag) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      const double elapsed = channels_[g].elapsed_us;
      const Real shift_hz =
          itb::ble::wifi_channel_hz(cfg_.wifi_channels[g]) - ble_hz;
      for (const std::uint32_t t : group_tags_[g]) {
        const TagStats& ts = tag_stats[t];
        out.queries_sent += ts.queries;
        out.replies_received += ts.replies;
        out.downlink_misses += ts.downlink_misses;
        out.reservation_denied += ts.reservation_denied;
        out.collisions += ts.collisions;
        out.decode_failures += ts.decode_failures;
        out.messages_offered += ts.messages_offered;
        out.messages_delivered += ts.messages_delivered;
        out.messages_dropped += ts.messages_dropped;
        out.retransmissions += ts.retransmissions;
        out.backoff_skips += ts.backoff_skips;
        out.brownout_skips += ts.brownout_skips;
        out.outage_skips += ts.outage_skips;
        out.link_down_polls += ts.link_down_polls;
        out.failover_polls += ts.failover_polls;
        out.fallback_polls += ts.fallback_polls;
        out.channels[g].replies += ts.replies;
        out.channels[g].collisions += ts.collisions;
        total_bits += ts.payload_bits;
        total_energy_nj += ts.tx_energy_nj;
        sum_tag_goodput += mac::safe_goodput_kbps(ts.payload_bits, elapsed);
        const double airtime_duty =
            elapsed > 0.0 ? ts.airtime_us / elapsed : 0.0;
        const double harvest_duty =
            elapsed > 0.0 ? ts.harvest_us / elapsed : 0.0;
        sum_airtime_duty += airtime_duty;
        sum_harvest_duty += harvest_duty;
        sum_power_uw += power.average_power_uw(cfg_.rate, std::abs(shift_hz),
                                               std::min(airtime_duty, 1.0));
      }
    }
  } else {
    // Streaming merge: shard blocks in index order. The shard list is built
    // group-major (same order the per-tag loop above walks), and the
    // partition is fixed by shard_tags, so the merged totals are identical
    // at any thread count.
    for (std::size_t si = 0; si < shards.size(); ++si) {
      const ShardAgg& agg = shard_agg[si];
      out.queries_sent += agg.queries;
      out.replies_received += agg.replies;
      out.downlink_misses += agg.downlink_misses;
      out.reservation_denied += agg.reservation_denied;
      out.collisions += agg.collisions;
      out.decode_failures += agg.decode_failures;
      out.messages_offered += agg.messages_offered;
      out.messages_delivered += agg.messages_delivered;
      out.messages_dropped += agg.messages_dropped;
      out.retransmissions += agg.retransmissions;
      out.backoff_skips += agg.backoff_skips;
      out.brownout_skips += agg.brownout_skips;
      out.outage_skips += agg.outage_skips;
      out.link_down_polls += agg.link_down_polls;
      out.failover_polls += agg.failover_polls;
      out.fallback_polls += agg.fallback_polls;
      out.channels[shards[si].group].replies += agg.replies;
      out.channels[shards[si].group].collisions += agg.collisions;
      total_bits += agg.payload_bits;
      total_energy_nj += agg.tx_energy_nj;
      sum_tag_goodput += agg.sum_tag_goodput;
      sum_airtime_duty += agg.sum_airtime_duty;
      sum_harvest_duty += agg.sum_harvest_duty;
      sum_power_uw += agg.sum_power_uw;
    }
  }
  out.aggregate_goodput_kbps =
      mac::safe_goodput_kbps(total_bits, out.elapsed_us);
  const std::uint64_t completed = out.messages_delivered + out.messages_dropped;
  if (completed > 0) {
    out.delivery_ratio = static_cast<double>(out.messages_delivered) /
                         static_cast<double>(completed);
  }
  if (total_bits > 0.0) {
    out.energy_per_delivered_byte_nj = total_energy_nj / (total_bits / 8.0);
  }
  if (n > 0) {
    const auto dn = static_cast<double>(n);
    out.mean_tag_goodput_kbps = sum_tag_goodput / dn;
    out.mean_airtime_duty = sum_airtime_duty / dn;
    out.mean_harvest_duty = sum_harvest_duty / dn;
    out.mean_tag_power_uw = sum_power_uw / dn;
  }
  if (cfg_.keep_per_tag) out.per_tag = std::move(tag_stats);

  if (capture != nullptr) {
    if (capture->collect_trace) {
      for (std::size_t g = 0; g < num_groups; ++g) {
        capture->trace.set_process_name(
            static_cast<std::uint32_t>(g + 1),
            "wifi-ch" + std::to_string(cfg_.wifi_channels[g]));
      }
      for (std::size_t si = 0; si < shards.size(); ++si) {
        capture->trace.set_thread_name(
            static_cast<std::uint32_t>(shards[si].group + 1),
            static_cast<std::uint32_t>(si + 1),
            "shard " + std::to_string(si) + " slots[" +
                std::to_string(shards[si].begin) + "," +
                std::to_string(shards[si].end) + ")");
      }
      // Fault windows get their own process so an AP reboot or microwave
      // burst reads as a span directly above the polls it disrupts.
      if (!cfg_.faults.empty()) {
        const auto fault_pid = static_cast<std::uint32_t>(num_groups + 1);
        capture->trace.set_process_name(fault_pid, "faults");
        capture->trace.set_thread_name(fault_pid, 1, "timeline");
        for (const FaultEvent& fe : cfg_.faults.events) {
          obs::TraceEvent e;
          e.name = fault_kind_name(fe.kind);
          e.cat = "fault";
          e.phase = obs::TracePhase::kSpan;
          e.pid = fault_pid;
          e.tid = 1;
          e.ts_us = static_cast<std::int64_t>(fe.start_us);
          e.dur_us = static_cast<std::int64_t>(fe.duration_us);
          e.arg_name = "entity";
          e.arg = fe.entity;
          capture->trace.push(e);
        }
      }
      for (const obs::TraceBuffer& b : shard_tbuf) capture->trace.absorb(b);
      capture->trace.finalize();
    }
    capture->metrics = registry.merge(shard_cells);
    capture->metrics.append_counter("itb.sim.trace_records_dropped",
                                    out.trace_dropped);
    capture->metrics.append_counter("itb.trace.events_dropped",
                                    capture->trace.dropped());
    capture->metrics.append_gauge("itb.sim.elapsed_us", out.elapsed_us);
    capture->metrics.append_gauge("itb.sim.goodput_kbps",
                                  out.aggregate_goodput_kbps);
    capture->metrics.append_gauge("itb.sim.delivery_ratio",
                                  out.delivery_ratio);
  }
  return out;
}

std::vector<SpotCheckResult> NetworkCoordinator::spot_check_waveform(
    std::size_t links) const {
  std::vector<SpotCheckResult> out;
  const std::size_t n = placement_.tags.size();
  if (n == 0 || links == 0) return out;
  links = std::min(links, n);

  // Sample round-robin across the FDMA groups (then strided within each
  // group) so the cross-check always exercises every Wi-Fi channel's SSB
  // shift; a plain stride over tag ids would alias with the round-robin
  // channel assignment and could sample a single channel.
  const std::size_t num_groups = group_tags_.size();
  const std::size_t per_group = (links + num_groups - 1) / num_groups;
  for (std::size_t i = 0; i < links; ++i) {
    const std::size_t g = i % num_groups;
    const std::vector<std::uint32_t>& group = group_tags_[g];
    if (group.empty()) continue;
    const std::size_t inner_stride =
        std::max<std::size_t>(1, group.size() / per_group);
    const std::size_t j = std::min((i / num_groups) * inner_stride,
                                   group.size() - 1);
    const std::size_t t = group[j];
    const TagLink& link = links_[t];

    itb::core::UplinkScenario s;
    s.ble_tag_distance_m = link.helper_distance_m;
    s.tag_rx_distance_m = link.ap_distance_m;
    s.ble_tx_power_dbm = cfg_.ble_tx_power_dbm;
    s.ble_channel = cfg_.ble_channel;
    s.wifi_channel = link.wifi_channel;
    s.rate = cfg_.rate;
    s.tag_medium_loss_db = cfg_.tag_medium_loss_db;
    s.pathloss_exponent = cfg_.pathloss_exponent;
    s.rx_noise_figure_db = cfg_.rx_noise_figure_db;
    s.impairment_preset = cfg_.impairment_preset;
    s.seed = itb::core::trial_seed(cfg_.seed, t, 0xC0FFEE);

    const itb::core::InterscatterSystem sys(s);
    itb::phy::Bytes psdu(cfg_.payload_bytes);
    for (std::size_t b = 0; b < psdu.size(); ++b) {
      psdu[b] = static_cast<std::uint8_t>(b * 31 + 7 + t);
    }
    const auto wf = sys.simulate_frame(psdu);
    // Compare against the budget PER at the raw link SNR: the waveform path
    // has no cross-channel aggressors, so leakage is excluded on both sides.
    const double per =
        itb::channel::per_80211b(cfg_.rate, link.snr_db, cfg_.payload_bytes);

    SpotCheckResult r;
    r.tag_id = static_cast<std::uint32_t>(t);
    r.budget_per = per;
    r.budget_snr_db = link.snr_db;
    r.waveform_decoded = wf.payload_ok;
    if (per < 0.1) {
      r.consistent = wf.payload_ok;
    } else if (per > 0.9) {
      r.consistent = !wf.payload_ok;
    } else {
      r.consistent = true;  // coin-flip region: either outcome is plausible
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace itb::sim
