// Discrete-event engine core for the multi-tag network simulator.
//
// A monotonic min-heap of typed events with a *total* deterministic order:
// events are popped by (time, type, entity, seq), where seq is the creation
// order within the queue. Two events at the same instant therefore always
// pop in the same order, independent of heap internals, platform, or how
// the schedule was built up — the foundation of the subsystem's
// bit-identical-at-any-thread-count contract (see DESIGN.md "Network
// simulator determinism").
//
// RNG discipline: event handlers never share an RNG. Every stochastic
// decision draws from a counter-based substream keyed by the entity and a
// per-entity counter (entity_stream(), reusing the Monte-Carlo
// trial_seed() mix), so outcomes depend only on *which* decision is being
// made, never on global event interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "core/monte_carlo.h"
#include "dsp/rng.h"

namespace itb::sim {

enum class EventType : std::uint8_t {
  kQuery = 0,   ///< AP transmits a downlink query addressed to a tag
  kReply = 1,   ///< the addressed tag backscatters during the adv window
  kHarvest = 2, ///< energy-harvest accounting checkpoint
  kCustom = 3,  ///< engine-agnostic user event
};

struct Event {
  double time_us = 0.0;
  EventType type = EventType::kCustom;
  std::uint32_t entity = 0;  ///< tag / AP / helper index (engine-agnostic)
  std::uint64_t data = 0;    ///< opaque payload (e.g. polling round)
  std::uint64_t seq = 0;     ///< creation order; final tie-break key
};

/// Strict weak ordering: earliest time first, ties broken by
/// (type, entity, seq). Total because seq is unique per queue.
bool event_before(const Event& a, const Event& b);

class EventQueue {
 public:
  /// Schedules an event. time_us must not lie before the last popped event
  /// (the simulation clock only moves forward); violating this throws
  /// std::logic_error in all build modes — scheduling in the past is a bug
  /// that would silently break determinism if tolerated.
  void schedule(double time_us, EventType type, std::uint32_t entity,
                std::uint64_t data = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Pops the globally-next event. Must not be called on an empty queue
  /// (throws std::logic_error). Advances now_us().
  Event pop();

  /// Simulation clock: the timestamp of the last popped event.
  double now_us() const { return now_us_; }

 private:
  std::vector<Event> heap_;  ///< binary min-heap under event_before
  std::uint64_t next_seq_ = 0;
  double now_us_ = 0.0;
};

/// Deterministic per-(entity, decision) RNG substream. Thin wrapper over
/// core::trial_seed so the sim layer shares the DESIGN.md substream scheme
/// with the Monte-Carlo engine: the stream depends only on the sim seed and
/// the (entity, counter) coordinates, never on event interleaving.
inline itb::dsp::Xoshiro256 entity_stream(std::uint64_t sim_seed,
                                          std::uint32_t entity,
                                          std::uint64_t counter) {
  return itb::dsp::Xoshiro256(itb::core::trial_seed(sim_seed, entity, counter));
}

}  // namespace itb::sim
