// NetworkCoordinator: composes the repo's per-link primitives into a
// network-level simulation of a fleet of interscatter implants (paper §2.5
// scaled up: the paper coordinates "multiple" tags; the roadmap wants
// thousands).
//
// Coordination model:
//   FDMA — tags are partitioned into groups, one per configured Wi-Fi
//     channel; each group's replies land on its own 802.11b channel (the
//     tag's SSB shift selects the channel, paper §2.3.2). Groups run
//     concurrent, independent TDMA timelines.
//   TDMA — inside a group, the AP round-robin polls its tags over the
//     OFDM-AM downlink (mac/query_reply slot arithmetic); the addressed
//     tag replies during the next advertising window.
//   Reservation — each reply's collision/silence outcome follows the
//     closed-form mac::reservation_outcome() for the configured scheme.
//   Cross-channel leakage — single-sideband backscatter suppresses, but
//     does not eliminate, the mirror sideband (paper Fig. 6/12). A group's
//     mirror lands at 2*f_ble - f_wifi; where that falls inside another
//     group's channel, the victim sees a deterministic noise-floor rise
//     proportional to the aggressor's airtime occupancy, degrading its
//     reply SNR and raising its busy probability.
//
// Resilience (ISSUE 6): the coordinator optionally layers
//   Faults — a compiled sim::FaultTimeline gates every poll: AP outages
//     orphan tags (or divert them to a precomputed failover AP),
//     interference bursts raise the victim channel's noise floor and CCA
//     busy probability, brownouts power tags off, SNR slumps degrade every
//     reply. Fault gating is slot-atomic: the AP/brownout state sampled at
//     query time holds for the whole poll.
//   ARQ — mac/arq selective-repeat: a message fragments into CRC-framed
//     pieces, each fragment retries up to max_attempts with capped
//     exponential backoff (idled TDMA slots), bounded by a per-message
//     retransmission budget. Without ARQ every poll is a one-shot message.
//   Fallback — a per-tag mac::RateFallbackController walks the DSSS ladder
//     (optionally into ZigBee) on consecutive decode failures/collisions
//     and probes back up on success; attempt airtime, PER, and IC energy
//     all follow the active rung.
//
// Fidelity: every link outcome is drawn at *budget level* (channel/link.h
// closed forms), so 5000 tags simulate in seconds. spot_check_waveform()
// optionally re-simulates a deterministic sample of links through the full
// waveform pipeline (core::InterscatterSystem) and reports agreement — the
// network-level extension of the budget-vs-waveform cross-check in
// tests/full_loop_test.cpp.
//
// Determinism: see DESIGN.md "Network simulator determinism" and "Fault
// model and recovery determinism". Shards are a fixed partition of the tag
// list (independent of thread count), each shard runs its own EventQueue,
// every stochastic decision draws from an entity_stream() substream keyed
// by (tag, round), the fault timeline is immutable and queried as a pure
// function of (entity, time), ARQ/fallback state is a pure fold over one
// tag's own attempt outcomes, and the final reduction is a sequential
// index-ordered merge — so run() is bit-identical at any thread count
// (asserted in tests/sim_test.cpp and tests/resilience_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "backscatter/ic_power.h"
#include "channel/impairments.h"
#include "channel/link.h"
#include "mac/arq.h"
#include "mac/query_reply.h"
#include "mac/reservation.h"
#include "sim/faults.h"
#include "sim/stats.h"
#include "sim/topology.h"
#include "wifi/rates.h"

namespace itb::obs {
struct RunCapture;
}  // namespace itb::obs

namespace itb::sim {

struct NetworkConfig {
  TopologyConfig topology{};
  /// FDMA groups: one tag group per listed 2.4 GHz Wi-Fi channel.
  std::vector<unsigned> wifi_channels = {1, 6, 11};
  /// BLE advertising channel of the helpers driving the tags (the SSB shift
  /// for each group is wifi_channel_hz - ble_channel_hz).
  unsigned ble_channel = 38;
  itb::wifi::DsssRate rate = itb::wifi::DsssRate::k2Mbps;
  std::size_t payload_bytes = 30;
  /// TDMA polling rounds per group: each round polls every tag once.
  std::size_t rounds = 8;
  mac::PollingConfig polling{};
  mac::ReservationScheme reservation = mac::ReservationScheme::kDataAsRts;
  /// Ambient (non-backscatter) Wi-Fi load on every channel.
  Real ambient_busy_probability = 0.1;
  Real cts_detection_probability = 0.95;
  /// How much the tag's SSB suppresses the mirror sideband (paper measures
  /// ~20 dB; Fig. 6).
  Real ssb_sideband_suppression_db = 20.0;
  /// RF impairment preset applied to every link draw: each reply's SNR is
  /// degraded by the closed-form impairment penalty
  /// (channel::impaired_snr_db) before the PER mapping, so network-scale
  /// results inherit PHY-faithful degradation. spot_check_waveform() runs
  /// its sampled links through the same preset at waveform level.
  itb::channel::ImpairmentPreset impairment_preset =
      itb::channel::ImpairmentPreset::kNone;
  // --- link budget inputs (shared with channel/link.h) -----------------
  Real ble_tx_power_dbm = 10.0;
  Real pathloss_exponent = 2.2;
  Real rx_noise_figure_db = 6.0;
  Real tag_medium_loss_db = 3.0;  ///< implanted: one-way tissue loss
  /// Tag peak-detector sensitivity for the downlink (paper: -32 dBm).
  Real detector_sensitivity_dbm = -32.0;
  Real ap_tx_power_dbm = 15.0;
  backscatter::IcPowerConfig ic_power{};
  // --- resilience ------------------------------------------------------
  /// Injected fault events (empty = fault-free). Hand-built via the
  /// FaultSchedule builder or drawn with generate_fault_schedule().
  FaultSchedule faults{};
  /// Link-layer ARQ: fragmentation + selective-repeat retries. Off, every
  /// poll is a one-shot message (failed poll = dropped message).
  bool enable_arq = false;
  mac::ArqConfig arq{};
  /// Graceful-degradation ladder (enabled inside FallbackConfig).
  mac::FallbackConfig fallback{};
  /// Reassign tags of a downed AP to their precomputed next-nearest live
  /// AP instead of skipping their polls.
  bool ap_failover = false;
  /// Collect a per-poll PollRecord trace (golden fault-timeline tests,
  /// demos). Costs memory; excluded from digest().
  bool keep_trace = false;
  /// Upper bound on the kept PollRecord trace (0 = unbounded). When the
  /// run emits more records, the *oldest* are dropped and counted in
  /// NetworkStats::trace_dropped — a long fault night degrades to "the
  /// most recent window" instead of unbounded memory. Never affects
  /// digest().
  std::size_t trace_capacity = 0;
  // --- execution -------------------------------------------------------
  std::uint64_t seed = 1;
  /// Worker threads for the shard fan-out; 0 = all hardware threads.
  /// Never affects results, only wall time.
  std::size_t num_threads = 1;
  /// Tags per shard. Part of the *result identity* (fixed partition), so it
  /// is a config knob and never derived from num_threads.
  std::size_t shard_tags = 256;
  bool keep_per_tag = true;
};

/// Precomputed per-tag link state (pure function of config + topology).
struct TagLink {
  std::uint32_t helper = 0;  ///< nearest BLE helper
  std::uint32_t ap = 0;      ///< nearest AP (receives this group's replies)
  unsigned wifi_channel = 0;
  Real helper_distance_m = 0.0;
  Real ap_distance_m = 0.0;
  Real reply_rssi_dbm = 0.0;  ///< budget-level reply RSSI at the AP
  Real snr_db = 0.0;          ///< reply SNR before leakage noise rise
  Real downlink_rssi_dbm = 0.0;
  Real downlink_miss_prob = 0.0;
  Real reply_per = 0.0;       ///< PER at the leakage-degraded SNR
  /// Budget declared the link dead (channel::backscatter_rssi guard):
  /// polls resolve to PollOutcome::kLinkDown without drawing.
  bool link_down = false;
  /// PER per fallback rung at the leakage-degraded SNR and the effective
  /// wire size (ARQ fragment framing included when enabled). Indexed by
  /// mac::LinkWaveform; [waveform_for_rate(cfg.rate)] is the rung polls
  /// start at.
  std::array<Real, mac::kNumLinkWaveforms> waveform_per{};
  // --- AP failover (next-nearest AP, used when the primary is down) ----
  bool has_failover = false;
  std::uint32_t failover_ap = 0;
  Real failover_snr_db = itb::channel::kLinkDownDb;
  Real failover_downlink_miss_prob = 1.0;
  std::array<Real, mac::kNumLinkWaveforms> failover_waveform_per{};
};

/// One sampled link re-run at waveform level next to its budget prediction.
struct SpotCheckResult {
  std::uint32_t tag_id = 0;
  double budget_per = 0.0;
  double budget_snr_db = 0.0;
  bool waveform_decoded = false;
  /// Budget and waveform agree: a link the budget calls near-certain
  /// (PER < 0.1) decoded, one it calls near-dead (PER > 0.9) did not;
  /// in-between links are accepted either way.
  bool consistent = false;
};

class NetworkCoordinator {
 public:
  explicit NetworkCoordinator(const NetworkConfig& cfg);

  /// Runs the full FDMA x TDMA simulation. Bit-identical for a fixed config
  /// at any num_threads.
  ///
  /// `capture` (optional) attaches the obs layer: sim-time trace events
  /// and a metrics snapshot, both collected per shard and merged in
  /// shard-index order, so they inherit the same thread-count-invariance
  /// as the stats themselves (tests/obs_test.cpp). Null = no observation
  /// work beyond one branch per hook.
  NetworkStats run(obs::RunCapture* capture = nullptr) const;

  /// Re-simulates `links` deterministically-sampled tag links through the
  /// waveform pipeline (core::InterscatterSystem) and compares the decode
  /// outcome against the budget-level PER the network simulation used.
  std::vector<SpotCheckResult> spot_check_waveform(std::size_t links) const;

  // Introspection (tests, benches, examples).
  const NetworkConfig& config() const { return cfg_; }
  const Placement& placement() const { return placement_; }
  const std::vector<TagLink>& links() const { return links_; }
  const std::vector<ChannelStats>& channel_plan() const { return channels_; }
  const FaultTimeline& fault_timeline() const { return timeline_; }
  /// Bytes each attempt puts on the air: payload_bytes plus the ARQ
  /// fragment framing when ARQ splits/frames the message.
  std::size_t wire_bytes() const { return wire_bytes_; }
  /// Fragments per message (1 without ARQ or fragmentation).
  std::size_t fragments_per_message() const { return fragments_; }

 private:
  NetworkConfig cfg_;
  Placement placement_;
  std::vector<TagLink> links_;          ///< indexed by tag id
  std::vector<ChannelStats> channels_;  ///< per FDMA group (plan-time fields)
  /// Tag ids grouped by FDMA channel, each group in ascending id order;
  /// a tag's TDMA slot is its position in its group.
  std::vector<std::vector<std::uint32_t>> group_tags_;
  FaultTimeline timeline_;  ///< compiled faults; immutable during run()
  std::size_t wire_bytes_ = 0;
  std::size_t fragments_ = 1;
};

}  // namespace itb::sim
