#include "sim/faults.h"

#include <algorithm>
#include <cmath>

#include "sim/event_queue.h"

namespace itb::sim {

namespace {

/// Substream salts per fault class, XORed into the schedule seed so the
/// same entity index never shares a stream across classes.
constexpr std::uint64_t kApSalt = 0xA9'0000'0001ULL;
constexpr std::uint64_t kChannelSalt = 0xA9'0000'0002ULL;
constexpr std::uint64_t kTagSalt = 0xA9'0000'0003ULL;
constexpr std::uint64_t kSlumpSalt = 0xA9'0000'0004ULL;

/// Deterministic event count for an expected value `rate`: the integer
/// part always happens, the fractional part is one Bernoulli draw.
std::size_t draw_count(itb::dsp::Xoshiro256& rng, double rate) {
  if (rate <= 0.0) return 0;
  const double whole = std::floor(rate);
  std::size_t n = static_cast<std::size_t>(whole);
  if (rng.uniform() < rate - whole) ++n;
  return n;
}

double draw_exponential_us(itb::dsp::Xoshiro256& rng, double mean_us) {
  // Inverse CDF with the u=0 edge nudged away from log(0).
  const double u = std::max(rng.uniform(), 1e-12);
  return -mean_us * std::log(u);
}

}  // namespace

FaultSchedule& FaultSchedule::ap_outage(std::uint32_t ap, double start_us,
                                        double duration_us) {
  events.push_back({FaultKind::kApOutage, ap, start_us, duration_us, 0.0});
  return *this;
}

FaultSchedule& FaultSchedule::interference(unsigned wifi_channel,
                                           double start_us, double duration_us,
                                           Real noise_rise_db) {
  events.push_back({FaultKind::kInterference, wifi_channel, start_us,
                    duration_us, noise_rise_db});
  return *this;
}

FaultSchedule& FaultSchedule::brownout(std::uint32_t tag, double start_us,
                                       double duration_us) {
  events.push_back({FaultKind::kBrownout, tag, start_us, duration_us, 0.0});
  return *this;
}

FaultSchedule& FaultSchedule::snr_slump(double start_us, double duration_us,
                                        Real depth_db) {
  events.push_back(
      {FaultKind::kSnrSlump, 0, start_us, duration_us, depth_db});
  return *this;
}

FaultSchedule generate_fault_schedule(const FaultProfile& profile,
                                      std::size_t num_aps,
                                      const std::vector<unsigned>& wifi_channels,
                                      std::size_t num_tags,
                                      std::uint64_t seed) {
  FaultSchedule out;
  if (profile.horizon_us <= 0.0) return out;

  const auto draw_events = [&](std::uint64_t salt, std::uint32_t entity,
                               double rate, double mean_us, auto&& emit) {
    auto rng = entity_stream(seed ^ salt, entity, 0);
    const std::size_t n = draw_count(rng, rate);
    for (std::size_t k = 0; k < n; ++k) {
      const double start = rng.uniform() * profile.horizon_us;
      const double dur = draw_exponential_us(rng, mean_us);
      emit(start, dur);
    }
  };

  for (std::uint32_t ap = 0; ap < num_aps; ++ap) {
    draw_events(kApSalt, ap, profile.outages_per_ap, profile.outage_mean_us,
                [&](double s, double d) { out.ap_outage(ap, s, d); });
  }
  for (std::size_t g = 0; g < wifi_channels.size(); ++g) {
    draw_events(kChannelSalt, static_cast<std::uint32_t>(g),
                profile.bursts_per_channel, profile.burst_mean_us,
                [&](double s, double d) {
                  out.interference(wifi_channels[g], s, d,
                                   profile.burst_rise_db);
                });
  }
  for (std::uint32_t t = 0; t < num_tags; ++t) {
    draw_events(kTagSalt, t, profile.brownouts_per_tag,
                profile.brownout_mean_us,
                [&](double s, double d) { out.brownout(t, s, d); });
  }
  draw_events(kSlumpSalt, 0, profile.snr_slumps, profile.slump_mean_us,
              [&](double s, double d) {
                out.snr_slump(s, d, profile.slump_depth_db);
              });
  return out;
}

FaultTimeline::FaultTimeline(const FaultSchedule& schedule, std::size_t num_aps,
                             const std::vector<unsigned>& wifi_channels,
                             std::size_t num_tags) {
  ap_.assign(num_aps, {});
  channel_.assign(wifi_channels.size(), {});
  tag_.assign(num_tags, {});

  for (const FaultEvent& ev : schedule.events) {
    if (!(ev.duration_us > 0.0)) continue;
    const Interval iv{ev.start_us, ev.end_us(), ev.magnitude_db};
    switch (ev.kind) {
      case FaultKind::kApOutage:
        if (ev.entity < ap_.size()) {
          ap_[ev.entity].push_back(iv);
          any_ = true;
        }
        break;
      case FaultKind::kInterference:
        for (std::size_t g = 0; g < wifi_channels.size(); ++g) {
          if (wifi_channels[g] == ev.entity) {
            channel_[g].push_back(iv);
            any_ = true;
          }
        }
        break;
      case FaultKind::kBrownout:
        if (ev.entity < tag_.size()) {
          tag_[ev.entity].push_back(iv);
          any_ = true;
        }
        break;
      case FaultKind::kSnrSlump:
        slumps_.push_back(iv);
        any_ = true;
        break;
    }
  }

  const auto by_start = [](const Interval& a, const Interval& b) {
    return a.start_us < b.start_us;
  };
  for (auto& v : ap_) std::sort(v.begin(), v.end(), by_start);
  for (auto& v : channel_) std::sort(v.begin(), v.end(), by_start);
  for (auto& v : tag_) std::sort(v.begin(), v.end(), by_start);
  std::sort(slumps_.begin(), slumps_.end(), by_start);
}

bool FaultTimeline::active(const std::vector<Interval>& v, double t_us) {
  for (const Interval& iv : v) {
    if (iv.start_us > t_us) break;  // sorted by start
    if (t_us < iv.end_us) return true;
  }
  return false;
}

Real FaultTimeline::active_db(const std::vector<Interval>& v, double t_us) {
  Real db = 0.0;
  for (const Interval& iv : v) {
    if (iv.start_us > t_us) break;
    if (t_us < iv.end_us) db += iv.magnitude_db;
  }
  return db;
}

bool FaultTimeline::ap_down(std::uint32_t ap, double t_us) const {
  if (!any_ || ap >= ap_.size()) return false;
  return active(ap_[ap], t_us);
}

bool FaultTimeline::tag_browned_out(std::uint32_t tag, double t_us) const {
  if (!any_ || tag >= tag_.size()) return false;
  return active(tag_[tag], t_us);
}

Real FaultTimeline::channel_noise_rise_db(std::size_t group,
                                          double t_us) const {
  if (!any_) return 0.0;
  Real rise = active_db(slumps_, t_us);
  if (group < channel_.size()) rise += active_db(channel_[group], t_us);
  return rise;
}

Real FaultTimeline::channel_busy_boost(std::size_t group, double t_us) const {
  if (!any_ || group >= channel_.size()) return 0.0;
  const Real rise = active_db(channel_[group], t_us);
  if (rise <= 0.0) return 0.0;
  return 1.0 - std::exp(-rise / 10.0);
}

}  // namespace itb::sim
