// Pluggable node-placement generators for fleets of implanted tags, BLE
// helpers, and Wi-Fi access points.
//
// Three generators cover the evaluation scenarios:
//   kGrid        — deterministic lattice (regression-friendly, no RNG);
//   kUniformDisk — tags uniform in a disk (classic dense-deployment model);
//   kHospitalWard— rooms along a double-loaded corridor, beds per room,
//                  tags scattered around beds, one helper per room, APs
//                  spaced along the corridor (the paper's implant use case
//                  scaled to a ward).
// All randomized placement draws from a single Xoshiro256 seeded by
// TopologyConfig::seed, so a topology is a pure function of its config.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace itb::sim {

using itb::dsp::Real;

struct Vec2 {
  Real x = 0.0;
  Real y = 0.0;
};

Real distance_m(const Vec2& a, const Vec2& b);

/// Index of the node in `nodes` closest to `p` (lowest index wins ties).
/// Throws std::invalid_argument on an empty node set. O(nodes) scan — the
/// reference semantics; bulk callers use sim::SpatialHashGrid, which is
/// bit-identical to this scan including tie-breaks.
std::size_t nearest_index(const std::vector<Vec2>& nodes, const Vec2& p);

enum class TopologyKind {
  kGrid,
  kUniformDisk,
  kHospitalWard,
};

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kGrid;
  std::size_t num_tags = 16;
  std::size_t num_helpers = 4;  ///< BLE advertisers driving the tags
  std::size_t num_aps = 3;      ///< Wi-Fi access points receiving replies
  /// Grid side length / disk radius / corridor length, meters.
  Real extent_m = 20.0;
  // --- hospital-ward parameters ---------------------------------------
  std::size_t beds_per_room = 4;
  Real room_pitch_m = 6.0;   ///< spacing of rooms along the corridor
  Real room_depth_m = 5.0;   ///< rooms sit this far off the corridor axis
  Real bed_scatter_m = 0.5;  ///< tag scatter radius around its bed
  std::uint64_t seed = 1;
};

struct Placement {
  std::vector<Vec2> tags;
  std::vector<Vec2> helpers;
  std::vector<Vec2> aps;
};

/// Generates the placement for a config. Pure function of cfg (same config
/// -> bit-identical placement). num_tags/num_helpers/num_aps of zero are
/// allowed and produce empty vectors.
Placement generate_topology(const TopologyConfig& cfg);

}  // namespace itb::sim
