// Deterministic spatial-hash grid for nearest-node queries over a fixed
// point set (BLE helpers, Wi-Fi APs).
//
// The topology build loop used to answer "which helper/AP is nearest to
// this tag?" with a brute-force O(nodes) scan per tag, which made topology
// construction O(tags x nodes) — superlinear for the hospital ward, where
// helpers and APs both grow with the fleet (43 ms at 5k tags, hours at 1M).
// This grid answers the same query in O(1) expected time.
//
// Determinism contract: nearest() is *bit-identical* to the brute-force
// nearest_index() scan, including tie-breaks.
//   - Candidate distances are computed with the same distance_m() call the
//     brute force uses, so the compared values are the same doubles.
//   - Within a cell, node indices are stored ascending (counting sort,
//     stable in index order), and across cells the running best is only
//     replaced on a strictly smaller distance or an equal distance with a
//     strictly smaller index — the lexicographic (distance, index) minimum,
//     which is exactly what "strict < scan in index order" returns.
//   - Ring expansion stops only once no unexamined cell can hold a node at
//     distance <= the current best (<=, not <: a tie at the same distance
//     but lower index could still win), so no tie candidate is ever pruned.
// The grid geometry (origin, cell size, cell counts) is a pure function of
// the node positions, never of thread count or query order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/topology.h"

namespace itb::sim {

class SpatialHashGrid {
 public:
  /// Returned by nearest() when no candidate exists (empty grid, or a
  /// one-node grid queried with that node excluded).
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Builds the grid over a snapshot of `nodes`. The cell size is fixed at
  /// build time from the node density (~one node per cell on average), so
  /// query cost stays O(1) expected regardless of fleet size.
  explicit SpatialHashGrid(std::vector<Vec2> nodes);

  /// Index of the node nearest to `p`, lowest index on distance ties —
  /// bit-identical to the brute-force nearest_index() scan. `exclude`
  /// skips one node index (next-nearest queries, e.g. AP failover).
  std::size_t nearest(const Vec2& p, std::size_t exclude = npos) const;

  std::size_t size() const { return nodes_.size(); }
  const std::vector<Vec2>& nodes() const { return nodes_; }
  Real cell_size_m() const { return cell_; }

 private:
  std::size_t cell_of(const Vec2& p) const;

  std::vector<Vec2> nodes_;
  Real min_x_ = 0.0;
  Real min_y_ = 0.0;
  Real cell_ = 1.0;  ///< cell edge length, meters
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  /// CSR layout: cell c holds node indices order_[start_[c] .. start_[c+1]),
  /// ascending within each cell.
  std::vector<std::uint32_t> start_;
  std::vector<std::uint32_t> order_;
};

}  // namespace itb::sim
