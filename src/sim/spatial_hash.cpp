#include "sim/spatial_hash.h"

#include <algorithm>
#include <cmath>

namespace itb::sim {

namespace {

/// Per-axis cell-count cap: bounds the start_ offset table at ~2^30 cells
/// in the worst case while keeping ~1 node/cell for every fleet size the
/// sim targets (cells simply grow past the cap).
constexpr std::size_t kMaxCellsPerAxis = std::size_t{1} << 15;

}  // namespace

SpatialHashGrid::SpatialHashGrid(std::vector<Vec2> nodes)
    : nodes_(std::move(nodes)) {
  const std::size_t n = nodes_.size();
  if (n == 0) {
    start_.assign(2, 0);
    return;
  }

  Real max_x = nodes_[0].x;
  Real max_y = nodes_[0].y;
  min_x_ = nodes_[0].x;
  min_y_ = nodes_[0].y;
  for (const Vec2& v : nodes_) {
    min_x_ = std::min(min_x_, v.x);
    min_y_ = std::min(min_y_, v.y);
    max_x = std::max(max_x, v.x);
    max_y = std::max(max_y, v.y);
  }
  const Real w = max_x - min_x_;
  const Real h = max_y - min_y_;

  // Fixed cell size from node density: ~one node per cell for a 2-D
  // spread; collinear layouts (APs on the corridor midline) degenerate to
  // an even 1-D split. Cells are square so the ring lower bound below is a
  // single multiply.
  const auto dn = static_cast<Real>(n);
  Real cell = (w > 0.0 && h > 0.0) ? std::sqrt(w * h / dn)
                                   : std::max(w, h) / dn;
  if (!(cell > 0.0)) cell = 1.0;  // all nodes coincident
  // Inflating the cell instead of capping nx_/ny_ directly keeps the
  // node-to-cell map purely geometric: a node's cell index can never be
  // clamped out of its true cell, which the ring lower bound relies on.
  // The offset table stays O(n + kMaxCellsPerAxis) entries either way.
  const auto max_dim = static_cast<Real>(kMaxCellsPerAxis);
  cell = std::max({cell, w / max_dim, h / max_dim});
  cell_ = cell;
  nx_ = static_cast<std::size_t>(w / cell_) + 1;
  ny_ = static_cast<std::size_t>(h / cell_) + 1;

  // Counting sort into CSR cell lists; the sort is stable in node index, so
  // every cell's list is ascending — the order the tie-break relies on.
  start_.assign(nx_ * ny_ + 1, 0);
  for (const Vec2& v : nodes_) ++start_[cell_of(v) + 1];
  for (std::size_t c = 1; c < start_.size(); ++c) start_[c] += start_[c - 1];
  order_.resize(n);
  std::vector<std::uint32_t> cursor(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    order_[cursor[cell_of(nodes_[i])]++] = static_cast<std::uint32_t>(i);
  }
}

std::size_t SpatialHashGrid::cell_of(const Vec2& p) const {
  const auto cx = std::min(
      static_cast<std::size_t>(std::max(Real{0.0}, (p.x - min_x_) / cell_)),
      nx_ - 1);
  const auto cy = std::min(
      static_cast<std::size_t>(std::max(Real{0.0}, (p.y - min_y_) / cell_)),
      ny_ - 1);
  return cy * nx_ + cx;
}

std::size_t SpatialHashGrid::nearest(const Vec2& p, std::size_t exclude) const {
  const std::size_t n = nodes_.size();
  if (n == 0) return npos;

  std::size_t best = npos;
  Real best_d = std::numeric_limits<Real>::infinity();
  const auto scan_cell = [&](std::ptrdiff_t cx, std::ptrdiff_t cy) {
    if (cx < 0 || cy < 0 || cx >= static_cast<std::ptrdiff_t>(nx_) ||
        cy >= static_cast<std::ptrdiff_t>(ny_)) {
      return;
    }
    const std::size_t c = static_cast<std::size_t>(cy) * nx_ +
                          static_cast<std::size_t>(cx);
    for (std::uint32_t k = start_[c]; k < start_[c + 1]; ++k) {
      const std::size_t idx = order_[k];
      if (idx == exclude) continue;
      // Same distance_m() the brute-force scan computes, so ordering (and
      // therefore the returned index) is decided on identical doubles.
      const Real d = distance_m(nodes_[idx], p);
      if (d < best_d || (d == best_d && idx < best)) {
        best_d = d;
        best = idx;
      }
    }
  };

  // Virtual (possibly out-of-range) cell containing p. Kept unclamped so
  // the ring lower bound holds for query points outside the node bounding
  // box: any node in a cell at Chebyshev cell-distance k from p's own cell
  // is at least (k-1)*cell away.
  const auto vcx =
      static_cast<std::ptrdiff_t>(std::floor((p.x - min_x_) / cell_));
  const auto vcy =
      static_cast<std::ptrdiff_t>(std::floor((p.y - min_y_) / cell_));
  // Beyond this ring every grid cell has been visited.
  const std::ptrdiff_t reach_x =
      std::max(std::abs(vcx), std::abs(vcx - (static_cast<std::ptrdiff_t>(nx_) - 1)));
  const std::ptrdiff_t reach_y =
      std::max(std::abs(vcy), std::abs(vcy - (static_cast<std::ptrdiff_t>(ny_) - 1)));
  const std::ptrdiff_t max_ring = std::max(reach_x, reach_y);

  for (std::ptrdiff_t k = 0; k <= max_ring; ++k) {
    if (k == 0) {
      scan_cell(vcx, vcy);
    } else {
      for (std::ptrdiff_t dx = -k; dx <= k; ++dx) {
        scan_cell(vcx + dx, vcy - k);  // top edge
        scan_cell(vcx + dx, vcy + k);  // bottom edge
      }
      for (std::ptrdiff_t dy = -k + 1; dy <= k - 1; ++dy) {
        scan_cell(vcx - k, vcy + dy);  // left edge
        scan_cell(vcx + k, vcy + dy);  // right edge
      }
    }
    // Ring k+1 cannot hold anything nearer than k*cell. Stop only on a
    // strict bound violation: a node at exactly best_d but a lower index
    // could still be out there, and ties must resolve to the lowest index
    // to stay bit-identical with the brute-force scan.
    if (best != npos && static_cast<Real>(k) * cell_ > best_d) break;
  }
  return best;
}

}  // namespace itb::sim
