// 802.15.4 PHY framing: preamble (4 zero bytes), SFD (0xA7), PHR (length),
// PSDU with CRC-16 FCS; plus TX/RX wrappers over the O-QPSK PHY.
#pragma once

#include <optional>

#include "zigbee/oqpsk.h"

namespace itb::zigbee {

inline constexpr std::uint8_t kSfd = 0xA7;
inline constexpr std::size_t kMaxPsduBytes = 127;

/// Serializes PPDU bytes (preamble + SFD + PHR + PSDU-with-FCS).
Bytes build_ppdu(const Bytes& mac_payload);

/// Byte-level PPDU parser: scans a decoded byte stream for preamble + SFD,
/// validates the PHR length field against the remaining buffer, and checks
/// the FCS. Shared by the waveform receiver and the robustness/fuzz tests —
/// must reject any malformed input cleanly (nullopt), never over-read.
struct ParsedPpdu {
  Bytes payload;  ///< PSDU minus FCS
  bool fcs_ok = false;
  std::size_t sfd_byte_index = 0;  ///< index of the SFD byte in `stream`
};
std::optional<ParsedPpdu> parse_ppdu(const Bytes& stream);

/// Full transmitter: payload bytes -> complex baseband.
struct ZigbeeTxResult {
  CVec baseband;
  Bytes ppdu;
  double duration_us = 0.0;
};
ZigbeeTxResult zigbee_transmit(const Bytes& mac_payload,
                               const OqpskConfig& cfg = {});

/// Receiver: preamble/SFD acquisition, PHR decode, FCS verification.
struct ZigbeeRxResult {
  Bytes payload;       ///< PSDU minus FCS
  bool fcs_ok = false;
  itb::dsp::Real rssi_dbm = 0.0;
  std::size_t sfd_symbol_index = 0;
};
std::optional<ZigbeeRxResult> zigbee_receive(const CVec& samples,
                                             const OqpskConfig& cfg = {});

}  // namespace itb::zigbee
