// 802.15.4 2.4 GHz O-QPSK DSSS PHY (the "ZigBee" PHY the paper targets in
// §4.5): 250 kbps, 4-bit symbols spread to 32-chip PN sequences at 2 Mchip/s,
// half-sine-shaped offset QPSK.
#pragma once

#include <array>
#include <cstdint>

#include "dsp/types.h"
#include "phycommon/bits.h"

namespace itb::zigbee {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;
using itb::phy::Bytes;

inline constexpr std::size_t kChipsPerSymbol = 32;
inline constexpr Real kChipRateHz = 2e6;
inline constexpr Real kSymbolRateHz = 62.5e3;  // 2 Mchip/s / 32
inline constexpr double kBitsPerSymbol = 4.0;  // 250 kbps

/// Chip sequence (32 chips, chip 0 first) for data symbol 0..15
/// (IEEE 802.15.4-2011 Table 73). Symbols 8..15 are the conjugate-rotated
/// variants of 0..7.
const std::array<std::uint32_t, 16>& chip_table();

/// Expands a symbol (0..15) into 32 chips (0/1 values).
Bits symbol_chips(unsigned symbol);

/// O-QPSK modulator: even chips on I, odd chips on Q, half-sine pulse
/// shaping, Q delayed by half a chip period.
struct OqpskConfig {
  std::size_t samples_per_chip = 4;  ///< sample rate = 2 MHz * spc
  Real sample_rate_hz() const {
    return kChipRateHz * static_cast<Real>(samples_per_chip);
  }
};

class OqpskModulator {
 public:
  explicit OqpskModulator(const OqpskConfig& cfg = {});

  /// Modulates a chip stream (multiple of 2 chips) to complex baseband.
  CVec modulate_chips(const Bits& chips) const;

  /// Modulates bytes: each byte = low nibble symbol first.
  CVec modulate_bytes(const Bytes& bytes) const;

  const OqpskConfig& config() const { return cfg_; }

 private:
  OqpskConfig cfg_;
  itb::dsp::RVec pulse_;
};

/// Chip-correlation demodulator: recovers symbols by correlating received
/// chips against the 16 PN sequences (soft chip values, hard decisions).
class OqpskDemodulator {
 public:
  explicit OqpskDemodulator(const OqpskConfig& cfg = {});

  /// Demodulates baseband to hard chip decisions. `offset_samples` points at
  /// the first sample of chip 0.
  Bits demodulate_chips(const CVec& samples, std::size_t offset_samples = 0) const;

  /// Maps 32-chip blocks to the best-matching symbols (0..15) and packs
  /// nibbles into bytes (low nibble first).
  Bytes chips_to_bytes(const Bits& chips) const;

  /// Complex chip samples at the branch pulse peaks (I chips on the real
  /// axis, Q chips on the imaginary axis when on-channel). A carrier phase
  /// or frequency offset rotates these samples instead of destroying them,
  /// which is what the noncoherent detector below exploits.
  CVec soft_chips(const CVec& samples, std::size_t offset_samples = 0) const;

  /// Symbol detection over soft chips: correlates each 32-chip symbol
  /// against the 16 complex PN patterns in sub-blocks of `block_chips`
  /// chips, combining adjacent blocks differentially (DPDI). Invariant to a
  /// common phase rotation and tolerant of CFO up to ~a quarter turn per
  /// sub-block step (~+-100 kHz at the default block of 4 chips = 2 us) —
  /// the low-power-tag regime where the hard-decision path loses every
  /// chip — while still penalizing phase discontinuities from corrupted
  /// chips.
  Bytes soft_chips_to_bytes(const CVec& soft, std::size_t block_chips = 4) const;

  /// Minimum chip-pattern Hamming distance of the last chips_to_bytes call's
  /// worst symbol (diagnostic for link quality / LQI modeling).
  std::size_t last_worst_distance() const { return last_worst_distance_; }

 private:
  OqpskConfig cfg_;
  mutable std::size_t last_worst_distance_ = 0;
};

}  // namespace itb::zigbee
