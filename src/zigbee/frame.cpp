#include "zigbee/frame.h"

#include <cassert>

#include "dsp/units.h"
#include "phycommon/crc.h"

namespace itb::zigbee {

Bytes build_ppdu(const Bytes& mac_payload) {
  assert(mac_payload.size() + 2 <= kMaxPsduBytes);
  Bytes out;
  out.insert(out.end(), 4, 0x00);  // preamble
  out.push_back(kSfd);
  out.push_back(static_cast<std::uint8_t>(mac_payload.size() + 2));  // PHR
  out.insert(out.end(), mac_payload.begin(), mac_payload.end());
  const std::uint16_t fcs = itb::phy::crc16_802154(mac_payload);
  out.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>(fcs >> 8));
  return out;
}

ZigbeeTxResult zigbee_transmit(const Bytes& mac_payload, const OqpskConfig& cfg) {
  ZigbeeTxResult out;
  out.ppdu = build_ppdu(mac_payload);
  OqpskModulator mod(cfg);
  out.baseband = mod.modulate_bytes(out.ppdu);
  out.duration_us = static_cast<double>(out.ppdu.size()) * 2.0 /
                    (kSymbolRateHz / 1e6);  // 2 symbols per byte
  return out;
}

std::optional<ZigbeeRxResult> zigbee_receive(const CVec& samples,
                                             const OqpskConfig& cfg) {
  OqpskDemodulator demod(cfg);
  const std::size_t spc = cfg.samples_per_chip;

  // Joint search over carrier phase (coherent O-QPSK needs phase recovery;
  // 16 trial rotations cover the constellation at 22.5 deg granularity) and
  // sample timing within one chip period, keyed on finding the SFD.
  for (std::size_t rot = 0; rot < 16; ++rot) {
    const itb::dsp::Real theta =
        itb::dsp::kTwoPi * static_cast<itb::dsp::Real>(rot) / 16.0;
    const Complex derot{std::cos(theta), -std::sin(theta)};
    CVec rotated(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      rotated[i] = samples[i] * derot;
    }
  for (std::size_t phase = 0; phase < 2 * spc; ++phase) {
    const Bits chips = demod.demodulate_chips(rotated, phase);
    const Bytes decoded = demod.chips_to_bytes(chips);
    // Look for preamble + SFD in the decoded byte stream.
    for (std::size_t i = 0; i + 6 < decoded.size(); ++i) {
      if (decoded[i] == 0x00 && decoded[i + 1] == 0x00 &&
          decoded[i + 2] == 0x00 && decoded[i + 3] == 0x00 &&
          decoded[i + 4] == kSfd) {
        const std::size_t phr_at = i + 5;
        const std::size_t len = decoded[phr_at];
        if (len < 2 || phr_at + 1 + len > decoded.size()) continue;

        ZigbeeRxResult out;
        out.sfd_symbol_index = (i + 4) * 2;
        out.payload.assign(decoded.begin() + static_cast<std::ptrdiff_t>(phr_at + 1),
                           decoded.begin() + static_cast<std::ptrdiff_t>(phr_at + 1 + len - 2));
        const std::uint16_t expect = itb::phy::crc16_802154(out.payload);
        const std::uint16_t got = static_cast<std::uint16_t>(
            decoded[phr_at + 1 + len - 2] | (decoded[phr_at + 1 + len - 1] << 8));
        out.fcs_ok = expect == got;
        out.rssi_dbm = itb::dsp::watts_to_dbm(itb::dsp::mean_power(
            std::span<const Complex>(samples).first(
                std::min<std::size_t>(samples.size(), 1024))));
        return out;
      }
    }
  }
  }
  return std::nullopt;
}

}  // namespace itb::zigbee
