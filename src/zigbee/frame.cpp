#include "zigbee/frame.h"

#include <cassert>

#include "dsp/units.h"
#include "phycommon/crc.h"

namespace itb::zigbee {

Bytes build_ppdu(const Bytes& mac_payload) {
  assert(mac_payload.size() + 2 <= kMaxPsduBytes);
  Bytes out;
  out.reserve(4 + 2 + mac_payload.size() + 2);
  out.assign(4, 0x00);  // preamble
  out.push_back(kSfd);
  out.push_back(static_cast<std::uint8_t>(mac_payload.size() + 2));  // PHR
  out.insert(out.end(), mac_payload.begin(), mac_payload.end());
  const std::uint16_t fcs = itb::phy::crc16_802154(mac_payload);
  out.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>(fcs >> 8));
  return out;
}

ZigbeeTxResult zigbee_transmit(const Bytes& mac_payload, const OqpskConfig& cfg) {
  ZigbeeTxResult out;
  out.ppdu = build_ppdu(mac_payload);
  OqpskModulator mod(cfg);
  out.baseband = mod.modulate_bytes(out.ppdu);
  out.duration_us = static_cast<double>(out.ppdu.size()) * 2.0 /
                    (kSymbolRateHz / 1e6);  // 2 symbols per byte
  return out;
}

std::optional<ParsedPpdu> parse_ppdu(const Bytes& stream) {
  for (std::size_t i = 0; i + 6 < stream.size(); ++i) {
    if (stream[i] != 0x00 || stream[i + 1] != 0x00 || stream[i + 2] != 0x00 ||
        stream[i + 3] != 0x00 || stream[i + 4] != kSfd) {
      continue;
    }
    const std::size_t phr_at = i + 5;
    const std::size_t len = stream[phr_at];
    if (len < 2 || len > kMaxPsduBytes) continue;
    if (phr_at + 1 + len > stream.size()) continue;

    ParsedPpdu out;
    out.sfd_byte_index = i + 4;
    out.payload.assign(stream.begin() + static_cast<std::ptrdiff_t>(phr_at + 1),
                       stream.begin() + static_cast<std::ptrdiff_t>(phr_at + 1 + len - 2));
    const std::uint16_t expect = itb::phy::crc16_802154(out.payload);
    const std::uint16_t got = static_cast<std::uint16_t>(
        stream[phr_at + 1 + len - 2] | (stream[phr_at + 1 + len - 1] << 8));
    out.fcs_ok = expect == got;
    return out;
  }
  return std::nullopt;
}

std::optional<ZigbeeRxResult> zigbee_receive(const CVec& samples,
                                             const OqpskConfig& cfg) {
  OqpskDemodulator demod(cfg);
  const std::size_t spc = cfg.samples_per_chip;

  // Timing search within one branch period, keyed on finding the SFD. The
  // noncoherent soft detector absorbs any static carrier rotation (the old
  // 16-rotation sweep) and carrier offsets up to ~a radian per correlation
  // sub-block — the tag-oscillator regime that breaks hard chip decisions.
  for (std::size_t phase = 0; phase < 2 * spc; ++phase) {
    const CVec soft = demod.soft_chips(samples, phase);
    const Bytes decoded = demod.soft_chips_to_bytes(soft);
    const auto parsed = parse_ppdu(decoded);
    if (!parsed) continue;

    ZigbeeRxResult out;
    out.sfd_symbol_index = parsed->sfd_byte_index * 2;
    out.payload = parsed->payload;
    out.fcs_ok = parsed->fcs_ok;
    out.rssi_dbm = itb::dsp::watts_to_dbm(itb::dsp::mean_power(
        std::span<const Complex>(samples).first(
            std::min<std::size_t>(samples.size(), 1024))));
    return out;
  }
  return std::nullopt;
}

}  // namespace itb::zigbee
