#include "zigbee/oqpsk.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "dsp/fir.h"
#include "dsp/simd/kernels.h"
#include "obs/prof.h"
#include "phycommon/bits.h"

namespace itb::zigbee {

const std::array<std::uint32_t, 16>& chip_table() {
  // IEEE 802.15.4-2011 Table 73, packed chip0-first into bit 0.
  // Symbols 1..7 are 4-chip left-rotations of symbol 0; symbols 8..15 are
  // the same sequences with odd-indexed (Q) chips inverted. Generating them
  // from the base sequence keeps the table auditable against the spec text.
  static const std::array<std::uint32_t, 16> table = [] {
    // Base PN sequence for symbol 0, chip 0 first.
    constexpr std::array<std::uint8_t, kChipsPerSymbol> base = {
        1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
        0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0};
    std::array<std::uint32_t, 16> t{};
    for (unsigned sym = 0; sym < 8; ++sym) {
      std::uint32_t packed = 0;
      for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
        // Right-rotate by 4 chips per symbol step.
        const std::size_t src = (c + kChipsPerSymbol - 4 * sym) % kChipsPerSymbol;
        if (base[src]) packed |= (1u << c);
      }
      t[sym] = packed;
    }
    for (unsigned sym = 8; sym < 16; ++sym) {
      // Invert odd (Q-branch) chips of the corresponding 0..7 sequence.
      std::uint32_t odd_mask = 0;
      for (std::size_t c = 1; c < kChipsPerSymbol; c += 2) odd_mask |= (1u << c);
      t[sym] = t[sym - 8] ^ odd_mask;
    }
    return t;
  }();
  return table;
}

Bits symbol_chips(unsigned symbol) {
  assert(symbol < 16);
  const std::uint32_t packed = chip_table()[symbol];
  Bits out(kChipsPerSymbol);
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c) out[c] = (packed >> c) & 1;
  return out;
}

OqpskModulator::OqpskModulator(const OqpskConfig& cfg) : cfg_(cfg) {
  pulse_ = itb::dsp::half_sine_pulse(2 * cfg_.samples_per_chip);
}

CVec OqpskModulator::modulate_chips(const Bits& chips) const {
  assert(chips.size() % 2 == 0);
  const std::size_t spc = cfg_.samples_per_chip;
  // Each chip occupies 2*spc samples on its branch (chips alternate I/Q at
  // 2 Mchip/s aggregate; each branch runs at 1 Mchip/s). Q is offset by one
  // chip period (spc samples at the aggregate rate).
  const std::size_t n = chips.size() * spc + spc;
  itb::dsp::RVec ich(n, 0.0);
  itb::dsp::RVec qch(n, 0.0);
  for (std::size_t k = 0; k < chips.size(); ++k) {
    const Real v = chips[k] ? 1.0 : -1.0;
    const bool is_q = (k % 2) == 1;
    // Branch-chip index: k/2. Start sample on the aggregate grid:
    const std::size_t start = (k / 2) * 2 * spc + (is_q ? spc : 0);
    for (std::size_t s = 0; s < pulse_.size() && start + s < n; ++s) {
      if (is_q) {
        qch[start + s] += v * pulse_[s];
      } else {
        ich[start + s] += v * pulse_[s];
      }
    }
  }
  CVec out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = Complex{ich[i], qch[i]};
  return out;
}

CVec OqpskModulator::modulate_bytes(const Bytes& bytes) const {
  Bits chips;
  chips.reserve(bytes.size() * 2 * kChipsPerSymbol);
  for (std::uint8_t b : bytes) {
    for (unsigned nib = 0; nib < 2; ++nib) {
      const unsigned sym = nib == 0 ? (b & 0x0F) : (b >> 4);
      const Bits sc = symbol_chips(sym);
      chips.insert(chips.end(), sc.begin(), sc.end());
    }
  }
  return modulate_chips(chips);
}

OqpskDemodulator::OqpskDemodulator(const OqpskConfig& cfg) : cfg_(cfg) {}

Bits OqpskDemodulator::demodulate_chips(const CVec& samples,
                                        std::size_t offset_samples) const {
  const std::size_t spc = cfg_.samples_per_chip;
  Bits chips;
  // Sample each branch at its pulse peak: I chips peak at start + spc,
  // Q chips at start + 2*spc (centre of the half-sine).
  for (std::size_t k = 0;; ++k) {
    const bool is_q = (k % 2) == 1;
    const std::size_t centre =
        offset_samples + (k / 2) * 2 * spc + (is_q ? spc : 0) + spc;
    if (centre >= samples.size()) break;
    const Real v = is_q ? samples[centre].imag() : samples[centre].real();
    chips.push_back(v > 0.0 ? 1 : 0);
  }
  return chips;
}

CVec OqpskDemodulator::soft_chips(const CVec& samples,
                                  std::size_t offset_samples) const {
  const std::size_t spc = cfg_.samples_per_chip;
  CVec chips;
  // Same peak positions as demodulate_chips, but keep the full complex
  // sample: at a branch peak the other branch's half-sine crosses zero, so
  // the sample is the chip value rotated by whatever the carrier did.
  for (std::size_t k = 0;; ++k) {
    const bool is_q = (k % 2) == 1;
    const std::size_t centre =
        offset_samples + (k / 2) * 2 * spc + (is_q ? spc : 0) + spc;
    if (centre >= samples.size()) break;
    chips.push_back(samples[centre]);
  }
  return chips;
}

Bytes OqpskDemodulator::soft_chips_to_bytes(const CVec& soft,
                                            std::size_t block_chips) const {
  static const std::size_t kZone = obs::prof_zone("phy.soft_despread");
  const obs::ProfZone prof(kZone);
  if (block_chips == 0) block_chips = kChipsPerSymbol;
  // Complex PN patterns, stored chip-major (one 16-candidate column per
  // chip): chip bit -> +-1 on the I axis (even chips) or the Q axis (odd
  // chips). The column layout lets the despread vectorize ACROSS the 16
  // candidate symbols — each candidate's accumulator still sees its chips
  // in ascending order, so the metric is bit-identical to the per-candidate
  // scalar loop.
  static const std::array<std::array<Complex, 16>, kChipsPerSymbol> columns =
      [] {
        std::array<std::array<Complex, 16>, kChipsPerSymbol> p{};
        for (unsigned sym = 0; sym < 16; ++sym) {
          const std::uint32_t packed = chip_table()[sym];
          for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
            const Real v = ((packed >> c) & 1) ? 1.0 : -1.0;
            p[c][sym] = (c % 2 == 0) ? Complex{v, 0.0} : Complex{0.0, v};
          }
        }
        return p;
      }();

  const dsp::simd::KernelTable& kern = dsp::simd::active_kernels();
  const std::size_t nsym = soft.size() / kChipsPerSymbol;
  Bytes out;
  for (std::size_t s = 0; s < nsym; s += 2) {
    std::uint8_t byte = 0;
    for (unsigned nib = 0; nib < 2; ++nib) {
      if (s + nib >= nsym) break;
      const std::size_t at = (s + nib) * kChipsPerSymbol;
      // Differential post-detection integration: correlate per sub-block,
      // then combine adjacent blocks through Re(acc_b * conj(acc_{b-1})).
      // A common rotation cancels in the product and a slow CFO only costs
      // cos(delta) per block step, but a phase jump mid-symbol (corrupted
      // chips, genuine symbol boundary mismatch) turns its contribution
      // negative — unlike a magnitude sum, which is blind to block-aligned
      // inversions.
      std::array<Real, 16> metric{};
      std::array<Complex, 16> prev{};
      bool have_prev = false;
      for (std::size_t b0 = 0; b0 < kChipsPerSymbol; b0 += block_chips) {
        std::array<Complex, 16> acc{};
        const std::size_t bend = std::min(b0 + block_chips, kChipsPerSymbol);
        for (std::size_t c = b0; c < bend; ++c) {
          kern.accum_scaled_conj(acc.data(), columns[c].data(), soft[at + c],
                                 16);
        }
        if (have_prev) {
          for (unsigned cand = 0; cand < 16; ++cand) {
            metric[cand] += (acc[cand] * std::conj(prev[cand])).real();
          }
        }
        prev = acc;
        have_prev = true;
      }
      unsigned best_sym = 0;
      Real best_metric = -std::numeric_limits<Real>::infinity();
      for (unsigned cand = 0; cand < 16; ++cand) {
        if (metric[cand] > best_metric) {
          best_metric = metric[cand];
          best_sym = cand;
        }
      }
      byte |= static_cast<std::uint8_t>(nib == 0 ? best_sym : best_sym << 4);
    }
    out.push_back(byte);
  }
  return out;
}

Bytes OqpskDemodulator::chips_to_bytes(const Bits& chips) const {
  const std::size_t nsym = chips.size() / kChipsPerSymbol;
  Bytes out;
  last_worst_distance_ = 0;
  for (std::size_t s = 0; s + 1 < nsym + 1; s += 2) {
    std::uint8_t byte = 0;
    for (unsigned nib = 0; nib < 2; ++nib) {
      if (s + nib >= nsym) break;
      const std::size_t at = (s + nib) * kChipsPerSymbol;
      unsigned best_sym = 0;
      std::size_t best_dist = kChipsPerSymbol + 1;
      for (unsigned cand = 0; cand < 16; ++cand) {
        const std::uint32_t pattern = chip_table()[cand];
        std::size_t dist = 0;
        for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
          dist += (chips[at + c] != ((pattern >> c) & 1));
        }
        if (dist < best_dist) {
          best_dist = dist;
          best_sym = cand;
        }
      }
      last_worst_distance_ = std::max(last_worst_distance_, best_dist);
      byte |= static_cast<std::uint8_t>(nib == 0 ? best_sym : best_sym << 4);
    }
    out.push_back(byte);
  }
  return out;
}

}  // namespace itb::zigbee
