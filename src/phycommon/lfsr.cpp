#include "phycommon/lfsr.h"

#include <cassert>

namespace itb::phy {

// --- BleWhitener -----------------------------------------------------------

BleWhitener::BleWhitener(unsigned channel_index) {
  assert(channel_index < 64);
  reg_[0] = 1;
  // Positions 1..6 get the channel index with its MSB (bit 5) in position 1.
  for (int i = 0; i < 6; ++i) {
    reg_[1 + i] = static_cast<std::uint8_t>((channel_index >> (5 - i)) & 1u);
  }
}

std::uint8_t BleWhitener::next_bit() {
  const std::uint8_t out = reg_[6];
  // Shift right-to-left through positions; feedback into 0 and XOR into 4.
  for (int i = 6; i >= 1; --i) reg_[i] = reg_[i - 1];
  reg_[0] = out;
  reg_[4] = reg_[4] ^ out;
  return out;
}

Bits BleWhitener::process(std::span<const std::uint8_t> bits) {
  Bits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = (bits[i] ^ next_bit()) & 1;
  }
  return out;
}

Bits BleWhitener::sequence(unsigned channel_index, std::size_t n) {
  BleWhitener w(channel_index);
  Bits out(n);
  for (auto& b : out) b = w.next_bit();
  return out;
}

// --- OfdmScrambler ---------------------------------------------------------

OfdmScrambler::OfdmScrambler(std::uint8_t seed7) : state_(seed7 & 0x7F) {
  assert(state_ != 0 && "802.11 scrambler seed must be non-zero");
}

std::uint8_t OfdmScrambler::next_bit() {
  // state_ bit k holds X^{k+1}; feedback = X^7 ^ X^4.
  const std::uint8_t x7 = (state_ >> 6) & 1;
  const std::uint8_t x4 = (state_ >> 3) & 1;
  const std::uint8_t fb = x7 ^ x4;
  state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  return fb;
}

Bits OfdmScrambler::process(std::span<const std::uint8_t> bits) {
  Bits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = (bits[i] ^ next_bit()) & 1;
  }
  return out;
}

Bits OfdmScrambler::sequence(std::uint8_t seed7, std::size_t n) {
  OfdmScrambler s(seed7);
  Bits out(n);
  for (auto& b : out) b = s.next_bit();
  return out;
}

std::uint8_t OfdmScrambler::seed_from_first_bits(
    std::span<const std::uint8_t> first7) {
  assert(first7.size() >= 7);
  // The first 7 scrambler output bits uniquely determine the seed; search the
  // 127 possibilities (cheap, runs once per frame on the receive path).
  for (std::uint8_t seed = 1; seed < 128; ++seed) {
    const Bits seq = sequence(seed, 7);
    bool match = true;
    for (int i = 0; i < 7; ++i) {
      if (seq[i] != (first7[i] & 1)) {
        match = false;
        break;
      }
    }
    if (match) return seed;
  }
  return 0;  // no seed reproduces these bits (corrupted input)
}

// --- DsssScrambler ---------------------------------------------------------

DsssScrambler::DsssScrambler(std::uint8_t seed7) : state_(seed7 & 0x7F) {}

std::uint8_t DsssScrambler::scramble_bit(std::uint8_t bit) {
  // state_ bit k holds Z^{-(k+1)}; taps at Z^-4 and Z^-7.
  const std::uint8_t z4 = (state_ >> 3) & 1;
  const std::uint8_t z7 = (state_ >> 6) & 1;
  const std::uint8_t out = (bit ^ z4 ^ z7) & 1;
  state_ = static_cast<std::uint8_t>(((state_ << 1) | out) & 0x7F);
  return out;
}

std::uint8_t DsssScrambler::descramble_bit(std::uint8_t bit) {
  const std::uint8_t z4 = (state_ >> 3) & 1;
  const std::uint8_t z7 = (state_ >> 6) & 1;
  const std::uint8_t out = (bit ^ z4 ^ z7) & 1;
  // Self-synchronizing: the *received* (scrambled) bit enters the register.
  state_ = static_cast<std::uint8_t>(((state_ << 1) | (bit & 1)) & 0x7F);
  return out;
}

Bits DsssScrambler::scramble(std::span<const std::uint8_t> bits) {
  Bits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) out[i] = scramble_bit(bits[i]);
  return out;
}

Bits DsssScrambler::descramble(std::span<const std::uint8_t> bits) {
  Bits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) out[i] = descramble_bit(bits[i]);
  return out;
}

}  // namespace itb::phy
