// Linear-feedback shift registers used across the stack:
//   - BLE data whitener (x^7 + x^4 + 1, channel-seeded)      — paper §2.2
//   - 802.11a/g frame-synchronous scrambler (same polynomial) — paper §2.4
//   - 802.11b self-synchronizing scrambler                    — paper §2.3.2
//
// The BLE whitener and the 802.11a/g scrambler share the polynomial but not
// the structure: BLE's is Galois-style per the core spec figure, while the
// OFDM scrambler is a Fibonacci generator XORed onto the data.
#pragma once

#include <cstdint>

#include "phycommon/bits.h"

namespace itb::phy {

/// BLE link-layer whitener (Bluetooth Core Spec Vol 6 Part B §3.2).
///
/// 7-bit register, polynomial x^7 + x^4 + 1. Position 0 is initialized to 1
/// and positions 1..6 to the channel index, MSB in position 1. Each clock
/// outputs position 6, feeds it back into position 0 and XORs it into
/// position 4. The output bit is XORed with the data bit.
class BleWhitener {
 public:
  explicit BleWhitener(unsigned channel_index);

  /// Next bit of the raw whitening sequence (advances state).
  std::uint8_t next_bit();

  /// Whitens (or de-whitens: the operation is an involution) a bit stream.
  Bits process(std::span<const std::uint8_t> bits);

  /// The first n bits of the whitening sequence for a channel, without
  /// disturbing this instance.
  static Bits sequence(unsigned channel_index, std::size_t n);

 private:
  std::uint8_t reg_[7];  // reg_[i] = position i, one bit each
};

/// 802.11a/g frame-synchronous scrambler (IEEE 802.11-2016 §17.3.5.5).
///
/// 7-bit Fibonacci LFSR, feedback x^7 + x^4 + 1: out = s[6] ^ s[3]; the
/// output is shifted back into s[0] and XORed with the data. Seed must be
/// non-zero; transmitters pick a "pseudo-random" seed per frame — chipset
/// policies for that choice are modeled in wifi/chipset.h (paper §4.4).
class OfdmScrambler {
 public:
  explicit OfdmScrambler(std::uint8_t seed7);

  std::uint8_t next_bit();
  Bits process(std::span<const std::uint8_t> bits);

  /// First n bits of the scrambling sequence for a seed.
  static Bits sequence(std::uint8_t seed7, std::size_t n);

  /// Recovers the 7-bit seed from the first 7 descrambled-known bits
  /// (e.g. the all-zero SERVICE field), as a receiver does.
  static std::uint8_t seed_from_first_bits(std::span<const std::uint8_t> first7);

 private:
  std::uint8_t state_;  // bit i = s[i+1] in the spec's X^i numbering
};

/// 802.11b self-synchronizing scrambler (IEEE 802.11-2016 §16.2.4).
///
/// Polynomial G(z) = z^-7 + z^-4 + 1. The TX scrambler feeds *scrambled*
/// output back into the register, so a receiver seeded with anything
/// converges after 7 bits — which is why the PLCP SYNC field is 128
/// scrambled ones. Seeds: 0x6C (long preamble), 0x1B (short).
class DsssScrambler {
 public:
  explicit DsssScrambler(std::uint8_t seed7);

  std::uint8_t scramble_bit(std::uint8_t bit);
  std::uint8_t descramble_bit(std::uint8_t bit);

  Bits scramble(std::span<const std::uint8_t> bits);
  Bits descramble(std::span<const std::uint8_t> bits);

 private:
  std::uint8_t state_;
};

}  // namespace itb::phy
