// Generic bitwise CRC engine plus the concrete CRCs used by the three PHYs:
//   - CRC-24 (BLE link layer, poly 0x00065B, init from spec)
//   - CRC-32 (IEEE 802.11 FCS)
//   - CRC-16 CCITT (802.11b PLCP header, 802.15.4 FCS variants)
#pragma once

#include <cstdint>
#include <span>

#include "phycommon/bits.h"

namespace itb::phy {

/// Bitwise CRC over a bit stream (air order). Polynomial given without the
/// leading x^width term, e.g. CRC-24 poly x^24+x^10+x^9+x^6+x^4+x^3+x+1 is
/// 0x00065B. Shifts LSB-first (reflected), matching BLE/802.11 serialization.
class CrcEngine {
 public:
  CrcEngine(int width, std::uint32_t polynomial, std::uint32_t initial,
            bool complement_out)
      : width_(width),
        poly_(polynomial),
        init_(initial),
        complement_out_(complement_out) {}

  /// CRC of a bit vector; returns the register value (width_ bits).
  std::uint32_t compute_bits(std::span<const std::uint8_t> bits) const;

  /// CRC of packed bytes processed LSB-first.
  std::uint32_t compute_bytes(std::span<const std::uint8_t> bytes) const;

  int width() const { return width_; }

 private:
  int width_;
  std::uint32_t poly_;
  std::uint32_t init_;
  bool complement_out_;
};

/// BLE link-layer CRC-24. `init` is 0x555555 for advertising channel packets.
/// Returns 24 bits; serialize LSB-first (ble::crc24_bits does this).
std::uint32_t ble_crc24(std::span<const std::uint8_t> pdu_bits,
                        std::uint32_t init = 0x555555);

/// The 24 CRC bits in air order for appending to a BLE PDU.
Bits ble_crc24_bits(std::span<const std::uint8_t> pdu_bits,
                    std::uint32_t init = 0x555555);

/// IEEE CRC-32 over bytes (as used for the 802.11 FCS): reflected, init
/// 0xFFFFFFFF, final XOR 0xFFFFFFFF. Standard check value for "123456789" is
/// 0xCBF43926.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes);

/// CRC-16 CCITT (X.25 style: reflected, init 0xFFFF, xorout 0xFFFF) used by
/// the 802.15.4 FCS. Check value for "123456789" is 0x906E.
std::uint16_t crc16_x25(std::span<const std::uint8_t> bytes);

/// CRC-16 used by the 802.11b PLCP header: CCITT-FALSE style over the 32
/// header bits, non-reflected, init 0xFFFF, ones-complement output.
std::uint16_t crc16_plcp(std::span<const std::uint8_t> header_bits);

/// 802.15.4 FCS: CRC-16 with polynomial x^16+x^12+x^5+1, init 0x0000,
/// reflected. Appended little-endian.
std::uint16_t crc16_802154(std::span<const std::uint8_t> bytes);

}  // namespace itb::phy
