#include "phycommon/crc.h"

#include <cassert>

namespace itb::phy {

namespace {

/// Reflects the low `width` bits of v.
std::uint32_t reflect_bits(std::uint32_t v, int width) {
  std::uint32_t out = 0;
  for (int i = 0; i < width; ++i) {
    if (v & (1u << i)) out |= 1u << (width - 1 - i);
  }
  return out;
}

}  // namespace

std::uint32_t CrcEngine::compute_bits(std::span<const std::uint8_t> bits) const {
  const std::uint32_t mask =
      width_ == 32 ? 0xFFFFFFFFu : ((1u << width_) - 1u);
  const std::uint32_t rpoly = reflect_bits(poly_ & mask, width_);
  std::uint32_t reg = init_ & mask;
  for (std::uint8_t bit : bits) {
    const std::uint32_t fb = (reg ^ (bit & 1u)) & 1u;
    reg >>= 1;
    if (fb) reg ^= rpoly;
  }
  if (complement_out_) reg = (~reg) & mask;
  return reg;
}

std::uint32_t CrcEngine::compute_bytes(std::span<const std::uint8_t> bytes) const {
  const Bits bits = bytes_to_bits_lsb_first(bytes);
  return compute_bits(bits);
}

// --- free functions -------------------------------------------------------

std::uint32_t ble_crc24(std::span<const std::uint8_t> pdu_bits, std::uint32_t init) {
  // BLE spec Vol 6 Part B 3.1.1: 24-bit LFSR, polynomial
  // x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1. The LFSR is initialized with
  // 0x555555 (advertising) with bit 23 of the init value in position 23.
  // Bits are shifted in air order (LSB-first of each PDU byte).
  std::uint32_t lfsr = init & 0xFFFFFF;
  constexpr std::uint32_t kPoly = 0x00065B;  // taps below x^24
  for (std::uint8_t bit : pdu_bits) {
    const std::uint32_t fb = ((lfsr >> 23) ^ (bit & 1u)) & 1u;
    lfsr = (lfsr << 1) & 0xFFFFFF;
    if (fb) lfsr ^= kPoly;
  }
  return lfsr;
}

Bits ble_crc24_bits(std::span<const std::uint8_t> pdu_bits, std::uint32_t init) {
  const std::uint32_t crc = ble_crc24(pdu_bits, init);
  // Air order: most-significant CRC bit (position 23) first per spec.
  return uint_to_bits_msb_first(crc, 24);
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes) {
  // Reflected implementation with the reversed polynomial 0xEDB88320.
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) {
    crc ^= b;
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

std::uint16_t crc16_x25(std::span<const std::uint8_t> bytes) {
  // Reflected CRC-16/X-25: poly 0x1021 reversed = 0x8408.
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : bytes) {
    crc ^= b;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 1) ? static_cast<std::uint16_t>((crc >> 1) ^ 0x8408)
                      : static_cast<std::uint16_t>(crc >> 1);
    }
  }
  return static_cast<std::uint16_t>(~crc);
}

std::uint16_t crc16_plcp(std::span<const std::uint8_t> header_bits) {
  // 802.11b-1999 15.2.3.6: CCITT CRC-16 (x^16+x^12+x^5+1), preset to ones,
  // over the SIGNAL/SERVICE/LENGTH bits in transmit order, ones complement.
  std::uint16_t reg = 0xFFFF;
  for (std::uint8_t bit : header_bits) {
    const std::uint16_t fb = static_cast<std::uint16_t>(((reg >> 15) ^ bit) & 1u);
    reg = static_cast<std::uint16_t>(reg << 1);
    if (fb) reg ^= 0x1021;
  }
  return static_cast<std::uint16_t>(~reg);
}

std::uint16_t crc16_802154(std::span<const std::uint8_t> bytes) {
  // 802.15.4-2011 5.2.1.9: ITU CRC-16, init 0, reflected (LSB-first bits).
  std::uint16_t crc = 0x0000;
  for (std::uint8_t b : bytes) {
    crc ^= b;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 1) ? static_cast<std::uint16_t>((crc >> 1) ^ 0x8408)
                      : static_cast<std::uint16_t>(crc >> 1);
    }
  }
  return crc;
}

}  // namespace itb::phy
