#include "phycommon/bits.h"

#include <cassert>

namespace itb::phy {

Bits bytes_to_bits_lsb_first(std::span<const std::uint8_t> bytes) {
  Bits out;
  out.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 0; i < 8; ++i) out.push_back((b >> i) & 1);
  }
  return out;
}

Bits bytes_to_bits_msb_first(std::span<const std::uint8_t> bytes) {
  Bits out;
  out.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) out.push_back((b >> i) & 1);
  }
  return out;
}

Bytes bits_to_bytes_lsb_first(std::span<const std::uint8_t> bits) {
  assert(bits.size() % 8 == 0);
  Bytes out(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

Bytes bits_to_bytes_msb_first(std::span<const std::uint8_t> bits) {
  assert(bits.size() % 8 == 0);
  Bytes out(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return out;
}

Bits uint_to_bits_lsb_first(std::uint64_t value, std::size_t width) {
  Bits out(width);
  for (std::size_t i = 0; i < width; ++i) out[i] = (value >> i) & 1;
  return out;
}

Bits uint_to_bits_msb_first(std::uint64_t value, std::size_t width) {
  Bits out(width);
  for (std::size_t i = 0; i < width; ++i) out[i] = (value >> (width - 1 - i)) & 1;
  return out;
}

std::uint64_t bits_to_uint_lsb_first(std::span<const std::uint8_t> bits) {
  assert(bits.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= (1ULL << i);
  }
  return v;
}

std::uint64_t bits_to_uint_msb_first(std::span<const std::uint8_t> bits) {
  assert(bits.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    v = (v << 1) | (bits[i] & 1);
  }
  return v;
}

Bits xor_bits(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  Bits out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = (a[i] ^ b[i]) & 1;
  return out;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] ^ b[i]) & 1;
  return d;
}

std::string to_string(std::span<const std::uint8_t> bits) {
  std::string s;
  s.reserve(bits.size());
  for (std::uint8_t b : bits) s.push_back(b ? '1' : '0');
  return s;
}

Bytes reverse_bits_in_bytes(std::span<const std::uint8_t> bytes) {
  Bytes out(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::uint8_t b = bytes[i];
    b = static_cast<std::uint8_t>((b & 0xF0) >> 4 | (b & 0x0F) << 4);
    b = static_cast<std::uint8_t>((b & 0xCC) >> 2 | (b & 0x33) << 2);
    b = static_cast<std::uint8_t>((b & 0xAA) >> 1 | (b & 0x55) << 1);
    out[i] = b;
  }
  return out;
}

}  // namespace itb::phy
