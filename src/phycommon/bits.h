// Bit-level utilities shared by every PHY: bit vectors, byte packing in both
// bit orders, and conversions.
//
// Convention: a "Bits" vector holds one bit per element (0/1) in *air order*,
// i.e. the order bits leave the antenna. BLE and 802.11 transmit bytes
// LSB-first; 802.15.4 transmits symbols low-nibble-first.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace itb::phy {

using Bits = std::vector<std::uint8_t>;   // each element 0 or 1
using Bytes = std::vector<std::uint8_t>;  // packed octets

/// Expands bytes to bits, least-significant bit of each byte first
/// (BLE / 802.11 air order).
Bits bytes_to_bits_lsb_first(std::span<const std::uint8_t> bytes);

/// Expands bytes to bits, most-significant bit first.
Bits bytes_to_bits_msb_first(std::span<const std::uint8_t> bytes);

/// Packs bits (LSB-first per byte) into bytes. Size must be a multiple of 8.
Bytes bits_to_bytes_lsb_first(std::span<const std::uint8_t> bits);

/// Packs bits (MSB-first per byte) into bytes. Size must be a multiple of 8.
Bytes bits_to_bytes_msb_first(std::span<const std::uint8_t> bits);

/// Expands an integer to `width` bits, LSB first.
Bits uint_to_bits_lsb_first(std::uint64_t value, std::size_t width);

/// Expands an integer to `width` bits, MSB first.
Bits uint_to_bits_msb_first(std::uint64_t value, std::size_t width);

/// Packs up to 64 bits (first element = LSB) into an integer.
std::uint64_t bits_to_uint_lsb_first(std::span<const std::uint8_t> bits);

/// Packs up to 64 bits (first element = MSB) into an integer.
std::uint64_t bits_to_uint_msb_first(std::span<const std::uint8_t> bits);

/// XOR of two equal-length bit vectors.
Bits xor_bits(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Number of positions where a and b differ (sizes must match).
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

/// Renders bits as a "0101..." string (debugging / test failure messages).
std::string to_string(std::span<const std::uint8_t> bits);

/// Reverses bit order within each byte of a packed byte vector.
Bytes reverse_bits_in_bytes(std::span<const std::uint8_t> bytes);

}  // namespace itb::phy
