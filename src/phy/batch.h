// Batched PHY processing: a set of equal-length complex lanes in one
// contiguous arena slab, with batch-wide operations that run each lane
// through the same runtime-dispatched kernels (dsp/simd) as the single-shot
// APIs.
//
// The batch exists for sweep-style workloads (Monte-Carlo trials, ablation
// grids) that process many same-shaped waveforms back to back: one slab
// allocation per batch instead of one vector per waveform, and one
// dispatch-table load per operation instead of per waveform.
//
// Determinism contract: every operation visits lanes in ascending index
// order and applies the exact kernel the scalar API would, so for any lane
// `b.lane(i)` the batched result is bit-identical to calling the
// corresponding single-waveform function on that lane — with or without
// SIMD enabled (see DESIGN.md "Batched PHY engine and dispatch
// determinism").
#pragma once

#include <cstddef>
#include <span>

#include "core/arena.h"
#include "dsp/types.h"

namespace itb::dsp {
class FftPlan;
}  // namespace itb::dsp

namespace itb::phy {

using itb::dsp::Complex;
using itb::dsp::Real;

class Batch {
 public:
  /// Carves lanes*samples complex slots out of `arena` (default: the calling
  /// thread's arena), zero-initialized. The batch must not outlive the
  /// enclosing core::ArenaFrame.
  Batch(std::size_t lanes, std::size_t samples);
  Batch(std::size_t lanes, std::size_t samples, core::Arena& arena);

  std::size_t lanes() const { return lanes_; }
  std::size_t samples() const { return samples_; }

  std::span<Complex> lane(std::size_t i) {
    return data_.subspan(i * samples_, samples_);
  }
  std::span<const Complex> lane(std::size_t i) const {
    return data_.subspan(i * samples_, samples_);
  }
  /// All lanes, lane-major contiguous.
  std::span<Complex> flat() { return data_; }
  std::span<const Complex> flat() const { return data_; }

  /// Copies `src` into lane i (src.size() must equal samples()).
  void load(std::size_t i, std::span<const Complex> src);

  // --- batched operations (lane order ascending, dispatch kernels) --------

  /// lane[i] *= s for every lane.
  void scale(Real s);
  /// Pointwise complex multiply of every lane by `spectrum`
  /// (spectrum.size() == samples()).
  void pointwise_mul(std::span<const Complex> spectrum);
  /// Widely-linear IQ imbalance v = alpha*v + beta*conj(v) on every lane.
  void iq_imbalance(Complex alpha, Complex beta);
  /// Mid-rise ADC quantization of every lane (see channel::ImpairmentChain).
  void quantize_midrise(Real full_scale, Real step);
  /// In-place forward/inverse FFT of every lane (plan.size() == samples()).
  void fft_forward(const dsp::FftPlan& plan);
  void fft_inverse(const dsp::FftPlan& plan);

 private:
  std::span<Complex> data_;
  std::size_t lanes_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace itb::phy
