#include "phy/batch.h"

#include <cassert>

#include "dsp/fft_plan.h"
#include "dsp/simd/kernels.h"

namespace itb::phy {

Batch::Batch(std::size_t lanes, std::size_t samples)
    : Batch(lanes, samples, core::thread_arena()) {}

Batch::Batch(std::size_t lanes, std::size_t samples, core::Arena& arena)
    : data_(arena.alloc_span_zeroed<Complex>(lanes * samples)),
      lanes_(lanes),
      samples_(samples) {}

void Batch::load(std::size_t i, std::span<const Complex> src) {
  assert(src.size() == samples_);
  std::span<Complex> dst = lane(i);
  for (std::size_t k = 0; k < samples_; ++k) dst[k] = src[k];
}

void Batch::scale(Real s) {
  const dsp::simd::KernelTable& kern = dsp::simd::active_kernels();
  for (std::size_t i = 0; i < lanes_; ++i) {
    kern.scale_real(lane(i).data(), s, samples_);
  }
}

void Batch::pointwise_mul(std::span<const Complex> spectrum) {
  assert(spectrum.size() == samples_);
  const dsp::simd::KernelTable& kern = dsp::simd::active_kernels();
  for (std::size_t i = 0; i < lanes_; ++i) {
    kern.cmul_pointwise(lane(i).data(), spectrum.data(), samples_);
  }
}

void Batch::iq_imbalance(Complex alpha, Complex beta) {
  const dsp::simd::KernelTable& kern = dsp::simd::active_kernels();
  for (std::size_t i = 0; i < lanes_; ++i) {
    kern.iq_imbalance(lane(i).data(), alpha, beta, samples_);
  }
}

void Batch::quantize_midrise(Real full_scale, Real step) {
  const dsp::simd::KernelTable& kern = dsp::simd::active_kernels();
  for (std::size_t i = 0; i < lanes_; ++i) {
    kern.quantize_midrise(lane(i).data(), full_scale, step, samples_);
  }
}

void Batch::fft_forward(const dsp::FftPlan& plan) {
  assert(plan.size() == samples_);
  for (std::size_t i = 0; i < lanes_; ++i) plan.forward(lane(i));
}

void Batch::fft_inverse(const dsp::FftPlan& plan) {
  assert(plan.size() == samples_);
  for (std::size_t i = 0; i < lanes_; ++i) plan.inverse(lane(i));
}

}  // namespace itb::phy
