// Channel-reservation strategies for collision-free backscatter
// (paper §2.3.3, optimizations 1-3):
//   1. CTS-to-Self scheduled by the helper device's own Wi-Fi radio before
//      the BLE packet (needs driver/firmware coordination).
//   2. Tag-initiated RTS on the channel-37 advertisement; the Wi-Fi device
//      answers CTS, reserving 2*dT + T_bluetooth for the channel 38/39
//      advertisements.
//   3. Data-as-RTS: the first backscattered packet carries data; its
//      CTS-to-Self response reserves the rest of the event.
#pragma once

#include "ble/advertiser.h"
#include "dsp/rng.h"
#include "dsp/types.h"

namespace itb::mac {

using itb::dsp::Real;

enum class ReservationScheme {
  kNone,
  kCtsToSelf,   ///< optimization 1
  kTagRts,      ///< optimization 2
  kDataAsRts,   ///< optimization 3
};

struct ReservationConfig {
  ReservationScheme scheme = ReservationScheme::kNone;
  itb::ble::AdvertiserTiming timing{};
  Real ble_packet_us = 376.0;  ///< 47-byte advertising packet at 1 Mbps
  /// Probability that the Wi-Fi channel is busy at any instant (ambient load).
  /// Values outside [0, 1] are clamped by the evaluators (NaN -> 0).
  Real channel_busy_probability = 0.3;
  /// Probability the tag's peak detector sees the CTS (RTS schemes).
  /// Values outside [0, 1] are clamped by the evaluators (NaN -> 0).
  Real cts_detection_probability = 0.95;

  /// Copy of this config with both probabilities clamped into [0, 1].
  /// Out-of-range inputs would otherwise silently produce negative clean
  /// transmission counts / collision fractions above 1.
  ReservationConfig validated() const;
};

/// Closed-form per-opportunity outcome of a reservation scheme over one
/// advertising event (three advertisements on channels 37/38/39). The
/// Monte-Carlo evaluate_reservation() must agree with these in expectation
/// (asserted in tests); the network simulator uses them directly so that a
/// polled reply costs O(1) instead of a per-event Monte-Carlo loop.
struct ReservationOutcome {
  /// Of the three advertisements, how many can carry backscatter data
  /// (kTagRts burns channel 37 on the RTS).
  Real data_slots_per_event = 3.0;
  /// Per data slot: delivered without colliding with ambient traffic.
  Real p_clean = 0.0;
  /// Per data slot: transmitted but collided.
  Real p_collision = 0.0;
  /// Per data slot: tag stayed silent (reservation not granted).
  Real p_silent = 0.0;
  /// Tag airtime spent on control rather than data, us per event.
  Real control_overhead_us = 0.0;
};
ReservationOutcome reservation_outcome(const ReservationConfig& cfg);

struct ReservationResult {
  /// Per advertising event: how many of the (up to 3) backscatter
  /// opportunities were collision-free.
  Real clean_transmissions_per_event = 0.0;
  /// Fraction of backscattered packets that collided with ambient traffic.
  Real collision_fraction = 0.0;
  /// Extra tag airtime spent on control (RTS) rather than data, us/event.
  Real control_overhead_us = 0.0;
};

/// Monte-Carlo evaluation of a reservation scheme over `events` advertising
/// events.
ReservationResult evaluate_reservation(const ReservationConfig& cfg,
                                       std::size_t events, std::uint64_t seed);

}  // namespace itb::mac
