// Channel-reservation strategies for collision-free backscatter
// (paper §2.3.3, optimizations 1-3):
//   1. CTS-to-Self scheduled by the helper device's own Wi-Fi radio before
//      the BLE packet (needs driver/firmware coordination).
//   2. Tag-initiated RTS on the channel-37 advertisement; the Wi-Fi device
//      answers CTS, reserving 2*dT + T_bluetooth for the channel 38/39
//      advertisements.
//   3. Data-as-RTS: the first backscattered packet carries data; its
//      CTS-to-Self response reserves the rest of the event.
#pragma once

#include "ble/advertiser.h"
#include "dsp/rng.h"
#include "dsp/types.h"

namespace itb::mac {

using itb::dsp::Real;

enum class ReservationScheme {
  kNone,
  kCtsToSelf,   ///< optimization 1
  kTagRts,      ///< optimization 2
  kDataAsRts,   ///< optimization 3
};

struct ReservationConfig {
  ReservationScheme scheme = ReservationScheme::kNone;
  itb::ble::AdvertiserTiming timing{};
  Real ble_packet_us = 376.0;  ///< 47-byte advertising packet at 1 Mbps
  /// Probability that the Wi-Fi channel is busy at any instant (ambient load).
  Real channel_busy_probability = 0.3;
  /// Probability the tag's peak detector sees the CTS (RTS schemes).
  Real cts_detection_probability = 0.95;
};

struct ReservationResult {
  /// Per advertising event: how many of the (up to 3) backscatter
  /// opportunities were collision-free.
  Real clean_transmissions_per_event = 0.0;
  /// Fraction of backscattered packets that collided with ambient traffic.
  Real collision_fraction = 0.0;
  /// Extra tag airtime spent on control (RTS) rather than data, us/event.
  Real control_overhead_us = 0.0;
};

/// Monte-Carlo evaluation of a reservation scheme over `events` advertising
/// events.
ReservationResult evaluate_reservation(const ReservationConfig& cfg,
                                       std::size_t events, std::uint64_t seed);

}  // namespace itb::mac
