// Link-layer ARQ for interscatter uplinks (ROADMAP item 4's reliability
// half): fragmentation with per-fragment CRC-16, selective-repeat
// retransmission with capped exponential backoff and per-message retry
// budgets, and a rate-fallback ladder for graceful degradation.
//
// Why it exists: a failed channel::link draw used to be a lost reply —
// nothing retried, backed off, or degraded. Implanted fleets live with
// routine link death (tissue absorption, harvest starvation, AP outages,
// ISM jamming), so delivery has to be guaranteed by the link layer, not
// hoped for per poll.
//
// The pieces are deliberately separable:
//   - fragment/reassemble: pure byte-level framing (header + CRC-16 X.25,
//     reusing phycommon/crc), usable by any transport;
//   - ArqConfig + backoff_slots(): the retry policy, closed over small
//     integers so the network simulator can drive it per TDMA slot;
//   - arq_delivery_probability()/arq_expected_attempts(): closed-form
//     geometric-retry model the simulator is validated against in tests;
//   - RateFallbackController: consecutive-failure downshift through the
//     DSSS ladder 11 -> 5.5 -> 2 -> 1 Mbps (optionally -> ZigBee O-QPSK
//     where the tag supports both waveforms), probing back up on success.
//
// Determinism: none of these types hold RNG state. All randomness stays in
// the caller (the network sim draws from per-(tag, round) substreams), so
// ARQ state evolution is a pure fold over attempt outcomes and the sharded
// digest contract of DESIGN.md survives.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phycommon/bits.h"
#include "wifi/rates.h"

namespace itb::mac {

using itb::phy::Bytes;

// --- fragmentation -----------------------------------------------------------

/// Wire layout of one fragment:
///   [message_seq, frag_index, frag_count, payload..., crc16 lo, crc16 hi]
/// where the CRC-16 (X.25, phy::crc16_x25) covers header + payload.
struct FragmentHeader {
  std::uint8_t message_seq = 0;  ///< message identity (wraps mod 256)
  std::uint8_t frag_index = 0;
  std::uint8_t frag_count = 1;
};

constexpr std::size_t kFragmentHeaderBytes = 3;
constexpr std::size_t kFragmentCrcBytes = 2;
constexpr std::size_t kFragmentOverheadBytes =
    kFragmentHeaderBytes + kFragmentCrcBytes;
/// frag_index/frag_count are one byte each.
constexpr std::size_t kMaxFragmentsPerMessage = 255;

/// Number of fragments a message of `message_bytes` splits into at
/// `fragment_payload_bytes` per fragment (0 = no fragmentation: one
/// fragment carries the whole message). Always >= 1 so an empty message
/// still occupies one delivery slot.
std::size_t fragment_count(std::size_t message_bytes,
                           std::size_t fragment_payload_bytes);

/// Serializes fragment `index` of `message`. Throws std::invalid_argument
/// when index is out of range or the message needs > 255 fragments.
Bytes make_fragment(const Bytes& message, std::size_t fragment_payload_bytes,
                    std::uint8_t message_seq, std::size_t index);

struct ParsedFragment {
  FragmentHeader header;
  Bytes payload;
};

/// CRC-checked parse of one fragment; nullopt on truncation, CRC failure,
/// or an inconsistent header (index >= count, count == 0).
std::optional<ParsedFragment> parse_fragment(const Bytes& wire);

/// Selective-repeat reassembly: accepts fragments in any order, tolerates
/// duplicates, and reports exactly which indices are still missing so the
/// sender retransmits only those.
class Reassembler {
 public:
  /// Feeds one parsed fragment. Returns true when the fragment was new
  /// (first copy of its index for the current message); false for
  /// duplicates or a fragment of a different message_seq than the one in
  /// progress (stale retransmission).
  bool accept(const ParsedFragment& f);

  bool complete() const;
  /// Reassembled message bytes; empty until complete().
  Bytes message() const;
  /// Fragment indices not yet received (ascending); empty until the first
  /// accept() establishes the fragment count.
  std::vector<std::uint8_t> missing() const;
  /// Drops any partial state so the next accept() starts a new message.
  void reset();

 private:
  bool started_ = false;
  std::uint8_t seq_ = 0;
  std::vector<std::optional<Bytes>> parts_;
};

// --- retry policy ------------------------------------------------------------

struct ArqConfig {
  /// Fragment payload bytes; 0 = whole message in one fragment.
  std::size_t fragment_bytes = 0;
  /// Transmission attempts allowed per fragment, including the first.
  std::size_t max_attempts = 8;
  /// Total retransmissions allowed per message across all its fragments
  /// (the per-tag retry budget: energy, not just time, is finite).
  std::size_t retry_budget = 16;
  /// After the k-th consecutive failure the sender idles
  /// min(backoff_cap_slots, backoff_base_slots * 2^(k-1)) of its own TDMA
  /// slots before retrying — capped exponential backoff.
  std::size_t backoff_base_slots = 0;  ///< 0 = retry at the next slot
  std::size_t backoff_cap_slots = 8;

  /// Copy with degenerate values clamped (mirrors
  /// ReservationConfig::validated()): max_attempts >= 1, cap >= base,
  /// fragment count bounded by the one-byte wire header.
  ArqConfig validated() const;
};

/// Slots to skip before the retry that follows `consecutive_failures`
/// (>= 1) failures: min(cap, base * 2^(failures-1)); 0 when base is 0.
std::size_t backoff_slots(const ArqConfig& cfg,
                          std::size_t consecutive_failures);

/// Closed-form geometric-retry model: probability a fragment is delivered
/// within `max_attempts` attempts when each attempt independently succeeds
/// with probability `p_success`: 1 - (1-p)^n. The simulator's measured
/// delivery ratio must match this at fixed per-attempt PER (tested).
double arq_delivery_probability(double p_success, std::size_t max_attempts);

/// Expected attempts consumed per fragment (delivered or abandoned):
/// sum_{k=1..n} (1-p)^(k-1) = (1 - (1-p)^n) / p, with the p -> 0 limit n.
double arq_expected_attempts(double p_success, std::size_t max_attempts);

// --- rate / waveform fallback ------------------------------------------------

/// The graceful-degradation ladder, most to least fragile. The three CCK /
/// DQPSK DSSS downshifts trade throughput for SNR margin (~5.4 dB between
/// 11 and 2 Mbps, see channel::per_80211b); the final rung swaps waveform
/// entirely to 802.15.4 O-QPSK at 250 kbps, whose 32-chip spreading gains
/// another ~9 dB for tags that support both synthesizers.
enum class LinkWaveform : std::uint8_t {
  kWifi11Mbps = 0,
  kWifi5_5Mbps = 1,
  kWifi2Mbps = 2,
  kWifi1Mbps = 3,
  kZigbee = 4,
};
constexpr std::size_t kNumLinkWaveforms = 5;

const char* waveform_name(LinkWaveform w);
constexpr bool is_wifi(LinkWaveform w) { return w != LinkWaveform::kZigbee; }
/// DSSS rate of a Wi-Fi rung; kZigbee maps to k1Mbps for callers that need
/// a DSSS rate proxy (e.g. the IC power model's baseband clock scaling).
itb::wifi::DsssRate waveform_rate(LinkWaveform w);
LinkWaveform waveform_for_rate(itb::wifi::DsssRate rate);
/// Reply airtime of `psdu_bytes` at rung `w`: 802.11b long-preamble frame
/// for the Wi-Fi rungs, 802.15.4 SHR+PHR+PSDU at 250 kbps for kZigbee.
double waveform_airtime_us(LinkWaveform w, std::size_t psdu_bytes);

struct FallbackConfig {
  bool enable_rate_fallback = false;
  /// Allow the final Wi-Fi -> ZigBee waveform swap (tag has both synths).
  bool enable_zigbee_fallback = false;
  /// Consecutive failed attempts before stepping one rung down.
  std::size_t down_after_failures = 2;
  /// Consecutive delivered attempts before probing one rung back up.
  std::size_t up_after_successes = 8;

  /// Copy with zero thresholds clamped to 1 (a zero threshold would
  /// downshift on success paths / upshift forever).
  FallbackConfig validated() const;
};

/// Per-tag fallback state machine. Holds no RNG; feed it attempt outcomes.
/// Never climbs above the waveform it was constructed at.
class RateFallbackController {
 public:
  RateFallbackController() = default;
  RateFallbackController(const FallbackConfig& cfg, LinkWaveform initial);

  LinkWaveform current() const { return current_; }
  LinkWaveform initial() const { return initial_; }
  bool degraded() const { return current_ != initial_; }

  void on_success();
  void on_failure();

  std::uint64_t downshifts() const { return downshifts_; }
  std::uint64_t upshifts() const { return upshifts_; }

 private:
  bool can_step_down() const;

  FallbackConfig cfg_{};
  LinkWaveform initial_ = LinkWaveform::kWifi2Mbps;
  LinkWaveform current_ = LinkWaveform::kWifi2Mbps;
  std::size_t fail_streak_ = 0;
  std::size_t success_streak_ = 0;
  std::uint64_t downshifts_ = 0;
  std::uint64_t upshifts_ = 0;
};

}  // namespace itb::mac
