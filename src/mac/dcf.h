// Slotted 802.11 DCF simulator used for the coexistence experiment (Fig. 12):
// one saturated AP->station flow (the iperf proxy) sharing channel 6 with
// interfering backscatter packets.
//
// With single-sideband backscatter the tag's packets land on channel 11 and
// never touch the victim flow; with double-sideband the mirror copy lands on
// channel 6 and acts as a hidden-node interferer (the tag cannot carrier
// sense, so its transmissions start regardless of the flow's activity and
// corrupt any overlapping frame).
#pragma once

#include <cstdint>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace itb::mac {

using itb::dsp::Real;

struct DcfConfig {
  Real slot_us = 9.0;
  Real sifs_us = 10.0;
  Real difs_us = 28.0;
  unsigned cw_min = 15;
  unsigned cw_max = 1023;
  /// Victim flow PHY rate (802.11g, Mbps) and frame size.
  Real phy_rate_mbps = 36.0;
  std::size_t frame_bytes = 1500;
  Real phy_overhead_us = 26.0;  ///< preamble + SIGNAL + SIFS+ACK equivalent
  /// TCP efficiency factor applied to the MAC goodput (ACK return traffic,
  /// TCP/IP headers): iperf reports ~0.85 of MAC-layer goodput.
  Real tcp_efficiency = 0.85;
  /// Rate adaptation: consecutive losses step the PHY rate down one notch
  /// (54 -> 48 -> 36 -> 24 ...), successes step it back up. Matches the
  /// paper's "default Wi-Fi rate adaptation".
  bool rate_adaptation = true;
};

struct InterfererConfig {
  Real packets_per_second = 0.0;
  /// Tag frame: 96 us short sync/header + 32 B at 2 Mbps = 224 us.
  Real packet_duration_us = 224.0;
  bool on_victim_channel = false;   ///< true for DSB's mirror copy
  /// Probability that an overlapping backscatter burst actually corrupts
  /// the victim frame. Backscattered signals are weak (the mirror copy
  /// arrives tens of dB below the AP's signal), so capture effect lets many
  /// overlapped frames survive; 0.65 matches the paper's 2 ft tag-receiver
  /// geometry against a 10 ft victim link (calibrated to Fig. 12).
  Real corruption_probability = 0.65;
};

struct DcfResult {
  Real throughput_mbps = 0.0;   ///< iperf-style goodput
  Real collision_rate = 0.0;    ///< fraction of victim frames corrupted
  Real airtime_busy_fraction = 0.0;
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_lost = 0;
};

/// Simulates `duration_s` seconds of a saturated flow with the given
/// interferer, returning goodput and loss statistics.
DcfResult simulate_dcf(const DcfConfig& cfg, const InterfererConfig& interferer,
                       Real duration_s, std::uint64_t seed);

}  // namespace itb::mac
