#include "mac/reservation.h"

#include <algorithm>
#include <cmath>

namespace itb::mac {

namespace {

Real clamp_probability(Real p) {
  if (std::isnan(p)) return 0.0;
  return std::clamp(p, Real{0.0}, Real{1.0});
}

}  // namespace

ReservationConfig ReservationConfig::validated() const {
  ReservationConfig out = *this;
  out.channel_busy_probability = clamp_probability(channel_busy_probability);
  out.cts_detection_probability = clamp_probability(cts_detection_probability);
  return out;
}

ReservationOutcome reservation_outcome(const ReservationConfig& raw) {
  const ReservationConfig cfg = raw.validated();
  const Real busy = cfg.channel_busy_probability;
  const Real cts = cfg.cts_detection_probability;
  ReservationOutcome out;
  switch (cfg.scheme) {
    case ReservationScheme::kNone:
      // Every advertisement carries data and independently risks collision.
      out.data_slots_per_event = 3.0;
      out.p_clean = 1.0 - busy;
      out.p_collision = busy;
      out.p_silent = 0.0;
      break;
    case ReservationScheme::kCtsToSelf:
      // The helper's own radio reserves the channel for the whole event.
      out.data_slots_per_event = 3.0;
      out.p_clean = 1.0;
      out.p_collision = 0.0;
      out.p_silent = 0.0;
      break;
    case ReservationScheme::kTagRts:
      // Channel 37 carries the RTS (control, no data); 38/39 carry data only
      // if the channel was free and the CTS was detected, else the tag stays
      // quiet for the rest of the event.
      out.data_slots_per_event = 2.0;
      out.p_clean = (1.0 - busy) * cts;
      out.p_collision = 0.0;
      out.p_silent = 1.0 - out.p_clean;
      out.control_overhead_us = cfg.ble_packet_us;
      break;
    case ReservationScheme::kDataAsRts:
      // Slot 1 carries data and doubles as the RTS: clean w.p. (1-busy),
      // collided w.p. busy. Slots 2 and 3 transmit only if slot 1 was clean
      // and the CTS was seen, and are then protected. Averaged per slot:
      out.data_slots_per_event = 3.0;
      out.p_clean = (1.0 - busy) * (1.0 + 2.0 * cts) / 3.0;
      out.p_collision = busy / 3.0;
      out.p_silent = 1.0 - out.p_clean - out.p_collision;
      break;
  }
  return out;
}

ReservationResult evaluate_reservation(const ReservationConfig& raw,
                                       std::size_t events, std::uint64_t seed) {
  const ReservationConfig cfg = raw.validated();
  // Domain-separated substream ("resv"); see DESIGN.md determinism rules.
  itb::dsp::Xoshiro256 rng(itb::dsp::splitmix64(seed ^ 0x72657376ULL));
  ReservationResult out;

  double clean_total = 0.0;
  double collided = 0.0;
  double transmitted = 0.0;
  double control_us = 0.0;

  for (std::size_t ev = 0; ev < events; ++ev) {
    // Three advertisements per event: channels 37, 38, 39.
    switch (cfg.scheme) {
      case ReservationScheme::kNone: {
        // Each backscatter attempt independently risks collision.
        for (int k = 0; k < 3; ++k) {
          transmitted += 1.0;
          if (rng.uniform() < cfg.channel_busy_probability) {
            collided += 1.0;
          } else {
            clean_total += 1.0;
          }
        }
        break;
      }
      case ReservationScheme::kCtsToSelf: {
        // The helper's radio reserves the channel for the whole event.
        for (int k = 0; k < 3; ++k) {
          transmitted += 1.0;
          clean_total += 1.0;
        }
        break;
      }
      case ReservationScheme::kTagRts: {
        // Advertisement on 37 carries the RTS (no data). If the channel is
        // free and the CTS is detected, 38/39 are protected.
        control_us += cfg.ble_packet_us;
        const bool channel_free = rng.uniform() >= cfg.channel_busy_probability;
        const bool cts_seen = rng.uniform() < cfg.cts_detection_probability;
        if (channel_free && cts_seen) {
          for (int k = 0; k < 2; ++k) {
            transmitted += 1.0;
            clean_total += 1.0;
          }
        } else {
          // Tag stays quiet for the rest of the event: no collision, but no
          // data either.
        }
        break;
      }
      case ReservationScheme::kDataAsRts: {
        // First packet carries data and doubles as the RTS.
        transmitted += 1.0;
        const bool first_clean = rng.uniform() >= cfg.channel_busy_probability;
        if (first_clean) {
          clean_total += 1.0;
          if (rng.uniform() < cfg.cts_detection_probability) {
            for (int k = 0; k < 2; ++k) {
              transmitted += 1.0;
              clean_total += 1.0;
            }
          }
        } else {
          collided += 1.0;
        }
        break;
      }
    }
  }

  if (events > 0) {
    out.clean_transmissions_per_event =
        clean_total / static_cast<double>(events);
    out.control_overhead_us = control_us / static_cast<double>(events);
  }
  out.collision_fraction = transmitted > 0.0 ? collided / transmitted : 0.0;
  return out;
}

}  // namespace itb::mac
