#include "mac/reservation.h"

namespace itb::mac {

ReservationResult evaluate_reservation(const ReservationConfig& cfg,
                                       std::size_t events, std::uint64_t seed) {
  itb::dsp::Xoshiro256 rng(seed);
  ReservationResult out;

  double clean_total = 0.0;
  double collided = 0.0;
  double transmitted = 0.0;
  double control_us = 0.0;

  for (std::size_t ev = 0; ev < events; ++ev) {
    // Three advertisements per event: channels 37, 38, 39.
    switch (cfg.scheme) {
      case ReservationScheme::kNone: {
        // Each backscatter attempt independently risks collision.
        for (int k = 0; k < 3; ++k) {
          transmitted += 1.0;
          if (rng.uniform() < cfg.channel_busy_probability) {
            collided += 1.0;
          } else {
            clean_total += 1.0;
          }
        }
        break;
      }
      case ReservationScheme::kCtsToSelf: {
        // The helper's radio reserves the channel for the whole event.
        for (int k = 0; k < 3; ++k) {
          transmitted += 1.0;
          clean_total += 1.0;
        }
        break;
      }
      case ReservationScheme::kTagRts: {
        // Advertisement on 37 carries the RTS (no data). If the channel is
        // free and the CTS is detected, 38/39 are protected.
        control_us += cfg.ble_packet_us;
        const bool channel_free = rng.uniform() >= cfg.channel_busy_probability;
        const bool cts_seen = rng.uniform() < cfg.cts_detection_probability;
        if (channel_free && cts_seen) {
          for (int k = 0; k < 2; ++k) {
            transmitted += 1.0;
            clean_total += 1.0;
          }
        } else {
          // Tag stays quiet for the rest of the event: no collision, but no
          // data either.
        }
        break;
      }
      case ReservationScheme::kDataAsRts: {
        // First packet carries data and doubles as the RTS.
        transmitted += 1.0;
        const bool first_clean = rng.uniform() >= cfg.channel_busy_probability;
        if (first_clean) {
          clean_total += 1.0;
          if (rng.uniform() < cfg.cts_detection_probability) {
            for (int k = 0; k < 2; ++k) {
              transmitted += 1.0;
              clean_total += 1.0;
            }
          }
        } else {
          collided += 1.0;
        }
        break;
      }
    }
  }

  out.clean_transmissions_per_event = clean_total / static_cast<double>(events);
  out.collision_fraction = transmitted > 0.0 ? collided / transmitted : 0.0;
  out.control_overhead_us = control_us / static_cast<double>(events);
  return out;
}

}  // namespace itb::mac
