// Query-reply protocol tying the two directions together (paper §2.5):
// the Wi-Fi device queries a tag over the OFDM-AM downlink; the addressed
// tag answers on the backscatter uplink during the next BLE advertisement.
// Multiple tags share the medium by being polled one after the other.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/rng.h"
#include "dsp/types.h"
#include "phycommon/bits.h"

namespace itb::mac {

using itb::dsp::Real;
using itb::phy::Bits;
using itb::phy::Bytes;

struct QueryFrame {
  std::uint8_t tag_address = 0;
  std::uint8_t opcode = 0;  ///< application command
  Bits to_bits() const;
  static std::optional<QueryFrame> from_bits(const Bits& bits);

  static constexpr std::size_t kBits = 8 + 8 + 4;  ///< addr + op + checksum
};

struct PolledTag {
  std::uint8_t address;
  Bytes pending_payload;  ///< what the tag will backscatter when polled
};

struct PollingStats {
  std::size_t queries_sent = 0;
  std::size_t replies_received = 0;
  double total_time_us = 0.0;
  /// Effective aggregate goodput across all tags, kbps.
  double aggregate_goodput_kbps = 0.0;
};

struct PollingConfig {
  /// Downlink bit rate (paper: 125 kbps with 2 OFDM symbols/bit).
  Real downlink_kbps = 125.0;
  /// Advertising interval bounds how often a tag can reply.
  Real advertising_interval_ms = 20.0;
  /// Per-query probability the downlink decode fails at the tag.
  Real downlink_error_rate = 0.01;
  /// Per-reply probability the backscatter packet is lost.
  Real uplink_error_rate = 0.05;

  /// Copy with degenerate values clamped, mirroring
  /// ReservationConfig::validated(): a zero/negative/NaN downlink rate or
  /// advertising interval would make poll_slot_us() zero, negative, or
  /// infinite (and slot math downstream divides by it); error rates are
  /// probabilities and clamp into [0, 1] (NaN -> 0).
  PollingConfig validated() const;
};

/// Air time of one TDMA poll slot (query transmission + the advertising
/// interval in which the addressed tag may reply), microseconds. Shared by
/// simulate_polling and the network simulator's slot schedule.
double poll_slot_us(const PollingConfig& cfg);

/// `payload_bits` delivered over `total_time_us` -> kbps; 0 (not NaN/inf)
/// when no air time was spent (zero tags, zero rounds, or empty payloads
/// delivered in zero time).
double safe_goodput_kbps(double payload_bits, double total_time_us);

/// Simulates one round-robin polling sweep over the tags, `rounds` times.
PollingStats simulate_polling(const std::vector<PolledTag>& tags,
                              const PollingConfig& cfg, std::size_t rounds,
                              std::uint64_t seed);

}  // namespace itb::mac
