#include "mac/arq.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phycommon/crc.h"

namespace itb::mac {

namespace {

std::uint16_t fragment_crc(const FragmentHeader& h,
                           std::span<const std::uint8_t> payload) {
  Bytes covered;
  covered.reserve(kFragmentHeaderBytes + payload.size());
  covered.push_back(h.message_seq);
  covered.push_back(h.frag_index);
  covered.push_back(h.frag_count);
  covered.insert(covered.end(), payload.begin(), payload.end());
  return itb::phy::crc16_x25(covered);
}

}  // namespace

// --- fragmentation -----------------------------------------------------------

std::size_t fragment_count(std::size_t message_bytes,
                           std::size_t fragment_payload_bytes) {
  if (fragment_payload_bytes == 0 || message_bytes == 0) return 1;
  return (message_bytes + fragment_payload_bytes - 1) / fragment_payload_bytes;
}

Bytes make_fragment(const Bytes& message, std::size_t fragment_payload_bytes,
                    std::uint8_t message_seq, std::size_t index) {
  const std::size_t count =
      fragment_count(message.size(), fragment_payload_bytes);
  if (count > kMaxFragmentsPerMessage) {
    throw std::invalid_argument("make_fragment: > 255 fragments");
  }
  if (index >= count) {
    throw std::invalid_argument("make_fragment: fragment index out of range");
  }
  const std::size_t per =
      fragment_payload_bytes == 0 ? message.size() : fragment_payload_bytes;
  const std::size_t begin = index * per;
  const std::size_t end = std::min(begin + per, message.size());

  FragmentHeader h;
  h.message_seq = message_seq;
  h.frag_index = static_cast<std::uint8_t>(index);
  h.frag_count = static_cast<std::uint8_t>(count);

  Bytes wire;
  wire.reserve(kFragmentOverheadBytes + (end - begin));
  wire.push_back(h.message_seq);
  wire.push_back(h.frag_index);
  wire.push_back(h.frag_count);
  wire.insert(wire.end(), message.begin() + static_cast<std::ptrdiff_t>(begin),
              message.begin() + static_cast<std::ptrdiff_t>(end));
  const std::uint16_t crc = fragment_crc(
      h, std::span<const std::uint8_t>(wire).subspan(kFragmentHeaderBytes));
  wire.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  wire.push_back(static_cast<std::uint8_t>(crc >> 8));
  return wire;
}

std::optional<ParsedFragment> parse_fragment(const Bytes& wire) {
  if (wire.size() < kFragmentOverheadBytes) return std::nullopt;
  ParsedFragment out;
  out.header.message_seq = wire[0];
  out.header.frag_index = wire[1];
  out.header.frag_count = wire[2];
  if (out.header.frag_count == 0 ||
      out.header.frag_index >= out.header.frag_count) {
    return std::nullopt;
  }
  out.payload.assign(wire.begin() + kFragmentHeaderBytes,
                     wire.end() - kFragmentCrcBytes);
  const auto stored = static_cast<std::uint16_t>(
      wire[wire.size() - 2] | (wire[wire.size() - 1] << 8));
  if (fragment_crc(out.header, out.payload) != stored) return std::nullopt;
  return out;
}

bool Reassembler::accept(const ParsedFragment& f) {
  if (started_ && f.header.message_seq != seq_) return false;
  if (!started_) {
    started_ = true;
    seq_ = f.header.message_seq;
    parts_.assign(f.header.frag_count, std::nullopt);
  }
  if (f.header.frag_index >= parts_.size()) return false;
  if (parts_[f.header.frag_index].has_value()) return false;  // duplicate
  parts_[f.header.frag_index] = f.payload;
  return true;
}

bool Reassembler::complete() const {
  if (!started_) return false;
  return std::all_of(parts_.begin(), parts_.end(),
                     [](const auto& p) { return p.has_value(); });
}

Bytes Reassembler::message() const {
  if (!complete()) return {};
  Bytes out;
  for (const auto& p : parts_) out.insert(out.end(), p->begin(), p->end());
  return out;
}

std::vector<std::uint8_t> Reassembler::missing() const {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i].has_value()) out.push_back(static_cast<std::uint8_t>(i));
  }
  return out;
}

void Reassembler::reset() {
  started_ = false;
  seq_ = 0;
  parts_.clear();
}

// --- retry policy ------------------------------------------------------------

ArqConfig ArqConfig::validated() const {
  ArqConfig out = *this;
  out.max_attempts = std::max<std::size_t>(out.max_attempts, 1);
  out.backoff_cap_slots =
      std::max(out.backoff_cap_slots, out.backoff_base_slots);
  // The wire header stores the fragment index in one byte; a pathological
  // fragment size that would overflow it degrades to "no fragmentation"
  // rather than producing unparseable frames.
  if (out.fragment_bytes > 0 &&
      fragment_count(4096, out.fragment_bytes) > kMaxFragmentsPerMessage) {
    out.fragment_bytes = 0;
  }
  return out;
}

std::size_t backoff_slots(const ArqConfig& cfg,
                          std::size_t consecutive_failures) {
  if (cfg.backoff_base_slots == 0 || consecutive_failures == 0) return 0;
  std::size_t slots = cfg.backoff_base_slots;
  for (std::size_t k = 1; k < consecutive_failures; ++k) {
    slots *= 2;
    if (slots >= cfg.backoff_cap_slots) return cfg.backoff_cap_slots;
  }
  return std::min(slots, cfg.backoff_cap_slots);
}

double arq_delivery_probability(double p_success, std::size_t max_attempts) {
  p_success = std::clamp(p_success, 0.0, 1.0);
  return 1.0 - std::pow(1.0 - p_success, static_cast<double>(max_attempts));
}

double arq_expected_attempts(double p_success, std::size_t max_attempts) {
  p_success = std::clamp(p_success, 0.0, 1.0);
  const auto n = static_cast<double>(max_attempts);
  if (p_success <= 0.0) return n;
  return (1.0 - std::pow(1.0 - p_success, n)) / p_success;
}

// --- rate / waveform fallback ------------------------------------------------

const char* waveform_name(LinkWaveform w) {
  switch (w) {
    case LinkWaveform::kWifi11Mbps: return "wifi-11M";
    case LinkWaveform::kWifi5_5Mbps: return "wifi-5.5M";
    case LinkWaveform::kWifi2Mbps: return "wifi-2M";
    case LinkWaveform::kWifi1Mbps: return "wifi-1M";
    case LinkWaveform::kZigbee: return "zigbee-250k";
  }
  return "?";
}

itb::wifi::DsssRate waveform_rate(LinkWaveform w) {
  switch (w) {
    case LinkWaveform::kWifi11Mbps: return itb::wifi::DsssRate::k11Mbps;
    case LinkWaveform::kWifi5_5Mbps: return itb::wifi::DsssRate::k5_5Mbps;
    case LinkWaveform::kWifi2Mbps: return itb::wifi::DsssRate::k2Mbps;
    case LinkWaveform::kWifi1Mbps:
    case LinkWaveform::kZigbee: return itb::wifi::DsssRate::k1Mbps;
  }
  return itb::wifi::DsssRate::k1Mbps;
}

LinkWaveform waveform_for_rate(itb::wifi::DsssRate rate) {
  switch (rate) {
    case itb::wifi::DsssRate::k11Mbps: return LinkWaveform::kWifi11Mbps;
    case itb::wifi::DsssRate::k5_5Mbps: return LinkWaveform::kWifi5_5Mbps;
    case itb::wifi::DsssRate::k2Mbps: return LinkWaveform::kWifi2Mbps;
    case itb::wifi::DsssRate::k1Mbps: return LinkWaveform::kWifi1Mbps;
  }
  return LinkWaveform::kWifi2Mbps;
}

double waveform_airtime_us(LinkWaveform w, std::size_t psdu_bytes) {
  if (is_wifi(w)) {
    return itb::wifi::frame_airtime_us(waveform_rate(w), psdu_bytes);
  }
  // 802.15.4 O-QPSK at 250 kbps: 4-byte preamble + SFD + PHR = 6 bytes of
  // SHR/PHR, 32 us per byte.
  constexpr double kUsPerByte = 32.0;
  return (6.0 + static_cast<double>(psdu_bytes)) * kUsPerByte;
}

FallbackConfig FallbackConfig::validated() const {
  FallbackConfig out = *this;
  out.down_after_failures = std::max<std::size_t>(out.down_after_failures, 1);
  out.up_after_successes = std::max<std::size_t>(out.up_after_successes, 1);
  return out;
}

RateFallbackController::RateFallbackController(const FallbackConfig& cfg,
                                               LinkWaveform initial)
    : cfg_(cfg.validated()), initial_(initial), current_(initial) {}

bool RateFallbackController::can_step_down() const {
  if (current_ == LinkWaveform::kZigbee) return false;
  if (current_ == LinkWaveform::kWifi1Mbps) return cfg_.enable_zigbee_fallback;
  return true;
}

void RateFallbackController::on_success() {
  fail_streak_ = 0;
  if (!cfg_.enable_rate_fallback || current_ == initial_) return;
  if (++success_streak_ >= cfg_.up_after_successes) {
    current_ = static_cast<LinkWaveform>(static_cast<std::uint8_t>(current_) - 1);
    ++upshifts_;
    success_streak_ = 0;
  }
}

void RateFallbackController::on_failure() {
  success_streak_ = 0;
  if (!cfg_.enable_rate_fallback) return;
  if (++fail_streak_ >= cfg_.down_after_failures && can_step_down()) {
    current_ = static_cast<LinkWaveform>(static_cast<std::uint8_t>(current_) + 1);
    ++downshifts_;
    fail_streak_ = 0;
  }
}

}  // namespace itb::mac
