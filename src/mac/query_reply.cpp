#include "mac/query_reply.h"

#include <algorithm>
#include <cmath>

namespace itb::mac {

namespace {

/// 4-bit XOR checksum over the two payload bytes, nibble-wise.
std::uint8_t checksum4(std::uint8_t addr, std::uint8_t op) {
  const std::uint8_t x = addr ^ op;
  return static_cast<std::uint8_t>((x >> 4) ^ (x & 0x0F));
}

Real clamp_probability(Real p) {
  if (std::isnan(p)) return 0.0;
  return std::clamp(p, Real{0.0}, Real{1.0});
}

}  // namespace

PollingConfig PollingConfig::validated() const {
  PollingConfig out = *this;
  if (!(out.downlink_kbps > 0.0)) out.downlink_kbps = PollingConfig{}.downlink_kbps;
  if (!(out.advertising_interval_ms > 0.0)) {
    out.advertising_interval_ms = PollingConfig{}.advertising_interval_ms;
  }
  out.downlink_error_rate = clamp_probability(out.downlink_error_rate);
  out.uplink_error_rate = clamp_probability(out.uplink_error_rate);
  return out;
}

double poll_slot_us(const PollingConfig& cfg) {
  const double query_us =
      static_cast<double>(QueryFrame::kBits) / cfg.downlink_kbps * 1e3;
  return query_us + cfg.advertising_interval_ms * 1e3;
}

double safe_goodput_kbps(double payload_bits, double total_time_us) {
  if (!(total_time_us > 0.0)) return 0.0;
  return payload_bits / (total_time_us / 1e3);
}

Bits QueryFrame::to_bits() const {
  Bits out;
  const Bits a = itb::phy::uint_to_bits_lsb_first(tag_address, 8);
  const Bits o = itb::phy::uint_to_bits_lsb_first(opcode, 8);
  const Bits c = itb::phy::uint_to_bits_lsb_first(checksum4(tag_address, opcode), 4);
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), o.begin(), o.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

std::optional<QueryFrame> QueryFrame::from_bits(const Bits& bits) {
  if (bits.size() < kBits) return std::nullopt;
  QueryFrame out;
  out.tag_address = static_cast<std::uint8_t>(itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(bits).subspan(0, 8)));
  out.opcode = static_cast<std::uint8_t>(itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(bits).subspan(8, 8)));
  const auto check = static_cast<std::uint8_t>(itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(bits).subspan(16, 4)));
  if (check != checksum4(out.tag_address, out.opcode)) return std::nullopt;
  return out;
}

PollingStats simulate_polling(const std::vector<PolledTag>& tags,
                              const PollingConfig& cfg, std::size_t rounds,
                              std::uint64_t seed) {
  // Domain-separated substream ("poll"); see DESIGN.md determinism rules.
  itb::dsp::Xoshiro256 rng(itb::dsp::splitmix64(seed ^ 0x706F6C6CULL));
  PollingStats out;
  double payload_bits_delivered = 0.0;

  for (std::size_t r = 0; r < rounds; ++r) {
    for (const PolledTag& tag : tags) {
      ++out.queries_sent;
      // Downlink query time + one advertising interval for the reply window.
      out.total_time_us += poll_slot_us(cfg);

      if (rng.uniform() < cfg.downlink_error_rate) continue;  // tag missed it
      if (rng.uniform() < cfg.uplink_error_rate) continue;    // reply lost

      ++out.replies_received;
      payload_bits_delivered +=
          static_cast<double>(tag.pending_payload.size()) * 8.0;
    }
  }

  out.aggregate_goodput_kbps =
      safe_goodput_kbps(payload_bits_delivered, out.total_time_us);
  return out;
}

}  // namespace itb::mac
