#include "mac/dcf.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace itb::mac {

namespace {

constexpr std::array<Real, 8> kRateLadder = {6, 9, 12, 18, 24, 36, 48, 54};

std::size_t rate_index(Real mbps) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < kRateLadder.size(); ++i) {
    if (std::abs(kRateLadder[i] - mbps) < std::abs(kRateLadder[best] - mbps)) {
      best = i;
    }
  }
  return best;
}

}  // namespace

DcfResult simulate_dcf(const DcfConfig& cfg, const InterfererConfig& interferer,
                       Real duration_s, std::uint64_t seed) {
  // Domain-separated substream ("dcf"): the same experiment seed handed to
  // another module must not replay these arrival/backoff draws.
  itb::dsp::Xoshiro256 rng(itb::dsp::splitmix64(seed ^ 0x646366ULL));
  const Real duration_us = duration_s * 1e6;

  // Pre-draw interferer packet start times (Poisson arrivals).
  std::vector<std::pair<Real, Real>> bursts;  // (start, end)
  if (interferer.on_victim_channel && interferer.packets_per_second > 0.0) {
    const Real mean_gap_us = 1e6 / interferer.packets_per_second;
    Real t = rng.uniform() * mean_gap_us;
    while (t < duration_us) {
      bursts.emplace_back(t, t + interferer.packet_duration_us);
      t += -mean_gap_us * std::log(std::max(rng.uniform(), 1e-12));
    }
  }
  std::size_t burst_cursor = 0;
  const auto overlaps_burst = [&](Real start, Real end) {
    while (burst_cursor < bursts.size() && bursts[burst_cursor].second < start) {
      ++burst_cursor;
    }
    return burst_cursor < bursts.size() && bursts[burst_cursor].first < end;
  };

  DcfResult out;
  Real now_us = 0.0;
  Real busy_us = 0.0;
  std::size_t rate_idx = rate_index(cfg.phy_rate_mbps);
  unsigned cw = cfg.cw_min;
  std::uint64_t bits_delivered = 0;
  unsigned consecutive_ok = 0;
  unsigned consecutive_fail = 0;
  constexpr unsigned kMaxRetries = 4;

  while (now_us < duration_us) {
    // One MSDU: transmit + up to kMaxRetries MAC retransmissions. The
    // tag is a hidden node (it cannot carrier-sense the victim flow), so a
    // retry collides whenever it overlaps a backscatter burst.
    bool delivered = false;
    for (unsigned attempt = 0; attempt <= kMaxRetries; ++attempt) {
      const Real backoff_slots = static_cast<Real>(rng.uniform_int(cw + 1));
      now_us += cfg.difs_us + backoff_slots * cfg.slot_us;
      if (now_us >= duration_us) break;

      const Real rate = kRateLadder[rate_idx];
      const Real frame_us =
          cfg.phy_overhead_us + static_cast<Real>(cfg.frame_bytes) * 8.0 / rate +
          cfg.sifs_us + 24.0;  // SIFS + ACK at base rate
      const Real start = now_us;
      const Real end = now_us + frame_us;
      const bool corrupted = overlaps_burst(start, end) &&
                             rng.uniform() < interferer.corruption_probability;
      now_us = end;
      busy_us += frame_us;

      if (!corrupted) {
        delivered = true;
        cw = cfg.cw_min;
        break;
      }
      ++out.frames_lost;  // counts corrupted attempts (airtime wasted)
      cw = std::min(cw * 2 + 1, cfg.cw_max);
      // Minstrel-style adaptation: step down only after two consecutive
      // failed attempts, step back up after a streak of successes. Rates
      // below 12 Mbps are not probed — collision losses are rate-agnostic,
      // and real rate controllers detect that (avoids a death spiral where
      // longer frames collide even more).
      constexpr std::size_t kMinRateIdx = 2;  // 12 Mbps
      if (cfg.rate_adaptation && ++consecutive_fail >= 2 &&
          rate_idx > kMinRateIdx) {
        --rate_idx;
        consecutive_fail = 0;
      }
    }
    if (now_us >= duration_us) break;

    if (delivered) {
      ++out.frames_ok;
      bits_delivered += cfg.frame_bytes * 8;
      consecutive_fail = 0;
      if (cfg.rate_adaptation && ++consecutive_ok >= 10 &&
          rate_idx + 1 < kRateLadder.size()) {
        ++rate_idx;
        consecutive_ok = 0;
      }
    } else {
      consecutive_ok = 0;
    }
  }

  const std::uint64_t total = out.frames_ok + out.frames_lost;
  out.collision_rate =
      total ? static_cast<Real>(out.frames_lost) / static_cast<Real>(total) : 0.0;
  out.throughput_mbps = cfg.tcp_efficiency *
                        static_cast<Real>(bits_delivered) / duration_us;
  out.airtime_busy_fraction = busy_us / duration_us;
  return out;
}

}  // namespace itb::mac
