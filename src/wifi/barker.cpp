#include "wifi/barker.h"

#include <cassert>
#include <cmath>

namespace itb::wifi {

void spread_symbol(Complex symbol, CVec& out) {
  for (int c : kBarker) out.push_back(symbol * static_cast<Real>(c));
}

CVec spread(std::span<const Complex> symbols) {
  CVec out;
  out.reserve(symbols.size() * kBarker.size());
  for (const Complex& s : symbols) spread_symbol(s, out);
  return out;
}

CVec despread(std::span<const Complex> chips) {
  assert(chips.size() % kBarker.size() == 0);
  const std::size_t n = chips.size() / kBarker.size();
  CVec out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t k = 0; k < kBarker.size(); ++k) {
      acc += chips[i * kBarker.size() + k] * static_cast<Real>(kBarker[k]);
    }
    out[i] = acc / static_cast<Real>(kBarker.size());
  }
  return out;
}

Real barker_correlation(std::span<const Complex> window) {
  assert(window.size() >= kBarker.size());
  Complex acc{0.0, 0.0};
  for (std::size_t k = 0; k < kBarker.size(); ++k) {
    acc += window[k] * static_cast<Real>(kBarker[k]);
  }
  return std::abs(acc);
}

}  // namespace itb::wifi
