#include "wifi/barker.h"

#include <cassert>
#include <cmath>

#include "dsp/simd/kernels.h"

namespace itb::wifi {

void spread_symbol(Complex symbol, CVec& out) {
  for (int c : kBarker) out.push_back(symbol * static_cast<Real>(c));
}

CVec spread(std::span<const Complex> symbols) {
  CVec out;
  out.reserve(symbols.size() * kBarker.size());
  for (const Complex& s : symbols) spread_symbol(s, out);
  return out;
}

CVec despread(std::span<const Complex> chips) {
  assert(chips.size() % kBarker.size() == 0);
  static const std::array<Real, 11> kBarkerReal = [] {
    std::array<Real, 11> b{};
    for (std::size_t k = 0; k < kBarker.size(); ++k) {
      b[k] = static_cast<Real>(kBarker[k]);
    }
    return b;
  }();
  const std::size_t n = chips.size() / kBarker.size();
  CVec out(n);
  // Vectorized across symbols; each symbol's chip accumulation stays
  // sequential (k ascending), so results match the scalar loop bit-for-bit.
  dsp::simd::active_kernels().despread_real(
      chips.data(), kBarkerReal.data(), kBarker.size(), n,
      static_cast<Real>(kBarker.size()), out.data());
  return out;
}

Real barker_correlation(std::span<const Complex> window) {
  assert(window.size() >= kBarker.size());
  Complex acc{0.0, 0.0};
  for (std::size_t k = 0; k < kBarker.size(); ++k) {
    acc += window[k] * static_cast<Real>(kBarker[k]);
  }
  return std::abs(acc);
}

}  // namespace itb::wifi
