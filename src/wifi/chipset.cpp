#include "wifi/chipset.h"

namespace itb::wifi {

ChipsetModel ar5001g() {
  return {.name = "Atheros AR5001G", .policy = SeedPolicy::kIncrementPerFrame};
}

ChipsetModel ar5007g() {
  return {.name = "Atheros AR5007G", .policy = SeedPolicy::kIncrementPerFrame};
}

ChipsetModel ar9580() {
  return {.name = "Atheros AR9580", .policy = SeedPolicy::kIncrementPerFrame};
}

ChipsetModel ath5k_fixed(std::uint8_t seed) {
  return {.name = "ath5k (GEN_SCRAMBLER pinned)",
          .policy = SeedPolicy::kFixed,
          .fixed_seed = seed};
}

ChipsetModel generic_random() {
  return {.name = "generic (spec-random)", .policy = SeedPolicy::kRandom};
}

SeedSequencer::SeedSequencer(const ChipsetModel& model, std::uint64_t rng_seed,
                             std::uint8_t initial)
    // Domain-separated substream ("chip"); member-init seeding is outside
    // detlint's token scan, so keep it compliant by hand.
    : model_(model),
      current_(initial),
      rng_(itb::dsp::splitmix64(rng_seed ^ 0x63686970ULL)) {
  if (model_.policy == SeedPolicy::kFixed) current_ = model_.fixed_seed;
  if (current_ == 0) current_ = 1;
}

std::uint8_t SeedSequencer::next() {
  switch (model_.policy) {
    case SeedPolicy::kFixed:
      return model_.fixed_seed;
    case SeedPolicy::kIncrementPerFrame: {
      const std::uint8_t out = current_;
      current_ = static_cast<std::uint8_t>(current_ % 127 + 1);
      return out;
    }
    case SeedPolicy::kRandom: {
      current_ = static_cast<std::uint8_t>(rng_.uniform_int(127) + 1);
      return current_;
    }
  }
  return 1;
}

SeedObservation classify_seeds(const std::vector<std::uint8_t>& seeds) {
  SeedObservation out;
  out.seeds = seeds;
  if (seeds.size() < 2) return out;
  bool inc = true;
  bool fixed = true;
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    if (seeds[i] != static_cast<std::uint8_t>(seeds[i - 1] % 127 + 1)) inc = false;
    if (seeds[i] != seeds[i - 1]) fixed = false;
  }
  out.looks_incrementing = inc;
  out.looks_fixed = fixed;
  return out;
}

}  // namespace itb::wifi
