#include "wifi/qam.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace itb::wifi {

Real qam_norm(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:
      return 1.0;
    case Modulation::kQpsk:
      return 1.0 / std::sqrt(2.0);
    case Modulation::k16Qam:
      return 1.0 / std::sqrt(10.0);
    case Modulation::k64Qam:
      return 1.0 / std::sqrt(42.0);
  }
  return 1.0;
}

namespace {

/// Gray mapping of bit groups to PAM levels per 802.11 Table 17-10/11/12:
/// 1 bit:  0 -> -1, 1 -> +1
/// 2 bits: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3
/// 3 bits: 000 -> -7, 001 -> -5, 011 -> -3, 010 -> -1,
///         110 -> +1, 111 -> +3, 101 -> +5, 100 -> +7
Real gray_to_level(std::span<const std::uint8_t> bits) {
  switch (bits.size()) {
    case 1:
      return bits[0] ? 1.0 : -1.0;
    case 2: {
      const unsigned v = static_cast<unsigned>(bits[0] << 1 | bits[1]);
      switch (v) {
        case 0b00:
          return -3.0;
        case 0b01:
          return -1.0;
        case 0b11:
          return 1.0;
        case 0b10:
          return 3.0;
      }
      return 0.0;
    }
    case 3: {
      const unsigned v =
          static_cast<unsigned>(bits[0] << 2 | bits[1] << 1 | bits[2]);
      switch (v) {
        case 0b000:
          return -7.0;
        case 0b001:
          return -5.0;
        case 0b011:
          return -3.0;
        case 0b010:
          return -1.0;
        case 0b110:
          return 1.0;
        case 0b111:
          return 3.0;
        case 0b101:
          return 5.0;
        case 0b100:
          return 7.0;
      }
      return 0.0;
    }
    default:
      assert(false && "unsupported PAM width");
      return 0.0;
  }
}

void level_to_gray(Real level, std::size_t width, Bits& out) {
  // Quantize to the nearest odd level in range, then inverse-map.
  const Real max_level = width == 1 ? 1.0 : (width == 2 ? 3.0 : 7.0);
  // A NaN soft value (e.g. propagated through an impairment chain or an
  // equalizer division by a null estimate) would sail through std::round and
  // std::clamp into static_cast<int>, which is undefined behaviour for NaN.
  // Pin it deterministically to the most negative level — the all-zeros Gray
  // group. +-inf need no guard: they clamp to +-max_level below.
  if (std::isnan(level)) level = -max_level;
  Real q = std::round((level + max_level) / 2.0) * 2.0 - max_level;
  q = std::clamp(q, -max_level, max_level);
  const int iv = static_cast<int>(q);
  switch (width) {
    case 1:
      out.push_back(iv > 0 ? 1 : 0);
      return;
    case 2: {
      switch (iv) {
        case -3:
          out.push_back(0);
          out.push_back(0);
          return;
        case -1:
          out.push_back(0);
          out.push_back(1);
          return;
        case 1:
          out.push_back(1);
          out.push_back(1);
          return;
        default:
          out.push_back(1);
          out.push_back(0);
          return;
      }
    }
    case 3: {
      unsigned v = 0;
      switch (iv) {
        case -7:
          v = 0b000;
          break;
        case -5:
          v = 0b001;
          break;
        case -3:
          v = 0b011;
          break;
        case -1:
          v = 0b010;
          break;
        case 1:
          v = 0b110;
          break;
        case 3:
          v = 0b111;
          break;
        case 5:
          v = 0b101;
          break;
        default:
          v = 0b100;
          break;
      }
      out.push_back((v >> 2) & 1);
      out.push_back((v >> 1) & 1);
      out.push_back(v & 1);
      return;
    }
    default:
      assert(false);
  }
}

/// Appends the demapped bits of one symbol to `out` without the per-symbol
/// Bits allocation of qam_unmap_symbol (the batched demap path).
void unmap_symbol_into(Complex symbol, Modulation m, Real inv_k, Bits& out) {
  const Real re = symbol.real() * inv_k;
  const Real im = symbol.imag() * inv_k;
  switch (m) {
    case Modulation::kBpsk:
      level_to_gray(re, 1, out);
      break;
    case Modulation::kQpsk:
      level_to_gray(re, 1, out);
      level_to_gray(im, 1, out);
      break;
    case Modulation::k16Qam:
      level_to_gray(re, 2, out);
      level_to_gray(im, 2, out);
      break;
    case Modulation::k64Qam:
      level_to_gray(re, 3, out);
      level_to_gray(im, 3, out);
      break;
  }
}

}  // namespace

Complex qam_map_symbol(std::span<const std::uint8_t> bits, Modulation m) {
  const Real k = qam_norm(m);
  switch (m) {
    case Modulation::kBpsk:
      assert(bits.size() == 1);
      return {k * gray_to_level(bits.subspan(0, 1)), 0.0};
    case Modulation::kQpsk:
      assert(bits.size() == 2);
      return {k * gray_to_level(bits.subspan(0, 1)),
              k * gray_to_level(bits.subspan(1, 1))};
    case Modulation::k16Qam:
      assert(bits.size() == 4);
      return {k * gray_to_level(bits.subspan(0, 2)),
              k * gray_to_level(bits.subspan(2, 2))};
    case Modulation::k64Qam:
      assert(bits.size() == 6);
      return {k * gray_to_level(bits.subspan(0, 3)),
              k * gray_to_level(bits.subspan(3, 3))};
  }
  return {0.0, 0.0};
}

CVec qam_modulate(const Bits& bits, Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  assert(bits.size() % bps == 0);
  CVec out;
  out.reserve(bits.size() / bps);
  for (std::size_t i = 0; i < bits.size(); i += bps) {
    out.push_back(qam_map_symbol(std::span<const std::uint8_t>(&bits[i], bps), m));
  }
  return out;
}

Bits qam_unmap_symbol(Complex symbol, Modulation m) {
  Bits out;
  unmap_symbol_into(symbol, m, 1.0 / qam_norm(m), out);
  return out;
}

Bits qam_demodulate(std::span<const Complex> symbols, Modulation m) {
  Bits out;
  out.reserve(symbols.size() * bits_per_symbol(m));
  const Real inv_k = 1.0 / qam_norm(m);
  for (const Complex& s : symbols) {
    unmap_symbol_into(s, m, inv_k, out);
  }
  return out;
}

}  // namespace itb::wifi
