// 802.11b transmitter: PSDU -> scrambled bits -> Barker/CCK chips -> complex
// baseband. This is both the reference Wi-Fi source for the coexistence
// experiments and the symbol source the interscatter tag maps onto its
// impedance states.
#pragma once

#include "dsp/types.h"
#include "phycommon/bits.h"
#include "wifi/plcp.h"
#include "wifi/rates.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;
using itb::phy::Bytes;

struct DsssTxConfig {
  DsssRate rate = DsssRate::k2Mbps;
  std::size_t samples_per_chip = 1;  ///< 11 Mchip/s * spc = sample rate
  /// Tag-mode framing (paper §2.3.3): replaces the 144 us long preamble with
  /// a short 48-bit sync so the whole frame fits in a BLE payload window.
  bool short_tag_preamble = false;

  Real sample_rate_hz() const {
    return 11e6 * static_cast<Real>(samples_per_chip);
  }
};

/// Result of modulating one frame.
struct DsssFrame {
  CVec baseband;        ///< complex samples at 11 Mchip/s * samples_per_chip
  CVec chips;           ///< pre-sampling chip stream (11 Mchip/s)
  std::size_t psdu_bits = 0;
  double duration_us = 0.0;
};

class DsssTransmitter {
 public:
  explicit DsssTransmitter(const DsssTxConfig& cfg = {});

  /// Modulates a PSDU into a frame (PLCP preamble + header + data).
  DsssFrame modulate(const Bytes& psdu) const;

  /// The scrambled air bits of the PSDU portion (useful for the tag, which
  /// runs the same scrambler in its baseband processor).
  Bits scrambled_psdu_bits(const Bytes& psdu) const;

  const DsssTxConfig& config() const { return cfg_; }

 private:
  DsssTxConfig cfg_;
};

}  // namespace itb::wifi
