// Gray-coded BPSK/QPSK/16-QAM/64-QAM constellation mapping with the 802.11
// normalization factors (17.3.5.8).
#pragma once

#include <span>

#include "dsp/types.h"
#include "phycommon/bits.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;

enum class Modulation { kBpsk, kQpsk, k16Qam, k64Qam };

constexpr std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:
      return 1;
    case Modulation::kQpsk:
      return 2;
    case Modulation::k16Qam:
      return 4;
    case Modulation::k64Qam:
      return 6;
  }
  return 0;
}

/// Normalization K_mod so average symbol energy is 1.
Real qam_norm(Modulation m);

/// Maps bits to constellation points; bits.size() must be a multiple of
/// bits_per_symbol(m).
CVec qam_modulate(const Bits& bits, Modulation m);

/// Hard-decision demapping (nearest constellation point).
Bits qam_demodulate(std::span<const Complex> symbols, Modulation m);

/// Single-symbol versions.
Complex qam_map_symbol(std::span<const std::uint8_t> bits, Modulation m);
Bits qam_unmap_symbol(Complex symbol, Modulation m);

}  // namespace itb::wifi
