#include "wifi/dsss_tx.h"

#include <cassert>

#include "dsp/resample.h"
#include "phycommon/lfsr.h"
#include "wifi/barker.h"
#include "wifi/cck.h"
#include "wifi/dpsk.h"

namespace itb::wifi {

using itb::phy::DsssScrambler;

DsssTransmitter::DsssTransmitter(const DsssTxConfig& cfg) : cfg_(cfg) {}

Bits DsssTransmitter::scrambled_psdu_bits(const Bytes& psdu) const {
  // Continue the scrambler through preamble + header exactly as modulate()
  // does, then return only the PSDU span.
  DsssScrambler scrambler(kLongPreambleScramblerSeed);
  Bits preamble(kSyncBits, 1);
  const Bits sfd = sfd_bits();
  preamble.insert(preamble.end(), sfd.begin(), sfd.end());

  PlcpHeader hdr;
  hdr.rate = cfg_.rate;
  hdr.service = PlcpHeader::service_for(cfg_.rate, psdu.size());
  hdr.length_us = length_field_us(cfg_.rate, psdu.size());
  const Bits header = build_plcp_header_bits(hdr);

  Bits head = preamble;
  head.insert(head.end(), header.begin(), header.end());
  (void)scrambler.scramble(head);

  return scrambler.scramble(itb::phy::bytes_to_bits_lsb_first(psdu));
}

DsssFrame DsssTransmitter::modulate(const Bytes& psdu) const {
  DsssScrambler scrambler(kLongPreambleScramblerSeed);

  // --- PLCP preamble (SYNC + SFD) and header, all at 1 Mbps DBPSK ---------
  Bits sync_sfd;
  if (cfg_.short_tag_preamble) {
    // Tag mode: 32 scrambled ones + SFD. Enough for the receiver's
    // self-synchronizing descrambler (7 bits) plus AGC settling.
    sync_sfd.assign(32, 1);
  } else {
    sync_sfd.assign(kSyncBits, 1);
  }
  const Bits sfd = sfd_bits();
  sync_sfd.insert(sync_sfd.end(), sfd.begin(), sfd.end());

  PlcpHeader hdr;
  hdr.rate = cfg_.rate;
  hdr.service = PlcpHeader::service_for(cfg_.rate, psdu.size());
  hdr.length_us = length_field_us(cfg_.rate, psdu.size());
  const Bits header = build_plcp_header_bits(hdr);

  Bits low_rate_bits = sync_sfd;
  low_rate_bits.insert(low_rate_bits.end(), header.begin(), header.end());
  const Bits low_rate_scrambled = scrambler.scramble(low_rate_bits);

  DifferentialEncoder ref_enc(0.0);
  CVec symbols;
  symbols.reserve(low_rate_scrambled.size());
  for (std::uint8_t b : low_rate_scrambled) {
    symbols.push_back(ref_enc.encode_increment(dbpsk_phase_increment(b)));
  }
  CVec chips = spread(symbols);

  // --- PSDU at the data rate ----------------------------------------------
  const Bits psdu_bits = itb::phy::bytes_to_bits_lsb_first(psdu);
  const Bits psdu_scrambled = scrambler.scramble(psdu_bits);
  const Real header_end_phase = ref_enc.phase();

  switch (cfg_.rate) {
    case DsssRate::k1Mbps: {
      DifferentialEncoder enc(header_end_phase);
      CVec s;
      for (std::uint8_t b : psdu_scrambled) {
        s.push_back(enc.encode_increment(dbpsk_phase_increment(b)));
      }
      const CVec c = spread(s);
      chips.insert(chips.end(), c.begin(), c.end());
      break;
    }
    case DsssRate::k2Mbps: {
      assert(psdu_scrambled.size() % 2 == 0);
      DifferentialEncoder enc(header_end_phase);
      CVec s;
      for (std::size_t i = 0; i + 1 < psdu_scrambled.size(); i += 2) {
        s.push_back(enc.encode_increment(
            dqpsk_phase_increment(psdu_scrambled[i], psdu_scrambled[i + 1])));
      }
      const CVec c = spread(s);
      chips.insert(chips.end(), c.begin(), c.end());
      break;
    }
    case DsssRate::k5_5Mbps:
    case DsssRate::k11Mbps: {
      CckModulator cck(cfg_.rate);
      cck.reset(header_end_phase);
      const CVec c = cck.modulate(psdu_scrambled);
      chips.insert(chips.end(), c.begin(), c.end());
      break;
    }
  }

  DsssFrame out;
  out.psdu_bits = psdu_bits.size();
  out.chips = chips;
  out.baseband = cfg_.samples_per_chip == 1
                     ? chips
                     : itb::dsp::hold_upsample(
                           std::span<const Complex>(chips), cfg_.samples_per_chip);
  out.duration_us = static_cast<double>(chips.size()) / 11.0;
  return out;
}

}  // namespace itb::wifi
