#include "wifi/cck.h"

#include <cassert>
#include <cmath>

#include "dsp/simd/kernels.h"
#include "wifi/dpsk.h"

namespace itb::wifi {

using itb::dsp::kPi;

std::array<Complex, kCckChipsPerSymbol> cck_codeword(Real p1, Real p2, Real p3,
                                                     Real p4) {
  const auto e = [](Real p) { return Complex{std::cos(p), std::sin(p)}; };
  return {
      e(p1 + p2 + p3 + p4),
      e(p1 + p3 + p4),
      e(p1 + p2 + p4),
      -e(p1 + p4),
      e(p1 + p2 + p3),
      e(p1 + p3),
      -e(p1 + p2),
      e(p1),
  };
}

Real cck_qpsk_phase(std::uint8_t d0, std::uint8_t d1) {
  const unsigned dibit = static_cast<unsigned>((d0 & 1u) << 1 | (d1 & 1u));
  switch (dibit) {
    case 0b00:
      return 0.0;
    case 0b01:
      return kPi / 2.0;
    case 0b10:
      return kPi;
    case 0b11:
      return 3.0 * kPi / 2.0;
  }
  return 0.0;
}

CckModulator::CckModulator(DsssRate rate) : rate_(rate) {
  assert(rate == DsssRate::k5_5Mbps || rate == DsssRate::k11Mbps);
  bits_per_symbol_ = rate == DsssRate::k5_5Mbps ? 4 : 8;
}

void CckModulator::reset(Real initial_phase_rad) {
  phase_ref_ = initial_phase_rad;
  symbol_index_ = 0;
}

std::array<Real, 3> CckModulator::data_phases(
    std::span<const std::uint8_t> data) const {
  if (rate_ == DsssRate::k11Mbps) {
    assert(data.size() == 6);
    return {cck_qpsk_phase(data[0], data[1]), cck_qpsk_phase(data[2], data[3]),
            cck_qpsk_phase(data[4], data[5])};
  }
  // 5.5 Mbps (16.4.6.5): p2 = d2*pi + pi/2, p3 = 0, p4 = d3*pi.
  assert(data.size() == 2);
  return {static_cast<Real>(data[0]) * kPi + kPi / 2.0, 0.0,
          static_cast<Real>(data[1]) * kPi};
}

CVec CckModulator::modulate(const Bits& bits) {
  assert(bits.size() % bits_per_symbol_ == 0);
  CVec out;
  out.reserve(bits.size() / bits_per_symbol_ * kCckChipsPerSymbol);
  for (std::size_t i = 0; i < bits.size(); i += bits_per_symbol_) {
    // p1: DQPSK on (d0, d1) with an extra pi on odd-numbered symbols.
    Real dphi = dqpsk_phase_increment(bits[i], bits[i + 1]);
    if (symbol_index_ % 2 == 1) dphi += kPi;
    phase_ref_ += dphi;

    const std::span<const std::uint8_t> data(&bits[i + 2], bits_per_symbol_ - 2);
    const std::array<Real, 3> p = data_phases(data);
    const auto cw = cck_codeword(phase_ref_, p[0], p[1], p[2]);
    out.insert(out.end(), cw.begin(), cw.end());
    ++symbol_index_;
  }
  return out;
}

CckDemodulator::CckDemodulator(DsssRate rate) : rate_(rate) {
  assert(rate == DsssRate::k5_5Mbps || rate == DsssRate::k11Mbps);
  bits_per_symbol_ = rate == DsssRate::k5_5Mbps ? 4 : 8;

  // Enumerate all (p2,p3,p4) candidates with p1 = 0.
  const std::size_t data_bits = bits_per_symbol_ - 2;
  const std::size_t n = 1u << data_bits;
  CckModulator helper(rate);
  for (std::size_t v = 0; v < n; ++v) {
    Candidate c;
    c.data_bits.resize(data_bits);
    for (std::size_t b = 0; b < data_bits; ++b) c.data_bits[b] = (v >> b) & 1;
    c.phases = helper.data_phases(c.data_bits);
    c.base_codeword = cck_codeword(0.0, c.phases[0], c.phases[1], c.phases[2]);
    candidates_.push_back(std::move(c));
  }
  for (std::size_t k = 0; k < kCckChipsPerSymbol; ++k) {
    columns_[k].resize(candidates_.size());
    for (std::size_t v = 0; v < candidates_.size(); ++v) {
      columns_[k][v] = candidates_[v].base_codeword[k];
    }
  }
}

void CckDemodulator::reset(Real reference_phase_rad) {
  phase_ref_ = reference_phase_rad;
  symbol_index_ = 0;
}

Bits CckDemodulator::demodulate(std::span<const Complex> chips,
                                Real reference_phase_rad) {
  reset(reference_phase_rad);
  assert(chips.size() % kCckChipsPerSymbol == 0);
  Bits out;
  for (std::size_t s = 0; s * kCckChipsPerSymbol < chips.size(); ++s) {
    const std::span<const Complex> block =
        chips.subspan(s * kCckChipsPerSymbol, kCckChipsPerSymbol);

    // Correlate against every base codeword; the strongest match gives the
    // data phases, and its complex correlation carries e^{j p1}. The search
    // runs chip-major so it vectorizes across the (up to 64) candidates;
    // each candidate's correlation still accumulates chips in ascending
    // order, so the result is bit-identical to the per-candidate loop.
    const itb::dsp::simd::KernelTable& kern = itb::dsp::simd::active_kernels();
    std::array<Complex, 64> acc{};
    for (std::size_t k = 0; k < kCckChipsPerSymbol; ++k) {
      kern.accum_scaled_conj(acc.data(), columns_[k].data(), block[k],
                             candidates_.size());
    }
    const Candidate* best = nullptr;
    Complex best_corr{0.0, 0.0};
    Real best_mag = -1.0;
    for (std::size_t v = 0; v < candidates_.size(); ++v) {
      const Real mag = std::norm(acc[v]);
      if (mag > best_mag) {
        best_mag = mag;
        best = &candidates_[v];
        best_corr = acc[v];
      }
    }
    assert(best != nullptr);

    // Differential recovery of p1: remove the odd-symbol pi, then quantize.
    const Real p1 = std::arg(best_corr);
    Real dphi = p1 - phase_ref_;
    if (symbol_index_ % 2 == 1) dphi -= kPi;
    const unsigned q = quantize_quarter(dphi);
    // Inverse of dqpsk_phase_increment's mapping 00,01,11,10 -> 0..3.
    switch (q) {
      case 0:
        out.push_back(0);
        out.push_back(0);
        break;
      case 1:
        out.push_back(0);
        out.push_back(1);
        break;
      case 2:
        out.push_back(1);
        out.push_back(1);
        break;
      case 3:
        out.push_back(1);
        out.push_back(0);
        break;
    }
    out.insert(out.end(), best->data_bits.begin(), best->data_bits.end());

    phase_ref_ = p1;
    ++symbol_index_;
  }
  return out;
}

}  // namespace itb::wifi
