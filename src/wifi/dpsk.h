// Differential BPSK / QPSK phase encoding used by 802.11b (and by the
// interscatter tag, which maps the phase states onto its four impedances).
#pragma once

#include <cstdint>
#include <span>

#include "dsp/types.h"
#include "phycommon/bits.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;

/// DBPSK phase increment for one bit: 0 -> 0, 1 -> pi
/// (IEEE 802.11-2016 Table 15-2).
Real dbpsk_phase_increment(std::uint8_t bit);

/// DQPSK phase increment for a dibit (d0 first in time):
/// 00 -> 0, 01 -> pi/2, 11 -> pi, 10 -> 3pi/2 (Table 15-3).
Real dqpsk_phase_increment(std::uint8_t d0, std::uint8_t d1);

/// Differential encoder state machine producing unit-magnitude symbols.
class DifferentialEncoder {
 public:
  explicit DifferentialEncoder(Real initial_phase_rad = 0.0)
      : phase_(initial_phase_rad) {}

  Complex encode_increment(Real dphi) {
    phase_ += dphi;
    return Complex{std::cos(phase_), std::sin(phase_)};
  }

  Real phase() const { return phase_; }

 private:
  Real phase_;
};

/// DBPSK-encodes a bit stream into symbols.
CVec dbpsk_encode(const Bits& bits, Real initial_phase_rad = 0.0);

/// DQPSK-encodes a bit stream (even length) into symbols.
CVec dqpsk_encode(const Bits& bits, Real initial_phase_rad = 0.0);

/// Differential decode: recovers bits from received symbols given the symbol
/// preceding the first one (reference).
Bits dbpsk_decode(std::span<const Complex> symbols, Complex reference);
Bits dqpsk_decode(std::span<const Complex> symbols, Complex reference);

/// Quantizes a phase to the nearest multiple of pi/2, returned as 0..3.
unsigned quantize_quarter(Real phase_rad);

}  // namespace itb::wifi
