// 11-chip Barker spreading used by 802.11b at 1 and 2 Mbps.
#pragma once

#include <array>
#include <span>

#include "dsp/types.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;

/// The 802.11 Barker sequence, chip 0 first: +1 −1 +1 +1 −1 +1 +1 +1 −1 −1 −1.
inline constexpr std::array<int, 11> kBarker = {1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1};

/// Spreads one complex PSK symbol into 11 chips.
void spread_symbol(Complex symbol, CVec& out);

/// Spreads a symbol stream: out.size() == symbols.size() * 11.
CVec spread(std::span<const Complex> symbols);

/// Despreads chips back into symbols by correlating with the Barker code.
/// chips.size() must be a multiple of 11. Output is normalized by 11 so an
/// ideal channel returns the original symbols.
CVec despread(std::span<const Complex> chips);

/// Correlation magnitude of an 11-chip window against the Barker code;
/// used for chip-timing acquisition.
Real barker_correlation(std::span<const Complex> window);

}  // namespace itb::wifi
