// OFDM-as-AM downlink (paper §2.4): choosing 802.11g payload bits so that
// selected OFDM symbols become "constant OFDM" symbols — all 48 data
// subcarriers carry the same constellation point, concentrating time-domain
// energy in the first sample and leaving the rest near zero. A passive peak
// detector reads the resulting amplitude profile.
//
// Encoding: bit 1 = (random symbol, constant symbol); bit 0 = (random,
// random). Two 4 us symbols per bit -> 125 kbps.
//
// The construction must thread three needles the paper calls out:
//   1. The scrambler: data bits equal the scrambler sequence (-> all-zero
//      scrambled) or its complement (-> all-one), so the seed must be known
//      (chipset.h policies).
//   2. The convolutional encoder's 6-bit memory: the last 6 scrambled bits
//      entering a constant symbol must match its fill value, so the
//      preceding random symbol's tail data bits are forced.
//   3. The cyclic prefix: a constant symbol's CP is near-zero, so the
//      preceding random symbol is re-rolled until its last time sample has
//      high amplitude, avoiding a false "gap" at the symbol boundary.
#pragma once

#include <cstdint>

#include "dsp/rng.h"
#include "wifi/ofdm_tx.h"

namespace itb::wifi {

struct AmDownlinkConfig {
  OfdmRate rate = OfdmRate::k36;       ///< paper uses 36 Mbps (16-QAM 3/4)
  std::uint8_t scrambler_seed = 0x5D;  ///< must match the chipset's next seed
  std::uint8_t constant_fill = 1;      ///< 1 -> all-ones coded stream
  /// Minimum |last time sample| of a random symbol preceding a constant one,
  /// relative to the symbol's RMS (CP-glitch avoidance).
  itb::dsp::Real min_tail_amplitude_ratio = 1.0;
  std::size_t max_reroll_attempts = 64;
};

struct AmFrame {
  OfdmTxResult tx;                 ///< the on-air 802.11g frame
  itb::phy::Bits message_bits;     ///< the downlink bits carried
  itb::phy::Bits data_field_bits;  ///< unscrambled DATA bits handed to the TX
  std::vector<bool> symbol_is_constant;  ///< per OFDM data symbol
  double bitrate_kbps = 125.0;
};

class AmDownlinkEncoder {
 public:
  AmDownlinkEncoder(const AmDownlinkConfig& cfg, std::uint64_t rng_seed);

  /// Builds a standards-compliant 802.11g frame whose amplitude profile
  /// encodes `message_bits` at 125 kbps.
  AmFrame encode(const itb::phy::Bits& message_bits);

  /// Data bits for one constant OFDM symbol at offset `bit_offset` within
  /// the scrambled stream: data = scramble_seq XOR fill.
  itb::phy::Bits constant_symbol_data_bits(std::size_t bit_offset,
                                           std::size_t n_dbps) const;

  const AmDownlinkConfig& config() const { return cfg_; }

 private:
  AmDownlinkConfig cfg_;
  itb::dsp::Xoshiro256 rng_;
};

/// Envelope-domain decoder mirror-imaging the tag's peak detector: classifies
/// each symbol pair from the amplitude profile. Used by tests and by the
/// backscatter::PeakDetector integration (which adds RC dynamics + noise).
struct AmDecodeResult {
  itb::phy::Bits bits;
  std::vector<itb::dsp::Real> symbol_envelope;  ///< mean |x| per data symbol
};
AmDecodeResult decode_am_envelope(const itb::dsp::CVec& baseband,
                                  std::size_t num_data_symbols,
                                  bool has_preamble = true);

}  // namespace itb::wifi
