// Rate-1/2 K=7 convolutional encoder (g0 = 133o, g1 = 171o), puncturing to
// 2/3 and 3/4, and a hard-decision Viterbi decoder with erasure support.
//
// The paper's AM-downlink trick (§2.4) leans on the observation that both
// generator polynomials have an odd number of taps, so an all-ones (or
// all-zeros) input produces an all-ones (all-zeros) coded stream.
#pragma once

#include <cstdint>

#include "phycommon/bits.h"

namespace itb::wifi {

using itb::phy::Bits;

enum class CodeRate { kRate1_2, kRate2_3, kRate3_4 };

constexpr double code_rate_value(CodeRate r) {
  switch (r) {
    case CodeRate::kRate1_2:
      return 0.5;
    case CodeRate::kRate2_3:
      return 2.0 / 3.0;
    case CodeRate::kRate3_4:
      return 0.75;
  }
  return 0.0;
}

/// Encodes bits with the 802.11 K=7 convolutional code at rate 1/2.
/// Output: a0 b0 a1 b1 ... (A = g0 = 133o, B = g1 = 171o). The encoder
/// starts from the given state (bit i = input from i+1 steps ago).
Bits convolutional_encode(const Bits& data, std::uint8_t initial_state = 0);

/// Punctures a rate-1/2 coded stream to 2/3 or 3/4 (802.11-2016 17.3.5.7).
Bits puncture(const Bits& coded, CodeRate rate);

/// Inserts erasures (value 2) where punctured bits were removed, returning a
/// stream aligned to the rate-1/2 trellis.
Bits depuncture_with_erasures(const Bits& punctured, CodeRate rate);

/// Hard-decision Viterbi decoder for the rate-1/2 mother code. Input may
/// contain erasure marks (2) which contribute no branch metric.
/// `data_len` is the number of information bits to recover.
Bits viterbi_decode(const Bits& coded_with_erasures, std::size_t data_len,
                    std::uint8_t initial_state = 0);

/// Convenience: decode a punctured stream end-to-end.
Bits decode_punctured(const Bits& punctured, CodeRate rate, std::size_t data_len);

}  // namespace itb::wifi
