#include "wifi/interleaver.h"

#include <cassert>

namespace itb::wifi {

std::vector<std::size_t> interleave_map(std::size_t n_cbps, std::size_t n_bpsc) {
  // Permutation from input index k to output index j, per 802.11-2016
  // 17.3.5.7 equations:
  //   i = (N_CBPS/16) * (k mod 16) + floor(k/16)
  //   j = s*floor(i/s) + (i + N_CBPS - floor(16*i/N_CBPS)) mod s,
  //   s = max(N_BPSC/2, 1)
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  std::vector<std::size_t> dest(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    const std::size_t j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    dest[k] = j;
  }
  return dest;
}

Bits interleave(const Bits& symbol_bits, std::size_t n_cbps, std::size_t n_bpsc) {
  assert(symbol_bits.size() == n_cbps);
  const auto dest = interleave_map(n_cbps, n_bpsc);
  Bits out(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) out[dest[k]] = symbol_bits[k];
  return out;
}

Bits deinterleave(const Bits& symbol_bits, std::size_t n_cbps, std::size_t n_bpsc) {
  assert(symbol_bits.size() == n_cbps);
  const auto dest = interleave_map(n_cbps, n_bpsc);
  Bits out(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) out[k] = symbol_bits[dest[k]];
  return out;
}

}  // namespace itb::wifi
