#include "wifi/ofdm_rx.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/correlate.h"
#include "dsp/fft.h"
#include "dsp/units.h"
#include "phycommon/lfsr.h"
#include "wifi/interleaver.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::Real;

OfdmReceiver::OfdmReceiver(const OfdmRxConfig& cfg) : cfg_(cfg) {}

std::optional<OfdmRxResult> OfdmReceiver::receive(const CVec& samples) const {
  // --- 1. Locate the LTF by cross-correlation ------------------------------
  const CVec ltf = long_training_field();
  const CVec ltf_period(ltf.begin() + 32, ltf.begin() + 32 + 64);
  if (samples.size() < 320 + kSymbolSamples) return std::nullopt;

  const CVec corr = itb::dsp::cross_correlate(samples, ltf_period);
  // Find the strongest correlation peak pair spaced 64 samples apart.
  std::size_t best = 0;
  Real best_mag = 0.0;
  for (std::size_t i = 0; i + 64 < corr.size(); ++i) {
    const Real m = std::abs(corr[i]) + std::abs(corr[i + 64]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  const Real norm = itb::dsp::normalized_peak(samples, ltf_period, best);
  if (norm < cfg_.detection_threshold) return std::nullopt;

  // `best` points at the first full LTF period; frame starts 160+32 earlier.
  if (best < 192) return std::nullopt;
  OfdmRxResult out;
  out.frame_start = best - 192;

  // --- 1b. Preamble CFO estimation + correction ----------------------------
  // Coarse: the STF repeats every 16 samples, so the lag-16 autocorrelation
  // phase measures CFO unambiguously to +-fs/32. Fine: the LTF's two
  // 64-sample periods give a 4x finer estimate, ambiguous at fs/64; the
  // coarse stage resolves the integer ambiguity.
  CVec corrected;
  const CVec* rx_samples = &samples;
  if (cfg_.enable_cfo_correction) {
    const auto autocorr_freq = [&](std::size_t from, std::size_t count,
                                   std::size_t lag) -> std::optional<Real> {
      Complex acc{0.0, 0.0};
      for (std::size_t i = from; i < from + count; ++i) {
        acc += std::conj(samples[i]) * samples[i + lag];
      }
      if (std::abs(acc) < 1e-12) return std::nullopt;
      // Cycles per sample.
      return std::arg(acc) / (itb::dsp::kTwoPi * static_cast<Real>(lag));
    };
    // STF body, staying clear of the frame edge and the LTF boundary.
    const auto coarse = autocorr_freq(out.frame_start + 16, 112, 16);
    const auto fine = autocorr_freq(best, 64, 64);
    if (fine) {
      Real f = *fine;
      if (coarse) {
        const Real ambiguity = 1.0 / 64.0;
        f += ambiguity * std::round((*coarse - f) / ambiguity);
      }
      out.cfo_est_hz = f * cfg_.sample_rate_hz;
      corrected.resize(samples.size());
      Real phase = 0.0;
      const Real step = -itb::dsp::kTwoPi * f;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        corrected[i] = samples[i] * Complex{std::cos(phase), std::sin(phase)};
        phase += step;
      }
      rx_samples = &corrected;
    }
  }
  const CVec& rx = *rx_samples;

  // --- 2. Channel estimation from the two LTF periods ----------------------
  const auto seq = ltf_sequence();
  const auto bin = [](int k) {
    return k >= 0 ? static_cast<std::size_t>(k)
                  : static_cast<std::size_t>(64 + k);
  };
  CVec chan(kFftSize, Complex{1.0, 0.0});
  {
    CVec est_acc(kFftSize, Complex{0.0, 0.0});
    for (int rep = 0; rep < 2; ++rep) {
      CVec t(rx.begin() + static_cast<std::ptrdiff_t>(best + 64 * rep),
             rx.begin() + static_cast<std::ptrdiff_t>(best + 64 * (rep + 1)));
      const Real scale = std::sqrt(52.0) / static_cast<Real>(kFftSize);
      for (Complex& v : t) v *= scale;
      const CVec f = itb::dsp::fft(t);
      for (int k = -26; k <= 26; ++k) {
        const Real ref = seq[static_cast<std::size_t>(k + 26)];
        if (ref == 0.0) continue;
        est_acc[bin(k)] += f[bin(k)] / ref;
      }
    }
    for (std::size_t i = 0; i < kFftSize; ++i) {
      if (std::abs(est_acc[i]) > 1e-12) chan[i] = est_acc[i] / 2.0;
    }
  }

  out.rssi_dbm = itb::dsp::watts_to_dbm(itb::dsp::mean_power(
      std::span<const Complex>(rx).subspan(best, 128)));

  // Equalization helper: extract + per-subcarrier divide.
  const auto equalized_symbol = [&](std::size_t start,
                                    std::size_t pilot_index) -> CVec {
    CVec sym(rx.begin() + static_cast<std::ptrdiff_t>(start),
             rx.begin() + static_cast<std::ptrdiff_t>(start + kSymbolSamples));
    // Equalize in frequency domain: redo extract with channel division.
    CVec time(sym.begin() + kCpLen, sym.end());
    const Real scale = std::sqrt(52.0) / static_cast<Real>(kFftSize);
    for (Complex& v : time) v *= scale;
    CVec freq = itb::dsp::fft(time);
    for (int k = -26; k <= 26; ++k) {
      const std::size_t b = bin(k);
      if (std::abs(chan[b]) > 1e-9) freq[b] /= chan[b];
    }
    // Pilot common-phase correction.
    const Real pol = pilot_polarity(pilot_index);
    Complex pacc{0.0, 0.0};
    for (std::size_t p = 0; p < kPilotCarriers; ++p) {
      const Complex expect{pol * kPilotBase[p], 0.0};
      pacc += freq[bin(kPilotIndices[p])] * std::conj(expect);
    }
    Complex rot{1.0, 0.0};
    if (std::abs(pacc) > 1e-12) rot = std::conj(pacc / std::abs(pacc));
    CVec data(kDataCarriers);
    for (std::size_t i = 0; i < kDataCarriers; ++i) {
      data[i] = freq[bin(data_subcarrier_index(i))] * rot;
    }
    return data;
  };

  // --- 3. SIGNAL field ------------------------------------------------------
  const std::size_t signal_start = best + 128;
  if (signal_start + kSymbolSamples > rx.size()) return std::nullopt;
  {
    const CVec sig_data = equalized_symbol(signal_start, 0);
    const itb::phy::Bits inter = qam_demodulate(sig_data, Modulation::kBpsk);
    const itb::phy::Bits coded = deinterleave(inter, 48, 1);
    const itb::phy::Bits field = viterbi_decode(coded, 24);
    unsigned ones = 0;
    for (int i = 0; i < 17; ++i) ones += field[i];
    if ((ones & 1u) != field[17]) {
      out.signal_ok = false;
      return out;
    }
    unsigned rate_bits = 0;
    for (int i = 0; i < 4; ++i) rate_bits = (rate_bits << 1) | field[i];
    bool rate_found = false;
    for (OfdmRate r : {OfdmRate::k6, OfdmRate::k9, OfdmRate::k12, OfdmRate::k18,
                       OfdmRate::k24, OfdmRate::k36, OfdmRate::k48, OfdmRate::k54}) {
      if (ofdm_params(r).signal_rate_bits == rate_bits) {
        out.rate = r;
        rate_found = true;
        break;
      }
    }
    if (!rate_found) {
      out.signal_ok = false;
      return out;
    }
    std::size_t length = 0;
    for (int i = 0; i < 12; ++i) length |= static_cast<std::size_t>(field[5 + i]) << i;
    out.signal_ok = true;

    // --- 4. DATA symbols ----------------------------------------------------
    const auto& p = ofdm_params(out.rate);
    // The SIGNAL LENGTH we transmit in this codebase is the DATA field byte
    // count (see OfdmTransmitter); symbols follow directly.
    const std::size_t data_bits = length * 8;
    const std::size_t num_symbols = data_bits / p.n_dbps;
    itb::phy::Bits punctured;
    punctured.reserve(num_symbols * p.n_cbps);
    std::size_t start = signal_start + kSymbolSamples;
    for (std::size_t s = 0; s < num_symbols; ++s) {
      if (start + kSymbolSamples > rx.size()) return out;
      const CVec data = equalized_symbol(start, s + 1);
      const itb::phy::Bits inter = qam_demodulate(data, p.modulation);
      const itb::phy::Bits sym = deinterleave(inter, p.n_cbps, p.n_bpsc);
      punctured.insert(punctured.end(), sym.begin(), sym.end());
      start += kSymbolSamples;
    }

    const itb::phy::Bits scrambled =
        decode_punctured(punctured, p.code_rate, data_bits);

    // --- 5. Descramble: recover the seed from the SERVICE field ------------
    // The first 7 data bits were zeros pre-scrambling, so the first 7
    // scrambled bits are the scrambler stream itself.
    const std::uint8_t seed = itb::phy::OfdmScrambler::seed_from_first_bits(
        std::span<const std::uint8_t>(scrambled).first(7));
    out.scrambler_seed = seed;
    if (seed == 0) return out;
    itb::phy::OfdmScrambler descrambler(seed);
    const itb::phy::Bits data_field = descrambler.process(scrambled);

    // PSDU sits after the 16 SERVICE bits; strip tail+pad.
    if (data_field.size() < 16 + 6) return out;
    const std::size_t psdu_bits = (data_field.size() - 16 - 6) / 8 * 8;
    const itb::phy::Bits psdu(data_field.begin() + 16,
                              data_field.begin() + 16 + static_cast<std::ptrdiff_t>(psdu_bits));
    out.psdu = itb::phy::bits_to_bytes_lsb_first(psdu);
  }
  return out;
}

}  // namespace itb::wifi
