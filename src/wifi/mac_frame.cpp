#include "wifi/mac_frame.h"

#include <algorithm>
#include <cassert>

#include "phycommon/crc.h"

namespace itb::wifi {

namespace {

/// Frame-control field (little-endian u16): version 0, type, subtype.
std::uint16_t frame_control(FrameType t) {
  switch (t) {
    case FrameType::kData:
      return 0x0008;  // type 2 (data), subtype 0
    case FrameType::kRts:
      return 0x00B4;  // type 1 (control), subtype 11
    case FrameType::kCts:
    case FrameType::kCtsToSelf:
      return 0x00C4;  // type 1, subtype 12
    case FrameType::kAck:
      return 0x00D4;  // type 1, subtype 13
  }
  return 0;
}

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const Bytes& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

}  // namespace

Bytes serialize(const MacFrame& frame) {
  Bytes out;
  put_u16(out, frame_control(frame.type));
  put_u16(out, frame.duration_us);
  out.insert(out.end(), frame.addr1.begin(), frame.addr1.end());
  switch (frame.type) {
    case FrameType::kCts:
    case FrameType::kCtsToSelf:
    case FrameType::kAck:
      break;  // addr1 only
    case FrameType::kRts:
      out.insert(out.end(), frame.addr2.begin(), frame.addr2.end());
      break;
    case FrameType::kData: {
      out.insert(out.end(), frame.addr2.begin(), frame.addr2.end());
      out.insert(out.end(), frame.addr3.begin(), frame.addr3.end());
      put_u16(out, static_cast<std::uint16_t>(frame.sequence << 4));
      out.insert(out.end(), frame.body.begin(), frame.body.end());
      break;
    }
  }
  const std::uint32_t fcs = itb::phy::crc32_ieee(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFF));
  }
  return out;
}

std::optional<ParsedMacFrame> parse(const Bytes& psdu) {
  if (psdu.size() < kCtsBytes) return std::nullopt;

  ParsedMacFrame out;
  const std::uint16_t fc = get_u16(psdu, 0);
  switch (fc) {
    case 0x0008:
      out.frame.type = FrameType::kData;
      break;
    case 0x00B4:
      out.frame.type = FrameType::kRts;
      break;
    case 0x00C4:
      out.frame.type = FrameType::kCts;
      break;
    case 0x00D4:
      out.frame.type = FrameType::kAck;
      break;
    default:
      return std::nullopt;
  }
  out.frame.duration_us = get_u16(psdu, 2);
  std::copy_n(psdu.begin() + 4, 6, out.frame.addr1.begin());

  std::size_t body_start = 10;
  switch (out.frame.type) {
    case FrameType::kCts:
    case FrameType::kCtsToSelf:
    case FrameType::kAck:
      break;
    case FrameType::kRts:
      if (psdu.size() < kRtsBytes) return std::nullopt;
      std::copy_n(psdu.begin() + 10, 6, out.frame.addr2.begin());
      body_start = 16;
      break;
    case FrameType::kData:
      if (psdu.size() < kDataHeaderBytes + kFcsBytes) return std::nullopt;
      std::copy_n(psdu.begin() + 10, 6, out.frame.addr2.begin());
      std::copy_n(psdu.begin() + 16, 6, out.frame.addr3.begin());
      out.frame.sequence = static_cast<std::uint16_t>(get_u16(psdu, 22) >> 4);
      body_start = 24;
      break;
  }

  const std::size_t body_len = psdu.size() - body_start - kFcsBytes;
  out.frame.body.assign(psdu.begin() + static_cast<std::ptrdiff_t>(body_start),
                        psdu.begin() + static_cast<std::ptrdiff_t>(body_start + body_len));

  const Bytes without_fcs(psdu.begin(), psdu.end() - 4);
  const std::uint32_t expect = itb::phy::crc32_ieee(without_fcs);
  std::uint32_t got = 0;
  for (int i = 0; i < 4; ++i) {
    got |= static_cast<std::uint32_t>(psdu[psdu.size() - 4 + i]) << (8 * i);
  }
  out.fcs_ok = expect == got;
  return out;
}

}  // namespace itb::wifi
