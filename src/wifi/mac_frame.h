// Minimal 802.11 MAC framing: data frames with a 24-byte header and CRC-32
// FCS, plus the control frames (RTS / CTS / CTS-to-Self) the paper's
// channel-reservation optimizations use (§2.3.3).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "phycommon/bits.h"

namespace itb::wifi {

using itb::phy::Bytes;
using MacAddress = std::array<std::uint8_t, 6>;

inline constexpr MacAddress kBroadcast = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};

enum class FrameType : std::uint8_t {
  kData,
  kRts,
  kCts,
  kCtsToSelf,  ///< a CTS addressed to the sender itself
  kAck,
};

struct MacFrame {
  FrameType type = FrameType::kData;
  std::uint16_t duration_us = 0;
  MacAddress addr1 = kBroadcast;  ///< receiver
  MacAddress addr2{};             ///< transmitter (absent in CTS/ACK)
  MacAddress addr3{};             ///< BSSID (data frames)
  std::uint16_t sequence = 0;
  Bytes body;  ///< payload for data frames
};

/// Serializes a frame into a PSDU (header + body + FCS).
Bytes serialize(const MacFrame& frame);

/// Parses a PSDU; nullopt on truncation. `fcs_ok` reports CRC-32 validity.
struct ParsedMacFrame {
  MacFrame frame;
  bool fcs_ok = false;
};
std::optional<ParsedMacFrame> parse(const Bytes& psdu);

/// PSDU sizes (bytes) of the fixed control frames.
inline constexpr std::size_t kRtsBytes = 20;
inline constexpr std::size_t kCtsBytes = 14;
inline constexpr std::size_t kAckBytes = 14;
inline constexpr std::size_t kDataHeaderBytes = 24;
inline constexpr std::size_t kFcsBytes = 4;

}  // namespace itb::wifi
