#include "wifi/ofdm_tx.h"

#include <cassert>

#include "phycommon/lfsr.h"
#include "wifi/interleaver.h"

namespace itb::wifi {

OfdmTransmitter::OfdmTransmitter(const OfdmTxConfig& cfg) : cfg_(cfg) {
  assert((cfg_.scrambler_seed & 0x7F) != 0);
}

std::size_t OfdmTransmitter::data_field_bits(std::size_t psdu_bytes) const {
  const auto& p = ofdm_params(cfg_.rate);
  const std::size_t payload_bits = 16 + 8 * psdu_bytes + 6;  // SERVICE+PSDU+tail
  const std::size_t symbols = (payload_bits + p.n_dbps - 1) / p.n_dbps;
  return symbols * p.n_dbps;
}

OfdmTxResult OfdmTransmitter::transmit(const Bytes& psdu) const {
  const std::size_t total_bits = data_field_bits(psdu.size());
  Bits data(total_bits, 0);
  // SERVICE: 16 zero bits (first 7 are the scrambler-init field).
  const Bits psdu_bits = itb::phy::bytes_to_bits_lsb_first(psdu);
  std::copy(psdu_bits.begin(), psdu_bits.end(), data.begin() + 16);
  // Tail + pad already zero.
  return transmit_data_bits(data);
}

OfdmTxResult OfdmTransmitter::transmit_data_bits(const Bits& data_field) const {
  const auto& p = ofdm_params(cfg_.rate);
  assert(data_field.size() % p.n_dbps == 0);
  const std::size_t num_symbols = data_field.size() / p.n_dbps;

  // Scramble, then zero the 6 tail bits (17.3.5.3): they sit right after the
  // SERVICE+PSDU span. For the raw path we scramble everything and do not
  // re-zero (the AM shaper accounts for tails itself when it matters).
  itb::phy::OfdmScrambler scrambler(cfg_.scrambler_seed);
  Bits scrambled = scrambler.process(data_field);

  OfdmTxResult out;
  out.scrambled_bits = scrambled;
  out.num_data_symbols = num_symbols;

  if (cfg_.include_preamble) {
    const CVec stf = short_training_field();
    const CVec ltf = long_training_field();
    out.baseband.insert(out.baseband.end(), stf.begin(), stf.end());
    out.baseband.insert(out.baseband.end(), ltf.begin(), ltf.end());
    const CVec sig = build_signal_symbol(cfg_.rate, data_field.size() / 8);
    out.baseband.insert(out.baseband.end(), sig.begin(), sig.end());
  }

  // Encode the entire DATA field once (the code runs across symbol
  // boundaries), then puncture and split into symbols.
  const Bits coded_all = convolutional_encode(scrambled);
  const Bits punctured = puncture(coded_all, p.code_rate);
  assert(punctured.size() == num_symbols * p.n_cbps);

  for (std::size_t s = 0; s < num_symbols; ++s) {
    const Bits sym(punctured.begin() + static_cast<std::ptrdiff_t>(s * p.n_cbps),
                   punctured.begin() + static_cast<std::ptrdiff_t>((s + 1) * p.n_cbps));
    const Bits inter = interleave(sym, p.n_cbps, p.n_bpsc);
    const CVec constellation = qam_modulate(inter, p.modulation);
    // Data symbols start at pilot index 1 (SIGNAL is index 0).
    const CVec sym_samples = build_ofdm_symbol(constellation, s + 1);
    out.baseband.insert(out.baseband.end(), sym_samples.begin(), sym_samples.end());
  }

  out.duration_us =
      static_cast<double>(out.baseband.size()) / 20.0;  // 20 Msps
  return out;
}

}  // namespace itb::wifi
