// 802.11b rate set, air-time arithmetic, and the paper's payload-budget
// relationship: how many Wi-Fi payload bytes fit inside one BLE advertising
// window (§2.3.3: 38 / 104 / 209 bytes at 2 / 5.5 / 11 Mbps; 1 Mbps does not
// fit).
#pragma once

#include <cstddef>
#include <string_view>

namespace itb::wifi {

enum class DsssRate {
  k1Mbps,
  k2Mbps,
  k5_5Mbps,
  k11Mbps,
};

constexpr double rate_mbps(DsssRate r) {
  switch (r) {
    case DsssRate::k1Mbps:
      return 1.0;
    case DsssRate::k2Mbps:
      return 2.0;
    case DsssRate::k5_5Mbps:
      return 5.5;
    case DsssRate::k11Mbps:
      return 11.0;
  }
  return 0.0;
}

constexpr std::string_view rate_name(DsssRate r) {
  switch (r) {
    case DsssRate::k1Mbps:
      return "1 Mbps";
    case DsssRate::k2Mbps:
      return "2 Mbps";
    case DsssRate::k5_5Mbps:
      return "5.5 Mbps";
    case DsssRate::k11Mbps:
      return "11 Mbps";
  }
  return "?";
}

/// SIGNAL field encoding: rate in units of 100 kbps.
constexpr unsigned signal_field(DsssRate r) {
  switch (r) {
    case DsssRate::k1Mbps:
      return 0x0A;
    case DsssRate::k2Mbps:
      return 0x14;
    case DsssRate::k5_5Mbps:
      return 0x37;
    case DsssRate::k11Mbps:
      return 0x6E;
  }
  return 0;
}

/// Long PLCP preamble (144 us) + header (48 us).
constexpr double kLongPreambleUs = 144.0;
constexpr double kPlcpHeaderUs = 48.0;
constexpr double kPlcpOverheadUs = kLongPreambleUs + kPlcpHeaderUs;

/// PSDU air time in microseconds (ceil per the LENGTH field rules).
constexpr double psdu_airtime_us(DsssRate r, std::size_t psdu_bytes) {
  const double bits = static_cast<double>(psdu_bytes) * 8.0;
  return bits / rate_mbps(r);
}

constexpr double frame_airtime_us(DsssRate r, std::size_t psdu_bytes) {
  return kPlcpOverheadUs + psdu_airtime_us(r, psdu_bytes);
}

/// Maximum PSDU bytes whose *payload section* fits in `window_us`
/// microseconds of backscatter time. The tag synthesizes preamble + header +
/// PSDU inside the BLE payload window, so the whole frame must fit.
constexpr std::size_t max_psdu_bytes_in_window(DsssRate r, double window_us) {
  const double usable = window_us - kPlcpOverheadUs;
  if (usable <= 0.0) return 0;
  return static_cast<std::size_t>(usable * rate_mbps(r) / 8.0);
}

/// The paper's interscatter prototype synthesizes preamble+header at the
/// same rate as data and skips the 144 us long preamble in favor of a short
/// sync (it must fit in a 248 us BLE payload). This helper reproduces the
/// paper's accounting, which charges only the PSDU against the window:
/// 248 us * rate / 8 -> 62 / 170 / 341 raw, and with header+sync overhead
/// lands at the paper's 38 / 104 / 209 usable payload bytes.
constexpr std::size_t paper_payload_bytes(DsssRate r, double window_us = 248.0) {
  // Paper overhead inside the window: 96 us short sync+header equivalent.
  constexpr double kShortOverheadUs = 96.0;
  const double usable = window_us - kShortOverheadUs;
  if (usable <= 0.0) return 0;
  return static_cast<std::size_t>(usable * rate_mbps(r) / 8.0);
}

}  // namespace itb::wifi
