#include "wifi/dsss_rx.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "dsp/correlate.h"
#include "dsp/units.h"
#include "phycommon/crc.h"
#include "phycommon/lfsr.h"
#include "wifi/barker.h"
#include "wifi/cck.h"
#include "wifi/dpsk.h"

namespace itb::wifi {

using itb::phy::DsssScrambler;

DsssReceiver::DsssReceiver(const DsssRxConfig& cfg) : cfg_(cfg) {}

namespace {

/// The Barker sequence as a complex correlation pattern (+/-1, zero phase).
CVec barker_pattern() {
  CVec p(kBarker.size());
  for (std::size_t k = 0; k < kBarker.size(); ++k) {
    p[k] = Complex{static_cast<Real>(kBarker[k]), 0.0};
  }
  return p;
}

}  // namespace

std::optional<DsssRxResult> DsssReceiver::receive(const CVec& samples) const {
  // --- 1. Decimate to chip rate (mid-chip sampling) ------------------------
  const std::size_t spc = cfg_.samples_per_chip;
  CVec chips;
  if (spc == 1) {
    chips = samples;
  } else {
    chips.resize(samples.size() / spc);
    for (std::size_t i = 0; i < chips.size(); ++i) {
      // Average the chip interval: acts as the chip matched filter.
      Complex acc{0.0, 0.0};
      for (std::size_t k = 0; k < spc; ++k) acc += samples[i * spc + k];
      chips[i] = acc / static_cast<Real>(spc);
    }
  }
  if (chips.size() < 2 * kBarker.size()) return std::nullopt;

  // --- 2. Chip-timing acquisition over the 11 possible alignments ----------
  // One sliding correlation over the probe region yields every
  // (offset, symbol) Barker metric at once; the correlate API picks the
  // direct or spectral path by size.
  const std::size_t probe_symbols = 16;
  const std::size_t probe_len =
      std::min(chips.size(), (probe_symbols + 1) * kBarker.size());
  static const CVec pattern = barker_pattern();
  const CVec corr = itb::dsp::cross_correlate(
      std::span<const Complex>(chips).first(probe_len), pattern);
  std::array<Real, kBarker.size()> offset_metric{};
  std::size_t best_off = 0;
  Real best_metric = -1.0;
  for (std::size_t off = 0; off < kBarker.size(); ++off) {
    Real m = 0.0;
    for (std::size_t s = 0; s < probe_symbols; ++s) {
      const std::size_t at = off + s * kBarker.size();
      if (at >= corr.size()) break;
      m += std::abs(corr[at]);
    }
    offset_metric[off] = m;
    if (m > best_metric) {
      best_metric = m;
      best_off = off;
    }
  }
  const Real per_symbol = best_metric / static_cast<Real>(probe_symbols);
  const Real input_rms = itb::dsp::rms(std::span<const Complex>(chips).first(
      std::min<std::size_t>(chips.size(), probe_symbols * kBarker.size())));
  if (input_rms <= 0.0 ||
      per_symbol < cfg_.acquisition_threshold * input_rms *
                       static_cast<Real>(kBarker.size())) {
    return std::nullopt;
  }

  // --- 2b. Timing refinement ----------------------------------------------
  // A dispersive channel smears correlation energy across adjacent chip
  // alignments; when a neighbour's metric is within 10% of the winner, break
  // the near-tie by despread-domain energy (the quantity the demodulator
  // actually consumes).
  if (cfg_.refine_timing) {
    const auto despread_energy = [&](std::size_t off) -> Real {
      const std::size_t n =
          std::min(probe_symbols, (chips.size() - off) / kBarker.size());
      if (n == 0) return -1.0;
      const CVec syms = despread(std::span<const Complex>(chips).subspan(
          off, n * kBarker.size()));
      Real acc = 0.0;
      for (const Complex& s : syms) acc += std::norm(s);
      return acc / static_cast<Real>(n);
    };
    Real best_energy = despread_energy(best_off);
    for (const std::size_t cand :
         {(best_off + kBarker.size() - 1) % kBarker.size(),
          (best_off + 1) % kBarker.size()}) {
      if (offset_metric[cand] < 0.9 * best_metric) continue;
      const Real e = despread_energy(cand);
      if (e > best_energy) {
        best_energy = e;
        best_off = cand;
      }
    }
  }

  // --- 2c. CFO estimation from the preamble -------------------------------
  // Every differential product of neighbouring preamble symbols is (+-1) *
  // e^{j theta}, theta the per-symbol rotation: squaring removes the DBPSK
  // sign so arg(sum d^2)/2 estimates theta, then the whole chip stream is
  // derotated at theta/11 per chip and decoding proceeds as if on-channel.
  Real cfo_est_hz = 0.0;
  if (cfg_.enable_cfo_correction) {
    const std::size_t est_symbols =
        std::min<std::size_t>(32, (chips.size() - best_off) / kBarker.size());
    if (est_symbols >= 4) {
      const CVec syms = despread(std::span<const Complex>(chips).subspan(
          best_off, est_symbols * kBarker.size()));
      Complex acc{0.0, 0.0};
      for (std::size_t k = 0; k + 1 < syms.size(); ++k) {
        const Complex d = syms[k + 1] * std::conj(syms[k]);
        acc += d * d;
      }
      if (std::abs(acc) > 1e-12) {
        const Real theta = 0.5 * std::arg(acc);
        const Real phi_chip = theta / static_cast<Real>(kBarker.size());
        Real phase = 0.0;
        for (std::size_t i = 0; i < chips.size(); ++i) {
          chips[i] *= Complex{std::cos(phase), std::sin(phase)};
          phase -= phi_chip;
        }
        cfo_est_hz =
            phi_chip * cfg_.chip_rate_hz / itb::dsp::kTwoPi;
      }
    }
  }

  // --- 3. Despread the preamble region and find the SFD --------------------
  const std::size_t avail_symbols = (chips.size() - best_off) / kBarker.size();
  const std::size_t search_symbols =
      std::min(avail_symbols, cfg_.max_sync_search_bits);
  CVec pre_symbols = despread(std::span<const Complex>(chips).subspan(
      best_off, search_symbols * kBarker.size()));

  // DBPSK-decode with the first symbol as reference, then descramble.
  // The self-synchronizing descrambler flushes garbage within 7 bits.
  const itb::phy::Bits raw =
      dbpsk_decode(std::span<const Complex>(pre_symbols).subspan(1),
                   pre_symbols[0]);
  DsssScrambler desc(0x00);
  const itb::phy::Bits descrambled = desc.descramble(raw);

  const Bits sfd = sfd_bits();
  std::size_t sfd_end = 0;
  bool found = false;
  for (std::size_t i = 7; i + sfd.size() <= descrambled.size(); ++i) {
    if (std::equal(sfd.begin(), sfd.end(), descrambled.begin() + static_cast<std::ptrdiff_t>(i))) {
      sfd_end = i + sfd.size();
      found = true;
      break;
    }
  }
  if (!found) return std::nullopt;

  // --- 4. PLCP header (48 bits at 1 Mbps) -----------------------------------
  // Bit k of `descrambled` came from symbol k+1 of pre_symbols.
  const std::size_t header_first_symbol = sfd_end + 1;
  const std::size_t header_last_symbol = header_first_symbol + 48;
  if (header_last_symbol > search_symbols) return std::nullopt;
  if (sfd_end + 48 > descrambled.size()) return std::nullopt;

  const Bits header_bits(descrambled.begin() + static_cast<std::ptrdiff_t>(sfd_end),
                         descrambled.begin() + static_cast<std::ptrdiff_t>(sfd_end + 48));
  const auto hdr = parse_plcp_header_bits(header_bits);

  DsssRxResult out;
  out.sync_offset_samples = best_off * spc;
  out.cfo_est_hz = cfo_est_hz;
  out.rssi_dbm = itb::dsp::watts_to_dbm(itb::dsp::mean_power(
      std::span<const Complex>(chips).subspan(best_off,
                                              probe_symbols * kBarker.size())));
  if (!hdr) {
    out.header_ok = false;
    return out;
  }
  out.header = *hdr;
  out.header_ok = true;

  // --- 5. PSDU at the payload rate ------------------------------------------
  // The self-synchronizing descrambler's state is the last 7 scrambled bits,
  // so feeding the raw preamble+header bits leaves it correctly positioned
  // for the PSDU.
  DsssScrambler psdu_desc(0x00);
  for (std::size_t i = 0; i < sfd_end + 48 && i < raw.size(); ++i) {
    psdu_desc.descramble_bit(raw[i]);
  }

  const std::size_t psdu_bytes = psdu_bytes_from_length(
      hdr->rate, hdr->length_us, (hdr->service & 0x80) != 0);
  const std::size_t psdu_bits_needed = psdu_bytes * 8;

  const std::size_t data_chip_start =
      best_off + header_last_symbol * kBarker.size();
  const Complex header_tail_symbol = pre_symbols[header_last_symbol - 1];

  Bits psdu_scrambled;
  switch (hdr->rate) {
    case DsssRate::k1Mbps:
    case DsssRate::k2Mbps: {
      const std::size_t bits_per_sym = hdr->rate == DsssRate::k1Mbps ? 1 : 2;
      const std::size_t need_symbols = psdu_bits_needed / bits_per_sym;
      if (data_chip_start + need_symbols * kBarker.size() > chips.size()) {
        return out;  // truncated capture: header ok, no payload
      }
      const CVec data_symbols = despread(std::span<const Complex>(chips).subspan(
          data_chip_start, need_symbols * kBarker.size()));
      psdu_scrambled =
          hdr->rate == DsssRate::k1Mbps
              ? dbpsk_decode(data_symbols, header_tail_symbol)
              : dqpsk_decode(data_symbols, header_tail_symbol);
      break;
    }
    case DsssRate::k5_5Mbps:
    case DsssRate::k11Mbps: {
      const std::size_t bits_per_sym = hdr->rate == DsssRate::k5_5Mbps ? 4 : 8;
      const std::size_t need_symbols = psdu_bits_needed / bits_per_sym;
      if (data_chip_start + need_symbols * kCckChipsPerSymbol > chips.size()) {
        return out;
      }
      CckDemodulator cck(hdr->rate);
      psdu_scrambled = cck.demodulate(
          std::span<const Complex>(chips).subspan(
              data_chip_start, need_symbols * kCckChipsPerSymbol),
          std::arg(header_tail_symbol));
      break;
    }
  }

  const Bits psdu_bits = psdu_desc.descramble(psdu_scrambled);
  if (psdu_bits.size() % 8 != 0) return out;
  out.psdu = itb::phy::bits_to_bytes_lsb_first(psdu_bits);

  if (out.psdu.size() >= 4) {
    const Bytes body(out.psdu.begin(), out.psdu.end() - 4);
    const std::uint32_t expect = itb::phy::crc32_ieee(body);
    std::uint32_t got = 0;
    for (int i = 0; i < 4; ++i) {
      got |= static_cast<std::uint32_t>(out.psdu[out.psdu.size() - 4 + i]) << (8 * i);
    }
    out.fcs_ok = expect == got;
  }
  return out;
}

}  // namespace itb::wifi
