#include "wifi/ofdm_frame.h"

#include <cassert>
#include <cmath>

#include "dsp/fft.h"
#include "phycommon/lfsr.h"
#include "wifi/interleaver.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;

namespace {

const std::array<OfdmRateParams, 8> kRateTable = {{
    {OfdmRate::k6, Modulation::kBpsk, CodeRate::kRate1_2, 1, 48, 24, 0b1101, 6.0},
    {OfdmRate::k9, Modulation::kBpsk, CodeRate::kRate3_4, 1, 48, 36, 0b1111, 9.0},
    {OfdmRate::k12, Modulation::kQpsk, CodeRate::kRate1_2, 2, 96, 48, 0b0101, 12.0},
    {OfdmRate::k18, Modulation::kQpsk, CodeRate::kRate3_4, 2, 96, 72, 0b0111, 18.0},
    {OfdmRate::k24, Modulation::k16Qam, CodeRate::kRate1_2, 4, 192, 96, 0b1001, 24.0},
    {OfdmRate::k36, Modulation::k16Qam, CodeRate::kRate3_4, 4, 192, 144, 0b1011, 36.0},
    {OfdmRate::k48, Modulation::k64Qam, CodeRate::kRate2_3, 6, 288, 192, 0b0001, 48.0},
    {OfdmRate::k54, Modulation::k64Qam, CodeRate::kRate3_4, 6, 288, 216, 0b0011, 54.0},
}};

}  // namespace

const OfdmRateParams& ofdm_params(OfdmRate r) {
  for (const auto& p : kRateTable) {
    if (p.rate == r) return p;
  }
  return kRateTable[0];
}

const std::array<int, kPilotCarriers> kPilotIndices = {-21, -7, 7, 21};
const std::array<Real, kPilotCarriers> kPilotBase = {1.0, 1.0, 1.0, -1.0};

int data_subcarrier_index(std::size_t logical) {
  assert(logical < kDataCarriers);
  // Data occupies -26..-1 and 1..26 minus the four pilots.
  static const auto table = [] {
    std::array<int, kDataCarriers> t{};
    std::size_t n = 0;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0 || k == -21 || k == -7 || k == 7 || k == 21) continue;
      t[n++] = k;
    }
    return t;
  }();
  return table[logical];
}

Real pilot_polarity(std::size_t symbol_index) {
  // The 127-element polarity sequence equals the scrambler stream for the
  // all-ones seed mapped 0 -> +1, 1 -> -1 (802.11-2016 17.3.5.10).
  static const itb::phy::Bits seq = itb::phy::OfdmScrambler::sequence(0x7F, 127);
  return seq[symbol_index % 127] ? -1.0 : 1.0;
}

CVec build_ofdm_symbol(std::span<const Complex> data48, std::size_t symbol_index) {
  assert(data48.size() == kDataCarriers);
  CVec freq(kFftSize, Complex{0.0, 0.0});
  const auto bin = [](int k) {
    return k >= 0 ? static_cast<std::size_t>(k)
                  : static_cast<std::size_t>(64 + k);
  };
  for (std::size_t i = 0; i < kDataCarriers; ++i) {
    freq[bin(data_subcarrier_index(i))] = data48[i];
  }
  const Real pol = pilot_polarity(symbol_index);
  for (std::size_t p = 0; p < kPilotCarriers; ++p) {
    freq[bin(kPilotIndices[p])] = Complex{pol * kPilotBase[p], 0.0};
  }
  CVec time = itb::dsp::ifft(freq);
  // Scale so average sample power ~ average subcarrier power (52/64 loading).
  const Real scale = static_cast<Real>(kFftSize) / std::sqrt(52.0);
  for (Complex& v : time) v *= scale;

  CVec out;
  out.reserve(kSymbolSamples);
  out.insert(out.end(), time.end() - kCpLen, time.end());
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

CVec extract_ofdm_symbol(std::span<const Complex> samples, std::size_t symbol_index) {
  assert(samples.size() >= kSymbolSamples);
  CVec time(samples.begin() + kCpLen, samples.begin() + kSymbolSamples);
  const Real scale = std::sqrt(52.0) / static_cast<Real>(kFftSize);
  for (Complex& v : time) v *= scale;
  CVec freq = itb::dsp::fft(time);

  const auto bin = [](int k) {
    return k >= 0 ? static_cast<std::size_t>(k)
                  : static_cast<std::size_t>(64 + k);
  };

  // Common phase error from pilots.
  const Real pol = pilot_polarity(symbol_index);
  Complex pilot_acc{0.0, 0.0};
  for (std::size_t p = 0; p < kPilotCarriers; ++p) {
    const Complex expect{pol * kPilotBase[p], 0.0};
    pilot_acc += freq[bin(kPilotIndices[p])] * std::conj(expect);
  }
  Complex rot{1.0, 0.0};
  if (std::abs(pilot_acc) > 1e-12) rot = std::conj(pilot_acc / std::abs(pilot_acc));

  CVec out(kDataCarriers);
  for (std::size_t i = 0; i < kDataCarriers; ++i) {
    out[i] = freq[bin(data_subcarrier_index(i))] * rot;
  }
  return out;
}

CVec short_training_field() {
  // STF loads every 4th subcarrier (17.3.3): sqrt(13/6) * S_k with
  // S in {±(1+j)} at k in {±4, ±8, ±12, ±16, ±20, ±24}.
  CVec freq(kFftSize, Complex{0.0, 0.0});
  const Real a = std::sqrt(13.0 / 6.0);
  const Complex pj = a * Complex{1.0, 1.0};
  const Complex nj = a * Complex{-1.0, -1.0};
  struct Load {
    int k;
    Complex v;
  };
  const std::array<Load, 12> loads = {{{-24, pj},
                                       {-20, nj},
                                       {-16, pj},
                                       {-12, nj},
                                       {-8, nj},
                                       {-4, pj},
                                       {4, nj},
                                       {8, nj},
                                       {12, pj},
                                       {16, pj},
                                       {20, pj},
                                       {24, pj}}};
  const auto bin = [](int k) {
    return k >= 0 ? static_cast<std::size_t>(k)
                  : static_cast<std::size_t>(64 + k);
  };
  for (const auto& l : loads) freq[bin(l.k)] = l.v;
  CVec period = itb::dsp::ifft(freq);
  const Real scale = static_cast<Real>(kFftSize) / std::sqrt(12.0 * 13.0 / 6.0);
  for (Complex& v : period) v *= scale;
  // The 64-sample IFFT holds 4 repetitions of the 16-sample short symbol;
  // emit 160 samples = 10 short symbols.
  CVec out;
  out.reserve(160);
  for (std::size_t i = 0; i < 160; ++i) out.push_back(period[i % kFftSize]);
  return out;
}

std::array<Real, 53> ltf_sequence() {
  // L_{-26..26} per 802.11-2016 17.3.3 (0 at DC).
  return {1, 1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1, 1, 1, 1, 1, -1, -1, 1,
          1, -1, 1,  -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1, 1, -1, 1, -1, 1,
          -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1, -1, 1, 1, 1, 1};
}

CVec long_training_field() {
  CVec freq(kFftSize, Complex{0.0, 0.0});
  const auto seq = ltf_sequence();
  const auto bin = [](int k) {
    return k >= 0 ? static_cast<std::size_t>(k)
                  : static_cast<std::size_t>(64 + k);
  };
  for (int k = -26; k <= 26; ++k) {
    freq[bin(k)] = Complex{seq[static_cast<std::size_t>(k + 26)], 0.0};
  }
  CVec period = itb::dsp::ifft(freq);
  const Real scale = static_cast<Real>(kFftSize) / std::sqrt(52.0);
  for (Complex& v : period) v *= scale;
  CVec out;
  out.reserve(160);
  // 32-sample cyclic prefix then two full periods.
  out.insert(out.end(), period.end() - 32, period.end());
  out.insert(out.end(), period.begin(), period.end());
  out.insert(out.end(), period.begin(), period.end());
  return out;
}

CVec build_signal_symbol(OfdmRate rate, std::size_t psdu_bytes) {
  const auto& p = ofdm_params(rate);
  itb::phy::Bits field(24, 0);
  // RATE (4 bits, MSB first per transmit order R1..R4).
  for (int i = 0; i < 4; ++i) {
    field[i] = (p.signal_rate_bits >> (3 - i)) & 1;
  }
  // bit 4 reserved = 0; LENGTH bits 5..16 LSB first.
  for (int i = 0; i < 12; ++i) {
    field[5 + i] = (psdu_bytes >> i) & 1;
  }
  // Even parity over bits 0..16 in bit 17; 18..23 tail zeros.
  unsigned ones = 0;
  for (int i = 0; i < 17; ++i) ones += field[i];
  field[17] = ones & 1;

  const itb::phy::Bits coded = convolutional_encode(field);
  const itb::phy::Bits inter = interleave(coded, 48, 1);
  const CVec symbols = qam_modulate(inter, Modulation::kBpsk);
  return build_ofdm_symbol(symbols, 0);
}

bool parse_signal_symbol(std::span<const Complex> samples, SignalField& out) {
  const CVec data = extract_ofdm_symbol(samples, 0);
  const itb::phy::Bits inter = qam_demodulate(data, Modulation::kBpsk);
  const itb::phy::Bits coded = deinterleave(inter, 48, 1);
  const itb::phy::Bits field = viterbi_decode(coded, 24);

  unsigned ones = 0;
  for (int i = 0; i < 17; ++i) ones += field[i];
  if ((ones & 1u) != field[17]) return false;

  unsigned rate_bits = 0;
  for (int i = 0; i < 4; ++i) rate_bits = (rate_bits << 1) | field[i];
  bool found = false;
  for (const auto& p : kRateTable) {
    if (p.signal_rate_bits == rate_bits) {
      out.rate = p.rate;
      found = true;
      break;
    }
  }
  if (!found) return false;

  std::size_t length = 0;
  for (int i = 0; i < 12; ++i) length |= static_cast<std::size_t>(field[5 + i]) << i;
  out.length_bytes = length;
  return true;
}

}  // namespace itb::wifi
