#include "wifi/dpsk.h"

#include <cassert>
#include <cmath>

namespace itb::wifi {

using itb::dsp::kPi;
using itb::dsp::kTwoPi;

Real dbpsk_phase_increment(std::uint8_t bit) { return bit ? kPi : 0.0; }

Real dqpsk_phase_increment(std::uint8_t d0, std::uint8_t d1) {
  const unsigned dibit = static_cast<unsigned>((d0 & 1u) << 1 | (d1 & 1u));
  switch (dibit) {
    case 0b00:
      return 0.0;
    case 0b01:
      return kPi / 2.0;
    case 0b11:
      return kPi;
    case 0b10:
      return 3.0 * kPi / 2.0;
  }
  return 0.0;
}

CVec dbpsk_encode(const Bits& bits, Real initial_phase_rad) {
  DifferentialEncoder enc(initial_phase_rad);
  CVec out;
  out.reserve(bits.size());
  for (std::uint8_t b : bits) out.push_back(enc.encode_increment(dbpsk_phase_increment(b)));
  return out;
}

CVec dqpsk_encode(const Bits& bits, Real initial_phase_rad) {
  assert(bits.size() % 2 == 0);
  DifferentialEncoder enc(initial_phase_rad);
  CVec out;
  out.reserve(bits.size() / 2);
  for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
    out.push_back(enc.encode_increment(dqpsk_phase_increment(bits[i], bits[i + 1])));
  }
  return out;
}

unsigned quantize_quarter(Real phase_rad) {
  Real p = std::fmod(phase_rad, kTwoPi);
  if (p < 0) p += kTwoPi;
  return static_cast<unsigned>(std::lround(p / (kPi / 2.0))) % 4;
}

Bits dbpsk_decode(std::span<const Complex> symbols, Complex reference) {
  Bits out;
  out.reserve(symbols.size());
  Complex prev = reference;
  for (const Complex& s : symbols) {
    const Real dphi = std::arg(s * std::conj(prev));
    out.push_back(std::abs(dphi) > kPi / 2.0 ? 1 : 0);
    prev = s;
  }
  return out;
}

Bits dqpsk_decode(std::span<const Complex> symbols, Complex reference) {
  Bits out;
  out.reserve(symbols.size() * 2);
  Complex prev = reference;
  for (const Complex& s : symbols) {
    const Real dphi = std::arg(s * std::conj(prev));
    switch (quantize_quarter(dphi)) {
      case 0:
        out.push_back(0);
        out.push_back(0);
        break;
      case 1:
        out.push_back(0);
        out.push_back(1);
        break;
      case 2:
        out.push_back(1);
        out.push_back(1);
        break;
      case 3:
        out.push_back(1);
        out.push_back(0);
        break;
    }
    prev = s;
  }
  return out;
}

}  // namespace itb::wifi
