#include "wifi/am_downlink.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/units.h"
#include "phycommon/lfsr.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;

AmDownlinkEncoder::AmDownlinkEncoder(const AmDownlinkConfig& cfg,
                                     std::uint64_t rng_seed)
    // The raw seed is kept on purpose: Xoshiro256's constructor already
    // SplitMix64-expands it, and the filler bits drawn from rng_ shape the
    // AM symbol envelope itself — the peak-detector decode margin is part
    // of the golden behaviour pinned by core_test/full_loop_test.
    : cfg_(cfg), rng_(rng_seed) {
  assert((cfg_.scrambler_seed & 0x7F) != 0);
}

Bits AmDownlinkEncoder::constant_symbol_data_bits(std::size_t bit_offset,
                                                  std::size_t n_dbps) const {
  const Bits seq = itb::phy::OfdmScrambler::sequence(
      cfg_.scrambler_seed, bit_offset + n_dbps);
  Bits out(n_dbps);
  for (std::size_t i = 0; i < n_dbps; ++i) {
    // scrambled = data XOR seq; we need scrambled == fill everywhere.
    out[i] = (seq[bit_offset + i] ^ cfg_.constant_fill) & 1;
  }
  return out;
}

AmFrame AmDownlinkEncoder::encode(const Bits& message_bits) {
  const auto& p = ofdm_params(cfg_.rate);
  const std::size_t n_dbps = p.n_dbps;

  // Symbol plan: SERVICE+header bits ride in symbol 0 (always random), then
  // two symbols per message bit.
  // Symbol 0 carries the 16 SERVICE bits plus random payload.
  std::vector<bool> plan;  // true = constant
  plan.push_back(false);
  for (std::uint8_t b : message_bits) {
    plan.push_back(false);           // leading random symbol
    plan.push_back(b ? true : false);  // constant for 1, random for 0
  }

  const std::size_t num_symbols = plan.size();
  const Bits scramble_seq = itb::phy::OfdmScrambler::sequence(
      cfg_.scrambler_seed, num_symbols * n_dbps);

  Bits data(num_symbols * n_dbps, 0);
  std::vector<bool> is_constant(num_symbols, false);

  // Track which symbols need a high-amplitude tail sample (those directly
  // before a constant symbol).
  const auto needs_bright_tail = [&](std::size_t s) {
    return s + 1 < num_symbols && plan[s + 1];
  };

  OfdmTxConfig txcfg;
  txcfg.rate = cfg_.rate;
  txcfg.scrambler_seed = cfg_.scrambler_seed;
  txcfg.include_preamble = false;
  const OfdmTransmitter probe_tx(txcfg);

  for (std::size_t s = 0; s < num_symbols; ++s) {
    const std::size_t off = s * n_dbps;
    if (plan[s]) {
      is_constant[s] = true;
      const Bits cbits = constant_symbol_data_bits(off, n_dbps);
      std::copy(cbits.begin(), cbits.end(), data.begin() + static_cast<std::ptrdiff_t>(off));
      continue;
    }

    // Random symbol. SERVICE bits (first 16 of symbol 0) stay zero.
    const std::size_t rand_start = s == 0 ? 16 : 0;
    for (std::size_t attempt = 0; attempt < cfg_.max_reroll_attempts; ++attempt) {
      for (std::size_t i = rand_start; i < n_dbps; ++i) {
        data[off + i] = rng_.bit() ? 1 : 0;
      }
      // Constraint 2: force the last 6 *scrambled* bits to the fill value
      // when the next symbol is constant, so the convolutional encoder's
      // memory enters it in the right state.
      if (needs_bright_tail(s)) {
        for (std::size_t i = n_dbps - 6; i < n_dbps; ++i) {
          data[off + i] = (scramble_seq[off + i] ^ cfg_.constant_fill) & 1;
        }
      } else if (!needs_bright_tail(s)) {
        // No tail constraint.
      }

      if (!needs_bright_tail(s)) break;

      // Constraint 3: check the last time-domain sample amplitude of this
      // symbol; re-roll until bright enough that the constant symbol's CP
      // (near zero) doesn't read as an early gap.
      Bits field(data.begin(), data.begin() + static_cast<std::ptrdiff_t>((s + 1) * n_dbps));
      const OfdmTxResult r = probe_tx.transmit_data_bits(field);
      const std::size_t sym_start = s * kSymbolSamples;
      const std::span<const Complex> sym(
          r.baseband.data() + sym_start, kSymbolSamples);
      const Real tail = std::abs(sym[kSymbolSamples - 1]);
      const Real avg = itb::dsp::rms(sym);
      if (tail >= cfg_.min_tail_amplitude_ratio * avg) break;
    }
  }

  AmFrame out;
  out.message_bits = message_bits;
  out.data_field_bits = data;
  out.symbol_is_constant = is_constant;

  OfdmTxConfig full = txcfg;
  full.include_preamble = true;
  const OfdmTransmitter tx(full);
  out.tx = tx.transmit_data_bits(data);
  return out;
}

AmDecodeResult decode_am_envelope(const CVec& baseband,
                                  std::size_t num_data_symbols,
                                  bool has_preamble) {
  AmDecodeResult out;
  // Preamble = STF(160) + LTF(160) + SIGNAL(80).
  const std::size_t data_start = has_preamble ? 400 : 0;
  out.symbol_envelope.resize(num_data_symbols, 0.0);
  for (std::size_t s = 0; s < num_data_symbols; ++s) {
    const std::size_t start = data_start + s * kSymbolSamples;
    if (start + kSymbolSamples > baseband.size()) break;
    // Skip the CP and the first few samples (the constant symbol's energy
    // spike sits at the start); measure the trailing 48 samples.
    Real acc = 0.0;
    std::size_t n = 0;
    for (std::size_t k = kCpLen + 16; k < kSymbolSamples; ++k) {
      acc += std::abs(baseband[start + k]);
      ++n;
    }
    out.symbol_envelope[s] = n ? acc / static_cast<Real>(n) : 0.0;
  }

  // Global threshold: half of the median envelope of all symbols.
  std::vector<Real> sorted = out.symbol_envelope;
  std::sort(sorted.begin(), sorted.end());
  const Real median = sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
  const Real threshold = median * 0.5;

  // Symbol 0 is the header symbol; message bits ride on pairs (s, s+1).
  for (std::size_t s = 1; s + 1 < num_data_symbols; s += 2) {
    const Real second = out.symbol_envelope[s + 1];
    out.bits.push_back(second < threshold ? 1 : 0);
  }
  return out;
}

}  // namespace itb::wifi
