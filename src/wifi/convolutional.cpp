#include "wifi/convolutional.h"

#include <array>
#include <cassert>
#include <limits>
#include <vector>

namespace itb::wifi {

namespace {

constexpr unsigned kConstraint = 7;
constexpr unsigned kStates = 1u << (kConstraint - 1);  // 64
constexpr unsigned kG0 = 0133;  // octal, includes the current bit (MSB side)
constexpr unsigned kG1 = 0171;

/// Output pair for (state, input). State bit 0 = most recent past input.
inline std::pair<std::uint8_t, std::uint8_t> branch_output(unsigned state,
                                                           unsigned input) {
  // Shift register contents, newest first: input, s0, s1, ... s5.
  const unsigned reg = (input << 6) | state;  // 7 bits, bit6 = current input
  // Generator taps are conventionally written MSB = current input.
  const unsigned a = __builtin_popcount(reg & kG0) & 1u;
  const unsigned b = __builtin_popcount(reg & kG1) & 1u;
  return {static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)};
}

inline unsigned next_state(unsigned state, unsigned input) {
  return ((input << 6) | state) >> 1;  // drop oldest bit
}

}  // namespace

Bits convolutional_encode(const Bits& data, std::uint8_t initial_state) {
  Bits out;
  out.reserve(data.size() * 2);
  unsigned state = initial_state & (kStates - 1);
  for (std::uint8_t bit : data) {
    const auto [a, b] = branch_output(state, bit & 1u);
    out.push_back(a);
    out.push_back(b);
    state = next_state(state, bit & 1u);
  }
  return out;
}

Bits puncture(const Bits& coded, CodeRate rate) {
  if (rate == CodeRate::kRate1_2) return coded;
  Bits out;
  out.reserve(coded.size());
  if (rate == CodeRate::kRate2_3) {
    // Pattern over (A0 B0 A1 B1): keep A0 B0 A1, drop B1.
    for (std::size_t i = 0; i < coded.size(); ++i) {
      if (i % 4 == 3) continue;
      out.push_back(coded[i]);
    }
  } else {  // 3/4: over (A0 B0 A1 B1 A2 B2): keep A0 B0 A1 B2, drop B1 A2.
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const std::size_t m = i % 6;
      if (m == 3 || m == 4) continue;
      out.push_back(coded[i]);
    }
  }
  return out;
}

Bits depuncture_with_erasures(const Bits& punctured, CodeRate rate) {
  if (rate == CodeRate::kRate1_2) return punctured;
  Bits out;
  std::size_t idx = 0;
  if (rate == CodeRate::kRate2_3) {
    while (idx < punctured.size()) {
      for (std::size_t m = 0; m < 4 && idx < punctured.size(); ++m) {
        if (m == 3) {
          out.push_back(2);
        } else {
          out.push_back(punctured[idx++]);
        }
      }
    }
  } else {
    while (idx < punctured.size()) {
      for (std::size_t m = 0; m < 6 && idx < punctured.size(); ++m) {
        if (m == 3 || m == 4) {
          out.push_back(2);
        } else {
          out.push_back(punctured[idx++]);
        }
      }
    }
  }
  return out;
}

Bits viterbi_decode(const Bits& coded, std::size_t data_len,
                    std::uint8_t initial_state) {
  assert(coded.size() >= data_len * 2);
  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;

  std::vector<unsigned> metric(kStates, kInf);
  metric[initial_state & (kStates - 1)] = 0;

  // survivor[t][state] = input bit leading into `state` at step t, plus the
  // predecessor state packed in the upper bits.
  std::vector<std::array<std::uint16_t, kStates>> survivor(data_len);

  std::vector<unsigned> next_metric(kStates);
  for (std::size_t t = 0; t < data_len; ++t) {
    const std::uint8_t ra = coded[2 * t];
    const std::uint8_t rb = coded[2 * t + 1];
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (unsigned s = 0; s < kStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (unsigned in = 0; in < 2; ++in) {
        const auto [a, b] = branch_output(s, in);
        unsigned cost = 0;
        if (ra != 2) cost += (a != ra);
        if (rb != 2) cost += (b != rb);
        const unsigned ns = next_state(s, in);
        const unsigned cand = metric[s] + cost;
        if (cand < next_metric[ns]) {
          next_metric[ns] = cand;
          survivor[t][ns] = static_cast<std::uint16_t>((s << 1) | in);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Traceback from the best final state.
  unsigned best = 0;
  unsigned best_metric = kInf;
  for (unsigned s = 0; s < kStates; ++s) {
    if (metric[s] < best_metric) {
      best_metric = metric[s];
      best = s;
    }
  }

  Bits out(data_len);
  unsigned state = best;
  for (std::size_t t = data_len; t-- > 0;) {
    const std::uint16_t sv = survivor[t][state];
    out[t] = sv & 1u;
    state = sv >> 1;
  }
  return out;
}

Bits decode_punctured(const Bits& punctured, CodeRate rate, std::size_t data_len) {
  const Bits padded = depuncture_with_erasures(punctured, rate);
  return viterbi_decode(padded, data_len);
}

}  // namespace itb::wifi
