// 802.11b receiver chain: chip-timing acquisition, SFD search, PLCP header
// decode, rate switch, despread/CCK decode, descramble, FCS check, RSSI.
//
// This models the commodity receiver (Intel Link 5300 in the paper) that the
// tag's synthesized packets must satisfy — every PER data point in Fig. 10/11
// comes from running waveforms through this class.
#pragma once

#include <optional>

#include "dsp/types.h"
#include "wifi/dsss_tx.h"
#include "wifi/mac_frame.h"

namespace itb::wifi {

struct DsssRxConfig {
  std::size_t samples_per_chip = 1;
  /// Minimum normalized Barker correlation to declare chip lock (0..1).
  Real acquisition_threshold = 0.5;
  /// Maximum bits of SYNC to scan for the SFD before giving up.
  std::size_t max_sync_search_bits = 400;
  /// Estimate the per-symbol carrier rotation from the preamble's
  /// differential symbols and derotate the chip stream before decoding.
  /// A +-40 ppm tag oscillator (~+-100 kHz at 2.4 GHz) rotates DQPSK by
  /// ~0.6 rad per symbol — most of the pi/4 decision margin — so the
  /// differential demodulator alone cannot absorb it at realistic SNR.
  /// Unambiguous up to +-250 kHz (a quarter turn per 1 us symbol).
  bool enable_cfo_correction = true;
  /// Resolve correlation-metric ties between adjacent chip alignments by
  /// comparing despread-domain energy over the probe region; under
  /// multipath the correlation peak smears across neighbouring offsets.
  bool refine_timing = true;
  /// Nominal chip rate, used only to report cfo_est_hz in Hz.
  Real chip_rate_hz = 11e6;
};

struct DsssRxResult {
  Bytes psdu;
  PlcpHeader header;
  bool header_ok = false;
  bool fcs_ok = false;   ///< MAC-level CRC32 over the PSDU
  Real rssi_dbm = 0.0;   ///< measured from preamble sample power
  std::size_t sync_offset_samples = 0;
  /// Carrier offset estimated from the preamble (Hz at chip_rate_hz),
  /// already corrected before decoding. 0 when correction is disabled.
  Real cfo_est_hz = 0.0;
};

class DsssReceiver {
 public:
  explicit DsssReceiver(const DsssRxConfig& cfg = {});

  /// Attempts to find and decode one frame in the sample stream.
  /// Returns nullopt when no preamble/SFD is found.
  std::optional<DsssRxResult> receive(const CVec& samples) const;

 private:
  DsssRxConfig cfg_;
};

}  // namespace itb::wifi
