// Complementary Code Keying (CCK) for 802.11b 5.5 and 11 Mbps.
//
// Each symbol carries 4 bits (5.5 Mbps) or 8 bits (11 Mbps) in an 8-chip
// complex codeword derived from four phases:
//   c = (e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)}, -e^{j(p1+p4)},
//        e^{j(p1+p2+p3)},    e^{j(p1+p3)},    -e^{j(p1+p2)},   e^{jp1})
// p1 is DQPSK (differential, with an extra pi rotation on odd symbols);
// p2..p4 carry the remaining bits (IEEE 802.11-2016 sect. 16.4.6.5/6).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "dsp/types.h"
#include "phycommon/bits.h"
#include "wifi/rates.h"

namespace itb::wifi {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;

inline constexpr std::size_t kCckChipsPerSymbol = 8;

/// 8-chip codeword for phases (p1..p4).
std::array<Complex, kCckChipsPerSymbol> cck_codeword(Real p1, Real p2, Real p3,
                                                     Real p4);

/// QPSK phase for the (d_i, d_{i+1}) dibit used by p2/p3/p4 at 11 Mbps:
/// 00 -> 0, 01 -> pi/2, 10 -> pi, 11 -> 3pi/2 (Table 16-6).
Real cck_qpsk_phase(std::uint8_t d0, std::uint8_t d1);

/// CCK modulator. Stateful: tracks the DQPSK reference phase and the
/// even/odd symbol count (odd symbols get an extra pi on p1).
class CckModulator {
 public:
  explicit CckModulator(DsssRate rate);

  /// Modulates a whole bit stream (size multiple of 4 or 8 depending on
  /// rate) into chips.
  CVec modulate(const Bits& bits);

  /// Phases p2..p4 for one symbol's data bits (rate-dependent mapping).
  /// `data` holds the bits after the first DQPSK dibit: 2 bits for 5.5 Mbps,
  /// 6 bits for 11 Mbps.
  std::array<Real, 3> data_phases(std::span<const std::uint8_t> data) const;

  std::size_t bits_per_symbol() const { return bits_per_symbol_; }
  void reset(Real initial_phase_rad = 0.0);

 private:
  DsssRate rate_;
  std::size_t bits_per_symbol_;
  Real phase_ref_ = 0.0;
  std::size_t symbol_index_ = 0;
};

/// CCK demodulator: nearest-codeword search over p2..p4 plus differential
/// recovery of p1.
class CckDemodulator {
 public:
  explicit CckDemodulator(DsssRate rate);

  /// Demodulates chips (size multiple of 8) into bits. `reference_phase` is
  /// the phase of the last preceding symbol (header tail).
  Bits demodulate(std::span<const Complex> chips, Real reference_phase_rad = 0.0);

  void reset(Real reference_phase_rad = 0.0);

 private:
  DsssRate rate_;
  std::size_t bits_per_symbol_;
  Real phase_ref_ = 0.0;
  std::size_t symbol_index_ = 0;
  /// Candidate (p2,p3,p4) triples and their data bits for this rate.
  struct Candidate {
    std::array<Real, 3> phases;
    Bits data_bits;
    std::array<Complex, kCckChipsPerSymbol> base_codeword;  // with p1 = 0
  };
  std::vector<Candidate> candidates_;
  /// Chip-major transpose of the candidate codewords: columns_[k][cand] is
  /// chip k of candidate cand. Lets the codeword search vectorize across
  /// candidates while each candidate still accumulates its chips in
  /// ascending order (bit-identical to the per-candidate scalar loop).
  std::array<CVec, kCckChipsPerSymbol> columns_;
};

}  // namespace itb::wifi
