// 802.11a/g per-symbol block interleaver (17.3.5.7): two permutations over
// the N_CBPS coded bits of one OFDM symbol.
//
// Relevant paper property (§2.4): a stream of identical bits is a fixed
// point of any permutation, so the AM trick survives interleaving untouched.
#pragma once

#include "phycommon/bits.h"

namespace itb::wifi {

using itb::phy::Bits;

/// Interleaves one OFDM symbol's worth of coded bits.
/// `n_cbps` = coded bits per symbol, `n_bpsc` = bits per subcarrier.
Bits interleave(const Bits& symbol_bits, std::size_t n_cbps, std::size_t n_bpsc);

/// Inverse permutation.
Bits deinterleave(const Bits& symbol_bits, std::size_t n_cbps, std::size_t n_bpsc);

/// The permutation as an index map: out[j] = in[perm[j]].
std::vector<std::size_t> interleave_map(std::size_t n_cbps, std::size_t n_bpsc);

}  // namespace itb::wifi
