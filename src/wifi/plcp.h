// 802.11b PLCP: long-preamble SYNC/SFD, header (SIGNAL, SERVICE, LENGTH,
// CRC-16) and the scrambling that covers the whole frame.
#pragma once

#include <cstdint>
#include <optional>

#include "phycommon/bits.h"
#include "wifi/rates.h"

namespace itb::wifi {

using itb::phy::Bits;

/// Long preamble: 128 ones (scrambled) then the 16-bit SFD.
inline constexpr std::size_t kSyncBits = 128;

/// SFD field value 0xF3A0, transmitted LSB first (16.2.3.3).
Bits sfd_bits();

/// Scrambler seed for the long preamble (16.2.4): 0b1101100.
inline constexpr std::uint8_t kLongPreambleScramblerSeed = 0x6C;

struct PlcpHeader {
  DsssRate rate = DsssRate::k2Mbps;
  std::uint8_t service = 0x00;
  std::uint16_t length_us = 0;  ///< PSDU air time in microseconds

  /// SERVICE bit 3: modulation selection (1 = CCK); bit 7: length extension
  /// used at 11 Mbps when the us count is ambiguous.
  static std::uint8_t service_for(DsssRate r, std::size_t psdu_bytes);
};

/// Builds the 48 unscrambled header bits (SIGNAL, SERVICE, LENGTH, CRC16).
Bits build_plcp_header_bits(const PlcpHeader& hdr);

/// Parses 48 unscrambled header bits; nullopt if the CRC fails or the
/// SIGNAL value is unknown.
std::optional<PlcpHeader> parse_plcp_header_bits(const Bits& bits);

/// LENGTH field for a PSDU (ceil of air time in us; 11 Mbps length-extension
/// handling per 16.2.3.5).
std::uint16_t length_field_us(DsssRate r, std::size_t psdu_bytes);

/// PSDU byte count back from a LENGTH field.
std::size_t psdu_bytes_from_length(DsssRate r, std::uint16_t length_us,
                                   bool length_extension);

}  // namespace itb::wifi
