#include "wifi/plcp.h"

#include <cassert>
#include <cmath>

#include "phycommon/crc.h"

namespace itb::wifi {

Bits sfd_bits() {
  // 0xF3A0 sent LSB first.
  return itb::phy::uint_to_bits_lsb_first(0xF3A0, 16);
}

std::uint8_t PlcpHeader::service_for(DsssRate r, std::size_t psdu_bytes) {
  std::uint8_t service = 0x04;  // bit 2: locked clocks
  if (r == DsssRate::k5_5Mbps || r == DsssRate::k11Mbps) {
    service |= 0x08;  // bit 3: CCK modulation
  }
  if (r == DsssRate::k11Mbps) {
    // Length extension (bit 7): set when ceil(8*N/11) - 8*N/11 >= 8/11.
    // Integer form (exact at the boundary): 11*ceil(8N/11) - 8N >= 8.
    const std::size_t bits = psdu_bytes * 8;
    const std::size_t length_us = (bits + 10) / 11;
    if (length_us * 11 - bits >= 8) service |= 0x80;
  }
  return service;
}

std::uint16_t length_field_us(DsssRate r, std::size_t psdu_bytes) {
  const double us = static_cast<double>(psdu_bytes) * 8.0 / rate_mbps(r);
  return static_cast<std::uint16_t>(std::ceil(us));
}

std::size_t psdu_bytes_from_length(DsssRate r, std::uint16_t length_us,
                                   bool length_extension) {
  std::size_t bytes;
  switch (r) {
    case DsssRate::k1Mbps:
      bytes = length_us / 8;
      break;
    case DsssRate::k2Mbps:
      bytes = length_us * 2 / 8;
      break;
    case DsssRate::k5_5Mbps:
      bytes = length_us * 11 / 16;  // 5.5 Mbps = 11 bits per 2 us
      break;
    case DsssRate::k11Mbps:
      bytes = length_us * 11 / 8;
      if (length_extension && bytes > 0) bytes -= 1;
      break;
    default:
      bytes = 0;
      break;
  }
  return bytes;
}

Bits build_plcp_header_bits(const PlcpHeader& hdr) {
  Bits bits;
  const Bits signal = itb::phy::uint_to_bits_lsb_first(signal_field(hdr.rate), 8);
  const Bits service = itb::phy::uint_to_bits_lsb_first(hdr.service, 8);
  const Bits length = itb::phy::uint_to_bits_lsb_first(hdr.length_us, 16);
  bits.insert(bits.end(), signal.begin(), signal.end());
  bits.insert(bits.end(), service.begin(), service.end());
  bits.insert(bits.end(), length.begin(), length.end());
  const std::uint16_t crc = itb::phy::crc16_plcp(bits);
  const Bits crc_bits = itb::phy::uint_to_bits_msb_first(crc, 16);
  bits.insert(bits.end(), crc_bits.begin(), crc_bits.end());
  return bits;
}

std::optional<PlcpHeader> parse_plcp_header_bits(const Bits& bits) {
  if (bits.size() != 48) return std::nullopt;
  const Bits body(bits.begin(), bits.begin() + 32);
  const std::uint16_t expect = itb::phy::crc16_plcp(body);
  const auto got = static_cast<std::uint16_t>(itb::phy::bits_to_uint_msb_first(
      std::span<const std::uint8_t>(bits).subspan(32, 16)));
  if (expect != got) return std::nullopt;

  PlcpHeader hdr;
  const auto signal = static_cast<unsigned>(itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(bits).subspan(0, 8)));
  switch (signal) {
    case 0x0A:
      hdr.rate = DsssRate::k1Mbps;
      break;
    case 0x14:
      hdr.rate = DsssRate::k2Mbps;
      break;
    case 0x37:
      hdr.rate = DsssRate::k5_5Mbps;
      break;
    case 0x6E:
      hdr.rate = DsssRate::k11Mbps;
      break;
    default:
      return std::nullopt;
  }
  hdr.service = static_cast<std::uint8_t>(itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(bits).subspan(8, 8)));
  hdr.length_us = static_cast<std::uint16_t>(itb::phy::bits_to_uint_lsb_first(
      std::span<const std::uint8_t>(bits).subspan(16, 16)));
  return hdr;
}

}  // namespace itb::wifi
