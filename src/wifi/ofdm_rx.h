// 802.11a/g OFDM receiver: preamble detection, LTF channel estimation,
// equalization, demapping, Viterbi decoding and descrambling.
//
// Besides closing the TX loop in tests, this class reproduces the paper's
// §4.4 methodology: it exposes the recovered scrambler seed of each frame
// (via the SERVICE field), which is how the authors tracked chipset seed
// policies with the gr-ieee802-11 GNURadio receiver.
#pragma once

#include <optional>

#include "wifi/ofdm_tx.h"

namespace itb::wifi {

struct OfdmRxResult {
  Bytes psdu;
  OfdmRate rate = OfdmRate::k6;
  std::uint8_t scrambler_seed = 0;  ///< recovered from the SERVICE field
  bool signal_ok = false;
  itb::dsp::Real rssi_dbm = 0.0;
  std::size_t frame_start = 0;      ///< sample index of the STF start
  /// Carrier offset estimated from the preamble (Hz at `sample_rate_hz`),
  /// already corrected before demodulation. 0 when correction is disabled.
  itb::dsp::Real cfo_est_hz = 0.0;
};

struct OfdmRxConfig {
  /// Normalized LTF correlation needed to declare a frame (0..1).
  itb::dsp::Real detection_threshold = 0.55;
  /// Two-stage preamble CFO synchronization: coarse from the STF's 16-sample
  /// periodicity (unambiguous to +-625 kHz at 20 Msps), fine from the LTF's
  /// 64-sample periodicity (+-156 kHz), combined by integer-ambiguity
  /// resolution. Needed for the tag's +-40 ppm oscillator (~+-100 kHz at
  /// 2.4 GHz), which is a third of a subcarrier spacing — fatal ICI if left
  /// uncorrected.
  bool enable_cfo_correction = true;
  /// Nominal sample rate, used only to report cfo_est_hz in Hz.
  itb::dsp::Real sample_rate_hz = 20e6;
};

class OfdmReceiver {
 public:
  explicit OfdmReceiver(const OfdmRxConfig& cfg = {});

  /// Finds and decodes one frame. Returns nullopt when no preamble is found.
  std::optional<OfdmRxResult> receive(const CVec& samples) const;

 private:
  OfdmRxConfig cfg_;
};

}  // namespace itb::wifi
