// 802.11a/g OFDM receiver: preamble detection, LTF channel estimation,
// equalization, demapping, Viterbi decoding and descrambling.
//
// Besides closing the TX loop in tests, this class reproduces the paper's
// §4.4 methodology: it exposes the recovered scrambler seed of each frame
// (via the SERVICE field), which is how the authors tracked chipset seed
// policies with the gr-ieee802-11 GNURadio receiver.
#pragma once

#include <optional>

#include "wifi/ofdm_tx.h"

namespace itb::wifi {

struct OfdmRxResult {
  Bytes psdu;
  OfdmRate rate = OfdmRate::k6;
  std::uint8_t scrambler_seed = 0;  ///< recovered from the SERVICE field
  bool signal_ok = false;
  itb::dsp::Real rssi_dbm = 0.0;
  std::size_t frame_start = 0;      ///< sample index of the STF start
};

struct OfdmRxConfig {
  /// Normalized LTF correlation needed to declare a frame (0..1).
  itb::dsp::Real detection_threshold = 0.55;
};

class OfdmReceiver {
 public:
  explicit OfdmReceiver(const OfdmRxConfig& cfg = {});

  /// Finds and decodes one frame. Returns nullopt when no preamble is found.
  std::optional<OfdmRxResult> receive(const CVec& samples) const;

 private:
  OfdmRxConfig cfg_;
};

}  // namespace itb::wifi
