// Wi-Fi chipset scrambler-seed policies (paper §4.4).
//
// 802.11 says the scrambler seed is a "pseudo-random non-zero value", but
// real silicon behaves predictably: the paper measured AR5001G / AR5007G /
// AR9580 incrementing the seed by one per frame, and ath5k allows pinning a
// fixed seed via the GEN_SCRAMBLER field of the AR5K_PHY_CTL register. The
// AM downlink relies on one of these predictable policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/rng.h"

namespace itb::wifi {

enum class SeedPolicy {
  kIncrementPerFrame,  ///< seed_{n+1} = (seed_n mod 127) + 1
  kFixed,              ///< driver-pinned seed (ath5k GEN_SCRAMBLER)
  kRandom,             ///< spec-faithful adversarial case
};

struct ChipsetModel {
  std::string name;
  SeedPolicy policy;
  std::uint8_t fixed_seed = 0x5D;  ///< used by kFixed
};

/// The chipsets the paper measured.
ChipsetModel ar5001g();
ChipsetModel ar5007g();
ChipsetModel ar9580();
ChipsetModel ath5k_fixed(std::uint8_t seed);
ChipsetModel generic_random();

/// Stateful seed source reproducing a chipset's behaviour across frames.
class SeedSequencer {
 public:
  SeedSequencer(const ChipsetModel& model, std::uint64_t rng_seed,
                std::uint8_t initial = 0x24);

  /// Seed for the next transmitted frame.
  std::uint8_t next();

  const ChipsetModel& model() const { return model_; }

 private:
  ChipsetModel model_;
  std::uint8_t current_;
  itb::dsp::Xoshiro256 rng_;
};

/// Seed-tracking result over a burst of observed frames (the §4.4
/// experiment): classify whether the observed sequence is incrementing,
/// fixed, or unpredictable.
struct SeedObservation {
  std::vector<std::uint8_t> seeds;
  bool looks_incrementing = false;
  bool looks_fixed = false;
};
SeedObservation classify_seeds(const std::vector<std::uint8_t>& seeds);

}  // namespace itb::wifi
