// 802.11a/g OFDM transmitter: PSDU -> scramble -> convolutional encode ->
// puncture -> interleave -> QAM -> IFFT/CP, with STF/LTF/SIGNAL preamble.
//
// Exposes per-symbol data-bit control so the AM downlink shaper (§2.4) can
// dictate exactly which scrambled/coded bits land on each OFDM symbol.
#pragma once

#include <cstdint>

#include "dsp/types.h"
#include "phycommon/bits.h"
#include "wifi/ofdm_frame.h"

namespace itb::wifi {

using itb::dsp::CVec;
using itb::phy::Bits;
using itb::phy::Bytes;

struct OfdmTxConfig {
  OfdmRate rate = OfdmRate::k36;
  std::uint8_t scrambler_seed = 0x5D;  ///< 7-bit, non-zero
  bool include_preamble = true;        ///< STF + LTF + SIGNAL
};

struct OfdmTxResult {
  CVec baseband;            ///< 20 Msps complex samples
  std::size_t num_data_symbols = 0;
  Bits scrambled_bits;      ///< post-scrambler DATA field bits (diagnostics)
  double duration_us = 0.0;
};

class OfdmTransmitter {
 public:
  explicit OfdmTransmitter(const OfdmTxConfig& cfg = {});

  /// Standard path: assembles SERVICE + PSDU + tail + pad, scrambles,
  /// encodes and modulates.
  OfdmTxResult transmit(const Bytes& psdu) const;

  /// Raw path for the AM shaper: the caller provides the *unscrambled* DATA
  /// field bits (SERVICE + payload + tail + pad already laid out). Must be a
  /// multiple of N_DBPS.
  OfdmTxResult transmit_data_bits(const Bits& data_field) const;

  const OfdmTxConfig& config() const { return cfg_; }

  /// Number of pad bits etc. for a PSDU at this rate.
  std::size_t data_field_bits(std::size_t psdu_bytes) const;

 private:
  OfdmTxConfig cfg_;
};

}  // namespace itb::wifi
