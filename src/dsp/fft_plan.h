// Planned FFT: precomputed twiddle tables and bit-reversal permutations,
// cached per transform size.
//
// The seed FFT regenerated its twiddles per call with the recurrence
// w *= wlen, which costs one extra complex multiply per butterfly and
// accumulates rounding error over a stage. A plan pays the trig once
// (std::polar per table entry, exact to 0.5 ulp) and the butterfly loop
// touches only data and a table read. The first two stages (twiddles
// 1 and -j) are specialized to pure additions.
//
// Plans are immutable after construction, so one cached plan can serve any
// number of threads concurrently; the cache itself is mutex-guarded and
// entries live for the life of the process (references stay valid).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/types.h"

namespace itb::dsp {

class FftPlan {
 public:
  /// Builds tables for an n-point transform. n must be a power of two;
  /// throws std::invalid_argument otherwise (checked in all build modes).
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT (no scaling). x.size() must equal size().
  void forward(std::span<Complex> x) const;

  /// In-place inverse DFT with 1/N scaling. x.size() must equal size().
  void inverse(std::span<Complex> x) const;

 private:
  template <bool kInverse>
  void run(std::span<Complex> x) const;

  std::size_t n_ = 0;
  /// Stage-major forward twiddles: stage `len` owns len/2 entries starting
  /// at index len/2 - 1 (total n - 1). Inverse conjugates on the fly.
  std::vector<Complex> twiddles_;
  std::vector<std::uint32_t> bitrev_;
};

/// Process-wide plan cache keyed by transform size. Thread-safe; the
/// returned reference stays valid for the life of the process.
const FftPlan& fft_plan(std::size_t n);

}  // namespace itb::dsp
