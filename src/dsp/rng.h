// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every bench and test seeds its own Xoshiro256** instance, so runs are
// bit-identical across machines; no global RNG state exists anywhere in the
// library.
#pragma once

#include <cstdint>

#include "dsp/types.h"

namespace itb::dsp {

/// One SplitMix64 step (Steele/Lea/Flood): advances the input by the
/// golden-ratio increment and mixes. The single shared definition behind
/// every counter-based substream seed in the library (core::trial_seed,
/// channel::impairment_substream, Xoshiro256 seeding) — the cross-module
/// determinism contract in DESIGN.md depends on all of them using exactly
/// this function.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Fast, high-quality, and — unlike std::mt19937 — guaranteed to produce the
/// same stream on every platform for a given seed.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      s = splitmix64(x);
      x += 0x9E3779B97F4A7C15ULL;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  Real uniform() {
    return static_cast<Real>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  Real uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Single random bit.
  bool bit() { return (next_u64() >> 63) != 0; }

  /// Standard normal variate (Box–Muller; one value per call, cached pair).
  Real gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    Real u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const Real u2 = uniform();
    const Real mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return mag * std::cos(kTwoPi * u2);
  }

  /// Circularly-symmetric complex Gaussian with total variance `variance`
  /// (variance/2 per real dimension).
  Complex complex_gaussian(Real variance) {
    const Real s = std::sqrt(variance / 2.0);
    return {s * gaussian(), s * gaussian()};
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_spare_ = false;
  Real spare_ = 0.0;
};

}  // namespace itb::dsp
