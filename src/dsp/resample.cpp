#include "dsp/resample.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/fir.h"

namespace itb::dsp {

CVec upsample(std::span<const Complex> x, std::size_t factor) {
  assert(factor >= 1);
  if (factor == 1) return CVec(x.begin(), x.end());
  CVec stuffed(x.size() * factor, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    stuffed[i * factor] = x[i] * static_cast<Real>(factor);
  }
  const std::size_t taps = 8 * factor + 1;
  const RVec lp = design_lowpass(taps, 0.45 / static_cast<Real>(factor));
  return filter_same(stuffed, lp);
}

CVec decimate(std::span<const Complex> x, std::size_t factor) {
  assert(factor >= 1);
  if (factor == 1) return CVec(x.begin(), x.end());
  const std::size_t taps = 8 * factor + 1;
  const RVec lp = design_lowpass(taps, 0.45 / static_cast<Real>(factor));
  const CVec filtered = filter_same(x, lp);
  // Ceil semantics: keep every sample at index i*factor < x.size(), so the
  // output has ceil(n / factor) samples. The old n / factor sizing silently
  // dropped up to factor - 1 trailing samples at non-divisible lengths,
  // truncating frame tails.
  CVec out((x.size() + factor - 1) / factor);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = filtered[i * factor];
  return out;
}

CVec resample_linear(std::span<const Complex> x, Real in_rate_hz, Real out_rate_hz) {
  assert(in_rate_hz > 0 && out_rate_hz > 0);
  if (x.empty()) return {};
  const Real ratio = in_rate_hz / out_rate_hz;
  const auto out_len =
      static_cast<std::size_t>(std::floor(static_cast<Real>(x.size() - 1) / ratio)) + 1;
  CVec out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const Real pos = static_cast<Real>(i) * ratio;
    // out_len is derived from (x.size()-1)/ratio with two roundings, so for
    // the last i the product i*ratio can land past x.size()-1 and idx would
    // index one past the end. Clamp to the final sample (frac then blends a
    // sample with itself, which is exact).
    const auto idx =
        std::min(static_cast<std::size_t>(pos), x.size() - 1);
    const Real frac = pos - static_cast<Real>(idx);
    const Complex a = x[idx];
    const Complex b = idx + 1 < x.size() ? x[idx + 1] : x[idx];
    out[i] = a + (b - a) * frac;
  }
  return out;
}

CVec hold_upsample(std::span<const Complex> x, std::size_t factor) {
  CVec out(x.size() * factor);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t k = 0; k < factor; ++k) out[i * factor + k] = x[i];
  }
  return out;
}

RVec hold_upsample(std::span<const Real> x, std::size_t factor) {
  RVec out(x.size() * factor);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t k = 0; k < factor; ++k) out[i * factor + k] = x[i];
  }
  return out;
}

}  // namespace itb::dsp
