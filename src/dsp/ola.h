// Overlap-save fast convolution: the spectral engine behind convolve_fft()
// and cross_correlate_fft().
//
// The kernel spectrum is computed once per call; the signal streams through
// fixed-size FFT blocks that overlap by (kernel length - 1) samples, so the
// circular convolution of each block yields a run of valid linear-convolution
// outputs. Block size is chosen to amortize the FFT cost: L = next_pow2 of
// ~8x the kernel length (min 256), collapsed to a single block when the
// whole output fits in one transform anyway.
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// Full linear convolution y = x (*) h via overlap-save, with a complex
/// kernel. Output length x.size() + h.size() - 1. Either input empty -> {}.
CVec overlap_save_convolve(std::span<const Complex> x, std::span<const Complex> h);

/// FFT block size the engine would pick for a kernel of nh taps producing
/// ny total output samples (exposed for benches/tests).
std::size_t overlap_save_block_size(std::size_t nh, std::size_t ny);

}  // namespace itb::dsp
