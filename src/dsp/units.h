// Power/amplitude unit conversions (dB, dBm, watts) and signal power
// measurement helpers.
#pragma once

#include <cmath>
#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// Converts a linear power ratio to decibels. `ratio` must be > 0.
inline Real ratio_to_db(Real ratio) { return 10.0 * std::log10(ratio); }

/// Converts decibels to a linear power ratio.
inline Real db_to_ratio(Real db) { return std::pow(10.0, db / 10.0); }

/// Converts power in watts to dBm.
inline Real watts_to_dbm(Real watts) { return 10.0 * std::log10(watts * 1e3); }

/// Converts dBm to watts.
inline Real dbm_to_watts(Real dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

/// Converts a linear amplitude (voltage-like) ratio to dB (20 log10).
inline Real amplitude_to_db(Real ratio) { return 20.0 * std::log10(ratio); }

/// Converts dB to a linear amplitude ratio.
inline Real db_to_amplitude(Real db) { return std::pow(10.0, db / 20.0); }

/// Mean power (|x|^2 average) of a complex sample block. Returns 0 for empty
/// input.
inline Real mean_power(std::span<const Complex> x) {
  if (x.empty()) return 0.0;
  Real acc = 0.0;
  for (const Complex& v : x) acc += std::norm(v);
  return acc / static_cast<Real>(x.size());
}

/// Root-mean-square amplitude of a complex sample block.
inline Real rms(std::span<const Complex> x) { return std::sqrt(mean_power(x)); }

/// Peak magnitude of a sample block. Returns 0 for empty input.
inline Real peak_magnitude(std::span<const Complex> x) {
  Real peak = 0.0;
  for (const Complex& v : x) peak = std::max(peak, std::abs(v));
  return peak;
}

/// Peak-to-average-power ratio in dB. Requires non-zero mean power.
inline Real papr_db(std::span<const Complex> x) {
  const Real avg = mean_power(x);
  const Real pk = peak_magnitude(x);
  return ratio_to_db(pk * pk / avg);
}

}  // namespace itb::dsp
