#include "dsp/fft_plan.h"

#include <cassert>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "dsp/fft.h"
#include "dsp/simd/kernels.h"
#include "obs/prof.h"

namespace itb::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two, got " +
                                std::to_string(n));
  }
  bitrev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }

  if (n >= 2) {
    twiddles_.resize(n - 1);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      Complex* stage = twiddles_.data() + (len / 2 - 1);
      for (std::size_t k = 0; k < len / 2; ++k) {
        stage[k] = std::polar<Real>(
            1.0, -kTwoPi * static_cast<Real>(k) / static_cast<Real>(len));
      }
    }
  }
}

template <bool kInverse>
void FftPlan::run(std::span<Complex> x) const {
  static const std::size_t kZone = obs::prof_zone("phy.fft");
  const obs::ProfZone prof(kZone);
  // Validated in all build modes for the same reason as fft_inplace: a
  // size-mismatched span would silently corrupt memory in release builds.
  if (x.size() != n_) {
    throw std::invalid_argument("FftPlan: span size " + std::to_string(x.size()) +
                                " does not match plan size " + std::to_string(n_));
  }
  const std::size_t n = n_;
  Complex* const a = x.data();

  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }

  // Butterfly stages run through the dispatch-invariant kernel table
  // (scalar reference or AVX2/NEON — bit-identical either way, see
  // src/dsp/simd/kernels.h). Stage len == 2 has twiddle 1; stage len == 4
  // has twiddles 1 and -j (forward) / +j (inverse); stages len >= 8 use the
  // precomputed stage-major twiddle table.
  const simd::KernelTable& kern = simd::active_kernels();
  kern.fft_stage2(a, n);
  if (n >= 4) kern.fft_stage4(a, n, kInverse);

  for (std::size_t len = 8; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const Complex* const tw = twiddles_.data() + (half - 1);
    for (std::size_t i = 0; i < n; i += len) {
      kern.fft_radix2_stage(a + i, a + i + half, tw, half, kInverse);
    }
  }

  if (kInverse) {
    kern.scale_real(a, 1.0 / static_cast<Real>(n), n);
  }
}

void FftPlan::forward(std::span<Complex> x) const { run<false>(x); }

void FftPlan::inverse(std::span<Complex> x) const { run<true>(x); }

const FftPlan& fft_plan(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<FftPlan>>* cache =
      new std::map<std::size_t, std::unique_ptr<FftPlan>>();
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*cache)[n];
  if (!slot) slot = std::make_unique<FftPlan>(n);
  return *slot;
}

}  // namespace itb::dsp
