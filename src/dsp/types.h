// Core numeric types shared across the interscatter DSP stack.
//
// All PHY layers work on complex-baseband sample streams (CVec). Double
// precision is used throughout: the simulator trades speed for numerical
// headroom (spur measurements down to -60 dBc need it).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <vector>

namespace itb::dsp {

using Real = double;
using Complex = std::complex<Real>;
using CVec = std::vector<Complex>;
using RVec = std::vector<Real>;

inline constexpr Real kPi = std::numbers::pi_v<Real>;
inline constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;

/// Imaginary unit, j such that j*j == -1.
inline constexpr Complex kJ{0.0, 1.0};

/// Speed of light in vacuum [m/s]; used by channel models.
inline constexpr Real kSpeedOfLight = 299'792'458.0;

/// Boltzmann constant [J/K]; used for thermal-noise floors.
inline constexpr Real kBoltzmann = 1.380649e-23;

}  // namespace itb::dsp
