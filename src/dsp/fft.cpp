#include "dsp/fft.h"

#include <cassert>
#include <cmath>

namespace itb::dsp {

namespace {

// Bit-reversal permutation for the iterative FFT.
void bit_reverse_permute(CVec& x) {
  const std::size_t n = x.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void transform(CVec& x, bool inverse) {
  const std::size_t n = x.size();
  assert(is_power_of_two(n) && "FFT size must be a power of two");
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Real ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<Real>(len);
    const Complex wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const Real inv_n = 1.0 / static_cast<Real>(n);
    for (Complex& v : x) v *= inv_n;
  }
}

}  // namespace

void fft_inplace(CVec& x) { transform(x, /*inverse=*/false); }

void ifft_inplace(CVec& x) { transform(x, /*inverse=*/true); }

CVec fft(std::span<const Complex> x) {
  CVec out(x.begin(), x.end());
  fft_inplace(out);
  return out;
}

CVec ifft(std::span<const Complex> x) {
  CVec out(x.begin(), x.end());
  ifft_inplace(out);
  return out;
}

CVec dft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const Real ang =
          -kTwoPi * static_cast<Real>(k) * static_cast<Real>(t) / static_cast<Real>(n);
      acc += x[t] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

CVec fftshift(std::span<const Complex> x) {
  const std::size_t n = x.size();
  CVec out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

RVec fftshift(std::span<const Real> x) {
  const std::size_t n = x.size();
  RVec out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

}  // namespace itb::dsp
