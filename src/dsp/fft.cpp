#include "dsp/fft.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "dsp/fft_plan.h"

namespace itb::dsp {

namespace {

void require_power_of_two(std::size_t n, const char* what) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument(std::string(what) +
                                ": size must be a power of two, got " +
                                std::to_string(n));
  }
}

}  // namespace

void fft_inplace(std::span<Complex> x) {
  require_power_of_two(x.size(), "fft_inplace");
  fft_plan(x.size()).forward(x);
}

void ifft_inplace(std::span<Complex> x) {
  require_power_of_two(x.size(), "ifft_inplace");
  fft_plan(x.size()).inverse(x);
}

CVec fft(std::span<const Complex> x) {
  if (!is_power_of_two(x.size())) return dft(x);
  CVec out(x.begin(), x.end());
  fft_plan(out.size()).forward(out);
  return out;
}

CVec ifft(std::span<const Complex> x) {
  if (!is_power_of_two(x.size())) return idft(x);
  CVec out(x.begin(), x.end());
  fft_plan(out.size()).inverse(out);
  return out;
}

CVec dft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const Real ang =
          -kTwoPi * static_cast<Real>(k) * static_cast<Real>(t) / static_cast<Real>(n);
      acc += x[t] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

CVec idft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  CVec out(n);
  if (n == 0) return out;
  const Real inv_n = 1.0 / static_cast<Real>(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const Real ang =
          kTwoPi * static_cast<Real>(k) * static_cast<Real>(t) / static_cast<Real>(n);
      acc += x[t] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc * inv_n;
  }
  return out;
}

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

CVec fftshift(std::span<const Complex> x) {
  const std::size_t n = x.size();
  CVec out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

RVec fftshift(std::span<const Real> x) {
  const std::size_t n = x.size();
  RVec out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

}  // namespace itb::dsp
