// Radix-2 FFT/IFFT plus a reference DFT used to validate it in tests.
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// In-place iterative radix-2 decimation-in-time FFT.
/// `x.size()` must be a power of two (asserted).
void fft_inplace(CVec& x);

/// In-place inverse FFT with 1/N normalization. Size must be a power of two.
void ifft_inplace(CVec& x);

/// Out-of-place convenience wrappers.
CVec fft(std::span<const Complex> x);
CVec ifft(std::span<const Complex> x);

/// O(N^2) reference DFT, any size. Used by tests and small transforms.
CVec dft(std::span<const Complex> x);

/// True if n is a power of two (and nonzero).
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// fftshift: swaps halves so DC ends up in the middle (even sizes) —
/// convenient for plotting spectra.
CVec fftshift(std::span<const Complex> x);
RVec fftshift(std::span<const Real> x);

}  // namespace itb::dsp
