// FFT/IFFT front end over the cached-plan engine (dsp/fft_plan.h), plus a
// reference DFT used to validate it in tests and to serve non-power-of-two
// sizes exactly.
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// In-place radix-2 FFT through the process-wide plan cache.
/// The size must be a power of two; this is validated in ALL build modes
/// (std::invalid_argument), not just debug — a silent garbage transform in
/// release builds is how spur measurements go wrong.
void fft_inplace(std::span<Complex> x);

/// In-place inverse FFT with 1/N normalization. Power-of-two sizes only,
/// validated in all build modes.
void ifft_inplace(std::span<Complex> x);

/// Out-of-place transforms for any size: power-of-two inputs run through the
/// plan cache, everything else falls back to the exact O(N^2) dft/idft.
CVec fft(std::span<const Complex> x);
CVec ifft(std::span<const Complex> x);

/// O(N^2) reference DFT, any size. Used by tests and small transforms.
CVec dft(std::span<const Complex> x);

/// O(N^2) inverse DFT with 1/N normalization, any size.
CVec idft(std::span<const Complex> x);

/// True if n is a power of two (and nonzero).
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// fftshift: swaps halves so DC ends up in the middle (even sizes) —
/// convenient for plotting spectra.
CVec fftshift(std::span<const Complex> x);
RVec fftshift(std::span<const Real> x);

}  // namespace itb::dsp
