// FIR filter design (windowed-sinc) and filtering, plus the Gaussian pulse
// shaping filter that defines BLE's GFSK spectral mask.
//
// Filtering has two execution paths: the naive O(N*K) direct form and an
// FFT-based overlap-save form (dsp/ola.h). convolve()/filter_same() pick
// automatically via a size-crossover heuristic; the _direct/_fft variants
// pin the path (tests use them to cross-validate, benches to compare).
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// Designs an odd-length linear-phase low-pass FIR with the windowed-sinc
/// method. `cutoff_norm` is the -6 dB cutoff as a fraction of the sample rate
/// (0 < cutoff_norm < 0.5). Taps are normalized to unity DC gain.
RVec design_lowpass(std::size_t num_taps, Real cutoff_norm);

/// Gaussian filter taps for GFSK pulse shaping.
/// `bt` is the bandwidth-time product (0.5 for BLE), `sps` samples per symbol,
/// `span_symbols` the filter length in symbols. Taps normalized so their sum
/// is 1 (preserves the peak frequency deviation of a long run of same bits).
RVec design_gaussian(Real bt, std::size_t sps, std::size_t span_symbols);

/// Half-sine pulse of one chip length, used by 802.15.4 O-QPSK shaping.
RVec half_sine_pulse(std::size_t sps);

/// Full convolution: output length = x.size() + taps.size() - 1.
/// Auto-dispatches between the direct and overlap-save paths.
CVec convolve(std::span<const Complex> x, std::span<const Real> taps);
RVec convolve(std::span<const Real> x, std::span<const Real> taps);

/// Direct-form convolution (always O(N*K)).
CVec convolve_direct(std::span<const Complex> x, std::span<const Real> taps);
RVec convolve_direct(std::span<const Real> x, std::span<const Real> taps);

/// FFT overlap-save convolution (always spectral).
CVec convolve_fft(std::span<const Complex> x, std::span<const Real> taps);
RVec convolve_fft(std::span<const Real> x, std::span<const Real> taps);

/// True when the auto path would go spectral for these sizes (exposed so
/// benches and tests can probe the crossover).
bool convolve_prefers_fft(std::size_t signal_len, std::size_t kernel_len);

/// "Same"-length filtering: convolution cropped to x.size() samples with the
/// group delay compensated (taps must be odd-length for exact alignment).
CVec filter_same(std::span<const Complex> x, std::span<const Real> taps);
RVec filter_same(std::span<const Real> x, std::span<const Real> taps);

/// Single-pole IIR smoother y[n] = (1-a) y[n-1] + a x[n]; `alpha` in (0, 1].
/// Used to model RC envelope-detector dynamics.
RVec single_pole_lowpass(std::span<const Real> x, Real alpha);

}  // namespace itb::dsp
