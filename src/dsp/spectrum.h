// Power spectral density estimation (Welch periodogram) and spectrum
// measurement helpers: band power, occupied bandwidth, sideband rejection.
//
// These back the paper's spectrum figures: Fig. 6 (SSB vs DSB) and Fig. 9
// (BLE single tone), and the tests that pin harmonic levels.
#pragma once

#include <span>

#include "dsp/types.h"
#include "dsp/window.h"

namespace itb::dsp {

/// One-shot PSD estimate.
struct Psd {
  RVec freq_hz;   ///< Bin centers, fftshifted: -fs/2 .. +fs/2.
  RVec power_db;  ///< Relative power per bin in dB (10log10 |X|^2, normalized
                  ///< so the strongest bin of a unit tone reads ~0 dB only
                  ///< when normalize_peak is used).
  RVec power_linear;  ///< Linear mean-square power per bin.
  Real bin_hz = 0.0;
};

struct WelchConfig {
  std::size_t segment_size = 1024;  ///< Must be a power of two.
  std::size_t overlap = 512;        ///< Samples of overlap between segments.
  WindowKind window = WindowKind::kHann;
};

/// Welch-averaged PSD of x sampled at sample_rate_hz.
Psd welch_psd(std::span<const Complex> x, Real sample_rate_hz,
              const WelchConfig& cfg = {});

/// Total linear power falling inside [f_lo, f_hi] (Hz, may be negative).
Real band_power(const Psd& psd, Real f_lo_hz, Real f_hi_hz);

/// Ratio (dB) of power in the wanted band to power in the image band.
/// Positive means the wanted band is stronger.
Real sideband_rejection_db(const Psd& psd, Real wanted_lo_hz, Real wanted_hi_hz,
                           Real image_lo_hz, Real image_hi_hz);

/// Frequency (Hz) of the strongest PSD bin.
Real peak_frequency_hz(const Psd& psd);

/// Bandwidth containing `fraction` (e.g. 0.99) of total power, centered search
/// outward from the strongest bin.
Real occupied_bandwidth_hz(const Psd& psd, Real fraction);

/// Normalizes power_db so its maximum is 0 dB (for plot-style outputs).
void normalize_peak(Psd& psd);

}  // namespace itb::dsp
