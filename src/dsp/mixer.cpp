#include "dsp/mixer.h"

namespace itb::dsp {

CVec frequency_shift(std::span<const Complex> x, Real freq_hz, Real sample_rate_hz,
                     Real initial_phase_rad) {
  Nco nco(freq_hz, sample_rate_hz, initial_phase_rad);
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * nco.next();
  return out;
}

CVec tone(Real freq_hz, Real sample_rate_hz, std::size_t n, Real amplitude,
          Real initial_phase_rad) {
  Nco nco(freq_hz, sample_rate_hz, initial_phase_rad);
  CVec out(n);
  for (auto& v : out) v = amplitude * nco.next();
  return out;
}

}  // namespace itb::dsp
