#include "dsp/fir.h"

#include <cassert>
#include <cmath>

#include "dsp/ola.h"
#include "dsp/simd/kernels.h"
#include "dsp/window.h"

namespace itb::dsp {

RVec design_lowpass(std::size_t num_taps, Real cutoff_norm) {
  assert(num_taps % 2 == 1 && "lowpass design requires odd tap count");
  assert(cutoff_norm > 0.0 && cutoff_norm < 0.5);
  const RVec w = make_window(WindowKind::kHamming, num_taps);
  RVec taps(num_taps);
  const auto mid = static_cast<std::ptrdiff_t>(num_taps / 2);
  Real sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const auto k = static_cast<std::ptrdiff_t>(i) - mid;
    Real v;
    if (k == 0) {
      v = 2.0 * cutoff_norm;
    } else {
      const Real x = kTwoPi * cutoff_norm * static_cast<Real>(k);
      v = std::sin(x) / (kPi * static_cast<Real>(k));
    }
    taps[i] = v * w[i];
    sum += taps[i];
  }
  for (Real& t : taps) t /= sum;
  return taps;
}

RVec design_gaussian(Real bt, std::size_t sps, std::size_t span_symbols) {
  assert(bt > 0.0 && sps > 0 && span_symbols > 0);
  const std::size_t n = sps * span_symbols + 1;
  RVec taps(n);
  // Standard GFSK Gaussian impulse response:
  //   h(t) = sqrt(2*pi/ln2) * B * exp(-2 * pi^2 * B^2 * t^2 / ln2)
  // with B = bt * symbol_rate; time normalized to symbols below.
  const Real ln2 = std::log(2.0);
  const auto mid = static_cast<std::ptrdiff_t>(n / 2);
  Real sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real t =
        static_cast<Real>(static_cast<std::ptrdiff_t>(i) - mid) / static_cast<Real>(sps);
    const Real a = kTwoPi * bt / std::sqrt(ln2 / 2.0);
    taps[i] = std::exp(-0.5 * a * a * t * t);
    sum += taps[i];
  }
  for (Real& t : taps) t /= sum;
  return taps;
}

RVec half_sine_pulse(std::size_t sps) {
  RVec p(sps);
  for (std::size_t i = 0; i < sps; ++i) {
    p[i] = std::sin(kPi * static_cast<Real>(i) / static_cast<Real>(sps));
  }
  return p;
}

namespace {

template <typename T>
std::vector<T> convolve_direct_impl(std::span<const T> x, std::span<const Real> taps) {
  if (x.empty() || taps.empty()) return {};
  std::vector<T> y(x.size() + taps.size() - 1, T{});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t k = 0; k < taps.size(); ++k) {
      y[i + k] += x[i] * taps[k];
    }
  }
  return y;
}

CVec to_complex(std::span<const Real> x) {
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = Complex{x[i], 0.0};
  return out;
}

template <typename T>
std::vector<T> filter_same_impl(std::span<const T> x, std::span<const Real> taps) {
  std::vector<T> full = convolve(x, taps);
  const std::size_t delay = taps.size() / 2;
  std::vector<T> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = full[i + delay];
  return y;
}

}  // namespace

bool convolve_prefers_fft(std::size_t signal_len, std::size_t kernel_len) {
  // Direct cost ~ signal_len * kernel_len multiply-adds; the spectral path
  // costs ~2 log2(block) complex multiplies per output regardless of kernel
  // length. Short kernels never win spectrally (FFT constant factor), and
  // tiny signals don't amortize the kernel-spectrum FFT.
  return kernel_len >= 32 && signal_len >= kernel_len &&
         signal_len * kernel_len >= 32768;
}

CVec convolve_direct(std::span<const Complex> x, std::span<const Real> taps) {
  if (x.empty() || taps.empty()) return {};
  // Scatter form y[i + k] += x[i] * taps[k] through the dispatch-invariant
  // kernel table; per-output contribution order (i ascending) is identical
  // to the scalar loop in convolve_direct_impl.
  CVec y(x.size() + taps.size() - 1, Complex{});
  simd::active_kernels().fir_scatter_real(x.data(), x.size(), taps.data(),
                                          taps.size(), y.data());
  return y;
}

RVec convolve_direct(std::span<const Real> x, std::span<const Real> taps) {
  return convolve_direct_impl(x, taps);
}

CVec convolve_fft(std::span<const Complex> x, std::span<const Real> taps) {
  if (x.empty() || taps.empty()) return {};
  return overlap_save_convolve(x, to_complex(taps));
}

RVec convolve_fft(std::span<const Real> x, std::span<const Real> taps) {
  if (x.empty() || taps.empty()) return {};
  const CVec y = overlap_save_convolve(to_complex(x), to_complex(taps));
  RVec out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i].real();
  return out;
}

CVec convolve(std::span<const Complex> x, std::span<const Real> taps) {
  return convolve_prefers_fft(x.size(), taps.size()) ? convolve_fft(x, taps)
                                                     : convolve_direct(x, taps);
}

RVec convolve(std::span<const Real> x, std::span<const Real> taps) {
  return convolve_prefers_fft(x.size(), taps.size()) ? convolve_fft(x, taps)
                                                     : convolve_direct(x, taps);
}

CVec filter_same(std::span<const Complex> x, std::span<const Real> taps) {
  return filter_same_impl(x, taps);
}

RVec filter_same(std::span<const Real> x, std::span<const Real> taps) {
  return filter_same_impl(x, taps);
}

RVec single_pole_lowpass(std::span<const Real> x, Real alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
  RVec y(x.size());
  Real state = x.empty() ? 0.0 : x[0];
  for (std::size_t i = 0; i < x.size(); ++i) {
    state += alpha * (x[i] - state);
    y[i] = state;
  }
  return y;
}

}  // namespace itb::dsp
