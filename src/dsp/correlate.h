// Cross-correlation primitives used for packet synchronization (802.11b SFD,
// Barker despreading, ZigBee chip matching).
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// Sliding cross-correlation of x against pattern (conjugated): output[i] =
/// sum_k x[i+k] * conj(pattern[k]) for i in [0, x.size()-pattern.size()].
CVec cross_correlate(std::span<const Complex> x, std::span<const Complex> pattern);

/// Index of the maximum-magnitude correlation lag.
std::size_t peak_lag(std::span<const Complex> corr);

/// Normalized correlation magnitude at a lag: |corr| / (||x_window|| *
/// ||pattern||), in [0, 1].
Real normalized_peak(std::span<const Complex> x, std::span<const Complex> pattern,
                     std::size_t lag);

}  // namespace itb::dsp
