// Cross-correlation primitives used for packet synchronization (802.11b SFD,
// Barker despreading, ZigBee chip matching).
//
// Like dsp/fir.h, correlation has a direct path and an FFT overlap-save
// path (correlation is convolution with the conjugate-reversed pattern);
// cross_correlate() picks automatically, long preamble patterns go spectral.
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// Sliding cross-correlation of x against pattern (conjugated): output[i] =
/// sum_k x[i+k] * conj(pattern[k]) for i in [0, x.size()-pattern.size()].
/// Auto-dispatches between the direct and spectral paths.
CVec cross_correlate(std::span<const Complex> x, std::span<const Complex> pattern);

/// Direct O(N*K) sliding correlation.
CVec cross_correlate_direct(std::span<const Complex> x,
                            std::span<const Complex> pattern);

/// FFT overlap-save correlation (always spectral).
CVec cross_correlate_fft(std::span<const Complex> x,
                         std::span<const Complex> pattern);

/// True when the auto path would go spectral for these sizes.
bool correlate_prefers_fft(std::size_t signal_len, std::size_t pattern_len);

/// Index of the maximum-magnitude correlation lag.
std::size_t peak_lag(std::span<const Complex> corr);

/// Normalized correlation magnitude at a lag: |corr| / (||x_window|| *
/// ||pattern||), in [0, 1].
Real normalized_peak(std::span<const Complex> x, std::span<const Complex> pattern,
                     std::size_t lag);

}  // namespace itb::dsp
