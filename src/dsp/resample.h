// Sample-rate conversion helpers.
//
// Different PHYs in this project run at different natural rates (BLE at
// 8 Msps, 802.11b synthesis at 143 Msps, OFDM at 20 Msps, ZigBee at
// 96 Msps); the channel combiner resamples everything to a common rate.
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// Integer upsampling: zero-stuff by factor L then low-pass interpolate.
/// Output length is exactly x.size() * L.
CVec upsample(std::span<const Complex> x, std::size_t factor);

/// Integer decimation: anti-alias low-pass then keep every Mth sample
/// (indices 0, M, 2M, ...). Output length is ceil(x.size() / M): a trailing
/// partial stride still contributes its first sample, so frame tails at
/// non-divisible lengths are never silently dropped.
CVec decimate(std::span<const Complex> x, std::size_t factor);

/// Linear-interpolation resampler to an arbitrary rational/real ratio
/// out_rate/in_rate. Adequate for the smooth (already band-limited) signals
/// this project moves between rate domains.
CVec resample_linear(std::span<const Complex> x, Real in_rate_hz, Real out_rate_hz);

/// Repeats each sample `factor` times (zero-order hold). Used for chip-rate
/// to sample-rate expansion where the rectangular shape is intentional
/// (switching waveforms).
CVec hold_upsample(std::span<const Complex> x, std::size_t factor);
RVec hold_upsample(std::span<const Real> x, std::size_t factor);

}  // namespace itb::dsp
