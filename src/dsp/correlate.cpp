#include "dsp/correlate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/fir.h"
#include "dsp/ola.h"
#include "obs/prof.h"

namespace itb::dsp {

CVec cross_correlate_direct(std::span<const Complex> x,
                            std::span<const Complex> pattern) {
  if (x.size() < pattern.size() || pattern.empty()) return {};
  CVec out(x.size() - pattern.size() + 1);
  // Purely real patterns (Barker, chip sequences) halve the multiply count:
  // x * conj(p) degenerates to x * p.real().
  bool real_pattern = true;
  for (const Complex& p : pattern) {
    if (p.imag() != 0.0) {
      real_pattern = false;
      break;
    }
  }
  if (real_pattern) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      Real ar = 0.0;
      Real ai = 0.0;
      for (std::size_t k = 0; k < pattern.size(); ++k) {
        const Real pr = pattern[k].real();
        ar += x[i + k].real() * pr;
        ai += x[i + k].imag() * pr;
      }
      out[i] = Complex{ar, ai};
    }
    return out;
  }
  // Explicit real arithmetic for x * conj(p): the operands are finite, so
  // std::complex's inf/NaN multiply fixup is dead weight in this hot loop.
  for (std::size_t i = 0; i < out.size(); ++i) {
    Real ar = 0.0;
    Real ai = 0.0;
    for (std::size_t k = 0; k < pattern.size(); ++k) {
      const Real xr = x[i + k].real();
      const Real xi = x[i + k].imag();
      const Real pr = pattern[k].real();
      const Real pi = pattern[k].imag();
      ar += xr * pr + xi * pi;
      ai += xi * pr - xr * pi;
    }
    out[i] = Complex{ar, ai};
  }
  return out;
}

CVec cross_correlate_fft(std::span<const Complex> x,
                         std::span<const Complex> pattern) {
  static const std::size_t kZone = obs::prof_zone("phy.correlate_fft");
  const obs::ProfZone prof(kZone);
  if (x.size() < pattern.size() || pattern.empty()) return {};
  const std::size_t np = pattern.size();
  // corr[i] = sum_k x[i+k] conj(p[k]) is the full linear convolution of x
  // with the conjugate-reversed pattern, restricted to its "valid" region
  // [np-1, np-1 + (nx-np+1)).
  CVec kernel(np);
  for (std::size_t k = 0; k < np; ++k) kernel[k] = std::conj(pattern[np - 1 - k]);
  const CVec full = overlap_save_convolve(x, kernel);
  return CVec(full.begin() + static_cast<std::ptrdiff_t>(np - 1),
              full.begin() + static_cast<std::ptrdiff_t>(np - 1 + x.size() - np + 1));
}

bool correlate_prefers_fft(std::size_t signal_len, std::size_t pattern_len) {
  // Correlation is convolution with the conjugate-reversed pattern, so the
  // crossover economics are identical; keep one source of truth.
  return convolve_prefers_fft(signal_len, pattern_len);
}

CVec cross_correlate(std::span<const Complex> x, std::span<const Complex> pattern) {
  return correlate_prefers_fft(x.size(), pattern.size())
             ? cross_correlate_fft(x, pattern)
             : cross_correlate_direct(x, pattern);
}

std::size_t peak_lag(std::span<const Complex> corr) {
  std::size_t best = 0;
  Real best_mag = -1.0;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const Real m = std::norm(corr[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

Real normalized_peak(std::span<const Complex> x, std::span<const Complex> pattern,
                     std::size_t lag) {
  assert(lag + pattern.size() <= x.size());
  Complex acc{0.0, 0.0};
  Real xe = 0.0;
  Real pe = 0.0;
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    acc += x[lag + k] * std::conj(pattern[k]);
    xe += std::norm(x[lag + k]);
    pe += std::norm(pattern[k]);
  }
  const Real denom = std::sqrt(xe * pe);
  return denom > 0.0 ? std::abs(acc) / denom : 0.0;
}

}  // namespace itb::dsp
