#include "dsp/correlate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include <vector>

#include "dsp/fir.h"
#include "dsp/ola.h"
#include "dsp/simd/kernels.h"
#include "obs/prof.h"

namespace itb::dsp {

CVec cross_correlate_direct(std::span<const Complex> x,
                            std::span<const Complex> pattern) {
  if (x.size() < pattern.size() || pattern.empty()) return {};
  CVec out(x.size() - pattern.size() + 1);
  // Purely real patterns (Barker, chip sequences) halve the multiply count:
  // x * conj(p) degenerates to x * p.real().
  bool real_pattern = true;
  for (const Complex& p : pattern) {
    if (p.imag() != 0.0) {
      real_pattern = false;
      break;
    }
  }
  const simd::KernelTable& kern = simd::active_kernels();
  if (real_pattern) {
    thread_local std::vector<Real> preal;
    preal.resize(pattern.size());
    for (std::size_t k = 0; k < pattern.size(); ++k) preal[k] = pattern[k].real();
    kern.correlate_real(x.data(), x.size(), preal.data(), pattern.size(),
                        out.data());
    return out;
  }
  // x * conj(p) with explicit real arithmetic (finite operands, so the
  // std::complex inf/NaN multiply fixup is dead weight); vectorized across
  // output lags with per-lag accumulation order unchanged.
  kern.correlate_conj(x.data(), x.size(), pattern.data(), pattern.size(),
                      out.data());
  return out;
}

CVec cross_correlate_fft(std::span<const Complex> x,
                         std::span<const Complex> pattern) {
  static const std::size_t kZone = obs::prof_zone("phy.correlate_fft");
  const obs::ProfZone prof(kZone);
  if (x.size() < pattern.size() || pattern.empty()) return {};
  const std::size_t np = pattern.size();
  // corr[i] = sum_k x[i+k] conj(p[k]) is the full linear convolution of x
  // with the conjugate-reversed pattern, restricted to its "valid" region
  // [np-1, np-1 + (nx-np+1)).
  CVec kernel(np);
  for (std::size_t k = 0; k < np; ++k) kernel[k] = std::conj(pattern[np - 1 - k]);
  const CVec full = overlap_save_convolve(x, kernel);
  return CVec(full.begin() + static_cast<std::ptrdiff_t>(np - 1),
              full.begin() + static_cast<std::ptrdiff_t>(np - 1 + x.size() - np + 1));
}

bool correlate_prefers_fft(std::size_t signal_len, std::size_t pattern_len) {
  // Correlation is convolution with the conjugate-reversed pattern, so the
  // crossover economics are identical; keep one source of truth.
  return convolve_prefers_fft(signal_len, pattern_len);
}

CVec cross_correlate(std::span<const Complex> x, std::span<const Complex> pattern) {
  return correlate_prefers_fft(x.size(), pattern.size())
             ? cross_correlate_fft(x, pattern)
             : cross_correlate_direct(x, pattern);
}

std::size_t peak_lag(std::span<const Complex> corr) {
  std::size_t best = 0;
  Real best_mag = -1.0;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const Real m = std::norm(corr[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

Real normalized_peak(std::span<const Complex> x, std::span<const Complex> pattern,
                     std::size_t lag) {
  assert(lag + pattern.size() <= x.size());
  Complex acc{0.0, 0.0};
  Real xe = 0.0;
  Real pe = 0.0;
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    acc += x[lag + k] * std::conj(pattern[k]);
    xe += std::norm(x[lag + k]);
    pe += std::norm(pattern[k]);
  }
  const Real denom = std::sqrt(xe * pe);
  return denom > 0.0 ? std::abs(acc) / denom : 0.0;
}

}  // namespace itb::dsp
