#include "dsp/correlate.h"

#include <cassert>
#include <cmath>

namespace itb::dsp {

CVec cross_correlate(std::span<const Complex> x, std::span<const Complex> pattern) {
  if (x.size() < pattern.size() || pattern.empty()) return {};
  CVec out(x.size() - pattern.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t k = 0; k < pattern.size(); ++k) {
      acc += x[i + k] * std::conj(pattern[k]);
    }
    out[i] = acc;
  }
  return out;
}

std::size_t peak_lag(std::span<const Complex> corr) {
  std::size_t best = 0;
  Real best_mag = -1.0;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const Real m = std::norm(corr[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

Real normalized_peak(std::span<const Complex> x, std::span<const Complex> pattern,
                     std::size_t lag) {
  assert(lag + pattern.size() <= x.size());
  Complex acc{0.0, 0.0};
  Real xe = 0.0;
  Real pe = 0.0;
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    acc += x[lag + k] * std::conj(pattern[k]);
    xe += std::norm(x[lag + k]);
    pe += std::norm(pattern[k]);
  }
  const Real denom = std::sqrt(xe * pe);
  return denom > 0.0 ? std::abs(acc) / denom : 0.0;
}

}  // namespace itb::dsp
