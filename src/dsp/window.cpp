#include "dsp/window.h"

#include <cmath>

namespace itb::dsp {

RVec make_window(WindowKind kind, std::size_t n) {
  RVec w(n, 1.0);
  if (n <= 1) return w;
  const Real denom = static_cast<Real>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = static_cast<Real>(i) / denom;
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * t);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * t);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * t) + 0.08 * std::cos(2.0 * kTwoPi * t);
        break;
    }
  }
  return w;
}

Real window_power(const RVec& w) {
  Real acc = 0.0;
  for (Real v : w) acc += v * v;
  return acc;
}

}  // namespace itb::dsp
