#include "dsp/ola.h"

#include <algorithm>

#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/simd/kernels.h"
#include "obs/prof.h"

namespace itb::dsp {

std::size_t overlap_save_block_size(std::size_t nh, std::size_t ny) {
  // Aim for ~8 kernel lengths per block: each block of size L yields
  // L - (nh - 1) outputs for two FFTs of L, so L >> nh keeps the per-output
  // cost near 2 log2(L) butterflies. Below 256 the FFT bookkeeping dominates.
  std::size_t block = next_power_of_two(std::max<std::size_t>(8 * nh, 256));
  // If everything fits in one transform, don't pick a bigger block than that.
  const std::size_t single = next_power_of_two(std::max<std::size_t>(ny, nh));
  return std::min(block, std::max(single, next_power_of_two(nh)));
}

CVec overlap_save_convolve(std::span<const Complex> x, std::span<const Complex> h) {
  static const std::size_t kZone = obs::prof_zone("phy.overlap_save");
  const obs::ProfZone prof(kZone);
  const std::size_t nx = x.size();
  const std::size_t nh = h.size();
  if (nx == 0 || nh == 0) return {};

  const std::size_t ny = nx + nh - 1;
  const std::size_t block = overlap_save_block_size(nh, ny);
  const std::size_t step = block - (nh - 1);
  const FftPlan& plan = fft_plan(block);

  CVec kernel_spectrum(block, Complex{0.0, 0.0});
  std::copy(h.begin(), h.end(), kernel_spectrum.begin());
  plan.forward(kernel_spectrum);

  CVec y(ny);
  CVec buf(block);
  for (std::size_t out_start = 0; out_start < ny; out_start += step) {
    // Block i covers input samples [out_start - (nh-1), out_start - (nh-1) + block),
    // zero-padded outside [0, nx); outputs land at [out_start, out_start + step).
    const std::ptrdiff_t in_start =
        static_cast<std::ptrdiff_t>(out_start) - static_cast<std::ptrdiff_t>(nh - 1);
    for (std::size_t i = 0; i < block; ++i) {
      const std::ptrdiff_t src = in_start + static_cast<std::ptrdiff_t>(i);
      buf[i] = (src >= 0 && src < static_cast<std::ptrdiff_t>(nx))
                   ? x[static_cast<std::size_t>(src)]
                   : Complex{0.0, 0.0};
    }
    plan.forward(buf);
    simd::active_kernels().cmul_pointwise(buf.data(), kernel_spectrum.data(),
                                          block);
    plan.inverse(buf);
    const std::size_t take = std::min(step, ny - out_start);
    for (std::size_t t = 0; t < take; ++t) y[out_start + t] = buf[nh - 1 + t];
  }
  return y;
}

}  // namespace itb::dsp
