// Classic analysis windows used by the PSD estimator and FIR designer.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace itb::dsp {

enum class WindowKind { kRectangular, kHann, kHamming, kBlackman };

/// Returns the n-point symmetric window of the given kind.
RVec make_window(WindowKind kind, std::size_t n);

/// Sum of squared window coefficients (used for PSD normalization).
Real window_power(const RVec& w);

}  // namespace itb::dsp
