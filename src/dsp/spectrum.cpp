#include "dsp/spectrum.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dsp/fft.h"
#include "dsp/fft_plan.h"

namespace itb::dsp {

Psd welch_psd(std::span<const Complex> x, Real sample_rate_hz,
              const WelchConfig& cfg) {
  assert(cfg.overlap < cfg.segment_size);
  const std::size_t seg = cfg.segment_size;
  const std::size_t hop = seg - cfg.overlap;

  const RVec w = make_window(cfg.window, seg);
  const Real wpow = window_power(w);

  // One cache lookup for the whole run; every segment reuses the tables.
  const FftPlan& plan = fft_plan(seg);

  RVec accum(seg, 0.0);
  std::size_t count = 0;
  CVec block(seg);
  if (x.size() >= seg) {
    for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
      for (std::size_t i = 0; i < seg; ++i) block[i] = x[start + i] * w[i];
      plan.forward(block);
      for (std::size_t i = 0; i < seg; ++i) accum[i] += std::norm(block[i]);
      ++count;
    }
  } else {
    // Zero-pad a short input to a single segment.
    std::fill(block.begin(), block.end(), Complex{0.0, 0.0});
    for (std::size_t i = 0; i < x.size(); ++i) block[i] = x[i] * w[i];
    plan.forward(block);
    for (std::size_t i = 0; i < seg; ++i) accum[i] += std::norm(block[i]);
    count = 1;
  }

  Psd out;
  out.bin_hz = sample_rate_hz / static_cast<Real>(seg);
  out.power_linear.resize(seg);
  const Real norm = 1.0 / (static_cast<Real>(count) * wpow * static_cast<Real>(seg));
  for (std::size_t i = 0; i < seg; ++i) out.power_linear[i] = accum[i] * norm;
  out.power_linear = fftshift(std::span<const Real>(out.power_linear));

  out.freq_hz.resize(seg);
  for (std::size_t i = 0; i < seg; ++i) {
    out.freq_hz[i] =
        (static_cast<Real>(i) - static_cast<Real>(seg) / 2.0) * out.bin_hz;
  }
  out.power_db.resize(seg);
  for (std::size_t i = 0; i < seg; ++i) {
    out.power_db[i] = 10.0 * std::log10(std::max(out.power_linear[i], 1e-30));
  }
  return out;
}

Real band_power(const Psd& psd, Real f_lo_hz, Real f_hi_hz) {
  Real acc = 0.0;
  for (std::size_t i = 0; i < psd.freq_hz.size(); ++i) {
    if (psd.freq_hz[i] >= f_lo_hz && psd.freq_hz[i] <= f_hi_hz) {
      acc += psd.power_linear[i];
    }
  }
  return acc;
}

Real sideband_rejection_db(const Psd& psd, Real wanted_lo_hz, Real wanted_hi_hz,
                           Real image_lo_hz, Real image_hi_hz) {
  const Real wanted = band_power(psd, wanted_lo_hz, wanted_hi_hz);
  const Real image = band_power(psd, image_lo_hz, image_hi_hz);
  return 10.0 * std::log10(std::max(wanted, 1e-30) / std::max(image, 1e-30));
}

Real peak_frequency_hz(const Psd& psd) {
  const auto it = std::max_element(psd.power_linear.begin(), psd.power_linear.end());
  const auto idx = static_cast<std::size_t>(it - psd.power_linear.begin());
  return psd.freq_hz[idx];
}

Real occupied_bandwidth_hz(const Psd& psd, Real fraction) {
  assert(fraction > 0.0 && fraction < 1.0);
  Real total = 0.0;
  for (Real p : psd.power_linear) total += p;
  if (total <= 0.0) return 0.0;

  const auto it = std::max_element(psd.power_linear.begin(), psd.power_linear.end());
  auto lo = static_cast<std::ptrdiff_t>(it - psd.power_linear.begin());
  auto hi = lo;
  Real acc = psd.power_linear[lo];
  const auto n = static_cast<std::ptrdiff_t>(psd.power_linear.size());
  while (acc < fraction * total) {
    const Real left = lo > 0 ? psd.power_linear[lo - 1] : -1.0;
    const Real right = hi + 1 < n ? psd.power_linear[hi + 1] : -1.0;
    if (left < 0.0 && right < 0.0) break;
    if (left >= right) {
      --lo;
      acc += left;
    } else {
      ++hi;
      acc += right;
    }
  }
  return static_cast<Real>(hi - lo + 1) * psd.bin_hz;
}

void normalize_peak(Psd& psd) {
  if (psd.power_db.empty()) return;
  const Real peak = *std::max_element(psd.power_db.begin(), psd.power_db.end());
  for (Real& v : psd.power_db) v -= peak;
}

}  // namespace itb::dsp
