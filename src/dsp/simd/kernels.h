// Batched PHY kernels with dispatch-invariant numerics.
//
// Every kernel is defined by a *numeric specification*: a fixed sequence of
// IEEE-754 double operations per output element. The scalar reference
// (kernels_scalar.cpp) implements the specification with plain loops; the
// AVX2/NEON tables implement the same specification with vector instructions
// whose per-element semantics are identical. Concretely:
//
//  * No FMA and no reassociation: the vector TUs are compiled with the bare
//    ISA flag (-mavx2, never -mfma) and use explicit mul/add intrinsics, so
//    every multiply and add rounds exactly like its scalar counterpart.
//  * Sliding/pointwise kernels vectorize ACROSS outputs: each output's
//    accumulation still walks k = 0,1,2,... sequentially in one accumulator,
//    exactly like the scalar loop, so results are bit-identical.
//  * Single-dot reductions (dot_conj) use the lane-stable contract: four
//    fixed accumulator lanes, lane j summing elements j, j+4, j+8, ...,
//    reduced as (l0 + l2) + (l1 + l3). The scalar reference implements this
//    exact shape, so the reduction order never depends on dispatch.
//
// Adding a kernel: write the spec here, implement it in kernels_scalar.cpp
// (the spec IS the scalar code), add the vector versions, add it to the
// parity fuzz suite (tests/simd_parity_test.cpp). Raw intrinsics are only
// permitted under src/dsp/simd/ (enforced by detlint's simd-intrinsics rule).
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace itb::dsp::simd {

struct KernelTable {
  // a[i] = a[i] * b[i] (complex multiply, spec: re = ar*br - ai*bi,
  // im = ar*bi + ai*br), i ascending.
  void (*cmul_pointwise)(Complex* a, const Complex* b, std::size_t n);

  // x[i] *= s for 2n doubles (re and im scaled independently).
  void (*scale_real)(Complex* x, Real s, std::size_t n);

  // Lane-stable reduction: sum_i x[i] * conj(p[i]) with four accumulator
  // lanes (lane j takes i % 4 == j; per element re += xr*pr + xi*pi,
  // im += xi*pr - xr*pi), reduced as (l0 + l2) + (l1 + l3).
  Complex (*dot_conj)(const Complex* x, const Complex* p, std::size_t n);

  // Sliding correlation against a real pattern: for each lag i in
  // [0, nx - np], out[i] = sum_{k=0}^{np-1} x[i+k] * p[k], k ascending,
  // single accumulator per output (re += xr*pk, im += xi*pk).
  void (*correlate_real)(const Complex* x, std::size_t nx, const Real* p,
                         std::size_t np, Complex* out);

  // Sliding correlation against a complex pattern, conjugated: for each lag
  // i, out[i] = sum_k x[i+k] * conj(p[k]), k ascending; per element
  // re += xr*pr + xi*pi, im += xi*pr - xr*pi.
  void (*correlate_conj)(const Complex* x, std::size_t nx, const Complex* p,
                         std::size_t np, Complex* out);

  // Block despread: out[s] = (sum_{k=0}^{np-1} chips[s*np + k] * p[k]) / divisor
  // for s in [0, nsym), k ascending (re += cr*pk, im += ci*pk), then one
  // IEEE divide by `divisor`.
  void (*despread_real)(const Complex* chips, const Real* p, std::size_t np,
                        std::size_t nsym, Real divisor, Complex* out);

  // acc[j] += s * conj(p[j]) for j in [0, n): per element
  // re += sr*pr - si*(-pi), im += sr*(-pi) + si*pr (matches
  // std::complex s * conj(p) exactly).
  void (*accum_scaled_conj)(Complex* acc, const Complex* p, Complex s,
                            std::size_t n);

  // Scatter-form convolution with real taps: y[i + k] += x[i] * taps[k],
  // i outer ascending, k inner ascending. Caller provides y zero-initialised
  // with size nx + nt - 1.
  void (*fir_scatter_real)(const Complex* x, std::size_t nx, const Real* taps,
                           std::size_t nt, Complex* y);

  // Causal complex FIR with ramp-in: y[i] = sum_{k=0}^{min(nt-1, i)}
  // taps[k] * x[i - k], k ascending; per element re += tr*xr - ti*xi,
  // im += tr*xi + ti*xr. y must not alias x.
  void (*fir_causal_complex)(const Complex* x, std::size_t n,
                             const Complex* taps, std::size_t nt, Complex* y);

  // v = alpha * v + beta * conj(v) in place: t1 = alpha * v and
  // t2 = beta * conj(v) via the std::complex finite-math formula, then
  // v = t1 + t2 (exact std::complex operator order).
  void (*iq_imbalance)(Complex* v, Complex alpha, Complex beta, std::size_t n);

  // Mid-rise ADC quantizer on 2n doubles, in place: c = min(max(d, -fs),
  // fs - step); d' = (floor(c / step) + 0.5) * step. NaN inputs are the
  // caller's problem (the impairment chain never produces them here).
  void (*quantize_midrise)(Complex* x, Real full_scale, Real step,
                           std::size_t n);

  // FFT butterfly stages over bit-reversed data (layout of FftPlan::run).
  // stage2: for i = 0, 2, ...: u = a[i], v = a[i+1]; a[i] = u + v,
  // a[i+1] = u - v.
  void (*fft_stage2)(Complex* a, std::size_t n);

  // stage4: for i = 0, 4, ...: v0 = a[i+2]; t = a[i+3] rotated by -j
  // (forward: (t.im, -t.re)) or +j (inverse: (-t.im, t.re));
  // a[i] = a[i] + v0, a[i+2] = a[i] - v0, a[i+1] += t', a[i+3] = a[i+1] - t'.
  void (*fft_stage4)(Complex* a, std::size_t n, bool inverse);

  // One radix-2 stage for len >= 8: for k in [0, half):
  // w = tw[k] (conjugated when inverse); h = hi[k];
  // v = (h.re*w.re - h.im*w.im, h.re*w.im + h.im*w.re);
  // hi[k] = lo[k] - v; lo[k] = lo[k] + v. half is a multiple of 4.
  void (*fft_radix2_stage)(Complex* lo, Complex* hi, const Complex* tw,
                           std::size_t half, bool inverse);
};

/// The scalar reference table (always available; the specification).
const KernelTable* scalar_kernels();

/// Vector tables; nullptr when the corresponding TU was not compiled in.
const KernelTable* avx2_kernels();
const KernelTable* neon_kernels();

/// Table for the current dispatch level (see dispatch.h).
const KernelTable& active_kernels();

}  // namespace itb::dsp::simd
