#include "dsp/simd/kernels.h"

#include "dsp/simd/dispatch.h"

namespace itb::dsp::simd {

const KernelTable& active_kernels() {
  switch (active_level()) {
    case Level::kAvx2: {
      const KernelTable* t = avx2_kernels();
      if (t != nullptr) return *t;
      break;
    }
    case Level::kNeon: {
      const KernelTable* t = neon_kernels();
      if (t != nullptr) return *t;
      break;
    }
    case Level::kScalar:
      break;
  }
  return *scalar_kernels();
}

}  // namespace itb::dsp::simd
