// Runtime SIMD dispatch for the batched PHY kernels (see kernels.h).
//
// Exactly one kernel table is active at a time: the scalar reference, or a
// vector implementation (AVX2 on x86-64, NEON on aarch64) compiled into its
// own translation unit with the matching -m flags. Selection happens once at
// startup from (a) what this binary was compiled with, (b) what the CPU
// reports at runtime, and (c) the ITB_DISABLE_SIMD environment variable;
// tests can additionally flip dispatch at runtime with set_simd_enabled().
//
// The determinism contract (DESIGN.md "Batched PHY engine and dispatch
// determinism") requires every kernel to produce bit-identical results under
// any dispatch level, so which table is active is a pure performance choice
// and never leaks into results, digests, or traces.
#pragma once

namespace itb::dsp::simd {

enum class Level {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Best vector level compiled into this binary (kScalar when the build had
/// no vector TU, e.g. -DITB_ENABLE_SIMD=OFF or an unsupported compiler).
Level compiled_level();

/// Level actually usable on this machine: compiled_level() gated by runtime
/// CPU feature detection and the ITB_DISABLE_SIMD environment variable
/// (any non-empty value other than "0" forces scalar).
Level detected_level();

/// Level the kernel dispatch is currently using. Equals detected_level()
/// unless set_simd_enabled(false) forced scalar.
Level active_level();

/// Runtime override, primarily for the parity suite and the forced-scalar
/// CI leg: set_simd_enabled(false) routes every kernel through the scalar
/// reference; set_simd_enabled(true) restores detected_level(). Thread-safe;
/// not intended to be flipped concurrently with in-flight kernels.
void set_simd_enabled(bool enabled);

/// True when active_level() != kScalar.
bool simd_active();

/// Human-readable name for diagnostics ("scalar", "avx2", "neon").
const char* level_name(Level level);

}  // namespace itb::dsp::simd
