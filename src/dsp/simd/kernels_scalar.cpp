// Scalar reference kernels — this file IS the numeric specification.
//
// Every loop here is written as the exact IEEE-754 operation sequence the
// vector implementations must reproduce (see kernels.h). Keep the arithmetic
// shape stable: reordering an addition or fusing a multiply-add in this file
// is a silent break of the dispatch-invariance contract.
#include <algorithm>
#include <cmath>

#include "dsp/simd/kernels.h"

namespace itb::dsp::simd {
namespace ref {

void cmul_pointwise(Complex* a, const Complex* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Real ar = a[i].real();
    const Real ai = a[i].imag();
    const Real br = b[i].real();
    const Real bi = b[i].imag();
    a[i] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void scale_real(Complex* x, Real s, std::size_t n) {
  Real* d = reinterpret_cast<Real*>(x);
  for (std::size_t i = 0; i < 2 * n; ++i) d[i] *= s;
}

Complex dot_conj(const Complex* x, const Complex* p, std::size_t n) {
  // Lane-stable contract: lane j accumulates elements j, j+4, j+8, ...
  Real lr[4] = {0.0, 0.0, 0.0, 0.0};
  Real li[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lane = i % 4;
    const Real xr = x[i].real();
    const Real xi = x[i].imag();
    const Real pr = p[i].real();
    const Real pi = p[i].imag();
    lr[lane] += xr * pr + xi * pi;
    li[lane] += xi * pr - xr * pi;
  }
  return Complex((lr[0] + lr[2]) + (lr[1] + lr[3]),
                 (li[0] + li[2]) + (li[1] + li[3]));
}

void correlate_real(const Complex* x, std::size_t nx, const Real* p,
                    std::size_t np, Complex* out) {
  const std::size_t n_out = nx - np + 1;
  for (std::size_t i = 0; i < n_out; ++i) {
    Real ar = 0.0;
    Real ai = 0.0;
    for (std::size_t k = 0; k < np; ++k) {
      const Real pk = p[k];
      ar += x[i + k].real() * pk;
      ai += x[i + k].imag() * pk;
    }
    out[i] = Complex(ar, ai);
  }
}

void correlate_conj(const Complex* x, std::size_t nx, const Complex* p,
                    std::size_t np, Complex* out) {
  const std::size_t n_out = nx - np + 1;
  for (std::size_t i = 0; i < n_out; ++i) {
    Real ar = 0.0;
    Real ai = 0.0;
    for (std::size_t k = 0; k < np; ++k) {
      const Real xr = x[i + k].real();
      const Real xi = x[i + k].imag();
      const Real pr = p[k].real();
      const Real pi = p[k].imag();
      ar += xr * pr + xi * pi;
      ai += xi * pr - xr * pi;
    }
    out[i] = Complex(ar, ai);
  }
}

void despread_real(const Complex* chips, const Real* p, std::size_t np,
                   std::size_t nsym, Real divisor, Complex* out) {
  for (std::size_t s = 0; s < nsym; ++s) {
    const Complex* block = chips + s * np;
    Real ar = 0.0;
    Real ai = 0.0;
    for (std::size_t k = 0; k < np; ++k) {
      const Real pk = p[k];
      ar += block[k].real() * pk;
      ai += block[k].imag() * pk;
    }
    out[s] = Complex(ar / divisor, ai / divisor);
  }
}

void accum_scaled_conj(Complex* acc, const Complex* p, Complex s,
                       std::size_t n) {
  const Real sr = s.real();
  const Real si = s.imag();
  for (std::size_t j = 0; j < n; ++j) {
    const Real pr = p[j].real();
    const Real npi = -p[j].imag();
    // Exactly std::complex s * conj(p), i.e. s * (pr, npi):
    // re = sr*pr - si*npi, im = sr*npi + si*pr.
    acc[j] = Complex(acc[j].real() + (sr * pr - si * npi),
                     acc[j].imag() + (sr * npi + si * pr));
  }
}

void fir_scatter_real(const Complex* x, std::size_t nx, const Real* taps,
                      std::size_t nt, Complex* y) {
  Real* yd = reinterpret_cast<Real*>(y);
  for (std::size_t i = 0; i < nx; ++i) {
    const Real xr = x[i].real();
    const Real xi = x[i].imag();
    for (std::size_t k = 0; k < nt; ++k) {
      const Real tk = taps[k];
      yd[2 * (i + k)] += xr * tk;
      yd[2 * (i + k) + 1] += xi * tk;
    }
  }
}

void fir_causal_complex(const Complex* x, std::size_t n, const Complex* taps,
                        std::size_t nt, Complex* y) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t kmax = std::min(nt, i + 1);
    Real ar = 0.0;
    Real ai = 0.0;
    for (std::size_t k = 0; k < kmax; ++k) {
      const Real tr = taps[k].real();
      const Real ti = taps[k].imag();
      const Real xr = x[i - k].real();
      const Real xi = x[i - k].imag();
      ar += tr * xr - ti * xi;
      ai += tr * xi + ti * xr;
    }
    y[i] = Complex(ar, ai);
  }
}

void iq_imbalance(Complex* v, Complex alpha, Complex beta, std::size_t n) {
  const Real ar = alpha.real();
  const Real ai = alpha.imag();
  const Real br = beta.real();
  const Real bi = beta.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const Real vr = v[i].real();
    const Real vi = v[i].imag();
    const Real nvi = -vi;
    // t1 = alpha * v, t2 = beta * conj(v), each via the std::complex
    // finite-math formula; result is t1 + t2.
    const Real t1r = ar * vr - ai * vi;
    const Real t1i = ar * vi + ai * vr;
    const Real t2r = br * vr - bi * nvi;
    const Real t2i = br * nvi + bi * vr;
    v[i] = Complex(t1r + t2r, t1i + t2i);
  }
}

void quantize_midrise(Complex* x, Real full_scale, Real step, std::size_t n) {
  Real* d = reinterpret_cast<Real*>(x);
  const Real lo = -full_scale;
  const Real hi = full_scale - step;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const Real c = std::min(std::max(d[i], lo), hi);
    d[i] = (std::floor(c / step) + 0.5) * step;
  }
}

void fft_stage2(Complex* a, std::size_t n) {
  for (std::size_t i = 0; i < n; i += 2) {
    const Complex u = a[i];
    const Complex v = a[i + 1];
    a[i] = u + v;
    a[i + 1] = u - v;
  }
}

void fft_stage4(Complex* a, std::size_t n, bool inverse) {
  for (std::size_t i = 0; i < n; i += 4) {
    const Complex u0 = a[i];
    const Complex u1 = a[i + 1];
    const Complex v0 = a[i + 2];
    const Complex t = a[i + 3];
    const Complex v1 = inverse ? Complex(-t.imag(), t.real())
                               : Complex(t.imag(), -t.real());
    a[i] = u0 + v0;
    a[i + 2] = u0 - v0;
    a[i + 1] = u1 + v1;
    a[i + 3] = u1 - v1;
  }
}

void fft_radix2_stage(Complex* lo, Complex* hi, const Complex* tw,
                      std::size_t half, bool inverse) {
  for (std::size_t k = 0; k < half; ++k) {
    const Real wr = tw[k].real();
    const Real wi = inverse ? -tw[k].imag() : tw[k].imag();
    const Real hr = hi[k].real();
    const Real hi_im = hi[k].imag();
    const Real vr = hr * wr - hi_im * wi;
    const Real vi = hr * wi + hi_im * wr;
    const Complex l = lo[k];
    hi[k] = Complex(l.real() - vr, l.imag() - vi);
    lo[k] = Complex(l.real() + vr, l.imag() + vi);
  }
}

}  // namespace ref

const KernelTable* scalar_kernels() {
  static const KernelTable table = {
      ref::cmul_pointwise, ref::scale_real,        ref::dot_conj,
      ref::correlate_real, ref::correlate_conj,    ref::despread_real,
      ref::accum_scaled_conj, ref::fir_scatter_real, ref::fir_causal_complex,
      ref::iq_imbalance,   ref::quantize_midrise,  ref::fft_stage2,
      ref::fft_stage4,     ref::fft_radix2_stage,
  };
  return &table;
}

}  // namespace itb::dsp::simd
