#include "dsp/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "dsp/simd/kernels.h"

namespace itb::dsp::simd {
namespace {

bool env_disables_simd() {
  const char* v = std::getenv("ITB_DISABLE_SIMD");
  if (v == nullptr || v[0] == '\0') return false;
  return std::strcmp(v, "0") != 0;
}

Level compute_detected() {
  if (env_disables_simd()) return Level::kScalar;
  const Level compiled = compiled_level();
#if defined(__x86_64__) || defined(_M_X64)
  if (compiled == Level::kAvx2 && __builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
  return Level::kScalar;
#else
  // On aarch64 the NEON TU is only compiled when the baseline ISA has
  // Advanced SIMD, so no further runtime probing is needed.
  return compiled;
#endif
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace

Level compiled_level() {
#if defined(__x86_64__) || defined(_M_X64)
  return avx2_kernels() != nullptr ? Level::kAvx2 : Level::kScalar;
#else
  return neon_kernels() != nullptr ? Level::kNeon : Level::kScalar;
#endif
}

Level detected_level() {
  static const Level detected = compute_detected();
  return detected;
}

Level active_level() {
  if (!enabled_flag().load(std::memory_order_relaxed)) return Level::kScalar;
  return detected_level();
}

void set_simd_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

bool simd_active() { return active_level() != Level::kScalar; }

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

}  // namespace itb::dsp::simd
