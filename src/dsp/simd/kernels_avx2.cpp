// AVX2 kernel table. Compiled with -mavx2 and NOTHING else — in particular
// never -mfma: with FMA unavailable the compiler cannot contract the explicit
// _mm256_mul_pd/_mm256_add_pd pairs below, so every operation rounds exactly
// like its scalar-reference counterpart (kernels_scalar.cpp).
//
// Layout notes: Complex is std::complex<double>, interleaved [re, im], so a
// 256-bit vector holds two complex values. The recurring idioms:
//  * addsub(a, b) = [a0-b0, a1+b1, a2-b2, a3+b3] implements one complex
//    multiply-accumulate step with the same two products and one add/sub per
//    element as the scalar spec (IEEE a - b === a + (-b), and sign flips via
//    XOR are exact, so the bit patterns match).
//  * hadd(t1, t2) = [t1_0+t1_1, t2_0+t2_1, ...] pairs products within each
//    128-bit lane, again preserving the scalar operand order.
// Vectorization is ACROSS outputs for sliding kernels (each output keeps one
// sequential accumulator) and across the four fixed lanes for dot_conj.
#include "dsp/simd/kernels.h"

#if defined(__AVX2__) && !defined(ITB_SIMD_BUILD_OFF)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace itb::dsp::simd {
namespace {

using std::size_t;

inline const double* dptr(const Complex* p) {
  return reinterpret_cast<const double*>(p);
}
inline double* dptr(Complex* p) { return reinterpret_cast<double*>(p); }

// Sign masks: negate imaginary (odd) lanes / single lanes. XOR of the sign
// bit is an exact IEEE negation.
inline __m256d neg_odd_mask() {
  return _mm256_castsi256_pd(_mm256_set_epi64x(
      static_cast<long long>(0x8000000000000000ULL), 0,
      static_cast<long long>(0x8000000000000000ULL), 0));
}
inline __m256d neg_lane2_mask() {
  return _mm256_castsi256_pd(_mm256_set_epi64x(
      0, static_cast<long long>(0x8000000000000000ULL), 0, 0));
}
inline __m256d neg_lane3_mask() {
  return _mm256_castsi256_pd(_mm256_set_epi64x(
      static_cast<long long>(0x8000000000000000ULL), 0, 0, 0));
}

// [xr, xi] per complex -> [xi, xr].
inline __m256d swap_pairs(__m256d v) { return _mm256_permute_pd(v, 0x5); }

void cmul_pointwise(Complex* a, const Complex* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(dptr(a + i));
    const __m256d vb = _mm256_loadu_pd(dptr(b + i));
    const __m256d ar = _mm256_movedup_pd(va);
    const __m256d ai = _mm256_permute_pd(va, 0xF);
    const __m256d res = _mm256_addsub_pd(_mm256_mul_pd(ar, vb),
                                         _mm256_mul_pd(ai, swap_pairs(vb)));
    _mm256_storeu_pd(dptr(a + i), res);
  }
  for (; i < n; ++i) {
    const Real ar = a[i].real();
    const Real ai = a[i].imag();
    const Real br = b[i].real();
    const Real bi = b[i].imag();
    a[i] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void scale_real(Complex* x, Real s, size_t n) {
  double* d = dptr(x);
  const size_t nd = 2 * n;
  const __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= nd; i += 4) {
    _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), vs));
  }
  for (; i < nd; ++i) d[i] *= s;
}

Complex dot_conj(const Complex* x, const Complex* p, size_t n) {
  // accA holds lanes 0,1; accB holds lanes 2,3 (one complex per 128 bits).
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const __m256d mask = neg_odd_mask();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x0 = _mm256_loadu_pd(dptr(x + i));
    const __m256d p0 = _mm256_loadu_pd(dptr(p + i));
    const __m256d x1 = _mm256_loadu_pd(dptr(x + i + 2));
    const __m256d p1 = _mm256_loadu_pd(dptr(p + i + 2));
    // hadd([xr*pr, xi*pi], [xi*pr, -(xr*pi)]) = [re_inc, im_inc] per lane.
    const __m256d inc_a = _mm256_hadd_pd(
        _mm256_mul_pd(x0, p0),
        _mm256_mul_pd(swap_pairs(x0), _mm256_xor_pd(p0, mask)));
    const __m256d inc_b = _mm256_hadd_pd(
        _mm256_mul_pd(x1, p1),
        _mm256_mul_pd(swap_pairs(x1), _mm256_xor_pd(p1, mask)));
    acc_a = _mm256_add_pd(acc_a, inc_a);
    acc_b = _mm256_add_pd(acc_b, inc_b);
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_a);
  _mm256_store_pd(lanes + 4, acc_b);
  // lanes[] = [l0r, l0i, l1r, l1i, l2r, l2i, l3r, l3i]; finish the tail in
  // the same fixed lanes, then reduce exactly as (l0 + l2) + (l1 + l3).
  for (; i < n; ++i) {
    const size_t lane = i % 4;
    const Real xr = x[i].real();
    const Real xi = x[i].imag();
    const Real pr = p[i].real();
    const Real pi = p[i].imag();
    lanes[2 * lane] += xr * pr + xi * pi;
    lanes[2 * lane + 1] += xi * pr - xr * pi;
  }
  return Complex((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]),
                 (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

void correlate_real(const Complex* x, size_t nx, const Real* p, size_t np,
                    Complex* out) {
  const size_t n_out = nx - np + 1;
  size_t i = 0;
  for (; i + 4 <= n_out; i += 4) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t k = 0; k < np; ++k) {
      const __m256d pk = _mm256_set1_pd(p[k]);
      acc0 = _mm256_add_pd(acc0,
                           _mm256_mul_pd(_mm256_loadu_pd(dptr(x + i + k)), pk));
      acc1 = _mm256_add_pd(
          acc1, _mm256_mul_pd(_mm256_loadu_pd(dptr(x + i + k + 2)), pk));
    }
    _mm256_storeu_pd(dptr(out + i), acc0);
    _mm256_storeu_pd(dptr(out + i + 2), acc1);
  }
  for (; i < n_out; ++i) {
    Real ar = 0.0;
    Real ai = 0.0;
    for (size_t k = 0; k < np; ++k) {
      const Real pk = p[k];
      ar += x[i + k].real() * pk;
      ai += x[i + k].imag() * pk;
    }
    out[i] = Complex(ar, ai);
  }
}

void correlate_conj(const Complex* x, size_t nx, const Complex* p, size_t np,
                    Complex* out) {
  const size_t n_out = nx - np + 1;
  size_t i = 0;
  for (; i + 4 <= n_out; i += 4) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t k = 0; k < np; ++k) {
      const __m256d pr = _mm256_set1_pd(p[k].real());
      const __m256d npi = _mm256_set1_pd(-p[k].imag());
      const __m256d x0 = _mm256_loadu_pd(dptr(x + i + k));
      const __m256d x1 = _mm256_loadu_pd(dptr(x + i + k + 2));
      // addsub([xr*pr, xi*pr], [xi*(-pi), xr*(-pi)])
      //   = [xr*pr + xi*pi, xi*pr - xr*pi] per complex.
      acc0 = _mm256_add_pd(
          acc0, _mm256_addsub_pd(_mm256_mul_pd(x0, pr),
                                 _mm256_mul_pd(swap_pairs(x0), npi)));
      acc1 = _mm256_add_pd(
          acc1, _mm256_addsub_pd(_mm256_mul_pd(x1, pr),
                                 _mm256_mul_pd(swap_pairs(x1), npi)));
    }
    _mm256_storeu_pd(dptr(out + i), acc0);
    _mm256_storeu_pd(dptr(out + i + 2), acc1);
  }
  for (; i < n_out; ++i) {
    Real ar = 0.0;
    Real ai = 0.0;
    for (size_t k = 0; k < np; ++k) {
      const Real xr = x[i + k].real();
      const Real xi = x[i + k].imag();
      const Real pr = p[k].real();
      const Real pi = p[k].imag();
      ar += xr * pr + xi * pi;
      ai += xi * pr - xr * pi;
    }
    out[i] = Complex(ar, ai);
  }
}

void despread_real(const Complex* chips, const Real* p, size_t np, size_t nsym,
                   Real divisor, Complex* out) {
  const __m256d div = _mm256_set1_pd(divisor);
  size_t s = 0;
  for (; s + 2 <= nsym; s += 2) {
    const double* b0 = dptr(chips + s * np);
    const double* b1 = dptr(chips + (s + 1) * np);
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = 0; k < np; ++k) {
      const __m256d pair = _mm256_insertf128_pd(
          _mm256_castpd128_pd256(_mm_loadu_pd(b0 + 2 * k)),
          _mm_loadu_pd(b1 + 2 * k), 1);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(pair, _mm256_set1_pd(p[k])));
    }
    _mm256_storeu_pd(dptr(out + s), _mm256_div_pd(acc, div));
  }
  for (; s < nsym; ++s) {
    const Complex* block = chips + s * np;
    Real ar = 0.0;
    Real ai = 0.0;
    for (size_t k = 0; k < np; ++k) {
      const Real pk = p[k];
      ar += block[k].real() * pk;
      ai += block[k].imag() * pk;
    }
    out[s] = Complex(ar / divisor, ai / divisor);
  }
}

void accum_scaled_conj(Complex* acc, const Complex* p, Complex s, size_t n) {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  const __m256d mask = neg_odd_mask();
  size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m256d q = _mm256_xor_pd(_mm256_loadu_pd(dptr(p + j)), mask);
    const __m256d inc = _mm256_addsub_pd(_mm256_mul_pd(sr, q),
                                         _mm256_mul_pd(si, swap_pairs(q)));
    _mm256_storeu_pd(dptr(acc + j),
                     _mm256_add_pd(_mm256_loadu_pd(dptr(acc + j)), inc));
  }
  const Real sr_s = s.real();
  const Real si_s = s.imag();
  for (; j < n; ++j) {
    const Real pr = p[j].real();
    const Real npi = -p[j].imag();
    acc[j] = Complex(acc[j].real() + (sr_s * pr - si_s * npi),
                     acc[j].imag() + (sr_s * npi + si_s * pr));
  }
}

void fir_scatter_real(const Complex* x, size_t nx, const Real* taps, size_t nt,
                      Complex* y) {
  // Expand taps to [t0, t0, t1, t1, ...] once so a vector step updates two
  // consecutive outputs (re and im of each) with per-output order unchanged.
  thread_local std::vector<double> dup;
  dup.resize(2 * nt);
  for (size_t k = 0; k < nt; ++k) {
    dup[2 * k] = taps[k];
    dup[2 * k + 1] = taps[k];
  }
  double* yd = dptr(y);
  for (size_t i = 0; i < nx; ++i) {
    const __m256d xv = _mm256_broadcast_pd(
        reinterpret_cast<const __m128d*>(dptr(x + i)));
    double* yi = yd + 2 * i;
    size_t k = 0;
    for (; k + 2 <= nt; k += 2) {
      const __m256d prod = _mm256_mul_pd(xv, _mm256_loadu_pd(dup.data() + 2 * k));
      _mm256_storeu_pd(yi + 2 * k,
                       _mm256_add_pd(_mm256_loadu_pd(yi + 2 * k), prod));
    }
    for (; k < nt; ++k) {
      const Real tk = taps[k];
      yi[2 * k] += x[i].real() * tk;
      yi[2 * k + 1] += x[i].imag() * tk;
    }
  }
}

void fir_causal_complex(const Complex* x, size_t n, const Complex* taps,
                        size_t nt, Complex* y) {
  const size_t ramp = std::min(n, nt - 1);
  for (size_t i = 0; i < ramp; ++i) {
    const size_t kmax = std::min(nt, i + 1);
    Real ar = 0.0;
    Real ai = 0.0;
    for (size_t k = 0; k < kmax; ++k) {
      const Real tr = taps[k].real();
      const Real ti = taps[k].imag();
      const Real xr = x[i - k].real();
      const Real xi = x[i - k].imag();
      ar += tr * xr - ti * xi;
      ai += tr * xi + ti * xr;
    }
    y[i] = Complex(ar, ai);
  }
  size_t i = ramp;
  for (; i + 2 <= n; i += 2) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = 0; k < nt; ++k) {
      const __m256d tr = _mm256_set1_pd(taps[k].real());
      const __m256d ti = _mm256_set1_pd(taps[k].imag());
      const __m256d xv = _mm256_loadu_pd(dptr(x + (i - k)));
      // addsub([xr*tr, xi*tr], [xi*ti, xr*ti])
      //   = [tr*xr - ti*xi, tr*xi + ti*xr] per complex.
      acc = _mm256_add_pd(
          acc, _mm256_addsub_pd(_mm256_mul_pd(xv, tr),
                                _mm256_mul_pd(swap_pairs(xv), ti)));
    }
    _mm256_storeu_pd(dptr(y + i), acc);
  }
  for (; i < n; ++i) {
    Real ar = 0.0;
    Real ai = 0.0;
    for (size_t k = 0; k < nt; ++k) {
      const Real tr = taps[k].real();
      const Real ti = taps[k].imag();
      const Real xr = x[i - k].real();
      const Real xi = x[i - k].imag();
      ar += tr * xr - ti * xi;
      ai += tr * xi + ti * xr;
    }
    y[i] = Complex(ar, ai);
  }
}

void iq_imbalance(Complex* v, Complex alpha, Complex beta, size_t n) {
  const __m256d ar = _mm256_set1_pd(alpha.real());
  const __m256d ai = _mm256_set1_pd(alpha.imag());
  const __m256d br = _mm256_set1_pd(beta.real());
  const __m256d bi = _mm256_set1_pd(beta.imag());
  const __m256d mask = neg_odd_mask();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d vv = _mm256_loadu_pd(dptr(v + i));
    const __m256d t1 = _mm256_addsub_pd(_mm256_mul_pd(ar, vv),
                                        _mm256_mul_pd(ai, swap_pairs(vv)));
    const __m256d q = _mm256_xor_pd(vv, mask);  // conj(v), exact
    const __m256d t2 = _mm256_addsub_pd(_mm256_mul_pd(br, q),
                                        _mm256_mul_pd(bi, swap_pairs(q)));
    _mm256_storeu_pd(dptr(v + i), _mm256_add_pd(t1, t2));
  }
  const Real ars = alpha.real(), ais = alpha.imag();
  const Real brs = beta.real(), bis = beta.imag();
  for (; i < n; ++i) {
    const Real vr = v[i].real();
    const Real vi = v[i].imag();
    const Real nvi = -vi;
    const Real t1r = ars * vr - ais * vi;
    const Real t1i = ars * vi + ais * vr;
    const Real t2r = brs * vr - bis * nvi;
    const Real t2i = brs * nvi + bis * vr;
    v[i] = Complex(t1r + t2r, t1i + t2i);
  }
}

void quantize_midrise(Complex* x, Real full_scale, Real step, size_t n) {
  double* d = dptr(x);
  const size_t nd = 2 * n;
  const __m256d lo = _mm256_set1_pd(-full_scale);
  const __m256d hi = _mm256_set1_pd(full_scale - step);
  const __m256d vstep = _mm256_set1_pd(step);
  const __m256d half = _mm256_set1_pd(0.5);
  size_t i = 0;
  for (; i + 4 <= nd; i += 4) {
    const __m256d v = _mm256_loadu_pd(d + i);
    const __m256d c = _mm256_min_pd(_mm256_max_pd(v, lo), hi);
    const __m256d q = _mm256_mul_pd(
        _mm256_add_pd(_mm256_floor_pd(_mm256_div_pd(c, vstep)), half), vstep);
    _mm256_storeu_pd(d + i, q);
  }
  const Real los = -full_scale;
  const Real his = full_scale - step;
  for (; i < nd; ++i) {
    const Real c = std::min(std::max(d[i], los), his);
    d[i] = (std::floor(c / step) + 0.5) * step;
  }
}

void fft_stage2(Complex* a, size_t n) {
  for (size_t i = 0; i + 2 <= n; i += 2) {
    const __m256d uv = _mm256_loadu_pd(dptr(a + i));
    const __m256d vu = _mm256_permute2f128_pd(uv, uv, 0x01);
    const __m256d plus = _mm256_add_pd(uv, vu);    // low 128 = u + v
    const __m256d minus = _mm256_sub_pd(uv, vu);   // low 128 = u - v
    _mm256_storeu_pd(dptr(a + i), _mm256_permute2f128_pd(plus, minus, 0x20));
  }
}

void fft_stage4(Complex* a, size_t n, bool inverse) {
  const __m256d mask = inverse ? neg_lane2_mask() : neg_lane3_mask();
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(dptr(a + i));      // [u0, u1]
    const __m256d y = _mm256_loadu_pd(dptr(a + i + 2));  // [v0, t]
    // Rotate t by -j (forward: [ti, -tr]) / +j (inverse: [-ti, tr]) while
    // keeping v0 untouched in the low 128 bits.
    const __m256d rot = _mm256_xor_pd(_mm256_permute_pd(y, 0x5), mask);
    const __m256d yp = _mm256_blend_pd(y, rot, 0xC);
    _mm256_storeu_pd(dptr(a + i), _mm256_add_pd(x, yp));
    _mm256_storeu_pd(dptr(a + i + 2), _mm256_sub_pd(x, yp));
  }
}

void fft_radix2_stage(Complex* lo, Complex* hi, const Complex* tw, size_t half,
                      bool inverse) {
  const __m256d conj_mask = neg_odd_mask();
  for (size_t k = 0; k + 2 <= half; k += 2) {
    __m256d w = _mm256_loadu_pd(dptr(tw + k));
    if (inverse) w = _mm256_xor_pd(w, conj_mask);
    const __m256d wr = _mm256_movedup_pd(w);
    const __m256d wi = _mm256_permute_pd(w, 0xF);
    const __m256d h = _mm256_loadu_pd(dptr(hi + k));
    // addsub([hr*wr, hi*wr], [hi*wi, hr*wi])
    //   = [hr*wr - hi*wi, hi*wr + hr*wi] per complex.
    const __m256d v = _mm256_addsub_pd(_mm256_mul_pd(h, wr),
                                       _mm256_mul_pd(swap_pairs(h), wi));
    const __m256d l = _mm256_loadu_pd(dptr(lo + k));
    _mm256_storeu_pd(dptr(hi + k), _mm256_sub_pd(l, v));
    _mm256_storeu_pd(dptr(lo + k), _mm256_add_pd(l, v));
  }
}

}  // namespace

const KernelTable* avx2_kernels() {
  static const KernelTable table = {
      cmul_pointwise, scale_real,        dot_conj,
      correlate_real, correlate_conj,    despread_real,
      accum_scaled_conj, fir_scatter_real, fir_causal_complex,
      iq_imbalance,   quantize_midrise,  fft_stage2,
      fft_stage4,     fft_radix2_stage,
  };
  return &table;
}

}  // namespace itb::dsp::simd

#else  // !defined(__AVX2__)

namespace itb::dsp::simd {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace itb::dsp::simd

#endif
