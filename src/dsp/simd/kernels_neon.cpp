// NEON (aarch64 Advanced SIMD) kernel table. Same determinism discipline as
// kernels_avx2.cpp: explicit mul/add intrinsics only (no vfmaq — fusing
// would change rounding), sign flips via EOR on the sign bit (exact), and
// the TU is compiled with -ffp-contract=off so the compiler cannot contract
// the separate mul/add either. A 128-bit vector holds ONE complex value;
// addsub(a, b) = [a0 - b0, a1 + b1] is emulated as a + (b with lane 0
// negated), which is bit-identical to the AVX2/scalar operation sequence.
#include "dsp/simd/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(ITB_SIMD_BUILD_OFF)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace itb::dsp::simd {
namespace {

using std::size_t;

inline const double* dptr(const Complex* p) {
  return reinterpret_cast<const double*>(p);
}
inline double* dptr(Complex* p) { return reinterpret_cast<double*>(p); }

inline float64x2_t neg_lane0(float64x2_t v) {
  const uint64x2_t mask = vcombine_u64(vcreate_u64(0x8000000000000000ULL),
                                       vcreate_u64(0));
  return vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), mask));
}

inline float64x2_t neg_lane1(float64x2_t v) {
  const uint64x2_t mask = vcombine_u64(vcreate_u64(0),
                                       vcreate_u64(0x8000000000000000ULL));
  return vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), mask));
}

inline float64x2_t swap_lanes(float64x2_t v) { return vextq_f64(v, v, 1); }

// [a0 - b0, a1 + b1], computed as a + [-b0, b1] (exact IEEE a - b).
inline float64x2_t addsub(float64x2_t a, float64x2_t b) {
  return vaddq_f64(a, neg_lane0(b));
}

void cmul_pointwise(Complex* a, const Complex* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float64x2_t va = vld1q_f64(dptr(a + i));
    const float64x2_t vb = vld1q_f64(dptr(b + i));
    const float64x2_t ar = vdupq_laneq_f64(va, 0);
    const float64x2_t ai = vdupq_laneq_f64(va, 1);
    vst1q_f64(dptr(a + i),
              addsub(vmulq_f64(ar, vb), vmulq_f64(ai, swap_lanes(vb))));
  }
}

void scale_real(Complex* x, Real s, size_t n) {
  double* d = dptr(x);
  const size_t nd = 2 * n;
  const float64x2_t vs = vdupq_n_f64(s);
  size_t i = 0;
  for (; i + 2 <= nd; i += 2) {
    vst1q_f64(d + i, vmulq_f64(vld1q_f64(d + i), vs));
  }
  for (; i < nd; ++i) d[i] *= s;
}

Complex dot_conj(const Complex* x, const Complex* p, size_t n) {
  float64x2_t acc[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                        vdupq_n_f64(0.0)};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t lane = 0; lane < 4; ++lane) {
      const float64x2_t xv = vld1q_f64(dptr(x + i + lane));
      const float64x2_t pv = vld1q_f64(dptr(p + i + lane));
      // vpaddq([xr*pr, xi*pi], [xi*pr, -(xr*pi)]) = [re_inc, im_inc].
      const float64x2_t inc = vpaddq_f64(
          vmulq_f64(xv, pv), vmulq_f64(swap_lanes(xv), neg_lane1(pv)));
      acc[lane] = vaddq_f64(acc[lane], inc);
    }
  }
  double lanes[8];
  for (size_t lane = 0; lane < 4; ++lane) vst1q_f64(lanes + 2 * lane, acc[lane]);
  for (; i < n; ++i) {
    const size_t lane = i % 4;
    const Real xr = x[i].real();
    const Real xi = x[i].imag();
    const Real pr = p[i].real();
    const Real pi = p[i].imag();
    lanes[2 * lane] += xr * pr + xi * pi;
    lanes[2 * lane + 1] += xi * pr - xr * pi;
  }
  return Complex((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]),
                 (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

void correlate_real(const Complex* x, size_t nx, const Real* p, size_t np,
                    Complex* out) {
  const size_t n_out = nx - np + 1;
  size_t i = 0;
  for (; i + 2 <= n_out; i += 2) {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    for (size_t k = 0; k < np; ++k) {
      const float64x2_t pk = vdupq_n_f64(p[k]);
      acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(dptr(x + i + k)), pk));
      acc1 = vaddq_f64(acc1, vmulq_f64(vld1q_f64(dptr(x + i + k + 1)), pk));
    }
    vst1q_f64(dptr(out + i), acc0);
    vst1q_f64(dptr(out + i + 1), acc1);
  }
  for (; i < n_out; ++i) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (size_t k = 0; k < np; ++k) {
      acc = vaddq_f64(acc,
                      vmulq_f64(vld1q_f64(dptr(x + i + k)), vdupq_n_f64(p[k])));
    }
    vst1q_f64(dptr(out + i), acc);
  }
}

void correlate_conj(const Complex* x, size_t nx, const Complex* p, size_t np,
                    Complex* out) {
  const size_t n_out = nx - np + 1;
  for (size_t i = 0; i < n_out; ++i) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (size_t k = 0; k < np; ++k) {
      const float64x2_t pr = vdupq_n_f64(p[k].real());
      const float64x2_t npi = vdupq_n_f64(-p[k].imag());
      const float64x2_t xv = vld1q_f64(dptr(x + i + k));
      acc = vaddq_f64(
          acc, addsub(vmulq_f64(xv, pr), vmulq_f64(swap_lanes(xv), npi)));
    }
    vst1q_f64(dptr(out + i), acc);
  }
}

void despread_real(const Complex* chips, const Real* p, size_t np, size_t nsym,
                   Real divisor, Complex* out) {
  const float64x2_t div = vdupq_n_f64(divisor);
  for (size_t s = 0; s < nsym; ++s) {
    const Complex* block = chips + s * np;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (size_t k = 0; k < np; ++k) {
      acc = vaddq_f64(acc,
                      vmulq_f64(vld1q_f64(dptr(block + k)), vdupq_n_f64(p[k])));
    }
    vst1q_f64(dptr(out + s), vdivq_f64(acc, div));
  }
}

void accum_scaled_conj(Complex* acc, const Complex* p, Complex s, size_t n) {
  const float64x2_t sr = vdupq_n_f64(s.real());
  const float64x2_t si = vdupq_n_f64(s.imag());
  for (size_t j = 0; j < n; ++j) {
    const float64x2_t q = neg_lane1(vld1q_f64(dptr(p + j)));
    const float64x2_t inc =
        addsub(vmulq_f64(sr, q), vmulq_f64(si, swap_lanes(q)));
    vst1q_f64(dptr(acc + j), vaddq_f64(vld1q_f64(dptr(acc + j)), inc));
  }
}

void fir_scatter_real(const Complex* x, size_t nx, const Real* taps, size_t nt,
                      Complex* y) {
  double* yd = dptr(y);
  for (size_t i = 0; i < nx; ++i) {
    const float64x2_t xv = vld1q_f64(dptr(x + i));
    double* yi = yd + 2 * i;
    for (size_t k = 0; k < nt; ++k) {
      const float64x2_t prod = vmulq_f64(xv, vdupq_n_f64(taps[k]));
      vst1q_f64(yi + 2 * k, vaddq_f64(vld1q_f64(yi + 2 * k), prod));
    }
  }
}

void fir_causal_complex(const Complex* x, size_t n, const Complex* taps,
                        size_t nt, Complex* y) {
  const size_t ramp = std::min(n, nt - 1);
  for (size_t i = 0; i < ramp; ++i) {
    const size_t kmax = std::min(nt, i + 1);
    Real ar = 0.0;
    Real ai = 0.0;
    for (size_t k = 0; k < kmax; ++k) {
      const Real tr = taps[k].real();
      const Real ti = taps[k].imag();
      const Real xr = x[i - k].real();
      const Real xi = x[i - k].imag();
      ar += tr * xr - ti * xi;
      ai += tr * xi + ti * xr;
    }
    y[i] = Complex(ar, ai);
  }
  for (size_t i = ramp; i < n; ++i) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (size_t k = 0; k < nt; ++k) {
      const float64x2_t tr = vdupq_n_f64(taps[k].real());
      const float64x2_t ti = vdupq_n_f64(taps[k].imag());
      const float64x2_t xv = vld1q_f64(dptr(x + (i - k)));
      acc = vaddq_f64(
          acc, addsub(vmulq_f64(xv, tr), vmulq_f64(swap_lanes(xv), ti)));
    }
    vst1q_f64(dptr(y + i), acc);
  }
}

void iq_imbalance(Complex* v, Complex alpha, Complex beta, size_t n) {
  const float64x2_t ar = vdupq_n_f64(alpha.real());
  const float64x2_t ai = vdupq_n_f64(alpha.imag());
  const float64x2_t br = vdupq_n_f64(beta.real());
  const float64x2_t bi = vdupq_n_f64(beta.imag());
  for (size_t i = 0; i < n; ++i) {
    const float64x2_t vv = vld1q_f64(dptr(v + i));
    const float64x2_t t1 =
        addsub(vmulq_f64(ar, vv), vmulq_f64(ai, swap_lanes(vv)));
    const float64x2_t q = neg_lane1(vv);  // conj(v), exact
    const float64x2_t t2 =
        addsub(vmulq_f64(br, q), vmulq_f64(bi, swap_lanes(q)));
    vst1q_f64(dptr(v + i), vaddq_f64(t1, t2));
  }
}

void quantize_midrise(Complex* x, Real full_scale, Real step, size_t n) {
  double* d = dptr(x);
  const size_t nd = 2 * n;
  const float64x2_t lo = vdupq_n_f64(-full_scale);
  const float64x2_t hi = vdupq_n_f64(full_scale - step);
  const float64x2_t vstep = vdupq_n_f64(step);
  const float64x2_t half = vdupq_n_f64(0.5);
  size_t i = 0;
  for (; i + 2 <= nd; i += 2) {
    const float64x2_t v = vld1q_f64(d + i);
    const float64x2_t c = vminq_f64(vmaxq_f64(v, lo), hi);
    const float64x2_t q = vmulq_f64(
        vaddq_f64(vrndmq_f64(vdivq_f64(c, vstep)), half), vstep);
    vst1q_f64(d + i, q);
  }
  const Real los = -full_scale;
  const Real his = full_scale - step;
  for (; i < nd; ++i) {
    const Real c = std::min(std::max(d[i], los), his);
    d[i] = (std::floor(c / step) + 0.5) * step;
  }
}

void fft_stage2(Complex* a, size_t n) {
  for (size_t i = 0; i + 2 <= n; i += 2) {
    const float64x2_t u = vld1q_f64(dptr(a + i));
    const float64x2_t v = vld1q_f64(dptr(a + i + 1));
    vst1q_f64(dptr(a + i), vaddq_f64(u, v));
    vst1q_f64(dptr(a + i + 1), vsubq_f64(u, v));
  }
}

void fft_stage4(Complex* a, size_t n, bool inverse) {
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const float64x2_t u0 = vld1q_f64(dptr(a + i));
    const float64x2_t u1 = vld1q_f64(dptr(a + i + 1));
    const float64x2_t v0 = vld1q_f64(dptr(a + i + 2));
    const float64x2_t t = vld1q_f64(dptr(a + i + 3));
    // Forward: t' = [ti, -tr]; inverse: t' = [-ti, tr].
    const float64x2_t ts = swap_lanes(t);
    const float64x2_t tp = inverse ? neg_lane0(ts) : neg_lane1(ts);
    vst1q_f64(dptr(a + i), vaddq_f64(u0, v0));
    vst1q_f64(dptr(a + i + 2), vsubq_f64(u0, v0));
    vst1q_f64(dptr(a + i + 1), vaddq_f64(u1, tp));
    vst1q_f64(dptr(a + i + 3), vsubq_f64(u1, tp));
  }
}

void fft_radix2_stage(Complex* lo, Complex* hi, const Complex* tw, size_t half,
                      bool inverse) {
  for (size_t k = 0; k < half; ++k) {
    float64x2_t w = vld1q_f64(dptr(tw + k));
    if (inverse) w = neg_lane1(w);
    const float64x2_t wr = vdupq_laneq_f64(w, 0);
    const float64x2_t wi = vdupq_laneq_f64(w, 1);
    const float64x2_t h = vld1q_f64(dptr(hi + k));
    const float64x2_t v =
        addsub(vmulq_f64(h, wr), vmulq_f64(swap_lanes(h), wi));
    const float64x2_t l = vld1q_f64(dptr(lo + k));
    vst1q_f64(dptr(hi + k), vsubq_f64(l, v));
    vst1q_f64(dptr(lo + k), vaddq_f64(l, v));
  }
}

}  // namespace

const KernelTable* neon_kernels() {
  static const KernelTable table = {
      cmul_pointwise, scale_real,        dot_conj,
      correlate_real, correlate_conj,    despread_real,
      accum_scaled_conj, fir_scatter_real, fir_causal_complex,
      iq_imbalance,   quantize_midrise,  fft_stage2,
      fft_stage4,     fft_radix2_stage,
  };
  return &table;
}

}  // namespace itb::dsp::simd

#else  // !aarch64 NEON

namespace itb::dsp::simd {
const KernelTable* neon_kernels() { return nullptr; }
}  // namespace itb::dsp::simd

#endif
