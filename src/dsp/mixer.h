// Numerically-controlled oscillator and frequency-shift helpers.
#pragma once

#include <span>

#include "dsp/types.h"

namespace itb::dsp {

/// Complex exponential generator with phase continuity across calls.
/// Models a local oscillator at `freq_hz` sampled at `sample_rate_hz`.
class Nco {
 public:
  Nco(Real freq_hz, Real sample_rate_hz, Real initial_phase_rad = 0.0)
      : phase_(initial_phase_rad),
        phase_step_(kTwoPi * freq_hz / sample_rate_hz) {}

  /// Next oscillator sample e^{j phase}.
  Complex next() {
    const Complex out{std::cos(phase_), std::sin(phase_)};
    advance(1);
    return out;
  }

  /// Generates n consecutive samples.
  CVec generate(std::size_t n) {
    CVec out(n);
    for (auto& v : out) v = next();
    return out;
  }

  /// Advances the phase by n samples without producing output.
  void advance(std::size_t n) {
    phase_ += phase_step_ * static_cast<Real>(n);
    // Keep the accumulator bounded to preserve precision on long runs.
    if (phase_ > 1e6 || phase_ < -1e6) phase_ = std::fmod(phase_, kTwoPi);
  }

  Real phase() const { return phase_; }

 private:
  Real phase_;
  Real phase_step_;
};

/// Returns x multiplied by e^{j 2 pi f t}: shifts the spectrum up by freq_hz.
CVec frequency_shift(std::span<const Complex> x, Real freq_hz, Real sample_rate_hz,
                     Real initial_phase_rad = 0.0);

/// Generates a pure tone at freq_hz with the given amplitude.
CVec tone(Real freq_hz, Real sample_rate_hz, std::size_t n, Real amplitude = 1.0,
          Real initial_phase_rad = 0.0);

}  // namespace itb::dsp
