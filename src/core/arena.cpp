#include "core/arena.h"

namespace itb::core {

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace itb::core
