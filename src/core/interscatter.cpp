#include "core/interscatter.h"

#include <cmath>

#include "ble/channel_map.h"
#include "ble/gfsk.h"
#include "dsp/units.h"
#include "obs/prof.h"

namespace itb::core {

InterscatterSystem::InterscatterSystem(const UplinkScenario& scenario)
    : scenario_(scenario) {
  itb::ble::SingleToneSpec spec;
  spec.channel_index = scenario_.ble_channel;
  spec.sign = itb::ble::ToneSign::kHigh;
  spec.payload_bytes = itb::ble::kMaxAdvDataBytes;
  tone_ = itb::ble::make_single_tone_packet(spec);
}

Real InterscatterSystem::shift_hz() const {
  const Real ble_hz = itb::ble::ChannelMap::frequency_hz(scenario_.ble_channel);
  const Real wifi_hz = itb::ble::wifi_channel_hz(scenario_.wifi_channel);
  return wifi_hz - ble_hz;
}

std::optional<itb::channel::ImpairmentConfig>
InterscatterSystem::resolved_impairments() const {
  if (scenario_.impairments) return scenario_.impairments;
  return itb::channel::make_impairment_preset(
      scenario_.impairment_preset, 11e6,
      itb::ble::wifi_channel_hz(scenario_.wifi_channel));
}

UplinkBudget InterscatterSystem::budget(std::size_t psdu_bytes) const {
  itb::channel::BackscatterLinkConfig link;
  link.ble_tx_power_dbm = scenario_.ble_tx_power_dbm;
  link.tag_antenna = scenario_.tag_antenna;
  link.ble_tag_distance_m = scenario_.ble_tag_distance_m;
  link.tag_medium_loss_db = scenario_.tag_medium_loss_db;
  link.rx_noise_figure_db = scenario_.rx_noise_figure_db;
  link.pathloss.exponent = scenario_.pathloss_exponent;

  const itb::channel::LinkSample s =
      itb::channel::backscatter_rssi(link, scenario_.tag_rx_distance_m);
  const Real per =
      itb::channel::per_80211b(scenario_.rate, s.snr_db, psdu_bytes);
  return {s.rssi_dbm, s.snr_db, per, s.incident_at_tag_dbm};
}

UplinkDecodeResult InterscatterSystem::simulate_frame(
    const itb::phy::Bytes& psdu) const {
  static const std::size_t kZone = obs::prof_zone("phy.simulate_frame");
  const obs::ProfZone prof(kZone);
  UplinkDecodeResult out;

  // --- Tag synthesis at 143 Msps relative to the BLE tone ------------------
  // The tag derives its shift from the 143 MHz PLL: only f_clk/(4k) shifts
  // give glitch-free quarter-phase clocks (paper §3 — this is why the
  // hardware shifts by exactly 35.75 MHz onto channel 11 and lets the
  // receiver's carrier lock absorb the ~250 kHz residual).
  itb::backscatter::WifiSynthConfig synth_cfg;
  synth_cfg.rate = scenario_.rate;
  synth_cfg.sample_rate_hz = 143e6;
  const Real wanted = shift_hz();
  const Real k = std::max(1.0, std::round(synth_cfg.sample_rate_hz /
                                          (4.0 * std::abs(wanted))));
  synth_cfg.shift_hz =
      std::copysign(synth_cfg.sample_rate_hz / (4.0 * k), wanted);
  const itb::backscatter::WifiSynthResult synth =
      itb::backscatter::synthesize_wifi(psdu, synth_cfg);

  // --- Link budget sets the receive SNR ------------------------------------
  const UplinkBudget b = budget(psdu.size());

  // --- Receiver-side baseband ----------------------------------------------
  // Down-convert to the Wi-Fi channel: multiply by e^{-j 2 pi shift t} and
  // decimate to 11 Msps (1 sample/chip). 143/13 = 11 exactly.
  // Domain-separated substream ("uplk"); see DESIGN.md determinism rules.
  itb::dsp::Xoshiro256 rng(
      itb::dsp::splitmix64(scenario_.seed ^ 0x75706C6BULL));
  const Real fs = synth_cfg.sample_rate_hz;
  itb::dsp::CVec shifted =
      itb::channel::apply_cfo(synth.waveform, -synth_cfg.shift_hz, fs);
  // Chip matched filter + decimate by 13.
  const std::size_t spc = 13;
  itb::dsp::CVec chips(shifted.size() / spc);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    itb::dsp::Complex acc{0.0, 0.0};
    for (std::size_t k = 0; k < spc; ++k) acc += shifted[i * spc + k];
    chips[i] = acc / static_cast<Real>(spc);
  }

  // Scale to the budget RSSI and add thermal noise at the channel bandwidth.
  const Real target_watts = itb::dsp::dbm_to_watts(b.rssi_dbm);
  const Real cur = itb::dsp::mean_power(chips);
  if (cur > 0.0) {
    const Real g = std::sqrt(target_watts / cur);
    for (auto& c : chips) c *= g;
  }

  // Radio impairments: the channel-side stages (multipath, tag CFO, phase
  // noise, SRO, IQ) distort the signal before the receiver's thermal noise
  // is added; the ADC quantizes signal-plus-noise afterwards.
  const auto impairment_cfg = resolved_impairments();
  std::optional<itb::channel::ImpairmentChain> chain;
  if (impairment_cfg) {
    chain.emplace(*impairment_cfg);
    chips = chain->apply_channel(chips, scenario_.seed);
  }

  const Real noise_dbm = itb::channel::thermal_noise_dbm(
      11e6, scenario_.rx_noise_figure_db);  // post-despread equivalent BW
  itb::dsp::CVec noisy = itb::channel::add_noise_variance(
      chips, itb::dsp::dbm_to_watts(noise_dbm), rng);
  if (chain) noisy = chain->apply_frontend(noisy);

  // --- Decode ---------------------------------------------------------------
  itb::wifi::DsssRxConfig rxcfg;
  rxcfg.samples_per_chip = 1;
  const itb::wifi::DsssReceiver rx(rxcfg);
  const auto res = rx.receive(noisy);
  if (!res) return out;

  out.detected = true;
  out.rssi_dbm = b.rssi_dbm;
  out.decoded_psdu = res->psdu;
  out.payload_ok = res->header_ok && res->psdu == psdu;
  return out;
}

std::vector<SweepPoint> sweep_distance(const UplinkScenario& base,
                                       const std::vector<Real>& distances_m,
                                       std::size_t psdu_bytes) {
  std::vector<SweepPoint> out;
  out.reserve(distances_m.size());
  for (Real d : distances_m) {
    UplinkScenario s = base;
    s.tag_rx_distance_m = d;
    const InterscatterSystem sys(s);
    const UplinkBudget b = sys.budget(psdu_bytes);
    out.push_back({d, b.rssi_dbm, b.per});
  }
  return out;
}

std::string version() { return "interscatter 1.0.0"; }

}  // namespace itb::core
