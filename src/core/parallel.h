// Minimal work-stealing-free thread pool primitive for embarrassingly
// parallel sweeps: workers claim indices from a shared atomic counter, so
// load balances dynamically even when per-item cost varies (e.g. PER trials
// whose receive chain bails out early at low SNR).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/prof.h"

namespace itb::core {

/// Runs fn(i) for every i in [0, count) across `num_threads` std::threads
/// (0 = std::thread::hardware_concurrency()). fn must be callable
/// concurrently for distinct i. With one thread (or count <= 1) everything
/// runs on the calling thread. The first exception thrown by any fn is
/// rethrown on the calling thread after all workers join.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t num_threads, Fn&& fn) {
  if (count == 0) return;
  static const std::size_t kZone = obs::prof_zone("core.parallel_for");
  obs::ProfZone prof(kZone);
  std::size_t workers = num_threads != 0 ? num_threads
                                         : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > count) workers = count;
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      try {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
          fn(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Drain remaining work so sibling threads exit promptly.
        next.store(count, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace itb::core
