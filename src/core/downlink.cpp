#include "core/downlink.h"

#include <cmath>

#include "channel/awgn.h"
#include "dsp/units.h"
#include "phycommon/bits.h"

namespace itb::core {

DownlinkResult simulate_downlink(const DownlinkScenario& scenario,
                                 const itb::phy::Bits& message_bits) {
  DownlinkResult out;
  out.sent = message_bits;

  // The helper device's chipset determines the seed the encoder must
  // predict. Predictable policies (increment / fixed) let the encoder match
  // the seed exactly; the spec-faithful random policy means the actual
  // transmission scrambles with a seed the encoder could not know (§4.4).
  itb::wifi::SeedSequencer seq(scenario.chipset, scenario.seed);
  const std::uint8_t predicted = seq.next();
  const std::uint8_t actual =
      scenario.chipset.policy == itb::wifi::SeedPolicy::kRandom ? seq.next()
                                                                : predicted;

  itb::wifi::AmDownlinkConfig amcfg;
  amcfg.rate = scenario.rate;
  amcfg.scrambler_seed = predicted;
  itb::wifi::AmDownlinkEncoder encoder(amcfg, scenario.seed);
  itb::wifi::AmFrame frame = encoder.encode(message_bits);

  if (actual != predicted) {
    // Rebuild the waveform as the chipset actually scrambles it.
    itb::wifi::OfdmTxConfig txcfg;
    txcfg.rate = scenario.rate;
    txcfg.scrambler_seed = actual;
    const itb::wifi::OfdmTransmitter tx(txcfg);
    frame.tx = tx.transmit_data_bits(frame.data_field_bits);
  }

  // Path loss to the tag.
  itb::channel::LogDistanceModel pl;
  pl.exponent = scenario.pathloss_exponent;
  out.rx_power_dbm = scenario.wifi_tx_power_dbm + 2.0 + 0.0 -
                     pl.pathloss_db(scenario.distance_m);
  out.above_sensitivity = out.rx_power_dbm >= scenario.detector_sensitivity_dbm;

  // Scale waveform to the received power and add noise (20 MHz bandwidth).
  itb::dsp::CVec rx = frame.tx.baseband;
  const Real cur = itb::dsp::mean_power(rx);
  if (cur > 0.0) {
    const Real g = std::sqrt(itb::dsp::dbm_to_watts(out.rx_power_dbm) / cur);
    for (auto& v : rx) v *= g;
  }
  // Domain-separated substream ("dnlk"): the raw xor this replaces reused
  // the golden-ratio increment that SplitMix64 itself adds, so uplink and
  // downlink noise draws were one splitmix step from colliding.
  itb::dsp::Xoshiro256 rng(
      itb::dsp::splitmix64(scenario.seed ^ 0x646E6C6BULL));
  const Real noise_dbm = itb::channel::thermal_noise_dbm(20e6, 7.0);
  rx = itb::channel::add_noise_variance(
      rx, itb::dsp::dbm_to_watts(noise_dbm), rng);

  // Tag-side peak detection.
  itb::backscatter::PeakDetectorConfig pdc;
  pdc.sensitivity_dbm = scenario.detector_sensitivity_dbm;
  const itb::backscatter::PeakDetector pd(pdc);
  out.received = pd.decode_am(rx, /*data_start=*/400,
                              itb::wifi::kSymbolSamples, message_bits.size());

  if (!out.received.empty()) {
    const std::size_t n = std::min(out.received.size(), message_bits.size());
    std::size_t errors = message_bits.size() - n;  // missing bits count as errors
    for (std::size_t i = 0; i < n; ++i) {
      errors += (out.received[i] != message_bits[i]);
    }
    out.ber = static_cast<Real>(errors) / static_cast<Real>(message_bits.size());
  }
  return out;
}

}  // namespace itb::core
