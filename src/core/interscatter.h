// Public API of the interscatter library.
//
// An InterscatterSystem wires the full paper pipeline together:
//
//   BLE advertiser (single-tone payload, §2.2)
//     -> incident tone at the tag (link budget / tissue medium)
//     -> tag: envelope detect, guard, SSB backscatter 802.11b/ZigBee (§2.3)
//     -> Wi-Fi / ZigBee receiver decode + RSSI
//   and the reverse direction:
//   802.11g AM frames (§2.4) -> peak detector at the tag -> downlink bits.
//
// Two fidelity levels coexist:
//   - waveform level: every block runs on complex baseband samples and the
//     receiver actually decodes (used by PER/BER experiments and tests);
//   - budget level: closed-form RSSI/PER from channel/link.h (used by the
//     long-range sweeps, cross-checked against waveform level in tests).
#pragma once

#include <optional>
#include <string>

#include "backscatter/tag.h"
#include "ble/single_tone.h"
#include "channel/awgn.h"
#include "channel/impairments.h"
#include "channel/link.h"
#include "wifi/dsss_rx.h"

namespace itb::core {

using itb::dsp::Real;

/// Scenario description shared by the uplink experiments.
struct UplinkScenario {
  // Geometry.
  Real ble_tag_distance_m = 0.3048;  ///< 1 ft
  Real tag_rx_distance_m = 3.048;    ///< 10 ft
  // Radios.
  Real ble_tx_power_dbm = 0.0;
  unsigned ble_channel = 38;
  unsigned wifi_channel = 11;
  itb::wifi::DsssRate rate = itb::wifi::DsssRate::k2Mbps;
  // Tag + medium.
  itb::channel::Antenna tag_antenna = itb::channel::monopole_2dbi();
  Real tag_medium_loss_db = 0.0;  ///< tissue/saline one-way extra loss
  // Environment.
  Real pathloss_exponent = 2.2;
  Real rx_noise_figure_db = 6.0;
  // Radio impairments applied to the received waveform (tag oscillator CFO,
  // multipath, receiver ADC...). The preset is resolved at the receiver's
  // chip rate and the Wi-Fi channel carrier; an explicit `impairments`
  // config overrides the preset.
  itb::channel::ImpairmentPreset impairment_preset =
      itb::channel::ImpairmentPreset::kNone;
  std::optional<itb::channel::ImpairmentConfig> impairments;
  std::uint64_t seed = 1;
};

/// Budget-level result for one geometry point.
struct UplinkBudget {
  Real rssi_dbm;
  Real snr_db;
  Real per;
  Real incident_at_tag_dbm;
};

/// Waveform-level result: the receiver actually decoded (or not).
struct UplinkDecodeResult {
  bool detected = false;
  bool payload_ok = false;  ///< decoded PSDU matches what the tag sent
  Real rssi_dbm = 0.0;
  itb::phy::Bytes decoded_psdu;
};

class InterscatterSystem {
 public:
  explicit InterscatterSystem(const UplinkScenario& scenario);

  /// Closed-form link budget at the scenario geometry.
  UplinkBudget budget(std::size_t psdu_bytes) const;

  /// Full waveform simulation of one backscattered frame carrying `psdu`.
  /// The frequency shift is derived from the BLE/Wi-Fi channel pair.
  UplinkDecodeResult simulate_frame(const itb::phy::Bytes& psdu) const;

  /// The BLE single-tone advertisement driving the tag.
  const itb::ble::SingleToneResult& tone() const { return tone_; }

  /// Tag-side frequency shift (Hz) between the BLE tone and the Wi-Fi
  /// channel centre.
  Real shift_hz() const;

  /// The impairment configuration simulate_frame() will apply: the explicit
  /// scenario config if set, else the preset resolved at the receiver chip
  /// rate (11 Msps) and the Wi-Fi channel carrier. nullopt when ideal.
  std::optional<itb::channel::ImpairmentConfig> resolved_impairments() const;

  const UplinkScenario& scenario() const { return scenario_; }

 private:
  UplinkScenario scenario_;
  itb::ble::SingleToneResult tone_;
};

/// Helper used by the application benches: sweep tag->rx distance and report
/// (distance, RSSI) pairs plus the PER at each point.
struct SweepPoint {
  Real distance_m;
  Real rssi_dbm;
  Real per;
};
std::vector<SweepPoint> sweep_distance(const UplinkScenario& base,
                                       const std::vector<Real>& distances_m,
                                       std::size_t psdu_bytes);

/// Library version string.
std::string version();

}  // namespace itb::core
