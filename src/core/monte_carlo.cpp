#include "core/monte_carlo.h"

#include "channel/awgn.h"
#include "channel/link.h"
#include "core/arena.h"
#include "core/parallel.h"
#include "dsp/rng.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"

namespace itb::core {

std::uint64_t trial_seed(std::uint64_t sweep_seed, std::uint64_t point_index,
                         std::uint64_t trial_index) {
  // Counter-based substream: the (point, trial) pair forms a unique 64-bit
  // counter; two SplitMix64 rounds decorrelate it from the sweep seed. Each
  // Xoshiro256 constructed from the result re-expands through SplitMix64
  // again, so neighbouring counters share no state.
  using itb::dsp::splitmix64;
  return splitmix64(sweep_seed ^ splitmix64((point_index << 32) | trial_index));
}

std::vector<PerPoint> per_vs_snr(const MonteCarloConfig& cfg,
                                 const std::vector<double>& snr_grid_db) {
  itb::wifi::DsssTxConfig txcfg;
  txcfg.rate = cfg.rate;
  const itb::wifi::DsssTransmitter tx(txcfg);
  const itb::wifi::DsssReceiver rx;

  const std::size_t trials = cfg.trials_per_point;
  const std::size_t total = snr_grid_db.size() * trials;
  // One slot per (point, trial); workers write disjoint slots, so the
  // aggregation below is independent of scheduling.
  std::vector<std::uint8_t> failed(total, 0);

  std::optional<itb::channel::ImpairmentChain> chain;
  if (cfg.impairments) chain.emplace(*cfg.impairments);

  parallel_for(total, cfg.num_threads, [&](std::size_t idx) {
    // Trial-scope arena frame: impairment scratch (tap draws, convolution
    // and resampler buffers) bumps into the worker's thread arena and is
    // rewound here, so steady-state sweeps stop hitting the heap for
    // per-trial intermediates.
    const ArenaFrame trial_scratch;
    const std::size_t point = idx / trials;
    const std::size_t trial = idx % trials;
    itb::dsp::Xoshiro256 rng(trial_seed(cfg.seed, point, trial));

    itb::phy::Bytes psdu(cfg.psdu_bytes);
    for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto frame = tx.modulate(psdu);
    // The chip stream occupies the full 22 MHz channel at 1 sample/chip,
    // so per-sample SNR equals channel SNR. Impairment randomness is keyed
    // on the trial's global index: independent of scheduling, and distinct
    // from the noise substream.
    itb::dsp::CVec wave = frame.baseband;
    if (chain) wave = chain->apply_channel(wave, cfg.seed, idx);
    auto noisy = itb::channel::add_noise_snr(wave, snr_grid_db[point], rng);
    if (chain) noisy = chain->apply_frontend(noisy);
    const auto result = rx.receive(noisy);
    const bool ok =
        result.has_value() && result->header_ok && result->psdu == psdu;
    failed[idx] = ok ? 0 : 1;
  });

  std::vector<PerPoint> out;
  out.reserve(snr_grid_db.size());
  for (std::size_t point = 0; point < snr_grid_db.size(); ++point) {
    std::size_t failures = 0;
    for (std::size_t t = 0; t < trials; ++t) failures += failed[point * trials + t];
    out.push_back({snr_grid_db[point],
                   static_cast<double>(failures) / static_cast<double>(trials),
                   itb::channel::per_80211b(cfg.rate, snr_grid_db[point],
                                            cfg.psdu_bytes),
                   trials});
  }
  return out;
}

}  // namespace itb::core
