#include "core/monte_carlo.h"

#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/rng.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"

namespace itb::core {

std::vector<PerPoint> per_vs_snr(const MonteCarloConfig& cfg,
                                 const std::vector<double>& snr_grid_db) {
  itb::wifi::DsssTxConfig txcfg;
  txcfg.rate = cfg.rate;
  const itb::wifi::DsssTransmitter tx(txcfg);
  const itb::wifi::DsssReceiver rx;

  itb::dsp::Xoshiro256 rng(cfg.seed);

  std::vector<PerPoint> out;
  out.reserve(snr_grid_db.size());
  for (const double snr : snr_grid_db) {
    std::size_t failures = 0;
    for (std::size_t t = 0; t < cfg.trials_per_point; ++t) {
      itb::phy::Bytes psdu(cfg.psdu_bytes);
      for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));
      const auto frame = tx.modulate(psdu);
      // The chip stream occupies the full 22 MHz channel at 1 sample/chip,
      // so per-sample SNR equals channel SNR.
      const auto noisy = itb::channel::add_noise_snr(frame.baseband, snr, rng);
      const auto result = rx.receive(noisy);
      const bool ok =
          result.has_value() && result->header_ok && result->psdu == psdu;
      failures += !ok;
    }
    out.push_back({snr,
                   static_cast<double>(failures) /
                       static_cast<double>(cfg.trials_per_point),
                   itb::channel::per_80211b(cfg.rate, snr, cfg.psdu_bytes),
                   cfg.trials_per_point});
  }
  return out;
}

}  // namespace itb::core
