// Per-thread bump arena for PHY trial scratch.
//
// A Monte-Carlo sweep runs the same receive chain thousands of times; the
// chain's intermediate waveforms used to be fresh std::vector allocations
// every trial. The arena replaces that churn with pointer bumps into
// thread-local blocks that are reused across trials: a frame is opened at
// the top of a trial, scratch spans are carved out of it, and closing the
// frame rewinds the arena so the next trial reuses the same memory.
//
// Determinism: the arena hands out memory only — no addresses ever reach
// results, hashes, or orderings (detlint's ptr-order rule still applies to
// users). Each thread owns its arena outright, so there is no sharing to
// synchronize and no allocation-order coupling between threads.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace itb::core {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 1u << 20;  // 1 MiB

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Position snapshot for frame-style rewind.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  /// Raw aligned allocation. The returned storage is uninitialized and
  /// stays valid until the enclosing mark is rewound (or the arena dies).
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      const std::size_t at = align_up(b.used, align);
      if (at + bytes <= b.size) {
        b.used = at + bytes;
        return b.data.get() + at;
      }
      // Leave the block's bump position untouched (rewind still works) and
      // spill to the next block.
      ++active_;
    }
    const std::size_t size = bytes + align > block_bytes_
                                 ? bytes + align
                                 : block_bytes_;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, 0});
    active_ = blocks_.size() - 1;
    Block& b = blocks_.back();
    const std::size_t at = align_up(0, align);
    b.used = at + bytes;
    return b.data.get() + at;
  }

  /// Typed scratch span (uninitialized; T must be trivially destructible —
  /// rewind never runs destructors).
  template <typename T>
  std::span<T> alloc_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is rewound without destructor calls");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  /// Typed scratch span, value-initialized (zeroed for arithmetic T).
  template <typename T>
  std::span<T> alloc_span_zeroed(std::size_t n) {
    std::span<T> s = alloc_span<T>(n);
    for (T& v : s) v = T{};
    return s;
  }

  Mark mark() const { return {active_, active_ < blocks_.size()
                                             ? blocks_[active_].used
                                             : 0}; }

  void rewind(Mark m) {
    for (std::size_t b = m.block + 1; b < blocks_.size(); ++b)
      blocks_[b].used = 0;
    if (m.block < blocks_.size()) blocks_[m.block].used = m.used;
    active_ = m.block;
  }

  /// Total bytes currently reserved from the OS (capacity, not live use).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes live in the current frame stack.
  std::size_t used_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.used;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t block_bytes_;
};

/// The calling thread's scratch arena. Blocks persist for the thread's
/// lifetime, so steady-state sweeps allocate nothing after warm-up.
Arena& thread_arena();

/// RAII frame: captures the arena position on entry and rewinds on exit.
/// Spans carved inside the frame must not escape it.
class ArenaFrame {
 public:
  explicit ArenaFrame(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ArenaFrame() : ArenaFrame(thread_arena()) {}
  ~ArenaFrame() { arena_.rewind(mark_); }
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace itb::core
