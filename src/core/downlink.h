// End-to-end downlink pipeline (paper §2.4 + §4.4): 802.11g AM frame from a
// chipset with a known/predictable scrambler seed, over a path-loss + AWGN
// channel, into the tag's peak detector.
#pragma once

#include "backscatter/detector.h"
#include "channel/link.h"
#include "wifi/am_downlink.h"
#include "wifi/chipset.h"

namespace itb::core {

using itb::dsp::Real;

struct DownlinkScenario {
  Real wifi_tx_power_dbm = 15.0;
  Real distance_m = 3.0;
  Real pathloss_exponent = 2.2;
  itb::wifi::ChipsetModel chipset = itb::wifi::ar9580();
  itb::wifi::OfdmRate rate = itb::wifi::OfdmRate::k36;
  /// The tag's peak-detector sensitivity (paper: -32 dBm off-the-shelf).
  Real detector_sensitivity_dbm = -32.0;
  std::uint64_t seed = 7;
};

struct DownlinkResult {
  itb::phy::Bits sent;
  itb::phy::Bits received;
  Real ber = 1.0;
  Real rx_power_dbm = 0.0;
  bool above_sensitivity = false;
};

/// Sends `message_bits` once and reports the measured BER at the tag.
DownlinkResult simulate_downlink(const DownlinkScenario& scenario,
                                 const itb::phy::Bits& message_bits);

}  // namespace itb::core
