// Waveform-level Monte-Carlo PER engine: runs the full 802.11b receive
// chain over noisy synthesized frames at a grid of SNRs. Used to validate
// the closed-form per_80211b() model (DESIGN.md's cross-check commitment)
// and by the ablation bench.
//
// Trials fan out across a std::thread pool. Every (point, trial) pair draws
// from its own counter-based RNG substream derived from the sweep seed, so
// the output is bit-identical regardless of thread count or scheduling
// (see trial_seed and DESIGN.md "Deterministic parallel RNG").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/impairments.h"
#include "wifi/rates.h"

namespace itb::core {

struct PerPoint {
  double snr_db;
  double per_monte_carlo;
  double per_closed_form;
  std::size_t trials;
};

struct MonteCarloConfig {
  itb::wifi::DsssRate rate = itb::wifi::DsssRate::k2Mbps;
  std::size_t psdu_bytes = 31;
  std::size_t trials_per_point = 40;
  std::uint64_t seed = 2024;
  /// Worker threads for the trial fan-out; 0 = all hardware threads.
  std::size_t num_threads = 0;
  /// RF impairments applied to every trial's waveform. Each (point, trial)
  /// draws its impairment randomness (multipath taps, phase noise, initial
  /// phase) from its own counter-based substream, so the sweep stays
  /// bit-identical at any thread count.
  std::optional<itb::channel::ImpairmentConfig> impairments;
};

/// Deterministic per-(point, trial) RNG substream seed: one SplitMix64-style
/// mix of the sweep seed with the trial's global counter. Exposed so tests
/// and future sweep engines can share the scheme.
std::uint64_t trial_seed(std::uint64_t sweep_seed, std::uint64_t point_index,
                         std::uint64_t trial_index);

/// Sweeps channel SNR (dB, in the 22 MHz channel bandwidth) and measures
/// frame error rate by decoding each noisy frame end-to-end, side by side
/// with the closed-form prediction.
std::vector<PerPoint> per_vs_snr(const MonteCarloConfig& cfg,
                                 const std::vector<double>& snr_grid_db);

}  // namespace itb::core
