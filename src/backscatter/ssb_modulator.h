// Single-sideband and double-sideband backscatter modulators (paper §2.3).
//
// The tag approximates e^{j 2 pi df t} with two square waves a quarter
// period apart (I and Q), each taking values ±1. At every instant the pair
// (I, Q) in {±1 ± j} selects one of the four impedance states, so the
// reflected wave is Gamma(t) ~ e^{j 2 pi df t}: a frequency shift with no
// mirror image. Multiplying by baseband DBPSK/DQPSK symbols permutes the
// same four states, which is why the whole 802.11b synthesis runs on a
// 4-way switch.
//
// The double-sideband baseline toggles a single square wave (two states),
// producing both +df and -df copies — the behaviour Fig. 6 and Fig. 12
// compare against.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "backscatter/impedance.h"
#include "dsp/types.h"

namespace itb::backscatter {

using itb::dsp::CVec;

struct SsbConfig {
  Real shift_hz = 35.75e6;      ///< +: upshift; -: downshift
  Real sample_rate_hz = 143e6;  ///< 4 x 35.75 MHz: sample-exact phases
  ImpedanceNetwork network = paper_network();
};

/// Time-aligned state sequence: which of the 4 impedance states the switch
/// selects at each output sample.
using StateSequence = std::vector<std::uint8_t>;

class SsbModulator {
 public:
  explicit SsbModulator(const SsbConfig& cfg = {});

  /// State sequence realizing e^{j 2 pi df t} for n samples (no data).
  StateSequence carrier_states(std::size_t n) const;

  /// State sequence for baseband QPSK symbols: `symbol_states[k]` in 0..3 is
  /// the data rotation (multiples of 90 deg) applied during sample k.
  /// Equivalent to multiplying the synthesized carrier by j^rotation.
  StateSequence modulate_states(const std::vector<std::uint8_t>& rotation_per_sample) const;

  /// Converts a state sequence to the reflected complex baseband, given unit
  /// incident tone amplitude: out[k] = Gamma(state[k]).
  CVec states_to_waveform(const StateSequence& states) const;

  /// Convenience: full pipeline from per-sample rotations to waveform.
  CVec modulate(const std::vector<std::uint8_t>& rotation_per_sample) const;

  const SsbConfig& config() const { return cfg_; }

  /// Conversion loss (dB): power of the fundamental at +shift_hz relative to
  /// the incident tone power, measured from a pure carrier_states waveform.
  Real conversion_loss_db(std::size_t probe_samples = 16384) const;

 private:
  SsbConfig cfg_;
  /// Map from quadrant (I>0, Q>0 pattern) to network state index, fixed so
  /// state angles progress counter-clockwise.
  std::array<std::uint8_t, 4> quadrant_to_state_;
  /// Reflection coefficients of the four states, computed once: the network
  /// solve involves complex divides and must not run per waveform sample.
  std::array<Complex, 4> gammas_;
  /// Phase increment per sample as a 0.64 fixed-point fraction of a cycle;
  /// the accumulator's top two bits are the carrier quadrant directly.
  std::uint64_t phase_step_ = 0;
};

/// Double-sideband baseline: a single ±1 square wave at |shift_hz| toggling
/// between two states (maximal |Gamma| difference).
class DsbModulator {
 public:
  explicit DsbModulator(const SsbConfig& cfg = {});

  StateSequence carrier_states(std::size_t n) const;
  CVec states_to_waveform(const StateSequence& states) const;
  CVec modulate(const std::vector<std::uint8_t>& bpsk_flip_per_sample) const;

  const SsbConfig& config() const { return cfg_; }

 private:
  SsbConfig cfg_;
  std::array<Complex, 4> gammas_;
  std::uint64_t phase_step_ = 0;
};

/// Expands chip-rate QPSK rotations (0..3) to per-sample rotations.
std::vector<std::uint8_t> expand_rotations(const std::vector<std::uint8_t>& per_chip,
                                           std::size_t samples_per_chip);

}  // namespace itb::backscatter
