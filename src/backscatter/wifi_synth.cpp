#include "backscatter/wifi_synth.h"

#include <cassert>
#include <cmath>

namespace itb::backscatter {

std::uint8_t chip_to_rotation(itb::dsp::Complex chip) {
  // DSSS/CCK chips sit on the axes {1, j, -1, -j}; quantize to the nearest
  // axis. The tag then emits e^{j pi/4} * j^rotation — a constant pi/4
  // rotation of the whole constellation that differential receivers ignore
  // (paper §2.3.2). Rounding to the nearest axis (rather than the nearest
  // diagonal) keeps the mapping stable under floating-point jitter.
  const long q = std::lround(std::arg(chip) / (itb::dsp::kPi / 2.0));
  return static_cast<std::uint8_t>(((q % 4) + 4) % 4);
}

namespace {

std::size_t count_transitions(const StateSequence& s) {
  std::size_t n = 0;
  for (std::size_t i = 1; i < s.size(); ++i) n += (s[i] != s[i - 1]);
  return n;
}

itb::wifi::DsssFrame make_frame(const itb::phy::Bytes& psdu,
                                const WifiSynthConfig& cfg) {
  itb::wifi::DsssTxConfig txcfg;
  txcfg.rate = cfg.rate;
  txcfg.samples_per_chip = 1;  // we expand to the tag rate ourselves
  txcfg.short_tag_preamble = cfg.short_tag_preamble;
  const itb::wifi::DsssTransmitter tx(txcfg);
  return tx.modulate(psdu);
}

}  // namespace

WifiSynthResult synthesize_wifi(const itb::phy::Bytes& psdu,
                                const WifiSynthConfig& cfg) {
  WifiSynthResult out;
  out.frame = make_frame(psdu, cfg);

  // Per-chip rotations; the tag's DQPSK/CCK chips all sit on the QPSK grid.
  std::vector<std::uint8_t> per_chip(out.frame.chips.size());
  for (std::size_t i = 0; i < per_chip.size(); ++i) {
    per_chip[i] = chip_to_rotation(out.frame.chips[i]);
  }

  const Real spc_real = cfg.sample_rate_hz / 11e6;
  const auto spc = static_cast<std::size_t>(std::lround(spc_real));
  assert(std::abs(spc_real - static_cast<Real>(spc)) < 1e-6 &&
         "tag sample rate must be an integer multiple of 11 Mchip/s");

  const std::vector<std::uint8_t> per_sample = expand_rotations(per_chip, spc);

  SsbConfig scfg;
  scfg.shift_hz = cfg.shift_hz;
  scfg.sample_rate_hz = cfg.sample_rate_hz;
  scfg.network = cfg.network;
  const SsbModulator mod(scfg);

  out.states = mod.modulate_states(per_sample);
  out.waveform = mod.states_to_waveform(out.states);
  out.duration_us = static_cast<double>(out.frame.chips.size()) / 11.0;
  out.state_transitions = count_transitions(out.states);
  return out;
}

WifiSynthResult synthesize_wifi_dsb(const itb::phy::Bytes& psdu,
                                    const WifiSynthConfig& cfg) {
  WifiSynthResult out;
  out.frame = make_frame(psdu, cfg);

  // DSB can only realize BPSK cleanly: use the real part's sign per chip.
  std::vector<std::uint8_t> per_chip(out.frame.chips.size());
  for (std::size_t i = 0; i < per_chip.size(); ++i) {
    per_chip[i] = out.frame.chips[i].real() < 0.0 ? 1 : 0;
  }

  const auto spc =
      static_cast<std::size_t>(std::lround(cfg.sample_rate_hz / 11e6));
  const std::vector<std::uint8_t> per_sample = expand_rotations(per_chip, spc);

  SsbConfig scfg;
  scfg.shift_hz = cfg.shift_hz;
  scfg.sample_rate_hz = cfg.sample_rate_hz;
  scfg.network = cfg.network;
  const DsbModulator mod(scfg);

  out.waveform = mod.modulate(per_sample);
  out.duration_us = static_cast<double>(out.frame.chips.size()) / 11.0;
  // State sequence for DSB is implicit; approximate transitions by edges.
  out.state_transitions = 2 * static_cast<std::size_t>(
      out.duration_us * std::abs(cfg.shift_hz) / 1e6);
  return out;
}

}  // namespace itb::backscatter
