// Maps an 802.11b chip stream onto the tag's 4-state switch (paper §2.3.2).
//
// The DSSS transmitter produces unit-magnitude chips on the QPSK grid
// {1, j, -1, -j} (up to a pi/4 rotation the differential receiver ignores).
// Each chip's quadrant becomes a rotation index 0..3 that the SSB modulator
// adds to its synthesized-carrier state, so the reflected signal is the
// Wi-Fi baseband times e^{j 2 pi df t} — a standards-decodable 802.11b
// packet centred df away from the BLE tone.
#pragma once

#include "backscatter/ssb_modulator.h"
#include "wifi/dsss_tx.h"

namespace itb::backscatter {

struct WifiSynthConfig {
  itb::wifi::DsssRate rate = itb::wifi::DsssRate::k2Mbps;
  Real shift_hz = 35.75e6;
  /// 143 Msps = 13 samples/chip at 11 Mchip/s, 4 samples per shift period.
  Real sample_rate_hz = 143e6;
  /// The IC's switch states are re-tuned to near-ideal QPSK points;
  /// substitute paper_network() to model the FPGA prototype's discrete
  /// 3 pF / open / 1 pF / 2 nH loads (ablation in bench/fig06).
  ImpedanceNetwork network = ideal_network();
  bool short_tag_preamble = true;  ///< fit inside the BLE payload window
};

struct WifiSynthResult {
  CVec waveform;                 ///< reflected baseband (relative to the tone)
  StateSequence states;          ///< switch-state sequence (for power model)
  itb::wifi::DsssFrame frame;    ///< the underlying 802.11b frame
  double duration_us = 0.0;
  std::size_t state_transitions = 0;  ///< switching activity (power model)
};

/// Synthesizes a backscattered 802.11b frame for a PSDU.
WifiSynthResult synthesize_wifi(const itb::phy::Bytes& psdu,
                                const WifiSynthConfig& cfg = {});

/// Double-sideband variant (ablation/comparison): the same frame modulated
/// with a 2-state switch, producing a mirror image on the far side.
WifiSynthResult synthesize_wifi_dsb(const itb::phy::Bytes& psdu,
                                    const WifiSynthConfig& cfg = {});

/// Quantizes a unit-magnitude chip to its QPSK quadrant rotation (0..3)
/// relative to e^{j pi/4}: rotation r means chip ~ e^{j(pi/4 + r pi/2)}.
std::uint8_t chip_to_rotation(itb::dsp::Complex chip);

}  // namespace itb::backscatter
