#include "backscatter/tag.h"

namespace itb::backscatter {

InterscatterTag::InterscatterTag(const TagConfig& cfg) : cfg_(cfg) {}

std::optional<TagTransmission> InterscatterTag::plan(
    const itb::ble::AdvPacket& ble_packet, const itb::phy::Bytes& psdu) const {
  TagTransmission out;
  out.window_us = ble_packet.payload_window_us();
  out.backscatter_start_us = ble_packet.payload_start_us() + cfg_.guard_us +
                             cfg_.timing_error_us;

  out.synth = synthesize_wifi(psdu, cfg_.wifi);

  const double available =
      ble_packet.payload_start_us() + out.window_us - out.backscatter_start_us;
  out.fits_window = out.synth.duration_us <= available;
  if (out.synth.duration_us > out.window_us) {
    // Cannot fit even with perfect timing: reject outright (the 1 Mbps case
    // in the paper's §2.3.3).
    return std::nullopt;
  }
  return out;
}

std::optional<double> InterscatterTag::detect_payload_start(
    const CVec& incident, Real sample_rate_hz,
    double header_duration_us) const {
  EnvelopeDetectorConfig dcfg = cfg_.detector;
  dcfg.sample_rate_hz = sample_rate_hz;
  const EnvelopeDetector det(dcfg);
  const std::size_t trig = det.first_trigger(incident);
  if (trig >= incident.size()) return std::nullopt;
  const double trig_us = static_cast<double>(trig) / (sample_rate_hz / 1e6);
  return trig_us + header_duration_us + cfg_.guard_us;
}

}  // namespace itb::backscatter
