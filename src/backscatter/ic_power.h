// IC power model (paper §3): the interscatter ASIC in TSMC 65 nm LP consumes
// 28 uW while generating 2 Mbps 802.11b — frequency synthesizer 9.69 uW,
// baseband processor 8.51 uW, backscatter modulator 9.79 uW. This module
// parameterizes those block figures with first-order CMOS scaling laws
// (dynamic power ~ activity * C * V^2 * f) so benches can sweep bit rates
// and shifts, and compares against active-radio alternatives.
#pragma once

#include <string>
#include <vector>

#include "dsp/types.h"
#include "wifi/rates.h"

namespace itb::backscatter {

using itb::dsp::Real;

struct IcPowerConfig {
  /// Paper-calibrated block powers at the reference point
  /// (35.75 MHz shift, 2 Mbps baseband, 143 MHz PLL).
  Real synthesizer_uw_ref = 9.69;
  Real baseband_uw_ref = 8.51;
  Real modulator_uw_ref = 9.79;
  Real ref_shift_hz = 35.75e6;
  Real ref_bitrate_mbps = 2.0;

  /// Leakage fraction of each block that does not scale with frequency.
  Real static_fraction = 0.15;
};

struct PowerBreakdown {
  Real synthesizer_uw;
  Real baseband_uw;
  Real modulator_uw;
  Real total_uw() const { return synthesizer_uw + baseband_uw + modulator_uw; }
};

class IcPowerModel {
 public:
  explicit IcPowerModel(const IcPowerConfig& cfg = {});

  /// Power while backscattering at the given Wi-Fi rate and shift.
  PowerBreakdown active_power(itb::wifi::DsssRate rate, Real shift_hz) const;

  /// Average power with duty cycling: the tag transmits `airtime_fraction`
  /// of the time and sleeps (leakage only) otherwise.
  Real average_power_uw(itb::wifi::DsssRate rate, Real shift_hz,
                        Real airtime_fraction) const;

  /// Energy per transmitted payload bit (pJ/bit).
  Real energy_per_bit_pj(itb::wifi::DsssRate rate, Real shift_hz) const;

  const IcPowerConfig& config() const { return cfg_; }

 private:
  IcPowerConfig cfg_;
};

/// Reference power draws of conventional radios for the comparison table
/// (typical datasheet numbers for 2.4 GHz transceivers).
struct RadioReference {
  std::string name;
  Real tx_power_uw;
};
std::vector<RadioReference> active_radio_references();

}  // namespace itb::backscatter
