#include "backscatter/zigbee_synth.h"

#include <cassert>
#include <cmath>

#include "backscatter/wifi_synth.h"
#include "zigbee/oqpsk.h"

namespace itb::backscatter {

ZigbeeSynthResult synthesize_zigbee(const itb::phy::Bytes& mac_payload,
                                    const ZigbeeSynthConfig& cfg) {
  ZigbeeSynthResult out;
  out.ppdu = itb::zigbee::build_ppdu(mac_payload);

  // Chip stream of the PPDU.
  itb::phy::Bits chips;
  for (std::uint8_t b : out.ppdu) {
    for (unsigned nib = 0; nib < 2; ++nib) {
      const unsigned sym = nib == 0 ? (b & 0x0F) : (b >> 4);
      const itb::phy::Bits sc = itb::zigbee::symbol_chips(sym);
      chips.insert(chips.end(), sc.begin(), sc.end());
    }
  }

  // O-QPSK as quadrant rotations: the (I, Q) chip pair selects the quadrant
  // for one chip period each; the half-chip offset is approximated by
  // updating the quadrant at every half-period boundary (I change, then Q
  // change), which is exactly MSK-style phase stepping on the switch.
  assert(chips.size() % 2 == 0);
  const Real chip_period_samples = cfg.sample_rate_hz / itb::zigbee::kChipRateHz;
  const auto half = static_cast<std::size_t>(std::lround(chip_period_samples));
  // Each aggregate chip lasts `half` samples; I and Q each span two chips.
  std::vector<std::uint8_t> per_sample;
  per_sample.reserve(chips.size() * half);
  int i_val = 1;
  int q_val = 1;
  for (std::size_t k = 0; k < chips.size(); ++k) {
    if (k % 2 == 0) {
      i_val = chips[k] ? 1 : -1;
    } else {
      q_val = chips[k] ? 1 : -1;
    }
    unsigned quadrant;
    if (i_val > 0 && q_val > 0) {
      quadrant = 0;
    } else if (i_val < 0 && q_val > 0) {
      quadrant = 1;
    } else if (i_val < 0 && q_val < 0) {
      quadrant = 2;
    } else {
      quadrant = 3;
    }
    for (std::size_t s = 0; s < half; ++s) {
      per_sample.push_back(static_cast<std::uint8_t>(quadrant));
    }
  }
  // O-QPSK's offset Q branch extends half a chip past the last chip
  // boundary: hold the final state one extra chip period so the receiver
  // can sample the last Q chip at its centre.
  if (!per_sample.empty()) {
    const std::uint8_t last = per_sample.back();
    per_sample.insert(per_sample.end(), half, last);
  }

  SsbConfig scfg;
  scfg.shift_hz = cfg.shift_hz;
  scfg.sample_rate_hz = cfg.sample_rate_hz;
  scfg.network = cfg.network;
  const SsbModulator mod(scfg);

  out.states = mod.modulate_states(per_sample);
  out.waveform = mod.states_to_waveform(out.states);
  out.duration_us =
      static_cast<double>(chips.size()) / (itb::zigbee::kChipRateHz / 1e6);
  std::size_t transitions = 0;
  for (std::size_t i = 1; i < out.states.size(); ++i) {
    transitions += (out.states[i] != out.states[i - 1]);
  }
  out.state_transitions = transitions;
  return out;
}

}  // namespace itb::backscatter
