// Passive receive circuits on the tag (paper §2.2 and §2.4):
//   - EnvelopeDetector: RC envelope + comparator used for BLE packet energy
//     detection (triggers the backscatter window; no bit decoding).
//   - PeakDetector: tracks envelope peaks of 802.11g OFDM frames to decode
//     the AM downlink at 125 kbps (and card-to-card at 100 kbps).
#pragma once

#include <vector>

#include "dsp/types.h"
#include "phycommon/bits.h"

namespace itb::backscatter {

using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;

struct EnvelopeDetectorConfig {
  Real sample_rate_hz = 8e6;
  /// RC time constant of the envelope filter.
  Real tau_s = 2e-6;
  /// Comparator threshold in dBm at the detector input. The paper customizes
  /// this so only transmitters within 8-10 feet trigger (false-positive
  /// rejection).
  Real threshold_dbm = -45.0;
  /// Detector sensitivity floor: inputs below this read as silence.
  Real sensitivity_dbm = -55.0;
};

struct EdgeEvent {
  std::size_t sample;
  bool rising;
};

class EnvelopeDetector {
 public:
  explicit EnvelopeDetector(const EnvelopeDetectorConfig& cfg = {});

  /// RC-filtered magnitude envelope of the input.
  itb::dsp::RVec envelope(const CVec& samples) const;

  /// Comparator output transitions.
  std::vector<EdgeEvent> edges(const CVec& samples) const;

  /// First sample index at which energy is declared (nullopt-like: returns
  /// samples.size() when never triggered).
  std::size_t first_trigger(const CVec& samples) const;

  const EnvelopeDetectorConfig& config() const { return cfg_; }

 private:
  EnvelopeDetectorConfig cfg_;
};

struct PeakDetectorConfig {
  Real sample_rate_hz = 20e6;
  Real tau_attack_s = 0.05e-6;  ///< fast charge
  /// Bleed fast enough that a constant OFDM symbol's leading energy spike
  /// (the false-peak hazard the paper designs around, §2.4) decays within
  /// the symbol.
  Real tau_decay_s = 0.5e-6;
  Real sensitivity_dbm = -32.0; ///< paper: off-the-shelf receiver @160 kbps
  /// A pair's second symbol reads as "constant" (bit 1) when its envelope
  /// falls below this fraction of the pair's first (always-random) symbol.
  Real pair_ratio_threshold = 0.85;
};

class PeakDetector {
 public:
  explicit PeakDetector(const PeakDetectorConfig& cfg = {});

  /// Diode-RC peak-holding envelope.
  itb::dsp::RVec envelope(const CVec& samples) const;

  /// Decodes the paper's OFDM-AM encoding: two 4 us symbols per bit,
  /// (random, constant) = 1, (random, random) = 0. `symbol_samples` is the
  /// per-symbol sample count at this sample rate, `data_start` the sample
  /// index of the first data symbol (after any preamble), `num_bits` the
  /// expected message length.
  Bits decode_am(const CVec& samples, std::size_t data_start,
                 std::size_t symbol_samples, std::size_t num_bits) const;

  /// Simple on-off-keying decode used by the card-to-card link: one bit per
  /// `bit_samples`, threshold at the midpoint of min/max envelope.
  Bits decode_ook(const CVec& samples, std::size_t bit_samples) const;

  const PeakDetectorConfig& config() const { return cfg_; }

 private:
  PeakDetectorConfig cfg_;
};

}  // namespace itb::backscatter
