// ZigBee synthesis on the tag (paper §4.5): the same 4-state SSB switch
// drives an O-QPSK chip stream instead of DSSS/CCK. O-QPSK with half-sine
// shaping is MSK-like; the tag approximates it chip-by-chip on the QPSK
// grid, which commodity 802.15.4 receivers despread correctly thanks to the
// 32-chip PN redundancy.
#pragma once

#include "backscatter/ssb_modulator.h"
#include "zigbee/frame.h"

namespace itb::backscatter {

struct ZigbeeSynthConfig {
  Real shift_hz = -6e6;        ///< BLE 38 (2426) -> ZigBee ch 14 (2420)
  Real sample_rate_hz = 96e6;  ///< 48 samples per 2 MHz chip, 4 per 24 MHz
  ImpedanceNetwork network = ideal_network();
};

struct ZigbeeSynthResult {
  CVec waveform;
  StateSequence states;
  itb::phy::Bytes ppdu;
  double duration_us = 0.0;
  std::size_t state_transitions = 0;
};

/// Synthesizes a backscattered 802.15.4 frame for a MAC payload.
ZigbeeSynthResult synthesize_zigbee(const itb::phy::Bytes& mac_payload,
                                    const ZigbeeSynthConfig& cfg = {});

}  // namespace itb::backscatter
