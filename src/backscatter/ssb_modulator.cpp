#include "backscatter/ssb_modulator.h"

#include <cassert>
#include <cmath>

#include "dsp/spectrum.h"
#include "dsp/units.h"

namespace itb::backscatter {

namespace {

/// Square wave value (+1/-1) of frequency f at continuous time t, phase
/// offset in fractions of a period. Edges land on exact sample instants when
/// sample_rate is a multiple of 4f (the 143 MHz design); otherwise the
/// nearest-sample quantization models real switching jitter.
int square_wave(Real t, Real freq, Real phase_cycles) {
  const Real cycles = t * freq + phase_cycles;
  const Real frac = cycles - std::floor(cycles);
  return frac < 0.5 ? 1 : -1;
}

}  // namespace

SsbModulator::SsbModulator(const SsbConfig& cfg) : cfg_(cfg) {
  // Quadrant encoding: bit0 = (I > 0), bit1 = (Q > 0).
  // (+,+) -> e^{j pi/4} region -> state 0 of the canonical order,
  // (-,+) -> state 1, (-,-) -> state 2, (+,-) -> state 3.
  quadrant_to_state_ = {/*I+Q+*/ 0, /*I-Q+*/ 1, /*I-Q-*/ 2, /*I+Q-*/ 3};
}

StateSequence SsbModulator::carrier_states(std::size_t n) const {
  StateSequence out(n);
  const Real fs = cfg_.sample_rate_hz;
  const Real f = std::abs(cfg_.shift_hz);
  const bool up = cfg_.shift_hz >= 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const Real t = static_cast<Real>(k) / fs;
    const int i = square_wave(t, f, 0.25);   // cos-like: +1 at t=0
    // sin-like: delayed quarter period; for a downshift the Q branch leads
    // instead of lags, conjugating the synthesized exponential.
    const int q = square_wave(t, f, up ? 0.0 : 0.5);
    unsigned quadrant;
    if (i > 0 && q > 0) {
      quadrant = 0;
    } else if (i < 0 && q > 0) {
      quadrant = 1;
    } else if (i < 0 && q < 0) {
      quadrant = 2;
    } else {
      quadrant = 3;
    }
    out[k] = quadrant_to_state_[quadrant];
  }
  return out;
}

StateSequence SsbModulator::modulate_states(
    const std::vector<std::uint8_t>& rotation_per_sample) const {
  StateSequence carrier = carrier_states(rotation_per_sample.size());
  for (std::size_t k = 0; k < carrier.size(); ++k) {
    // Multiplying by j^r advances the state index by r (states are 90 deg
    // apart, ordered counter-clockwise).
    carrier[k] = static_cast<std::uint8_t>((carrier[k] + rotation_per_sample[k]) % 4);
  }
  return carrier;
}

CVec SsbModulator::states_to_waveform(const StateSequence& states) const {
  const auto g = cfg_.network.gammas();
  CVec out(states.size());
  for (std::size_t k = 0; k < states.size(); ++k) out[k] = g[states[k]];
  return out;
}

CVec SsbModulator::modulate(
    const std::vector<std::uint8_t>& rotation_per_sample) const {
  return states_to_waveform(modulate_states(rotation_per_sample));
}

Real SsbModulator::conversion_loss_db(std::size_t probe_samples) const {
  const CVec wave = states_to_waveform(carrier_states(probe_samples));
  itb::dsp::WelchConfig wcfg;
  wcfg.segment_size = 4096;
  wcfg.overlap = 2048;
  const itb::dsp::Psd psd =
      itb::dsp::welch_psd(wave, cfg_.sample_rate_hz, wcfg);
  const Real half_bin = 2.0 * psd.bin_hz;
  const Real fund = itb::dsp::band_power(psd, cfg_.shift_hz - half_bin,
                                         cfg_.shift_hz + half_bin);
  // Incident tone power is 1 (unit amplitude): loss = -10 log10(P_fund).
  return -10.0 * std::log10(std::max(fund, 1e-30));
}

DsbModulator::DsbModulator(const SsbConfig& cfg) : cfg_(cfg) {}

StateSequence DsbModulator::carrier_states(std::size_t n) const {
  StateSequence out(n);
  const Real fs = cfg_.sample_rate_hz;
  const Real f = std::abs(cfg_.shift_hz);
  for (std::size_t k = 0; k < n; ++k) {
    const Real t = static_cast<Real>(k) / fs;
    // Two states: pick the pair with maximal separation (0 and 2 are
    // diametrically opposite in the canonical order).
    out[k] = square_wave(t, f, 0.25) > 0 ? 0 : 2;
  }
  return out;
}

CVec DsbModulator::states_to_waveform(const StateSequence& states) const {
  const auto g = cfg_.network.gammas();
  CVec out(states.size());
  for (std::size_t k = 0; k < states.size(); ++k) out[k] = g[states[k]];
  return out;
}

CVec DsbModulator::modulate(
    const std::vector<std::uint8_t>& bpsk_flip_per_sample) const {
  StateSequence states = carrier_states(bpsk_flip_per_sample.size());
  for (std::size_t k = 0; k < states.size(); ++k) {
    if (bpsk_flip_per_sample[k] & 1) {
      states[k] = static_cast<std::uint8_t>((states[k] + 2) % 4);
    }
  }
  return states_to_waveform(states);
}

std::vector<std::uint8_t> expand_rotations(const std::vector<std::uint8_t>& per_chip,
                                           std::size_t samples_per_chip) {
  std::vector<std::uint8_t> out(per_chip.size() * samples_per_chip);
  for (std::size_t i = 0; i < per_chip.size(); ++i) {
    for (std::size_t k = 0; k < samples_per_chip; ++k) {
      out[i * samples_per_chip + k] = per_chip[i];
    }
  }
  return out;
}

}  // namespace itb::backscatter
