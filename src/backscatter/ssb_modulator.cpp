#include "backscatter/ssb_modulator.h"

#include <cassert>
#include <cmath>

#include "dsp/spectrum.h"
#include "dsp/units.h"

namespace itb::backscatter {

namespace {

/// Per-sample phase increment of a square wave at `freq`, expressed as a
/// 0.64 fixed-point fraction of a cycle. A 64-bit accumulator stepping by
/// this value replaces the per-sample floor() of the seed implementation:
/// the top two accumulator bits ARE the carrier quadrant, and for the
/// sample-exact 143 MHz design (fs = 4f) the step is exactly 2^62 so edges
/// land on the same samples as before. For non-dyadic ratios the 2^-64
/// cycle quantization (~5e-20) is far below the switching jitter the
/// nearest-sample model already accepts.
std::uint64_t phase_step_fixed(Real freq, Real sample_rate) {
  Real r = freq / sample_rate;
  r -= std::floor(r);  // alias into [0, 1): only the fractional phase matters
  const Real scaled = std::ldexp(r, 32);
  const Real hi_f = std::floor(scaled);
  std::uint64_t hi = static_cast<std::uint64_t>(hi_f);
  std::uint64_t lo =
      static_cast<std::uint64_t>(std::llround(std::ldexp(scaled - hi_f, 32)));
  if (lo >> 32 != 0) {
    lo = 0;
    ++hi;
  }
  return (hi << 32) | lo;
}

}  // namespace

SsbModulator::SsbModulator(const SsbConfig& cfg) : cfg_(cfg) {
  // Quadrant encoding: bit0 = (I > 0), bit1 = (Q > 0).
  // (+,+) -> e^{j pi/4} region -> state 0 of the canonical order,
  // (-,+) -> state 1, (-,-) -> state 2, (+,-) -> state 3.
  quadrant_to_state_ = {/*I+Q+*/ 0, /*I-Q+*/ 1, /*I-Q-*/ 2, /*I+Q-*/ 3};
  gammas_ = cfg_.network.gammas();
  phase_step_ = phase_step_fixed(std::abs(cfg_.shift_hz), cfg_.sample_rate_hz);
}

StateSequence SsbModulator::carrier_states(std::size_t n) const {
  StateSequence out(n);
  // With the I branch a quarter period ahead of Q (the cos/sin pair), the
  // quadrant sequence over one carrier cycle is simply 0,1,2,3 for an
  // upshift — the top two bits of the phase accumulator. A downshift swaps
  // the branch roles, conjugating the exponential: quadrant 3,2,1,0.
  const bool up = cfg_.shift_hz >= 0.0;
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const unsigned quadrant = static_cast<unsigned>(acc >> 62);
    out[k] = quadrant_to_state_[up ? quadrant : 3u - quadrant];
    acc += phase_step_;
  }
  return out;
}

StateSequence SsbModulator::modulate_states(
    const std::vector<std::uint8_t>& rotation_per_sample) const {
  StateSequence carrier = carrier_states(rotation_per_sample.size());
  for (std::size_t k = 0; k < carrier.size(); ++k) {
    // Multiplying by j^r advances the state index by r (states are 90 deg
    // apart, ordered counter-clockwise).
    carrier[k] = static_cast<std::uint8_t>((carrier[k] + rotation_per_sample[k]) % 4);
  }
  return carrier;
}

CVec SsbModulator::states_to_waveform(const StateSequence& states) const {
  CVec out(states.size());
  for (std::size_t k = 0; k < states.size(); ++k) out[k] = gammas_[states[k]];
  return out;
}

CVec SsbModulator::modulate(
    const std::vector<std::uint8_t>& rotation_per_sample) const {
  return states_to_waveform(modulate_states(rotation_per_sample));
}

Real SsbModulator::conversion_loss_db(std::size_t probe_samples) const {
  const CVec wave = states_to_waveform(carrier_states(probe_samples));
  itb::dsp::WelchConfig wcfg;
  wcfg.segment_size = 4096;
  wcfg.overlap = 2048;
  const itb::dsp::Psd psd =
      itb::dsp::welch_psd(wave, cfg_.sample_rate_hz, wcfg);
  const Real half_bin = 2.0 * psd.bin_hz;
  const Real fund = itb::dsp::band_power(psd, cfg_.shift_hz - half_bin,
                                         cfg_.shift_hz + half_bin);
  // Incident tone power is 1 (unit amplitude): loss = -10 log10(P_fund).
  return -10.0 * std::log10(std::max(fund, 1e-30));
}

DsbModulator::DsbModulator(const SsbConfig& cfg) : cfg_(cfg) {
  gammas_ = cfg_.network.gammas();
  phase_step_ = phase_step_fixed(std::abs(cfg_.shift_hz), cfg_.sample_rate_hz);
}

StateSequence DsbModulator::carrier_states(std::size_t n) const {
  StateSequence out(n);
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    // Two states: pick the pair with maximal separation (0 and 2 are
    // diametrically opposite in the canonical order). The square wave is
    // +1 exactly when the accumulator sits in quadrants 0 or 3.
    const unsigned quadrant = static_cast<unsigned>(acc >> 62);
    out[k] = (quadrant == 0 || quadrant == 3) ? 0 : 2;
    acc += phase_step_;
  }
  return out;
}

CVec DsbModulator::states_to_waveform(const StateSequence& states) const {
  CVec out(states.size());
  for (std::size_t k = 0; k < states.size(); ++k) out[k] = gammas_[states[k]];
  return out;
}

CVec DsbModulator::modulate(
    const std::vector<std::uint8_t>& bpsk_flip_per_sample) const {
  StateSequence states = carrier_states(bpsk_flip_per_sample.size());
  for (std::size_t k = 0; k < states.size(); ++k) {
    if (bpsk_flip_per_sample[k] & 1) {
      states[k] = static_cast<std::uint8_t>((states[k] + 2) % 4);
    }
  }
  return states_to_waveform(states);
}

std::vector<std::uint8_t> expand_rotations(const std::vector<std::uint8_t>& per_chip,
                                           std::size_t samples_per_chip) {
  std::vector<std::uint8_t> out(per_chip.size() * samples_per_chip);
  for (std::size_t i = 0; i < per_chip.size(); ++i) {
    for (std::size_t k = 0; k < samples_per_chip; ++k) {
      out[i * samples_per_chip + k] = per_chip[i];
    }
  }
  return out;
}

}  // namespace itb::backscatter
