#include "backscatter/ic_power.h"

namespace itb::backscatter {

IcPowerModel::IcPowerModel(const IcPowerConfig& cfg) : cfg_(cfg) {}

PowerBreakdown IcPowerModel::active_power(itb::wifi::DsssRate rate,
                                          Real shift_hz) const {
  const Real s = cfg_.static_fraction;
  const Real shift_scale = std::abs(shift_hz) / cfg_.ref_shift_hz;

  // The synthesizer's PLL runs at 4x the shift; its dynamic power scales
  // with that clock.
  const Real synth =
      cfg_.synthesizer_uw_ref * (s + (1.0 - s) * shift_scale);

  // Baseband switching activity scales with the encoded chip rate; all
  // 802.11b rates share the 11 Mchip/s clock but CCK toggles more logic.
  Real baseband_scale = 1.0;
  switch (rate) {
    case itb::wifi::DsssRate::k1Mbps:
      baseband_scale = 0.95;
      break;
    case itb::wifi::DsssRate::k2Mbps:
      baseband_scale = 1.0;
      break;
    case itb::wifi::DsssRate::k5_5Mbps:
      baseband_scale = 1.18;
      break;
    case itb::wifi::DsssRate::k11Mbps:
      baseband_scale = 1.32;
      break;
  }
  const Real baseband = cfg_.baseband_uw_ref * (s + (1.0 - s) * baseband_scale);

  // The modulator burns power per switch transition: ~4 transitions per
  // shift period regardless of rate.
  const Real modulator =
      cfg_.modulator_uw_ref * (s + (1.0 - s) * shift_scale);

  return {synth, baseband, modulator};
}

Real IcPowerModel::average_power_uw(itb::wifi::DsssRate rate, Real shift_hz,
                                    Real airtime_fraction) const {
  const PowerBreakdown active = active_power(rate, shift_hz);
  const Real sleep = active.total_uw() * cfg_.static_fraction * 0.1;
  return airtime_fraction * active.total_uw() +
         (1.0 - airtime_fraction) * sleep;
}

Real IcPowerModel::energy_per_bit_pj(itb::wifi::DsssRate rate,
                                     Real shift_hz) const {
  const PowerBreakdown p = active_power(rate, shift_hz);
  // uW / Mbps = pJ/bit.
  return p.total_uw() / itb::wifi::rate_mbps(rate);
}

std::vector<RadioReference> active_radio_references() {
  return {
      {"802.11b Wi-Fi transceiver (TX)", 300'000.0},
      {"BLE SoC radio (TX, 0 dBm)", 18'000.0},
      {"802.15.4 ZigBee radio (TX)", 30'000.0},
      {"Passive Wi-Fi tag (reference design)", 59.2},
      {"Interscatter IC (this work, 2 Mbps)", 28.0},
  };
}

}  // namespace itb::backscatter
