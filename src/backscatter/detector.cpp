#include "backscatter/detector.h"

#include <algorithm>
#include <cmath>

#include "dsp/units.h"

namespace itb::backscatter {

EnvelopeDetector::EnvelopeDetector(const EnvelopeDetectorConfig& cfg)
    : cfg_(cfg) {}

itb::dsp::RVec EnvelopeDetector::envelope(const CVec& samples) const {
  itb::dsp::RVec env(samples.size());
  const Real alpha =
      1.0 - std::exp(-1.0 / (cfg_.tau_s * cfg_.sample_rate_hz));
  const Real floor_amp =
      std::sqrt(itb::dsp::dbm_to_watts(cfg_.sensitivity_dbm));
  Real state = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    Real mag = std::abs(samples[i]);
    if (mag < floor_amp) mag = 0.0;  // below detector sensitivity
    state += alpha * (mag - state);
    env[i] = state;
  }
  return env;
}

std::vector<EdgeEvent> EnvelopeDetector::edges(const CVec& samples) const {
  const itb::dsp::RVec env = envelope(samples);
  const Real threshold_amp =
      std::sqrt(itb::dsp::dbm_to_watts(cfg_.threshold_dbm));
  std::vector<EdgeEvent> out;
  bool high = false;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const bool now = env[i] > threshold_amp;
    if (now != high) {
      out.push_back({i, now});
      high = now;
    }
  }
  return out;
}

std::size_t EnvelopeDetector::first_trigger(const CVec& samples) const {
  for (const EdgeEvent& e : edges(samples)) {
    if (e.rising) return e.sample;
  }
  return samples.size();
}

PeakDetector::PeakDetector(const PeakDetectorConfig& cfg) : cfg_(cfg) {}

itb::dsp::RVec PeakDetector::envelope(const CVec& samples) const {
  itb::dsp::RVec env(samples.size());
  const Real a_up =
      1.0 - std::exp(-1.0 / (cfg_.tau_attack_s * cfg_.sample_rate_hz));
  const Real a_dn =
      1.0 - std::exp(-1.0 / (cfg_.tau_decay_s * cfg_.sample_rate_hz));
  const Real floor_amp =
      std::sqrt(itb::dsp::dbm_to_watts(cfg_.sensitivity_dbm));
  Real state = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    Real mag = std::abs(samples[i]);
    if (mag < floor_amp) mag = 0.0;
    const Real a = mag > state ? a_up : a_dn;
    state += a * (mag - state);
    env[i] = state;
  }
  return env;
}

Bits PeakDetector::decode_am(const CVec& samples, std::size_t data_start,
                             std::size_t symbol_samples,
                             std::size_t num_bits) const {
  const itb::dsp::RVec env = envelope(samples);

  // Mean envelope of the trailing 2/3 of each symbol (skipping CP and the
  // constant symbol's leading spike).
  const auto symbol_level = [&](std::size_t sym_index) -> Real {
    const std::size_t start = data_start + sym_index * symbol_samples;
    const std::size_t skip = symbol_samples / 3;
    if (start + symbol_samples > env.size()) return 0.0;
    Real acc = 0.0;
    std::size_t n = 0;
    for (std::size_t k = skip; k < symbol_samples; ++k) {
      acc += env[start + k];
      ++n;
    }
    return n ? acc / static_cast<Real>(n) : 0.0;
  };

  // Paired decision: each bit's leading symbol is random by construction,
  // so it serves as the live amplitude reference for its own pair — robust
  // to absolute level changes from path loss or AGC.
  Bits out;
  for (std::size_t b = 0; b < num_bits; ++b) {
    // Pairs start at symbol 1: (1,2), (3,4), ...
    const Real first = symbol_level(1 + 2 * b);
    const Real second = symbol_level(2 + 2 * b);
    out.push_back(second < cfg_.pair_ratio_threshold * first ? 1 : 0);
  }
  return out;
}

Bits PeakDetector::decode_ook(const CVec& samples, std::size_t bit_samples) const {
  const itb::dsp::RVec env = envelope(samples);
  if (env.empty() || bit_samples == 0) return {};
  const auto [mn_it, mx_it] = std::minmax_element(env.begin(), env.end());
  const Real threshold = (*mn_it + *mx_it) / 2.0;
  Bits out;
  for (std::size_t start = 0; start + bit_samples <= env.size();
       start += bit_samples) {
    Real acc = 0.0;
    for (std::size_t k = 0; k < bit_samples; ++k) acc += env[start + k];
    out.push_back(acc / static_cast<Real>(bit_samples) > threshold ? 1 : 0);
  }
  return out;
}

}  // namespace itb::backscatter
