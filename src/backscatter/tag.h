// The interscatter tag's end-to-end state machine (paper §2.2-2.3):
//
//   IDLE -> (envelope detector sees BLE preamble/AA/header energy, 56 us)
//        -> WAIT guard (timing uncertainty margin, 4 us)
//        -> BACKSCATTER (synthesize Wi-Fi/ZigBee inside the payload window)
//        -> IDLE before the BLE CRC starts
//
// The tag never decodes Bluetooth: it only sees energy, so its payload-start
// estimate carries jitter. Tests inject timing error beyond the guard
// interval to show the resulting truncation failures.
#pragma once

#include <optional>

#include "backscatter/detector.h"
#include "backscatter/wifi_synth.h"
#include "ble/packet.h"

namespace itb::backscatter {

struct TagConfig {
  EnvelopeDetectorConfig detector{};
  Real guard_us = 4.0;            ///< paper's guard interval
  WifiSynthConfig wifi{};
  /// Extra timing error (us) injected on top of detection jitter; models the
  /// no-decode energy-detection uncertainty.
  Real timing_error_us = 0.0;
};

struct TagTransmission {
  WifiSynthResult synth;
  double backscatter_start_us = 0.0;  ///< relative to BLE packet start
  double window_us = 0.0;             ///< available payload window
  bool fits_window = false;           ///< frame duration <= window - guard
};

class InterscatterTag {
 public:
  explicit InterscatterTag(const TagConfig& cfg = {});

  /// Given the BLE packet's air timing (from ble::AdvPacket bookkeeping) and
  /// the PSDU the tag wants to send, plans and synthesizes the transmission.
  /// Returns nullopt when the Wi-Fi frame cannot fit in the window at all.
  std::optional<TagTransmission> plan(const itb::ble::AdvPacket& ble_packet,
                                      const itb::phy::Bytes& psdu) const;

  /// Detection front-end: runs the envelope detector on incident BLE
  /// baseband samples and returns the estimated AdvData start time (us), or
  /// nullopt if no trigger. The default offset is the paper's 56 us of
  /// preamble + access address + PDU header plus the fixed 48 us AdvA field
  /// that precedes the application-controlled AdvData.
  std::optional<double> detect_payload_start(
      const CVec& incident, Real sample_rate_hz,
      double header_duration_us = 56.0 + 48.0) const;

  const TagConfig& config() const { return cfg_; }

 private:
  TagConfig cfg_;
};

}  // namespace itb::backscatter
