#include "backscatter/impedance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace itb::backscatter {

std::complex<Real> Load::impedance(Real freq_hz) const {
  const Real w = itb::dsp::kTwoPi * freq_hz;
  switch (kind) {
    case LoadKind::kCapacitor:
      // Zc = 1 / (j w C) = -j / (w C)
      return {0.0, -1.0 / (w * value)};
    case LoadKind::kInductor:
      return {0.0, w * value};
    case LoadKind::kOpen:
      return {1e12, 0.0};
    case LoadKind::kShort:
      return {0.0, 0.0};
    case LoadKind::kResistor:
      return {value, 0.0};
    case LoadKind::kNetwork:
      return network_impedance;
  }
  return {0.0, 0.0};
}

std::complex<Real> reflection_coefficient(std::complex<Real> za,
                                          std::complex<Real> zc) {
  return (za - zc) / (za + zc);
}

std::complex<Real> ImpedanceNetwork::gamma(std::size_t state) const {
  assert(state < 4);
  return reflection_coefficient(antenna_impedance, loads[state].impedance(freq_hz));
}

std::array<std::complex<Real>, 4> ImpedanceNetwork::gammas() const {
  return {gamma(0), gamma(1), gamma(2), gamma(3)};
}

Real ImpedanceNetwork::mean_magnitude() const {
  Real acc = 0.0;
  for (std::size_t i = 0; i < 4; ++i) acc += std::abs(gamma(i));
  return acc / 4.0;
}

Real ImpedanceNetwork::constellation_error_rad() const {
  // Ideal spacing: the sorted state angles should be 90 degrees apart.
  std::array<Real, 4> ang;
  for (std::size_t i = 0; i < 4; ++i) ang[i] = std::arg(gamma(i));
  std::sort(ang.begin(), ang.end());
  Real worst = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const Real next = i + 1 < 4 ? ang[i + 1] : ang[0] + itb::dsp::kTwoPi;
    const Real gap = next - ang[i];
    worst = std::max(worst, std::abs(gap - itb::dsp::kPi / 2.0));
  }
  return worst;
}

ImpedanceNetwork paper_network() {
  ImpedanceNetwork n;
  n.loads[0] = {LoadKind::kCapacitor, 3e-12};
  n.loads[1] = {LoadKind::kOpen, 0.0};
  n.loads[2] = {LoadKind::kCapacitor, 1e-12};
  n.loads[3] = {LoadKind::kInductor, 2e-9};
  return n;
}

ImpedanceNetwork ideal_network() {
  // Loads chosen so Gamma = exactly {e^{j pi/4}, e^{j 3pi/4}, e^{-j 3pi/4},
  // e^{-j pi/4}}: purely reactive loads give |Gamma| = 1; solving
  // (Za - jX)/(Za + jX) = e^{j theta} for X with Za = 50 gives
  // X = -Za tan(theta/2).
  ImpedanceNetwork n;
  const Real za = 50.0;
  const auto reactance_for = [&](Real theta) {
    return -za * std::tan(theta / 2.0);
  };
  const std::array<Real, 4> thetas = {itb::dsp::kPi / 4.0, 3.0 * itb::dsp::kPi / 4.0,
                                      -3.0 * itb::dsp::kPi / 4.0,
                                      -itb::dsp::kPi / 4.0};
  const Real w = itb::dsp::kTwoPi * n.freq_hz;
  for (std::size_t i = 0; i < 4; ++i) {
    const Real x = reactance_for(thetas[i]);
    if (x >= 0.0) {
      n.loads[i] = {LoadKind::kInductor, x / w};
    } else {
      n.loads[i] = {LoadKind::kCapacitor, -1.0 / (w * x)};
    }
  }
  return n;
}

ImpedanceNetwork retuned_network(std::complex<Real> antenna_impedance) {
  // Solve each load exactly from the target reflection coefficient:
  //   Gamma = (Za - Zc)/(Za + Zc)  =>  Zc = Za (1 - Gamma)/(1 + Gamma).
  // For a complex (lossy) antenna the exact solution may demand a negative
  // resistance; passivity then caps the achievable |Gamma|, so we keep the
  // reactive part and clamp the resistance at zero — the residual shows up
  // as constellation error/loss, exactly as on a real bench.
  ImpedanceNetwork n;
  n.antenna_impedance = antenna_impedance;
  const std::array<Real, 4> thetas = {itb::dsp::kPi / 4.0, 3.0 * itb::dsp::kPi / 4.0,
                                      -3.0 * itb::dsp::kPi / 4.0,
                                      -itb::dsp::kPi / 4.0};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::complex<Real> gamma = std::polar<Real>(1.0, thetas[i]);
    std::complex<Real> zc =
        antenna_impedance * (std::complex<Real>{1.0, 0.0} - gamma) /
        (std::complex<Real>{1.0, 0.0} + gamma);
    if (std::real(zc) < 0.0) zc = {0.0, std::imag(zc)};
    n.loads[i] = {LoadKind::kNetwork, 0.0, zc};
  }
  return n;
}

}  // namespace itb::backscatter
