// The tag's four-state complex impedance network (paper §2.3.1 and §3).
//
// Backscatter reflects the incident wave with coefficient
//   Gamma = (Za - Zc) / (Za + Zc)            [paper's sign convention]
// Switching Zc among four loads — 3 pF, open, 1 pF, 2 nH on the FPGA/IC —
// yields four reflection states that, after normalization, sit ~90 degrees
// apart on the complex plane: the tag's QPSK alphabet {1+j, 1-j, -1+j, -1-j}
// up to a common rotation/scale.
#pragma once

#include <array>
#include <complex>

#include "dsp/types.h"

namespace itb::backscatter {

using itb::dsp::Complex;
using itb::dsp::Real;

/// Lumped load kinds available to the switch network. kNetwork represents a
/// small matching network presenting an arbitrary (passive) impedance — how
/// the bench re-tunes states for non-50-ohm antennas.
enum class LoadKind { kCapacitor, kInductor, kOpen, kShort, kResistor, kNetwork };

struct Load {
  LoadKind kind = LoadKind::kOpen;
  Real value = 0.0;  ///< farads, henries or ohms depending on kind
  std::complex<Real> network_impedance{0.0, 0.0};  ///< used by kNetwork

  /// Impedance at frequency f (Hz).
  std::complex<Real> impedance(Real freq_hz) const;
};

/// Reflection coefficient Gamma = (Za - Zc)/(Za + Zc), paper convention.
std::complex<Real> reflection_coefficient(std::complex<Real> za,
                                          std::complex<Real> zc);

/// The four-state network: loads indexed 0..3 mapped to complex baseband
/// states. The canonical order matches the ideal alphabet
/// e^{j pi/4} * {1, j, -1, -j} / sqrt(2) = {1+j, -1+j, -1-j, 1-j}/2.
struct ImpedanceNetwork {
  std::array<Load, 4> loads;
  std::complex<Real> antenna_impedance{50.0, 0.0};
  Real freq_hz = 2.44e9;

  /// Gamma for state i.
  std::complex<Real> gamma(std::size_t state) const;

  /// All four Gammas.
  std::array<std::complex<Real>, 4> gammas() const;

  /// Mean magnitude of the four states (drives conversion loss).
  Real mean_magnitude() const;

  /// Worst-case angular deviation (rad) of the four states from an ideal
  /// 90-degree-spaced QPSK constellation (after optimal common rotation).
  Real constellation_error_rad() const;
};

/// The paper's FPGA/IC load selection: 3 pF, open, 1 pF, 2 nH at 2.4 GHz
/// against a 50-ohm antenna.
ImpedanceNetwork paper_network();

/// An idealized network whose Gammas are exactly the unit-magnitude QPSK
/// states (used by ablation benches to isolate circuit imperfections).
ImpedanceNetwork ideal_network();

/// Network re-tuned for a non-50-ohm antenna (contact lens / implant loops):
/// scales the ideal states by the achievable |Gamma| given mismatch.
ImpedanceNetwork retuned_network(std::complex<Real> antenna_impedance);

}  // namespace itb::backscatter
