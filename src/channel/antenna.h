// Antenna models: the 2 dBi monopoles on the radios, and the electrically
// small loop antennas of the contact-lens (1 cm) and neural-implant (4 cm)
// prototypes, whose low radiation efficiency and non-50-ohm impedance set
// the range difference between Fig. 10 and Figs. 15/16.
#pragma once

#include <complex>
#include <string>

#include "dsp/types.h"

namespace itb::channel {

using itb::dsp::Real;

struct Antenna {
  std::string name;
  Real gain_dbi = 2.0;
  Real efficiency_db = 0.0;        ///< radiation efficiency (<= 0)
  std::complex<Real> impedance{50.0, 0.0};

  /// Effective gain including efficiency.
  Real effective_gain_dbi() const { return gain_dbi + efficiency_db; }
};

/// 2 dBi monopole / chip antenna on phones, routers, TI dev kits, the tag.
Antenna monopole_2dbi();

/// 1 cm loop in PDMS immersed in saline (contact lens prototype, §5.1):
/// small-loop gain with heavy medium-loading loss.
Antenna contact_lens_loop();

/// 4 cm full-wavelength loop under 2 mm PDMS in tissue (§5.2).
Antenna neural_implant_loop();

/// Credit-card PCB antenna (§5.3).
Antenna card_antenna();

/// Mismatch loss (dB) when an antenna of impedance Za drives a load Zc:
/// -10 log10(1 - |Gamma|^2) with Gamma = (Zc - Za)/(Zc + Za).
Real mismatch_loss_db(std::complex<Real> za, std::complex<Real> zc);

}  // namespace itb::channel
