// Small-scale and large-scale fading models for the location-population
// experiments (Fig. 11's PER CDF, Fig. 14's ZigBee RSSI CDF).
//
// Indoor 2.4 GHz links are well described by log-normal shadowing (per
// location) plus Rayleigh/Rician small-scale fading (per packet). The
// backscatter link compounds two hops, so fades can hit either leg.
#pragma once

#include "dsp/rng.h"
#include "dsp/types.h"

namespace itb::channel {

using itb::dsp::Real;

struct ShadowingModel {
  Real sigma_db = 4.0;  ///< log-normal standard deviation

  /// Per-location shadowing term in dB.
  Real sample_db(itb::dsp::Xoshiro256& rng) const {
    return sigma_db * rng.gaussian();
  }
};

struct RicianFading {
  /// K-factor (linear): power ratio of the dominant path to scattered paths.
  /// K -> 0 degenerates to Rayleigh; indoor line-of-sight links are K ~ 3-8.
  Real k_factor = 4.0;

  /// Per-packet power gain (linear, mean 1) of one fading realization.
  Real sample_power_gain(itb::dsp::Xoshiro256& rng) const;
};

/// Per-packet fade of the *backscatter* channel: the product of two
/// independent hops (BLE->tag and tag->receiver), each Rician. The product
/// distribution has a heavier low tail than a single hop, which is why
/// backscatter links show more PER spread than conventional ones.
Real backscatter_fade_power_gain(const RicianFading& hop1,
                                 const RicianFading& hop2,
                                 itb::dsp::Xoshiro256& rng);

/// Convenience: dB forms.
Real fade_db(const RicianFading& f, itb::dsp::Xoshiro256& rng);
Real backscatter_fade_db(const RicianFading& hop1, const RicianFading& hop2,
                         itb::dsp::Xoshiro256& rng);

}  // namespace itb::channel
