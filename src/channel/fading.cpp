#include "channel/fading.h"

#include <cmath>

#include "dsp/units.h"

namespace itb::channel {

Real RicianFading::sample_power_gain(itb::dsp::Xoshiro256& rng) const {
  // Rician envelope: dominant component of power K/(K+1) plus complex
  // Gaussian scatter of power 1/(K+1); total mean power 1.
  const Real k = std::max(k_factor, 0.0);
  const Real dominant = std::sqrt(k / (k + 1.0));
  const itb::dsp::Complex scatter = rng.complex_gaussian(1.0 / (k + 1.0));
  const itb::dsp::Complex h = itb::dsp::Complex{dominant, 0.0} + scatter;
  return std::norm(h);
}

Real backscatter_fade_power_gain(const RicianFading& hop1,
                                 const RicianFading& hop2,
                                 itb::dsp::Xoshiro256& rng) {
  return hop1.sample_power_gain(rng) * hop2.sample_power_gain(rng);
}

Real fade_db(const RicianFading& f, itb::dsp::Xoshiro256& rng) {
  return itb::dsp::ratio_to_db(std::max(f.sample_power_gain(rng), 1e-12));
}

Real backscatter_fade_db(const RicianFading& hop1, const RicianFading& hop2,
                         itb::dsp::Xoshiro256& rng) {
  return itb::dsp::ratio_to_db(
      std::max(backscatter_fade_power_gain(hop1, hop2, rng), 1e-12));
}

}  // namespace itb::channel
