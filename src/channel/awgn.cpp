#include "channel/awgn.h"

#include <cmath>

#include "dsp/units.h"

namespace itb::channel {

Real thermal_noise_dbm(Real bandwidth_hz, Real noise_figure_db) {
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

CVec add_noise_variance(const CVec& x, Real noise_variance,
                        itb::dsp::Xoshiro256& rng) {
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] + rng.complex_gaussian(noise_variance);
  }
  return out;
}

CVec add_noise_snr(const CVec& x, Real snr_db, itb::dsp::Xoshiro256& rng) {
  const Real signal_power = itb::dsp::mean_power(x);
  const Real noise_power = signal_power / itb::dsp::db_to_ratio(snr_db);
  return add_noise_variance(x, noise_power, rng);
}

CVec apply_cfo(const CVec& x, Real cfo_hz, Real sample_rate_hz,
               Real initial_phase_rad) {
  CVec out(x.size());
  const Real step = itb::dsp::kTwoPi * cfo_hz / sample_rate_hz;
  Real phase = initial_phase_rad;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * Complex{std::cos(phase), std::sin(phase)};
    phase += step;
  }
  return out;
}

CVec apply_cfo(const CVec& x, FrequencyOffset offset, Real sample_rate_hz,
               Real initial_phase_rad) {
  return apply_cfo(x, offset.hz(), sample_rate_hz, initial_phase_rad);
}

CVec apply_gain_db(const CVec& x, Real gain_db) {
  const Real a = itb::dsp::db_to_amplitude(gain_db);
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * a;
  return out;
}

}  // namespace itb::channel
