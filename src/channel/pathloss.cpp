#include "channel/pathloss.h"

#include <cassert>
#include <cmath>

namespace itb::channel {

Real friis_pathloss_db(Real distance_m, Real freq_hz) {
  assert(distance_m > 0.0 && freq_hz > 0.0);
  const Real lambda = itb::dsp::kSpeedOfLight / freq_hz;
  return 20.0 * std::log10(4.0 * itb::dsp::kPi * distance_m / lambda);
}

Real LogDistanceModel::pathloss_db(Real distance_m) const {
  const Real d = std::max(distance_m, 0.01);
  const Real pl0 = friis_pathloss_db(reference_m, freq_hz);
  if (d <= reference_m) {
    return friis_pathloss_db(d, freq_hz);
  }
  return pl0 + 10.0 * exponent * std::log10(d / reference_m);
}

Real perpendicular_range_m(Real ble_tag_separation_m, Real perpendicular_m) {
  const Real half = ble_tag_separation_m / 2.0;
  return std::sqrt(half * half + perpendicular_m * perpendicular_m);
}

}  // namespace itb::channel
