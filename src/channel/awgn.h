// Additive white Gaussian noise, thermal noise floors and SNR utilities.
#pragma once

#include "dsp/rng.h"
#include "dsp/types.h"

namespace itb::channel {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;

/// Thermal noise power (dBm) in a bandwidth: -174 dBm/Hz + 10log10(BW) + NF.
Real thermal_noise_dbm(Real bandwidth_hz, Real noise_figure_db = 0.0);

/// A carrier frequency offset with its unit made explicit at the call site.
///
/// Oscillator datasheets quote offsets in ppm of the carrier while baseband
/// math needs Hz; passing a bare Real invites silently feeding ppm where Hz
/// is expected (a 40 ppm tag offset at 2.44 GHz is ~98 kHz, not 40 Hz).
/// Construction is only possible through the named factories, so every
/// conversion is spelled out exactly once.
class FrequencyOffset {
 public:
  static FrequencyOffset from_hz(Real hz) { return FrequencyOffset(hz); }
  static FrequencyOffset from_ppm(Real ppm, Real carrier_hz) {
    return FrequencyOffset(ppm * 1e-6 * carrier_hz);
  }

  Real hz() const { return hz_; }
  Real ppm(Real carrier_hz) const { return hz_ / carrier_hz * 1e6; }

 private:
  explicit FrequencyOffset(Real hz) : hz_(hz) {}
  Real hz_;
};

/// Adds complex AWGN of the given total noise power (variance) to samples.
CVec add_noise_variance(const CVec& x, Real noise_variance,
                        itb::dsp::Xoshiro256& rng);

/// Adds noise to achieve the requested SNR (dB) relative to the mean power
/// of x.
CVec add_noise_snr(const CVec& x, Real snr_db, itb::dsp::Xoshiro256& rng);

/// Applies a static carrier frequency offset and initial phase.
/// The Real overload takes the offset in Hz; prefer the typed overload when
/// the offset originates from an oscillator tolerance in ppm.
CVec apply_cfo(const CVec& x, Real cfo_hz, Real sample_rate_hz,
               Real initial_phase_rad = 0.0);
CVec apply_cfo(const CVec& x, FrequencyOffset offset, Real sample_rate_hz,
               Real initial_phase_rad = 0.0);

/// Scales samples by a power gain given in dB (amplitude = 10^(dB/20)).
CVec apply_gain_db(const CVec& x, Real gain_db);

}  // namespace itb::channel
