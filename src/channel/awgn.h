// Additive white Gaussian noise, thermal noise floors and SNR utilities.
#pragma once

#include "dsp/rng.h"
#include "dsp/types.h"

namespace itb::channel {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;

/// Thermal noise power (dBm) in a bandwidth: -174 dBm/Hz + 10log10(BW) + NF.
Real thermal_noise_dbm(Real bandwidth_hz, Real noise_figure_db = 0.0);

/// Adds complex AWGN of the given total noise power (variance) to samples.
CVec add_noise_variance(const CVec& x, Real noise_variance,
                        itb::dsp::Xoshiro256& rng);

/// Adds noise to achieve the requested SNR (dB) relative to the mean power
/// of x.
CVec add_noise_snr(const CVec& x, Real snr_db, itb::dsp::Xoshiro256& rng);

/// Applies a static carrier frequency offset and initial phase.
CVec apply_cfo(const CVec& x, Real cfo_hz, Real sample_rate_hz,
               Real initial_phase_rad = 0.0);

/// Scales samples by a power gain given in dB (amplitude = 10^(dB/20)).
CVec apply_gain_db(const CVec& x, Real gain_db);

}  // namespace itb::channel
