#include "channel/tissue.h"

#include <cmath>
#include <complex>

namespace itb::channel {

TissueProperties muscle_2g4() { return {52.7, 1.74}; }

TissueProperties saline_2g4() { return {74.0, 3.5}; }

TissueProperties grey_matter_2g4() { return {48.9, 1.81}; }

Real attenuation_constant_np_per_m(const TissueProperties& t, Real freq_hz) {
  // alpha = omega * sqrt(mu*eps'/2 * (sqrt(1 + (sigma/(omega eps'))^2) - 1))
  const Real omega = itb::dsp::kTwoPi * freq_hz;
  const Real eps0 = 8.8541878128e-12;
  const Real mu0 = 4.0e-7 * itb::dsp::kPi;
  const Real eps = t.relative_permittivity * eps0;
  const Real loss_tangent = t.conductivity_s_per_m / (omega * eps);
  return omega * std::sqrt(mu0 * eps / 2.0 *
                           (std::sqrt(1.0 + loss_tangent * loss_tangent) - 1.0));
}

Real tissue_loss_db(const TissueProperties& t, Real freq_hz, Real depth_m) {
  const Real alpha = attenuation_constant_np_per_m(t, freq_hz);
  // Field decays as e^{-alpha d}; power loss in dB = 20 log10(e) * alpha * d.
  return 8.685889638 * alpha * depth_m;
}

Real interface_loss_db(const TissueProperties& t, Real freq_hz) {
  // Complex intrinsic impedance of the tissue vs. free space (377 ohm).
  const Real omega = itb::dsp::kTwoPi * freq_hz;
  const Real eps0 = 8.8541878128e-12;
  const Real mu0 = 4.0e-7 * itb::dsp::kPi;
  const std::complex<Real> eps_c{t.relative_permittivity * eps0,
                                 -t.conductivity_s_per_m / omega};
  const std::complex<Real> eta_t = std::sqrt(std::complex<Real>{mu0, 0.0} / eps_c);
  const Real eta_0 = std::sqrt(mu0 / eps0);
  const std::complex<Real> gamma = (eta_t - eta_0) / (eta_t + eta_0);
  const Real transmitted = 1.0 - std::norm(gamma);
  return -10.0 * std::log10(std::max(transmitted, 1e-9));
}

Real round_trip_implant_loss_db(const TissueProperties& t, Real freq_hz,
                                Real depth_m) {
  return 2.0 * (tissue_loss_db(t, freq_hz, depth_m) + interface_loss_db(t, freq_hz));
}

}  // namespace itb::channel
