// Radio propagation models used by every RSSI/range experiment:
// free-space (Friis) and log-distance path loss at 2.4 GHz, plus unit
// helpers (the paper quotes distances in feet and inches).
#pragma once

#include "dsp/types.h"

namespace itb::channel {

using itb::dsp::Real;

inline constexpr Real kFeetToMeters = 0.3048;
inline constexpr Real kInchesToMeters = 0.0254;

/// Free-space path loss in dB between isotropic antennas.
Real friis_pathloss_db(Real distance_m, Real freq_hz);

/// Log-distance model: FSPL(d0) + 10*n*log10(d/d0). The paper's indoor
/// office environment is well matched by n ~ 2.2-2.5 near the devices.
struct LogDistanceModel {
  Real exponent = 2.2;
  Real reference_m = 1.0;
  Real freq_hz = 2.44e9;

  Real pathloss_db(Real distance_m) const;
};

/// Geometry helper for the paper's Fig. 10 setup: the Wi-Fi receiver moves
/// perpendicular from the midpoint of the BLE-transmitter <-> tag segment.
/// Returns the tag->receiver distance for a given perpendicular distance.
Real perpendicular_range_m(Real ble_tag_separation_m, Real perpendicular_m);

}  // namespace itb::channel
