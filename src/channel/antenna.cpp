#include "channel/antenna.h"

#include <cmath>

namespace itb::channel {

Antenna monopole_2dbi() {
  return {.name = "2 dBi monopole",
          .gain_dbi = 2.0,
          .efficiency_db = 0.0,
          .impedance = {50.0, 0.0}};
}

Antenna contact_lens_loop() {
  // 1 cm loop is ~lambda/12 at 2.4 GHz; immersed in saline it detunes and
  // absorbs. The efficiency here is calibrated so the Fig. 15 reproduction
  // matches the paper's measured RSSI (-72 dBm at 5 in / 20 dBm, usable
  // past 24 in); saline bulk/interface loss is modeled separately in
  // tissue.h and applied per backscatter leg.
  return {.name = "contact-lens 1 cm loop (in saline)",
          .gain_dbi = -2.0,
          .efficiency_db = -9.0,
          .impedance = {20.0, 35.0}};
}

Antenna neural_implant_loop() {
  // 4 cm loop is near full-wave at 2.4 GHz: decent gain, but the PDMS +
  // tissue loading costs efficiency (tissue bulk loss is modeled separately
  // in tissue.h).
  return {.name = "neural-implant 4 cm loop",
          .gain_dbi = 1.0,
          .efficiency_db = -6.0,
          .impedance = {45.0, 20.0}};
}

Antenna card_antenna() {
  return {.name = "credit-card PCB antenna",
          .gain_dbi = 0.0,
          .efficiency_db = -2.0,
          .impedance = {50.0, 0.0}};
}

Real mismatch_loss_db(std::complex<Real> za, std::complex<Real> zc) {
  const std::complex<Real> gamma = (zc - za) / (zc + za);
  const Real transmitted = 1.0 - std::norm(gamma);
  return -10.0 * std::log10(std::max(transmitted, 1e-9));
}

}  // namespace itb::channel
