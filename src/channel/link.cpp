#include "channel/link.h"

#include <cmath>

#include "channel/awgn.h"
#include "dsp/units.h"

namespace itb::channel {

LinkSample backscatter_rssi(const BackscatterLinkConfig& cfg,
                            Real tag_rx_distance_m) {
  // Degenerate geometry (non-positive or NaN distances) drives the
  // pathloss model to NaN/-inf; report an explicit dead link instead of
  // letting the garbage reach reservation and PER math downstream.
  if (!(cfg.ble_tag_distance_m > 0.0) || !(tag_rx_distance_m > 0.0)) {
    return {kLinkDownDb, kLinkDownDb, kLinkDownDb, true};
  }

  const Real pl1 = cfg.pathloss.pathloss_db(cfg.ble_tag_distance_m);
  const Real incident = cfg.ble_tx_power_dbm + cfg.ble_antenna.effective_gain_dbi() +
                        cfg.tag_antenna.effective_gain_dbi() - pl1 -
                        cfg.tag_medium_loss_db;

  const Real pl2 = cfg.pathloss.pathloss_db(tag_rx_distance_m);
  const Real rssi = incident - cfg.backscatter_conversion_loss_db -
                    cfg.tag_medium_loss_db + cfg.tag_antenna.effective_gain_dbi() -
                    pl2 + cfg.rx_antenna.effective_gain_dbi();

  const Real noise = thermal_noise_dbm(cfg.rx_bandwidth_hz, cfg.rx_noise_figure_db);
  LinkSample out{rssi, rssi - noise, incident, false};
  // NaN losses / gains / noise figures (a detuned model, not just a far
  // tag) must also surface as link_down rather than NaN.
  if (!std::isfinite(out.rssi_dbm) || !std::isfinite(out.snr_db) ||
      !std::isfinite(out.incident_at_tag_dbm)) {
    return {kLinkDownDb, kLinkDownDb, kLinkDownDb, true};
  }
  return out;
}

Real ber_dbpsk(Real ebn0_db) {
  const Real g = itb::dsp::db_to_ratio(ebn0_db);
  return 0.5 * std::exp(-g);
}

Real ber_dqpsk(Real ebn0_db) {
  // Standard tight approximation for Gray-coded DQPSK:
  // 0.5 * exp(-(sqrt(2) - 1) * 2 * Eb/N0 * ... ) — we use the common
  // Marcum-free bound P_b ~ 0.5 exp(-0.59 * 2 g) which tracks the exact
  // curve within ~0.5 dB over the PER-relevant range.
  const Real g = itb::dsp::db_to_ratio(ebn0_db);
  return 0.5 * std::exp(-1.17 * g);
}

Real per_80211b(itb::wifi::DsssRate rate, Real snr_db, std::size_t psdu_bytes) {
  using itb::wifi::DsssRate;
  // NaN SNR (garbage budget input) and the link-down sentinel are both
  // certain loss, not NaN PER.
  if (std::isnan(snr_db) || snr_db <= kLinkDownDb) return 1.0;
  // Implementation loss: real receivers lose ~3 dB to chip-timing
  // acquisition, differential detection and channel estimation relative to
  // ideal coherent detection. Calibrated against the waveform-level Monte
  // Carlo in bench/ablation_per_model.cpp.
  constexpr Real kImplementationLossDb = 3.0;
  // Convert channel SNR (22 MHz) to Eb/N0: Eb/N0 = SNR * BW / bitrate.
  const Real bitrate = rate_mbps(rate) * 1e6;
  const Real bw = 22e6;
  const Real ebn0_db =
      snr_db - kImplementationLossDb + 10.0 * std::log10(bw / bitrate);

  Real ber = 0.0;
  switch (rate) {
    case DsssRate::k1Mbps:
      ber = ber_dbpsk(ebn0_db);
      break;
    case DsssRate::k2Mbps:
      ber = ber_dqpsk(ebn0_db);
      break;
    case DsssRate::k5_5Mbps:
      // CCK-4 block coding gain ~1 dB over uncoded DQPSK at equal Eb/N0.
      ber = ber_dqpsk(ebn0_db + 1.0);
      break;
    case DsssRate::k11Mbps:
      // CCK-8 coding gain ~2 dB. Net channel-SNR gap between 11 and 2 Mbps
      // is then ~5.4 dB, matching typical receiver sensitivity specs
      // (-88 dBm at 2 Mbps vs ~-82.5 dBm at 11 Mbps).
      ber = ber_dqpsk(ebn0_db + 2.0);
      break;
  }
  ber = std::min(ber, 0.5);

  // Preamble+header at 1 Mbps DBPSK, then payload at the data rate.
  const Real hdr_ebn0_db = snr_db + 10.0 * std::log10(bw / 1e6);
  const Real hdr_ber = std::min(ber_dbpsk(hdr_ebn0_db), 0.5);
  const double hdr_bits = 48.0;  // header; SFD detection is more robust
  const double payload_bits = static_cast<double>(psdu_bytes) * 8.0;

  const Real p_ok = std::pow(1.0 - hdr_ber, hdr_bits) *
                    std::pow(1.0 - ber, payload_bits);
  return 1.0 - p_ok;
}

Real per_802154(Real snr_db, std::size_t psdu_bytes) {
  if (std::isnan(snr_db) || snr_db <= kLinkDownDb) return 1.0;
  // 250 kbps in the 22 MHz reference bandwidth: Eb/N0 = SNR + 19.4 dB.
  // The (32, 4) quasi-orthogonal chip code behaves like ~2 dB of coding
  // gain over differential QPSK under the repo's noncoherent DPDI
  // receiver; the same 3 dB implementation loss as per_80211b applies.
  constexpr Real kImplementationLossDb = 3.0;
  constexpr Real kCodingGainDb = 2.0;
  const Real ebn0_db = snr_db - kImplementationLossDb + kCodingGainDb +
                       10.0 * std::log10(22e6 / 250e3);
  const Real ber = std::min(ber_dqpsk(ebn0_db), Real{0.5});
  // SHR + PHR (6 bytes) protect the sync; fold them into the frame length.
  const double bits = (static_cast<double>(psdu_bytes) + 6.0) * 8.0;
  return 1.0 - std::pow(1.0 - ber, bits);
}

Real direct_rssi_dbm(Real tx_power_dbm, Real tx_gain_dbi, Real rx_gain_dbi,
                     const LogDistanceModel& model, Real distance_m) {
  return tx_power_dbm + tx_gain_dbi + rx_gain_dbi - model.pathloss_db(distance_m);
}

}  // namespace itb::channel
