// Composable RF impairment chain: everything between an ideal transmit
// waveform and the samples a cheap receiver actually sees.
//
// The paper's implant scenarios live or die on non-idealities the AWGN-only
// channel ignores: the tag's low-power oscillator drifts tens of ppm
// (carrier *and* sampling clock), through-tissue links add multipath, and
// the kind of ADC a wearable receiver ships quantizes coarsely. Each stage
// here models one of those, and the chain applies them in physical order:
//
//   multipath -> CFO + phase noise -> sample-rate offset -> IQ imbalance
//   -> ADC quantization
//
// Determinism contract (same scheme as core/parallel.h + core::trial_seed):
// apply() holds no mutable state; all randomness is drawn from counter-based
// substreams derived from (seed, stream, stage) with SplitMix64 mixing, so
// a Monte-Carlo sweep that assigns one `stream` per trial is bit-identical
// at any thread count or scheduling order.
#pragma once

#include <cstdint>
#include <optional>

#include "channel/awgn.h"
#include "dsp/types.h"

namespace itb::channel {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;

/// N-tap small-scale fading channel with sample-spaced taps and an
/// exponential power-delay profile. The first tap is Rician with the given
/// K-factor (K <= 0 degenerates to Rayleigh); later taps are Rayleigh.
struct MultipathConfig {
  std::size_t num_taps = 3;
  /// RMS delay spread of the exponential profile (seconds). Indoor 2.4 GHz
  /// is ~30-70 ns; through-tissue body channels measure up to ~20 ns extra.
  Real delay_spread_s = 50e-9;
  Real k_factor = 4.0;
};

struct ImpairmentConfig {
  /// RF carrier the ppm figures refer to (2.4 GHz ISM by default).
  Real carrier_hz = 2.437e9;
  /// Baseband sample rate of the waveform being impaired.
  Real sample_rate_hz = 11e6;
  /// Carrier frequency offset of the tag/receiver clock, in ppm of carrier.
  Real cfo_ppm = 0.0;
  /// Sampling-rate offset in ppm (same crystal as the carrier on real tags,
  /// but kept independent so they can be swept separately).
  Real sro_ppm = 0.0;
  /// Receiver IQ imbalance: gain mismatch (dB) and phase skew (degrees).
  Real iq_gain_db = 0.0;
  Real iq_phase_deg = 0.0;
  /// Oscillator phase noise modeled as a Wiener process with this Lorentzian
  /// linewidth (Hz). 0 disables.
  Real phase_noise_linewidth_hz = 0.0;
  /// ADC resolution in bits per I/Q rail; 0 = ideal converter.
  unsigned adc_bits = 0;
  /// ADC full scale is set this many dB above the signal RMS (clipping
  /// headroom). Smaller backoff clips peaks; larger wastes resolution.
  Real adc_headroom_db = 12.0;
  std::optional<MultipathConfig> multipath;
};

/// Substream seed for one (seed, stream, stage) triple. Same SplitMix64
/// counter-mixing scheme as core::trial_seed; exposed so tests can pin it.
std::uint64_t impairment_substream(std::uint64_t seed, std::uint64_t stream,
                                   std::uint64_t stage);

/// Applies a fixed impairment configuration to waveforms. Stateless and
/// thread-safe: every call derives its randomness from the (seed, stream)
/// pair alone, never from previous calls.
class ImpairmentChain {
 public:
  explicit ImpairmentChain(const ImpairmentConfig& cfg);

  /// The full chain: channel stages then the ADC front end.
  CVec apply(const CVec& x, std::uint64_t seed, std::uint64_t stream = 0) const;

  /// Channel-side stages only (multipath, CFO, phase noise, SRO, IQ) —
  /// lets callers add receiver thermal noise *before* quantization.
  CVec apply_channel(const CVec& x, std::uint64_t seed,
                     std::uint64_t stream = 0) const;

  /// ADC quantization alone (deterministic; no RNG involved).
  CVec apply_frontend(const CVec& x) const;

  /// CFO in Hz implied by cfo_ppm at the configured carrier.
  Real cfo_hz() const {
    return FrequencyOffset::from_ppm(cfg_.cfo_ppm, cfg_.carrier_hz).hz();
  }

  const ImpairmentConfig& config() const { return cfg_; }

 private:
  ImpairmentConfig cfg_;
};

/// Budget-level effective SNR after impairments: folds each stage's error
/// vector power into the thermal SNR, for the closed-form sweeps that never
/// touch waveforms (sim/network link draws). `symbol_rate_hz` sets the
/// timescale over which residual CFO / phase noise / delay spread hurt.
/// Monotone: any impairment magnitude increase can only lower the result.
Real impaired_snr_db(const ImpairmentConfig& cfg, Real snr_db,
                     Real symbol_rate_hz);

/// Convenience: the SNR penalty (dB >= 0) the impairments cost at this
/// operating point.
Real impairment_snr_penalty_db(const ImpairmentConfig& cfg, Real snr_db,
                               Real symbol_rate_hz);

// --- presets for the paper's deployment scenarios -------------------------
// Each takes the waveform's sample rate because the chain is applied at
// baseband; the carrier default matches the 2.4 GHz ISM band.

/// Contact lens / neural implant: tissue multipath is short but the tag
/// crystal is the cheapest available (±40 ppm) and the reader ADC is coarse.
ImpairmentConfig implant_tissue_preset(Real sample_rate_hz,
                                       Real carrier_hz = 2.437e9);

/// Hospital ward: longer indoor delay spread, body movement keeps the LOS
/// weak, moderate clock quality.
ImpairmentConfig ward_mobility_preset(Real sample_rate_hz,
                                      Real carrier_hz = 2.437e9);

/// Card-to-card: near-field, strong LOS, almost no multipath; clocks still
/// consumer grade.
ImpairmentConfig card_to_card_preset(Real sample_rate_hz,
                                     Real carrier_hz = 2.437e9);

/// Named presets for config plumbing (core scenarios, sim/network, benches).
enum class ImpairmentPreset {
  kNone,
  kImplantTissue,
  kWardMobility,
  kCardToCard,
};

/// Resolves a preset at a waveform's rate/carrier; nullopt for kNone.
std::optional<ImpairmentConfig> make_impairment_preset(ImpairmentPreset preset,
                                                       Real sample_rate_hz,
                                                       Real carrier_hz);

}  // namespace itb::channel
