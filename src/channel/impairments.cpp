#include "channel/impairments.h"

#include <algorithm>
#include <cmath>

#include "core/arena.h"
#include "dsp/rng.h"
#include "dsp/simd/kernels.h"
#include "dsp/units.h"
#include "obs/prof.h"

namespace itb::channel {

namespace {

// Stage indices for substream derivation. Values are part of the
// determinism contract (DESIGN.md): changing them changes every seeded run.
enum Stage : std::uint64_t {
  kStageMultipath = 1,
  kStagePhase = 2,  // initial carrier phase + phase-noise walk
};

/// Multipath tap gains for one realization, written into `taps`
/// (arena-backed scratch; n = taps.size()). Mean total power is 1 so the
/// impairment does not change the average link budget, only its spread.
void draw_taps(const MultipathConfig& mp, Real sample_rate_hz,
               itb::dsp::Xoshiro256& rng, itb::core::Arena& arena,
               std::span<Complex> taps) {
  const std::size_t n = taps.size();
  // Exponential power-delay profile sampled at the tap spacing.
  std::span<Real> profile = arena.alloc_span<Real>(n);
  Real total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real delay_s = static_cast<Real>(i) / sample_rate_hz;
    profile[i] = mp.delay_spread_s > 0.0
                     ? std::exp(-delay_s / mp.delay_spread_s)
                     : (i == 0 ? 1.0 : 0.0);
    total += profile[i];
  }
  for (Real& p : profile) p /= total;

  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 && mp.k_factor > 0.0) {
      // Rician first tap: deterministic LOS component plus scatter.
      const Real k = mp.k_factor;
      const Real los = std::sqrt(profile[0] * k / (k + 1.0));
      const Complex scatter = rng.complex_gaussian(profile[0] / (k + 1.0));
      taps[0] = Complex{los, 0.0} + scatter;
    } else {
      taps[i] = rng.complex_gaussian(profile[i]);
    }
  }
}

}  // namespace

std::uint64_t impairment_substream(std::uint64_t seed, std::uint64_t stream,
                                   std::uint64_t stage) {
  using itb::dsp::splitmix64;
  return splitmix64(seed ^ splitmix64((stage << 48) ^ stream));
}

ImpairmentChain::ImpairmentChain(const ImpairmentConfig& cfg) : cfg_(cfg) {}

CVec ImpairmentChain::apply_channel(const CVec& x, std::uint64_t seed,
                                    std::uint64_t stream) const {
  static const std::size_t kZone = obs::prof_zone("phy.impair_channel");
  const obs::ProfZone prof(kZone);
  CVec y = x;

  // --- 1. multipath convolution -------------------------------------------
  if (cfg_.multipath && !y.empty()) {
    // Tap draws and the convolution output are trial scratch: carved from
    // the thread arena and rewound on scope exit, so a Monte-Carlo sweep
    // allocates nothing here after warm-up.
    itb::core::ArenaFrame scratch;
    itb::dsp::Xoshiro256 rng(
        impairment_substream(seed, stream, kStageMultipath));
    const std::size_t ntaps =
        std::max<std::size_t>(cfg_.multipath->num_taps, 1);
    std::span<Complex> taps = scratch.arena().alloc_span<Complex>(ntaps);
    draw_taps(*cfg_.multipath, cfg_.sample_rate_hz, rng, scratch.arena(),
              taps);
    // Causal convolution with ramp-in, vectorized across output samples
    // (per-output tap order k ascending, identical to the scalar loop).
    std::span<Complex> conv =
        scratch.arena().alloc_span_zeroed<Complex>(y.size());
    itb::dsp::simd::active_kernels().fir_causal_complex(
        y.data(), y.size(), taps.data(), taps.size(), conv.data());
    std::copy(conv.begin(), conv.end(), y.begin());
  }

  // --- 2. carrier offset + phase noise ------------------------------------
  const Real cfo = cfo_hz();
  const bool has_pn = cfg_.phase_noise_linewidth_hz > 0.0;
  if (cfo != 0.0 || has_pn) {
    itb::dsp::Xoshiro256 rng(impairment_substream(seed, stream, kStagePhase));
    const Real phi0 = rng.uniform(0.0, itb::dsp::kTwoPi);
    const Real step = itb::dsp::kTwoPi * cfo / cfg_.sample_rate_hz;
    // Wiener phase noise: variance of the per-sample increment for a
    // Lorentzian linewidth B is 2*pi*B/fs.
    const Real pn_sigma =
        has_pn ? std::sqrt(itb::dsp::kTwoPi * cfg_.phase_noise_linewidth_hz /
                           cfg_.sample_rate_hz)
               : 0.0;
    Real phase = phi0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] *= Complex{std::cos(phase), std::sin(phase)};
      phase += step;
      if (has_pn) phase += pn_sigma * rng.gaussian();
    }
  }

  // --- 3. sampling-rate offset --------------------------------------------
  // The receiver's clock runs (1 + sro) fast: it reads the waveform at
  // fractional positions i*(1 + sro). Linear interpolation is adequate for
  // the already band-limited signals here (same rationale as dsp/resample).
  // A fast clock consumes more input than it produces, so the tail is
  // zero-padded by the accumulated drift — otherwise a frame that ends at
  // its last sample loses its final symbol to the resampler.
  if (cfg_.sro_ppm != 0.0 && y.size() > 1) {
    const Real ratio = 1.0 + cfg_.sro_ppm * 1e-6;
    const auto drift = static_cast<std::size_t>(
        std::ceil(static_cast<Real>(y.size()) * std::abs(cfg_.sro_ppm) * 1e-6));
    y.resize(y.size() + drift + 1, Complex{0.0, 0.0});
    // Output count is bounded by (padded length)/ratio + 1; the resampled
    // waveform is built in arena scratch and copied into the result once
    // its exact length is known.
    itb::core::ArenaFrame scratch;
    const auto bound = static_cast<std::size_t>(
                           static_cast<Real>(y.size()) / ratio) +
                       2;
    std::span<Complex> res = scratch.arena().alloc_span<Complex>(bound);
    std::size_t count = 0;
    for (std::size_t i = 0;; ++i) {
      const Real pos = static_cast<Real>(i) * ratio;
      const auto i0 = static_cast<std::size_t>(pos);
      if (i0 + 1 >= y.size()) break;
      const Real frac = pos - static_cast<Real>(i0);
      res[count++] = y[i0] * (1.0 - frac) + y[i0 + 1] * frac;
    }
    y.assign(res.begin(), res.begin() + static_cast<std::ptrdiff_t>(count));
  }

  // --- 4. IQ gain/phase imbalance -----------------------------------------
  // y' = alpha*y + beta*conj(y): the standard widely-linear receiver model.
  if (cfg_.iq_gain_db != 0.0 || cfg_.iq_phase_deg != 0.0) {
    const Real g = itb::dsp::db_to_amplitude(cfg_.iq_gain_db);
    const Real phi = cfg_.iq_phase_deg * itb::dsp::kPi / 180.0;
    const Complex e{std::cos(phi), std::sin(phi)};
    const Complex alpha = (1.0 + g * e) / 2.0;
    const Complex beta = (1.0 - g * std::conj(e)) / 2.0;
    itb::dsp::simd::active_kernels().iq_imbalance(y.data(), alpha, beta,
                                                  y.size());
  }

  return y;
}

CVec ImpairmentChain::apply_frontend(const CVec& x) const {
  static const std::size_t kZone = obs::prof_zone("phy.impair_frontend");
  const obs::ProfZone prof(kZone);
  if (cfg_.adc_bits == 0 || x.empty()) return x;
  const Real rms = itb::dsp::rms(x);
  if (rms <= 0.0) return x;
  const Real full_scale = rms * itb::dsp::db_to_amplitude(cfg_.adc_headroom_db);
  const Real levels = std::pow(2.0, static_cast<Real>(cfg_.adc_bits - 1));
  const Real step = full_scale / levels;
  // Mid-rise quantizer, vectorized per double: clamp to
  // [-full_scale, full_scale - step] then (floor(v/step) + 0.5) * step.
  CVec y = x;
  itb::dsp::simd::active_kernels().quantize_midrise(y.data(), full_scale, step,
                                                    y.size());
  return y;
}

CVec ImpairmentChain::apply(const CVec& x, std::uint64_t seed,
                            std::uint64_t stream) const {
  return apply_frontend(apply_channel(x, seed, stream));
}

Real impaired_snr_db(const ImpairmentConfig& cfg, Real snr_db,
                     Real symbol_rate_hz) {
  const Real t_sym = 1.0 / symbol_rate_hz;

  // Error-vector power of each stage relative to unit signal power. These
  // are the standard small-impairment approximations; each is zero for an
  // ideal radio and grows monotonically with its knob.
  Real evm2 = 0.0;

  // Residual CFO after receiver synchronization. The upgraded receivers
  // estimate CFO from the preamble; the estimator residual scales with the
  // raw offset (finite preamble length), modeled as a 5% remnant. The
  // uncorrected phase ramp over one symbol has uniform-phase error power
  // theta^2/3.
  const Real cfo_hz = std::abs(
      FrequencyOffset::from_ppm(cfg.cfo_ppm, cfg.carrier_hz).hz());
  const Real theta_cfo = itb::dsp::kTwoPi * 0.05 * cfo_hz * t_sym;
  evm2 += theta_cfo * theta_cfo / 3.0;

  // Sampling offset: timing drift accumulated over a frame (~100 symbols)
  // as a fraction of the symbol, squared.
  const Real drift = std::abs(cfg.sro_ppm) * 1e-6 * 100.0;
  evm2 += drift * drift;

  // Wiener phase noise variance accrued over one symbol.
  evm2 += itb::dsp::kTwoPi * cfg.phase_noise_linewidth_hz * t_sym;

  // IQ imbalance image power |beta/alpha|^2.
  if (cfg.iq_gain_db != 0.0 || cfg.iq_phase_deg != 0.0) {
    const Real g = itb::dsp::db_to_amplitude(cfg.iq_gain_db);
    const Real phi = cfg.iq_phase_deg * itb::dsp::kPi / 180.0;
    const Complex e{std::cos(phi), std::sin(phi)};
    const Complex alpha = (1.0 + g * e) / 2.0;
    const Complex beta = (1.0 - g * std::conj(e)) / 2.0;
    evm2 += std::norm(beta) / std::norm(alpha);
  }

  // Quantization noise at the configured headroom: SQNR = 6.02b + 1.76 -
  // headroom (the headroom trades resolution for clip margin).
  if (cfg.adc_bits > 0) {
    const Real sqnr_db =
        6.02 * static_cast<Real>(cfg.adc_bits) + 1.76 - cfg.adc_headroom_db;
    evm2 += itb::dsp::db_to_ratio(-sqnr_db);
  }

  // Multipath ISI: energy arriving later than the symbol's matched window,
  // approximated by the delay-spread-to-symbol ratio (flat-fading level
  // variation is already handled by channel/fading draws).
  if (cfg.multipath) {
    const Real r = cfg.multipath->delay_spread_s / t_sym;
    evm2 += r * r;
  }

  // Impairment error power adds to thermal noise referred to the signal.
  const Real snr_lin = itb::dsp::db_to_ratio(snr_db);
  return itb::dsp::ratio_to_db(snr_lin / (1.0 + snr_lin * evm2));
}

Real impairment_snr_penalty_db(const ImpairmentConfig& cfg, Real snr_db,
                               Real symbol_rate_hz) {
  return snr_db - impaired_snr_db(cfg, snr_db, symbol_rate_hz);
}

ImpairmentConfig implant_tissue_preset(Real sample_rate_hz, Real carrier_hz) {
  ImpairmentConfig cfg;
  cfg.carrier_hz = carrier_hz;
  cfg.sample_rate_hz = sample_rate_hz;
  cfg.cfo_ppm = 40.0;   // cheapest tag crystal
  cfg.sro_ppm = 40.0;   // same oscillator drives the sampling clock
  cfg.phase_noise_linewidth_hz = 200.0;
  cfg.adc_bits = 6;     // wearable-reader class converter
  cfg.iq_gain_db = 0.3;
  cfg.iq_phase_deg = 2.0;
  MultipathConfig mp;
  mp.num_taps = 2;
  mp.delay_spread_s = 15e-9;  // short through-tissue excess delay
  mp.k_factor = 6.0;          // implant-to-reader is near-LOS
  cfg.multipath = mp;
  return cfg;
}

ImpairmentConfig ward_mobility_preset(Real sample_rate_hz, Real carrier_hz) {
  ImpairmentConfig cfg;
  cfg.carrier_hz = carrier_hz;
  cfg.sample_rate_hz = sample_rate_hz;
  cfg.cfo_ppm = 20.0;
  cfg.sro_ppm = 20.0;
  cfg.phase_noise_linewidth_hz = 100.0;
  cfg.adc_bits = 8;
  cfg.iq_gain_db = 0.2;
  cfg.iq_phase_deg = 1.0;
  MultipathConfig mp;
  mp.num_taps = 4;
  mp.delay_spread_s = 60e-9;  // indoor ward, moving bodies
  mp.k_factor = 1.5;          // weak LOS
  cfg.multipath = mp;
  return cfg;
}

ImpairmentConfig card_to_card_preset(Real sample_rate_hz, Real carrier_hz) {
  ImpairmentConfig cfg;
  cfg.carrier_hz = carrier_hz;
  cfg.sample_rate_hz = sample_rate_hz;
  cfg.cfo_ppm = 25.0;  // two consumer crystals, relative offset
  cfg.sro_ppm = 25.0;
  cfg.phase_noise_linewidth_hz = 150.0;
  cfg.adc_bits = 8;
  MultipathConfig mp;
  mp.num_taps = 1;   // near-field: flat
  mp.delay_spread_s = 5e-9;
  mp.k_factor = 12.0;  // strong LOS
  cfg.multipath = mp;
  return cfg;
}

std::optional<ImpairmentConfig> make_impairment_preset(ImpairmentPreset preset,
                                                       Real sample_rate_hz,
                                                       Real carrier_hz) {
  switch (preset) {
    case ImpairmentPreset::kNone:
      return std::nullopt;
    case ImpairmentPreset::kImplantTissue:
      return implant_tissue_preset(sample_rate_hz, carrier_hz);
    case ImpairmentPreset::kWardMobility:
      return ward_mobility_preset(sample_rate_hz, carrier_hz);
    case ImpairmentPreset::kCardToCard:
      return card_to_card_preset(sample_rate_hz, carrier_hz);
  }
  return std::nullopt;
}

}  // namespace itb::channel
