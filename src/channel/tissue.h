// Biological-tissue propagation for the implant experiments (paper §5.1/5.2).
//
// The paper evaluates the neural-implant antenna inside pork muscle (whose
// dielectric constants at 2.4 GHz match grey matter, citing Gabriel et al.
// 1996) and the contact-lens antenna immersed in saline. We model a lossy
// dielectric slab: from relative permittivity eps_r and conductivity sigma
// we derive the attenuation constant alpha and a per-millimetre loss, plus
// an interface (reflection) loss at the air boundary.
#pragma once

#include "dsp/types.h"

namespace itb::channel {

using itb::dsp::Real;

struct TissueProperties {
  Real relative_permittivity;  ///< eps' at 2.4 GHz
  Real conductivity_s_per_m;   ///< sigma at 2.4 GHz
};

/// Muscle at 2.45 GHz (Gabriel et al. 1996 dispersion data).
TissueProperties muscle_2g4();

/// Physiological saline / contact-lens solution at 2.45 GHz.
TissueProperties saline_2g4();

/// Grey matter at 2.45 GHz (close to muscle; the paper's rationale for the
/// pork-chop substitute).
TissueProperties grey_matter_2g4();

/// Attenuation constant alpha (Np/m) of a plane wave in the material.
Real attenuation_constant_np_per_m(const TissueProperties& t, Real freq_hz);

/// One-way propagation loss (dB) through `depth_m` of tissue.
Real tissue_loss_db(const TissueProperties& t, Real freq_hz, Real depth_m);

/// Power reflection loss (dB) crossing the air/tissue interface once
/// (normal incidence, impedance mismatch).
Real interface_loss_db(const TissueProperties& t, Real freq_hz);

/// Total extra loss for a signal entering the tissue, reaching an implant at
/// `depth_m`, and returning out (used for backscatter round trips when both
/// directions cross the tissue).
Real round_trip_implant_loss_db(const TissueProperties& t, Real freq_hz,
                                Real depth_m);

}  // namespace itb::channel
