// Backscatter link-budget calculator.
//
// RSSI of a backscattered packet at the receiver:
//   P_rx = P_tx + G_tx + G_tag - PL(d1) - L_bs - L_extra(tag) - PL(d2) + G_rx
// where L_bs is the tag's modulation conversion loss (measured from the
// simulated SSB waveform: fundamental-harmonic share of the switching
// waveform plus |Gamma| < 1), and L_extra folds in antenna efficiency,
// tissue, immersion, etc. PER mapping uses DQPSK/DSSS closed forms, with a
// Monte-Carlo cross-check in tests.
#pragma once

#include "channel/antenna.h"
#include "channel/pathloss.h"
#include "channel/tissue.h"
#include "wifi/rates.h"

namespace itb::channel {

using itb::dsp::Real;

struct BackscatterLinkConfig {
  Real ble_tx_power_dbm = 0.0;
  Antenna ble_antenna = monopole_2dbi();
  Antenna tag_antenna = monopole_2dbi();
  Antenna rx_antenna = monopole_2dbi();
  LogDistanceModel pathloss{};
  Real ble_tag_distance_m = 0.3048;  ///< 1 ft default
  /// Conversion loss of the tag's single-sideband modulator; the default is
  /// the value measured from the simulated waveform (see backscatter tests).
  Real backscatter_conversion_loss_db = 6.2;
  /// Additional one-way loss between tag antenna and free space on the
  /// *backscatter* side (tissue, immersion); applied twice (in + out).
  Real tag_medium_loss_db = 0.0;
  Real rx_noise_figure_db = 6.0;
  Real rx_bandwidth_hz = 22e6;
};

/// Sentinel RSSI/SNR reported for a dead link: finite (so downstream
/// arithmetic stays well-defined) but far below any decodable level.
inline constexpr Real kLinkDownDb = -300.0;

struct LinkSample {
  Real rssi_dbm;
  Real snr_db;
  Real incident_at_tag_dbm;
  /// True when the budget inputs were degenerate (non-positive/NaN
  /// distance, NaN losses — e.g. a detuned pathloss model) and the sample
  /// carries the kLinkDownDb sentinel instead of silently propagating
  /// NaN into reservation math.
  bool link_down = false;
};

/// Computes the received backscatter RSSI for a tag->receiver distance.
/// Degenerate inputs yield link_down = true with kLinkDownDb fields, never
/// NaN/inf.
LinkSample backscatter_rssi(const BackscatterLinkConfig& cfg,
                            Real tag_rx_distance_m);

/// Theoretical BER for DBPSK / DQPSK over AWGN at the given Eb/N0 (dB).
Real ber_dbpsk(Real ebn0_db);
Real ber_dqpsk(Real ebn0_db);

/// SNR (dB, in the 22 MHz channel) -> packet error rate for an 802.11b
/// frame of `psdu_bytes`, including the DSSS processing gain at 1/2 Mbps.
/// A NaN or link-down SNR maps to PER 1 (the link_down outcome), never NaN.
Real per_80211b(itb::wifi::DsssRate rate, Real snr_db, std::size_t psdu_bytes);

/// Same mapping for an 802.15.4 O-QPSK frame at 250 kbps, taking the SNR in
/// the same 22 MHz reference bandwidth so it composes with the backscatter
/// budget above. The 32-chip spreading plus the narrow channel make this
/// the most SNR-robust rung of the rate-fallback ladder (~9 dB below
/// 1 Mbps 802.11b at equal channel SNR).
Real per_802154(Real snr_db, std::size_t psdu_bytes);

/// Direct (non-backscatter) link RSSI, for the plain Wi-Fi/BLE legs.
Real direct_rssi_dbm(Real tx_power_dbm, Real tx_gain_dbi, Real rx_gain_dbi,
                     const LogDistanceModel& model, Real distance_m);

}  // namespace itb::channel
