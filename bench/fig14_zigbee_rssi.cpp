// Fig. 14 — CDF of ZigBee RSSI for backscatter-generated 802.15.4 packets.
//
// Paper setup: TI CC2650 advertising on BLE channel 38, tag 2 ft away
// synthesizing ZigBee channel 14 (2.420 GHz, a -6 MHz shift), TI CC2531
// receiver at five locations up to 15 ft.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/awgn.h"
#include "channel/fading.h"
#include "channel/link.h"

int main() {
  using namespace itb;
  using channel::kFeetToMeters;

  bench::header("Fig.14", "CDF of backscatter-generated ZigBee RSSI",
                "RSSI spans roughly -90 to -55 dBm across locations up to "
                "15 ft; all locations decodable thanks to ZigBee's sensitivity");

  channel::BackscatterLinkConfig link;
  link.ble_tx_power_dbm = 0.0;                   // CC2650 default
  link.ble_tag_distance_m = 2.0 * kFeetToMeters; // paper geometry
  link.rx_bandwidth_hz = 2e6;                    // ZigBee channel
  link.rx_noise_figure_db = 8.0;

  // Five locations up to 15 ft; each location draws log-normal shadowing
  // once and two-hop Rician fading per packet (the variation the paper's
  // CDF aggregates).
  const std::vector<double> locations_ft = {3.0, 6.0, 9.0, 12.0, 15.0};
  dsp::Xoshiro256 rng(14);
  const channel::ShadowingModel shadow{.sigma_db = 4.0};
  const channel::RicianFading hop{.k_factor = 4.0};
  std::vector<double> rssi;
  for (const double d_ft : locations_ft) {
    const double shadow_db = shadow.sample_db(rng);
    for (int pkt = 0; pkt < 40; ++pkt) {
      const auto s = channel::backscatter_rssi(link, d_ft * kFeetToMeters);
      rssi.push_back(s.rssi_dbm + shadow_db +
                     channel::backscatter_fade_db(hop, hop, rng));
    }
  }
  std::sort(rssi.begin(), rssi.end());

  std::printf("rssi_dbm,cdf\n");
  for (double level = -100.0; level <= -45.0; level += 2.5) {
    const auto it = std::upper_bound(rssi.begin(), rssi.end(), level);
    std::printf("%.1f,%.3f\n", level,
                static_cast<double>(it - rssi.begin()) /
                    static_cast<double>(rssi.size()));
  }
  std::printf("# measured: median RSSI %.1f dBm; ZigBee sensitivity ~ -97 dBm "
              "(250 kbps O-QPSK) so all locations decode\n",
              rssi[rssi.size() / 2]);
  return 0;
}
