// Fig. 6 — Single-sideband vs double-sideband backscatter spectrum.
//
// The tag backscatters a 2 Mbps 802.11b frame at a +22 MHz shift from the
// single tone. Prior (double-sideband) modulation shows a mirror copy at
// -22 MHz; the paper's single-sideband design suppresses it.
//
// Also prints the ablation the DESIGN.md calls out: ideal (IC) switch states
// vs. the FPGA prototype's discrete loads (3 pF / open / 1 pF / 2 nH).
#include <cstdio>

#include "backscatter/wifi_synth.h"
#include "bench_util.h"
#include "dsp/spectrum.h"

int main() {
  using namespace itb;

  bench::header(
      "Fig.6", "SSB vs DSB spectrum of 2 Mbps backscattered Wi-Fi, shift +22 MHz",
      "DSB shows a mirror copy at -22 MHz within ~1 dB of the wanted sideband; "
      "SSB suppresses the mirror by >15 dB");

  backscatter::WifiSynthConfig cfg;
  cfg.rate = wifi::DsssRate::k2Mbps;
  cfg.shift_hz = 22e6;
  cfg.sample_rate_hz = 176e6;  // 8 samples per shift period, 16 per chip

  const phy::Bytes psdu(31, 0x5A);
  const auto ssb = backscatter::synthesize_wifi(psdu, cfg);
  const auto dsb = backscatter::synthesize_wifi_dsb(psdu, cfg);

  dsp::WelchConfig wcfg;
  wcfg.segment_size = 1024;
  wcfg.overlap = 512;
  dsp::Psd ssb_psd = dsp::welch_psd(ssb.waveform, cfg.sample_rate_hz, wcfg);
  dsp::Psd dsb_psd = dsp::welch_psd(dsb.waveform, cfg.sample_rate_hz, wcfg);
  dsp::normalize_peak(ssb_psd);
  dsp::normalize_peak(dsb_psd);

  std::printf("freq_mhz,ssb_db,dsb_db\n");
  for (std::size_t i = 0; i < ssb_psd.freq_hz.size(); i += 4) {
    const double f = ssb_psd.freq_hz[i] / 1e6;
    if (f < -30.0 || f > 30.0) continue;
    std::printf("%.2f,%.2f,%.2f\n", f, ssb_psd.power_db[i], dsb_psd.power_db[i]);
  }

  const double ssb_rej = dsp::sideband_rejection_db(ssb_psd, 11e6, 33e6, -33e6, -11e6);
  const double dsb_rej = dsp::sideband_rejection_db(dsb_psd, 11e6, 33e6, -33e6, -11e6);
  std::printf("# measured: SSB image rejection %.1f dB, DSB %.1f dB\n", ssb_rej,
              dsb_rej);

  // Ablation: FPGA discrete loads vs ideal IC states.
  backscatter::WifiSynthConfig fpga = cfg;
  fpga.network = backscatter::paper_network();
  const auto fpga_ssb = backscatter::synthesize_wifi(psdu, fpga);
  dsp::Psd fpga_psd = dsp::welch_psd(fpga_ssb.waveform, cfg.sample_rate_hz, wcfg);
  const double fpga_rej =
      dsp::sideband_rejection_db(fpga_psd, 11e6, 33e6, -33e6, -11e6);
  std::printf(
      "# ablation: image rejection with ideal IC states %.1f dB vs FPGA "
      "discrete loads %.1f dB\n",
      ssb_rej, fpga_rej);
  return 0;
}
