// Fig. 9 — Creating single-tone transmissions on commodity Bluetooth
// devices (TI CC2650, Galaxy S5, Moto360 2nd gen).
//
// For each device profile we modulate (a) an advertisement with random
// application data and (b) the crafted single-tone payload from §2.2, apply
// the device's analog impairments, and report the payload-section spectra.
#include <cstdio>

#include "ble/device_profile.h"
#include "ble/gfsk.h"
#include "ble/single_tone.h"
#include "bench_util.h"
#include "dsp/spectrum.h"

int main() {
  using namespace itb;

  bench::header("Fig.9",
                "random BLE vs interscatter single-tone spectra on three devices",
                "random data spreads ~1 MHz wide; crafted payload collapses to a "
                "single tone at +250 kHz on every device");

  ble::GfskModulator mod;
  const double fs = mod.config().sample_rate_hz;
  dsp::Xoshiro256 rng(2016);

  const auto payload_window = [&](const ble::AdvPacket& pkt) {
    const auto all = mod.modulate(pkt.air_bits);
    const std::size_t sps = mod.samples_per_symbol();
    return dsp::CVec(all.begin() + pkt.payload_start_bit * sps,
                     all.begin() + pkt.payload_end_bit * sps);
  };

  for (const auto& profile :
       {ble::ti_cc2650(), ble::galaxy_s5(), ble::moto360()}) {
    // Random payload packet.
    ble::AdvPacketConfig rnd;
    for (int i = 0; i < 31; ++i) {
      rnd.payload.push_back(static_cast<std::uint8_t>(rng.uniform_int(256)));
    }
    const auto rnd_pkt = ble::build_adv_packet(rnd, 38);

    // Single-tone packet.
    ble::SingleToneSpec spec;
    spec.channel_index = 38;
    const auto tone = ble::make_single_tone_packet(spec);

    const auto impaired = [&](const ble::AdvPacket& pkt) {
      return ble::apply_impairments(payload_window(pkt), profile, fs, rng);
    };

    const auto rnd_psd = dsp::welch_psd(impaired(rnd_pkt), fs);
    const auto tone_psd = dsp::welch_psd(impaired(tone.packet), fs);

    std::printf("device,%s\n", profile.name.c_str());
    std::printf(
        "  random:  occupied_bw_khz=%.0f  peak_khz=%+.0f\n",
        dsp::occupied_bandwidth_hz(rnd_psd, 0.99) / 1e3,
        dsp::peak_frequency_hz(rnd_psd) / 1e3);
    std::printf(
        "  tone:    occupied_bw_khz=%.0f  peak_khz=%+.0f  (cfo %+0.0f kHz)\n",
        dsp::occupied_bandwidth_hz(tone_psd, 0.99) / 1e3,
        dsp::peak_frequency_hz(tone_psd) / 1e3, profile.cfo_hz / 1e3);
  }
  bench::note(
      "all three devices collapse to a narrow tone near +250 kHz (plus each "
      "device's CFO), reproducing Fig. 9a-c");
  return 0;
}
