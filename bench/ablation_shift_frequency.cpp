// Ablation — choice of the backscatter frequency shift (paper §3: "We
// implement a 35.75 MHz shift which we found to be optimal for rejecting
// the interference from the Bluetooth RF source").
//
// The Wi-Fi receiver sees the weak backscattered frame *plus* the strong
// unmodulated Bluetooth tone offset by -shift. A small shift leaves the
// tone inside (or at the skirt of) the 22 MHz Wi-Fi channel where even the
// receiver's channel-select filter cannot remove it; pushing the shift past
// the channel edge buys tens of dB of rejection.
#include <cstdio>

#include "backscatter/wifi_synth.h"
#include "bench_util.h"
#include "channel/awgn.h"
#include "dsp/fir.h"
#include "dsp/mixer.h"
#include "dsp/units.h"
#include "wifi/dsss_rx.h"

int main() {
  using namespace itb;

  bench::header("Ablation.shift",
                "Wi-Fi decode success vs backscatter shift with the BLE tone "
                "40 dB above the backscattered signal",
                "shifts below ~16 MHz leave the tone inside the 22 MHz channel "
                "and kill decoding; 35.75 MHz rejects it");

  const phy::Bytes psdu(31, 0xC3);
  dsp::Xoshiro256 rng(358);

  std::printf("shift_mhz,tone_in_band_db,decoded\n");
  for (const double shift_mhz : {6.0, 11.0, 16.0, 22.0, 28.0, 35.75}) {
    backscatter::WifiSynthConfig cfg;
    cfg.rate = wifi::DsssRate::k2Mbps;
    cfg.shift_hz = shift_mhz * 1e6;
    cfg.sample_rate_hz = 143e6;
    const auto synth = backscatter::synthesize_wifi(psdu, cfg);

    // Receiver-side composite: backscatter signal + BLE tone at 40 dB more
    // power (the direct path dwarfs the reflected one).
    const double tone_amp = dsp::db_to_amplitude(40.0);
    dsp::CVec composite = synth.waveform;
    dsp::Nco tone(0.0, cfg.sample_rate_hz);  // tone sits at the BLE carrier
    for (auto& v : composite) v += tone_amp * tone.next();

    // Down-convert to the Wi-Fi channel centre and apply the receiver's
    // 22 MHz channel-select filter.
    dsp::CVec shifted =
        channel::apply_cfo(composite, -cfg.shift_hz, cfg.sample_rate_hz);
    const dsp::RVec lpf = dsp::design_lowpass(127, 11e6 / 143e6);
    const dsp::CVec filtered = dsp::filter_same(shifted, lpf);

    // Residual tone power inside the channel, relative to the signal.
    // (The tone now sits at -shift; measure total in-band power vs clean.)
    dsp::CVec clean =
        channel::apply_cfo(synth.waveform, -cfg.shift_hz, cfg.sample_rate_hz);
    const dsp::CVec clean_f = dsp::filter_same(clean, lpf);
    const double tone_in_band = 10.0 * std::log10(std::max(
        dsp::mean_power(filtered) / std::max(dsp::mean_power(clean_f), 1e-30) -
            1.0,
        1e-10));

    // Chip matched filter + decimate, then decode.
    dsp::CVec chips(filtered.size() / 13);
    for (std::size_t i = 0; i < chips.size(); ++i) {
      dsp::Complex acc{0, 0};
      for (std::size_t k = 0; k < 13; ++k) acc += filtered[i * 13 + k];
      chips[i] = acc / 13.0;
    }
    const auto noisy = channel::add_noise_snr(chips, 30.0, rng);
    const wifi::DsssReceiver rx;
    const auto r = rx.receive(noisy);
    const bool ok = r.has_value() && r->header_ok && r->psdu == psdu;

    std::printf("%.2f,%.1f,%s\n", shift_mhz, tone_in_band, ok ? "yes" : "no");
  }
  bench::note(
      "the 143 MHz clocking makes 35.75 MHz exactly 1/4 of the PLL clock, so "
      "the four phases are glitch-free (paper §3) — and the tone lands "
      "comfortably outside the 22 MHz channel");
  return 0;
}
