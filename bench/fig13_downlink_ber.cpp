// Fig. 13 — BER of the OFDM-AM downlink (802.11g transmitter -> tag's
// passive peak detector) vs distance.
//
// Paper setup: 36 Mbps 802.11g frames carrying the §2.4 AM encoding, an
// off-the-shelf peak detector with -32 dBm sensitivity at 160 kbps. The
// paper measures BER < 0.01 out to 18 ft.
#include <cstdio>

#include "bench_util.h"
#include "channel/pathloss.h"
#include "core/downlink.h"
#include "dsp/rng.h"

int main() {
  using namespace itb;
  using channel::kFeetToMeters;

  bench::header("Fig.13", "downlink BER vs Wi-Fi TX to peak-detector distance",
                "BER < 0.01 out to ~18 ft, then rises sharply once the "
                "received power crosses the -32 dBm detector sensitivity");

  // 20 dBm AP-class transmitter + 2 dBi antennas, as in the paper's office
  // experiments.
  std::printf("distance_ft,rx_power_dbm,ber\n");
  dsp::Xoshiro256 rng(1337);
  for (double d_ft = 2.0; d_ft <= 26.0; d_ft += 2.0) {
    core::DownlinkScenario s;
    s.wifi_tx_power_dbm = 20.0 + 2.0;  // TX power + antenna gain
    s.distance_m = d_ft * kFeetToMeters;
    s.seed = 1000 + static_cast<std::uint64_t>(d_ft);

    // Average BER over several frames of random message bits.
    double ber_acc = 0.0;
    double rx_dbm = 0.0;
    constexpr int kFrames = 5;
    for (int f = 0; f < kFrames; ++f) {
      phy::Bits msg(64);
      for (auto& b : msg) b = rng.bit();
      s.seed += 17;
      const auto r = core::simulate_downlink(s, msg);
      ber_acc += r.ber;
      rx_dbm = r.rx_power_dbm;
    }
    std::printf("%.0f,%.1f,%.4f\n", d_ft, rx_dbm, ber_acc / kFrames);
  }
  bench::note(
      "the knee sits where rx_power crosses the -32 dBm sensitivity, "
      "reproducing the paper's ~18 ft usable downlink radius");
  return 0;
}
