// §3 table — IC power breakdown of the interscatter ASIC (TSMC 65 nm LP):
// frequency synthesizer 9.69 uW + baseband 8.51 uW + modulator 9.79 uW
// = 28 uW while generating 2 Mbps 802.11b. Plus the scaling sweeps and the
// active-radio comparison the paper's discussion leans on.
#include <cstdio>

#include "backscatter/ic_power.h"
#include "bench_util.h"

int main() {
  using namespace itb;

  bench::header("Tab.power", "IC power breakdown and scaling",
                "synth 9.69 uW + baseband 8.51 uW + modulator 9.79 uW = 28 uW "
                "at 2 Mbps; 3-4 orders of magnitude below active radios");

  const backscatter::IcPowerModel model;

  std::printf("rate,synth_uw,baseband_uw,modulator_uw,total_uw,energy_pj_per_bit\n");
  for (const auto rate : {wifi::DsssRate::k1Mbps, wifi::DsssRate::k2Mbps,
                          wifi::DsssRate::k5_5Mbps, wifi::DsssRate::k11Mbps}) {
    const auto p = model.active_power(rate, 35.75e6);
    std::printf("%s,%.2f,%.2f,%.2f,%.2f,%.1f\n",
                std::string(wifi::rate_name(rate)).c_str(), p.synthesizer_uw,
                p.baseband_uw, p.modulator_uw, p.total_uw(),
                model.energy_per_bit_pj(rate, 35.75e6));
  }

  bench::note("duty-cycling (2 Mbps): average power vs airtime fraction");
  for (const double duty : {1.0, 0.1, 0.01, 0.001}) {
    std::printf("#   duty %.3f -> %.3f uW\n", duty,
                model.average_power_uw(wifi::DsssRate::k2Mbps, 35.75e6, duty));
  }

  bench::note("comparison with conventional radios (TX power):");
  for (const auto& ref : backscatter::active_radio_references()) {
    std::printf("#   %-42s %10.1f uW\n", ref.name.c_str(), ref.tx_power_uw);
  }
  return 0;
}
