// Fig. 15 — Wi-Fi RSSI with the contact-lens antenna prototype.
//
// Paper setup: 1 cm loop antenna encapsulated in PDMS, immersed in contact
// lens solution; TI Bluetooth transmitter 12 inches away; Intel 5300
// receiver swept 5-40 inches; 10 and 20 dBm BLE power; 2 Mbps packets.
#include <cstdio>

#include "bench_util.h"
#include "channel/link.h"
#include "channel/tissue.h"
#include "core/interscatter.h"

int main() {
  using namespace itb;
  using channel::kInchesToMeters;

  bench::header("Fig.15", "contact-lens prototype: Wi-Fi RSSI vs distance",
                "ranges of more than 24 inches; RSSI between about -72 and "
                "-86 dBm over 5-40 in; higher BLE power buys ~10 dB");

  // Saline immersion loss on top of the small-loop antenna model: the tag's
  // medium loss applies on both backscatter legs.
  const double saline_loss_db =
      channel::tissue_loss_db(channel::saline_2g4(), 2.45e9, 0.002) +
      channel::interface_loss_db(channel::saline_2g4(), 2.45e9);

  std::printf("distance_in,rssi_dbm_10dBm,rssi_dbm_20dBm\n");
  for (double d_in = 5.0; d_in <= 40.0; d_in += 2.5) {
    std::printf("%.1f", d_in);
    for (const double p : {10.0, 20.0}) {
      core::UplinkScenario s;
      s.ble_tx_power_dbm = p;
      s.ble_tag_distance_m = 12.0 * kInchesToMeters;
      s.tag_rx_distance_m = d_in * kInchesToMeters;
      s.tag_antenna = channel::contact_lens_loop();
      s.tag_medium_loss_db = saline_loss_db;
      // Inches-scale indoor geometry is multipath-rich; the paper's curves
      // fall more slowly than free space (effective exponent ~1.8).
      s.pathloss_exponent = 1.8;
      const auto b = core::InterscatterSystem(s).budget(31);
      std::printf(",%.1f", b.rssi_dbm);
    }
    std::printf("\n");
  }

  // Usable range (2 Mbps needs roughly > -85 dBm on the Intel 5300).
  for (const double p : {10.0, 20.0}) {
    double max_in = 0.0;
    for (double d_in = 2.0; d_in <= 60.0; d_in += 1.0) {
      core::UplinkScenario s;
      s.ble_tx_power_dbm = p;
      s.ble_tag_distance_m = 12.0 * kInchesToMeters;
      s.tag_rx_distance_m = d_in * kInchesToMeters;
      s.tag_antenna = channel::contact_lens_loop();
      s.tag_medium_loss_db = saline_loss_db;
      s.pathloss_exponent = 1.8;
      if (core::InterscatterSystem(s).budget(31).rssi_dbm > -85.0) max_in = d_in;
    }
    std::printf("# measured: usable range at %2.0f dBm = %.0f inches\n", p, max_in);
  }
  return 0;
}
