// Network resilience benchmark: delivery ratio and goodput vs fault
// intensity, with and without the link-layer ARQ + adaptive-fallback
// machinery. Feeds the BENCH_net_resilience.json trajectory; the seed
// baseline lives in bench/baselines/seed_net_resilience.json.
//
// Fault intensity `x` scales a FaultProfile linearly: each AP suffers
// ~x outages, each channel ~2x interference bursts (20 dB), each tag
// ~0.2x harvest brownouts, plus x fleet-wide SNR slumps over the run.
// Schedules are drawn from counter-based substreams, so every point is
// bit-reproducible (same digest at any thread count).
//
// Usage:
//   net_resilience            full sweep at 5000 tags, human-readable table
//   net_resilience --quick    small fleet, one intensity (CI smoke)
//   net_resilience --json     machine-readable JSON records
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "sim/faults.h"
#include "sim/network.h"

namespace {

struct Point {
  double intensity;
  bool arq;
  double delivery_ratio;
  double goodput_kbps;
  unsigned long long delivered;
  unsigned long long dropped;
  unsigned long long retransmissions;
  double energy_nj_per_byte;
  double run_ms;
  unsigned long long digest;
};

itb::sim::NetworkConfig fleet_config(std::size_t tags) {
  using namespace itb;
  sim::NetworkConfig cfg;
  // Dense grid with an LNA-assisted wake receiver: the fault-free links
  // are healthy, so the sweep isolates fault-driven loss (the default
  // -32 dBm peak detector would make geometry the bottleneck instead).
  cfg.topology.kind = sim::TopologyKind::kGrid;
  cfg.topology.num_tags = tags;
  cfg.topology.extent_m = tags >= 2000 ? 30.0 : 10.0;
  cfg.topology.num_helpers = tags >= 2000 ? 324 : 36;
  cfg.topology.num_aps = tags >= 2000 ? 16 : 4;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 10;
  cfg.ambient_busy_probability = 0.05;
  cfg.tag_medium_loss_db = 0.0;
  cfg.detector_sensitivity_dbm = -60.0;
  cfg.seed = 2026;
  cfg.keep_per_tag = true;  // digest covers per-tag resilience counters
  return cfg;
}

Point measure(std::size_t tags, double intensity, bool arq) {
  using namespace itb;
  sim::NetworkConfig cfg = fleet_config(tags);

  if (intensity > 0.0) {
    sim::FaultProfile profile;
    // Horizon ~= rounds * slots/group * slot time (slot 20160 us at the
    // default 31-byte payload; tags are split across 3 channels).
    profile.horizon_us = static_cast<double>(cfg.rounds) *
                         static_cast<double>((tags + 2) / 3) * 20160.0;
    profile.outages_per_ap = intensity;
    profile.outage_mean_us = 0.1 * profile.horizon_us;
    profile.bursts_per_channel = 2.0 * intensity;
    profile.burst_mean_us = 0.05 * profile.horizon_us;
    profile.burst_rise_db = 20.0;
    profile.brownouts_per_tag = 0.2 * intensity;
    profile.brownout_mean_us = 0.02 * profile.horizon_us;
    profile.snr_slumps = intensity;
    profile.slump_mean_us = 0.05 * profile.horizon_us;
    profile.slump_depth_db = 6.0;
    cfg.faults = sim::generate_fault_schedule(
        profile, cfg.topology.num_aps, cfg.wifi_channels,
        cfg.topology.num_tags, cfg.seed ^ 0xFA17u);
  }

  if (arq) {
    cfg.enable_arq = true;
    cfg.arq.max_attempts = 8;
    cfg.arq.retry_budget = 16;
    cfg.arq.backoff_base_slots = 0;
    cfg.fallback.enable_rate_fallback = true;
    cfg.fallback.enable_zigbee_fallback = true;
    cfg.fallback.down_after_failures = 2;
    cfg.ap_failover = true;
  }

  const sim::NetworkCoordinator net(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const sim::NetworkStats s = net.run();
  const double run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  return {intensity,
          arq,
          s.delivery_ratio,
          s.aggregate_goodput_kbps,
          s.messages_delivered,
          s.messages_dropped,
          s.retransmissions,
          s.energy_per_delivered_byte_nj,
          run_ms,
          s.digest()};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const std::size_t tags = quick ? 500 : 5000;
  const std::vector<double> intensities =
      quick ? std::vector<double>{0.0, 1.0}
            : std::vector<double>{0.0, 0.5, 1.0, 2.0, 4.0};

  std::vector<Point> points;
  for (const double x : intensities) {
    points.push_back(measure(tags, x, /*arq=*/false));
    points.push_back(measure(tags, x, /*arq=*/true));
  }

  if (json) {
    std::printf("{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::printf(
          "    {\"name\": \"BM_NetResilience/%zu/x:%.1f/%s\", "
          "\"tags\": %zu, \"intensity\": %.1f, \"arq\": %s, "
          "\"delivery_ratio\": %.4f, \"goodput_kbps\": %.3f, "
          "\"delivered\": %llu, \"dropped\": %llu, "
          "\"retransmissions\": %llu, \"energy_nj_per_byte\": %.3f, "
          "\"run_ms\": %.3f, \"digest\": \"%016llx\"}%s\n",
          tags, p.intensity, p.arq ? "arq" : "plain", tags, p.intensity,
          p.arq ? "true" : "false", p.delivery_ratio, p.goodput_kbps,
          p.delivered, p.dropped, p.retransmissions, p.energy_nj_per_byte,
          p.run_ms, p.digest, i + 1 < points.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  itb::bench::header(
      "net_resilience",
      "delivery ratio + goodput vs fault intensity, no-ARQ vs ARQ+fallback",
      "resilient fleets hold >= 95% delivery under faults that cost the "
      "bare TDMA schedule 10-30% (acceptance test pins the x=1 ward case)");
  std::printf("%6s %6s %10s %12s %10s %9s %8s %10s %9s  %s\n", "x", "arq",
              "delivery", "agg_kbps", "delivered", "dropped", "retx",
              "nJ/byte", "wall_ms", "digest");
  for (const Point& p : points) {
    std::printf(
        "%6.1f %6s %10.4f %12.3f %10llu %9llu %8llu %10.3f %9.1f  %016llx\n",
        p.intensity, p.arq ? "yes" : "no", p.delivery_ratio, p.goodput_kbps,
        p.delivered, p.dropped, p.retransmissions, p.energy_nj_per_byte,
        p.run_ms, p.digest);
  }
  return 0;
}
