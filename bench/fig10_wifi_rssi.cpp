// Fig. 10 — Wi-Fi RSSI of backscattered 2 Mbps packets vs distance between
// the tag and the Wi-Fi receiver, for BLE TX powers {0, 4, 10, 20} dBm and
// tag<->BLE separations of 1 ft (a) and 3 ft (b).
//
// Geometry per the paper: the receiver moves perpendicular from the midpoint
// of the BLE-transmitter <-> tag segment.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/link.h"
#include "core/interscatter.h"

int main() {
  using namespace itb;
  using channel::kFeetToMeters;

  bench::header(
      "Fig.10",
      "Wi-Fi RSSI vs tag-receiver distance at four BLE TX powers, 1 ft / 3 ft",
      "20 dBm reaches ~90 ft; RSSI falls with distance and with larger "
      "BLE-tag separation; 0 dBm usable to ~10-30 ft");

  const std::vector<double> powers_dbm = {0.0, 4.0, 10.0, 20.0};
  const std::vector<double> distances_ft = {1,  5,  10, 20, 30, 40,
                                            50, 60, 70, 80, 90};

  for (const double sep_ft : {1.0, 3.0}) {
    std::printf("subfigure,%s\n", sep_ft == 1.0 ? "a (1 ft)" : "b (3 ft)");
    std::printf("distance_ft");
    for (double p : powers_dbm) std::printf(",rssi_dbm_%gdBm", p);
    std::printf("\n");

    for (const double d_ft : distances_ft) {
      std::printf("%.0f", d_ft);
      for (const double p : powers_dbm) {
        core::UplinkScenario s;
        s.ble_tx_power_dbm = p;
        s.ble_tag_distance_m = sep_ft * kFeetToMeters;
        // Perpendicular geometry from the midpoint.
        const double range_m = channel::perpendicular_range_m(
            s.ble_tag_distance_m, d_ft * kFeetToMeters);
        s.tag_rx_distance_m = range_m;
        const auto b = core::InterscatterSystem(s).budget(31);
        std::printf(",%.1f", b.rssi_dbm);
      }
      std::printf("\n");
    }
  }

  // Range summary: max distance where PER-usable RSSI (> -85 dBm) holds.
  bench::note("range at which RSSI stays above -85 dBm (2 Mbps usable):");
  for (const double p : powers_dbm) {
    double max_ft = 0.0;
    for (double d_ft = 1.0; d_ft <= 120.0; d_ft += 1.0) {
      core::UplinkScenario s;
      s.ble_tx_power_dbm = p;
      s.ble_tag_distance_m = 1.0 * kFeetToMeters;
      s.tag_rx_distance_m = channel::perpendicular_range_m(
          s.ble_tag_distance_m, d_ft * kFeetToMeters);
      if (core::InterscatterSystem(s).budget(31).rssi_dbm > -85.0) max_ft = d_ft;
    }
    std::printf("#   %2.0f dBm -> %.0f ft\n", p, max_ft);
  }
  return 0;
}
