// Network-simulator scale benchmark: how many tags (and polls) per second
// the discrete-event engine sustains at budget fidelity, single- and
// multi-threaded. Feeds the BENCH_net_scale.json trajectory; the seed
// baseline lives in bench/baselines/seed_net_scale.json.
//
// Usage:
//   net_scale            full sweep (to 1M tags), human-readable table
//   net_scale --quick    small sweep to 100k, one rep (CI smoke: seconds)
//   net_scale --json     machine-readable JSON records instead of the table
//   net_scale --prof     enable ProfZone wall-clock timing; prints the
//                        self/total zone table after the sweep
//   net_scale --trace-out <file.json>  rerun the largest point with trace
//                        capture and write Perfetto trace-event JSON
//   net_scale --metrics-out <file>     write that run's metrics snapshot
//                        (Prometheus text if the name ends in .prom)
//
// Points at and above 100k tags run with keep_per_tag=false: the streaming
// per-shard stats path, whose memory is O(shards), not O(tags). The three
// historical points (100/1000/5000) keep per-tag records so their digests
// stay comparable across the trajectory.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/capture.h"
#include "obs/prof.h"
#include "sim/network.h"

namespace {

/// Fleets at or past this size use the streaming stats path.
constexpr std::size_t kStreamingThreshold = 100000;

struct Point {
  std::size_t tags;
  std::size_t rounds;
  std::size_t threads;
  double build_ms;
  double run_ms;
  double tags_per_sec;
  double polls_per_sec;
  unsigned long long digest;
};

itb::sim::NetworkConfig make_config(std::size_t tags, std::size_t rounds,
                                    std::size_t threads) {
  using namespace itb;
  sim::NetworkConfig cfg;
  cfg.topology.kind = sim::TopologyKind::kHospitalWard;
  cfg.topology.num_tags = tags;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = std::max<std::size_t>(6, (tags + 3) / 16);
  cfg.detector_sensitivity_dbm = -49.0;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = rounds;
  cfg.seed = 2026;
  cfg.num_threads = threads;
  // digest covers per-tag state for the historical points; the big fleets
  // exercise the streaming aggregation instead.
  cfg.keep_per_tag = tags < kStreamingThreshold;
  return cfg;
}

Point measure(std::size_t tags, std::size_t rounds, std::size_t threads,
              std::size_t reps) {
  using namespace itb;
  const sim::NetworkConfig cfg = make_config(tags, rounds, threads);

  const auto b0 = std::chrono::steady_clock::now();
  const sim::NetworkCoordinator net(cfg);
  const double build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - b0)
                              .count();

  double best_ms = 1e300;
  unsigned long long digest = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const sim::NetworkStats s = net.run();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best_ms = std::min(best_ms, ms);
    digest = s.digest();
  }
  const double polls = static_cast<double>(tags * rounds);
  return {tags,
          rounds,
          threads,
          build_ms,
          best_ms,
          static_cast<double>(tags) / (best_ms / 1e3),
          polls / (best_ms / 1e3),
          digest};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  bool prof = false;
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--prof") == 0) prof = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }
  itb::obs::prof_enable(prof);

  const std::size_t reps = quick ? 1 : 5;
  std::vector<std::pair<std::size_t, std::size_t>> sweep;  // (tags, threads)
  if (quick) {
    // First three points match the seed baseline (by name), one rep each,
    // so tools/benchdiff can compare CI smoke output against
    // bench/baselines/seed_net_scale.json; 100k smokes the streaming path
    // and gates the spatial-hash build time.
    sweep = {{100, 1}, {1000, 1}, {5000, 1}, {100000, 1}};
  } else {
    sweep = {{100, 1},     {1000, 1},      {5000, 1}, {5000, 0 /* all hw */},
             {100000, 1},  {100000, 0},    {1000000, 0}};
  }

  std::vector<Point> points;
  points.reserve(sweep.size());
  for (const auto& [tags, threads] : sweep) {
    points.push_back(measure(tags, /*rounds=*/8, threads, reps));
  }

  // Optional observability artifacts: rerun the largest point once with
  // capture enabled (timings above stay capture-free). The per-shard trace
  // ring is kept small — the artifact shows the schedule's shape, not every
  // poll of a 100k fleet.
  if (trace_out != nullptr || metrics_out != nullptr) {
    using namespace itb;
    const auto& [tags, threads] = sweep.back();
    const sim::NetworkConfig cfg = make_config(tags, /*rounds=*/8, threads);
    obs::RunCapture capture;
    capture.collect_trace = trace_out != nullptr;
    capture.trace_events_per_shard = 128;
    (void)sim::NetworkCoordinator(cfg).run(&capture);
    if (trace_out != nullptr) {
      std::ofstream f(trace_out);
      capture.trace.write_perfetto_json(f);
    }
    if (metrics_out != nullptr) {
      std::ofstream f(metrics_out);
      const std::string name = metrics_out;
      if (name.size() >= 5 && name.rfind(".prom") == name.size() - 5) {
        capture.metrics.write_prometheus(f);
      } else {
        capture.metrics.write_json(f);
      }
    }
  }

  if (json) {
    std::printf("{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::printf(
          "    {\"name\": \"BM_NetScale/%zu/threads:%zu\", "
          "\"tags\": %zu, \"rounds\": %zu, \"build_ms\": %.3f, "
          "\"run_ms\": %.3f, \"tags_per_second\": %.1f, "
          "\"polls_per_second\": %.1f, \"digest\": \"%016llx\"}%s\n",
          p.tags, p.threads, p.tags, p.rounds, p.build_ms, p.run_ms,
          p.tags_per_sec, p.polls_per_sec, p.digest,
          i + 1 < points.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  itb::bench::header("net_scale",
                     "network simulator scale: tags simulated per second",
                     "budget-fidelity fleet sim must stay interactive to 1M "
                     "tags (build ~linear in tags via the spatial-hash grid)");
  std::printf("%8s %8s %8s %10s %10s %14s %14s  %s\n", "tags", "rounds",
              "threads", "build_ms", "run_ms", "tags/s", "polls/s", "digest");
  for (const Point& p : points) {
    std::printf("%8zu %8zu %8zu %10.2f %10.2f %14.0f %14.0f  %016llx\n",
                p.tags, p.rounds, p.threads, p.build_ms, p.run_ms,
                p.tags_per_sec, p.polls_per_sec, p.digest);
  }
  if (prof) {
    std::ostringstream table;
    itb::obs::prof_write_table(table, "sim.run");
    std::fputs(table.str().c_str(), stdout);
  }
  return 0;
}
