// Ablation — closed-form PER model vs waveform-level Monte Carlo.
//
// The range/PER figures (10, 11, 15, 16) use the closed-form DQPSK/CCK
// model for speed; this bench pins it against the real receive chain by
// decoding hundreds of noisy frames per SNR point at 2 and 11 Mbps.
#include <cstdio>

#include "bench_util.h"
#include "core/monte_carlo.h"

int main() {
  using namespace itb;

  bench::header("Ablation.per", "closed-form PER vs waveform Monte Carlo",
                "the two curves agree on waterfall position within ~1 dB at "
                "both 2 and 11 Mbps");

  const std::vector<double> grid = {-4, -2, 0, 2, 4, 6, 8, 10};
  for (const auto rate : {wifi::DsssRate::k2Mbps, wifi::DsssRate::k11Mbps}) {
    core::MonteCarloConfig cfg;
    cfg.rate = rate;
    cfg.psdu_bytes = rate == wifi::DsssRate::k2Mbps ? 31 : 77;
    cfg.trials_per_point = 60;
    const auto points = core::per_vs_snr(cfg, grid);
    std::printf("rate,%s\n", std::string(wifi::rate_name(rate)).c_str());
    std::printf("snr_db,per_monte_carlo,per_closed_form\n");
    for (const auto& p : points) {
      std::printf("%.1f,%.3f,%.3f\n", p.snr_db, p.per_monte_carlo,
                  p.per_closed_form);
    }
  }
  return 0;
}
