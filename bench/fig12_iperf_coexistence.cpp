// Fig. 12 — Efficacy of single-sideband backscatter: throughput of a
// concurrent iperf flow on Wi-Fi channel 6 while the tag backscatters
// {50, 650, 1000} packets/s.
//
// DSB's mirror copy lands on channel 6 and collides with the victim flow;
// SSB's packets live on channel 11 and leave the flow untouched.
// Extension series: DSB interference with the paper's §2.3.3 CTS-to-Self
// reservation enabled (collision-free by construction).
#include <cstdio>

#include "bench_util.h"
#include "mac/dcf.h"
#include "mac/reservation.h"

int main() {
  using namespace itb;

  bench::header("Fig.12",
                "iperf throughput vs backscatter rate: baseline / SSB / DSB",
                "baseline ~20 Mbps; SSB indistinguishable from baseline at all "
                "rates; DSB collapses as the rate grows (roughly halved at "
                "1000 pkt/s)");

  mac::DcfConfig cfg;
  const double duration_s = 4.0;

  const mac::DcfResult baseline =
      mac::simulate_dcf(cfg, mac::InterfererConfig{}, duration_s, 99);

  std::printf("backscatter_pkts_per_s,baseline_mbps,ssb_mbps,dsb_mbps,dsb_collision_rate\n");
  for (const double rate : {50.0, 650.0, 1000.0}) {
    mac::InterfererConfig ssb;
    ssb.packets_per_second = rate;
    ssb.on_victim_channel = false;

    mac::InterfererConfig dsb;
    dsb.packets_per_second = rate;
    dsb.on_victim_channel = true;

    const auto s = mac::simulate_dcf(cfg, ssb, duration_s, 7);
    const auto d = mac::simulate_dcf(cfg, dsb, duration_s, 7);
    std::printf("%.0f,%.1f,%.1f,%.1f,%.2f\n", rate, baseline.throughput_mbps,
                s.throughput_mbps, d.throughput_mbps, d.collision_rate);
  }

  // §2.3.3 extension: reservation schemes remove tag-side collisions.
  bench::note("reservation ablation (tag-side collision fraction, busy=0.3):");
  for (const auto [name, scheme] :
       {std::pair{"none", mac::ReservationScheme::kNone},
        std::pair{"cts-to-self", mac::ReservationScheme::kCtsToSelf},
        std::pair{"tag-rts", mac::ReservationScheme::kTagRts},
        std::pair{"data-as-rts", mac::ReservationScheme::kDataAsRts}}) {
    mac::ReservationConfig rc;
    rc.scheme = scheme;
    const auto r = mac::evaluate_reservation(rc, 5000, 11);
    std::printf("#   %-12s collisions=%.3f clean_tx/event=%.2f control_us=%.0f\n",
                name, r.collision_fraction, r.clean_transmissions_per_event,
                r.control_overhead_us);
  }
  return 0;
}
