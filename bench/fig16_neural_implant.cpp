// Fig. 16 — Wi-Fi RSSI with the implantable neural-recording antenna.
//
// Paper setup: 4 cm full-wavelength loop under 2 mm PDMS, inserted 1/16 inch
// (1.6 mm) under the surface of a 0.75 inch pork chop (muscle stands in for
// grey matter); TI Bluetooth source 3 inches from the meat; Intel 5300 on
// channel 11 swept 0-80 inches; 10 and 20 dBm BLE power.
#include <cstdio>

#include "bench_util.h"
#include "channel/link.h"
#include "channel/tissue.h"
#include "core/interscatter.h"

int main() {
  using namespace itb;
  using channel::kInchesToMeters;

  bench::header("Fig.16", "implanted neural antenna: Wi-Fi RSSI vs distance",
                "RSSI between about -72 and -90 dBm over 0-80 inches despite "
                "tissue attenuation; 10 dBm (phone-class) remains usable at "
                "tens of inches");

  // One-way loss for a 1.6 mm implant depth in muscle. The plane-wave slab
  // term underestimates an embedded antenna: the loop's near field also
  // couples into the lossy tissue (absorption the paper's in-vitro curves
  // include). The near-field term is calibrated to Fig. 16's measured RSSI.
  const auto muscle = channel::muscle_2g4();
  const double near_field_absorption_db = 11.0;
  const double tissue_db =
      channel::tissue_loss_db(muscle, 2.45e9, 1.6e-3) +
      channel::interface_loss_db(muscle, 2.45e9) + near_field_absorption_db;

  std::printf("distance_in,rssi_dbm_10dBm,rssi_dbm_20dBm\n");
  for (double d_in = 4.0; d_in <= 80.0; d_in += 4.0) {
    std::printf("%.0f", d_in);
    for (const double p : {10.0, 20.0}) {
      core::UplinkScenario s;
      s.ble_tx_power_dbm = p;
      s.ble_tag_distance_m = 3.0 * kInchesToMeters;
      s.tag_rx_distance_m = d_in * kInchesToMeters;
      s.tag_antenna = channel::neural_implant_loop();
      s.tag_medium_loss_db = tissue_db;
      s.pathloss_exponent = 1.8;  // inches-scale multipath-rich geometry
      const auto b = core::InterscatterSystem(s).budget(31);
      std::printf(",%.1f", b.rssi_dbm);
    }
    std::printf("\n");
  }

  std::printf("# tissue model: muscle eps'=%.1f sigma=%.2f S/m -> %.1f dB one-way"
              " (1.6 mm depth + interface)\n",
              muscle.relative_permittivity, muscle.conductivity_s_per_m,
              tissue_db);
  bench::note(
      "the paper's 1-2 cm custom-reader prototypes are beaten by orders of "
      "magnitude: phone-class 10 dBm Bluetooth reaches tens of inches");
  return 0;
}
