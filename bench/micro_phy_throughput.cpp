// Microbenchmarks (google-benchmark) of the PHY processing chains: useful
// for tracking the simulator's own performance and for the DESIGN.md claim
// that every experiment runs at waveform level in reasonable time.
#include <benchmark/benchmark.h>

#include "backscatter/ssb_modulator.h"
#include "backscatter/wifi_synth.h"
#include "ble/gfsk.h"
#include "ble/single_tone.h"
#include "channel/impairments.h"
#include "core/arena.h"
#include "core/monte_carlo.h"
#include "dsp/correlate.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/fir.h"
#include "dsp/rng.h"
#include "dsp/simd/dispatch.h"
#include "phy/batch.h"
#include "wifi/cck.h"
#include "wifi/convolutional.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"
#include "wifi/ofdm_rx.h"
#include "wifi/ofdm_tx.h"
#include "zigbee/frame.h"

namespace {

using namespace itb;

void BM_Fft1024(benchmark::State& state) {
  dsp::Xoshiro256 rng(1);
  dsp::CVec x(1024);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    dsp::CVec y = x;
    dsp::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024);

// The seed's per-call twiddle-recurrence FFT, kept verbatim as the baseline
// the planned engine is measured against (see bench/baselines/).
void seed_fft_inplace(dsp::CVec& x) {
  const std::size_t n = x.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const dsp::Real ang = -dsp::kTwoPi / static_cast<dsp::Real>(len);
    const dsp::Complex wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      dsp::Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const dsp::Complex u = x[i + k];
        const dsp::Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void BM_Fft1024Seed(benchmark::State& state) {
  dsp::Xoshiro256 rng(1);
  dsp::CVec x(1024);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    dsp::CVec y = x;
    seed_fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024Seed);

void BM_FftPlanned4096(benchmark::State& state) {
  dsp::Xoshiro256 rng(1);
  dsp::CVec x(4096);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const dsp::FftPlan& plan = dsp::fft_plan(4096);
  for (auto _ : state) {
    dsp::CVec y = x;
    plan.forward(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_FftPlanned4096);

void BM_CorrelateDirect1kPattern(benchmark::State& state) {
  dsp::Xoshiro256 rng(7);
  dsp::CVec x(16384), p(1024);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  for (auto& v : p) v = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    auto c = dsp::cross_correlate_direct(x, p);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_CorrelateDirect1kPattern);

void BM_CorrelateFft1kPattern(benchmark::State& state) {
  dsp::Xoshiro256 rng(7);
  dsp::CVec x(16384), p(1024);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  for (auto& v : p) v = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    auto c = dsp::cross_correlate_fft(x, p);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_CorrelateFft1kPattern);

void BM_ConvolveDirect129Taps(benchmark::State& state) {
  dsp::Xoshiro256 rng(8);
  dsp::CVec x(8192);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const dsp::RVec taps = dsp::design_lowpass(129, 0.2);
  for (auto _ : state) {
    auto y = dsp::convolve_direct(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConvolveDirect129Taps);

void BM_ConvolveOverlapSave129Taps(benchmark::State& state) {
  dsp::Xoshiro256 rng(8);
  dsp::CVec x(8192);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const dsp::RVec taps = dsp::design_lowpass(129, 0.2);
  for (auto _ : state) {
    auto y = dsp::convolve_fft(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConvolveOverlapSave129Taps);

void BM_PerVsSnrSweep(benchmark::State& state) {
  core::MonteCarloConfig cfg;
  cfg.trials_per_point = 8;
  cfg.psdu_bytes = 24;
  cfg.num_threads = static_cast<std::size_t>(state.range(0));
  const std::vector<double> grid{-2.0, 2.0, 6.0};
  for (auto _ : state) {
    auto pts = core::per_vs_snr(cfg, grid);
    benchmark::DoNotOptimize(pts.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.trials_per_point * grid.size()));
}
BENCHMARK(BM_PerVsSnrSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ---------------------------------------------------------------------------
// SIMD A/B pairs: Arg(0) forces the scalar kernel table, Arg(1) runs the
// detected dispatch level (AVX2/NEON when compiled in and present). Results
// are bit-identical by the dispatch-invariance contract; only throughput may
// differ. `set_simd_enabled` is restored after the timing loop so the pairs
// compose with the rest of the suite in either order.
// ---------------------------------------------------------------------------

class DispatchScope {
 public:
  explicit DispatchScope(bool enable) { dsp::simd::set_simd_enabled(enable); }
  ~DispatchScope() { dsp::simd::set_simd_enabled(true); }
};

void BM_Fft1024Dispatch(benchmark::State& state) {
  const DispatchScope scope(state.range(0) != 0);
  dsp::Xoshiro256 rng(1);
  dsp::CVec x(1024);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const dsp::FftPlan& plan = dsp::fft_plan(1024);
  for (auto _ : state) {
    dsp::CVec y = x;
    plan.forward(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024Dispatch)->Arg(0)->Arg(1);

void BM_CorrelateDirect1kDispatch(benchmark::State& state) {
  const DispatchScope scope(state.range(0) != 0);
  dsp::Xoshiro256 rng(7);
  dsp::CVec x(16384), p(1024);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  for (auto& v : p) v = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    auto c = dsp::cross_correlate_direct(x, p);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_CorrelateDirect1kDispatch)->Arg(0)->Arg(1);

void BM_DsssRx2MbpsDispatch(benchmark::State& state) {
  const DispatchScope scope(state.range(0) != 0);
  wifi::DsssTxConfig cfg;
  const wifi::DsssTransmitter tx(cfg);
  const auto frame = tx.modulate(phy::Bytes(31, 0xA5));
  const wifi::DsssReceiver rx;
  for (auto _ : state) {
    auto r = rx.receive(frame.baseband);
    benchmark::DoNotOptimize(&r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 31);
}
BENCHMARK(BM_DsssRx2MbpsDispatch)->Arg(0)->Arg(1);

void BM_ImpairmentChainDispatch(benchmark::State& state) {
  const DispatchScope scope(state.range(0) != 0);
  const channel::ImpairmentChain chain(
      channel::ward_mobility_preset(22e6));
  dsp::Xoshiro256 rng(11);
  dsp::CVec x(4096);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    auto y = chain.apply(x, 42, 0);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ImpairmentChainDispatch)->Arg(0)->Arg(1);

// Batched front-end pipeline on the arena: 8 lanes x 1024 samples through
// scale -> spectral mask -> IQ imbalance -> FFT -> IFFT -> quantize. The
// per-iteration ArenaFrame rewinds the slab, so steady state allocates
// nothing.
void BM_BatchPipeline8x1024(benchmark::State& state) {
  dsp::Xoshiro256 rng(21);
  std::vector<dsp::CVec> lanes;
  for (int i = 0; i < 8; ++i) {
    dsp::CVec v(1024);
    for (auto& s : v) s = rng.complex_gaussian(1.0);
    lanes.push_back(std::move(v));
  }
  dsp::CVec spec(1024);
  for (auto& s : spec) s = rng.complex_gaussian(1.0);
  const dsp::FftPlan& plan = dsp::fft_plan(1024);
  for (auto _ : state) {
    const core::ArenaFrame frame;
    phy::Batch b(8, 1024);
    for (std::size_t i = 0; i < 8; ++i) b.load(i, lanes[i]);
    b.scale(0.5);
    b.pointwise_mul(spec);
    b.iq_imbalance({0.98, 0.01}, {0.015, -0.01});
    b.fft_forward(plan);
    b.fft_inverse(plan);
    b.quantize_midrise(2.0, 2.0 / 256.0);
    benchmark::DoNotOptimize(b.flat().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8 * 1024);
}
BENCHMARK(BM_BatchPipeline8x1024);

void BM_BleSingleTonePayload(benchmark::State& state) {
  for (auto _ : state) {
    auto payload = ble::single_tone_payload(38, ble::ToneSign::kHigh, 31);
    benchmark::DoNotOptimize(payload.data());
  }
}
BENCHMARK(BM_BleSingleTonePayload);

void BM_GfskModulatePacket(benchmark::State& state) {
  ble::SingleToneSpec spec;
  const auto tone = ble::make_single_tone_packet(spec);
  ble::GfskModulator mod;
  for (auto _ : state) {
    auto s = mod.modulate(tone.packet.air_bits);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tone.packet.air_bits.size()));
}
BENCHMARK(BM_GfskModulatePacket);

void BM_DsssTx2Mbps(benchmark::State& state) {
  wifi::DsssTxConfig cfg;
  const wifi::DsssTransmitter tx(cfg);
  const phy::Bytes psdu(31, 0xA5);
  for (auto _ : state) {
    auto f = tx.modulate(psdu);
    benchmark::DoNotOptimize(f.baseband.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 31);
}
BENCHMARK(BM_DsssTx2Mbps);

void BM_DsssRx2Mbps(benchmark::State& state) {
  wifi::DsssTxConfig cfg;
  const wifi::DsssTransmitter tx(cfg);
  const auto frame = tx.modulate(phy::Bytes(31, 0xA5));
  const wifi::DsssReceiver rx;
  for (auto _ : state) {
    auto r = rx.receive(frame.baseband);
    benchmark::DoNotOptimize(&r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 31);
}
BENCHMARK(BM_DsssRx2Mbps);

void BM_CckModulate11Mbps(benchmark::State& state) {
  wifi::CckModulator mod(wifi::DsssRate::k11Mbps);
  dsp::Xoshiro256 rng(2);
  phy::Bits bits(8 * 256);
  for (auto& b : bits) b = rng.bit();
  for (auto _ : state) {
    auto chips = mod.modulate(bits);
    benchmark::DoNotOptimize(chips.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits.size()));
}
BENCHMARK(BM_CckModulate11Mbps);

void BM_ViterbiDecode(benchmark::State& state) {
  dsp::Xoshiro256 rng(3);
  phy::Bits data(864);
  for (auto& b : data) b = rng.bit();
  const phy::Bits coded = wifi::convolutional_encode(data);
  for (auto _ : state) {
    auto out = wifi::viterbi_decode(coded, data.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ViterbiDecode);

void BM_OfdmTx36Mbps(benchmark::State& state) {
  wifi::OfdmTxConfig cfg;
  cfg.rate = wifi::OfdmRate::k36;
  const wifi::OfdmTransmitter tx(cfg);
  const phy::Bytes psdu(100, 0x3C);
  for (auto _ : state) {
    auto t = tx.transmit(psdu);
    benchmark::DoNotOptimize(t.baseband.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_OfdmTx36Mbps);

void BM_OfdmRx36Mbps(benchmark::State& state) {
  wifi::OfdmTxConfig cfg;
  cfg.rate = wifi::OfdmRate::k36;
  const wifi::OfdmTransmitter tx(cfg);
  const auto t = tx.transmit(phy::Bytes(100, 0x3C));
  const wifi::OfdmReceiver rx;
  for (auto _ : state) {
    auto r = rx.receive(t.baseband);
    benchmark::DoNotOptimize(&r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_OfdmRx36Mbps);

void BM_SsbModulateCarrier(benchmark::State& state) {
  backscatter::SsbConfig cfg;
  const backscatter::SsbModulator mod(cfg);
  for (auto _ : state) {
    auto w = mod.states_to_waveform(mod.carrier_states(14300));
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 14300);
}
BENCHMARK(BM_SsbModulateCarrier);

void BM_SynthesizeWifiFrame(benchmark::State& state) {
  backscatter::WifiSynthConfig cfg;
  const phy::Bytes psdu(31, 0x5A);
  for (auto _ : state) {
    auto s = backscatter::synthesize_wifi(psdu, cfg);
    benchmark::DoNotOptimize(s.waveform.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 31);
}
BENCHMARK(BM_SynthesizeWifiFrame);

void BM_ZigbeeTransmit(benchmark::State& state) {
  const phy::Bytes payload(20, 0x42);
  for (auto _ : state) {
    auto t = zigbee::zigbee_transmit(payload);
    benchmark::DoNotOptimize(t.baseband.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 20);
}
BENCHMARK(BM_ZigbeeTransmit);

}  // namespace

BENCHMARK_MAIN();
