// Microbenchmarks (google-benchmark) of the PHY processing chains: useful
// for tracking the simulator's own performance and for the DESIGN.md claim
// that every experiment runs at waveform level in reasonable time.
#include <benchmark/benchmark.h>

#include "backscatter/ssb_modulator.h"
#include "backscatter/wifi_synth.h"
#include "ble/gfsk.h"
#include "ble/single_tone.h"
#include "dsp/fft.h"
#include "dsp/rng.h"
#include "wifi/cck.h"
#include "wifi/convolutional.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"
#include "wifi/ofdm_rx.h"
#include "wifi/ofdm_tx.h"
#include "zigbee/frame.h"

namespace {

using namespace itb;

void BM_Fft1024(benchmark::State& state) {
  dsp::Xoshiro256 rng(1);
  dsp::CVec x(1024);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    dsp::CVec y = x;
    dsp::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024);

void BM_BleSingleTonePayload(benchmark::State& state) {
  for (auto _ : state) {
    auto payload = ble::single_tone_payload(38, ble::ToneSign::kHigh, 31);
    benchmark::DoNotOptimize(payload.data());
  }
}
BENCHMARK(BM_BleSingleTonePayload);

void BM_GfskModulatePacket(benchmark::State& state) {
  ble::SingleToneSpec spec;
  const auto tone = ble::make_single_tone_packet(spec);
  ble::GfskModulator mod;
  for (auto _ : state) {
    auto s = mod.modulate(tone.packet.air_bits);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tone.packet.air_bits.size()));
}
BENCHMARK(BM_GfskModulatePacket);

void BM_DsssTx2Mbps(benchmark::State& state) {
  wifi::DsssTxConfig cfg;
  const wifi::DsssTransmitter tx(cfg);
  const phy::Bytes psdu(31, 0xA5);
  for (auto _ : state) {
    auto f = tx.modulate(psdu);
    benchmark::DoNotOptimize(f.baseband.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 31);
}
BENCHMARK(BM_DsssTx2Mbps);

void BM_DsssRx2Mbps(benchmark::State& state) {
  wifi::DsssTxConfig cfg;
  const wifi::DsssTransmitter tx(cfg);
  const auto frame = tx.modulate(phy::Bytes(31, 0xA5));
  const wifi::DsssReceiver rx;
  for (auto _ : state) {
    auto r = rx.receive(frame.baseband);
    benchmark::DoNotOptimize(&r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 31);
}
BENCHMARK(BM_DsssRx2Mbps);

void BM_CckModulate11Mbps(benchmark::State& state) {
  wifi::CckModulator mod(wifi::DsssRate::k11Mbps);
  dsp::Xoshiro256 rng(2);
  phy::Bits bits(8 * 256);
  for (auto& b : bits) b = rng.bit();
  for (auto _ : state) {
    auto chips = mod.modulate(bits);
    benchmark::DoNotOptimize(chips.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits.size()));
}
BENCHMARK(BM_CckModulate11Mbps);

void BM_ViterbiDecode(benchmark::State& state) {
  dsp::Xoshiro256 rng(3);
  phy::Bits data(864);
  for (auto& b : data) b = rng.bit();
  const phy::Bits coded = wifi::convolutional_encode(data);
  for (auto _ : state) {
    auto out = wifi::viterbi_decode(coded, data.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ViterbiDecode);

void BM_OfdmTx36Mbps(benchmark::State& state) {
  wifi::OfdmTxConfig cfg;
  cfg.rate = wifi::OfdmRate::k36;
  const wifi::OfdmTransmitter tx(cfg);
  const phy::Bytes psdu(100, 0x3C);
  for (auto _ : state) {
    auto t = tx.transmit(psdu);
    benchmark::DoNotOptimize(t.baseband.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_OfdmTx36Mbps);

void BM_OfdmRx36Mbps(benchmark::State& state) {
  wifi::OfdmTxConfig cfg;
  cfg.rate = wifi::OfdmRate::k36;
  const wifi::OfdmTransmitter tx(cfg);
  const auto t = tx.transmit(phy::Bytes(100, 0x3C));
  const wifi::OfdmReceiver rx;
  for (auto _ : state) {
    auto r = rx.receive(t.baseband);
    benchmark::DoNotOptimize(&r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_OfdmRx36Mbps);

void BM_SsbModulateCarrier(benchmark::State& state) {
  backscatter::SsbConfig cfg;
  const backscatter::SsbModulator mod(cfg);
  for (auto _ : state) {
    auto w = mod.states_to_waveform(mod.carrier_states(14300));
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 14300);
}
BENCHMARK(BM_SsbModulateCarrier);

void BM_SynthesizeWifiFrame(benchmark::State& state) {
  backscatter::WifiSynthConfig cfg;
  const phy::Bytes psdu(31, 0x5A);
  for (auto _ : state) {
    auto s = backscatter::synthesize_wifi(psdu, cfg);
    benchmark::DoNotOptimize(s.waveform.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 31);
}
BENCHMARK(BM_SynthesizeWifiFrame);

void BM_ZigbeeTransmit(benchmark::State& state) {
  const phy::Bytes payload(20, 0x42);
  for (auto _ : state) {
    auto t = zigbee::zigbee_transmit(payload);
    benchmark::DoNotOptimize(t.baseband.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 20);
}
BENCHMARK(BM_ZigbeeTransmit);

}  // namespace

BENCHMARK_MAIN();
