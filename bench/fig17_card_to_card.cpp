// Fig. 17 — Card-to-card communication BER vs distance between the two
// credit-card prototypes.
//
// Paper setup: transmit card 3 inches from a 10 dBm TI Bluetooth device,
// 18-bit payloads at 100 kbps, receiver card's envelope detector; BER
// usable out to ~30 inches.
#include <cmath>
#include <cstdio>

#include "backscatter/detector.h"
#include "bench_util.h"
#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/units.h"

int main() {
  using namespace itb;
  using channel::kInchesToMeters;

  bench::header("Fig.17", "card-to-card BER vs distance",
                "near-zero BER out to ~30 inches with 10 dBm Bluetooth "
                "(phone-class), rising steeply beyond");

  // Card A backscatters the BLE tone with OOK at 100 kbps; card B's envelope
  // detector decodes. Link: BLE -> cardA (3 in) -> cardB (swept).
  channel::BackscatterLinkConfig link;
  link.ble_tx_power_dbm = 10.0;
  link.ble_tag_distance_m = 3.0 * kInchesToMeters;
  link.tag_antenna = channel::card_antenna();
  link.rx_antenna = channel::card_antenna();
  link.rx_bandwidth_hz = 2e6;

  const double fs = 20e6;
  const std::size_t bit_samples = static_cast<std::size_t>(fs / 100e3);  // 100 kbps
  dsp::Xoshiro256 rng(17);

  std::printf("distance_in,rx_dbm,ber\n");
  for (double d_in = 2.0; d_in <= 36.0; d_in += 2.0) {
    const auto s = channel::backscatter_rssi(link, d_in * kInchesToMeters);

    // Build the OOK waveform at the received amplitude and decode it with
    // the envelope-detector receiver (ambient-backscatter architecture).
    const double amp = std::sqrt(dsp::dbm_to_watts(s.rssi_dbm));
    double errors = 0.0;
    double total = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      phy::Bits bits(18);
      for (auto& b : bits) b = rng.bit();
      dsp::CVec wave;
      wave.reserve(bits.size() * bit_samples);
      for (const auto b : bits) {
        for (std::size_t i = 0; i < bit_samples; ++i) {
          wave.push_back(b ? dsp::Complex{amp, 0.0} : dsp::Complex{amp * 0.1, 0.0});
        }
      }
      const double noise_w =
          dsp::dbm_to_watts(channel::thermal_noise_dbm(link.rx_bandwidth_hz, 10.0));
      const auto noisy = channel::add_noise_variance(wave, noise_w, rng);

      backscatter::PeakDetectorConfig pdc;
      pdc.sample_rate_hz = fs;
      // Passive envelope detectors bottom out in the low -50s dBm (ambient-
      // backscatter class hardware), far above radio sensitivities.
      pdc.sensitivity_dbm = -54.0;
      const backscatter::PeakDetector det(pdc);
      const auto out = det.decode_ook(noisy, bit_samples);
      for (std::size_t i = 0; i < bits.size() && i < out.size(); ++i) {
        errors += (out[i] != bits[i]);
      }
      total += static_cast<double>(bits.size());
    }
    std::printf("%.0f,%.1f,%.4f\n", d_in, s.rssi_dbm, errors / total);
  }
  bench::note(
      "the knee tracks the envelope detector's sensitivity: below it, bits "
      "vanish into the noise floor, reproducing the paper's ~30 in limit");
  return 0;
}
