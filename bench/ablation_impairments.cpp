// Ablation — impairment presets vs the ideal radio, waveform level against
// the closed-form impaired-SNR prediction.
//
// The implant scenarios (Fig. 15/16) are only trustworthy if the PER they
// quote survives the tag's real oscillator, the body channel, and a cheap
// reader ADC. This bench decodes noisy frames through each preset's full
// impairment chain and prints the waveform PER next to the budget-level
// prediction per_80211b(impaired_snr_db(...)), the quantity sim/network
// uses for its 5000-tag link draws.
#include <cstdio>

#include "bench_util.h"
#include "channel/impairments.h"
#include "channel/link.h"
#include "core/monte_carlo.h"

int main() {
  using namespace itb;

  bench::header("Ablation.impairments",
                "RF impairment presets: waveform PER vs closed-form penalty",
                "presets shift the waterfall right without changing its "
                "shape; the closed-form impaired SNR tracks the shift");

  const std::vector<double> grid = {-2, 0, 2, 4, 6, 8, 10, 12};
  struct Named {
    const char* name;
    channel::ImpairmentPreset preset;
  };
  const Named presets[] = {
      {"ideal", channel::ImpairmentPreset::kNone},
      {"implant_tissue", channel::ImpairmentPreset::kImplantTissue},
      {"ward_mobility", channel::ImpairmentPreset::kWardMobility},
      {"card_to_card", channel::ImpairmentPreset::kCardToCard},
  };

  for (const auto& p : presets) {
    core::MonteCarloConfig cfg;
    cfg.trials_per_point = 60;
    cfg.impairments =
        channel::make_impairment_preset(p.preset, 11e6, 2.462e9);
    const auto points = core::per_vs_snr(cfg, grid);
    std::printf("preset,%s\n", p.name);
    std::printf("snr_db,per_waveform,per_closed_form_impaired\n");
    for (const auto& pt : points) {
      double snr_eff = pt.snr_db;
      if (cfg.impairments) {
        snr_eff = channel::impaired_snr_db(*cfg.impairments, pt.snr_db, 1e6);
      }
      std::printf("%.1f,%.3f,%.3f\n", pt.snr_db, pt.per_monte_carlo,
                  channel::per_80211b(cfg.rate, snr_eff, cfg.psdu_bytes));
    }
  }
  return 0;
}
