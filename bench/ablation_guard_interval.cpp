// Ablation — the tag's 4 us guard interval (paper §2.2).
//
// Energy detection cannot locate the payload start exactly; the guard
// absorbs the estimate's jitter, at the cost of usable window. This bench
// sweeps the tag's timing error against the payload budget at each rate:
// the paper's 4 us choice keeps the full paper payload viable while
// tolerating the envelope detector's observed jitter.
#include <cstdio>

#include "backscatter/tag.h"
#include "ble/single_tone.h"
#include "bench_util.h"

int main() {
  using namespace itb;

  bench::header("Ablation.guard",
                "max payload that fits vs tag timing error, per rate",
                "the 4 us guard absorbs small detection jitter; beyond ~10 us "
                "the paper payloads no longer fit the advertising window");

  ble::SingleToneSpec spec;
  spec.channel_index = 38;
  const auto tone = ble::make_single_tone_packet(spec);

  std::printf("timing_error_us,max_bytes_2mbps,max_bytes_5_5mbps,max_bytes_11mbps\n");
  for (const double err : {0.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 40.0}) {
    std::printf("%.0f", err);
    for (const auto rate : {wifi::DsssRate::k2Mbps, wifi::DsssRate::k5_5Mbps,
                            wifi::DsssRate::k11Mbps}) {
      backscatter::TagConfig cfg;
      cfg.wifi.rate = rate;
      cfg.timing_error_us = err;
      const backscatter::InterscatterTag tag(cfg);
      std::size_t best = 0;
      for (std::size_t n = 1; n <= 230; ++n) {
        const auto plan = tag.plan(tone.packet, phy::Bytes(n, 0x42));
        if (plan.has_value() && plan->fits_window) best = n;
      }
      std::printf(",%zu", best);
    }
    std::printf("\n");
  }
  bench::note(
      "paper payloads (37/101/203 B verified) hold up to ~8 us of error; the "
      "4 us guard sits at half that margin, trading 1-4 payload bytes for "
      "robust energy-detection timing");
  return 0;
}
