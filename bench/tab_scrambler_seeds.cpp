// §4.4 table — tracking 802.11g scrambler seeds across chipsets.
//
// The paper transmitted 36 Mbps frames from several cards and recovered each
// frame's scrambling seed with a GNURadio receiver: AR5001G / AR5007G /
// AR9580 increment the seed by one per frame; ath5k can pin it via the
// AR5K_PHY_CTL GEN_SCRAMBLER field. We reproduce the experiment against our
// own OFDM receiver.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "wifi/chipset.h"
#include "wifi/ofdm_rx.h"
#include "wifi/ofdm_tx.h"

int main() {
  using namespace itb;

  bench::header("Tab.seeds", "scrambler-seed policies recovered per chipset",
                "Atheros AR5001G/AR5007G/AR9580 increment by one per frame; "
                "ath5k pinned via GEN_SCRAMBLER; generic random is the "
                "adversarial case");

  const wifi::OfdmReceiver rx;
  std::printf("chipset,observed_seeds,classified\n");
  for (const auto& model :
       {wifi::ar5001g(), wifi::ar5007g(), wifi::ar9580(),
        wifi::ath5k_fixed(0x4C), wifi::generic_random()}) {
    wifi::SeedSequencer seq(model, 77, 0x21);
    std::vector<std::uint8_t> observed;
    for (int frame = 0; frame < 6; ++frame) {
      wifi::OfdmTxConfig txcfg;
      txcfg.rate = wifi::OfdmRate::k36;  // the paper's 36 Mbps probes
      txcfg.scrambler_seed = seq.next();
      const wifi::OfdmTransmitter tx(txcfg);
      const auto t = tx.transmit(phy::Bytes{0xDE, 0xAD, 0xBE, 0xEF});
      const auto r = rx.receive(t.baseband);
      if (r.has_value()) observed.push_back(r->scrambler_seed);
    }
    const auto cls = wifi::classify_seeds(observed);
    std::printf("%s,[", model.name.c_str());
    for (std::size_t i = 0; i < observed.size(); ++i) {
      std::printf("%s%u", i ? " " : "", observed[i]);
    }
    std::printf("],%s\n", cls.looks_incrementing ? "increment-per-frame"
                          : cls.looks_fixed      ? "fixed"
                                                 : "unpredictable");
  }
  bench::note(
      "the downlink (Fig. 13) requires increment-per-frame or fixed policies; "
      "seeds recovered through the full OFDM receive chain as in gr-ieee802-11");
  return 0;
}
