// Fig. 11 — CDF of the Wi-Fi packet error rate of backscattered packets at
// 2 and 11 Mbps across the RSSI population from the Fig. 10 sweeps.
//
// The paper transmits 200-sequence-number loops at each location; here each
// location's PER comes from the calibrated link budget, cross-checked by
// the waveform-level Monte Carlo in tests/core_test.cpp.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "channel/link.h"
#include "core/interscatter.h"
#include "dsp/rng.h"

int main() {
  using namespace itb;
  using channel::kFeetToMeters;

  bench::header("Fig.11", "CDF of Wi-Fi PER at 2 and 11 Mbps",
                "2 and 11 Mbps track each other closely (same preamble rate, "
                "small payloads); most locations land below 10% PER, a low-RSSI "
                "tail exceeds 30%");

  // Build the location population exactly like Fig. 10: both separations,
  // all four powers, all distances. Each location also draws log-normal
  // shadowing and per-packet two-hop Rician fading (the office multipath
  // the paper's measurements include), which produces the PER spread.
  std::vector<double> per2, per11;
  dsp::Xoshiro256 rng(11);
  const channel::ShadowingModel shadow{.sigma_db = 4.0};
  const channel::RicianFading hop{.k_factor = 4.0};
  for (const double sep_ft : {1.0, 3.0}) {
    for (const double p : {0.0, 4.0, 10.0, 20.0}) {
      for (double d_ft = 2.0; d_ft <= 90.0; d_ft += 4.0) {
        core::UplinkScenario s;
        s.ble_tx_power_dbm = p;
        s.ble_tag_distance_m = sep_ft * kFeetToMeters;
        s.tag_rx_distance_m = channel::perpendicular_range_m(
            s.ble_tag_distance_m, d_ft * kFeetToMeters);
        const double shadow_db = shadow.sample_db(rng);

        // Paper payloads: 31 B at 2 Mbps, 77 B at 11 Mbps (fit in one BLE
        // advertisement). Location PER = mean over per-packet fades of the
        // 200-packet loops the paper transmits.
        const auto location_per = [&](wifi::DsssRate rate, std::size_t bytes) {
          s.rate = rate;
          const auto b = core::InterscatterSystem(s).budget(bytes);
          double acc = 0.0;
          constexpr int kPackets = 50;
          for (int k = 0; k < kPackets; ++k) {
            const double fade = channel::backscatter_fade_db(hop, hop, rng);
            acc += channel::per_80211b(rate, b.snr_db + shadow_db + fade, bytes);
          }
          return std::pair{b.rssi_dbm + shadow_db, acc / kPackets};
        };

        const auto [rssi2, p2] = location_per(wifi::DsssRate::k2Mbps, 31);
        const auto [rssi11, p11] = location_per(wifi::DsssRate::k11Mbps, 77);
        // Keep only locations where packets are received at all (the paper's
        // CDF conditions on reported packets).
        if (rssi2 > -92.0) per2.push_back(p2);
        if (rssi11 > -92.0) per11.push_back(p11);
      }
    }
  }
  std::sort(per2.begin(), per2.end());
  std::sort(per11.begin(), per11.end());

  std::printf("per,cdf_2mbps,cdf_11mbps\n");
  for (double per = 0.0; per <= 0.7001; per += 0.05) {
    const auto frac = [&](const std::vector<double>& v) {
      const auto it = std::upper_bound(v.begin(), v.end(), per);
      return static_cast<double>(it - v.begin()) / static_cast<double>(v.size());
    };
    std::printf("%.2f,%.3f,%.3f\n", per, frac(per2), frac(per11));
  }

  const auto median = [](const std::vector<double>& v) {
    return v.empty() ? 0.0 : v[v.size() / 2];
  };
  std::printf("# measured: median PER 2 Mbps %.3f, 11 Mbps %.3f over %zu/%zu locations\n",
              median(per2), median(per11), per2.size(), per11.size());
  return 0;
}
