// §2.3.3 table — Wi-Fi payload bytes that fit inside one BLE advertising
// payload window: 38 / 104 / 209 bytes at 2 / 5.5 / 11 Mbps; a 1 Mbps frame
// does not fit. Extension (§7): BLE data packets (up to 2 ms) enable 1 Mbps
// and larger payloads.
#include <cstdio>

#include "ble/packet.h"
#include "ble/single_tone.h"
#include "backscatter/tag.h"
#include "bench_util.h"
#include "wifi/rates.h"

int main() {
  using namespace itb;

  bench::header("Tab.payload", "Wi-Fi payload fit per BLE advertising packet",
                "38 / 104 / 209 bytes at 2 / 5.5 / 11 Mbps; 1 Mbps does not fit");

  std::printf("rate,paper_budget_bytes,adv_window_us\n");
  for (const auto rate : {wifi::DsssRate::k1Mbps, wifi::DsssRate::k2Mbps,
                          wifi::DsssRate::k5_5Mbps, wifi::DsssRate::k11Mbps}) {
    std::printf("%s,%zu,%.0f\n", std::string(wifi::rate_name(rate)).c_str(),
                wifi::paper_payload_bytes(rate), 248.0);
  }

  // Verify by synthesis: the tag accepts a paper-budget payload and rejects
  // one byte more... (guard interval consumes a little of the window, so
  // the verified fit sits within a few bytes of the paper's arithmetic).
  ble::SingleToneSpec spec;
  spec.channel_index = 38;
  const auto tone = ble::make_single_tone_packet(spec);
  bench::note("synthesis check against the real tag state machine:");
  for (const auto rate : {wifi::DsssRate::k2Mbps, wifi::DsssRate::k5_5Mbps,
                          wifi::DsssRate::k11Mbps}) {
    backscatter::TagConfig cfg;
    cfg.wifi.rate = rate;
    const backscatter::InterscatterTag tag(cfg);
    std::size_t best = 0;
    for (std::size_t n = 1; n <= 240; ++n) {
      const auto plan = tag.plan(tone.packet, phy::Bytes(n, 0xA5));
      if (plan.has_value() && plan->fits_window) best = n;
    }
    std::printf("#   %-8s max PSDU that fits the %0.f us AdvData window: %zu bytes\n",
                std::string(wifi::rate_name(rate)).c_str(),
                tone.packet.payload_window_us(), best);
  }

  bench::note("future-work extension (paper §7): BLE data packets, 2 ms window:");
  for (const auto rate : {wifi::DsssRate::k1Mbps, wifi::DsssRate::k2Mbps,
                          wifi::DsssRate::k11Mbps}) {
    std::printf("#   %-8s -> %zu bytes\n",
                std::string(wifi::rate_name(rate)).c_str(),
                wifi::paper_payload_bytes(rate, 2000.0));
  }
  return 0;
}
