// Tests for the parallel Monte-Carlo sweep core: bit-identical results
// across thread counts (the counter-based RNG substream guarantee), the
// substream seed function itself, and the parallel_for primitive.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/monte_carlo.h"
#include "core/parallel.h"

namespace itb::core {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  // One worker runs inline, so the unguarded push_back cannot race.
  // detlint: allow(parallel-capture)
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  // Zero iterations: the body never runs.  detlint: allow(parallel-capture)
  parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesWorkerException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(TrialSeed, SubstreamsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t point = 0; point < 32; ++point) {
    for (std::uint64_t trial = 0; trial < 64; ++trial) {
      seen.insert(trial_seed(2024, point, trial));
    }
  }
  EXPECT_EQ(seen.size(), 32u * 64u);
  // Different sweep seeds decorrelate the whole grid.
  EXPECT_NE(trial_seed(1, 0, 0), trial_seed(2, 0, 0));
}

TEST(MonteCarlo, PerVsSnrBitIdenticalAcrossThreadCounts) {
  MonteCarloConfig cfg;
  cfg.trials_per_point = 6;
  cfg.psdu_bytes = 16;
  const std::vector<double> grid{-4.0, 0.0, 6.0};

  cfg.num_threads = 1;
  const auto one = per_vs_snr(cfg, grid);
  cfg.num_threads = 2;
  const auto two = per_vs_snr(cfg, grid);
  cfg.num_threads = 8;
  const auto eight = per_vs_snr(cfg, grid);

  ASSERT_EQ(one.size(), grid.size());
  ASSERT_EQ(two.size(), grid.size());
  ASSERT_EQ(eight.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(one[i].per_monte_carlo, two[i].per_monte_carlo) << "point " << i;
    EXPECT_EQ(one[i].per_monte_carlo, eight[i].per_monte_carlo) << "point " << i;
    EXPECT_EQ(one[i].per_closed_form, eight[i].per_closed_form);
    EXPECT_EQ(one[i].trials, eight[i].trials);
    EXPECT_EQ(one[i].snr_db, grid[i]);
  }
}

TEST(MonteCarlo, RepeatedRunsAreDeterministic) {
  MonteCarloConfig cfg;
  cfg.trials_per_point = 5;
  cfg.psdu_bytes = 16;
  cfg.num_threads = 4;
  const std::vector<double> grid{2.0};
  const auto a = per_vs_snr(cfg, grid);
  const auto b = per_vs_snr(cfg, grid);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].per_monte_carlo, b[0].per_monte_carlo);
}

TEST(MonteCarlo, SeedChangesTheDraw) {
  // With few trials at a waterfall SNR the empirical PER is seed-sensitive;
  // this only checks the seed is actually plumbed through, so accept either
  // equal or different PER but require the engine to consume the new seed
  // (trial_seed must differ).
  EXPECT_NE(trial_seed(2024, 0, 0), trial_seed(2025, 0, 0));
}

}  // namespace
}  // namespace itb::core
