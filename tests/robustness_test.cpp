// Failure-injection and robustness tests across the stack: carrier offsets,
// timing errors beyond the guard interval, wrong seeds, detuned antennas,
// truncated captures, and fading statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "backscatter/wifi_synth.h"
#include "channel/awgn.h"
#include "channel/fading.h"
#include "core/downlink.h"
#include "core/interscatter.h"
#include "core/monte_carlo.h"
#include "dsp/spectrum.h"
#include "dsp/units.h"
#include "wifi/am_downlink.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"
#include "wifi/ofdm_rx.h"

namespace itb {
namespace {

using dsp::CVec;
using dsp::Real;

// --- CFO robustness ------------------------------------------------------------

TEST(Robustness, DsssSurvivesSmallCfo) {
  // Differential demodulation tolerates CFO well below the symbol rate.
  wifi::DsssTxConfig txcfg;
  txcfg.rate = wifi::DsssRate::k2Mbps;
  const wifi::DsssTransmitter tx(txcfg);
  const phy::Bytes psdu(31, 0x77);
  const auto frame = tx.modulate(psdu);
  for (const Real cfo : {5e3, 20e3, 50e3}) {
    const CVec offset = channel::apply_cfo(frame.baseband, cfo, 11e6);
    const wifi::DsssReceiver rx;
    const auto r = rx.receive(offset);
    ASSERT_TRUE(r.has_value()) << "cfo " << cfo;
    EXPECT_EQ(r->psdu, psdu) << "cfo " << cfo;
  }
}

TEST(Robustness, DsssBreaksUnderLargeCfo) {
  // A large uncorrected CFO rotates consecutive symbols by more than the
  // DQPSK decision region (pi/4 per symbol at ~344 kHz): decoding must fail
  // rather than return corrupted-but-valid frames.
  wifi::DsssTxConfig txcfg;
  txcfg.rate = wifi::DsssRate::k2Mbps;
  const wifi::DsssTransmitter tx(txcfg);
  const phy::Bytes psdu(31, 0x77);
  const auto frame = tx.modulate(psdu);
  const CVec offset = channel::apply_cfo(frame.baseband, 400e3, 11e6);
  const wifi::DsssReceiver rx;
  const auto r = rx.receive(offset);
  if (r.has_value() && r->header_ok) {
    EXPECT_NE(r->psdu, psdu);  // never silently correct
  }
}

TEST(Robustness, OfdmPilotsCorrectResidualPhase) {
  wifi::OfdmTxConfig txcfg;
  txcfg.rate = wifi::OfdmRate::k24;
  const wifi::OfdmTransmitter tx(txcfg);
  const phy::Bytes psdu = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  const auto t = tx.transmit(psdu);
  // ~300 Hz residual CFO at 20 Msps: a slow phase drift the pilots absorb.
  const CVec drift = channel::apply_cfo(t.baseband, 300.0, 20e6);
  const wifi::OfdmReceiver rx;
  const auto r = rx.receive(drift);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->signal_ok);
  for (std::size_t i = 0; i < psdu.size(); ++i) EXPECT_EQ(r->psdu[i], psdu[i]);
}

// --- wrong-seed downlink ---------------------------------------------------------

TEST(Robustness, AmDownlinkNeedsTheRightSeed) {
  // Encoding against seed A while the transmitter scrambles with seed B
  // destroys the constant-OFDM structure: the message must not decode.
  wifi::AmDownlinkConfig cfg;
  cfg.scrambler_seed = 0x11;
  wifi::AmDownlinkEncoder enc(cfg, 5);
  const phy::Bits msg = {1, 0, 1, 1, 0, 1, 0, 0};
  const wifi::AmFrame frame = enc.encode(msg);

  // Re-transmit the same data bits through a chipset using a different seed.
  wifi::OfdmTxConfig txcfg;
  txcfg.rate = cfg.rate;
  txcfg.scrambler_seed = 0x2E;  // wrong
  const wifi::OfdmTransmitter tx(txcfg);
  const auto wrong = tx.transmit_data_bits(frame.data_field_bits);

  const auto r = wifi::decode_am_envelope(wrong.baseband,
                                          frame.symbol_is_constant.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < msg.size() && i < r.bits.size(); ++i) {
    errors += (r.bits[i] != msg[i]);
  }
  EXPECT_GT(errors, 0u);
}

TEST(Robustness, RandomSeedChipsetBreaksDownlink) {
  core::DownlinkScenario s;
  s.chipset = wifi::generic_random();
  s.distance_m = 2.0;
  // The encoder guesses a seed; the chipset picks another at random. Over
  // several frames, at least one must fail (126/127 mismatch chance each).
  std::size_t failures = 0;
  for (int i = 0; i < 4; ++i) {
    s.seed = 100 + i;
    const auto r = core::simulate_downlink(s, phy::Bits(16, 1));
    failures += (r.ber > 0.1);
  }
  EXPECT_GT(failures, 0u);
}

// --- detuned tag network -----------------------------------------------------------

namespace {

/// Synthesizes, adds channel noise at `snr_db`, downconverts and decodes.
bool decodes_cleanly(const backscatter::ImpedanceNetwork& network, Real snr_db,
                     std::uint64_t seed) {
  backscatter::WifiSynthConfig cfg;
  cfg.rate = wifi::DsssRate::k2Mbps;
  cfg.network = network;
  const phy::Bytes psdu(31, 0x3C);
  const auto synth = backscatter::synthesize_wifi(psdu, cfg);

  CVec shifted = channel::apply_cfo(synth.waveform, -cfg.shift_hz,
                                    cfg.sample_rate_hz);
  CVec chips(shifted.size() / 13);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    dsp::Complex acc{0, 0};
    for (std::size_t k = 0; k < 13; ++k) acc += shifted[i * 13 + k];
    chips[i] = acc / 13.0;
  }
  dsp::Xoshiro256 rng(dsp::splitmix64(seed));
  const CVec noisy = channel::add_noise_snr(chips, snr_db, rng);
  const wifi::DsssReceiver rx;
  const auto r = rx.receive(noisy);
  return r.has_value() && r->header_ok && r->psdu == psdu;
}

}  // namespace

TEST(Robustness, SingleCollapsedStateIsTolerated) {
  // One stuck switch state only rotates/attenuates the despread symbols by
  // a constant amount — Barker averaging plus differential decoding absorb
  // it even at moderate SNR. A real design property worth pinning: the tag
  // degrades gracefully.
  backscatter::ImpedanceNetwork one_bad = backscatter::ideal_network();
  one_bad.loads[1] = one_bad.loads[0];  // state 1 stuck at state 0
  EXPECT_TRUE(decodes_cleanly(one_bad, 15.0, 303));
}

TEST(Robustness, TwoCollapsedStatePairsDegradeToDsb) {
  // Collapsing to two states does NOT destroy the data — the QPSK phases
  // survive in the timing of the binary switching waveform (classic 2-state
  // backscatter PSK, and why prior DSB designs worked at all). What is lost
  // is single-sideband operation: the mirror image reappears. This pins the
  // paper's actual claim — SSB's win is spectral efficiency, not
  // decodability.
  backscatter::ImpedanceNetwork two_bad = backscatter::ideal_network();
  two_bad.loads[1] = two_bad.loads[0];
  two_bad.loads[3] = two_bad.loads[2];
  EXPECT_TRUE(decodes_cleanly(two_bad, 15.0, 304));

  backscatter::WifiSynthConfig cfg;
  cfg.network = two_bad;
  const auto synth = backscatter::synthesize_wifi(phy::Bytes(31, 0x3C), cfg);
  const auto psd = dsp::welch_psd(synth.waveform, cfg.sample_rate_hz);
  const Real collapsed_rej = dsp::sideband_rejection_db(
      psd, 35.75e6 - 11e6, 35.75e6 + 11e6, -35.75e6 - 11e6, -35.75e6 + 11e6);

  backscatter::WifiSynthConfig good;
  const auto good_synth = backscatter::synthesize_wifi(phy::Bytes(31, 0x3C), good);
  const auto good_psd = dsp::welch_psd(good_synth.waveform, good.sample_rate_hz);
  const Real good_rej = dsp::sideband_rejection_db(
      good_psd, 35.75e6 - 11e6, 35.75e6 + 11e6, -35.75e6 - 11e6, -35.75e6 + 11e6);

  EXPECT_LT(std::abs(collapsed_rej), 3.0);  // mirror is back
  EXPECT_GT(good_rej, 15.0);                // healthy network suppresses it
}

TEST(Robustness, RetunedNetworkRecoversLensAntenna) {
  // The lens antenna's complex impedance breaks a 50-ohm-tuned network but
  // the retuned one restores 4 usable states (paper §5.1 re-optimization).
  const std::complex<Real> lens{20.0, 35.0};
  backscatter::ImpedanceNetwork naive = backscatter::ideal_network();
  naive.antenna_impedance = lens;
  const backscatter::ImpedanceNetwork retuned =
      backscatter::retuned_network(lens);
  EXPECT_LT(retuned.constellation_error_rad(),
            naive.constellation_error_rad());
}

// --- timing ---------------------------------------------------------------------

TEST(Robustness, GuardIntervalAbsorbsSmallTimingError) {
  ble::SingleToneSpec spec;
  const auto tone = ble::make_single_tone_packet(spec);
  backscatter::TagConfig cfg;
  cfg.wifi.rate = wifi::DsssRate::k2Mbps;
  cfg.timing_error_us = 3.0;  // inside the 4 us guard design margin
  const backscatter::InterscatterTag tag(cfg);
  const auto plan = tag.plan(tone.packet, phy::Bytes(30, 1));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->fits_window);
}

TEST(Robustness, WindowAccountingIsExact) {
  // A frame that exactly fills the remaining window passes; one more
  // microsecond of timing error fails it.
  ble::SingleToneSpec spec;
  const auto tone = ble::make_single_tone_packet(spec);
  backscatter::TagConfig cfg;
  cfg.wifi.rate = wifi::DsssRate::k11Mbps;
  const backscatter::InterscatterTag tag(cfg);

  // Find the exact largest payload.
  std::size_t largest = 0;
  for (std::size_t n = 1; n < 240; ++n) {
    const auto p = tag.plan(tone.packet, phy::Bytes(n, 2));
    if (p && p->fits_window) largest = n;
  }
  ASSERT_GT(largest, 0u);

  backscatter::TagConfig late = cfg;
  late.timing_error_us = 10.0;
  const backscatter::InterscatterTag late_tag(late);
  const auto p = late_tag.plan(tone.packet, phy::Bytes(largest, 2));
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->fits_window);
}

// --- fading statistics -------------------------------------------------------------

TEST(Robustness, RicianMeanPowerIsUnity) {
  dsp::Xoshiro256 rng(77);
  channel::RicianFading f{.k_factor = 4.0};
  Real acc = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) acc += f.sample_power_gain(rng);
  EXPECT_NEAR(acc / n, 1.0, 0.05);
}

TEST(Robustness, LowerKFactorFadesDeeper) {
  dsp::Xoshiro256 rng(78);
  channel::RicianFading rayleigh{.k_factor = 0.01};
  channel::RicianFading strong_los{.k_factor = 10.0};
  int deep_rayleigh = 0;
  int deep_los = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    deep_rayleigh += (rayleigh.sample_power_gain(rng) < 0.1);
    deep_los += (strong_los.sample_power_gain(rng) < 0.1);
  }
  EXPECT_GT(deep_rayleigh, 10 * std::max(deep_los, 1));
}

TEST(Robustness, TwoHopFadeHasHeavierTailThanOneHop) {
  dsp::Xoshiro256 rng(79);
  channel::RicianFading hop{.k_factor = 4.0};
  int deep_single = 0;
  int deep_double = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    deep_single += (hop.sample_power_gain(rng) < 0.2);
    deep_double += (channel::backscatter_fade_power_gain(hop, hop, rng) < 0.2);
  }
  EXPECT_GT(deep_double, deep_single);
}

TEST(Robustness, ShadowingIsZeroMean) {
  dsp::Xoshiro256 rng(80);
  channel::ShadowingModel m{.sigma_db = 6.0};
  Real acc = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) acc += m.sample_db(rng);
  EXPECT_NEAR(acc / n, 0.0, 0.15);
}

// --- Monte-Carlo PER engine ----------------------------------------------------------

TEST(Robustness, MonteCarloPerMonotone) {
  core::MonteCarloConfig cfg;
  cfg.trials_per_point = 15;
  const auto pts = core::per_vs_snr(cfg, {-2.0, 2.0, 8.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GE(pts[0].per_monte_carlo, pts[1].per_monte_carlo);
  EXPECT_GE(pts[1].per_monte_carlo, pts[2].per_monte_carlo);
  EXPECT_LT(pts[2].per_monte_carlo, 0.2);
}

TEST(Robustness, MonteCarloMatchesClosedFormWaterfall) {
  // Both curves should transition from ~1 to ~0 within the same few-dB
  // window (the ablation bench plots the detail).
  core::MonteCarloConfig cfg;
  cfg.trials_per_point = 20;
  const auto pts = core::per_vs_snr(cfg, {-6.0, 6.0});
  EXPECT_GT(pts[0].per_monte_carlo, 0.9);
  EXPECT_GT(pts[0].per_closed_form, 0.9);
  EXPECT_LT(pts[1].per_monte_carlo, 0.1);
  EXPECT_LT(pts[1].per_closed_form, 0.1);
}

}  // namespace
}  // namespace itb
