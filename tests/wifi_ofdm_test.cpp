// Tests for the 802.11a/g OFDM stack and the paper's AM-downlink trick
// (§2.4): coding, interleaving, QAM, symbol construction, the TX -> RX loop,
// scrambler-seed recovery (§4.4) and constant-OFDM construction.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "backscatter/detector.h"
#include "channel/awgn.h"
#include "dsp/rng.h"
#include "dsp/units.h"
#include "phycommon/lfsr.h"
#include "wifi/am_downlink.h"
#include "wifi/chipset.h"
#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm_rx.h"
#include "wifi/ofdm_tx.h"
#include "wifi/qam.h"

namespace itb::wifi {
namespace {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;
using itb::phy::Bytes;

Bits random_bits(std::size_t n, std::uint64_t seed) {
  itb::dsp::Xoshiro256 rng(itb::dsp::splitmix64(seed));
  Bits out(n);
  for (auto& b : out) b = rng.bit();
  return out;
}

// --- convolutional code --------------------------------------------------------

TEST(Convolutional, AllOnesInputGivesAllOnesOutput) {
  // The property the AM trick depends on (§2.4): both generators have an
  // odd number of taps.
  const Bits ones(64, 1);
  // Preload the encoder state with ones so the run is steady-state.
  const Bits coded = convolutional_encode(ones, 0x3F);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    EXPECT_EQ(coded[i], 1) << "bit " << i;
  }
}

TEST(Convolutional, AllZerosInputGivesAllZerosOutput) {
  const Bits zeros(64, 0);
  const Bits coded = convolutional_encode(zeros, 0x00);
  for (auto b : coded) EXPECT_EQ(b, 0);
}

TEST(Convolutional, ViterbiDecodesCleanStream) {
  const Bits data = random_bits(200, 21);
  const Bits coded = convolutional_encode(data);
  EXPECT_EQ(viterbi_decode(coded, data.size()), data);
}

TEST(Convolutional, ViterbiCorrectsScatteredErrors) {
  const Bits data = random_bits(300, 22);
  Bits coded = convolutional_encode(data);
  // Flip isolated bits (spaced beyond the constraint length).
  for (std::size_t i = 20; i + 40 < coded.size(); i += 40) coded[i] ^= 1;
  EXPECT_EQ(viterbi_decode(coded, data.size()), data);
}

TEST(Convolutional, PunctureRate23RoundTrip) {
  const Bits data = random_bits(240, 23);
  const Bits coded = convolutional_encode(data);
  const Bits punct = puncture(coded, CodeRate::kRate2_3);
  EXPECT_EQ(punct.size(), data.size() * 3 / 2);
  EXPECT_EQ(decode_punctured(punct, CodeRate::kRate2_3, data.size()), data);
}

TEST(Convolutional, PunctureRate34RoundTrip) {
  const Bits data = random_bits(300, 24);
  const Bits coded = convolutional_encode(data);
  const Bits punct = puncture(coded, CodeRate::kRate3_4);
  EXPECT_EQ(punct.size(), data.size() * 4 / 3);
  EXPECT_EQ(decode_punctured(punct, CodeRate::kRate3_4, data.size()), data);
}

TEST(Convolutional, DepunctureInsertsErasures) {
  const Bits punct(12, 1);
  const Bits padded = depuncture_with_erasures(punct, CodeRate::kRate3_4);
  std::size_t erasures = 0;
  for (auto b : padded) erasures += (b == 2);
  EXPECT_EQ(erasures, padded.size() / 3);
}

TEST(Convolutional, CodeRateValues) {
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kRate1_2), 0.5);
  EXPECT_NEAR(code_rate_value(CodeRate::kRate2_3), 0.6667, 1e-3);
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kRate3_4), 0.75);
}

// --- interleaver -----------------------------------------------------------------

class InterleaverAllRates : public ::testing::TestWithParam<OfdmRate> {};

TEST_P(InterleaverAllRates, RoundTrip) {
  const auto& p = ofdm_params(GetParam());
  const Bits in = random_bits(p.n_cbps, 31);
  const Bits inter = interleave(in, p.n_cbps, p.n_bpsc);
  EXPECT_EQ(deinterleave(inter, p.n_cbps, p.n_bpsc), in);
}

TEST_P(InterleaverAllRates, PermutationIsBijective) {
  const auto& p = ofdm_params(GetParam());
  const auto map = interleave_map(p.n_cbps, p.n_bpsc);
  std::vector<bool> hit(p.n_cbps, false);
  for (const std::size_t j : map) {
    ASSERT_LT(j, p.n_cbps);
    EXPECT_FALSE(hit[j]);
    hit[j] = true;
  }
}

TEST_P(InterleaverAllRates, ConstantStreamIsFixedPoint) {
  const auto& p = ofdm_params(GetParam());
  const Bits ones(p.n_cbps, 1);
  EXPECT_EQ(interleave(ones, p.n_cbps, p.n_bpsc), ones);
}

INSTANTIATE_TEST_SUITE_P(Rates, InterleaverAllRates,
                         ::testing::Values(OfdmRate::k6, OfdmRate::k12,
                                           OfdmRate::k24, OfdmRate::k36,
                                           OfdmRate::k48, OfdmRate::k54));

TEST(Interleaver, AdjacentBitsLandOnDistantSubcarriers) {
  const auto map = interleave_map(192, 4);  // 16-QAM
  // Adjacent coded bits must not land in the same subcarrier's bit group.
  EXPECT_GT((map[1] > map[0] ? map[1] - map[0] : map[0] - map[1]), 4u);
}

// --- QAM --------------------------------------------------------------------------

class QamRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(QamRoundTrip, CleanMapping) {
  const Modulation m = GetParam();
  const std::size_t bps = bits_per_symbol(m);
  const Bits in = random_bits(bps * 100, 41);
  const CVec sym = qam_modulate(in, m);
  EXPECT_EQ(qam_demodulate(sym, m), in);
}

TEST_P(QamRoundTrip, UnitAveragePower) {
  const Modulation m = GetParam();
  const std::size_t bps = bits_per_symbol(m);
  const Bits in = random_bits(bps * 4096, 42);
  const CVec sym = qam_modulate(in, m);
  EXPECT_NEAR(itb::dsp::mean_power(sym), 1.0, 0.05);
}

TEST_P(QamRoundTrip, SurvivesSmallNoise) {
  const Modulation m = GetParam();
  const std::size_t bps = bits_per_symbol(m);
  const Bits in = random_bits(bps * 200, 43);
  CVec sym = qam_modulate(in, m);
  itb::dsp::Xoshiro256 rng(44);
  sym = itb::channel::add_noise_snr(sym, 30.0, rng);
  EXPECT_EQ(qam_demodulate(sym, m), in);
}

INSTANTIATE_TEST_SUITE_P(Mods, QamRoundTrip,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::k16Qam, Modulation::k64Qam));

TEST(Qam, GrayNeighboursDifferInOneBit) {
  // 16-QAM: adjacent I levels differ in exactly one of the two I bits.
  const Bits a = qam_unmap_symbol({-3.0 / std::sqrt(10.0), 1.0 / std::sqrt(10.0)},
                                  Modulation::k16Qam);
  const Bits b = qam_unmap_symbol({-1.0 / std::sqrt(10.0), 1.0 / std::sqrt(10.0)},
                                  Modulation::k16Qam);
  EXPECT_EQ(itb::phy::hamming_distance(a, b), 1u);
}

TEST(Qam, UnmapMapsNaNAndInfToDefinedLevels) {
  // Regression: a NaN soft value (propagated through an impairment chain or
  // an equalizer division by a null channel estimate) used to reach
  // static_cast<int> inside the Gray demapper — undefined behaviour. NaN now
  // pins deterministically to the most negative level (the all-zeros Gray
  // group); +-inf clamp to the outermost levels as before.
  const Real nan = std::numeric_limits<Real>::quiet_NaN();
  const Real inf = std::numeric_limits<Real>::infinity();

  // 64-QAM: NaN real -> level -7 -> 000; +inf imag -> level +7 -> 100.
  const Bits b64 = qam_unmap_symbol({nan, inf}, Modulation::k64Qam);
  ASSERT_EQ(b64.size(), 6u);
  EXPECT_EQ(Bits(b64.begin(), b64.begin() + 3), (Bits{0, 0, 0}));
  EXPECT_EQ(Bits(b64.begin() + 3, b64.end()), (Bits{1, 0, 0}));

  // -inf clamps to the most negative level on any width.
  const Bits bneg = qam_unmap_symbol({-inf, -inf}, Modulation::k16Qam);
  EXPECT_EQ(bneg, (Bits{0, 0, 0, 0}));

  // BPSK: NaN -> -1 -> bit 0; both-NaN QPSK -> 00.
  EXPECT_EQ(qam_unmap_symbol({nan, 0.0}, Modulation::kBpsk), (Bits{0}));
  EXPECT_EQ(qam_unmap_symbol({nan, nan}, Modulation::kQpsk), (Bits{0, 0}));

  // A NaN-poisoned stream demodulates to the right number of well-formed
  // bits instead of UB.
  const CVec poisoned(5, Complex{nan, nan});
  const Bits all = qam_demodulate(poisoned, Modulation::k64Qam);
  ASSERT_EQ(all.size(), 30u);
  for (const auto bit : all) EXPECT_LE(bit, 1);
}

// --- OFDM symbols -------------------------------------------------------------------

TEST(OfdmSymbol, BuildExtractRoundTrip) {
  itb::dsp::Xoshiro256 rng(51);
  CVec data(kDataCarriers);
  for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const CVec sym = build_ofdm_symbol(data, 3);
  ASSERT_EQ(sym.size(), kSymbolSamples);
  const CVec back = extract_ofdm_symbol(sym, 3);
  for (std::size_t i = 0; i < kDataCarriers; ++i) {
    EXPECT_NEAR(std::abs(back[i] - data[i]), 0.0, 1e-9) << "carrier " << i;
  }
}

TEST(OfdmSymbol, CyclicPrefixMatchesTail) {
  CVec data(kDataCarriers, Complex{0.5, -0.5});
  const CVec sym = build_ofdm_symbol(data, 0);
  for (std::size_t i = 0; i < kCpLen; ++i) {
    EXPECT_NEAR(std::abs(sym[i] - sym[kFftSize + i]), 0.0, 1e-12);
  }
}

TEST(OfdmSymbol, DataSubcarrierLayout) {
  // 48 data carriers, skipping DC and the four pilots.
  std::set<int> seen;
  for (std::size_t i = 0; i < kDataCarriers; ++i) {
    const int k = data_subcarrier_index(i);
    EXPECT_NE(k, 0);
    EXPECT_NE(std::abs(k), 7);
    EXPECT_NE(std::abs(k), 21);
    EXPECT_GE(k, -26);
    EXPECT_LE(k, 26);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), kDataCarriers);
}

TEST(OfdmSymbol, PilotPolarityIsCyclic127) {
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(pilot_polarity(i), pilot_polarity(i + 127));
  }
}

TEST(OfdmSymbol, PreambleLengths) {
  EXPECT_EQ(short_training_field().size(), 160u);
  EXPECT_EQ(long_training_field().size(), 160u);
}

TEST(OfdmSymbol, StfIsPeriodic16) {
  const CVec stf = short_training_field();
  for (std::size_t i = 0; i + 16 < stf.size(); ++i) {
    EXPECT_NEAR(std::abs(stf[i] - stf[i + 16]), 0.0, 1e-9);
  }
}

TEST(OfdmSymbol, LtfPeriodsIdentical) {
  const CVec ltf = long_training_field();
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(ltf[32 + i] - ltf[96 + i]), 0.0, 1e-9);
  }
}

TEST(OfdmSymbol, SignalSymbolRoundTrip) {
  const CVec sym = build_signal_symbol(OfdmRate::k36, 666);
  SignalField out;
  ASSERT_TRUE(parse_signal_symbol(sym, out));
  EXPECT_EQ(out.rate, OfdmRate::k36);
  EXPECT_EQ(out.length_bytes, 666u);
}

// --- OFDM TX -> RX -------------------------------------------------------------------

class OfdmLoopback : public ::testing::TestWithParam<OfdmRate> {};

TEST_P(OfdmLoopback, CleanDecode) {
  OfdmTxConfig txcfg;
  txcfg.rate = GetParam();
  txcfg.scrambler_seed = 0x47;
  const OfdmTransmitter tx(txcfg);
  itb::dsp::Xoshiro256 rng(61);
  Bytes psdu(54);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const OfdmTxResult t = tx.transmit(psdu);

  const OfdmReceiver rx;
  const auto r = rx.receive(t.baseband);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->signal_ok);
  EXPECT_EQ(r->rate, GetParam());
  EXPECT_EQ(r->scrambler_seed, 0x47);
  ASSERT_GE(r->psdu.size(), psdu.size());
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    EXPECT_EQ(r->psdu[i], psdu[i]) << "byte " << i;
  }
}

TEST_P(OfdmLoopback, DecodeAt25DbSnr) {
  OfdmTxConfig txcfg;
  txcfg.rate = GetParam();
  const OfdmTransmitter tx(txcfg);
  itb::dsp::Xoshiro256 rng(62);
  Bytes psdu(27);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const OfdmTxResult t = tx.transmit(psdu);
  const CVec noisy = itb::channel::add_noise_snr(t.baseband, 25.0, rng);

  const OfdmReceiver rx;
  const auto r = rx.receive(noisy);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->signal_ok);
  ASSERT_GE(r->psdu.size(), psdu.size());
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    EXPECT_EQ(r->psdu[i], psdu[i]) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, OfdmLoopback,
                         ::testing::Values(OfdmRate::k6, OfdmRate::k12,
                                           OfdmRate::k24, OfdmRate::k36,
                                           OfdmRate::k54));

TEST(OfdmRx, NoFrameInNoise) {
  itb::dsp::Xoshiro256 rng(63);
  CVec noise(8000);
  for (auto& v : noise) v = rng.complex_gaussian(1.0);
  const OfdmReceiver rx;
  EXPECT_FALSE(rx.receive(noise).has_value());
}

TEST(OfdmRx, FrameAtOffsetIsFound) {
  OfdmTxConfig txcfg;
  const OfdmTransmitter tx(txcfg);
  const OfdmTxResult t = tx.transmit(Bytes{1, 2, 3, 4, 5, 6, 7, 8});
  itb::dsp::Xoshiro256 rng(64);
  CVec stream(1000, Complex{0, 0});
  for (auto& v : stream) v = rng.complex_gaussian(1e-6);
  stream.insert(stream.end(), t.baseband.begin(), t.baseband.end());
  const OfdmReceiver rx;
  const auto r = rx.receive(stream);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(static_cast<double>(r->frame_start), 1000.0, 2.0);
}

// --- scrambler seeds (§4.4) -----------------------------------------------------------

TEST(Chipset, IncrementPolicySequence) {
  SeedSequencer seq(ar9580(), 1, 10);
  EXPECT_EQ(seq.next(), 10);
  EXPECT_EQ(seq.next(), 11);
  EXPECT_EQ(seq.next(), 12);
}

TEST(Chipset, IncrementWrapsWithoutZero) {
  SeedSequencer seq(ar5001g(), 1, 127);
  EXPECT_EQ(seq.next(), 127);
  EXPECT_EQ(seq.next(), 1);  // wraps past zero (seed 0 is illegal)
}

TEST(Chipset, FixedPolicyHoldsSeed) {
  SeedSequencer seq(ath5k_fixed(0x5A), 1);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(seq.next(), 0x5A);
}

TEST(Chipset, ClassifierSeparatesPolicies) {
  std::vector<std::uint8_t> inc = {5, 6, 7, 8, 9};
  std::vector<std::uint8_t> fixed = {9, 9, 9, 9};
  std::vector<std::uint8_t> random = {3, 90, 14, 77};
  EXPECT_TRUE(classify_seeds(inc).looks_incrementing);
  EXPECT_FALSE(classify_seeds(inc).looks_fixed);
  EXPECT_TRUE(classify_seeds(fixed).looks_fixed);
  EXPECT_FALSE(classify_seeds(random).looks_incrementing);
  EXPECT_FALSE(classify_seeds(random).looks_fixed);
}

TEST(Chipset, SeedTrackingThroughReceiver) {
  // The paper's §4.4 methodology end-to-end: transmit frames with an
  // incrementing-seed chipset, recover seeds with the OFDM receiver, and
  // classify the policy.
  SeedSequencer seq(ar5007g(), 1, 0x30);
  std::vector<std::uint8_t> observed;
  const OfdmReceiver rx;
  for (int frame = 0; frame < 4; ++frame) {
    OfdmTxConfig txcfg;
    txcfg.rate = OfdmRate::k36;
    txcfg.scrambler_seed = seq.next();
    const OfdmTransmitter tx(txcfg);
    const OfdmTxResult t = tx.transmit(Bytes{0x11, 0x22, 0x33, 0x44});
    const auto r = rx.receive(t.baseband);
    ASSERT_TRUE(r.has_value());
    observed.push_back(r->scrambler_seed);
  }
  EXPECT_TRUE(classify_seeds(observed).looks_incrementing);
}

// --- AM downlink (§2.4) -----------------------------------------------------------------

TEST(AmDownlink, ConstantSymbolDataBitsScrambleToFill) {
  AmDownlinkConfig cfg;
  cfg.scrambler_seed = 0x2F;
  cfg.constant_fill = 1;
  AmDownlinkEncoder enc(cfg, 1);
  const auto& p = ofdm_params(cfg.rate);
  const Bits data = enc.constant_symbol_data_bits(p.n_dbps * 3, p.n_dbps);
  const Bits seq = itb::phy::OfdmScrambler::sequence(0x2F, p.n_dbps * 4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ((data[i] ^ seq[p.n_dbps * 3 + i]) & 1, 1);
  }
}

TEST(AmDownlink, ConstantSymbolConcentratesEnergyInFirstSample) {
  AmDownlinkConfig cfg;
  AmDownlinkEncoder enc(cfg, 2);
  const Bits message = {1};  // one constant symbol after two random ones
  const AmFrame frame = enc.encode(message);

  // Data symbols start after STF+LTF+SIGNAL = 400 samples; the constant
  // symbol is the third data symbol (header, random, constant).
  const std::size_t const_start = 400 + 2 * kSymbolSamples;
  const std::span<const Complex> sym(frame.tx.baseband.data() + const_start,
                                     kSymbolSamples);
  // First post-CP sample carries most of the energy; the residual ripple
  // comes from the four pilot subcarriers the payload cannot control.
  Real first = std::abs(sym[kCpLen]);
  Real rest = 0.0;
  for (std::size_t i = kCpLen + 8; i < kSymbolSamples; ++i) {
    rest = std::max(rest, std::abs(sym[i]));
  }
  EXPECT_GT(first, 3.0 * rest);
}

TEST(AmDownlink, RandomSymbolsKeepHighEnvelope) {
  AmDownlinkConfig cfg;
  AmDownlinkEncoder enc(cfg, 3);
  const Bits message = {0, 0};
  const AmFrame frame = enc.encode(message);
  const auto r = decode_am_envelope(frame.tx.baseband,
                                    frame.symbol_is_constant.size());
  // All symbols random -> all envelopes similar.
  for (std::size_t s = 1; s < r.symbol_envelope.size(); ++s) {
    EXPECT_GT(r.symbol_envelope[s], 0.4 * r.symbol_envelope[0]);
  }
}

TEST(AmDownlink, EnvelopeDecodeRoundTrip) {
  AmDownlinkConfig cfg;
  cfg.scrambler_seed = 0x63;
  AmDownlinkEncoder enc(cfg, 4);
  const Bits message = {1, 0, 1, 1, 0, 0, 1, 0};
  const AmFrame frame = enc.encode(message);
  const auto r = decode_am_envelope(frame.tx.baseband,
                                    frame.symbol_is_constant.size());
  ASSERT_GE(r.bits.size(), message.size());
  for (std::size_t i = 0; i < message.size(); ++i) {
    EXPECT_EQ(r.bits[i], message[i]) << "bit " << i;
  }
}

TEST(AmDownlink, PeakDetectorDecodesMessage) {
  AmDownlinkConfig cfg;
  AmDownlinkEncoder enc(cfg, 5);
  const Bits message = {1, 1, 0, 1, 0, 0, 0, 1, 1, 0};
  const AmFrame frame = enc.encode(message);

  itb::backscatter::PeakDetectorConfig pdc;
  pdc.sensitivity_dbm = -90.0;  // strong signal in this test
  const itb::backscatter::PeakDetector pd(pdc);
  const Bits out =
      pd.decode_am(frame.tx.baseband, 400, kSymbolSamples, message.size());
  EXPECT_EQ(out, message);
}

TEST(AmDownlink, PeakDetectorSurvivesNoise) {
  AmDownlinkConfig cfg;
  AmDownlinkEncoder enc(cfg, 6);
  const Bits message = {1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0};
  const AmFrame frame = enc.encode(message);
  itb::dsp::Xoshiro256 rng(66);
  const CVec noisy = itb::channel::add_noise_snr(frame.tx.baseband, 15.0, rng);

  itb::backscatter::PeakDetectorConfig pdc;
  pdc.sensitivity_dbm = -90.0;
  const itb::backscatter::PeakDetector pd(pdc);
  const Bits out = pd.decode_am(noisy, 400, kSymbolSamples, message.size());
  ASSERT_EQ(out.size(), message.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < message.size(); ++i) errors += out[i] != message[i];
  EXPECT_LE(errors, 1u);
}

TEST(AmDownlink, FrameIsStillValid80211g) {
  // The AM frame must decode as a normal 802.11g frame on a standard
  // receiver — AM rides on legal payloads.
  AmDownlinkConfig cfg;
  cfg.scrambler_seed = 0x19;
  AmDownlinkEncoder enc(cfg, 7);
  const AmFrame frame = enc.encode({1, 0, 1});
  const OfdmReceiver rx;
  const auto r = rx.receive(frame.tx.baseband);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->signal_ok);
  EXPECT_EQ(r->scrambler_seed, 0x19);
}

TEST(AmDownlink, BitrateIs125Kbps) {
  AmDownlinkConfig cfg;
  AmDownlinkEncoder enc(cfg, 8);
  const AmFrame frame = enc.encode(Bits(10, 1));
  // 10 bits need 1 header + 20 data symbols = 21 symbols of 4 us; rate =
  // bits / data-symbol time.
  const double data_us =
      static_cast<double>(frame.symbol_is_constant.size() - 1) * 4.0;
  EXPECT_NEAR(10.0 / data_us * 1e3, 125.0, 1.0);
}

}  // namespace
}  // namespace itb::wifi
