// Resilience tests (ISSUE 6): fault injection, link-layer ARQ, AP
// failover and rate fallback inside the network simulator — including the
// acceptance criteria that a fault-injected 1000-tag ward run is
// bit-identical at 1/2/8 threads and that ARQ + fallback recovers >= 95%
// delivery ratio where the no-ARQ baseline drops the affected polls.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mac/arq.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/stats.h"
#include "sim/topology.h"

namespace itb::sim {
namespace {

// --- fault schedule + timeline ----------------------------------------------

TEST(Faults, TimelineQueriesAreIntervalExact) {
  FaultSchedule sched;
  sched.ap_outage(1, 100.0, 50.0)
      .interference(6, 200.0, 100.0, 20.0)
      .brownout(3, 400.0, 10.0)
      .snr_slump(250.0, 100.0, 6.0);
  const std::vector<unsigned> channels = {1, 6, 11};
  const FaultTimeline tl(sched, /*num_aps=*/2, channels, /*num_tags=*/5);
  ASSERT_TRUE(tl.any());

  EXPECT_FALSE(tl.ap_down(1, 99.0));
  EXPECT_TRUE(tl.ap_down(1, 100.0));
  EXPECT_TRUE(tl.ap_down(1, 149.0));
  EXPECT_FALSE(tl.ap_down(1, 150.0));  // half-open interval
  EXPECT_FALSE(tl.ap_down(0, 120.0));  // other AP unaffected

  EXPECT_TRUE(tl.tag_browned_out(3, 405.0));
  EXPECT_FALSE(tl.tag_browned_out(2, 405.0));

  // Group 1 is channel 6: burst only; burst + slump add in dB where they
  // overlap; the slump alone reaches every group.
  EXPECT_DOUBLE_EQ(tl.channel_noise_rise_db(1, 210.0), 20.0);
  EXPECT_DOUBLE_EQ(tl.channel_noise_rise_db(1, 260.0), 26.0);
  EXPECT_DOUBLE_EQ(tl.channel_noise_rise_db(0, 260.0), 6.0);
  EXPECT_DOUBLE_EQ(tl.channel_noise_rise_db(1, 500.0), 0.0);

  // Only interference occupies the channel (CCA); slumps never do.
  EXPECT_NEAR(tl.channel_busy_boost(1, 210.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(tl.channel_busy_boost(0, 260.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.channel_busy_boost(1, 500.0), 0.0);
}

TEST(Faults, GeneratedScheduleIsSeedDeterministic) {
  FaultProfile profile;
  profile.horizon_us = 10e6;
  profile.outages_per_ap = 1.0;
  profile.bursts_per_channel = 2.0;
  profile.brownouts_per_tag = 0.5;
  profile.snr_slumps = 2.0;
  const std::vector<unsigned> channels = {1, 6, 11};

  const FaultSchedule a = generate_fault_schedule(profile, 4, channels, 50, 9);
  const FaultSchedule b = generate_fault_schedule(profile, 4, channels, 50, 9);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].entity, b.events[i].entity);
    EXPECT_DOUBLE_EQ(a.events[i].start_us, b.events[i].start_us);
    EXPECT_DOUBLE_EQ(a.events[i].duration_us, b.events[i].duration_us);
  }
  // Every event lands inside the horizon with a positive duration.
  for (const FaultEvent& ev : a.events) {
    EXPECT_GE(ev.start_us, 0.0);
    EXPECT_LT(ev.start_us, profile.horizon_us);
    EXPECT_GT(ev.duration_us, 0.0);
  }
  const FaultSchedule c =
      generate_fault_schedule(profile, 4, channels, 50, 10);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].start_us != c.events[i].start_us;
  }
  EXPECT_TRUE(differs);
}

// --- network integration -----------------------------------------------------

/// Strong short-range links on one channel with a clean medium: the only
/// stochastic loss is the downlink error rate, giving a known per-attempt
/// success probability for the closed-form comparison.
NetworkConfig clean_grid_config() {
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kGrid;
  cfg.topology.num_tags = 200;
  cfg.topology.extent_m = 3.0;
  cfg.topology.num_helpers = 9;
  cfg.topology.num_aps = 2;
  cfg.wifi_channels = {6};
  cfg.tag_medium_loss_db = 0.0;
  cfg.payload_bytes = 16;
  cfg.ambient_busy_probability = 0.0;
  cfg.reservation = mac::ReservationScheme::kNone;
  cfg.polling.downlink_error_rate = 0.0;
  cfg.seed = 31;
  return cfg;
}

TEST(Resilience, ArqDeliveryRatioMatchesGeometricClosedForm) {
  // Per-attempt success is pinned by the downlink error rate (reply links
  // are near-perfect), so the measured delivery ratio must match
  // arq_delivery_probability(p, n) and the retry histogram's mean the
  // conditional geometric mean.
  const double p = 0.6;
  const std::size_t attempts = 4;
  NetworkConfig cfg = clean_grid_config();
  cfg.polling.downlink_error_rate = 1.0 - p;
  cfg.rounds = 40;
  cfg.enable_arq = true;
  cfg.arq.max_attempts = attempts;
  cfg.arq.retry_budget = 100;
  cfg.arq.backoff_base_slots = 0;  // retry every round: pure geometric

  const NetworkStats s = NetworkCoordinator(cfg).run();
  const std::uint64_t completed = s.messages_delivered + s.messages_dropped;
  ASSERT_GT(completed, 1000u);
  EXPECT_NEAR(s.delivery_ratio, mac::arq_delivery_probability(p, attempts),
              0.02);
  // E[attempts | delivered] = sum k p q^{k-1} / (1 - q^n).
  double cond = 0.0;
  for (std::size_t k = 1; k <= attempts; ++k) {
    cond += static_cast<double>(k) * p *
            std::pow(1.0 - p, static_cast<double>(k - 1));
  }
  cond /= mac::arq_delivery_probability(p, attempts);
  EXPECT_NEAR(s.retry_histogram.mean_attempts(), cond, 0.1);
  EXPECT_GT(s.retransmissions, 0u);

  // Without ARQ the same channel delivers only p of its polls.
  cfg.enable_arq = false;
  const NetworkStats base = NetworkCoordinator(cfg).run();
  EXPECT_NEAR(base.delivery_ratio, p, 0.02);
  EXPECT_EQ(base.retransmissions, 0u);
}

TEST(Resilience, PollPartitionHoldsUnderFaultsAndArq) {
  // Every scheduled poll resolves to exactly one outcome class, faults or
  // not — the fault taxonomy extends the old partition, never leaks.
  NetworkConfig cfg = clean_grid_config();
  cfg.topology.num_tags = 90;
  cfg.rounds = 12;
  cfg.enable_arq = true;
  cfg.arq.backoff_base_slots = 1;
  cfg.ambient_busy_probability = 0.1;
  cfg.reservation = mac::ReservationScheme::kDataAsRts;
  cfg.polling.downlink_error_rate = 0.05;
  FaultProfile profile;
  profile.horizon_us = 90.0 * 12.0 * 21000.0;
  profile.outages_per_ap = 1.0;
  profile.bursts_per_channel = 2.0;
  profile.burst_mean_us = 2e6;
  profile.brownouts_per_tag = 0.4;
  profile.brownout_mean_us = 5e5;
  profile.snr_slumps = 1.0;
  cfg.faults = generate_fault_schedule(profile, cfg.topology.num_aps,
                                       cfg.wifi_channels,
                                       cfg.topology.num_tags, 5);
  ASSERT_FALSE(cfg.faults.empty());

  const NetworkStats s = NetworkCoordinator(cfg).run();
  EXPECT_EQ(s.queries_sent, 90u * 12u);
  EXPECT_EQ(s.queries_sent,
            s.replies_received + s.downlink_misses + s.reservation_denied +
                s.collisions + s.decode_failures + s.backoff_skips +
                s.brownout_skips + s.outage_skips + s.link_down_polls);
  EXPECT_GT(s.brownout_skips + s.outage_skips, 0u);
  // Message accounting closes: offered = delivered + dropped + in flight.
  EXPECT_GE(s.messages_offered, s.messages_delivered + s.messages_dropped);
  EXPECT_GE(s.energy_per_delivered_byte_nj, 0.0);
  EXPECT_FALSE(std::isnan(s.energy_per_delivered_byte_nj));
}

TEST(Resilience, FaultInjected1000TagRunBitIdenticalAcrossThreads) {
  // Acceptance criterion: the full resilience machinery — generated fault
  // schedule, ARQ with backoff, AP failover, rate + ZigBee fallback —
  // stays bit-identical (FNV digest over every stat) at 1, 2 and 8
  // threads.
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kHospitalWard;
  cfg.topology.num_tags = 1000;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = 4;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 4;
  cfg.shard_tags = 64;  // many shards so threading actually interleaves
  cfg.seed = 77;
  cfg.enable_arq = true;
  cfg.arq.max_attempts = 6;
  cfg.arq.backoff_base_slots = 1;
  cfg.fallback.enable_rate_fallback = true;
  cfg.fallback.enable_zigbee_fallback = true;
  cfg.ap_failover = true;
  FaultProfile profile;
  profile.horizon_us = 1000.0 / 3.0 * 4.0 * 21000.0;
  profile.outages_per_ap = 1.5;
  profile.outage_mean_us = 3e6;
  profile.bursts_per_channel = 2.0;
  profile.burst_mean_us = 1e6;
  profile.brownouts_per_tag = 0.3;
  profile.snr_slumps = 2.0;
  cfg.faults = generate_fault_schedule(profile, cfg.topology.num_aps,
                                       cfg.wifi_channels,
                                       cfg.topology.num_tags, cfg.seed);
  ASSERT_FALSE(cfg.faults.empty());

  cfg.num_threads = 1;
  const NetworkStats s1 = NetworkCoordinator(cfg).run();
  cfg.num_threads = 2;
  const NetworkStats s2 = NetworkCoordinator(cfg).run();
  cfg.num_threads = 8;
  const NetworkStats s8 = NetworkCoordinator(cfg).run();

  ASSERT_EQ(s1.per_tag.size(), 1000u);
  EXPECT_EQ(s1.digest(), s2.digest());
  EXPECT_EQ(s1.digest(), s8.digest());
  // The fault machinery actually fired (otherwise this test proves
  // nothing about its determinism).
  EXPECT_GT(s1.brownout_skips, 0u);
  EXPECT_GT(s1.outage_skips + s1.failover_polls, 0u);
  EXPECT_GT(s1.retransmissions, 0u);
  EXPECT_GT(s1.recovery_time.total, 0u);
}

TEST(Resilience, GoldenApOutageFailoverRecoveryTimeline) {
  // Hand-built schedule on a deterministic link (no stochastic losses):
  // the per-poll trace must show, event by event, delivery -> outage ->
  // recovery without failover, and delivery via the backup AP with it.
  NetworkConfig cfg = clean_grid_config();
  cfg.topology.num_tags = 2;
  cfg.topology.num_helpers = 2;
  cfg.topology.num_aps = 2;
  cfg.rounds = 6;
  cfg.keep_trace = true;

  // Learn tag 0's primary/failover APs from a fault-free build, then
  // target the outage at exactly that primary.
  cfg.ap_failover = true;
  const NetworkCoordinator probe(cfg);
  const std::uint32_t primary = probe.links()[0].ap;
  ASSERT_TRUE(probe.links()[0].has_failover);
  const std::uint32_t backup = probe.links()[0].failover_ap;
  ASSERT_NE(primary, backup);

  // Tag 0 polls at r * round_us with round_us = 2 * 20160 us; the window
  // [70 ms, 130 ms) covers exactly its round-2 and round-3 queries.
  cfg.faults.ap_outage(primary, 70e3, 60e3);

  const auto tag0_trace = [](const NetworkStats& s) {
    std::vector<PollRecord> t;
    for (const PollRecord& r : s.trace) {
      if (r.tag == 0) t.push_back(r);
    }
    return t;
  };

  cfg.ap_failover = false;
  const NetworkStats plain = NetworkCoordinator(cfg).run();
  const std::vector<PollRecord> pt = tag0_trace(plain);
  ASSERT_EQ(pt.size(), 6u);
  const PollOutcome expected[] = {
      PollOutcome::kDelivered, PollOutcome::kDelivered,
      PollOutcome::kApOutage,  PollOutcome::kApOutage,
      PollOutcome::kDelivered, PollOutcome::kDelivered};
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(pt[r].round, r);
    EXPECT_EQ(pt[r].outcome, expected[r]) << "round " << r;
  }
  // The disruption opened at the round-2 query and healed at the round-4
  // delivery: recovery spans roughly two TDMA rounds.
  ASSERT_GT(plain.recovery_time.total, 0u);
  EXPECT_GT(plain.recovery_time.max_us, 70e3);
  EXPECT_LT(plain.recovery_time.max_us, 130e3);
  // Tag 0 skipped exactly its two in-window polls; tag 1 may associate
  // with the other AP, so only the per-tag count is pinned.
  ASSERT_EQ(plain.per_tag.size(), 2u);
  EXPECT_EQ(plain.per_tag[0].outage_skips, 2u);
  EXPECT_GE(plain.outage_skips, 2u);

  // With failover every poll still delivers; rounds 2-3 ride the backup.
  cfg.ap_failover = true;
  const NetworkStats fo = NetworkCoordinator(cfg).run();
  const std::vector<PollRecord> ft = tag0_trace(fo);
  ASSERT_EQ(ft.size(), 6u);
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(ft[r].outcome, PollOutcome::kDelivered) << "round " << r;
    EXPECT_EQ(ft[r].ap, (r == 2 || r == 3) ? backup : primary)
        << "round " << r;
  }
  EXPECT_EQ(fo.outage_skips, 0u);
  ASSERT_EQ(fo.per_tag.size(), 2u);
  EXPECT_EQ(fo.per_tag[0].failover_polls, 2u);
  EXPECT_EQ(fo.recovery_time.total, 0u);  // nothing was ever disrupted
}

TEST(Resilience, ArqWithFallbackRecoversDeliveryUnderFaults) {
  // Acceptance criterion: under an AP outage plus per-channel interference
  // bursts, ARQ + rate fallback holds >= 95% delivery ratio while the
  // no-ARQ baseline (same faults, same seed) drops the affected polls.
  // A dense deployment where the fault-free links are healthy (the default
  // -32 dBm peak detector limits the downlink to ~2 m, so a sparse ward is
  // link-limited rather than fault-limited; here an LNA-assisted wake
  // receiver at -60 dBm makes geometry a non-issue and faults the dominant
  // loss mechanism).
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kGrid;
  cfg.topology.num_tags = 240;
  cfg.topology.extent_m = 10.0;
  cfg.topology.num_helpers = 36;
  cfg.topology.num_aps = 4;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 10;
  cfg.ambient_busy_probability = 0.05;
  cfg.tag_medium_loss_db = 0.0;
  cfg.detector_sensitivity_dbm = -60.0;
  cfg.seed = 12;
  // 80 tags/channel -> round ~1.6 s, timeline ~16 s. One AP reboots for
  // 4 s; every channel takes a 3 s interference burst mid-run.
  cfg.faults.ap_outage(0, 2e6, 4e6);
  for (const unsigned ch : {1u, 6u, 11u}) {
    cfg.faults.interference(ch, 5e6, 3e6, 25.0);
  }

  NetworkConfig arq_cfg = cfg;
  arq_cfg.enable_arq = true;
  arq_cfg.arq.max_attempts = 8;
  arq_cfg.arq.retry_budget = 16;
  arq_cfg.arq.backoff_base_slots = 0;
  arq_cfg.fallback.enable_rate_fallback = true;
  arq_cfg.fallback.enable_zigbee_fallback = true;
  arq_cfg.fallback.down_after_failures = 2;
  arq_cfg.ap_failover = true;

  const NetworkStats base = NetworkCoordinator(cfg).run();
  const NetworkStats arq = NetworkCoordinator(arq_cfg).run();

  // The baseline really lost the affected polls: interference turned into
  // dropped messages, the outage into skipped slots.
  EXPECT_GT(base.messages_dropped, 0u);
  EXPECT_GT(base.outage_skips, 0u);
  EXPECT_LT(base.delivery_ratio, 0.93);

  EXPECT_GE(arq.delivery_ratio, 0.95);
  EXPECT_GT(arq.delivery_ratio, base.delivery_ratio + 0.03);
  EXPECT_GT(arq.retransmissions, 0u);
  EXPECT_GT(arq.failover_polls, 0u);
  EXPECT_GT(arq.recovery_time.total, 0u);
  EXPECT_GT(arq.energy_per_delivered_byte_nj, 0.0);
  // Goodput survives too, not just the ratio: retries convert would-be
  // losses into delivered payload.
  EXPECT_GT(arq.messages_delivered, base.messages_delivered);
}

TEST(Resilience, BackoffIdlesSlotsDeterministically) {
  // A lossy downlink with backoff enabled must idle slots (kBackoff) and
  // stay reproducible: backoff state is per-tag, so the digest contract
  // survives the extra control flow at any thread count.
  NetworkConfig cfg = clean_grid_config();
  cfg.topology.num_tags = 120;
  cfg.rounds = 16;
  cfg.shard_tags = 16;
  cfg.polling.downlink_error_rate = 0.5;
  cfg.enable_arq = true;
  cfg.arq.backoff_base_slots = 1;
  cfg.arq.backoff_cap_slots = 4;

  cfg.num_threads = 1;
  const NetworkStats a = NetworkCoordinator(cfg).run();
  cfg.num_threads = 2;
  const NetworkStats b = NetworkCoordinator(cfg).run();
  cfg.num_threads = 8;
  const NetworkStats c = NetworkCoordinator(cfg).run();
  EXPECT_GT(a.backoff_skips, 0u);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest(), c.digest());

  // Backoff trades slots for energy: with it disabled the same channel
  // makes at least as many attempts.
  NetworkConfig eager = cfg;
  eager.num_threads = 1;
  eager.arq.backoff_base_slots = 0;
  const NetworkStats e = NetworkCoordinator(eager).run();
  EXPECT_EQ(e.backoff_skips, 0u);
  EXPECT_GE(e.messages_offered + e.retransmissions,
            a.messages_offered + a.retransmissions);
}

}  // namespace
}  // namespace itb::sim
