// Tests for the deterministic spatial-hash grid (src/sim/spatial_hash.*)
// and the build-path fixes that ride with it: the grid must be
// *bit-identical* to the brute-force nearest_index() scan — including
// lowest-index tie-breaks — on every placement the simulator generates;
// nearest_index() must reject empty node sets; ward helper trimming must
// select centered strides; and the network digests the grid-backed build
// produces must match the pre-grid values at 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/rng.h"
#include "sim/network.h"
#include "sim/spatial_hash.h"
#include "sim/topology.h"

namespace itb::sim {
namespace {

/// Reference semantics for nearest-with-exclusion: strict < scan in index
/// order, skipping one index (what the grid's `exclude` must reproduce).
std::size_t brute_nearest(const std::vector<Vec2>& nodes, const Vec2& p,
                          std::size_t exclude = SpatialHashGrid::npos) {
  std::size_t best = SpatialHashGrid::npos;
  Real best_d = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i == exclude) continue;
    const Real d = distance_m(nodes[i], p);
    if (best == SpatialHashGrid::npos || d < best_d) {
      best = i;
      best_d = d;
    }
  }
  return best;
}

void expect_grid_matches_brute(const std::vector<Vec2>& nodes,
                               const std::vector<Vec2>& queries) {
  const SpatialHashGrid grid(nodes);
  for (const Vec2& q : queries) {
    const std::size_t want = brute_nearest(nodes, q);
    const std::size_t got = grid.nearest(q);
    ASSERT_EQ(got, want) << "query (" << q.x << ", " << q.y << ")";
    // Next-nearest via exclusion must agree too (AP failover path).
    const std::size_t want2 = brute_nearest(nodes, q, want);
    ASSERT_EQ(grid.nearest(q, want), want2)
        << "exclusion query (" << q.x << ", " << q.y << ")";
  }
}

TEST(SpatialHashGrid, MatchesBruteForceOnRandomDisk) {
  itb::dsp::Xoshiro256 rng(0xD15C0);
  for (const std::size_t n : {1u, 2u, 7u, 64u, 500u}) {
    std::vector<Vec2> nodes;
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Real r = 30.0 * std::sqrt(rng.uniform());
      const Real th = rng.uniform(0.0, itb::dsp::kTwoPi);
      nodes.push_back({30.0 + r * std::cos(th), 30.0 + r * std::sin(th)});
    }
    std::vector<Vec2> queries;
    for (std::size_t i = 0; i < 200; ++i) {
      // Half inside the disk, half well outside the bounding box (the
      // virtual-cell path).
      const Real spread = i % 2 == 0 ? 60.0 : 300.0;
      queries.push_back({rng.uniform(-spread * 0.5, spread),
                         rng.uniform(-spread * 0.5, spread)});
    }
    expect_grid_matches_brute(nodes, queries);
  }
}

TEST(SpatialHashGrid, MatchesBruteForceOnWardPlacements) {
  // The exact node sets the coordinator builds grids over: ward helpers
  // (one per room) and corridor APs (collinear midline — the degenerate
  // 1-D cell split), queried at every tag.
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kHospitalWard;
  cfg.num_tags = 2000;
  cfg.num_helpers = 0;
  cfg.num_aps = 125;
  cfg.seed = 2026;
  const Placement p = generate_topology(cfg);
  expect_grid_matches_brute(p.helpers, p.tags);
  expect_grid_matches_brute(p.aps, p.tags);
}

TEST(SpatialHashGrid, TieBreaksToLowestIndex) {
  // Queries at the exact center of a node square are equidistant from all
  // four corners: the scan keeps the lowest index, and so must the grid.
  std::vector<Vec2> nodes;
  for (std::size_t row = 0; row < 8; ++row) {
    for (std::size_t col = 0; col < 8; ++col) {
      nodes.push_back({static_cast<Real>(col), static_cast<Real>(row)});
    }
  }
  std::vector<Vec2> queries;
  for (std::size_t row = 0; row + 1 < 8; ++row) {
    for (std::size_t col = 0; col + 1 < 8; ++col) {
      queries.push_back(
          {static_cast<Real>(col) + 0.5, static_cast<Real>(row) + 0.5});
      // Midpoints of lattice edges tie two nodes; lattice points tie one
      // node at distance zero.
      queries.push_back({static_cast<Real>(col) + 0.5, static_cast<Real>(row)});
      queries.push_back({static_cast<Real>(col), static_cast<Real>(row)});
    }
  }
  expect_grid_matches_brute(nodes, queries);
}

TEST(SpatialHashGrid, DuplicateNodesResolveToLowestIndex) {
  // Coincident nodes are the hardest tie: every query distance is equal.
  std::vector<Vec2> nodes = {{5.0, 5.0}, {1.0, 1.0}, {5.0, 5.0},
                             {1.0, 1.0}, {5.0, 5.0}};
  const SpatialHashGrid grid(nodes);
  EXPECT_EQ(grid.nearest({4.9, 5.0}), 0u);
  EXPECT_EQ(grid.nearest({4.9, 5.0}, 0), 2u);
  EXPECT_EQ(grid.nearest({1.1, 1.0}), 1u);
  EXPECT_EQ(grid.nearest({1.1, 1.0}, 1), 3u);
  expect_grid_matches_brute(nodes, {{0.0, 0.0}, {3.0, 3.0}, {9.0, 9.0}});
}

TEST(SpatialHashGrid, DegenerateInputs) {
  const SpatialHashGrid empty{std::vector<Vec2>{}};
  EXPECT_EQ(empty.nearest({0.0, 0.0}), SpatialHashGrid::npos);

  const SpatialHashGrid one{std::vector<Vec2>{{2.0, 3.0}}};
  EXPECT_EQ(one.nearest({100.0, -50.0}), 0u);
  EXPECT_EQ(one.nearest({0.0, 0.0}, 0), SpatialHashGrid::npos);

  // All nodes coincident (zero-area bounding box).
  const SpatialHashGrid same{std::vector<Vec2>{{7.0, 7.0}, {7.0, 7.0}}};
  EXPECT_EQ(same.nearest({7.0, 7.0}), 0u);
  EXPECT_EQ(same.nearest({7.0, 7.0}, 0), 1u);
}

TEST(SpatialHashGrid, CollinearNodes) {
  // Corridor-midline APs: zero height, cells split along one axis only.
  std::vector<Vec2> nodes;
  for (std::size_t i = 0; i < 100; ++i) {
    nodes.push_back({static_cast<Real>(i) * 1.7, 4.0});
  }
  itb::dsp::Xoshiro256 rng(0xA11EE);
  std::vector<Vec2> queries;
  for (std::size_t i = 0; i < 300; ++i) {
    queries.push_back({rng.uniform(-20.0, 200.0), rng.uniform(-40.0, 40.0)});
  }
  expect_grid_matches_brute(nodes, queries);
}

// --- build-path fixes --------------------------------------------------------

TEST(Topology, NearestIndexThrowsOnEmptyNodeSet) {
  EXPECT_THROW(nearest_index({}, {0.0, 0.0}), std::invalid_argument);
}

TEST(Topology, WardHelperTrimmingIsCentered) {
  TopologyConfig full;
  full.kind = TopologyKind::kHospitalWard;
  full.num_tags = 96;  // 24 rooms at 4 beds/room
  full.num_helpers = 0;
  full.seed = 7;
  const Placement all = generate_topology(full);
  ASSERT_EQ(all.helpers.size(), 24u);

  TopologyConfig trimmed = full;
  trimmed.num_helpers = 6;
  const Placement few = generate_topology(trimmed);
  ASSERT_EQ(few.helpers.size(), 6u);
  // Helper i sits at the center of the i-th of 6 equal room spans:
  // index (2i+1)*24/12 = 2, 6, 10, 14, 18, 22 — never room 0, no bias
  // toward the corridor start.
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t want = (2 * i + 1) * 24 / 12;
    EXPECT_DOUBLE_EQ(few.helpers[i].x, all.helpers[want].x) << "helper " << i;
    EXPECT_DOUBLE_EQ(few.helpers[i].y, all.helpers[want].y) << "helper " << i;
  }
}

// --- digest preservation across the build rework -----------------------------

NetworkConfig bench_config(std::size_t tags) {
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kHospitalWard;
  cfg.topology.num_tags = tags;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = std::max<std::size_t>(6, (tags + 3) / 16);
  cfg.detector_sensitivity_dbm = -49.0;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 8;
  cfg.seed = 2026;
  cfg.keep_per_tag = true;
  return cfg;
}

TEST(NetworkScaleDigest, PinnedAcrossThreadCounts) {
  // The BM_NetScale digests as measured before the spatial-hash/streaming
  // rework. The grid, the per-channel preset cache, the parallel build,
  // and the shard-local stats must all leave them bit-identical — at any
  // thread count.
  const struct {
    std::size_t tags;
    std::uint64_t digest;
  } pins[] = {
      {100, 0xe5c595d5bcb894e3ULL},
      {1000, 0x9a0a25270a377b61ULL},
      {5000, 0xe64c9f68c0170ce7ULL},
  };
  for (const auto& pin : pins) {
    NetworkConfig cfg = bench_config(pin.tags);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      cfg.num_threads = threads;
      EXPECT_EQ(NetworkCoordinator(cfg).run().digest(), pin.digest)
          << pin.tags << " tags, " << threads << " threads";
    }
  }
}

TEST(NetworkScaleDigest, StreamingStatsAreThreadCountInvariant) {
  // keep_per_tag=false takes the streaming per-shard aggregation path; its
  // digest must be its own pure function of the config.
  NetworkConfig cfg = bench_config(1000);
  cfg.keep_per_tag = false;
  cfg.num_threads = 1;
  const NetworkStats base = NetworkCoordinator(cfg).run();
  EXPECT_TRUE(base.per_tag.empty());
  for (const std::size_t threads : {2u, 8u}) {
    cfg.num_threads = threads;
    EXPECT_EQ(NetworkCoordinator(cfg).run().digest(), base.digest())
        << threads << " threads";
  }
}

TEST(NetworkScaleDigest, StreamingCountersMatchPerTagPath) {
  // The streaming fold must count exactly what the per-tag reduction
  // counts; only FP summation order may differ between the two paths.
  NetworkConfig cfg = bench_config(1000);
  const NetworkStats kept = NetworkCoordinator(cfg).run();
  cfg.keep_per_tag = false;
  const NetworkStats streamed = NetworkCoordinator(cfg).run();

  EXPECT_EQ(streamed.queries_sent, kept.queries_sent);
  EXPECT_EQ(streamed.replies_received, kept.replies_received);
  EXPECT_EQ(streamed.downlink_misses, kept.downlink_misses);
  EXPECT_EQ(streamed.reservation_denied, kept.reservation_denied);
  EXPECT_EQ(streamed.collisions, kept.collisions);
  EXPECT_EQ(streamed.decode_failures, kept.decode_failures);
  EXPECT_EQ(streamed.messages_delivered, kept.messages_delivered);
  EXPECT_EQ(streamed.messages_dropped, kept.messages_dropped);
  ASSERT_EQ(streamed.channels.size(), kept.channels.size());
  for (std::size_t g = 0; g < kept.channels.size(); ++g) {
    EXPECT_EQ(streamed.channels[g].replies, kept.channels[g].replies);
    EXPECT_EQ(streamed.channels[g].collisions, kept.channels[g].collisions);
  }
  EXPECT_NEAR(streamed.aggregate_goodput_kbps, kept.aggregate_goodput_kbps,
              1e-9 * std::abs(kept.aggregate_goodput_kbps));
  EXPECT_NEAR(streamed.mean_tag_goodput_kbps, kept.mean_tag_goodput_kbps,
              1e-9 * std::abs(kept.mean_tag_goodput_kbps));
  EXPECT_NEAR(streamed.mean_airtime_duty, kept.mean_airtime_duty,
              1e-9 * std::abs(kept.mean_airtime_duty));
  EXPECT_NEAR(streamed.mean_tag_power_uw, kept.mean_tag_power_uw,
              1e-9 * std::abs(kept.mean_tag_power_uw));
}

}  // namespace
}  // namespace itb::sim
