// Tests for the 802.11b DSSS/CCK stack: Barker, DPSK, CCK, PLCP, MAC frames
// and the full transmitter -> receiver loop at all four rates.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "dsp/rng.h"
#include "wifi/barker.h"
#include "wifi/cck.h"
#include "wifi/dpsk.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"
#include "wifi/mac_frame.h"
#include "wifi/plcp.h"

namespace itb::wifi {
namespace {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;
using itb::phy::Bits;
using itb::phy::Bytes;

// --- Barker -------------------------------------------------------------------

TEST(Barker, SpreadDespreadRoundTrip) {
  const CVec symbols = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const CVec chips = spread(symbols);
  ASSERT_EQ(chips.size(), 44u);
  const CVec back = despread(chips);
  ASSERT_EQ(back.size(), symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - symbols[i]), 0.0, 1e-12);
  }
}

TEST(Barker, AutocorrelationSidelobesAreLow) {
  // Classic Barker property: aperiodic autocorrelation sidelobes <= 1
  // against a mainlobe of 11.
  for (std::size_t shift = 1; shift < 11; ++shift) {
    int acc = 0;
    for (std::size_t i = 0; i + shift < 11; ++i) {
      acc += kBarker[i] * kBarker[i + shift];
    }
    EXPECT_LE(std::abs(acc), 1) << "shift " << shift;
  }
}

TEST(Barker, ProcessingGainAgainstNoise) {
  itb::dsp::Xoshiro256 rng(1);
  const CVec symbols(50, Complex{1.0, 0.0});
  CVec chips = spread(symbols);
  // 0 dB SNR at chip level.
  chips = itb::channel::add_noise_snr(chips, 0.0, rng);
  const CVec back = despread(chips);
  // Despreading should average the noise down by ~10.4 dB.
  std::size_t correct = 0;
  for (const auto& s : back) correct += (s.real() > 0.0);
  EXPECT_EQ(correct, back.size());
}

// --- DPSK ----------------------------------------------------------------------

TEST(Dpsk, DbpskRoundTrip) {
  const Bits bits = {0, 1, 1, 0, 1, 0, 0, 1};
  const CVec sym = dbpsk_encode(bits);
  const Bits out = dbpsk_decode(sym, Complex{1.0, 0.0});
  EXPECT_EQ(out, bits);
}

TEST(Dpsk, DqpskRoundTrip) {
  const Bits bits = {0, 0, 0, 1, 1, 1, 1, 0, 0, 1, 1, 1};
  const CVec sym = dqpsk_encode(bits);
  const Bits out = dqpsk_decode(sym, Complex{1.0, 0.0});
  EXPECT_EQ(out, bits);
}

TEST(Dpsk, RotationInvariance) {
  // Differential decoding must ignore a common rotation.
  const Bits bits = {1, 0, 0, 1, 1, 1};
  CVec sym = dqpsk_encode(bits);
  const Complex rot = std::polar(1.0, 1.234);
  for (auto& s : sym) s *= rot;
  const Bits out = dqpsk_decode(sym, rot);
  EXPECT_EQ(out, bits);
}

TEST(Dpsk, PhaseIncrements) {
  EXPECT_DOUBLE_EQ(dbpsk_phase_increment(0), 0.0);
  EXPECT_DOUBLE_EQ(dbpsk_phase_increment(1), itb::dsp::kPi);
  EXPECT_DOUBLE_EQ(dqpsk_phase_increment(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dqpsk_phase_increment(0, 1), itb::dsp::kPi / 2);
  EXPECT_DOUBLE_EQ(dqpsk_phase_increment(1, 1), itb::dsp::kPi);
  EXPECT_DOUBLE_EQ(dqpsk_phase_increment(1, 0), 3 * itb::dsp::kPi / 2);
}

TEST(Dpsk, QuantizeQuarter) {
  EXPECT_EQ(quantize_quarter(0.01), 0u);
  EXPECT_EQ(quantize_quarter(itb::dsp::kPi / 2 - 0.01), 1u);
  EXPECT_EQ(quantize_quarter(-itb::dsp::kPi / 2), 3u);
  EXPECT_EQ(quantize_quarter(itb::dsp::kPi + 0.1), 2u);
}

// --- CCK -----------------------------------------------------------------------

TEST(Cck, CodewordsAreUnitMagnitude) {
  const auto cw = cck_codeword(0.3, 1.1, 2.2, 0.7);
  for (const auto& c : cw) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Cck, Base64CodewordsAreDistinct) {
  // All 64 (p2,p3,p4) combinations at 11 Mbps must give distinct codewords.
  std::vector<std::array<Complex, 8>> words;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        const Real q = itb::dsp::kPi / 2;
        words.push_back(cck_codeword(0.0, a * q, b * q, c * q));
      }
    }
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (std::size_t j = i + 1; j < words.size(); ++j) {
      Real dist = 0.0;
      for (int k = 0; k < 8; ++k) dist += std::abs(words[i][k] - words[j][k]);
      EXPECT_GT(dist, 0.5) << i << " vs " << j;
    }
  }
}

class CckRoundTrip : public ::testing::TestWithParam<DsssRate> {};

TEST_P(CckRoundTrip, CleanChannel) {
  const DsssRate rate = GetParam();
  CckModulator mod(rate);
  CckDemodulator demod(rate);
  itb::dsp::Xoshiro256 rng(2);
  Bits bits;
  const std::size_t n = rate == DsssRate::k5_5Mbps ? 4 * 50 : 8 * 50;
  for (std::size_t i = 0; i < n; ++i) bits.push_back(rng.bit());
  const CVec chips = mod.modulate(bits);
  const Bits out = demod.demodulate(chips, 0.0);
  EXPECT_EQ(out, bits);
}

TEST_P(CckRoundTrip, NoisyChannel10Db) {
  const DsssRate rate = GetParam();
  CckModulator mod(rate);
  CckDemodulator demod(rate);
  itb::dsp::Xoshiro256 rng(3);
  Bits bits;
  const std::size_t n = rate == DsssRate::k5_5Mbps ? 4 * 100 : 8 * 100;
  for (std::size_t i = 0; i < n; ++i) bits.push_back(rng.bit());
  CVec chips = mod.modulate(bits);
  chips = itb::channel::add_noise_snr(chips, 10.0, rng);
  const Bits out = demod.demodulate(chips, 0.0);
  EXPECT_EQ(itb::phy::hamming_distance(out, bits), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, CckRoundTrip,
                         ::testing::Values(DsssRate::k5_5Mbps, DsssRate::k11Mbps));

// --- PLCP ----------------------------------------------------------------------

TEST(Plcp, HeaderRoundTrip) {
  PlcpHeader hdr;
  hdr.rate = DsssRate::k5_5Mbps;
  hdr.service = PlcpHeader::service_for(hdr.rate, 100);
  hdr.length_us = length_field_us(hdr.rate, 100);
  const Bits bits = build_plcp_header_bits(hdr);
  ASSERT_EQ(bits.size(), 48u);
  const auto parsed = parse_plcp_header_bits(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rate, hdr.rate);
  EXPECT_EQ(parsed->length_us, hdr.length_us);
}

TEST(Plcp, CorruptHeaderRejected) {
  PlcpHeader hdr;
  hdr.length_us = length_field_us(hdr.rate, 64);
  Bits bits = build_plcp_header_bits(hdr);
  bits[20] ^= 1;
  EXPECT_FALSE(parse_plcp_header_bits(bits).has_value());
}

TEST(Plcp, LengthFieldAndBack) {
  for (const DsssRate r : {DsssRate::k1Mbps, DsssRate::k2Mbps,
                           DsssRate::k5_5Mbps, DsssRate::k11Mbps}) {
    for (const std::size_t n : {14u, 31u, 77u, 209u, 1024u}) {
      const std::uint16_t len = length_field_us(r, n);
      const std::uint8_t service = PlcpHeader::service_for(r, n);
      EXPECT_EQ(psdu_bytes_from_length(r, len, (service & 0x80) != 0), n)
          << rate_name(r) << " " << n << " bytes";
    }
  }
}

TEST(Plcp, SfdBitsLength) { EXPECT_EQ(sfd_bits().size(), 16u); }

// --- MAC frames ------------------------------------------------------------------

TEST(MacFrame, DataRoundTrip) {
  MacFrame f;
  f.type = FrameType::kData;
  f.duration_us = 314;
  f.addr1 = {1, 2, 3, 4, 5, 6};
  f.addr2 = {7, 8, 9, 10, 11, 12};
  f.addr3 = {13, 14, 15, 16, 17, 18};
  f.sequence = 99;
  f.body = {0xCA, 0xFE, 0xBA, 0xBE};
  const Bytes psdu = serialize(f);
  EXPECT_EQ(psdu.size(), kDataHeaderBytes + 4 + kFcsBytes);
  const auto parsed = parse(psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->frame.body, f.body);
  EXPECT_EQ(parsed->frame.addr2, f.addr2);
  EXPECT_EQ(parsed->frame.sequence, f.sequence);
}

TEST(MacFrame, ControlFrameSizes) {
  MacFrame rts;
  rts.type = FrameType::kRts;
  EXPECT_EQ(serialize(rts).size(), kRtsBytes);
  MacFrame cts;
  cts.type = FrameType::kCts;
  EXPECT_EQ(serialize(cts).size(), kCtsBytes);
  MacFrame ack;
  ack.type = FrameType::kAck;
  EXPECT_EQ(serialize(ack).size(), kAckBytes);
}

TEST(MacFrame, FcsCatchesCorruption) {
  MacFrame f;
  f.body = {1, 2, 3};
  Bytes psdu = serialize(f);
  psdu[25] ^= 0x10;
  const auto parsed = parse(psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->fcs_ok);
}

TEST(MacFrame, CtsToSelfAddressedToSender) {
  MacFrame cts;
  cts.type = FrameType::kCtsToSelf;
  cts.addr1 = {9, 9, 9, 9, 9, 9};
  const Bytes psdu = serialize(cts);
  const auto parsed = parse(psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame.addr1, cts.addr1);
}

// --- full TX -> RX -----------------------------------------------------------------

class DsssLoopback : public ::testing::TestWithParam<DsssRate> {};

TEST_P(DsssLoopback, CleanDecode) {
  DsssTxConfig txcfg;
  txcfg.rate = GetParam();
  const DsssTransmitter tx(txcfg);

  itb::dsp::Xoshiro256 rng(7);
  Bytes psdu(64);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  const DsssFrame frame = tx.modulate(psdu);
  const DsssReceiver rx;
  const auto result = rx.receive(frame.baseband);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->header_ok);
  EXPECT_EQ(result->header.rate, GetParam());
  EXPECT_EQ(result->psdu, psdu);
}

TEST_P(DsssLoopback, DecodeAt12DbSnr) {
  DsssTxConfig txcfg;
  txcfg.rate = GetParam();
  const DsssTransmitter tx(txcfg);

  itb::dsp::Xoshiro256 rng(8);
  Bytes psdu(32);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  const DsssFrame frame = tx.modulate(psdu);
  const CVec noisy = itb::channel::add_noise_snr(frame.baseband, 12.0, rng);
  const DsssReceiver rx;
  const auto result = rx.receive(noisy);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->header_ok);
  EXPECT_EQ(result->psdu, psdu);
}

TEST_P(DsssLoopback, ShortTagPreambleDecodes) {
  DsssTxConfig txcfg;
  txcfg.rate = GetParam();
  txcfg.short_tag_preamble = true;
  const DsssTransmitter tx(txcfg);

  Bytes psdu = {0xAA, 0x55, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  const DsssFrame frame = tx.modulate(psdu);
  const DsssReceiver rx;
  const auto result = rx.receive(frame.baseband);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(Rates, DsssLoopback,
                         ::testing::Values(DsssRate::k1Mbps, DsssRate::k2Mbps,
                                           DsssRate::k5_5Mbps, DsssRate::k11Mbps));

TEST(DsssLoopbackMisc, NoSignalNoDetection) {
  itb::dsp::Xoshiro256 rng(9);
  CVec noise(20000);
  for (auto& v : noise) v = rng.complex_gaussian(1.0);
  const DsssReceiver rx;
  EXPECT_FALSE(rx.receive(noise).has_value());
}

TEST(DsssLoopbackMisc, MultiSamplePerChipDecodes) {
  DsssTxConfig txcfg;
  txcfg.rate = DsssRate::k2Mbps;
  txcfg.samples_per_chip = 4;
  const DsssTransmitter tx(txcfg);
  Bytes psdu = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const DsssFrame frame = tx.modulate(psdu);
  DsssRxConfig rxcfg;
  rxcfg.samples_per_chip = 4;
  const DsssReceiver rx(rxcfg);
  const auto result = rx.receive(frame.baseband);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->psdu, psdu);
}

TEST(DsssLoopbackMisc, MacFrameOverDsssEndToEnd) {
  MacFrame f;
  f.type = FrameType::kData;
  f.body = {'h', 'e', 'l', 'l', 'o'};
  const Bytes psdu = serialize(f);

  DsssTxConfig txcfg;
  txcfg.rate = DsssRate::k2Mbps;
  const DsssTransmitter tx(txcfg);
  const DsssFrame frame = tx.modulate(psdu);
  const DsssReceiver rx;
  const auto result = rx.receive(frame.baseband);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->fcs_ok);
  const auto mac = parse(result->psdu);
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->frame.body, f.body);
}

TEST(DsssLoopbackMisc, TruncatedCaptureReportsHeaderOnly) {
  DsssTxConfig txcfg;
  txcfg.rate = DsssRate::k2Mbps;
  const DsssTransmitter tx(txcfg);
  Bytes psdu(100, 0x42);
  const DsssFrame frame = tx.modulate(psdu);
  // Cut the capture in the middle of the payload.
  const CVec cut(frame.baseband.begin(),
                 frame.baseband.begin() + frame.baseband.size() / 2);
  const DsssReceiver rx;
  const auto result = rx.receive(cut);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->header_ok);
  EXPECT_TRUE(result->psdu.empty());
}

// --- rates / payload budget (paper §2.3.3) -----------------------------------------

TEST(Rates, PaperPayloadBudget) {
  EXPECT_EQ(paper_payload_bytes(DsssRate::k2Mbps), 38u);
  EXPECT_EQ(paper_payload_bytes(DsssRate::k5_5Mbps), 104u);
  EXPECT_EQ(paper_payload_bytes(DsssRate::k11Mbps), 209u);
  // 1 Mbps does not fit a useful payload in a 248 us window.
  EXPECT_LT(paper_payload_bytes(DsssRate::k1Mbps), 20u);
}

TEST(Rates, BleDataPacketEnables1Mbps) {
  // Paper §7: 2 ms BLE data packets make 1 Mbps Wi-Fi feasible.
  EXPECT_GT(paper_payload_bytes(DsssRate::k1Mbps, 2000.0), 200u);
}

TEST(Rates, AirtimeArithmetic) {
  EXPECT_DOUBLE_EQ(psdu_airtime_us(DsssRate::k2Mbps, 250), 1000.0);
  EXPECT_DOUBLE_EQ(frame_airtime_us(DsssRate::k1Mbps, 125), 192.0 + 1000.0);
  EXPECT_EQ(max_psdu_bytes_in_window(DsssRate::k11Mbps, 192.0), 0u);
}

}  // namespace
}  // namespace itb::wifi
