// Tests for bit utilities, CRC engines and the three LFSRs (BLE whitener,
// OFDM frame-synchronous scrambler, DSSS self-synchronizing scrambler).
#include <gtest/gtest.h>

#include "phycommon/bits.h"
#include "phycommon/crc.h"
#include "phycommon/lfsr.h"

namespace itb::phy {
namespace {

const Bytes kCheckInput = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};

// --- bits -------------------------------------------------------------------

TEST(Bits, LsbFirstRoundTrip) {
  const Bytes in = {0x01, 0x80, 0xAA, 0x00, 0xFF};
  EXPECT_EQ(bits_to_bytes_lsb_first(bytes_to_bits_lsb_first(in)), in);
}

TEST(Bits, MsbFirstRoundTrip) {
  const Bytes in = {0x01, 0x80, 0xAA};
  EXPECT_EQ(bits_to_bytes_msb_first(bytes_to_bits_msb_first(in)), in);
}

TEST(Bits, LsbOrdering) {
  const Bits b = bytes_to_bits_lsb_first(Bytes{0x01});
  EXPECT_EQ(b[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(b[i], 0);
}

TEST(Bits, MsbOrdering) {
  const Bits b = bytes_to_bits_msb_first(Bytes{0x80});
  EXPECT_EQ(b[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(b[i], 0);
}

TEST(Bits, UintConversions) {
  const Bits lsb = uint_to_bits_lsb_first(0xB3, 8);
  EXPECT_EQ(bits_to_uint_lsb_first(lsb), 0xB3u);
  const Bits msb = uint_to_bits_msb_first(0xB3, 8);
  EXPECT_EQ(bits_to_uint_msb_first(msb), 0xB3u);
  // MSB-first of 0xB3 = 1011 0011.
  EXPECT_EQ(msb[0], 1);
  EXPECT_EQ(msb[1], 0);
  EXPECT_EQ(msb[2], 1);
  EXPECT_EQ(msb[3], 1);
}

TEST(Bits, XorAndHamming) {
  const Bits a = {1, 0, 1, 1};
  const Bits b = {1, 1, 0, 1};
  EXPECT_EQ(xor_bits(a, b), (Bits{0, 1, 1, 0}));
  EXPECT_EQ(hamming_distance(a, b), 2u);
}

TEST(Bits, ToStringRendering) {
  const Bits a = {1, 0, 1};
  EXPECT_EQ(to_string(a), "101");
}

TEST(Bits, ReverseBitsInBytes) {
  const Bytes in = {0x01, 0xF0};
  const Bytes out = reverse_bits_in_bytes(in);
  EXPECT_EQ(out[0], 0x80);
  EXPECT_EQ(out[1], 0x0F);
}

// --- CRC --------------------------------------------------------------------

TEST(Crc, Crc32IeeeCheckValue) {
  // Standard CRC-32 check value for the ASCII digits 1-9.
  EXPECT_EQ(crc32_ieee(kCheckInput), 0xCBF43926u);
}

TEST(Crc, Crc32DetectsSingleBitError) {
  Bytes data = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const std::uint32_t good = crc32_ieee(data);
  data[2] ^= 0x04;
  EXPECT_NE(crc32_ieee(data), good);
}

TEST(Crc, Crc16X25CheckValue) {
  // CRC-16/X-25 check value.
  EXPECT_EQ(crc16_x25(kCheckInput), 0x906E);
}

TEST(Crc, Crc16KermitStyle802154) {
  // The 802.15.4 FCS is CRC-16/KERMIT: check value 0x2189.
  EXPECT_EQ(crc16_802154(kCheckInput), 0x2189);
}

TEST(Crc, PlcpHeaderCrcMatchesGenibus) {
  // crc16_plcp is CCITT (0x1021), init 0xFFFF, ones-complement output,
  // MSB-first bits — i.e. CRC-16/GENIBUS, whose check value is 0xD64E.
  const Bits bits = bytes_to_bits_msb_first(kCheckInput);
  EXPECT_EQ(crc16_plcp(bits), 0xD64E);
}

TEST(Crc, BleCrc24Deterministic) {
  const Bits pdu = bytes_to_bits_lsb_first(Bytes{0x02, 0x07, 1, 2, 3, 4, 5, 6, 0x10});
  const std::uint32_t a = ble_crc24(pdu);
  const std::uint32_t b = ble_crc24(pdu);
  EXPECT_EQ(a, b);
  EXPECT_LT(a, 1u << 24);
}

TEST(Crc, BleCrc24SensitiveToInitAndData) {
  const Bits pdu = bytes_to_bits_lsb_first(Bytes{0x42, 0x06, 9, 8, 7, 6, 5, 4});
  EXPECT_NE(ble_crc24(pdu, 0x555555), ble_crc24(pdu, 0xAAAAAA));
  Bits flipped = pdu;
  flipped[5] ^= 1;
  EXPECT_NE(ble_crc24(pdu), ble_crc24(flipped));
}

TEST(Crc, BleCrc24BitsAreMsbFirst) {
  const Bits pdu = bytes_to_bits_lsb_first(Bytes{0x00, 0x06, 0, 0, 0, 0, 0, 0});
  const std::uint32_t crc = ble_crc24(pdu);
  const Bits bits = ble_crc24_bits(pdu);
  ASSERT_EQ(bits.size(), 24u);
  EXPECT_EQ(bits_to_uint_msb_first(bits), crc);
}

TEST(Crc, GenericEngineMatchesCrc32) {
  // CRC-32: poly 0x04C11DB7 reflected engine, init/comp 0xFFFFFFFF.
  const CrcEngine engine(32, 0x04C11DB7, 0xFFFFFFFF, true);
  EXPECT_EQ(engine.compute_bytes(kCheckInput), 0xCBF43926u);
}

TEST(Crc, GenericEngineMatchesX25) {
  const CrcEngine engine(16, 0x1021, 0xFFFF, true);
  EXPECT_EQ(engine.compute_bytes(kCheckInput), 0x906Eu);
}

// --- BLE whitener ------------------------------------------------------------

TEST(BleWhitener, IsAnInvolution) {
  const Bits data = bytes_to_bits_lsb_first(Bytes{0x12, 0x34, 0x56, 0x78, 0x9A});
  BleWhitener w1(37), w2(37);
  EXPECT_EQ(w2.process(w1.process(data)), data);
}

TEST(BleWhitener, SequenceHasPeriod127) {
  const Bits seq = BleWhitener::sequence(38, 254);
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[i], seq[i + 127]) << "position " << i;
  }
}

TEST(BleWhitener, SequenceIsBalancedOverOnePeriod) {
  // A maximal-length 7-bit LFSR emits 64 ones and 63 zeros per period.
  const Bits seq = BleWhitener::sequence(37, 127);
  std::size_t ones = 0;
  for (auto b : seq) ones += b;
  EXPECT_EQ(ones, 64u);
}

TEST(BleWhitener, DifferentChannelsGiveDifferentSequences) {
  const Bits a = BleWhitener::sequence(37, 64);
  const Bits b = BleWhitener::sequence(38, 64);
  const Bits c = BleWhitener::sequence(39, 64);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(BleWhitener, MatchesIndependentGaloisImplementation) {
  // Independent re-implementation: 7-bit register, bit6..bit0, init
  // bit6 = 1, bit5..bit0 = channel (MSB at bit5). Output = bit0? No: the
  // spec's position 6 output maps to the LSB of a value register where
  // position 0 is the MSB. Model positions as an explicit array, feedback
  // into position 0, XOR into position 4 — the same structure written
  // differently (shift direction inverted).
  const auto reference = [](unsigned ch, std::size_t n) {
    Bits out(n);
    unsigned pos[7];
    pos[0] = 1;
    for (int i = 0; i < 6; ++i) pos[1 + i] = (ch >> (5 - i)) & 1;
    for (std::size_t k = 0; k < n; ++k) {
      const unsigned fb = pos[6];
      out[k] = fb;
      unsigned next[7];
      next[0] = fb;
      for (int i = 1; i < 7; ++i) next[i] = pos[i - 1];
      next[4] ^= fb;
      std::copy(next, next + 7, pos);
    }
    return out;
  };
  for (unsigned ch : {0u, 1u, 37u, 38u, 39u, 20u}) {
    EXPECT_EQ(BleWhitener::sequence(ch, 100), reference(ch, 100)) << "ch " << ch;
  }
}

// --- OFDM scrambler ----------------------------------------------------------

TEST(OfdmScrambler, Period127) {
  const Bits seq = OfdmScrambler::sequence(0x7F, 254);
  for (std::size_t i = 0; i < 127; ++i) EXPECT_EQ(seq[i], seq[i + 127]);
}

TEST(OfdmScrambler, AllOnesSeedMatchesPilotPolarityPrefix) {
  // 802.11-2016 17.3.5.10: with the all-ones seed the generator produces the
  // 127-bit sequence whose 0->+1 / 1->-1 mapping is the pilot polarity
  // p_0.. = {1,1,1,1,-1,-1,-1,1, -1,-1,-1,-1, 1,1,-1,1 ...}.
  const Bits seq = OfdmScrambler::sequence(0x7F, 16);
  const int expect[16] = {1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(seq[i] ? -1 : 1, expect[i]) << "p_" << i;
  }
}

TEST(OfdmScrambler, ScrambleDescrambleRoundTrip) {
  const Bits data = bytes_to_bits_lsb_first(Bytes{1, 2, 3, 4, 5, 6, 7, 8});
  OfdmScrambler s1(0x35), s2(0x35);
  EXPECT_EQ(s2.process(s1.process(data)), data);
}

TEST(OfdmScrambler, SeedRecoveryFromFirstSevenBits) {
  for (std::uint8_t seed = 1; seed < 128; ++seed) {
    const Bits seq = OfdmScrambler::sequence(seed, 7);
    EXPECT_EQ(OfdmScrambler::seed_from_first_bits(seq), seed);
  }
}

TEST(OfdmScrambler, SequencesOfDifferentSeedsAreShifts) {
  // All non-zero seeds produce the same m-sequence at different phases:
  // verify seed 1's sequence appears within seed 2's doubled sequence.
  const Bits a = OfdmScrambler::sequence(1, 127);
  Bits b = OfdmScrambler::sequence(2, 254);
  bool found = false;
  for (std::size_t off = 0; off < 127 && !found; ++off) {
    found = std::equal(a.begin(), a.end(), b.begin() + off);
  }
  EXPECT_TRUE(found);
}

// --- DSSS self-synchronizing scrambler ---------------------------------------

TEST(DsssScrambler, RoundTripWithMatchingSeeds) {
  const Bits data = bytes_to_bits_lsb_first(Bytes{0xDE, 0xAD, 0xBE, 0xEF});
  DsssScrambler tx(0x6C), rx(0x6C);
  EXPECT_EQ(rx.descramble(tx.scramble(data)), data);
}

TEST(DsssScrambler, SelfSynchronizesWithWrongSeed) {
  // After 7 bits the descrambler state equals the last 7 scrambled bits,
  // regardless of its initial seed.
  Bits data(64, 1);
  DsssScrambler tx(0x6C);
  const Bits scrambled = tx.scramble(data);
  DsssScrambler rx(0x00);  // deliberately wrong
  const Bits out = rx.descramble(scrambled);
  for (std::size_t i = 7; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 1) << "bit " << i;
  }
}

TEST(DsssScrambler, ScrambledOnesLookBalanced) {
  Bits data(1024, 1);
  DsssScrambler tx(0x6C);
  const Bits scrambled = tx.scramble(data);
  std::size_t ones = 0;
  for (auto b : scrambled) ones += b;
  EXPECT_GT(ones, 400u);
  EXPECT_LT(ones, 624u);
}

}  // namespace
}  // namespace itb::phy
