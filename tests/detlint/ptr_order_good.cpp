// detlint fixture (never compiled): reproducible keying — hash and order by
// stable entity ids, never by address. Must produce zero findings.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

struct Tag {
  std::uint32_t id;
};

std::size_t hash_by_id(const Tag& tag) {
  return std::hash<std::uint32_t>{}(tag.id);
}

void sort_by_id(std::vector<Tag*>& tags) {
  std::sort(tags.begin(), tags.end(),
            [](const Tag* a, const Tag* b) { return a->id < b->id; });
}

// static_cast between integer widths is unrelated to pointer identity.
std::uint32_t narrow(std::uint64_t x) { return static_cast<std::uint32_t>(x); }
