// detlint fixture (never compiled): the three sanctioned ways to write out
// of a parallel_for body — disjoint per-index slots, atomics, and an
// explicit lock. Must produce zero findings.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "core/parallel.h"

void per_slot_writes(std::vector<double>& out) {
  itb::core::parallel_for(out.size(), 0, [&](std::size_t i) {
    double local = static_cast<double>(i);
    local += 1.0;
    out[i] = local;
  });
}

void atomic_counter(std::size_t n, std::atomic<std::size_t>& hits) {
  itb::core::parallel_for(n, 0, [&](std::size_t) {
    hits.fetch_add(1, std::memory_order_relaxed);
  });
}

void locked_accumulate(std::size_t n, double& total, std::mutex& mu) {
  itb::core::parallel_for(n, 0, [&](std::size_t i) {
    const std::lock_guard<std::mutex> lock(mu);
    total += static_cast<double>(i);
  });
}

void by_value_capture(std::size_t n) {
  double bias = 1.0;
  itb::core::parallel_for(n, 0, [bias](std::size_t i) {
    (void)(bias + static_cast<double>(i));
  });
}
