// detlint fixture (never compiled): files under a bench/ directory are
// exempt from wall-clock — measuring wall time is their whole job. Must
// produce zero findings.
#include <chrono>

double measure_once() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
