// detlint fixture (never compiled): unsynchronized by-reference mutation
// inside a core::parallel_for lambda — a data race, and even when benign the
// accumulation order depends on scheduling, which breaks the bit-identical
// digest contract.
#include <cstddef>
#include <vector>

#include "core/parallel.h"

double racy_accumulate(std::size_t n) {
  double total = 0.0;
  std::size_t hits = 0;
  std::vector<double> out(4, 0.0);
  itb::core::parallel_for(n, 8, [&](std::size_t i) {
    total += static_cast<double>(i);  // EXPECT-DETLINT: parallel-capture
    ++hits;                           // EXPECT-DETLINT: parallel-capture
    out[0] = total;                   // EXPECT-DETLINT: parallel-capture
  });
  return total + static_cast<double>(hits);
}

void racy_push(std::vector<double>& results, std::size_t n) {
  itb::core::parallel_for(n, 0, [&](std::size_t i) {
    results.push_back(static_cast<double>(i));  // EXPECT-DETLINT: parallel-capture
  });
}
