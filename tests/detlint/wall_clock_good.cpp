// detlint fixture (never compiled): compliant time/seed handling — simulated
// time from the event queue, seeds from the run config — plus identifiers
// that merely *look* like banned calls. Must produce zero findings.
#include <cstdint>

struct Event {
  double time_us;
};

// A local named `time` is a declarator, not a call.
double symbol_window(const Event& ev) {
  double time(ev.time_us);
  return time * 2.0;
}

// Member access to a same-named method is a different function entirely.
struct Frame {
  double time() const { return 0.0; }
};

double frame_time(const Frame& f) { return f.time(); }

std::uint64_t seed_from_config(std::uint64_t run_seed) {
  return run_seed ^ 0x746F706FULL;
}
