// detlint fixture (never compiled): suppression syntax — a finding on a
// line carrying `detlint: allow(<rule>)`, or on the line after a standalone
// allow comment, is silenced. Must produce zero findings.
#include <ctime>
#include <random>

#include "dsp/rng.h"

long cli_banner_timestamp() {
  return std::time(nullptr);  // detlint: allow(wall-clock) — banner only
}

double interop_reference_stream(unsigned seed_word) {
  // Cross-checks a third-party trace that was generated with libstdc++'s
  // mt19937; portability is the point of the comparison.
  // detlint: allow(rng-seed)
  std::mt19937 gen(seed_word);
  return static_cast<double>(gen());
}

long multi_rule_allow(unsigned w) {
  // detlint: allow(wall-clock, rng-seed)
  return std::time(nullptr) + std::minstd_rand(w)();
}
