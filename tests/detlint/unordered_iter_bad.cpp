// detlint fixture (never compiled): iteration over unordered containers —
// traversal order is unspecified and leaks into any stat, digest, or trace
// built from it.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

double sum_per(const std::unordered_map<std::uint32_t, double>& per_tag) {
  double total = 0.0;
  for (const auto& kv : per_tag) {  // EXPECT-DETLINT: unordered-iter
    total += kv.second;
  }
  return total;
}

std::uint64_t digest_members(const std::unordered_set<std::uint32_t>& tags) {
  std::uint64_t h = 1469598103934665603ULL;
  for (auto it = tags.begin(); it != tags.end(); ++it) {  // EXPECT-DETLINT: unordered-iter
    h = (h ^ *it) * 1099511628211ULL;
  }
  return h;
}

using StatsMap = std::unordered_map<std::uint32_t, double>;

double alias_is_still_unordered(const StatsMap& stats) {
  double total = 0.0;
  for (const auto& kv : stats) {  // EXPECT-DETLINT: unordered-iter
    total += kv.second;
  }
  return total;
}
