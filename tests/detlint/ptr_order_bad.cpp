// detlint fixture (never compiled): pointer values used for hashing or
// ordering — addresses vary run to run (ASLR, allocator state), so any
// result derived from them is irreproducible.
#include <cstdint>
#include <functional>
#include <set>

struct Tag {
  std::uint32_t id;
};

std::size_t hash_by_address(const Tag* tag) {
  return std::hash<const Tag*>{}(tag);  // EXPECT-DETLINT: ptr-order
}

using TagSet = std::set<Tag*, std::less<Tag*>>;  // EXPECT-DETLINT: ptr-order

std::uint64_t address_as_key(const Tag* tag) {
  return reinterpret_cast<std::uintptr_t>(tag);  // EXPECT-DETLINT: ptr-order
}
