// Fixture: raw vector intrinsics outside src/dsp/simd/ must be flagged.
// Kernels belong behind the dispatch table (src/dsp/simd/kernels.h) where a
// scalar reference and a bit-exactness parity test keep them honest.
#include <immintrin.h>  // EXPECT-DETLINT: simd-intrinsics

void avx2_sum(const double* x, double* out) {
  __m256d acc = _mm256_setzero_pd();  // EXPECT-DETLINT: simd-intrinsics
  acc = _mm256_add_pd(acc, _mm256_loadu_pd(x));  // EXPECT-DETLINT: simd-intrinsics
  _mm256_storeu_pd(out, acc);  // EXPECT-DETLINT: simd-intrinsics
}

void neon_sum(const float* x, float* out) {
  float32x4_t a = vld1q_f32(x);  // EXPECT-DETLINT: simd-intrinsics
  vst1q_f32(out, vaddq_f32(a, a));  // EXPECT-DETLINT: simd-intrinsics
}
