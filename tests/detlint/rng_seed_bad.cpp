// detlint fixture (never compiled): RNG engines seeded outside the
// substream scheme, and std engines/distributions whose streams are not
// portable across standard library implementations.
#include <cstdint>
#include <random>

#include "dsp/rng.h"

double ad_hoc_engine(std::uint64_t seed) {
  std::mt19937 gen(static_cast<unsigned>(seed));  // EXPECT-DETLINT: rng-seed
  std::uniform_real_distribution<double> dist;    // EXPECT-DETLINT: rng-seed
  return dist(gen);
}

std::uint64_t raw_seed_passthrough(std::uint64_t seed) {
  itb::dsp::Xoshiro256 rng(seed);  // EXPECT-DETLINT: rng-seed
  return rng.next_u64();
}

std::uint64_t derived_but_ad_hoc(std::uint64_t seed, std::uint64_t shard) {
  itb::dsp::Xoshiro256 rng(seed + shard * 31);  // EXPECT-DETLINT: rng-seed
  return rng.next_u64();
}
