// detlint fixture (never compiled): every wall-clock / entropy source the
// rule bans must fire on the annotated line.
#include <chrono>
#include <ctime>
#include <random>

int entropy_seed() {
  std::random_device rd;  // EXPECT-DETLINT: wall-clock
  return static_cast<int>(rd());
}

long long wall_clock_ns() {
  const auto t = std::chrono::steady_clock::now();  // EXPECT-DETLINT: wall-clock
  return t.time_since_epoch().count();
}

long long system_epoch() {
  using clk = std::chrono::system_clock;  // EXPECT-DETLINT: wall-clock
  return clk::now().time_since_epoch().count();
}

long epoch_seconds() {
  return std::time(nullptr);  // EXPECT-DETLINT: wall-clock
}

int libc_rand() {
  std::srand(7);  // EXPECT-DETLINT: wall-clock
  return rand();  // EXPECT-DETLINT: wall-clock
}
