// detlint fixture (never compiled): order-safe patterns — ordered
// containers, membership tests without traversal, and iterating a sorted
// key copy instead of the unordered container itself. Must produce zero
// findings.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

double sum_ordered(const std::map<std::uint32_t, double>& per_tag) {
  double total = 0.0;
  for (const auto& kv : per_tag) total += kv.second;
  return total;
}

double lookup_only(const std::unordered_map<std::uint32_t, double>& cache,
                   std::uint32_t key) {
  const auto it = cache.find(key);
  return it != cache.end() ? it->second : 0.0;
}

std::vector<std::uint32_t> sorted_keys(
    const std::unordered_map<std::uint32_t, double>& cache,
    const std::vector<std::uint32_t>& ids) {
  std::vector<std::uint32_t> keys;
  for (const std::uint32_t id : ids) {
    if (cache.count(id) != 0) keys.push_back(id);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
