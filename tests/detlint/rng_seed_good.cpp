// detlint fixture (never compiled): compliant engine seeding — substream
// helpers, explicit splitmix64 domain mixes, pinned literal roots, and
// pass-by-reference plumbing. Must produce zero findings.
#include <cstdint>

#include "core/monte_carlo.h"
#include "dsp/rng.h"
#include "sim/event_queue.h"

double trial_draw(std::uint64_t sweep_seed, std::uint64_t point,
                  std::uint64_t trial) {
  itb::dsp::Xoshiro256 rng(itb::core::trial_seed(sweep_seed, point, trial));
  return rng.uniform();
}

double entity_draw(std::uint64_t sim_seed, std::uint32_t entity) {
  auto rng = itb::sim::entity_stream(sim_seed, entity, 0);
  return rng.uniform();
}

double domain_mixed(std::uint64_t seed) {
  itb::dsp::Xoshiro256 rng(itb::dsp::splitmix64(seed ^ 0x746F706FULL));
  return rng.uniform();
}

double pinned_literal_root() {
  itb::dsp::Xoshiro256 rng(20240607);
  return rng.uniform();
}

// References/parameters are plumbing, not seeding.
double draw_from(itb::dsp::Xoshiro256& rng) { return rng.uniform(); }
