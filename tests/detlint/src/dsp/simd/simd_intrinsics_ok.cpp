// Fixture: the same raw intrinsics are sanctioned under src/dsp/simd/ —
// that directory is where kernels live next to their scalar reference and
// the SIMD-vs-scalar parity suite.
#include <immintrin.h>

void avx2_sum(const double* x, double* out) {
  __m256d acc = _mm256_setzero_pd();
  acc = _mm256_add_pd(acc, _mm256_loadu_pd(x));
  _mm256_storeu_pd(out, acc);
}

void neon_sum(const float* x, float* out) {
  float32x4_t a = vld1q_f32(x);
  vst1q_f32(out, vaddq_f32(a, a));
}
