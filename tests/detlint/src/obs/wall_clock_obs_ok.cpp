// Fixture: wall-clock reads under src/obs/ are exempt — this is the
// sanctioned ProfZone timing site, so the wall-clock rule must stay silent
// here without per-line allow() comments.
#include <chrono>

long obs_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
