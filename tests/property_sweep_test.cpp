// Broad parameterized property sweeps: every channel, every payload size
// class, exhaustive symbol alphabets — the long-tail coverage a downstream
// user relies on.
#include <gtest/gtest.h>

#include "backscatter/tag.h"
#include "backscatter/wifi_synth.h"
#include "ble/channel_map.h"
#include "ble/packet.h"
#include "ble/single_tone.h"
#include "channel/awgn.h"
#include "channel/impairments.h"
#include "core/monte_carlo.h"
#include "dsp/rng.h"
#include "wifi/cck.h"
#include "wifi/dsss_rx.h"
#include "wifi/dsss_tx.h"
#include "wifi/ofdm_rx.h"
#include "wifi/ofdm_tx.h"
#include "zigbee/frame.h"

namespace itb {
namespace {

// --- BLE: every channel, every payload size -------------------------------------

class BleEveryChannel : public ::testing::TestWithParam<unsigned> {};

TEST_P(BleEveryChannel, SingleTonePayloadIsConstantOnAir) {
  // The paper uses advertising channels; the whitening construction works
  // on all 40 (data channels enable the §7 data-packet extension).
  ble::SingleToneSpec spec;
  spec.channel_index = GetParam();
  const auto r = ble::make_single_tone_packet(spec);
  EXPECT_EQ(r.tone_end_bit - r.tone_start_bit, 31u * 8);
}

TEST_P(BleEveryChannel, PacketRoundTripsThroughWhitening) {
  ble::AdvPacketConfig cfg;
  cfg.payload = {0xDE, 0xAD, static_cast<std::uint8_t>(GetParam())};
  const auto pkt = ble::build_adv_packet(cfg, GetParam());
  const auto parsed = ble::parse_adv_packet(pkt.air_bits, GetParam());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->crc_ok);
  EXPECT_EQ(parsed->payload, cfg.payload);
}

INSTANTIATE_TEST_SUITE_P(AllChannels, BleEveryChannel,
                         ::testing::Range(0u, 40u));

class BlePayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlePayloadSizes, AnyAdvDataLengthRoundTrips) {
  ble::AdvPacketConfig cfg;
  cfg.payload.assign(GetParam(), 0x5A);
  const auto pkt = ble::build_adv_packet(cfg, 37);
  const auto parsed = ble::parse_adv_packet(pkt.air_bits, 37);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->crc_ok);
  EXPECT_EQ(parsed->payload.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlePayloadSizes,
                         ::testing::Values(0u, 1u, 2u, 15u, 30u, 31u));

// --- Wi-Fi DSSS: payload size sweep ----------------------------------------------

class DsssPayloadSizes
    : public ::testing::TestWithParam<std::tuple<wifi::DsssRate, std::size_t>> {};

TEST_P(DsssPayloadSizes, RoundTrip) {
  const auto [rate, size] = GetParam();
  wifi::DsssTxConfig cfg;
  cfg.rate = rate;
  const wifi::DsssTransmitter tx(cfg);
  dsp::Xoshiro256 rng(static_cast<std::uint64_t>(size) * 31 + 7);
  phy::Bytes psdu(size);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto frame = tx.modulate(psdu);
  const wifi::DsssReceiver rx;
  const auto r = rx.receive(frame.baseband);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(
    RateBySize, DsssPayloadSizes,
    ::testing::Combine(::testing::Values(wifi::DsssRate::k2Mbps,
                                         wifi::DsssRate::k11Mbps),
                       ::testing::Values(1u, 14u, 38u, 104u, 209u, 500u)));

// --- CCK: exhaustive symbol alphabet ----------------------------------------------

TEST(CckExhaustive, All256ElevenMbpsSymbolsRoundTrip) {
  // Every 8-bit symbol value, preceded by a reference symbol, decodes back.
  for (unsigned v = 0; v < 256; ++v) {
    wifi::CckModulator mod(wifi::DsssRate::k11Mbps);
    wifi::CckDemodulator demod(wifi::DsssRate::k11Mbps);
    phy::Bits bits(16, 0);
    for (int b = 0; b < 8; ++b) bits[8 + b] = (v >> b) & 1;
    const auto chips = mod.modulate(bits);
    const auto out = demod.demodulate(chips, 0.0);
    EXPECT_EQ(out, bits) << "symbol " << v;
  }
}

TEST(CckExhaustive, All16FiveMbpsSymbolsRoundTrip) {
  for (unsigned v = 0; v < 16; ++v) {
    wifi::CckModulator mod(wifi::DsssRate::k5_5Mbps);
    wifi::CckDemodulator demod(wifi::DsssRate::k5_5Mbps);
    phy::Bits bits(8, 0);
    for (int b = 0; b < 4; ++b) bits[4 + b] = (v >> b) & 1;
    const auto chips = mod.modulate(bits);
    const auto out = demod.demodulate(chips, 0.0);
    EXPECT_EQ(out, bits) << "symbol " << v;
  }
}

// --- OFDM: seed sweep ---------------------------------------------------------------

class OfdmSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(OfdmSeedSweep, EverySeventhSeedRoundTrips) {
  const auto seed = static_cast<std::uint8_t>(GetParam());
  wifi::OfdmTxConfig cfg;
  cfg.rate = wifi::OfdmRate::k36;
  cfg.scrambler_seed = seed;
  const wifi::OfdmTransmitter tx(cfg);
  const phy::Bytes psdu = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto t = tx.transmit(psdu);
  const wifi::OfdmReceiver rx;
  const auto r = rx.receive(t.baseband);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->scrambler_seed, seed);
  for (std::size_t i = 0; i < psdu.size(); ++i) EXPECT_EQ(r->psdu[i], psdu[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfdmSeedSweep,
                         ::testing::Values(1, 8, 15, 22, 29, 36, 43, 50, 57, 64,
                                           71, 78, 85, 92, 99, 106, 113, 120, 127));

// --- ZigBee: all 16 channels have valid frequencies ----------------------------------

TEST(ZigbeeChannels, FrequencyGridInsideIsm) {
  for (unsigned ch = 11; ch <= 26; ++ch) {
    const auto f = ble::zigbee_channel_hz(ch);
    EXPECT_GE(f, ble::kIsmLowHz);
    EXPECT_LE(f, ble::kIsmHighHz + 1.0);
  }
}

TEST(ZigbeeChannels, ShiftFromBle38IsRealizable) {
  // Any ZigBee channel within +/-40 MHz of BLE 38 is reachable with the
  // tag's clocking; channel 14 (the paper's pick) needs only -6 MHz.
  const auto ble38 = ble::ChannelMap::frequency_hz(38);
  int reachable = 0;
  for (unsigned ch = 11; ch <= 26; ++ch) {
    const auto shift = ble::zigbee_channel_hz(ch) - ble38;
    reachable += (std::abs(shift) <= 40e6);
  }
  // Channels 11..23 sit within +/-40 MHz of BLE 38; 24..26 need channel 39.
  EXPECT_EQ(reachable, 13);
  EXPECT_NEAR(ble::zigbee_channel_hz(14) - ble38, -6e6, 1.0);
}

// --- §7 extension: BLE data packets enable 1 Mbps Wi-Fi end-to-end -------------------

TEST(DataPacketExtension, OneMbpsWifiFitsInDataPacketWindow) {
  // A 2 ms BLE data packet gives the tag enough window for a 1 Mbps frame
  // that could never fit in an advertisement.
  ble::DataPacketConfig dcfg;
  dcfg.payload.assign(250, 0x11);  // 2000 us window
  dcfg.channel_index = 9;
  const auto data_pkt = ble::build_data_packet(dcfg);

  backscatter::TagConfig tag_cfg;
  tag_cfg.wifi.rate = wifi::DsssRate::k1Mbps;
  const backscatter::InterscatterTag tag(tag_cfg);

  const phy::Bytes psdu(150, 0x77);  // needs 1392 us at 1 Mbps
  const auto plan = tag.plan(data_pkt, psdu);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->fits_window);

  // And the same frame is rejected against an advertising packet.
  ble::SingleToneSpec spec;
  const auto adv = ble::make_single_tone_packet(spec);
  EXPECT_FALSE(tag.plan(adv.packet, psdu).has_value());
}

TEST(DataPacketExtension, SynthesizedOneMbpsFrameDecodes) {
  backscatter::WifiSynthConfig cfg;
  cfg.rate = wifi::DsssRate::k1Mbps;
  const phy::Bytes psdu(100, 0x42);
  const auto synth = backscatter::synthesize_wifi(psdu, cfg);

  dsp::CVec shifted = channel::apply_cfo(synth.waveform, -cfg.shift_hz,
                                         cfg.sample_rate_hz);
  dsp::CVec chips(shifted.size() / 13);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    dsp::Complex acc{0, 0};
    for (std::size_t k = 0; k < 13; ++k) acc += shifted[i * 13 + k];
    chips[i] = acc / 13.0;
  }
  const wifi::DsssReceiver rx;
  const auto r = rx.receive(chips);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->header.rate, wifi::DsssRate::k1Mbps);
  EXPECT_EQ(r->psdu, psdu);
}

// --- impairment monotonicity properties -----------------------------------------------
// PER at fixed SNR must be non-decreasing in each impairment magnitude.
// Monte-Carlo estimates carry sampling noise, so each step is allowed a
// small slack; the closed-form impaired_snr_db is asserted exactly.

namespace {

double impaired_per(const std::optional<channel::ImpairmentConfig>& imp,
                    double snr_db, std::size_t trials, std::uint64_t seed) {
  core::MonteCarloConfig cfg;
  cfg.trials_per_point = trials;
  cfg.seed = seed;
  cfg.impairments = imp;
  return core::per_vs_snr(cfg, {snr_db})[0].per_monte_carlo;
}

}  // namespace

TEST(ImpairmentMonotone, PerNonDecreasingInAbsCfo) {
  // Beyond the despreader's +-250 kHz aliasing limit PER must hit the wall;
  // inside it the corrected offsets stay benign.
  double prev = -1.0;
  for (const double ppm : {0.0, 30.0, 90.0, 300.0}) {
    channel::ImpairmentConfig imp;
    imp.sample_rate_hz = 11e6;
    imp.carrier_hz = 2.462e9;
    imp.cfo_ppm = ppm;
    const double per = impaired_per(imp, 10.0, 30, 515);
    EXPECT_GE(per, prev - 0.15) << "cfo ppm " << ppm;
    prev = std::max(prev, per);
  }
  EXPECT_GT(prev, 0.5);  // the 300 ppm point is past the sync range
}

TEST(ImpairmentMonotone, PerNonDecreasingInQuantizerCoarseness) {
  double prev = -1.0;
  for (const unsigned bits : {12u, 6u, 3u, 2u}) {
    channel::ImpairmentConfig imp;
    imp.sample_rate_hz = 11e6;
    imp.adc_bits = bits;
    const double per = impaired_per(imp, 4.0, 30, 516);
    EXPECT_GE(per, prev - 0.15) << "adc bits " << bits;
    prev = std::max(prev, per);
  }
}

TEST(ImpairmentMonotone, PerNonDecreasingInDelaySpread) {
  double prev = -1.0;
  for (const double ds_ns : {0.0, 30.0, 120.0, 500.0}) {
    channel::ImpairmentConfig imp;
    imp.sample_rate_hz = 11e6;
    if (ds_ns > 0.0) {
      channel::MultipathConfig mp;
      mp.num_taps = 4;
      mp.delay_spread_s = ds_ns * 1e-9;
      mp.k_factor = 4.0;
      imp.multipath = mp;
    }
    const double per = impaired_per(imp, 12.0, 30, 517);
    EXPECT_GE(per, prev - 0.15) << "delay spread ns " << ds_ns;
    prev = std::max(prev, per);
  }
}

TEST(ImpairmentMonotone, ClosedFormPenaltyMatchesDirections) {
  // The budget-level model must agree with the waveform trend directions.
  channel::ImpairmentConfig coarse;
  coarse.adc_bits = 2;
  channel::ImpairmentConfig fine;
  fine.adc_bits = 12;
  EXPECT_LT(channel::impaired_snr_db(coarse, 10.0, 1e6),
            channel::impaired_snr_db(fine, 10.0, 1e6));

  channel::ImpairmentConfig big_ds;
  channel::MultipathConfig mp;
  mp.delay_spread_s = 500e-9;
  big_ds.multipath = mp;
  channel::ImpairmentConfig small_ds = big_ds;
  small_ds.multipath->delay_spread_s = 30e-9;
  EXPECT_LT(channel::impaired_snr_db(big_ds, 10.0, 1e6),
            channel::impaired_snr_db(small_ds, 10.0, 1e6));
}

// --- interscatter device count scaling (§2.5) -----------------------------------------

TEST(MultiTag, DistinctTonesForDistinctChannels) {
  // Tags keyed to different BLE channels compute different payloads: the
  // single-tone trick is channel-specific, which is what lets one helper
  // serve tags on different advertising channels.
  const auto p37 = ble::single_tone_payload(37, ble::ToneSign::kHigh, 31);
  const auto p38 = ble::single_tone_payload(38, ble::ToneSign::kHigh, 31);
  const auto p39 = ble::single_tone_payload(39, ble::ToneSign::kHigh, 31);
  EXPECT_NE(p37, p38);
  EXPECT_NE(p38, p39);
}

}  // namespace
}  // namespace itb
