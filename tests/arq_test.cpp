// Tests for the link-layer ARQ building blocks (src/mac/arq.h): fragment
// framing + CRC, selective-repeat reassembly, the capped-exponential
// backoff policy, the closed-form geometric-retry model, and the
// rate/waveform fallback ladder.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "mac/arq.h"

namespace itb::mac {
namespace {

Bytes test_message(std::size_t n) {
  Bytes m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return m;
}

// --- fragmentation -----------------------------------------------------------

TEST(ArqFragment, CountCoversMessage) {
  EXPECT_EQ(fragment_count(0, 10), 1u);
  EXPECT_EQ(fragment_count(30, 0), 1u);   // 0 = no fragmentation
  EXPECT_EQ(fragment_count(30, 10), 3u);
  EXPECT_EQ(fragment_count(31, 10), 4u);
  EXPECT_EQ(fragment_count(10, 10), 1u);
}

TEST(ArqFragment, RoundTripsThroughParse) {
  const Bytes msg = test_message(25);
  for (std::size_t i = 0; i < fragment_count(msg.size(), 10); ++i) {
    const Bytes wire = make_fragment(msg, 10, 42, i);
    const auto parsed = parse_fragment(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.message_seq, 42);
    EXPECT_EQ(parsed->header.frag_index, i);
    EXPECT_EQ(parsed->header.frag_count, 3);
  }
  // The last fragment carries the 5-byte remainder.
  const auto tail = parse_fragment(make_fragment(msg, 10, 42, 2));
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->payload.size(), 5u);
}

TEST(ArqFragment, CrcCatchesCorruption) {
  const Bytes msg = test_message(12);
  Bytes wire = make_fragment(msg, 0, 7, 0);
  ASSERT_TRUE(parse_fragment(wire).has_value());
  // Flip one payload bit: the CRC-16 must reject it.
  wire[kFragmentHeaderBytes] ^= 0x10;
  EXPECT_FALSE(parse_fragment(wire).has_value());
  wire[kFragmentHeaderBytes] ^= 0x10;
  // Corrupt the header too — covered by the same CRC.
  wire[0] ^= 0x01;
  EXPECT_FALSE(parse_fragment(wire).has_value());
}

TEST(ArqFragment, ParseRejectsTruncationAndBadHeaders) {
  EXPECT_FALSE(parse_fragment({}).has_value());
  EXPECT_FALSE(parse_fragment({1, 2, 3, 4}).has_value());  // < overhead
  // index >= count and count == 0 are structurally invalid.
  Bytes wire = make_fragment(test_message(4), 0, 1, 0);
  wire[1] = 5;  // frag_index beyond frag_count
  EXPECT_FALSE(parse_fragment(wire).has_value());
}

TEST(ArqFragment, MakeFragmentValidatesArguments) {
  const Bytes msg = test_message(20);
  EXPECT_THROW(make_fragment(msg, 10, 0, 2), std::invalid_argument);
  EXPECT_THROW(make_fragment(test_message(1000), 1, 0, 0),
               std::invalid_argument);  // > 255 fragments
}

TEST(ArqReassembler, SelectiveRepeatOutOfOrderWithDuplicates) {
  const Bytes msg = test_message(25);
  Reassembler rx;
  EXPECT_FALSE(rx.complete());
  const auto feed = [&](std::size_t i) {
    return rx.accept(*parse_fragment(make_fragment(msg, 10, 3, i)));
  };
  EXPECT_TRUE(feed(2));
  EXPECT_EQ(rx.missing(), (std::vector<std::uint8_t>{0, 1}));
  EXPECT_TRUE(feed(0));
  EXPECT_FALSE(feed(0));  // duplicate: ignored, not double-counted
  EXPECT_EQ(rx.missing(), (std::vector<std::uint8_t>{1}));
  EXPECT_FALSE(rx.complete());
  EXPECT_TRUE(feed(1));
  EXPECT_TRUE(rx.complete());
  EXPECT_EQ(rx.message(), msg);

  // A stale fragment of another message_seq is rejected while in progress.
  Reassembler rx2;
  EXPECT_TRUE(rx2.accept(*parse_fragment(make_fragment(msg, 10, 8, 0))));
  EXPECT_FALSE(rx2.accept(*parse_fragment(make_fragment(msg, 10, 9, 1))));
  rx2.reset();
  EXPECT_TRUE(rx2.accept(*parse_fragment(make_fragment(msg, 10, 9, 1))));
}

// --- retry policy ------------------------------------------------------------

TEST(ArqBackoff, CappedExponentialSchedule) {
  ArqConfig cfg;
  cfg.backoff_base_slots = 1;
  cfg.backoff_cap_slots = 8;
  EXPECT_EQ(backoff_slots(cfg, 0), 0u);
  EXPECT_EQ(backoff_slots(cfg, 1), 1u);
  EXPECT_EQ(backoff_slots(cfg, 2), 2u);
  EXPECT_EQ(backoff_slots(cfg, 3), 4u);
  EXPECT_EQ(backoff_slots(cfg, 4), 8u);
  EXPECT_EQ(backoff_slots(cfg, 5), 8u);    // capped
  EXPECT_EQ(backoff_slots(cfg, 60), 8u);   // no overflow at deep streaks
  cfg.backoff_base_slots = 0;              // 0 = retry at the next slot
  EXPECT_EQ(backoff_slots(cfg, 4), 0u);
}

TEST(ArqConfigTest, ValidatedClampsDegenerateValues) {
  ArqConfig cfg;
  cfg.max_attempts = 0;
  cfg.backoff_base_slots = 16;
  cfg.backoff_cap_slots = 4;  // cap below base
  cfg.fragment_bytes = 1;     // 4096-byte message would need 4096 fragments
  const ArqConfig v = cfg.validated();
  EXPECT_EQ(v.max_attempts, 1u);
  EXPECT_GE(v.backoff_cap_slots, v.backoff_base_slots);
  EXPECT_EQ(v.fragment_bytes, 0u);  // degrades to no fragmentation
}

TEST(ArqModel, ClosedFormsMatchGeometricSeries) {
  EXPECT_DOUBLE_EQ(arq_delivery_probability(1.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(arq_delivery_probability(0.0, 3), 0.0);
  EXPECT_NEAR(arq_delivery_probability(0.5, 3), 0.875, 1e-12);
  // Hand-summed expected attempts at p = 0.5, n = 3:
  // 1*0.5 + 2*0.25 + 3*0.25 = 1.75 = (1 - 0.5^3) / 0.5.
  EXPECT_NEAR(arq_expected_attempts(0.5, 3), 1.75, 1e-12);
  EXPECT_DOUBLE_EQ(arq_expected_attempts(0.0, 5), 5.0);
  EXPECT_DOUBLE_EQ(arq_expected_attempts(1.0, 5), 1.0);
  // More attempts never hurt delivery.
  EXPECT_GT(arq_delivery_probability(0.3, 8),
            arq_delivery_probability(0.3, 2));
}

// --- fallback ladder ---------------------------------------------------------

TEST(Fallback, WalksDownLadderAndProbesBackUp) {
  FallbackConfig cfg;
  cfg.enable_rate_fallback = true;
  cfg.down_after_failures = 2;
  cfg.up_after_successes = 3;
  RateFallbackController c(cfg, LinkWaveform::kWifi11Mbps);
  EXPECT_EQ(c.current(), LinkWaveform::kWifi11Mbps);
  EXPECT_FALSE(c.degraded());

  c.on_failure();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi11Mbps);  // streak of 1: hold
  c.on_failure();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi5_5Mbps);
  EXPECT_TRUE(c.degraded());
  // A success resets the failure streak.
  c.on_failure();
  c.on_success();
  c.on_failure();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi5_5Mbps);
  c.on_failure();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi2Mbps);
  EXPECT_EQ(c.downshifts(), 2u);

  // Three consecutive successes probe one rung back up — never above the
  // initial rung.
  for (int i = 0; i < 3; ++i) c.on_success();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi5_5Mbps);
  for (int i = 0; i < 3; ++i) c.on_success();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi11Mbps);
  for (int i = 0; i < 9; ++i) c.on_success();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi11Mbps);
  EXPECT_EQ(c.upshifts(), 2u);
}

TEST(Fallback, ZigbeeRungIsGated) {
  FallbackConfig cfg;
  cfg.enable_rate_fallback = true;
  cfg.down_after_failures = 1;
  RateFallbackController wifi_only(cfg, LinkWaveform::kWifi1Mbps);
  wifi_only.on_failure();
  EXPECT_EQ(wifi_only.current(), LinkWaveform::kWifi1Mbps);  // floor

  cfg.enable_zigbee_fallback = true;
  RateFallbackController dual(cfg, LinkWaveform::kWifi1Mbps);
  dual.on_failure();
  EXPECT_EQ(dual.current(), LinkWaveform::kZigbee);
  dual.on_failure();
  EXPECT_EQ(dual.current(), LinkWaveform::kZigbee);  // absolute floor
}

TEST(Fallback, DisabledControllerNeverMoves) {
  RateFallbackController c(FallbackConfig{}, LinkWaveform::kWifi2Mbps);
  for (int i = 0; i < 10; ++i) c.on_failure();
  EXPECT_EQ(c.current(), LinkWaveform::kWifi2Mbps);
  EXPECT_EQ(c.downshifts(), 0u);
}

TEST(Waveform, HelpersAreConsistent) {
  for (std::size_t w = 0; w < kNumLinkWaveforms; ++w) {
    const auto wf = static_cast<LinkWaveform>(w);
    EXPECT_GT(waveform_airtime_us(wf, 30), 0.0);
    EXPECT_STRNE(waveform_name(wf), "?");
  }
  EXPECT_EQ(waveform_for_rate(waveform_rate(LinkWaveform::kWifi5_5Mbps)),
            LinkWaveform::kWifi5_5Mbps);
  // ZigBee at 250 kbps is far slower on the air than any Wi-Fi rung.
  EXPECT_GT(waveform_airtime_us(LinkWaveform::kZigbee, 30),
            waveform_airtime_us(LinkWaveform::kWifi1Mbps, 30));
}

}  // namespace
}  // namespace itb::mac
