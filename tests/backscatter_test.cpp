// Tests for the tag: impedance network, SSB/DSB modulators (the paper's core
// §2.3 contribution), detectors, Wi-Fi/ZigBee synthesis and the IC power
// model.
#include <gtest/gtest.h>

#include <cmath>

#include "backscatter/detector.h"
#include "backscatter/ic_power.h"
#include "backscatter/impedance.h"
#include "backscatter/ssb_modulator.h"
#include "backscatter/tag.h"
#include "backscatter/wifi_synth.h"
#include "backscatter/zigbee_synth.h"
#include "ble/gfsk.h"
#include "ble/single_tone.h"
#include "channel/awgn.h"
#include "dsp/spectrum.h"
#include "dsp/units.h"
#include "wifi/dsss_rx.h"
#include "zigbee/frame.h"

namespace itb::backscatter {
namespace {

using itb::dsp::Complex;
using itb::dsp::CVec;
using itb::dsp::Real;

// --- impedance network (paper §2.3.1 / §3) -----------------------------------------

TEST(Impedance, LoadImpedances) {
  const Real f = 2.44e9;
  const Load cap{LoadKind::kCapacitor, 1e-12};
  EXPECT_NEAR(cap.impedance(f).imag(), -65.2, 0.5);
  EXPECT_NEAR(cap.impedance(f).real(), 0.0, 1e-9);
  const Load ind{LoadKind::kInductor, 2e-9};
  EXPECT_NEAR(ind.impedance(f).imag(), 30.7, 0.3);
  const Load open{LoadKind::kOpen, 0.0};
  EXPECT_GT(std::abs(open.impedance(f)), 1e9);
  const Load sh{LoadKind::kShort, 0.0};
  EXPECT_NEAR(std::abs(sh.impedance(f)), 0.0, 1e-12);
}

TEST(Impedance, ReactiveLoadsGiveUnitMagnitudeGamma) {
  // Lossless loads reflect all power: |Gamma| = 1.
  const ImpedanceNetwork n = paper_network();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(n.gamma(i)), 1.0, 1e-6) << "state " << i;
  }
}

TEST(Impedance, PaperStatesAreDistinctPhases) {
  const ImpedanceNetwork n = paper_network();
  const auto g = n.gammas();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      const Real dphi = std::abs(std::arg(g[i] * std::conj(g[j])));
      EXPECT_GT(dphi, 0.5) << i << "," << j;
    }
  }
}

TEST(Impedance, IdealNetworkIsExactQpsk) {
  const ImpedanceNetwork n = ideal_network();
  EXPECT_LT(n.constellation_error_rad(), 1e-6);
  // State 0 should be e^{j pi/4}.
  EXPECT_NEAR(std::arg(n.gamma(0)), itb::dsp::kPi / 4.0, 1e-6);
  // Counter-clockwise ordering.
  for (std::size_t i = 0; i < 4; ++i) {
    const Real expect = itb::dsp::kPi / 4.0 + static_cast<Real>(i) * itb::dsp::kPi / 2.0;
    Real ang = std::arg(n.gamma(i));
    Real diff = std::remainder(ang - expect, itb::dsp::kTwoPi);
    EXPECT_NEAR(diff, 0.0, 1e-6) << "state " << i;
  }
}

TEST(Impedance, RetunedNetworkHandlesComplexAntenna) {
  // The contact-lens loop is not 50 ohms; re-tuning must still produce four
  // well-separated phases.
  const ImpedanceNetwork n = retuned_network({20.0, 35.0});
  const auto g = n.gammas();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_GT(std::abs(std::arg(g[i] * std::conj(g[j]))), 0.6);
    }
  }
}

TEST(Impedance, PaperConstellationErrorIsBounded) {
  // The discrete-component FPGA network approximates QPSK coarsely but each
  // state still lands in its own quadrant-ish sector.
  EXPECT_LT(paper_network().constellation_error_rad(), 0.9);
}

// --- SSB modulator (paper §2.3.1) -----------------------------------------------------

TEST(Ssb, CarrierShiftsUpSingleSided) {
  SsbConfig cfg;
  cfg.shift_hz = 35.75e6;
  cfg.sample_rate_hz = 143e6;
  cfg.network = ideal_network();
  const SsbModulator mod(cfg);
  const CVec wave = mod.states_to_waveform(mod.carrier_states(16384));
  const auto psd = itb::dsp::welch_psd(wave, cfg.sample_rate_hz);
  EXPECT_NEAR(itb::dsp::peak_frequency_hz(psd), 35.75e6, 2 * psd.bin_hz);
  // Image suppressed by > 30 dB (paper Fig. 6 shows ~20+ dB).
  const Real rej = itb::dsp::sideband_rejection_db(psd, 34e6, 37.5e6, -37.5e6, -34e6);
  EXPECT_GT(rej, 30.0);
}

TEST(Ssb, NegativeShiftMirrors) {
  SsbConfig cfg;
  cfg.shift_hz = -35.75e6;
  cfg.sample_rate_hz = 143e6;
  cfg.network = ideal_network();
  const SsbModulator mod(cfg);
  const CVec wave = mod.states_to_waveform(mod.carrier_states(16384));
  const auto psd = itb::dsp::welch_psd(wave, cfg.sample_rate_hz);
  EXPECT_NEAR(itb::dsp::peak_frequency_hz(psd), -35.75e6, 2 * psd.bin_hz);
}

TEST(Ssb, DsbProducesMirrorImage) {
  SsbConfig cfg;
  cfg.shift_hz = 35.75e6;
  cfg.sample_rate_hz = 143e6;
  cfg.network = ideal_network();
  const DsbModulator mod(cfg);
  const CVec wave = mod.states_to_waveform(mod.carrier_states(16384));
  const auto psd = itb::dsp::welch_psd(wave, cfg.sample_rate_hz);
  const Real upper = itb::dsp::band_power(psd, 34e6, 37.5e6);
  const Real lower = itb::dsp::band_power(psd, -37.5e6, -34e6);
  // Mirror copy within 1 dB of the wanted sideband.
  EXPECT_NEAR(10.0 * std::log10(upper / lower), 0.0, 1.0);
}

TEST(Ssb, PhaseAccumulatorMatchesFloorReferenceSampleExact) {
  // The integer phase accumulator must reproduce the floor()-based square
  // waves of the seed implementation for the sample-exact 143 MHz design.
  SsbConfig cfg;  // 35.75 MHz shift at 143 MHz: fs = 4f
  const SsbModulator mod(cfg);
  const auto states = mod.carrier_states(64);
  ASSERT_EQ(states.size(), 64u);
  for (std::size_t k = 0; k < states.size(); ++k) {
    // fs = 4f: the quadrant advances once per sample, period 4.
    EXPECT_EQ(states[k], static_cast<std::uint8_t>(k % 4)) << "sample " << k;
  }
  SsbConfig down = cfg;
  down.shift_hz = -cfg.shift_hz;
  const auto dstates = SsbModulator(down).carrier_states(64);
  // Conjugated carrier: quadrants walk clockwise starting from 3 (the seed's
  // floor() reference gives I=+1, Q=-1 at t=0 for a downshift).
  for (std::size_t k = 0; k < dstates.size(); ++k) {
    EXPECT_EQ(dstates[k], static_cast<std::uint8_t>(3 - k % 4)) << "sample " << k;
  }
}

TEST(Ssb, PhaseAccumulatorTracksFloorReferenceOffGrid) {
  // Non-dyadic frequency ratio: the fixed-point accumulator and the double
  // floor() reference may disagree only at samples that land exactly on a
  // switching edge; away from edges the states must match.
  SsbConfig cfg;
  cfg.shift_hz = 12.34e6;
  cfg.sample_rate_hz = 143e6;
  const SsbModulator mod(cfg);
  const auto states = mod.carrier_states(20000);
  const Real f = cfg.shift_hz;
  const Real fs = cfg.sample_rate_hz;
  std::size_t mismatches = 0;
  for (std::size_t k = 0; k < states.size(); ++k) {
    const Real t = static_cast<Real>(k) / fs;
    const Real ci = t * f + 0.25;
    const Real cq = t * f;
    const int i = (ci - std::floor(ci)) < 0.5 ? 1 : -1;
    const int q = (cq - std::floor(cq)) < 0.5 ? 1 : -1;
    unsigned quadrant;
    if (i > 0 && q > 0) quadrant = 0;
    else if (i < 0 && q > 0) quadrant = 1;
    else if (i < 0 && q < 0) quadrant = 2;
    else quadrant = 3;
    if (states[k] != quadrant) ++mismatches;
  }
  // Edge-coincident samples are measure-zero; allow a tiny disagreement
  // budget for double-rounding at exact switching instants.
  EXPECT_LE(mismatches, states.size() / 1000);
}

TEST(Ssb, SquareWaveHarmonicsAtPaperLevels) {
  // Paper §2.3.1 step 1: 3rd harmonic -9.5 dB, 5th harmonic -14 dB. Use a
  // high sample rate so the harmonics are resolvable (not aliased onto the
  // fundamental).
  SsbConfig cfg;
  cfg.shift_hz = 5e6;
  cfg.sample_rate_hz = 320e6;  // 64 samples per period
  cfg.network = ideal_network();
  const SsbModulator mod(cfg);
  const CVec wave = mod.states_to_waveform(mod.carrier_states(65536));
  const auto psd = itb::dsp::welch_psd(wave, cfg.sample_rate_hz);
  const Real fund = itb::dsp::band_power(psd, 4.5e6, 5.5e6);
  const Real third = itb::dsp::band_power(psd, -15.5e6, -14.5e6);
  const Real fifth = itb::dsp::band_power(psd, 24.5e6, 25.5e6);
  EXPECT_NEAR(10.0 * std::log10(fund / third), 9.5, 0.8);
  EXPECT_NEAR(10.0 * std::log10(fund / fifth), 14.0, 0.8);
}

TEST(Ssb, ConversionLossSmallForIdealNetwork) {
  // At the IC's native 4-samples-per-period clocking, the sampled waveform
  // is a pure digital tone (harmonics alias onto the fundamental), so the
  // in-band conversion loss is tiny.
  SsbConfig native;
  native.network = ideal_network();
  const Real native_loss = SsbModulator(native).conversion_loss_db();
  EXPECT_LT(native_loss, 0.5);

  // Resolved in continuous time (64 samples/period) the fundamental carries
  // (2*sqrt(2)/pi)^2 ~ -0.9 dB of the incident power; the rest sits in the
  // switching harmonics.
  SsbConfig fine;
  fine.network = ideal_network();
  fine.shift_hz = 5e6;
  fine.sample_rate_hz = 320e6;
  const Real fine_loss = SsbModulator(fine).conversion_loss_db();
  EXPECT_NEAR(fine_loss, 0.9, 0.5);
}

TEST(Ssb, RotationAdvancesConstellation) {
  SsbConfig cfg;
  cfg.network = ideal_network();
  const SsbModulator mod(cfg);
  const std::vector<std::uint8_t> zero(64, 0);
  std::vector<std::uint8_t> one(64, 1);
  const auto s0 = mod.modulate_states(zero);
  const auto s1 = mod.modulate_states(one);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(s1[i], (s0[i] + 1) % 4);
  }
}

TEST(Ssb, ExpandRotationsHoldsValues) {
  const std::vector<std::uint8_t> chips = {0, 3, 1};
  const auto s = expand_rotations(chips, 4);
  ASSERT_EQ(s.size(), 12u);
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[4], 3);
  EXPECT_EQ(s[11], 1);
}

// --- detectors -------------------------------------------------------------------------

TEST(EnvelopeDetector, TriggersOnBleBurst) {
  // Quiet -> BLE packet at -30 dBm -> quiet.
  const Real fs = 8e6;
  itb::ble::GfskModulator gfsk;
  itb::phy::Bits bits(100, 1);
  CVec burst = gfsk.modulate(bits);
  const Real amp = std::sqrt(itb::dsp::dbm_to_watts(-30.0));
  for (auto& v : burst) v *= amp;
  CVec signal(2000, Complex{0, 0});
  signal.insert(signal.end(), burst.begin(), burst.end());
  signal.insert(signal.end(), 2000, Complex{0, 0});

  EnvelopeDetectorConfig cfg;
  cfg.sample_rate_hz = fs;
  const EnvelopeDetector det(cfg);
  const std::size_t trig = det.first_trigger(signal);
  EXPECT_GE(trig, 2000u);
  EXPECT_LT(trig, 2200u);
}

TEST(EnvelopeDetector, IgnoresWeakSignals) {
  // A -70 dBm burst (transmitter past the paper's 8-10 ft trigger range)
  // must not trigger.
  const Real fs = 8e6;
  CVec signal(4000, Complex{0, 0});
  const Real amp = std::sqrt(itb::dsp::dbm_to_watts(-70.0));
  for (std::size_t i = 1000; i < 3000; ++i) signal[i] = {amp, 0.0};
  EnvelopeDetectorConfig cfg;
  cfg.sample_rate_hz = fs;
  const EnvelopeDetector det(cfg);
  EXPECT_EQ(det.first_trigger(signal), signal.size());
}

TEST(EnvelopeDetector, EdgePairsForBurst) {
  const Real fs = 8e6;
  CVec signal(6000, Complex{0, 0});
  const Real amp = std::sqrt(itb::dsp::dbm_to_watts(-30.0));
  for (std::size_t i = 2000; i < 4000; ++i) signal[i] = {amp, 0.0};
  EnvelopeDetectorConfig cfg;
  cfg.sample_rate_hz = fs;
  const EnvelopeDetector det(cfg);
  const auto e = det.edges(signal);
  ASSERT_GE(e.size(), 2u);
  EXPECT_TRUE(e[0].rising);
  EXPECT_FALSE(e[1].rising);
}

TEST(PeakDetector, OokDecode) {
  const Real fs = 20e6;
  PeakDetectorConfig cfg;
  cfg.sample_rate_hz = fs;
  cfg.sensitivity_dbm = -90.0;
  const PeakDetector det(cfg);
  // 1 kbit/s OOK: 200 samples/bit at 20 MHz... use 2000 samples/bit.
  const std::size_t bit_samples = 2000;
  const itb::phy::Bits bits = {1, 0, 1, 1, 0};
  CVec signal;
  for (const auto b : bits) {
    for (std::size_t i = 0; i < bit_samples; ++i) {
      signal.push_back(b ? Complex{1.0, 0.0} : Complex{0.02, 0.0});
    }
  }
  const itb::phy::Bits out = det.decode_ook(signal, bit_samples);
  ASSERT_EQ(out.size(), bits.size());
  EXPECT_EQ(out, bits);
}

// --- Wi-Fi synthesis end-to-end (paper's headline result) ------------------------------

TEST(WifiSynth, ChipToRotationIsStable) {
  EXPECT_EQ(chip_to_rotation({1.0, 1e-12}), 0);
  EXPECT_EQ(chip_to_rotation({1.0, -1e-12}), 0);
  EXPECT_EQ(chip_to_rotation({0.0, 1.0}), 1);
  EXPECT_EQ(chip_to_rotation({-1.0, 1e-15}), 2);
  EXPECT_EQ(chip_to_rotation({0.0, -1.0}), 3);
}

class WifiSynthRates : public ::testing::TestWithParam<itb::wifi::DsssRate> {};

TEST_P(WifiSynthRates, BackscatteredFrameDecodesOnCommodityReceiver) {
  WifiSynthConfig cfg;
  cfg.rate = GetParam();
  itb::dsp::Xoshiro256 rng(13);
  itb::phy::Bytes psdu(31);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  const WifiSynthResult synth = synthesize_wifi(psdu, cfg);

  // Receiver view: downconvert by the shift, matched-filter to chip rate.
  CVec shifted = itb::channel::apply_cfo(synth.waveform, -cfg.shift_hz,
                                         cfg.sample_rate_hz);
  const std::size_t spc = 13;
  CVec chips(shifted.size() / spc);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    Complex acc{0, 0};
    for (std::size_t k = 0; k < spc; ++k) acc += shifted[i * spc + k];
    chips[i] = acc / static_cast<Real>(spc);
  }

  const itb::wifi::DsssReceiver rx;
  const auto result = rx.receive(chips);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->header_ok);
  EXPECT_EQ(result->header.rate, GetParam());
  EXPECT_EQ(result->psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(Rates, WifiSynthRates,
                         ::testing::Values(itb::wifi::DsssRate::k2Mbps,
                                           itb::wifi::DsssRate::k5_5Mbps,
                                           itb::wifi::DsssRate::k11Mbps));

TEST(WifiSynth, SpectrumSitsAtShiftOnly) {
  WifiSynthConfig cfg;
  cfg.shift_hz = 35.75e6;
  const WifiSynthResult synth =
      synthesize_wifi(itb::phy::Bytes(31, 0x55), cfg);
  const auto psd = itb::dsp::welch_psd(synth.waveform, cfg.sample_rate_hz);
  // Wanted band: shift +/- 11 MHz. Image band: -shift -/+ 11 MHz.
  const Real rej = itb::dsp::sideband_rejection_db(
      psd, 35.75e6 - 11e6, 35.75e6 + 11e6, -35.75e6 - 11e6, -35.75e6 + 11e6);
  EXPECT_GT(rej, 15.0);
}

TEST(WifiSynth, DsbVariantWastesSpectrum) {
  WifiSynthConfig cfg;
  cfg.shift_hz = 35.75e6;
  const WifiSynthResult dsb =
      synthesize_wifi_dsb(itb::phy::Bytes(31, 0x55), cfg);
  const auto psd = itb::dsp::welch_psd(dsb.waveform, cfg.sample_rate_hz);
  const Real rej = itb::dsp::sideband_rejection_db(
      psd, 35.75e6 - 11e6, 35.75e6 + 11e6, -35.75e6 - 11e6, -35.75e6 + 11e6);
  EXPECT_LT(std::abs(rej), 1.5);  // both sidebands carry equal power
}

TEST(WifiSynth, PaperNetworkStillDecodesAt2Mbps) {
  // Ablation: the FPGA's discrete loads distort the constellation but the
  // DQPSK demod tolerates it at 2 Mbps.
  WifiSynthConfig cfg;
  cfg.rate = itb::wifi::DsssRate::k2Mbps;
  cfg.network = paper_network();
  itb::phy::Bytes psdu = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const WifiSynthResult synth = synthesize_wifi(psdu, cfg);
  CVec shifted = itb::channel::apply_cfo(synth.waveform, -cfg.shift_hz,
                                         cfg.sample_rate_hz);
  CVec chips(shifted.size() / 13);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    Complex acc{0, 0};
    for (std::size_t k = 0; k < 13; ++k) acc += shifted[i * 13 + k];
    chips[i] = acc / 13.0;
  }
  const itb::wifi::DsssReceiver rx;
  const auto result = rx.receive(chips);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->psdu, psdu);
}

// --- ZigBee synthesis (paper §4.5) -------------------------------------------------------

TEST(ZigbeeSynth, BackscatteredFrameDecodesOnCommodityReceiver) {
  ZigbeeSynthConfig cfg;
  const itb::phy::Bytes payload = {'t', 'a', 'g', 0x01, 0x02};
  const ZigbeeSynthResult synth = synthesize_zigbee(payload, cfg);

  CVec shifted = itb::channel::apply_cfo(synth.waveform, -cfg.shift_hz,
                                         cfg.sample_rate_hz);
  // ZigBee RX expects 4 samples/chip at 8 Msps: decimate 96 MHz -> 8 MHz.
  const std::size_t dec = 12;
  CVec rx_samples(shifted.size() / dec);
  for (std::size_t i = 0; i < rx_samples.size(); ++i) {
    Complex acc{0, 0};
    for (std::size_t k = 0; k < dec; ++k) acc += shifted[i * dec + k];
    rx_samples[i] = acc / static_cast<Real>(dec);
  }
  const auto result = itb::zigbee::zigbee_receive(rx_samples);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->fcs_ok);
  EXPECT_EQ(result->payload, payload);
}

class ZigbeeSynthPayloads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZigbeeSynthPayloads, FcsSurvivesForAllLengths) {
  // Regression: the offset Q branch extends half a chip past the last chip
  // boundary; without the tail hold the final FCS nibble was lost (and the
  // bug only showed for payloads whose FCS high nibble was non-zero).
  ZigbeeSynthConfig cfg;
  itb::phy::Bytes payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(0x10 + i * 37);
  }
  const ZigbeeSynthResult synth = synthesize_zigbee(payload, cfg);
  CVec shifted = itb::channel::apply_cfo(synth.waveform, -cfg.shift_hz,
                                         cfg.sample_rate_hz);
  CVec rx_samples(shifted.size() / 12);
  for (std::size_t i = 0; i < rx_samples.size(); ++i) {
    Complex acc{0, 0};
    for (std::size_t k = 0; k < 12; ++k) acc += shifted[i * 12 + k];
    rx_samples[i] = acc / 12.0;
  }
  const auto result = itb::zigbee::zigbee_receive(rx_samples);
  ASSERT_TRUE(result.has_value()) << "payload " << GetParam();
  EXPECT_TRUE(result->fcs_ok);
  EXPECT_EQ(result->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ZigbeeSynthPayloads,
                         ::testing::Values(1u, 5u, 7u, 16u, 40u));

TEST(ZigbeeSynth, DurationMatchesSymbolRate) {
  const ZigbeeSynthResult synth = synthesize_zigbee(itb::phy::Bytes(10, 1));
  // 18-byte PPDU = 36 symbols * 16 us.
  EXPECT_NEAR(synth.duration_us, 576.0, 1.0);
}

// --- tag state machine ---------------------------------------------------------------------

TEST(Tag, PlansTransmissionInsideWindow) {
  itb::ble::SingleToneSpec spec;
  spec.channel_index = 38;
  const auto tone = itb::ble::make_single_tone_packet(spec);

  TagConfig cfg;
  cfg.wifi.rate = itb::wifi::DsssRate::k2Mbps;
  const InterscatterTag tag(cfg);
  // Paper budget: 38 bytes of payload fit at 2 Mbps.
  const auto plan = tag.plan(tone.packet, itb::phy::Bytes(30, 0xAB));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->fits_window);
  EXPECT_GT(plan->backscatter_start_us, tone.packet.payload_start_us());
}

TEST(Tag, RejectsOversizedFrame) {
  itb::ble::SingleToneSpec spec;
  const auto tone = itb::ble::make_single_tone_packet(spec);
  TagConfig cfg;
  cfg.wifi.rate = itb::wifi::DsssRate::k2Mbps;
  const InterscatterTag tag(cfg);
  // 200 bytes at 2 Mbps cannot fit a 248 us window.
  const auto plan = tag.plan(tone.packet, itb::phy::Bytes(200, 1));
  EXPECT_FALSE(plan.has_value());
}

TEST(Tag, TimingErrorBeyondGuardBreaksFit) {
  itb::ble::SingleToneSpec spec;
  const auto tone = itb::ble::make_single_tone_packet(spec);
  TagConfig cfg;
  cfg.wifi.rate = itb::wifi::DsssRate::k11Mbps;
  // A payload sized to just fit with the nominal guard.
  const itb::phy::Bytes psdu(150, 0x5A);
  const InterscatterTag nominal(cfg);
  const auto ok = nominal.plan(tone.packet, psdu);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->fits_window);

  cfg.timing_error_us = 60.0;  // way beyond the 4 us guard
  const InterscatterTag late(cfg);
  const auto bad = late.plan(tone.packet, psdu);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->fits_window);
}

TEST(Tag, DetectsPayloadStartFromEnvelope) {
  itb::ble::SingleToneSpec spec;
  spec.channel_index = 38;
  const auto tone = itb::ble::make_single_tone_packet(spec);
  itb::ble::GfskModulator gfsk;
  CVec air = gfsk.modulate(tone.packet.air_bits);
  const Real amp = std::sqrt(itb::dsp::dbm_to_watts(-25.0));
  for (auto& v : air) v *= amp;
  // 500 quiet samples in front.
  CVec signal(500, Complex{0, 0});
  signal.insert(signal.end(), air.begin(), air.end());

  const InterscatterTag tag;
  const auto start = tag.detect_payload_start(signal, 8e6);
  ASSERT_TRUE(start.has_value());
  // True payload start: 500/8 us offset + 104 us of preamble/AA/header.
  const double expect_us = 500.0 / 8.0 + tone.packet.payload_start_us();
  EXPECT_NEAR(*start, expect_us + tag.config().guard_us, 8.0);
}

// --- IC power model (paper §3) ----------------------------------------------------------

TEST(IcPower, PaperReferencePoint) {
  const IcPowerModel model;
  const PowerBreakdown p =
      model.active_power(itb::wifi::DsssRate::k2Mbps, 35.75e6);
  EXPECT_NEAR(p.synthesizer_uw, 9.69, 0.01);
  EXPECT_NEAR(p.baseband_uw, 8.51, 0.01);
  EXPECT_NEAR(p.modulator_uw, 9.79, 0.01);
  EXPECT_NEAR(p.total_uw(), 28.0, 0.05);
}

TEST(IcPower, HigherRateCostsMore) {
  const IcPowerModel model;
  const Real p2 = model.active_power(itb::wifi::DsssRate::k2Mbps, 35.75e6).total_uw();
  const Real p11 = model.active_power(itb::wifi::DsssRate::k11Mbps, 35.75e6).total_uw();
  EXPECT_GT(p11, p2);
  EXPECT_LT(p11, 2.0 * p2);
}

TEST(IcPower, EnergyPerBitFallsWithRate) {
  const IcPowerModel model;
  EXPECT_GT(model.energy_per_bit_pj(itb::wifi::DsssRate::k2Mbps, 35.75e6),
            model.energy_per_bit_pj(itb::wifi::DsssRate::k11Mbps, 35.75e6));
}

TEST(IcPower, DutyCyclingSavesPower) {
  const IcPowerModel model;
  const Real always = model.average_power_uw(itb::wifi::DsssRate::k2Mbps, 35.75e6, 1.0);
  const Real rare = model.average_power_uw(itb::wifi::DsssRate::k2Mbps, 35.75e6, 0.01);
  EXPECT_LT(rare, always / 10.0);
}

TEST(IcPower, OrdersOfMagnitudeBelowActiveRadios) {
  const IcPowerModel model;
  const Real tag = model.active_power(itb::wifi::DsssRate::k2Mbps, 35.75e6).total_uw();
  for (const auto& ref : active_radio_references()) {
    if (ref.name.find("Interscatter") != std::string::npos) continue;
    if (ref.name.find("Passive") != std::string::npos) continue;
    EXPECT_GT(ref.tx_power_uw, 100.0 * tag) << ref.name;
  }
}

}  // namespace
}  // namespace itb::backscatter
