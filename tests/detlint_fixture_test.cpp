// Self-test for tools/detlint: every fixture under tests/detlint/ is linted
// in-process and compared against its `// EXPECT-DETLINT: <rule>[, <rule>]`
// annotations. Bad fixtures must fire exactly on the annotated lines with
// the annotated rules; good/ok fixtures carry no annotations and must come
// back clean — including the suppression and bench-exemption fixtures.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.h"
#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;

std::vector<fs::path> fixture_files() {
  std::vector<fs::path> files;
  for (const auto& entry :
       fs::recursive_directory_iterator(DETLINT_FIXTURE_DIR)) {
    if (entry.is_regular_file() &&
        detlint::is_cpp_source(entry.path().string()))
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// (line, rule) pairs from EXPECT-DETLINT annotations in the raw text.
std::set<std::pair<int, std::string>> expected_findings(const fs::path& p) {
  std::set<std::pair<int, std::string>> out;
  std::ifstream in(p);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string tag = "EXPECT-DETLINT:";
    const std::size_t pos = line.find(tag);
    if (pos == std::string::npos) continue;
    std::istringstream rules(line.substr(pos + tag.size()));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      const std::size_t b = rule.find_first_not_of(" \t");
      const std::size_t e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      out.insert({lineno, rule.substr(b, e - b + 1)});
    }
  }
  return out;
}

std::set<std::pair<int, std::string>> actual_findings(const fs::path& p) {
  bool io_error = false;
  std::set<std::pair<int, std::string>> out;
  for (const auto& f : detlint::lint_file(p.generic_string(), &io_error)) {
    out.insert({f.line, f.rule});
  }
  EXPECT_FALSE(io_error) << "cannot read " << p;
  return out;
}

TEST(DetlintFixtures, EveryFixtureMatchesItsAnnotations) {
  const auto files = fixture_files();
  ASSERT_FALSE(files.empty()) << "no fixtures under " << DETLINT_FIXTURE_DIR;
  for (const auto& p : files) {
    const auto expected = expected_findings(p);
    const auto actual = actual_findings(p);
    for (const auto& [line, rule] : expected) {
      EXPECT_TRUE(actual.count({line, rule}))
          << p.filename() << ":" << line << " expected rule `" << rule
          << "` did not fire";
    }
    for (const auto& [line, rule] : actual) {
      EXPECT_TRUE(expected.count({line, rule}))
          << p.filename() << ":" << line << " unexpected finding `" << rule
          << "`";
    }
  }
}

TEST(DetlintFixtures, BadFixturesAnnotateAtLeastOneLine) {
  for (const auto& p : fixture_files()) {
    if (p.filename().string().find("_bad") == std::string::npos) continue;
    EXPECT_FALSE(expected_findings(p).empty())
        << p.filename() << " is a bad fixture with no EXPECT-DETLINT lines";
  }
}

TEST(DetlintFixtures, EveryRuleHasBadCoverage) {
  std::set<std::string> covered;
  for (const auto& p : fixture_files()) {
    for (const auto& pr : expected_findings(p)) covered.insert(pr.second);
  }
  for (const auto& rule : detlint::rule_ids()) {
    EXPECT_TRUE(covered.count(rule))
        << "rule `" << rule << "` has no bad fixture exercising it";
  }
}

TEST(DetlintFixtures, SuppressionSilencesSameLineAndNextLine) {
  const std::string src =
      "long a() {\n"
      "  return std::time(nullptr);  // detlint: allow(wall-clock)\n"
      "}\n"
      "long b() {\n"
      "  // detlint: allow(wall-clock)\n"
      "  return std::time(nullptr);\n"
      "}\n"
      "long c() {\n"
      "  return std::time(nullptr);\n"
      "}\n";
  const auto findings = detlint::lint_source("virtual.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 9);
  EXPECT_EQ(findings[0].rule, "wall-clock");
}

TEST(DetlintFixtures, BenchPathsAreExemptFromWallClock) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(detlint::lint_source("bench/timer.cpp", src).empty());
  EXPECT_EQ(detlint::lint_source("src/timer.cpp", src).size(), 1u);
}

TEST(DetlintFixtures, ObsPathsAreExemptFromWallClock) {
  // src/obs/ is the ProfZone wall-clock carve-out; the exemption is scoped
  // to that directory, not to every path containing "obs".
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(detlint::lint_source("src/obs/prof.cpp", src).empty());
  EXPECT_TRUE(
      detlint::lint_source("/root/repo/src/obs/timer.cpp", src).empty());
  EXPECT_EQ(detlint::lint_source("src/observer.cpp", src).size(), 1u);
  EXPECT_EQ(detlint::lint_source("src/sim/obs_like.cpp", src).size(), 1u);
}

}  // namespace
