// Tests for propagation, noise, tissue dielectrics, antennas and the
// backscatter link budget.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "channel/antenna.h"
#include "channel/awgn.h"
#include "channel/link.h"
#include "channel/pathloss.h"
#include "channel/tissue.h"
#include "dsp/mixer.h"
#include "dsp/spectrum.h"
#include "dsp/units.h"

namespace itb::channel {
namespace {

using itb::dsp::Real;

// --- path loss -----------------------------------------------------------------

TEST(PathLoss, FriisAtOneMeter2G4) {
  // FSPL(1 m, 2.44 GHz) = 20 log10(4 pi f / c) ~ 40.2 dB.
  EXPECT_NEAR(friis_pathloss_db(1.0, 2.44e9), 40.2, 0.3);
}

TEST(PathLoss, FriisSlope20DbPerDecade) {
  const Real a = friis_pathloss_db(1.0, 2.44e9);
  const Real b = friis_pathloss_db(10.0, 2.44e9);
  EXPECT_NEAR(b - a, 20.0, 1e-9);
}

TEST(PathLoss, LogDistanceSlopeMatchesExponent) {
  LogDistanceModel m;
  m.exponent = 2.8;
  const Real a = m.pathloss_db(2.0);
  const Real b = m.pathloss_db(20.0);
  EXPECT_NEAR(b - a, 28.0, 1e-9);
}

TEST(PathLoss, LogDistanceMonotonic) {
  LogDistanceModel m;
  Real prev = 0.0;
  for (Real d = 0.1; d < 50.0; d *= 1.3) {
    const Real pl = m.pathloss_db(d);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(PathLoss, PerpendicularGeometry) {
  // At zero perpendicular distance the receiver sits at the midpoint.
  EXPECT_NEAR(perpendicular_range_m(2.0, 0.0), 1.0, 1e-12);
  // 3-4-5 triangle.
  EXPECT_NEAR(perpendicular_range_m(6.0, 4.0), 5.0, 1e-12);
}

TEST(PathLoss, UnitHelpers) {
  EXPECT_NEAR(10.0 * kFeetToMeters, 3.048, 1e-9);
  EXPECT_NEAR(12.0 * kInchesToMeters, 0.3048, 1e-9);
}

// --- noise ----------------------------------------------------------------------

TEST(Awgn, ThermalFloorValues) {
  // -174 dBm/Hz + 10 log10(22 MHz) ~ -100.6 dBm.
  EXPECT_NEAR(thermal_noise_dbm(22e6), -100.6, 0.2);
  EXPECT_NEAR(thermal_noise_dbm(20e6, 7.0), -94.0, 0.3);
  EXPECT_NEAR(thermal_noise_dbm(2e6), -111.0, 0.3);
}

TEST(Awgn, SnrTargetAchieved) {
  itb::dsp::Xoshiro256 rng(9);
  const itb::dsp::CVec x = itb::dsp::tone(0.0, 1e6, 65536);
  const itb::dsp::CVec y = add_noise_snr(x, 10.0, rng);
  // Noise power = total - signal: measure against the known unit tone.
  Real noise_acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) noise_acc += std::norm(y[i] - x[i]);
  const Real measured_snr =
      10.0 * std::log10(1.0 / (noise_acc / static_cast<Real>(x.size())));
  EXPECT_NEAR(measured_snr, 10.0, 0.3);
}

TEST(Awgn, CfoRotatesSpectrum) {
  const itb::dsp::CVec x = itb::dsp::tone(0.0, 1e6, 8192);
  const itb::dsp::CVec y = apply_cfo(x, 50e3, 1e6);
  const auto psd = itb::dsp::welch_psd(y, 1e6);
  EXPECT_NEAR(itb::dsp::peak_frequency_hz(psd), 50e3, 2 * psd.bin_hz);
}

TEST(Awgn, TypedFrequencyOffsetUnifiesPpmAndHz) {
  // Regression for the ppm-vs-Hz confusion: a tag oscillator tolerance
  // quoted in ppm must shift the spectrum by ppm * 1e-6 * carrier, not by
  // the raw ppm figure misread as Hz.
  const Real carrier = 2.44e9;
  const auto off = FrequencyOffset::from_ppm(40.0, carrier);
  EXPECT_NEAR(off.hz(), 40.0 * 1e-6 * carrier, 1e-6);
  EXPECT_NEAR(off.ppm(carrier), 40.0, 1e-12);

  const itb::dsp::CVec x = itb::dsp::tone(0.0, 1e6, 8192);
  const itb::dsp::CVec y = apply_cfo(x, off, 1e6);
  const auto psd = itb::dsp::welch_psd(y, 1e6);
  // 97.6 kHz, nowhere near the 40 Hz a unit mix-up would produce.
  EXPECT_NEAR(itb::dsp::peak_frequency_hz(psd), off.hz(), 2 * psd.bin_hz);

  // The two construction routes agree bit-for-bit.
  const auto via_hz = FrequencyOffset::from_hz(off.hz());
  const itb::dsp::CVec z = apply_cfo(x, via_hz, 1e6);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y[i].real(), z[i].real());
    EXPECT_EQ(y[i].imag(), z[i].imag());
  }
}

TEST(Awgn, GainScalesPower) {
  const itb::dsp::CVec x = itb::dsp::tone(0.0, 1e6, 1024);
  const itb::dsp::CVec y = apply_gain_db(x, -20.0);
  EXPECT_NEAR(itb::dsp::mean_power(y), 0.01, 1e-6);
}

// --- tissue (paper §5.1/5.2) -------------------------------------------------------

TEST(Tissue, MuscleAttenuationMatchesLiterature) {
  // Muscle at 2.45 GHz attenuates roughly 3-5 dB/cm (Gabriel dispersion).
  const Real db_per_cm = tissue_loss_db(muscle_2g4(), 2.45e9, 0.01);
  EXPECT_GT(db_per_cm, 2.0);
  EXPECT_LT(db_per_cm, 6.0);
}

TEST(Tissue, GreyMatterCloseToMuscle) {
  // The paper's rationale for the pork-chop substitute: grey matter and
  // muscle have similar dielectric behaviour at 2.4 GHz.
  const Real muscle = tissue_loss_db(muscle_2g4(), 2.45e9, 0.01);
  const Real grey = tissue_loss_db(grey_matter_2g4(), 2.45e9, 0.01);
  EXPECT_NEAR(muscle, grey, 1.0);
}

TEST(Tissue, SalineIsLossierThanMuscle) {
  EXPECT_GT(tissue_loss_db(saline_2g4(), 2.45e9, 0.01),
            tissue_loss_db(muscle_2g4(), 2.45e9, 0.01));
}

TEST(Tissue, LossScalesLinearlyWithDepth) {
  const Real one = tissue_loss_db(muscle_2g4(), 2.45e9, 0.001);
  const Real five = tissue_loss_db(muscle_2g4(), 2.45e9, 0.005);
  EXPECT_NEAR(five, 5.0 * one, 1e-9);
}

TEST(Tissue, InterfaceLossPositiveAndModest) {
  const Real loss = interface_loss_db(muscle_2g4(), 2.45e9);
  EXPECT_GT(loss, 0.5);
  EXPECT_LT(loss, 6.0);
}

TEST(Tissue, RoundTripDoublesOneWay) {
  const TissueProperties t = muscle_2g4();
  const Real rt = round_trip_implant_loss_db(t, 2.45e9, 0.002);
  const Real ow = tissue_loss_db(t, 2.45e9, 0.002) + interface_loss_db(t, 2.45e9);
  EXPECT_NEAR(rt, 2.0 * ow, 1e-9);
}

// --- antennas ------------------------------------------------------------------------

TEST(Antenna, MatchedLoadHasNoMismatchLoss) {
  EXPECT_NEAR(mismatch_loss_db({50.0, 0.0}, {50.0, 0.0}), 0.0, 1e-9);
}

TEST(Antenna, MismatchLossGrowsWithImbalance) {
  const Real small = mismatch_loss_db({50.0, 0.0}, {40.0, 5.0});
  const Real large = mismatch_loss_db({50.0, 0.0}, {5.0, 80.0});
  EXPECT_GT(large, small);
  EXPECT_GT(large, 3.0);
}

TEST(Antenna, ImplantAntennasAreLossy) {
  EXPECT_LT(contact_lens_loop().effective_gain_dbi(), -8.0);
  EXPECT_LT(neural_implant_loop().effective_gain_dbi(),
            monopole_2dbi().effective_gain_dbi());
}

// --- link budget -----------------------------------------------------------------------

TEST(Link, RssiDecreasesWithDistance) {
  BackscatterLinkConfig cfg;
  Real prev = 0.0;
  bool first = true;
  for (Real d = 1.0; d < 30.0; d *= 1.5) {
    const LinkSample s = backscatter_rssi(cfg, d);
    if (!first) {
      EXPECT_LT(s.rssi_dbm, prev);
    }
    prev = s.rssi_dbm;
    first = false;
  }
}

TEST(Link, HigherTxPowerRaisesRssiOneForOne) {
  BackscatterLinkConfig lo;
  lo.ble_tx_power_dbm = 0.0;
  BackscatterLinkConfig hi = lo;
  hi.ble_tx_power_dbm = 20.0;
  const Real d = 5.0;
  EXPECT_NEAR(backscatter_rssi(hi, d).rssi_dbm - backscatter_rssi(lo, d).rssi_dbm,
              20.0, 1e-9);
}

TEST(Link, TagMediumLossAppliedTwice) {
  BackscatterLinkConfig base;
  BackscatterLinkConfig lossy = base;
  lossy.tag_medium_loss_db = 7.0;
  const Real d = 3.0;
  EXPECT_NEAR(backscatter_rssi(base, d).rssi_dbm - backscatter_rssi(lossy, d).rssi_dbm,
              14.0, 1e-9);
}

TEST(Link, FartherBleSourceLowersIncidentPower) {
  BackscatterLinkConfig near;
  near.ble_tag_distance_m = 0.3048;
  BackscatterLinkConfig far = near;
  far.ble_tag_distance_m = 3 * 0.3048;
  const LinkSample a = backscatter_rssi(near, 5.0);
  const LinkSample b = backscatter_rssi(far, 5.0);
  EXPECT_GT(a.incident_at_tag_dbm, b.incident_at_tag_dbm);
  EXPECT_GT(a.rssi_dbm, b.rssi_dbm);
}

TEST(Link, BerFormulasDecreasing) {
  Real prev_b = 1.0;
  Real prev_q = 1.0;
  for (Real ebn0 = 0.0; ebn0 < 14.0; ebn0 += 2.0) {
    const Real b = ber_dbpsk(ebn0);
    const Real q = ber_dqpsk(ebn0);
    EXPECT_LT(b, prev_b);
    EXPECT_LT(q, prev_q);
    prev_b = b;
    prev_q = q;
  }
}

TEST(Link, PerMonotoneInSnr) {
  for (const auto rate : {itb::wifi::DsssRate::k2Mbps, itb::wifi::DsssRate::k11Mbps}) {
    Real prev = 1.1;
    for (Real snr = -4.0; snr < 16.0; snr += 2.0) {
      const Real per = per_80211b(rate, snr, 31);
      EXPECT_LE(per, prev + 1e-12);
      prev = per;
    }
  }
}

TEST(Link, PerNearZeroAtHighSnrNearOneAtLowSnr) {
  EXPECT_LT(per_80211b(itb::wifi::DsssRate::k2Mbps, 15.0, 31), 1e-3);
  EXPECT_GT(per_80211b(itb::wifi::DsssRate::k2Mbps, -10.0, 31), 0.9);
}

TEST(Link, HigherRateNeedsMoreSnr) {
  // At the same SNR, 11 Mbps has higher PER than 2 Mbps for equal payloads.
  const Real snr = 6.0;
  EXPECT_GT(per_80211b(itb::wifi::DsssRate::k11Mbps, snr, 31),
            per_80211b(itb::wifi::DsssRate::k2Mbps, snr, 31));
}

TEST(Link, DegenerateGeometryReportsLinkDownNotNan) {
  // Non-positive or NaN distances drive the pathloss model to NaN/-inf;
  // the guard must surface an explicit dead link instead.
  BackscatterLinkConfig cfg;
  for (const Real bad : {Real{0.0}, Real{-2.0},
                         std::numeric_limits<Real>::quiet_NaN()}) {
    cfg.ble_tag_distance_m = 1.0;
    const LinkSample s = backscatter_rssi(cfg, bad);
    EXPECT_TRUE(s.link_down);
    EXPECT_DOUBLE_EQ(s.snr_db, kLinkDownDb);
    EXPECT_FALSE(std::isnan(s.rssi_dbm));

    cfg.ble_tag_distance_m = bad;
    const LinkSample s2 = backscatter_rssi(cfg, 1.0);
    EXPECT_TRUE(s2.link_down);
    EXPECT_DOUBLE_EQ(s2.snr_db, kLinkDownDb);
  }
  // A detuned model (NaN loss) must also surface as link_down.
  cfg.ble_tag_distance_m = 1.0;
  cfg.tag_medium_loss_db = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_TRUE(backscatter_rssi(cfg, 1.0).link_down);
  // A sane geometry stays up.
  EXPECT_FALSE(backscatter_rssi(BackscatterLinkConfig{}, 2.0).link_down);
}

TEST(Link, PerGuardsAgainstNanAndLinkDownSnr) {
  EXPECT_DOUBLE_EQ(per_80211b(itb::wifi::DsssRate::k2Mbps,
                              std::numeric_limits<Real>::quiet_NaN(), 31),
                   1.0);
  EXPECT_DOUBLE_EQ(per_80211b(itb::wifi::DsssRate::k2Mbps, kLinkDownDb, 31),
                   1.0);
  EXPECT_DOUBLE_EQ(
      per_802154(std::numeric_limits<Real>::quiet_NaN(), 31), 1.0);
  EXPECT_DOUBLE_EQ(per_802154(kLinkDownDb, 31), 1.0);
}

TEST(Link, ZigbeePerMonotoneAndMoreRobustThanWifi) {
  // 250 kbps O-QPSK in the 22 MHz reference bandwidth gains ~19 dB of
  // processing margin over 1 Mbps DSSS; at any SNR where Wi-Fi struggles,
  // the ZigBee rung must decode strictly better (the graceful-degradation
  // ladder's final rung has to actually help).
  Real prev = 1.0;
  for (Real snr = -20.0; snr < 5.0; snr += 2.0) {
    const Real per = per_802154(snr, 31);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
    EXPECT_LE(per, per_80211b(itb::wifi::DsssRate::k1Mbps, snr, 31) + 1e-12);
  }
  EXPECT_LT(per_802154(-8.0, 31), 1e-3);
  EXPECT_GT(per_802154(-25.0, 31), 0.9);
}

TEST(Link, DirectRssiSanity) {
  LogDistanceModel m;
  const Real rssi = direct_rssi_dbm(0.0, 2.0, 2.0, m, 10.0);
  // 0 dBm + 4 dBi - (~40 + 22*log ratio) => between -70 and -50.
  EXPECT_LT(rssi, -50.0);
  EXPECT_GT(rssi, -75.0);
}

}  // namespace
}  // namespace itb::channel
