// Golden-vector conformance suite: pins the encoders to standards-derived
// reference vectors checked in under tests/golden/. Every vector was
// generated from first-principles implementations of the spec definitions
// (IEEE 802.11-2016, IEEE 802.15.4-2011, BT Core Spec), independent of the
// library code — so these tests anchor the library to the standards, not to
// itself. Runs under the `conformance` ctest label.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "phycommon/crc.h"
#include "phycommon/lfsr.h"
#include "wifi/barker.h"
#include "wifi/cck.h"
#include "zigbee/oqpsk.h"

namespace itb {
namespace {

using dsp::Real;

std::vector<std::string> golden_lines(const std::string& name) {
  const std::string path = std::string(GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

std::vector<Real> parse_reals(const std::string& line) {
  std::istringstream ss(line);
  std::vector<Real> out;
  Real v;
  while (ss >> v) out.push_back(v);
  return out;
}

// --- 802.11b Barker ------------------------------------------------------

TEST(Conformance, BarkerSequence) {
  const auto lines = golden_lines("barker11.txt");
  ASSERT_EQ(lines.size(), 1u);
  const auto ref = parse_reals(lines[0]);
  ASSERT_EQ(ref.size(), wifi::kBarker.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(static_cast<int>(ref[i]), wifi::kBarker[i]) << "chip " << i;
  }
}

// --- 802.15.4 chip table --------------------------------------------------

TEST(Conformance, ZigbeeChipTable) {
  const auto lines = golden_lines("zigbee_chip_table.txt");
  ASSERT_EQ(lines.size(), 16u);
  for (unsigned sym = 0; sym < 16; ++sym) {
    ASSERT_EQ(lines[sym].size(), zigbee::kChipsPerSymbol) << "symbol " << sym;
    const auto chips = zigbee::symbol_chips(sym);
    for (std::size_t c = 0; c < zigbee::kChipsPerSymbol; ++c) {
      EXPECT_EQ(lines[sym][c] - '0', chips[c])
          << "symbol " << sym << " chip " << c;
    }
  }
}

// --- CCK codewords --------------------------------------------------------

TEST(Conformance, Cck5_5Codewords) {
  const auto lines = golden_lines("cck_codewords_5_5.txt");
  ASSERT_EQ(lines.size(), 4u);
  const wifi::CckModulator mod(wifi::DsssRate::k5_5Mbps);
  for (const auto& line : lines) {
    const auto vals = parse_reals(line);
    ASSERT_EQ(vals.size(), 2u + 16u);
    const std::uint8_t d2 = static_cast<std::uint8_t>(vals[0]);
    const std::uint8_t d3 = static_cast<std::uint8_t>(vals[1]);
    const std::array<std::uint8_t, 2> data = {d2, d3};
    const auto p = mod.data_phases(std::span<const std::uint8_t>(data));
    const auto cw = wifi::cck_codeword(0.0, p[0], p[1], p[2]);
    for (std::size_t c = 0; c < cw.size(); ++c) {
      EXPECT_NEAR(cw[c].real(), vals[2 + 2 * c], 1e-9)
          << "d2=" << int(d2) << " d3=" << int(d3) << " chip " << c;
      EXPECT_NEAR(cw[c].imag(), vals[3 + 2 * c], 1e-9)
          << "d2=" << int(d2) << " d3=" << int(d3) << " chip " << c;
    }
  }
}

TEST(Conformance, Cck11Codewords) {
  const auto lines = golden_lines("cck_codewords_11.txt");
  ASSERT_EQ(lines.size(), 64u);
  const wifi::CckModulator mod(wifi::DsssRate::k11Mbps);
  for (const auto& line : lines) {
    const auto vals = parse_reals(line);
    ASSERT_EQ(vals.size(), 6u + 16u);
    std::array<std::uint8_t, 6> data{};
    for (int i = 0; i < 6; ++i) data[i] = static_cast<std::uint8_t>(vals[i]);
    const auto p = mod.data_phases(std::span<const std::uint8_t>(data));
    const auto cw = wifi::cck_codeword(0.0, p[0], p[1], p[2]);
    for (std::size_t c = 0; c < cw.size(); ++c) {
      EXPECT_NEAR(cw[c].real(), vals[6 + 2 * c], 1e-9) << "chip " << c;
      EXPECT_NEAR(cw[c].imag(), vals[7 + 2 * c], 1e-9) << "chip " << c;
    }
  }
}

// --- scramblers -----------------------------------------------------------

TEST(Conformance, DsssScramblerSyncField) {
  const auto lines = golden_lines("dsss_scrambler_sync.txt");
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_EQ(lines[0].size(), 128u);
  phy::DsssScrambler scrambler(0x6C);
  const phy::Bits ones(128, 1);
  const phy::Bits sync = scrambler.scramble(ones);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(lines[0][i] - '0', sync[i]) << "bit " << i;
  }
}

TEST(Conformance, OfdmScramblerAllOnesSequence) {
  const auto lines = golden_lines("ofdm_scrambler_127.txt");
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_EQ(lines[0].size(), 127u);
  const phy::Bits seq = phy::OfdmScrambler::sequence(0x7F, 127);
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(lines[0][i] - '0', seq[i]) << "bit " << i;
  }
  // Period-127 property from the polynomial's maximal length.
  const phy::Bits twice = phy::OfdmScrambler::sequence(0x7F, 254);
  for (std::size_t i = 0; i < 127; ++i) EXPECT_EQ(twice[i], twice[i + 127]);
}

// --- BLE whitener ---------------------------------------------------------

TEST(Conformance, BleWhiteningSequences) {
  for (const unsigned ch : {37u, 38u, 39u}) {
    const auto lines =
        golden_lines("ble_whitening_ch" + std::to_string(ch) + ".txt");
    ASSERT_EQ(lines.size(), 1u);
    ASSERT_EQ(lines[0].size(), 40u);
    const phy::Bits seq = phy::BleWhitener::sequence(ch, 40);
    for (std::size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(lines[0][i] - '0', seq[i]) << "channel " << ch << " bit " << i;
    }
  }
}

// --- CRC check values -----------------------------------------------------

TEST(Conformance, CrcCheckValues) {
  const auto lines = golden_lines("crc_checks.txt");
  ASSERT_EQ(lines.size(), 3u);
  const phy::Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  for (const auto& line : lines) {
    std::istringstream ss(line);
    std::string name, hex;
    ss >> name >> hex;
    const std::uint32_t expect =
        static_cast<std::uint32_t>(std::stoul(hex, nullptr, 16));
    if (name == "crc32_ieee") {
      EXPECT_EQ(phy::crc32_ieee(data), expect);
    } else if (name == "crc16_802154") {
      EXPECT_EQ(phy::crc16_802154(data), expect);
    } else if (name == "crc16_x25") {
      EXPECT_EQ(phy::crc16_x25(data), expect);
    } else {
      FAIL() << "unknown CRC name in golden file: " << name;
    }
  }
}

}  // namespace
}  // namespace itb
