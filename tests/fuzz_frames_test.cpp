// Deterministic fuzz tests for the byte/bit-level frame parsers: truncated,
// bit-flipped, and length-field-corrupted inputs must be rejected cleanly —
// no crash, no over-read (the CI ASan/UBSan job enforces the memory side),
// and no corrupted frame reported as valid.
#include <gtest/gtest.h>

#include <algorithm>

#include "ble/packet.h"
#include "dsp/rng.h"
#include "phycommon/lfsr.h"
#include "wifi/mac_frame.h"
#include "zigbee/frame.h"

namespace itb {
namespace {

using phy::Bits;
using phy::Bytes;

// --- wifi/mac_frame -------------------------------------------------------

wifi::MacFrame sample_data_frame(std::size_t body_bytes, std::uint8_t fill) {
  wifi::MacFrame f;
  f.type = wifi::FrameType::kData;
  f.duration_us = 314;
  f.addr2 = {1, 2, 3, 4, 5, 6};
  f.addr3 = {7, 8, 9, 10, 11, 12};
  f.sequence = 99;
  f.body.assign(body_bytes, fill);
  return f;
}

TEST(FuzzMacFrame, TruncationAtEveryLengthIsClean) {
  const Bytes full = wifi::serialize(sample_data_frame(40, 0xA5));
  for (std::size_t len = 0; len <= full.size(); ++len) {
    const Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    const auto r = wifi::parse(cut);
    if (len < full.size()) {
      // Either rejected outright or flagged as FCS-invalid; a truncated
      // frame must never present as intact.
      EXPECT_FALSE(r.has_value() && r->fcs_ok) << "len " << len;
    } else {
      ASSERT_TRUE(r.has_value());
      EXPECT_TRUE(r->fcs_ok);
    }
    if (r.has_value()) {
      EXPECT_LE(r->frame.body.size(), cut.size());
    }
  }
}

TEST(FuzzMacFrame, RandomBitFlipsNeverValidate) {
  dsp::Xoshiro256 rng(0xF1);
  const Bytes full = wifi::serialize(sample_data_frame(60, 0x3C));
  for (int iter = 0; iter < 400; ++iter) {
    Bytes mut = full;
    const std::size_t flips = 1 + rng.uniform_int(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t byte = rng.uniform_int(mut.size());
      mut[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    if (mut == full) continue;
    const auto r = wifi::parse(mut);
    if (r.has_value()) {
      EXPECT_FALSE(r->fcs_ok) << "iter " << iter;
      EXPECT_LE(r->frame.body.size(), mut.size());
    }
  }
}

TEST(FuzzMacFrame, RandomGarbageIsClean) {
  dsp::Xoshiro256 rng(0xF2);
  for (int iter = 0; iter < 400; ++iter) {
    Bytes junk(rng.uniform_int(80));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto r = wifi::parse(junk);
    if (r.has_value()) {
      EXPECT_LE(r->frame.body.size(), junk.size());
      EXPECT_FALSE(r->fcs_ok);
    }
  }
}

TEST(FuzzMacFrame, ControlFramesTruncateCleanly) {
  for (const auto type : {wifi::FrameType::kRts, wifi::FrameType::kCts,
                          wifi::FrameType::kAck}) {
    wifi::MacFrame f;
    f.type = type;
    f.addr2 = {9, 9, 9, 9, 9, 9};
    const Bytes full = wifi::serialize(f);
    for (std::size_t len = 0; len < full.size(); ++len) {
      const Bytes cut(full.begin(),
                      full.begin() + static_cast<std::ptrdiff_t>(len));
      const auto r = wifi::parse(cut);
      EXPECT_FALSE(r.has_value() && r->fcs_ok);
    }
  }
}

// --- zigbee/frame ---------------------------------------------------------

TEST(FuzzZigbeeFrame, TruncationAtEveryLengthIsClean) {
  const Bytes payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const Bytes ppdu = zigbee::build_ppdu(payload);
  for (std::size_t len = 0; len <= ppdu.size(); ++len) {
    const Bytes cut(ppdu.begin(), ppdu.begin() + static_cast<std::ptrdiff_t>(len));
    const auto r = zigbee::parse_ppdu(cut);
    if (len < ppdu.size()) {
      EXPECT_FALSE(r.has_value() && r->fcs_ok) << "len " << len;
    } else {
      ASSERT_TRUE(r.has_value());
      EXPECT_TRUE(r->fcs_ok);
      EXPECT_EQ(r->payload, payload);
    }
  }
}

TEST(FuzzZigbeeFrame, EveryPhrLengthValueIsClean) {
  // Corrupt the PHR length field to all 256 values: the parser must bound
  // every read by the actual buffer and by the 127-byte PSDU cap.
  const Bytes payload(10, 0x42);
  Bytes ppdu = zigbee::build_ppdu(payload);
  const std::size_t phr_at = 5;
  for (unsigned v = 0; v < 256; ++v) {
    Bytes mut = ppdu;
    mut[phr_at] = static_cast<std::uint8_t>(v);
    const auto r = zigbee::parse_ppdu(mut);
    if (r.has_value()) {
      EXPECT_LE(r->payload.size(), zigbee::kMaxPsduBytes);
      EXPECT_LE(r->payload.size() + 2, mut.size());
      if (v != payload.size() + 2) {
        EXPECT_FALSE(r->fcs_ok) << "phr " << v;
      }
    }
  }
}

TEST(FuzzZigbeeFrame, RandomBitFlipsNeverValidate) {
  dsp::Xoshiro256 rng(0xF3);
  const Bytes payload(24, 0x18);
  const Bytes ppdu = zigbee::build_ppdu(payload);
  for (int iter = 0; iter < 400; ++iter) {
    Bytes mut = ppdu;
    const std::size_t byte = 5 + rng.uniform_int(mut.size() - 5);
    mut[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    if (mut == ppdu) continue;
    const auto r = zigbee::parse_ppdu(mut);
    if (r.has_value() && r->fcs_ok) {
      // The only acceptable "valid" outcome is an unchanged payload (flip
      // landed in trailing bytes the parse ignores) — never a different one
      // reported as intact.
      EXPECT_EQ(r->payload, payload) << "iter " << iter;
    }
  }
}

// --- ble/packet -----------------------------------------------------------

TEST(FuzzBlePacket, TruncationAtEveryLengthIsClean) {
  ble::AdvPacketConfig cfg;
  cfg.payload = {0xCA, 0xFE, 0x01, 0x02, 0x03};
  const auto pkt = ble::build_adv_packet(cfg, 37);
  for (std::size_t len = 0; len <= pkt.air_bits.size(); ++len) {
    const Bits cut(pkt.air_bits.begin(),
                   pkt.air_bits.begin() + static_cast<std::ptrdiff_t>(len));
    const auto r = ble::parse_adv_packet(cut, 37);
    if (len < pkt.air_bits.size()) {
      EXPECT_FALSE(r.has_value() && r->crc_ok) << "len " << len;
    } else {
      ASSERT_TRUE(r.has_value());
      EXPECT_TRUE(r->crc_ok);
    }
    if (r.has_value()) {
      EXPECT_LE(r->payload.size() * 8, cut.size());
    }
  }
}

TEST(FuzzBlePacket, LengthFieldCorruptionIsClean) {
  // The PDU length byte sits at air bits 48..55 (after preamble, AA and the
  // type nibble+flags). Force all 256 values through the whitener.
  ble::AdvPacketConfig cfg;
  cfg.payload = {0x11, 0x22, 0x33};
  const auto pkt = ble::build_adv_packet(cfg, 38);
  const std::size_t len_bit0 = 8 + 32 + 8;
  const Bits whitening = phy::BleWhitener::sequence(38, pkt.air_bits.size());
  for (unsigned v = 0; v < 256; ++v) {
    Bits mut = pkt.air_bits;
    for (int b = 0; b < 8; ++b) {
      const std::uint8_t plain = static_cast<std::uint8_t>((v >> b) & 1);
      // Re-whiten the forged bit so the parser sees `v` as the length.
      mut[len_bit0 + static_cast<std::size_t>(b)] =
          plain ^ whitening[len_bit0 - 40 + static_cast<std::size_t>(b)];
    }
    const auto r = ble::parse_adv_packet(mut, 38);
    if (r.has_value()) {
      EXPECT_LE(r->payload.size() + 6, 256u);
      if (v != 6 + cfg.payload.size()) {
        EXPECT_FALSE(r->crc_ok) << "forged length " << v;
      }
    }
  }
}

TEST(FuzzBlePacket, RandomBitFlipsNeverValidate) {
  dsp::Xoshiro256 rng(0xF4);
  ble::AdvPacketConfig cfg;
  cfg.payload = {5, 6, 7, 8, 9, 10, 11};
  const auto pkt = ble::build_adv_packet(cfg, 39);
  for (int iter = 0; iter < 400; ++iter) {
    Bits mut = pkt.air_bits;
    // CRC-24 guarantees detection of any <=2-bit error over this span.
    const std::size_t flips = 1 + rng.uniform_int(2);
    for (std::size_t f = 0; f < flips; ++f) {
      // Flip after the access address so parsing proceeds to the CRC.
      const std::size_t at = 40 + rng.uniform_int(mut.size() - 40);
      mut[at] ^= 1;
    }
    if (mut == pkt.air_bits) continue;
    const auto r = ble::parse_adv_packet(mut, 39);
    if (r.has_value()) {
      EXPECT_FALSE(r->crc_ok) << "iter " << iter;
    }
  }
}

TEST(FuzzBlePacket, RandomGarbageBitsAreClean) {
  dsp::Xoshiro256 rng(0xF5);
  for (int iter = 0; iter < 400; ++iter) {
    Bits junk(rng.uniform_int(400));
    for (auto& b : junk) b = rng.bit() ? 1 : 0;
    const auto r = ble::parse_adv_packet(junk, 37);
    if (r.has_value()) {
      EXPECT_FALSE(r->crc_ok);
      EXPECT_LE(r->payload.size() * 8, junk.size());
    }
  }
}

}  // namespace
}  // namespace itb
