// Tests for the DCF coexistence simulator (Fig. 12 substrate), the channel
// reservation schemes (§2.3.3) and the query-reply protocol (§2.5).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "mac/dcf.h"
#include "mac/query_reply.h"
#include "mac/reservation.h"

namespace itb::mac {
namespace {

// --- DCF -----------------------------------------------------------------------

TEST(Dcf, BaselineThroughputInIperfRange) {
  DcfConfig cfg;
  InterfererConfig none;
  const DcfResult r = simulate_dcf(cfg, none, 2.0, 1);
  // A saturated 36->54 Mbps 802.11g TCP flow lands around 18-26 Mbps.
  EXPECT_GT(r.throughput_mbps, 15.0);
  EXPECT_LT(r.throughput_mbps, 30.0);
  EXPECT_LT(r.collision_rate, 0.01);
}

TEST(Dcf, OffChannelInterfererIsHarmless) {
  DcfConfig cfg;
  InterfererConfig ssb;
  ssb.packets_per_second = 1000.0;
  ssb.on_victim_channel = false;  // SSB: packets land on channel 11
  InterfererConfig none;
  const DcfResult with = simulate_dcf(cfg, ssb, 2.0, 2);
  const DcfResult without = simulate_dcf(cfg, none, 2.0, 2);
  EXPECT_NEAR(with.throughput_mbps, without.throughput_mbps, 0.5);
}

TEST(Dcf, OnChannelMirrorDegradesThroughput) {
  DcfConfig cfg;
  InterfererConfig dsb;
  dsb.packets_per_second = 1000.0;
  dsb.on_victim_channel = true;  // DSB mirror copy lands on channel 6
  InterfererConfig none;
  const DcfResult with = simulate_dcf(cfg, dsb, 2.0, 3);
  const DcfResult without = simulate_dcf(cfg, none, 2.0, 3);
  EXPECT_LT(with.throughput_mbps, 0.75 * without.throughput_mbps);
  EXPECT_GT(with.collision_rate, 0.1);
}

TEST(Dcf, LowRateInterfererNegligible) {
  // Paper Fig. 12: at 50 pkts/s even the DSB mirror barely dents iperf.
  DcfConfig cfg;
  InterfererConfig dsb;
  dsb.packets_per_second = 50.0;
  dsb.on_victim_channel = true;
  InterfererConfig none;
  const DcfResult with = simulate_dcf(cfg, dsb, 2.0, 4);
  const DcfResult without = simulate_dcf(cfg, none, 2.0, 4);
  EXPECT_GT(with.throughput_mbps, 0.85 * without.throughput_mbps);
}

TEST(Dcf, DegradationGrowsWithRate) {
  DcfConfig cfg;
  double prev = 1e9;
  for (const double rate : {50.0, 650.0, 1000.0}) {
    InterfererConfig i;
    i.packets_per_second = rate;
    i.on_victim_channel = true;
    const DcfResult r = simulate_dcf(cfg, i, 2.0, 5);
    EXPECT_LT(r.throughput_mbps, prev + 0.8);
    prev = r.throughput_mbps;
  }
}

TEST(Dcf, DeterministicForSameSeed) {
  DcfConfig cfg;
  InterfererConfig i;
  i.packets_per_second = 650.0;
  i.on_victim_channel = true;
  const DcfResult a = simulate_dcf(cfg, i, 1.0, 42);
  const DcfResult b = simulate_dcf(cfg, i, 1.0, 42);
  EXPECT_DOUBLE_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.frames_ok, b.frames_ok);
}

// --- reservation (§2.3.3) -----------------------------------------------------------

TEST(Reservation, NoSchemeSuffersAmbientCollisions) {
  ReservationConfig cfg;
  cfg.scheme = ReservationScheme::kNone;
  cfg.channel_busy_probability = 0.3;
  const ReservationResult r = evaluate_reservation(cfg, 4000, 1);
  EXPECT_NEAR(r.collision_fraction, 0.3, 0.03);
}

TEST(Reservation, CtsToSelfEliminatesCollisions) {
  ReservationConfig cfg;
  cfg.scheme = ReservationScheme::kCtsToSelf;
  const ReservationResult r = evaluate_reservation(cfg, 1000, 2);
  EXPECT_DOUBLE_EQ(r.collision_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.clean_transmissions_per_event, 3.0);
}

TEST(Reservation, TagRtsProtectsButCostsControl) {
  ReservationConfig cfg;
  cfg.scheme = ReservationScheme::kTagRts;
  const ReservationResult r = evaluate_reservation(cfg, 4000, 3);
  EXPECT_DOUBLE_EQ(r.collision_fraction, 0.0);  // protected or silent
  EXPECT_GT(r.control_overhead_us, 0.0);
  EXPECT_LT(r.clean_transmissions_per_event, 2.01);
}

TEST(Reservation, DataAsRtsBeatsPlainRtsOnGoodput) {
  ReservationConfig rts;
  rts.scheme = ReservationScheme::kTagRts;
  ReservationConfig data;
  data.scheme = ReservationScheme::kDataAsRts;
  const ReservationResult a = evaluate_reservation(rts, 4000, 4);
  const ReservationResult b = evaluate_reservation(data, 4000, 4);
  // Same protection, but the first slot carries data instead of control.
  EXPECT_GT(b.clean_transmissions_per_event, a.clean_transmissions_per_event);
  EXPECT_LT(b.control_overhead_us, a.control_overhead_us + 1e-9);
}

TEST(Reservation, OutOfRangeProbabilitiesAreClamped) {
  // Regression: probabilities outside [0,1] used to flow straight into the
  // Monte-Carlo loop and could produce negative clean-transmission counts.
  ReservationConfig cfg;
  cfg.scheme = ReservationScheme::kDataAsRts;
  cfg.channel_busy_probability = 1.7;    // clamps to 1 -> everything collides
  cfg.cts_detection_probability = -0.3;  // clamps to 0
  const ReservationResult r = evaluate_reservation(cfg, 1000, 11);
  EXPECT_GE(r.clean_transmissions_per_event, 0.0);
  EXPECT_LE(r.collision_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.clean_transmissions_per_event, 0.0);
  EXPECT_DOUBLE_EQ(r.collision_fraction, 1.0);

  const ReservationConfig v = cfg.validated();
  EXPECT_DOUBLE_EQ(v.channel_busy_probability, 1.0);
  EXPECT_DOUBLE_EQ(v.cts_detection_probability, 0.0);

  cfg.channel_busy_probability = std::nan("");
  EXPECT_DOUBLE_EQ(cfg.validated().channel_busy_probability, 0.0);
}

TEST(Reservation, ZeroEventsYieldsZeroesNotNan) {
  ReservationConfig cfg;
  cfg.scheme = ReservationScheme::kTagRts;
  const ReservationResult r = evaluate_reservation(cfg, 0, 12);
  EXPECT_DOUBLE_EQ(r.clean_transmissions_per_event, 0.0);
  EXPECT_DOUBLE_EQ(r.collision_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.control_overhead_us, 0.0);
}

TEST(Reservation, ClosedFormMatchesMonteCarlo) {
  // reservation_outcome() is the O(1) form the network simulator uses per
  // poll; it must agree with the Monte-Carlo evaluator in expectation.
  for (const auto scheme :
       {ReservationScheme::kNone, ReservationScheme::kCtsToSelf,
        ReservationScheme::kTagRts, ReservationScheme::kDataAsRts}) {
    ReservationConfig cfg;
    cfg.scheme = scheme;
    cfg.channel_busy_probability = 0.25;
    cfg.cts_detection_probability = 0.9;
    const ReservationOutcome closed = reservation_outcome(cfg);
    const ReservationResult mc = evaluate_reservation(cfg, 20000, 13);
    EXPECT_NEAR(closed.data_slots_per_event * closed.p_clean,
                mc.clean_transmissions_per_event, 0.05)
        << "scheme " << static_cast<int>(scheme);
    EXPECT_NEAR(closed.control_overhead_us, mc.control_overhead_us, 1e-9);
    // Outcome probabilities form a distribution.
    EXPECT_NEAR(closed.p_clean + closed.p_collision + closed.p_silent, 1.0,
                1e-12);
    EXPECT_GE(closed.p_clean, 0.0);
    EXPECT_GE(closed.p_collision, 0.0);
    EXPECT_GE(closed.p_silent, 0.0);
  }
}

TEST(Reservation, BusierChannelHurtsUnprotectedMore) {
  for (const auto scheme : {ReservationScheme::kNone, ReservationScheme::kDataAsRts}) {
    ReservationConfig quiet;
    quiet.scheme = scheme;
    quiet.channel_busy_probability = 0.05;
    ReservationConfig busy = quiet;
    busy.channel_busy_probability = 0.6;
    const auto a = evaluate_reservation(quiet, 3000, 5);
    const auto b = evaluate_reservation(busy, 3000, 5);
    EXPECT_GT(a.clean_transmissions_per_event, b.clean_transmissions_per_event);
  }
}

// --- query-reply (§2.5) -----------------------------------------------------------

TEST(QueryReply, FrameRoundTrip) {
  QueryFrame q;
  q.tag_address = 0x42;
  q.opcode = 0x07;
  const auto bits = q.to_bits();
  EXPECT_EQ(bits.size(), QueryFrame::kBits);
  const auto parsed = QueryFrame::from_bits(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tag_address, 0x42);
  EXPECT_EQ(parsed->opcode, 0x07);
}

TEST(QueryReply, ChecksumCatchesCorruption) {
  QueryFrame q;
  q.tag_address = 0x11;
  q.opcode = 0x22;
  auto bits = q.to_bits();
  bits[3] ^= 1;
  EXPECT_FALSE(QueryFrame::from_bits(bits).has_value());
}

TEST(QueryReply, PollingDeliversMostReplies) {
  std::vector<PolledTag> tags;
  for (std::uint8_t a = 1; a <= 4; ++a) {
    tags.push_back({a, itb::phy::Bytes(30, a)});
  }
  PollingConfig cfg;
  const PollingStats s = simulate_polling(tags, cfg, 100, 6);
  EXPECT_EQ(s.queries_sent, 400u);
  EXPECT_GT(s.replies_received, 350u);
  EXPECT_GT(s.aggregate_goodput_kbps, 1.0);
}

TEST(QueryReply, LossyLinksReduceGoodput) {
  std::vector<PolledTag> tags = {{1, itb::phy::Bytes(30, 9)}};
  PollingConfig good;
  PollingConfig bad = good;
  bad.uplink_error_rate = 0.5;
  const PollingStats a = simulate_polling(tags, good, 200, 7);
  const PollingStats b = simulate_polling(tags, bad, 200, 7);
  EXPECT_GT(a.aggregate_goodput_kbps, b.aggregate_goodput_kbps);
}

TEST(QueryReply, ZeroTimeGoodputIsZeroNotNan) {
  // Regression: aggregate_goodput_kbps must be 0, never NaN, whenever
  // total_time_us is 0 — empty tag list, zero rounds, or both.
  PollingConfig cfg;
  const PollingStats none = simulate_polling({}, cfg, 100, 9);
  EXPECT_EQ(none.queries_sent, 0u);
  EXPECT_DOUBLE_EQ(none.total_time_us, 0.0);
  EXPECT_DOUBLE_EQ(none.aggregate_goodput_kbps, 0.0);
  EXPECT_FALSE(std::isnan(none.aggregate_goodput_kbps));

  std::vector<PolledTag> tags = {{1, itb::phy::Bytes(30, 1)}};
  const PollingStats zero_rounds = simulate_polling(tags, cfg, 0, 9);
  EXPECT_DOUBLE_EQ(zero_rounds.aggregate_goodput_kbps, 0.0);
  EXPECT_FALSE(std::isnan(zero_rounds.aggregate_goodput_kbps));

  EXPECT_DOUBLE_EQ(safe_goodput_kbps(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_goodput_kbps(240.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_goodput_kbps(240.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_goodput_kbps(240.0, 1e3), 240.0);
}

TEST(QueryReply, ValidatedClampsDegeneratePollingConfig) {
  // Mirrors ReservationConfig::validated(): degenerate rates/intervals fall
  // back to defaults (they feed poll_slot_us divisions), probabilities
  // clamp into [0, 1].
  PollingConfig cfg;
  cfg.downlink_kbps = 0.0;
  cfg.advertising_interval_ms = -5.0;
  cfg.downlink_error_rate = 1.7;
  cfg.uplink_error_rate = std::numeric_limits<Real>::quiet_NaN();
  const PollingConfig v = cfg.validated();
  EXPECT_DOUBLE_EQ(v.downlink_kbps, PollingConfig{}.downlink_kbps);
  EXPECT_DOUBLE_EQ(v.advertising_interval_ms,
                   PollingConfig{}.advertising_interval_ms);
  EXPECT_DOUBLE_EQ(v.downlink_error_rate, 1.0);
  EXPECT_DOUBLE_EQ(v.uplink_error_rate, 0.0);
  EXPECT_GT(poll_slot_us(v), 0.0);

  cfg.downlink_kbps = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_DOUBLE_EQ(cfg.validated().downlink_kbps,
                   PollingConfig{}.downlink_kbps);

  // An already-sane config passes through untouched.
  const PollingConfig sane;
  const PollingConfig sv = sane.validated();
  EXPECT_DOUBLE_EQ(sv.downlink_kbps, sane.downlink_kbps);
  EXPECT_DOUBLE_EQ(sv.uplink_error_rate, sane.uplink_error_rate);
}

TEST(QueryReply, EmptyPayloadsDeliverZeroGoodput) {
  // Tags that answer polls with empty payloads: replies counted, goodput 0.
  std::vector<PolledTag> tags = {{1, {}}, {2, {}}};
  PollingConfig cfg;
  cfg.downlink_error_rate = 0.0;
  cfg.uplink_error_rate = 0.0;
  const PollingStats s = simulate_polling(tags, cfg, 50, 9);
  EXPECT_EQ(s.replies_received, 100u);
  EXPECT_GT(s.total_time_us, 0.0);
  EXPECT_DOUBLE_EQ(s.aggregate_goodput_kbps, 0.0);
  EXPECT_FALSE(std::isnan(s.aggregate_goodput_kbps));
}

TEST(QueryReply, PollSlotAccountsQueryAndReplyWindow) {
  PollingConfig cfg;
  cfg.downlink_kbps = 125.0;
  cfg.advertising_interval_ms = 20.0;
  const double expected = 20.0 / 125.0 * 1e3 + 20e3;  // 20 bits + window
  EXPECT_NEAR(poll_slot_us(cfg), expected, 1e-9);
}

TEST(QueryReply, MoreTagsShareTheMedium) {
  PollingConfig cfg;
  std::vector<PolledTag> one = {{1, itb::phy::Bytes(30, 1)}};
  std::vector<PolledTag> four;
  for (std::uint8_t a = 1; a <= 4; ++a) four.push_back({a, itb::phy::Bytes(30, a)});
  const PollingStats s1 = simulate_polling(one, cfg, 100, 8);
  const PollingStats s4 = simulate_polling(four, cfg, 100, 8);
  // Per-tag goodput shrinks with more tags (round-robin), aggregate holds.
  EXPECT_NEAR(s4.aggregate_goodput_kbps, s1.aggregate_goodput_kbps, 0.5);
}

}  // namespace
}  // namespace itb::mac
