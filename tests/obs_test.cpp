// Observability-layer suite (ctest -L obs): the metrics registry and trace
// log must be bit-identical at any thread count and byte-identical across
// repeat exports, the trace JSON must actually parse, histogram bucket
// edges must follow the Prometheus `le` convention, ProfZone must account
// self vs child time, and the PollRecord ring must drop oldest-first
// without touching the digest.
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "obs/capture.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/network.h"

namespace {

using namespace itb;

// --------------------------------------------------------------------------
// Minimal recursive-descent JSON parser: enough to round-trip the writers'
// output and prove well-formedness (objects, arrays, strings, numbers,
// bools, null; no escapes beyond \" and \\, which is all the writers emit).
// --------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::out_of_range("missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  bool parse(Json& out) {
    skip();
    if (!value(out)) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  void skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool value(Json& out) {
    skip();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = Json::Type::kString;
      return string(out.str);
    }
    if (c == 't') {
      out.type = Json::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = Json::Type::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      out.push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(Json& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.type = Json::Type::kNumber;
    out.number = std::stod(std::string(s_.substr(start, pos_ - start)));
    return true;
  }
  bool array(Json& out) {
    out.type = Json::Type::kArray;
    ++pos_;  // '['
    skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(Json& out) {
    out.type = Json::Type::kObject;
    ++pos_;  // '{'
    skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      Json v;
      if (!value(v)) return false;
      out.obj.emplace(std::move(key), std::move(v));
      skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------------------
// Shared fixture config: a fault-injected resilient ward, small enough to
// run at three thread counts in milliseconds but wide enough that 8 threads
// actually interleave (shard_tags 64 -> ~16 shards).
// --------------------------------------------------------------------------

sim::NetworkConfig ward_config() {
  sim::NetworkConfig cfg;
  cfg.topology.kind = sim::TopologyKind::kHospitalWard;
  cfg.topology.num_tags = 1000;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = 8;
  cfg.detector_sensitivity_dbm = -49.0;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 4;
  cfg.seed = 77;
  cfg.shard_tags = 64;
  cfg.enable_arq = true;
  cfg.fallback.enable_rate_fallback = true;
  cfg.ap_failover = true;
  cfg.keep_trace = true;
  cfg.faults.ap_outage(0, 1e6, 2e6);
  cfg.faults.interference(6, 2e6, 1e6, 18.0);
  cfg.faults.brownout(5, 5e5, 5e5);
  return cfg;
}

std::string metrics_json(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  snap.write_json(os);
  return os.str();
}

std::string metrics_prom(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  snap.write_prometheus(os);
  return os.str();
}

std::string trace_json(const obs::TraceLog& log) {
  std::ostringstream os;
  log.write_perfetto_json(os);
  return os.str();
}

// --------------------------------------------------------------------------
// Metrics registry
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, RegistrationIsIdempotentAndTypeChecked) {
  obs::MetricsRegistry reg;
  const obs::MetricId a = reg.counter("itb.test.a");
  EXPECT_EQ(reg.counter("itb.test.a"), a);
  EXPECT_NE(reg.gauge("itb.test.b"), a);
  EXPECT_THROW(reg.gauge("itb.test.a"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("itb.test.h", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("itb.test.h", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("itb.test.h", {1.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistryTest, HistogramBucketEdgesFollowLeConvention) {
  obs::MetricsRegistry reg;
  const obs::MetricId h = reg.histogram("itb.test.h", {1.0, 2.0, 5.0});
  obs::MetricCells cells = reg.make_cells();
  // Bucket i counts v <= edge[i] (first matching bucket), overflow past the
  // last edge — the Prometheus `le` convention, non-cumulative storage.
  cells.observe(h, 0.5);   // bucket 0
  cells.observe(h, 1.0);   // bucket 0 (inclusive upper edge)
  cells.observe(h, 1.5);   // bucket 1
  cells.observe(h, 5.0);   // bucket 2
  cells.observe(h, 7.0);   // overflow
  const obs::MetricsSnapshot snap = reg.merge({cells});
  const obs::MetricValue* m = snap.find("itb.test.h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 5u);
  EXPECT_DOUBLE_EQ(m->value, 0.5 + 1.0 + 1.5 + 5.0 + 7.0);
  ASSERT_EQ(m->buckets.size(), 4u);
  EXPECT_EQ(m->buckets[0], 2u);
  EXPECT_EQ(m->buckets[1], 1u);
  EXPECT_EQ(m->buckets[2], 1u);
  EXPECT_EQ(m->buckets[3], 1u);

  // The Prometheus writer emits the cumulative form.
  const std::string prom = metrics_prom(snap);
  EXPECT_NE(prom.find("itb_test_h_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("itb_test_h_bucket{le=\"2\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("itb_test_h_bucket{le=\"5\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("itb_test_h_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(prom.find("itb_test_h_count 5"), std::string::npos);
}

TEST(MetricsRegistryTest, MergeSumsCountersAndKeepsLastGaugeInShardOrder) {
  obs::MetricsRegistry reg;
  const obs::MetricId c = reg.counter("itb.test.c");
  const obs::MetricId g = reg.gauge("itb.test.g");
  obs::MetricCells s0 = reg.make_cells();
  obs::MetricCells s1 = reg.make_cells();
  obs::MetricCells s2 = reg.make_cells();
  s0.add(c, 3);
  s2.add(c, 4);
  s0.set(g, 1.0);
  s1.set(g, 2.0);
  // s2 never sets the gauge: the merged value is the last *set* in shard
  // order, not the last shard.
  const obs::MetricsSnapshot snap = reg.merge({s0, s1, s2});
  EXPECT_EQ(snap.counter_value("itb.test.c"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("itb.test.g"), 2.0);
}

// --------------------------------------------------------------------------
// Trace buffer / log
// --------------------------------------------------------------------------

TEST(TraceBufferTest, DropsOldestWhenFull) {
  obs::TraceBuffer buf(4);
  for (int i = 1; i <= 6; ++i) {
    buf.instant("e", "t", 1, 1, i);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 2u);
  const std::vector<obs::TraceEvent> kept = buf.drain();
  ASSERT_EQ(kept.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(kept[i].ts_us, i + 3);
}

TEST(TraceLogTest, ExportParsesAndOrdersByTime) {
  obs::TraceLog log;
  log.set_process_name(1, "proc \"one\"");  // exercises string escaping
  log.set_thread_name(1, 1, "thread");
  log.span("late", "t", 1, 1, 50, 10);
  log.instant("early", "t", 1, 1, 5);
  log.finalize();
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(std::string(log.events()[0].name), "early");

  Json doc;
  ASSERT_TRUE(JsonParser(trace_json(log)).parse(doc));
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::kArray);
  // 2 metadata records + 2 data events.
  ASSERT_EQ(events.arr.size(), 4u);
  EXPECT_EQ(events.arr[0].at("ph").str, "M");
  EXPECT_EQ(events.arr[0].at("args").at("name").str, "proc \"one\"");
  EXPECT_EQ(events.arr[2].at("name").str, "early");
  EXPECT_EQ(events.arr[3].at("name").str, "late");
  EXPECT_DOUBLE_EQ(events.arr[3].at("dur").number, 10.0);
}

// --------------------------------------------------------------------------
// Network capture: determinism + export stability
// --------------------------------------------------------------------------

TEST(NetworkCaptureTest, SnapshotAndTraceAreThreadCountInvariant) {
  sim::NetworkConfig cfg = ward_config();

  // Reference: no capture attached — observing must not perturb results.
  cfg.num_threads = 1;
  const std::uint64_t bare_digest = sim::NetworkCoordinator(cfg).run().digest();

  std::vector<std::uint64_t> stat_digests;
  std::vector<std::uint64_t> metric_digests;
  std::vector<std::uint64_t> trace_digests;
  std::vector<std::string> json_exports;
  std::vector<std::string> prom_exports;
  std::vector<std::string> trace_exports;
  for (const std::size_t threads : {1, 2, 8}) {
    cfg.num_threads = threads;
    obs::RunCapture capture;
    const sim::NetworkStats s = sim::NetworkCoordinator(cfg).run(&capture);
    stat_digests.push_back(s.digest());
    metric_digests.push_back(capture.metrics.digest());
    trace_digests.push_back(capture.trace.digest());
    json_exports.push_back(metrics_json(capture.metrics));
    prom_exports.push_back(metrics_prom(capture.metrics));
    trace_exports.push_back(trace_json(capture.trace));

    // The snapshot agrees with the stats it observed.
    EXPECT_EQ(capture.metrics.counter_value("itb.sim.polls_total"),
              s.queries_sent);
    EXPECT_EQ(capture.metrics.counter_value("itb.sim.replies_total"),
              s.replies_received);
    EXPECT_EQ(capture.metrics.counter_value("itb.arq.retries"),
              s.retransmissions);
    EXPECT_EQ(capture.metrics.counter_value("itb.faults.outage_skips"),
              s.outage_skips);
    const obs::MetricValue* lat =
        capture.metrics.find("itb.sim.poll_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, s.replies_received);
    EXPECT_GT(capture.trace.size(), 0u);
  }
  for (std::size_t i = 1; i < stat_digests.size(); ++i) {
    EXPECT_EQ(stat_digests[i], stat_digests[0]);
    EXPECT_EQ(metric_digests[i], metric_digests[0]);
    EXPECT_EQ(trace_digests[i], trace_digests[0]);
    EXPECT_EQ(json_exports[i], json_exports[0]) << "JSON export not byte-stable";
    EXPECT_EQ(prom_exports[i], prom_exports[0]);
    EXPECT_EQ(trace_exports[i], trace_exports[0]);
  }
  EXPECT_EQ(stat_digests[0], bare_digest)
      << "attaching a RunCapture changed the simulation result";
}

TEST(NetworkCaptureTest, TraceJsonParsesBackWithFaultSpans) {
  sim::NetworkConfig cfg = ward_config();
  cfg.num_threads = 2;
  obs::RunCapture capture;
  (void)sim::NetworkCoordinator(cfg).run(&capture);

  Json doc;
  ASSERT_TRUE(JsonParser(trace_json(capture.trace)).parse(doc));
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::kArray);

  std::size_t data_events = 0;
  std::size_t fault_spans = 0;
  std::size_t poll_events = 0;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.type, Json::Type::kObject);
    const std::string& ph = e.at("ph").str;
    if (ph == "M") continue;
    ++data_events;
    EXPECT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_TRUE(e.has("ts"));
    if (ph == "X") {
      EXPECT_TRUE(e.has("dur"));
    }
    const std::string& cat = e.at("cat").str;
    if (cat == "fault") {
      ++fault_spans;
      EXPECT_EQ(ph, "X");
    }
    if (cat == "poll") ++poll_events;
  }
  EXPECT_EQ(data_events, capture.trace.size());
  // The three scheduled faults all appear as spans.
  EXPECT_EQ(fault_spans, 3u);
  EXPECT_GT(poll_events, 0u);
}

TEST(NetworkCaptureTest, TraceRingDropsOldestAndCountsThem) {
  sim::NetworkConfig cfg = ward_config();
  cfg.num_threads = 2;
  obs::RunCapture capture;
  capture.trace_events_per_shard = 16;  // force per-shard drops
  (void)sim::NetworkCoordinator(cfg).run(&capture);
  EXPECT_GT(capture.trace.dropped(), 0u);
  EXPECT_EQ(capture.metrics.counter_value("itb.trace.events_dropped"),
            capture.trace.dropped());
}

// --------------------------------------------------------------------------
// PollRecord trace hardening (NetworkConfig::trace_capacity)
// --------------------------------------------------------------------------

TEST(PollTraceCapacityTest, KeepsNewestRecordsAndCountsDrops) {
  sim::NetworkConfig cfg = ward_config();
  cfg.num_threads = 1;
  const sim::NetworkStats full = sim::NetworkCoordinator(cfg).run();
  ASSERT_GT(full.trace.size(), 256u);
  EXPECT_EQ(full.trace_dropped, 0u);

  cfg.trace_capacity = 256;
  for (const std::size_t threads : {1, 2, 8}) {
    cfg.num_threads = threads;
    const sim::NetworkStats bounded = sim::NetworkCoordinator(cfg).run();
    ASSERT_EQ(bounded.trace.size(), 256u);
    EXPECT_EQ(bounded.trace_dropped, full.trace.size() - 256u);
    // Oldest-drop: the kept window is exactly the tail of the full trace,
    // at any thread count.
    const std::size_t off = full.trace.size() - 256u;
    for (std::size_t i = 0; i < 256u; ++i) {
      EXPECT_EQ(bounded.trace[i].time_us, full.trace[off + i].time_us);
      EXPECT_EQ(bounded.trace[i].tag, full.trace[off + i].tag);
      EXPECT_EQ(bounded.trace[i].outcome, full.trace[off + i].outcome);
    }
    // The knob never touches the result identity.
    EXPECT_EQ(bounded.digest(), full.digest());
  }

  // The drop counter surfaces through the metrics registry.
  cfg.num_threads = 1;
  obs::RunCapture capture;
  const sim::NetworkStats s = sim::NetworkCoordinator(cfg).run(&capture);
  EXPECT_EQ(capture.metrics.counter_value("itb.sim.trace_records_dropped"),
            s.trace_dropped);
}

// --------------------------------------------------------------------------
// ProfZone
// --------------------------------------------------------------------------

/// Busy-spins long enough to be measurable; returns a value so the loop
/// can't be optimized away.
std::uint64_t spin(std::uint64_t iters) {
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) acc = acc + i;
  return acc;
}

double zone_total_ms(const std::vector<obs::ProfZoneStat>& stats,
                     const std::string& name) {
  for (const obs::ProfZoneStat& s : stats) {
    if (s.name == name) return s.total_ms;
  }
  return -1.0;
}

double zone_self_ms(const std::vector<obs::ProfZoneStat>& stats,
                    const std::string& name) {
  for (const obs::ProfZoneStat& s : stats) {
    if (s.name == name) return s.self_ms;
  }
  return -1.0;
}

std::uint64_t zone_calls(const std::vector<obs::ProfZoneStat>& stats,
                         const std::string& name) {
  for (const obs::ProfZoneStat& s : stats) {
    if (s.name == name) return s.calls;
  }
  return 0;
}

TEST(ProfZoneTest, NestingAttributesSelfTime) {
  obs::prof_enable(true);
  obs::prof_reset();
  const std::size_t outer = obs::prof_zone("test.outer");
  const std::size_t inner = obs::prof_zone("test.inner");
  for (int rep = 0; rep < 3; ++rep) {
    obs::ProfZone po(outer);
    spin(400000);
    {
      obs::ProfZone pi(inner);
      spin(400000);
    }
  }
  obs::prof_enable(false);

  const auto stats = obs::prof_report();
  EXPECT_EQ(zone_calls(stats, "test.outer"), 3u);
  EXPECT_EQ(zone_calls(stats, "test.inner"), 3u);
  const double outer_total = zone_total_ms(stats, "test.outer");
  const double outer_self = zone_self_ms(stats, "test.outer");
  const double inner_total = zone_total_ms(stats, "test.inner");
  ASSERT_GT(outer_total, 0.0);
  ASSERT_GT(inner_total, 0.0);
  // The inner zone nests inside the outer one, so outer self = outer total
  // minus inner total (exactly, by construction of the child-time stack).
  EXPECT_GT(outer_total, inner_total);
  EXPECT_NEAR(outer_self, outer_total - inner_total, 1e-9);

  std::ostringstream table;
  obs::prof_write_table(table, "test.outer");
  EXPECT_NE(table.str().find("test.outer"), std::string::npos);
  EXPECT_NE(table.str().find("attribution"), std::string::npos);
}

TEST(ProfZoneTest, DisabledZonesCostNothingAndCountNothing) {
  obs::prof_enable(false);
  obs::prof_reset();
  const std::size_t zone = obs::prof_zone("test.disabled");
  for (int i = 0; i < 1000; ++i) {
    obs::ProfZone p(zone);
  }
  EXPECT_EQ(zone_calls(obs::prof_report(), "test.disabled"), 0u);
}

}  // namespace
