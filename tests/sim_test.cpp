// Tests for the discrete-event multi-tag network simulator (src/sim/):
// engine ordering + determinism contract, topology generators, and the
// NetworkCoordinator's FDMA x TDMA behavior — including the acceptance
// criterion that a >= 1000-tag, >= 3-channel run is bit-identical at 1, 2,
// and 8 worker threads.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/stats.h"
#include "sim/topology.h"

namespace itb::sim {
namespace {

// --- event queue -------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(30.0, EventType::kQuery, 1);
  q.schedule(10.0, EventType::kQuery, 2);
  q.schedule(20.0, EventType::kReply, 3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.pop().time_us, 10.0);
  EXPECT_DOUBLE_EQ(q.pop().time_us, 20.0);
  EXPECT_DOUBLE_EQ(q.pop().time_us, 30.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreaksByTypeThenEntityThenSeq) {
  // Same instant: kQuery(0) before kReply(1); same type: lower entity
  // first; same entity: creation order.
  EventQueue q;
  q.schedule(5.0, EventType::kReply, 7, 100);
  q.schedule(5.0, EventType::kQuery, 9, 101);
  q.schedule(5.0, EventType::kQuery, 2, 102);
  q.schedule(5.0, EventType::kQuery, 2, 103);
  EXPECT_EQ(q.pop().data, 102u);
  EXPECT_EQ(q.pop().data, 103u);
  EXPECT_EQ(q.pop().data, 101u);
  EXPECT_EQ(q.pop().data, 100u);
}

TEST(EventQueue, TotalOrderIsInsertionInvariant) {
  // The same event set scheduled in two different orders pops identically
  // apart from seq (which encodes insertion order by design).
  const std::vector<double> times = {3.0, 1.0, 2.0, 1.0, 3.0, 2.0};
  std::vector<std::uint32_t> a_order, b_order;
  {
    EventQueue q;
    for (std::size_t i = 0; i < times.size(); ++i) {
      q.schedule(times[i], EventType::kQuery, static_cast<std::uint32_t>(i));
    }
    while (!q.empty()) a_order.push_back(q.pop().entity);
  }
  {
    EventQueue q;
    for (std::size_t i = times.size(); i-- > 0;) {
      q.schedule(times[i], EventType::kQuery, static_cast<std::uint32_t>(i));
    }
    while (!q.empty()) b_order.push_back(q.pop().entity);
  }
  EXPECT_EQ(a_order, b_order);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(10.0, EventType::kQuery, 0);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now_us(), 10.0);
  EXPECT_THROW(q.schedule(9.0, EventType::kQuery, 0), std::logic_error);
  EXPECT_NO_THROW(q.schedule(10.0, EventType::kQuery, 0));  // same instant ok
  (void)q.pop();
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), std::logic_error);  // popping empty is a bug
}

TEST(EventQueue, EntityStreamsAreScheduleIndependent) {
  // The same (seed, entity, counter) coordinates give the same draws no
  // matter what other streams were consumed first.
  auto a = entity_stream(42, 7, 3);
  auto burn = entity_stream(42, 6, 0);
  (void)burn.uniform();
  auto b = entity_stream(42, 7, 3);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
  auto c = entity_stream(42, 7, 4);
  EXPECT_NE(a.next_u64(), c.next_u64());
}

// --- latency histogram -------------------------------------------------------

TEST(LatencyHistogram, QuantilesAreMonotoneAndMergeIsExact) {
  LatencyHistogram h1, h2;
  for (int i = 1; i <= 100; ++i) h1.record(100.0 * i);
  for (int i = 1; i <= 100; ++i) h2.record(5000.0 * i);
  LatencyHistogram merged = h1;
  merged.merge(h2);
  EXPECT_EQ(merged.total, 200u);
  EXPECT_DOUBLE_EQ(merged.sum_us, h1.sum_us + h2.sum_us);
  EXPECT_LE(merged.quantile_us(0.5), merged.quantile_us(0.9));
  EXPECT_LE(merged.quantile_us(0.9), merged.quantile_us(0.99));
  EXPECT_GE(merged.max_us, 500000.0);
  // The p50 bin must actually contain the median sample.
  EXPECT_GE(merged.quantile_us(0.5), 5000.0);
}

// --- topology ----------------------------------------------------------------

TEST(Topology, GridIsDeterministicAndInsideExtent) {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kGrid;
  cfg.num_tags = 37;
  cfg.extent_m = 15.0;
  const Placement a = generate_topology(cfg);
  const Placement b = generate_topology(cfg);
  ASSERT_EQ(a.tags.size(), 37u);
  for (std::size_t i = 0; i < a.tags.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tags[i].x, b.tags[i].x);
    EXPECT_DOUBLE_EQ(a.tags[i].y, b.tags[i].y);
    EXPECT_GE(a.tags[i].x, 0.0);
    EXPECT_LE(a.tags[i].x, 15.0);
    EXPECT_GE(a.tags[i].y, 0.0);
    EXPECT_LE(a.tags[i].y, 15.0);
  }
}

TEST(Topology, DiskStaysInsideRadiusAndSeedMatters) {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kUniformDisk;
  cfg.num_tags = 200;
  cfg.extent_m = 10.0;
  cfg.seed = 5;
  const Placement a = generate_topology(cfg);
  ASSERT_EQ(a.tags.size(), 200u);
  const Vec2 centre{10.0, 10.0};
  for (const Vec2& p : a.tags) {
    EXPECT_LE(distance_m(p, centre), 10.0 + 1e-9);
  }
  cfg.seed = 6;
  const Placement b = generate_topology(cfg);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.tags.size(); ++i) {
    if (a.tags[i].x != b.tags[i].x) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Topology, HospitalWardPlacesAllTagsAndRoomHelpers) {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kHospitalWard;
  cfg.num_tags = 35;
  cfg.beds_per_room = 4;
  cfg.num_helpers = 0;  // 0 = one per room
  const Placement p = generate_topology(cfg);
  EXPECT_EQ(p.tags.size(), 35u);
  EXPECT_EQ(p.helpers.size(), 9u);  // ceil(35/4) rooms
  EXPECT_EQ(p.aps.size(), cfg.num_aps);
  // Every tag has a helper within room range (wall-mount coverage).
  for (const Vec2& tag : p.tags) {
    const std::size_t h = nearest_index(p.helpers, tag);
    EXPECT_LT(distance_m(p.helpers[h], tag), cfg.room_pitch_m);
  }
}

TEST(Topology, NearestIndexPrefersLowestOnTies) {
  const std::vector<Vec2> nodes = {{0.0, 0.0}, {2.0, 0.0}};
  EXPECT_EQ(nearest_index(nodes, {1.0, 0.0}), 0u);
  EXPECT_EQ(nearest_index(nodes, {1.9, 0.0}), 1u);
}

// --- network coordinator -----------------------------------------------------

NetworkConfig small_ward_config() {
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kHospitalWard;
  cfg.topology.num_tags = 60;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = 3;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 6;
  cfg.seed = 2026;
  cfg.num_threads = 1;
  return cfg;
}

TEST(Network, PollsEveryTagEveryRound) {
  const NetworkConfig cfg = small_ward_config();
  const NetworkCoordinator net(cfg);
  const NetworkStats s = net.run();
  EXPECT_EQ(s.num_tags, 60u);
  EXPECT_EQ(s.num_channels, 3u);
  EXPECT_EQ(s.queries_sent, 60u * 6u);
  EXPECT_GT(s.replies_received, 0u);
  EXPECT_GT(s.aggregate_goodput_kbps, 0.0);
  EXPECT_FALSE(std::isnan(s.aggregate_goodput_kbps));
  // Every poll resolves to exactly one outcome.
  EXPECT_EQ(s.queries_sent, s.replies_received + s.downlink_misses +
                                s.reservation_denied + s.collisions +
                                s.decode_failures);
  // FDMA balances tags across the three channels to within one.
  ASSERT_EQ(s.channels.size(), 3u);
  for (const ChannelStats& ch : s.channels) {
    EXPECT_NEAR(static_cast<double>(ch.tags), 20.0, 1.0);
  }
  EXPECT_GT(s.query_latency.total, 0u);
  EXPECT_GT(s.mean_harvest_duty, 0.0);
  EXPECT_GT(s.mean_tag_power_uw, 0.0);
}

TEST(Network, RunIsReproducible) {
  const NetworkConfig cfg = small_ward_config();
  const NetworkCoordinator net(cfg);
  EXPECT_EQ(net.run().digest(), net.run().digest());
}

TEST(Network, BitIdenticalAcrossThreadCounts1000Tags) {
  // Acceptance criterion: >= 1000 tags, >= 3 Wi-Fi channels, full results
  // (including every per-tag counter) bit-identical at 1, 2 and 8 threads.
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kHospitalWard;
  cfg.topology.num_tags = 1000;
  cfg.topology.num_helpers = 0;
  cfg.topology.num_aps = 4;
  cfg.wifi_channels = {1, 6, 11};
  cfg.rounds = 4;
  cfg.shard_tags = 64;  // many shards so threading actually interleaves
  cfg.seed = 77;

  cfg.num_threads = 1;
  // Throughput telemetry only; never feeds results.
  // detlint: allow(wall-clock)
  const auto t0 = std::chrono::steady_clock::now();
  const NetworkStats s1 = NetworkCoordinator(cfg).run();
  const double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)  // detlint: allow(wall-clock)
                         .count();
  EXPECT_LT(sec, 10.0);  // budget-fidelity path must stay fast

  cfg.num_threads = 2;
  const NetworkStats s2 = NetworkCoordinator(cfg).run();
  cfg.num_threads = 8;
  const NetworkStats s8 = NetworkCoordinator(cfg).run();

  ASSERT_EQ(s1.per_tag.size(), 1000u);
  EXPECT_EQ(s1.digest(), s2.digest());
  EXPECT_EQ(s1.digest(), s8.digest());
  EXPECT_EQ(s1.queries_sent, 4000u);
}

TEST(Network, CtsToSelfBeatsNoReservationOnBusyChannel) {
  NetworkConfig cfg = small_ward_config();
  cfg.ambient_busy_probability = 0.5;
  cfg.reservation = mac::ReservationScheme::kNone;
  const NetworkStats none = NetworkCoordinator(cfg).run();
  cfg.reservation = mac::ReservationScheme::kCtsToSelf;
  const NetworkStats cts = NetworkCoordinator(cfg).run();
  EXPECT_GT(none.collisions, 0u);
  EXPECT_EQ(cts.collisions, 0u);
  EXPECT_GT(cts.aggregate_goodput_kbps, none.aggregate_goodput_kbps);
}

TEST(Network, SsbMirrorLeakageRaisesVictimNoiseFloor) {
  // BLE channel 38 sits at 2426 MHz. A group backscattering onto Wi-Fi
  // channel 1 (2412 MHz) leaves its suppressed mirror at 2440 MHz — right
  // on top of Wi-Fi channel 7 (2442 MHz). The channel-7 group must see a
  // leakage noise rise; with the mirror fully suppressed it must not.
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kGrid;
  cfg.topology.num_tags = 40;
  cfg.topology.extent_m = 6.0;  // short links: strong replies, strong mirror
  cfg.topology.num_helpers = 16;
  cfg.topology.num_aps = 2;
  cfg.ble_channel = 38;
  cfg.wifi_channels = {1, 7};
  cfg.rounds = 2;
  const NetworkCoordinator net(cfg);
  ASSERT_EQ(net.channel_plan().size(), 2u);
  const double rise_on_7 = net.channel_plan()[1].leakage_noise_rise_db;
  EXPECT_GT(rise_on_7, 0.0);
  // Channel 1's own victim mirror (2 * 2426 - 2442 = 2410 MHz) also lands
  // near it, so both see some rise; the test pins the asymmetric physics
  // by checking suppression kills it.
  NetworkConfig clean = cfg;
  clean.ssb_sideband_suppression_db = 200.0;
  const NetworkCoordinator quiet(clean);
  EXPECT_LT(quiet.channel_plan()[1].leakage_noise_rise_db, 1e-9);
  EXPECT_LT(quiet.channel_plan()[1].leakage_noise_rise_db, rise_on_7);
}

TEST(Network, LeakageDegradesVictimPer) {
  // Same geometry twice; the only difference is the mirror suppression.
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kGrid;
  cfg.topology.num_tags = 40;
  cfg.topology.extent_m = 6.0;
  cfg.topology.num_helpers = 16;
  cfg.topology.num_aps = 2;
  cfg.wifi_channels = {1, 7};
  cfg.rounds = 2;
  cfg.ssb_sideband_suppression_db = 6.0;  // poor SSB: strong mirror
  const NetworkCoordinator leaky(cfg);
  cfg.ssb_sideband_suppression_db = 200.0;
  const NetworkCoordinator clean(cfg);
  // Victim-channel tags (group 1: odd tag ids) decode worse under leakage.
  const auto& lk = leaky.links();
  const auto& cl = clean.links();
  double leaky_per = 0.0, clean_per = 0.0;
  for (std::size_t t = 1; t < lk.size(); t += 2) {
    leaky_per += lk[t].reply_per;
    clean_per += cl[t].reply_per;
  }
  EXPECT_GT(leaky_per, clean_per);
}

TEST(Network, EmptyFleetYieldsZeroesNotNan) {
  NetworkConfig cfg;
  cfg.topology.num_tags = 0;
  cfg.topology.num_helpers = 1;
  cfg.topology.num_aps = 1;
  const NetworkStats s = NetworkCoordinator(cfg).run();
  EXPECT_EQ(s.num_tags, 0u);
  EXPECT_EQ(s.queries_sent, 0u);
  EXPECT_DOUBLE_EQ(s.aggregate_goodput_kbps, 0.0);
  EXPECT_FALSE(std::isnan(s.mean_tag_goodput_kbps));
  EXPECT_FALSE(std::isnan(s.mean_harvest_duty));
}

TEST(Network, RejectsDegenerateConfigs) {
  NetworkConfig cfg;
  cfg.wifi_channels = {};
  EXPECT_THROW(NetworkCoordinator{cfg}, std::invalid_argument);

  NetworkConfig no_infra;
  no_infra.topology.kind = TopologyKind::kGrid;
  no_infra.topology.num_tags = 4;
  no_infra.topology.num_helpers = 0;  // grid honours 0 as literally none
  no_infra.topology.num_aps = 0;
  EXPECT_THROW(NetworkCoordinator{no_infra}, std::invalid_argument);
}

TEST(Network, MoreTagsStretchTailLatency) {
  // TDMA: a bigger fleet waits longer per round -> p99 latency grows.
  NetworkConfig small = small_ward_config();
  small.topology.num_tags = 30;
  NetworkConfig big = small;
  big.topology.num_tags = 300;
  const NetworkStats a = NetworkCoordinator(small).run();
  const NetworkStats b = NetworkCoordinator(big).run();
  EXPECT_GT(b.query_latency.quantile_us(0.99),
            a.query_latency.quantile_us(0.99));
}

TEST(Network, SpotCheckAgreesOnStrongLinks) {
  // Short-range grid: every budget PER is ~0, so every sampled waveform
  // link must actually decode (the network-level fidelity cross-check).
  NetworkConfig cfg;
  cfg.topology.kind = TopologyKind::kGrid;
  cfg.topology.num_tags = 12;
  cfg.topology.extent_m = 2.0;
  cfg.topology.num_helpers = 4;
  cfg.topology.num_aps = 2;
  cfg.tag_medium_loss_db = 0.0;
  cfg.ble_tx_power_dbm = 10.0;
  cfg.payload_bytes = 24;
  const NetworkCoordinator net(cfg);
  const auto checks = net.spot_check_waveform(3);
  ASSERT_EQ(checks.size(), 3u);
  for (const SpotCheckResult& c : checks) {
    EXPECT_LT(c.budget_per, 0.1);
    EXPECT_TRUE(c.waveform_decoded);
    EXPECT_TRUE(c.consistent);
  }
}

}  // namespace
}  // namespace itb::sim
