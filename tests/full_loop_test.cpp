// The paper's §2.5 "putting it all together": full bidirectional loop.
//
//   Wi-Fi device --- 802.11g AM query ---> tag (peak detector)
//   tag --- backscattered 802.11b reply --> Wi-Fi device (DSSS receiver)
//
// plus waveform-level integration of the application scenarios.
#include <gtest/gtest.h>

#include <cmath>

#include "backscatter/detector.h"
#include "backscatter/wifi_synth.h"
#include "ble/gfsk.h"
#include "ble/single_tone.h"
#include "channel/awgn.h"
#include "channel/link.h"
#include "core/downlink.h"
#include "core/interscatter.h"
#include "dsp/units.h"
#include "mac/query_reply.h"
#include "sim/network.h"
#include "wifi/am_downlink.h"
#include "wifi/dsss_rx.h"
#include "wifi/mac_frame.h"

namespace itb {
namespace {

using dsp::CVec;
using dsp::Real;

/// Downconvert the tag's waveform and decode it with the DSSS receiver.
std::optional<wifi::DsssRxResult> receive_backscatter(
    const backscatter::WifiSynthResult& synth, Real shift_hz, Real fs) {
  CVec shifted = channel::apply_cfo(synth.waveform, -shift_hz, fs);
  CVec chips(shifted.size() / 13);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    dsp::Complex acc{0, 0};
    for (std::size_t k = 0; k < 13; ++k) acc += shifted[i * 13 + k];
    chips[i] = acc / 13.0;
  }
  const wifi::DsssReceiver rx;
  return rx.receive(chips);
}

TEST(FullLoop, QueryReplyRoundTrip) {
  // --- Downlink: the phone queries tag 0x42 --------------------------------
  mac::QueryFrame query;
  query.tag_address = 0x42;
  query.opcode = 0x03;  // "send telemetry"

  wifi::AmDownlinkConfig amcfg;
  amcfg.scrambler_seed = 0x51;
  wifi::AmDownlinkEncoder encoder(amcfg, 11);
  const wifi::AmFrame am = encoder.encode(query.to_bits());

  // Tag-side: peak detector decodes the query.
  backscatter::PeakDetectorConfig pdc;
  pdc.sensitivity_dbm = -90.0;
  const backscatter::PeakDetector pd(pdc);
  const phy::Bits rx_bits = pd.decode_am(am.tx.baseband, 400,
                                         wifi::kSymbolSamples,
                                         mac::QueryFrame::kBits);
  const auto parsed_query = mac::QueryFrame::from_bits(rx_bits);
  ASSERT_TRUE(parsed_query.has_value());
  ASSERT_EQ(parsed_query->tag_address, 0x42);
  ASSERT_EQ(parsed_query->opcode, 0x03);

  // --- Uplink: the addressed tag replies on the next advertisement ---------
  wifi::MacFrame reply;
  reply.type = wifi::FrameType::kData;
  reply.body = {0x42, /*telemetry*/ 0xDE, 0xAD, 0xBE, 0xEF, 0x99};
  const phy::Bytes psdu = wifi::serialize(reply);

  backscatter::WifiSynthConfig synth_cfg;
  synth_cfg.rate = wifi::DsssRate::k2Mbps;
  const auto synth = backscatter::synthesize_wifi(psdu, synth_cfg);
  const auto rx = receive_backscatter(synth, synth_cfg.shift_hz,
                                      synth_cfg.sample_rate_hz);
  ASSERT_TRUE(rx.has_value());
  ASSERT_TRUE(rx->fcs_ok);
  const auto parsed_reply = wifi::parse(rx->psdu);
  ASSERT_TRUE(parsed_reply.has_value());
  EXPECT_EQ(parsed_reply->frame.body, reply.body);
}

TEST(FullLoop, UnaddressedTagStaysQuiet) {
  mac::QueryFrame query;
  query.tag_address = 0x42;
  wifi::AmDownlinkConfig amcfg;
  wifi::AmDownlinkEncoder encoder(amcfg, 12);
  const wifi::AmFrame am = encoder.encode(query.to_bits());

  backscatter::PeakDetectorConfig pdc;
  pdc.sensitivity_dbm = -90.0;
  const backscatter::PeakDetector pd(pdc);
  const phy::Bits rx_bits = pd.decode_am(am.tx.baseband, 400,
                                         wifi::kSymbolSamples,
                                         mac::QueryFrame::kBits);
  const auto parsed = mac::QueryFrame::from_bits(rx_bits);
  ASSERT_TRUE(parsed.has_value());
  // A tag with a different address must not reply.
  const std::uint8_t my_address = 0x17;
  EXPECT_NE(parsed->tag_address, my_address);
}

TEST(FullLoop, BleDetectionToWifiReplyTimeline) {
  // The tag hears the BLE packet through its envelope detector, plans the
  // backscatter window, and the synthesized frame decodes — the complete
  // §2.2+§2.3 timeline against one advertisement.
  ble::SingleToneSpec spec;
  spec.channel_index = 38;
  const auto tone = ble::make_single_tone_packet(spec);

  // Incident BLE baseband at the tag (-25 dBm, strong enough to trigger).
  ble::GfskModulator gfsk;
  CVec incident = gfsk.modulate(tone.packet.air_bits);
  const Real amp = std::sqrt(dsp::dbm_to_watts(-25.0));
  for (auto& v : incident) v *= amp;

  backscatter::TagConfig tag_cfg;
  tag_cfg.wifi.rate = wifi::DsssRate::k2Mbps;
  const backscatter::InterscatterTag tag(tag_cfg);

  const auto detected_start = tag.detect_payload_start(incident, 8e6);
  ASSERT_TRUE(detected_start.has_value());
  EXPECT_NEAR(*detected_start,
              tone.packet.payload_start_us() + tag_cfg.guard_us, 10.0);

  const phy::Bytes psdu(30, 0x66);
  const auto plan = tag.plan(tone.packet, psdu);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(plan->fits_window);
  EXPECT_LT(plan->backscatter_start_us + plan->synth.duration_us,
            static_cast<double>(tone.packet.crc_start_bit));

  const auto rx = receive_backscatter(plan->synth, tag_cfg.wifi.shift_hz,
                                      tag_cfg.wifi.sample_rate_hz);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(rx->psdu, psdu);
}

TEST(FullLoop, ImplantScenarioWaveformLevel) {
  // Neural-implant geometry end-to-end at waveform level: tissue loss and
  // implant antenna applied through the budget, actual decode at 11 Mbps.
  core::UplinkScenario s;
  s.ble_tx_power_dbm = 20.0;
  s.ble_tag_distance_m = 3.0 * channel::kInchesToMeters;
  s.tag_rx_distance_m = 12.0 * channel::kInchesToMeters;
  s.rate = wifi::DsssRate::k11Mbps;
  s.tag_antenna = channel::neural_implant_loop();
  s.tag_medium_loss_db = 15.0;
  const core::InterscatterSystem sys(s);

  phy::Bytes ecog(77);
  for (std::size_t i = 0; i < ecog.size(); ++i) {
    ecog[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }
  const auto r = sys.simulate_frame(ecog);
  ASSERT_TRUE(r.detected);
  EXPECT_TRUE(r.payload_ok);
}

TEST(FullLoop, EnvelopeDetectorRangeGate) {
  // §2.2: the detection threshold is tuned so only transmitters within
  // 8-10 ft trigger. Verify via the link budget: the incident power at
  // 8 ft clears the threshold and at 25 ft it does not.
  channel::LogDistanceModel pl;
  const Real at_8ft = channel::direct_rssi_dbm(
      0.0, 2.0, 2.0, pl, 8.0 * channel::kFeetToMeters);
  const Real at_25ft = channel::direct_rssi_dbm(
      0.0, 2.0, 2.0, pl, 25.0 * channel::kFeetToMeters);
  const backscatter::EnvelopeDetectorConfig det;
  EXPECT_GT(at_8ft, det.threshold_dbm);
  EXPECT_LT(at_25ft, det.threshold_dbm);
}

TEST(FullLoop, DownlinkThenUplinkThroughScenarios) {
  // Chain the scenario-level helpers exactly as an application would.
  core::DownlinkScenario down;
  down.distance_m = 2.0;
  down.chipset = wifi::ar5007g();
  const phy::Bits command = {1, 0, 1, 0, 1, 1, 0, 0};
  const auto d = core::simulate_downlink(down, command);
  ASSERT_EQ(d.received, command);

  core::UplinkScenario up;
  up.ble_tx_power_dbm = 10.0;
  up.tag_rx_distance_m = 1.5;
  const auto u = core::InterscatterSystem(up).simulate_frame(
      phy::Bytes{0xCA, 0xFE, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06});
  EXPECT_TRUE(u.payload_ok);
}

TEST(FullLoop, NetworkBudgetAgreesWithWaveformSpotCheck) {
  // Network-level extension of the budget-vs-waveform cross-check: the
  // fleet simulator draws every link outcome from the closed-form budget;
  // re-simulating sampled links through the full waveform pipeline must
  // agree on decode success. Two regimes pin both tails of the PER curve.
  sim::NetworkConfig strong;
  strong.topology.kind = sim::TopologyKind::kGrid;
  strong.topology.num_tags = 9;
  strong.topology.extent_m = 2.0;  // everything within a couple of meters
  strong.topology.num_helpers = 4;
  strong.topology.num_aps = 2;
  strong.tag_medium_loss_db = 0.0;
  strong.payload_bytes = 24;
  const auto good = sim::NetworkCoordinator(strong).spot_check_waveform(3);
  ASSERT_EQ(good.size(), 3u);
  for (const auto& c : good) {
    EXPECT_LT(c.budget_per, 0.1);
    EXPECT_TRUE(c.waveform_decoded);
    EXPECT_TRUE(c.consistent);
  }

  sim::NetworkConfig weak = strong;
  weak.topology.extent_m = 120.0;    // links tens of meters long
  weak.tag_medium_loss_db = 20.0;    // deep-implant tissue loss
  weak.ble_tx_power_dbm = 0.0;
  const auto bad = sim::NetworkCoordinator(weak).spot_check_waveform(3);
  ASSERT_EQ(bad.size(), 3u);
  for (const auto& c : bad) {
    EXPECT_GT(c.budget_per, 0.9);
    EXPECT_FALSE(c.waveform_decoded);
    EXPECT_TRUE(c.consistent);
  }
}

}  // namespace
}  // namespace itb
