// Unit tests for the DSP substrate: FFT, windows, FIR design, mixers,
// spectrum estimation, resampling, correlation, units and RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dsp/correlate.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/fir.h"
#include "dsp/ola.h"
#include "dsp/mixer.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "dsp/spectrum.h"
#include "dsp/types.h"
#include "dsp/units.h"
#include "dsp/window.h"

namespace itb::dsp {
namespace {

TEST(Fft, MatchesReferenceDftOnRandomInput) {
  Xoshiro256 rng(42);
  CVec x(64);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const CVec fast = fft(x);
  const CVec slow = dft(x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-9) << "bin " << i;
    EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-9) << "bin " << i;
  }
}

TEST(Fft, InverseRoundTrips) {
  Xoshiro256 rng(43);
  CVec x(256);
  for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
  const CVec back = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  CVec x(32, Complex{0, 0});
  x[0] = {1, 0};
  const CVec f = fft(x);
  for (const auto& v : f) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  }
}

TEST(Fft, ToneLandsInSingleBin) {
  constexpr std::size_t n = 128;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Real ang = kTwoPi * 5.0 * static_cast<Real>(i) / n;
    x[i] = {std::cos(ang), std::sin(ang)};
  }
  const CVec f = fft(x);
  EXPECT_NEAR(std::abs(f[5]), static_cast<Real>(n), 1e-9);
  EXPECT_NEAR(std::abs(f[6]), 0.0, 1e-9);
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(next_power_of_two(48), 64u);
  EXPECT_EQ(next_power_of_two(64), 64u);
  EXPECT_EQ(next_power_of_two(1), 1u);
}

TEST(Fft, FftShiftSwapsHalves) {
  RVec x = {0, 1, 2, 3};
  const RVec s = fftshift(std::span<const Real>(x));
  EXPECT_EQ(s, (RVec{2, 3, 0, 1}));
}

TEST(FftPlan, MatchesReferenceDftAcrossPlanCacheSizes) {
  Xoshiro256 rng(1234);
  for (std::size_t n : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    CVec x(n);
    for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const CVec fast = fft(x);  // goes through fft_plan(n)
    const CVec slow = dft(x);
    ASSERT_EQ(fast.size(), slow.size());
    // dft() itself accumulates O(n) rounding at these sizes; scale the
    // tolerance with sqrt(n) around the 1e-9 base.
    const Real tol = 1e-9 * std::sqrt(static_cast<Real>(n));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(fast[i].real(), slow[i].real(), tol) << "n=" << n << " bin " << i;
      ASSERT_NEAR(fast[i].imag(), slow[i].imag(), tol) << "n=" << n << " bin " << i;
    }
  }
}

TEST(FftPlan, CacheReturnsSameInstance) {
  const FftPlan& a = fft_plan(256);
  const FftPlan& b = fft_plan(256);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 256u);
}

TEST(FftPlan, InverseRoundTripsThroughPlan) {
  Xoshiro256 rng(99);
  CVec x(1024);
  for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
  CVec y = x;
  const FftPlan& plan = fft_plan(1024);
  plan.forward(y);
  plan.inverse(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
  EXPECT_THROW(FftPlan(3), std::invalid_argument);
  EXPECT_THROW(FftPlan(100), std::invalid_argument);
}

TEST(Fft, InplaceThrowsOnNonPowerOfTwoInAllBuildModes) {
  CVec x(100);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
  EXPECT_THROW(ifft_inplace(x), std::invalid_argument);
}

TEST(Fft, OutOfPlaceFallsBackToDftForNonPowerOfTwo) {
  Xoshiro256 rng(77);
  CVec x(100);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const CVec via_fft = fft(x);
  const CVec via_dft = dft(x);
  ASSERT_EQ(via_fft.size(), via_dft.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(via_fft[i].real(), via_dft[i].real(), 1e-12);
    EXPECT_NEAR(via_fft[i].imag(), via_dft[i].imag(), 1e-12);
  }
  const CVec back = ifft(via_fft);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(Window, HannEndpointsAreZero) {
  const RVec w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-2);
}

TEST(Window, AllKindsPositiveInterior) {
  for (auto kind : {WindowKind::kRectangular, WindowKind::kHann,
                    WindowKind::kHamming, WindowKind::kBlackman}) {
    const RVec w = make_window(kind, 33);
    for (std::size_t i = 1; i + 1 < w.size(); ++i) {
      EXPECT_GT(w[i], 0.0) << static_cast<int>(kind) << " at " << i;
    }
  }
}

TEST(Fir, LowpassHasUnityDcGain) {
  const RVec taps = design_lowpass(63, 0.2);
  Real sum = 0.0;
  for (Real t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Fir, LowpassIsSymmetric) {
  const RVec taps = design_lowpass(41, 0.1);
  for (std::size_t i = 0; i < taps.size() / 2; ++i) {
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-12);
  }
}

TEST(Fir, LowpassAttenuatesStopband) {
  const RVec taps = design_lowpass(101, 0.1);
  // Probe response at passband (0.02) and stopband (0.3) frequencies.
  const auto response = [&](Real f) {
    Complex acc{0, 0};
    for (std::size_t i = 0; i < taps.size(); ++i) {
      const Real ang = -kTwoPi * f * static_cast<Real>(i);
      acc += taps[i] * Complex{std::cos(ang), std::sin(ang)};
    }
    return std::abs(acc);
  };
  EXPECT_NEAR(response(0.02), 1.0, 0.05);
  EXPECT_LT(response(0.3), 0.01);
}

TEST(Fir, GaussianTapsNormalized) {
  const RVec taps = design_gaussian(0.5, 8, 3);
  Real sum = 0.0;
  for (Real t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Peak in the middle.
  const std::size_t mid = taps.size() / 2;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_LE(taps[i], taps[mid] + 1e-15);
  }
}

TEST(Fir, HalfSinePulseShape) {
  const RVec p = half_sine_pulse(8);
  EXPECT_NEAR(p[0], 0.0, 1e-12);
  EXPECT_NEAR(p[4], 1.0, 1e-12);
  EXPECT_GT(p[2], 0.5);
}

TEST(Fir, ConvolveLengthAndIdentity) {
  const CVec x = {{1, 0}, {2, 0}, {3, 0}};
  const RVec delta = {1.0};
  const CVec y = convolve(std::span<const Complex>(x), delta);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[1].real(), 2.0, 1e-12);
}

TEST(Fir, FilterSamePreservesLength) {
  CVec x(100, Complex{1.0, 0.0});
  const RVec taps = design_lowpass(21, 0.2);
  const CVec y = filter_same(std::span<const Complex>(x), taps);
  EXPECT_EQ(y.size(), x.size());
  // Interior should be ~1 (DC gain 1).
  EXPECT_NEAR(y[50].real(), 1.0, 1e-9);
}

TEST(Fir, SinglePoleStepResponseConverges) {
  RVec x(200, 1.0);
  const RVec y = single_pole_lowpass(x, 0.1);
  EXPECT_NEAR(y.back(), 1.0, 1e-6);
  EXPECT_LE(y[1], 1.0);
}

TEST(Fir, OverlapSaveMatchesDirectComplex) {
  Xoshiro256 rng(501);
  const std::vector<std::pair<std::size_t, std::size_t>> cases{
      {4096, 101}, {777, 33}, {2048, 129}, {300, 64}};
  for (const auto& [nx, ntaps] : cases) {
    CVec x(nx);
    for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    RVec taps(ntaps);
    for (auto& t : taps) t = rng.uniform(-1, 1);
    const CVec direct = convolve_direct(x, taps);
    const CVec spectral = convolve_fft(x, taps);
    ASSERT_EQ(direct.size(), spectral.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_NEAR(direct[i].real(), spectral[i].real(), 1e-9)
          << "nx=" << nx << " ntaps=" << ntaps << " i=" << i;
      ASSERT_NEAR(direct[i].imag(), spectral[i].imag(), 1e-9);
    }
  }
}

TEST(Fir, OverlapSaveMatchesDirectReal) {
  Xoshiro256 rng(502);
  RVec x(3000);
  for (auto& v : x) v = rng.uniform(-1, 1);
  RVec taps(75);
  for (auto& t : taps) t = rng.uniform(-1, 1);
  const RVec direct = convolve_direct(x, taps);
  const RVec spectral = convolve_fft(x, taps);
  ASSERT_EQ(direct.size(), spectral.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_NEAR(direct[i], spectral[i], 1e-9) << "i=" << i;
  }
}

TEST(Fir, AutoConvolveAgreesWithDirectOnBothSidesOfCrossover) {
  Xoshiro256 rng(503);
  // One size below the spectral threshold, one above.
  const std::vector<std::pair<std::size_t, std::size_t>> cases{{100, 7},
                                                              {8192, 129}};
  for (const auto& [nx, ntaps] : cases) {
    CVec x(nx);
    for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    RVec taps(ntaps);
    for (auto& t : taps) t = rng.uniform(-1, 1);
    const CVec direct = convolve_direct(x, taps);
    const CVec any = convolve(x, taps);
    ASSERT_EQ(direct.size(), any.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_NEAR(std::abs(direct[i] - any[i]), 0.0, 1e-9);
    }
  }
}

TEST(Fir, CrossoverHeuristicSanity) {
  EXPECT_FALSE(convolve_prefers_fft(1000, 7));    // tiny kernel: stay direct
  EXPECT_FALSE(convolve_prefers_fft(64, 33));     // tiny signal: stay direct
  EXPECT_TRUE(convolve_prefers_fft(8192, 129));   // long filter on long signal
  EXPECT_TRUE(correlate_prefers_fft(16384, 1024));
  EXPECT_FALSE(correlate_prefers_fft(200, 11));   // Barker-scale: direct
}

TEST(Ola, SingleBlockAndMultiBlockAgree) {
  Xoshiro256 rng(504);
  // Kernel long enough that an 8x block would exceed the single-transform
  // size: exercises the block-size collapse path.
  CVec x(500), h(400);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto& v : h) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const CVec y = overlap_save_convolve(x, h);
  ASSERT_EQ(y.size(), x.size() + h.size() - 1);
  // Reference: direct complex-kernel convolution.
  CVec ref(x.size() + h.size() - 1, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t k = 0; k < h.size(); ++k) ref[i + k] += x[i] * h[k];
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(std::abs(y[i] - ref[i]), 0.0, 1e-9) << "i=" << i;
  }
}

TEST(Mixer, NcoFrequencyAccuracy) {
  Nco nco(1000.0, 8000.0);
  const CVec s = nco.generate(9);
  // The first sample is at phase 0; each subsequent sample advances 1/8 turn.
  EXPECT_NEAR(s[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(s[1].real(), std::cos(kTwoPi / 8.0), 1e-12);
  EXPECT_NEAR(s[1].imag(), std::sin(kTwoPi / 8.0), 1e-12);
  // After 8 samples the phase has advanced exactly one cycle.
  EXPECT_NEAR(s[8].real(), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(s[7]), 1.0, 1e-12);
}

TEST(Mixer, FrequencyShiftMovesSpectralPeak) {
  const Real fs = 1e6;
  const CVec base = tone(0.0, fs, 4096);
  const CVec shifted = frequency_shift(base, 100e3, fs);
  const Psd psd = welch_psd(shifted, fs);
  EXPECT_NEAR(peak_frequency_hz(psd), 100e3, 2.0 * psd.bin_hz);
}

TEST(Spectrum, TonePowerMeasurement) {
  const Real fs = 1e6;
  const CVec x = tone(50e3, fs, 8192, /*amplitude=*/2.0);
  const Psd psd = welch_psd(x, fs);
  // Total power should be ~|A|^2 = 4.
  Real total = 0.0;
  for (Real p : psd.power_linear) total += p;
  EXPECT_NEAR(total, 4.0, 0.2);
  // Peak is at the tone frequency.
  EXPECT_NEAR(peak_frequency_hz(psd), 50e3, 2.0 * psd.bin_hz);
}

TEST(Spectrum, BandPowerSplitsTones) {
  const Real fs = 1e6;
  CVec x = tone(100e3, fs, 8192);
  const CVec x2 = tone(-200e3, fs, 8192, 0.5);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += x2[i];
  const Psd psd = welch_psd(x, fs);
  const Real p_hi = band_power(psd, 80e3, 120e3);
  const Real p_lo = band_power(psd, -220e3, -180e3);
  EXPECT_NEAR(p_hi, 1.0, 0.1);
  EXPECT_NEAR(p_lo, 0.25, 0.05);
}

TEST(Spectrum, SidebandRejectionOfCleanTone) {
  const Real fs = 1e6;
  const CVec x = tone(100e3, fs, 16384);
  const Psd psd = welch_psd(x, fs);
  const Real rej = sideband_rejection_db(psd, 90e3, 110e3, -110e3, -90e3);
  EXPECT_GT(rej, 40.0);
}

TEST(Spectrum, OccupiedBandwidthOfToneIsNarrow) {
  const Real fs = 1e6;
  const CVec x = tone(0.0, fs, 16384);
  const Psd psd = welch_psd(x, fs);
  EXPECT_LT(occupied_bandwidth_hz(psd, 0.99), 10e3);
}

TEST(Spectrum, NormalizePeakSetsMaxToZero) {
  const Real fs = 1e6;
  Psd psd = welch_psd(tone(0.0, fs, 4096), fs);
  normalize_peak(psd);
  Real mx = -1e9;
  for (Real v : psd.power_db) mx = std::max(mx, v);
  EXPECT_NEAR(mx, 0.0, 1e-12);
}

TEST(Resample, HoldUpsampleRepeatsValues) {
  const CVec x = {{1, 0}, {2, 0}};
  const CVec y = hold_upsample(std::span<const Complex>(x), 3);
  ASSERT_EQ(y.size(), 6u);
  EXPECT_EQ(y[0], y[2]);
  EXPECT_EQ(y[3].real(), 2.0);
}

TEST(Resample, LinearResampleKeepsToneFrequency) {
  const Real fs_in = 1e6;
  const Real fs_out = 1.5e6;
  const CVec x = tone(100e3, fs_in, 8192);
  const CVec y = resample_linear(x, fs_in, fs_out);
  const Psd psd = welch_psd(y, fs_out);
  EXPECT_NEAR(peak_frequency_hz(psd), 100e3, 3.0 * psd.bin_hz);
}

TEST(Resample, UpsampleDecimateRoundTrip) {
  const Real fs = 1e6;
  const CVec x = tone(50e3, fs, 2048);
  const CVec up = upsample(x, 2);
  EXPECT_EQ(up.size(), x.size() * 2);
  const CVec down = decimate(up, 2);
  // Mid-signal samples should be close to the original.
  for (std::size_t i = 500; i < 600; ++i) {
    EXPECT_NEAR(std::abs(down[i]), 1.0, 0.05);
  }
}

TEST(Resample, DecimateKeepsTrailingPartialStride) {
  // Regression: decimate used to size its output as n / factor, silently
  // dropping up to factor - 1 trailing samples whenever the input length was
  // not a multiple of the factor. The contract is ceil(n / factor): every
  // index i*factor < n contributes.
  const CVec x10(10, Complex{1.0, 0.0});
  EXPECT_EQ(decimate(x10, 3).size(), 4u);   // indices 0, 3, 6, 9
  EXPECT_EQ(decimate(x10, 4).size(), 3u);   // indices 0, 4, 8
  const CVec x9(9, Complex{1.0, 0.0});
  EXPECT_EQ(decimate(x9, 3).size(), 3u);    // exact division unchanged
  const CVec x1(1, Complex{1.0, 0.0});
  EXPECT_EQ(decimate(x1, 8).size(), 1u);    // a lone sample survives
}

TEST(Resample, LinearResampleRoundingOvershootStaysInBounds) {
  // Regression for the resample_linear index clamp. The output length is
  // floor((n-1)/ratio) + 1 with two roundings (the division, then the
  // per-sample product i*ratio); this in_rate/out_rate pair makes the
  // division round UP to an integer, so the final product lands one ulp
  // past the last input index (pos > n-1). The loop must clamp the derived
  // index to n-1 and blend the last sample with itself exactly.
  const Real in_rate = std::nextafter(7.0 / 17.0, 2.0);  // 0.411764705882353..
  const Real out_rate = 1.0;
  const std::size_t n = 8;
  // Confirm this pair actually exercises the overshoot (same arithmetic as
  // the implementation).
  const Real ratio = in_rate / out_rate;
  const auto out_len =
      static_cast<std::size_t>(std::floor(static_cast<Real>(n - 1) / ratio)) + 1;
  ASSERT_EQ(out_len, 18u);
  ASSERT_GT(static_cast<Real>(out_len - 1) * ratio, static_cast<Real>(n - 1));

  CVec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = Complex{static_cast<Real>(i) + 1.0, -static_cast<Real>(i)};
  const CVec y = resample_linear(x, in_rate, out_rate);
  ASSERT_EQ(y.size(), out_len);
  // The overshot final sample must equal x.back() bit-for-bit (frac blends
  // the clamped sample with itself) and every interior sample stays finite.
  EXPECT_EQ(y.back().real(), x.back().real());
  EXPECT_EQ(y.back().imag(), x.back().imag());
  for (const Complex& v : y) {
    EXPECT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  }
}

TEST(Correlate, FindsEmbeddedPattern) {
  Xoshiro256 rng(7);
  CVec noise(500);
  for (auto& v : noise) v = rng.complex_gaussian(0.01);
  CVec pattern(31);
  for (auto& v : pattern) v = {rng.bit() ? 1.0 : -1.0, 0.0};
  // Embed at offset 200.
  for (std::size_t i = 0; i < pattern.size(); ++i) noise[200 + i] += pattern[i];
  const CVec corr = cross_correlate(noise, pattern);
  EXPECT_EQ(peak_lag(corr), 200u);
  EXPECT_GT(normalized_peak(noise, pattern, 200), 0.9);
}

TEST(Correlate, SpectralMatchesDirectLongPattern) {
  Xoshiro256 rng(601);
  CVec x(8192), p(1000);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto& v : p) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const CVec direct = cross_correlate_direct(x, p);
  const CVec spectral = cross_correlate_fft(x, p);
  ASSERT_EQ(direct.size(), spectral.size());
  ASSERT_EQ(direct.size(), x.size() - p.size() + 1);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    // Magnitudes here are O(sqrt(1000)); 1e-9 absolute still holds in double.
    ASSERT_NEAR(direct[i].real(), spectral[i].real(), 1e-9) << "lag " << i;
    ASSERT_NEAR(direct[i].imag(), spectral[i].imag(), 1e-9) << "lag " << i;
  }
}

TEST(Correlate, AutoDispatchFindsSamePeakAsDirect) {
  Xoshiro256 rng(602);
  CVec pattern(256);
  for (auto& v : pattern) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  CVec x(4096);
  for (auto& v : x) v = 0.05 * Complex{rng.gaussian(), rng.gaussian()};
  const std::size_t embed = 1777;
  for (std::size_t k = 0; k < pattern.size(); ++k) x[embed + k] += pattern[k];
  const CVec corr = cross_correlate(x, pattern);
  EXPECT_EQ(peak_lag(corr), embed);
  EXPECT_EQ(peak_lag(cross_correlate_direct(x, pattern)), embed);
}

TEST(Units, DbConversionsRoundTrip) {
  EXPECT_NEAR(ratio_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(db_to_ratio(3.0), 1.995, 0.01);
  EXPECT_NEAR(watts_to_dbm(0.001), 0.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_amplitude(amplitude_to_db(3.7)), 3.7, 1e-9);
}

TEST(Units, PowerMeasures) {
  const CVec x = {{3, 4}, {3, 4}};
  EXPECT_NEAR(mean_power(std::span<const Complex>(x)), 25.0, 1e-12);
  EXPECT_NEAR(rms(std::span<const Complex>(x)), 5.0, 1e-12);
  EXPECT_NEAR(peak_magnitude(std::span<const Complex>(x)), 5.0, 1e-12);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Real v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, GaussianMomentsReasonable) {
  Xoshiro256 rng(6);
  Real sum = 0.0, sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Real v = rng.gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ComplexGaussianVariance) {
  Xoshiro256 rng(8);
  Real acc = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) acc += std::norm(rng.complex_gaussian(2.0));
  EXPECT_NEAR(acc / n, 2.0, 0.1);
}

}  // namespace
}  // namespace itb::dsp
