// Tests for the per-thread bump arena (core/arena.h) and the batched PHY
// engine (phy/batch.h): frame rewind semantics, allocation reuse, and
// bit-identity of every batch operation against its single-waveform
// counterpart.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "core/arena.h"
#include "dsp/fft_plan.h"
#include "dsp/rng.h"
#include "dsp/simd/kernels.h"
#include "phy/batch.h"

namespace itb {
namespace {

using dsp::Complex;
using dsp::CVec;
using dsp::Real;

TEST(Arena, FrameRewindReusesMemory) {
  core::Arena arena(1024);
  void* first = nullptr;
  {
    const core::Arena::Mark before = arena.mark();
    first = arena.allocate(128, 16);
    EXPECT_GE(arena.used_bytes(), 128u);
    arena.rewind(before);
  }
  // Same request after rewind lands on the same storage.
  void* second = arena.allocate(128, 16);
  EXPECT_EQ(first, second);
}

TEST(Arena, SpillsToNewBlocksAndRewindsAcrossThem) {
  core::Arena arena(256);
  const core::Arena::Mark start = arena.mark();
  // Force several block spills.
  for (int i = 0; i < 8; ++i) arena.allocate(200, 16);
  const std::size_t cap = arena.capacity_bytes();
  EXPECT_GT(cap, 256u);
  arena.rewind(start);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // Rewound blocks are reused: capacity does not grow on the second pass.
  for (int i = 0; i < 8; ++i) arena.allocate(200, 16);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
  core::Arena arena(64);
  auto big = arena.alloc_span<double>(100);  // 800 bytes > block size
  ASSERT_EQ(big.size(), 100u);
  big[99] = 1.0;
  EXPECT_EQ(big[99], 1.0);
}

TEST(Arena, ThreadArenasAreIndependent) {
  core::thread_arena().allocate(64, 16);
  std::size_t other_used = 1;
  std::thread t([&] { other_used = core::thread_arena().used_bytes(); });
  t.join();
  EXPECT_EQ(other_used, 0u);
}

TEST(Arena, ZeroedSpanIsZero) {
  core::ArenaFrame frame;
  auto s = frame.arena().alloc_span_zeroed<Complex>(33);
  for (const Complex& v : s) {
    EXPECT_EQ(v.real(), 0.0);
    EXPECT_EQ(v.imag(), 0.0);
  }
}

CVec random_cvec(std::size_t n, std::uint64_t seed) {
  dsp::Xoshiro256 rng(dsp::splitmix64(seed));
  CVec v(n);
  for (auto& x : v) x = rng.complex_gaussian(1.0);
  return v;
}

::testing::AssertionResult BitsEqual(std::span<const Complex> a,
                                     std::span<const Complex> b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  if (a.empty() ||
      std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)) == 0)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "contents differ";
}

TEST(Batch, LanesAreIndependentAndContiguous) {
  core::ArenaFrame frame;
  phy::Batch b(3, 16);
  EXPECT_EQ(b.lanes(), 3u);
  EXPECT_EQ(b.samples(), 16u);
  EXPECT_EQ(b.flat().size(), 48u);
  b.lane(1)[0] = Complex{1.0, 2.0};
  EXPECT_EQ(b.lane(0)[0], (Complex{0.0, 0.0}));
  EXPECT_EQ(b.flat()[16], (Complex{1.0, 2.0}));
}

TEST(Batch, OpsMatchSingleWaveformKernels) {
  core::ArenaFrame frame;
  const std::size_t lanes = 5;
  const std::size_t n = 64;
  std::vector<CVec> ref;
  phy::Batch b(lanes, n);
  for (std::size_t i = 0; i < lanes; ++i) {
    ref.push_back(random_cvec(n, 100 + i));
    b.load(i, ref.back());
  }
  const CVec spec = random_cvec(n, 999);
  const Complex alpha{0.97, 0.01};
  const Complex beta{0.02, -0.015};
  const dsp::FftPlan& plan = dsp::fft_plan(n);

  b.scale(0.5);
  b.pointwise_mul(spec);
  b.iq_imbalance(alpha, beta);
  b.fft_forward(plan);
  b.fft_inverse(plan);
  b.quantize_midrise(2.0, 2.0 / 32.0);

  const dsp::simd::KernelTable& kern = dsp::simd::active_kernels();
  for (std::size_t i = 0; i < lanes; ++i) {
    CVec r = ref[i];
    kern.scale_real(r.data(), 0.5, n);
    kern.cmul_pointwise(r.data(), spec.data(), n);
    kern.iq_imbalance(r.data(), alpha, beta, n);
    plan.forward(r);
    plan.inverse(r);
    kern.quantize_midrise(r.data(), 2.0, 2.0 / 32.0, n);
    EXPECT_TRUE(BitsEqual(b.lane(i), r)) << "lane " << i;
  }
}

TEST(Batch, ExplicitArenaAndFrameReuse) {
  core::Arena arena(1 << 16);
  std::size_t cap_after_first = 0;
  for (int round = 0; round < 3; ++round) {
    const core::Arena::Mark m = arena.mark();
    phy::Batch b(4, 256, arena);
    b.scale(2.0);
    arena.rewind(m);
    if (round == 0) cap_after_first = arena.capacity_bytes();
  }
  // Steady state: rounds after the first allocate nothing new.
  EXPECT_EQ(arena.capacity_bytes(), cap_after_first);
}

}  // namespace
}  // namespace itb
